# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_mathx[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_stats_table[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_ps_resource[1]_include.cmake")
include("/root/repo/build/tests/test_process_trace[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_exec_plan[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_profiler[1]_include.cmake")
include("/root/repo/build/tests/test_render[1]_include.cmake")
include("/root/repo/build/tests/test_scene[1]_include.cmake")
include("/root/repo/build/tests/test_edge[1]_include.cmake")
include("/root/repo/build/tests/test_gp[1]_include.cmake")
include("/root/repo/build/tests/test_acquisition[1]_include.cmake")
include("/root/repo/build/tests/test_space[1]_include.cmake")
include("/root/repo/build/tests/test_optimizer[1]_include.cmake")
include("/root/repo/build/tests/test_allocation[1]_include.cmake")
include("/root/repo/build/tests/test_triangle_distribution[1]_include.cmake")
include("/root/repo/build/tests/test_controller[1]_include.cmake")
include("/root/repo/build/tests/test_activation[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_mar_app[1]_include.cmake")
include("/root/repo/build/tests/test_scenarios[1]_include.cmake")
include("/root/repo/build/tests/test_study[1]_include.cmake")
include("/root/repo/build/tests/test_session[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
