# Empty dependencies file for test_process_trace.
# This may be replaced when dependencies are built.
