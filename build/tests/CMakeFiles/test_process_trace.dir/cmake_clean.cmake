file(REMOVE_RECURSE
  "CMakeFiles/test_process_trace.dir/test_process_trace.cpp.o"
  "CMakeFiles/test_process_trace.dir/test_process_trace.cpp.o.d"
  "test_process_trace"
  "test_process_trace.pdb"
  "test_process_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_process_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
