file(REMOVE_RECURSE
  "CMakeFiles/test_mar_app.dir/test_mar_app.cpp.o"
  "CMakeFiles/test_mar_app.dir/test_mar_app.cpp.o.d"
  "test_mar_app"
  "test_mar_app.pdb"
  "test_mar_app[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mar_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
