# Empty dependencies file for test_mar_app.
# This may be replaced when dependencies are built.
