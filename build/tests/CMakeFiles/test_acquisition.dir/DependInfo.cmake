
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_acquisition.cpp" "tests/CMakeFiles/test_acquisition.dir/test_acquisition.cpp.o" "gcc" "tests/CMakeFiles/test_acquisition.dir/test_acquisition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hbosim_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_bo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_ai.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_render.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_study.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
