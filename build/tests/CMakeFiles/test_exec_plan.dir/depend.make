# Empty dependencies file for test_exec_plan.
# This may be replaced when dependencies are built.
