file(REMOVE_RECURSE
  "CMakeFiles/test_exec_plan.dir/test_exec_plan.cpp.o"
  "CMakeFiles/test_exec_plan.dir/test_exec_plan.cpp.o.d"
  "test_exec_plan"
  "test_exec_plan.pdb"
  "test_exec_plan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
