# Empty compiler generated dependencies file for test_ps_resource.
# This may be replaced when dependencies are built.
