file(REMOVE_RECURSE
  "CMakeFiles/test_ps_resource.dir/test_ps_resource.cpp.o"
  "CMakeFiles/test_ps_resource.dir/test_ps_resource.cpp.o.d"
  "test_ps_resource"
  "test_ps_resource.pdb"
  "test_ps_resource[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ps_resource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
