file(REMOVE_RECURSE
  "CMakeFiles/test_triangle_distribution.dir/test_triangle_distribution.cpp.o"
  "CMakeFiles/test_triangle_distribution.dir/test_triangle_distribution.cpp.o.d"
  "test_triangle_distribution"
  "test_triangle_distribution.pdb"
  "test_triangle_distribution[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_triangle_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
