# Empty dependencies file for test_triangle_distribution.
# This may be replaced when dependencies are built.
