# Empty dependencies file for hbosim_core.
# This may be replaced when dependencies are built.
