
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hbosim/core/activation.cpp" "src/CMakeFiles/hbosim_core.dir/hbosim/core/activation.cpp.o" "gcc" "src/CMakeFiles/hbosim_core.dir/hbosim/core/activation.cpp.o.d"
  "/root/repo/src/hbosim/core/allocation.cpp" "src/CMakeFiles/hbosim_core.dir/hbosim/core/allocation.cpp.o" "gcc" "src/CMakeFiles/hbosim_core.dir/hbosim/core/allocation.cpp.o.d"
  "/root/repo/src/hbosim/core/config.cpp" "src/CMakeFiles/hbosim_core.dir/hbosim/core/config.cpp.o" "gcc" "src/CMakeFiles/hbosim_core.dir/hbosim/core/config.cpp.o.d"
  "/root/repo/src/hbosim/core/controller.cpp" "src/CMakeFiles/hbosim_core.dir/hbosim/core/controller.cpp.o" "gcc" "src/CMakeFiles/hbosim_core.dir/hbosim/core/controller.cpp.o.d"
  "/root/repo/src/hbosim/core/cost.cpp" "src/CMakeFiles/hbosim_core.dir/hbosim/core/cost.cpp.o" "gcc" "src/CMakeFiles/hbosim_core.dir/hbosim/core/cost.cpp.o.d"
  "/root/repo/src/hbosim/core/lookup_table.cpp" "src/CMakeFiles/hbosim_core.dir/hbosim/core/lookup_table.cpp.o" "gcc" "src/CMakeFiles/hbosim_core.dir/hbosim/core/lookup_table.cpp.o.d"
  "/root/repo/src/hbosim/core/monitored_session.cpp" "src/CMakeFiles/hbosim_core.dir/hbosim/core/monitored_session.cpp.o" "gcc" "src/CMakeFiles/hbosim_core.dir/hbosim/core/monitored_session.cpp.o.d"
  "/root/repo/src/hbosim/core/triangle_distribution.cpp" "src/CMakeFiles/hbosim_core.dir/hbosim/core/triangle_distribution.cpp.o" "gcc" "src/CMakeFiles/hbosim_core.dir/hbosim/core/triangle_distribution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hbosim_bo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_ai.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_render.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
