file(REMOVE_RECURSE
  "CMakeFiles/hbosim_core.dir/hbosim/core/activation.cpp.o"
  "CMakeFiles/hbosim_core.dir/hbosim/core/activation.cpp.o.d"
  "CMakeFiles/hbosim_core.dir/hbosim/core/allocation.cpp.o"
  "CMakeFiles/hbosim_core.dir/hbosim/core/allocation.cpp.o.d"
  "CMakeFiles/hbosim_core.dir/hbosim/core/config.cpp.o"
  "CMakeFiles/hbosim_core.dir/hbosim/core/config.cpp.o.d"
  "CMakeFiles/hbosim_core.dir/hbosim/core/controller.cpp.o"
  "CMakeFiles/hbosim_core.dir/hbosim/core/controller.cpp.o.d"
  "CMakeFiles/hbosim_core.dir/hbosim/core/cost.cpp.o"
  "CMakeFiles/hbosim_core.dir/hbosim/core/cost.cpp.o.d"
  "CMakeFiles/hbosim_core.dir/hbosim/core/lookup_table.cpp.o"
  "CMakeFiles/hbosim_core.dir/hbosim/core/lookup_table.cpp.o.d"
  "CMakeFiles/hbosim_core.dir/hbosim/core/monitored_session.cpp.o"
  "CMakeFiles/hbosim_core.dir/hbosim/core/monitored_session.cpp.o.d"
  "CMakeFiles/hbosim_core.dir/hbosim/core/triangle_distribution.cpp.o"
  "CMakeFiles/hbosim_core.dir/hbosim/core/triangle_distribution.cpp.o.d"
  "libhbosim_core.a"
  "libhbosim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbosim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
