file(REMOVE_RECURSE
  "libhbosim_core.a"
)
