
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hbosim/ai/engine.cpp" "src/CMakeFiles/hbosim_ai.dir/hbosim/ai/engine.cpp.o" "gcc" "src/CMakeFiles/hbosim_ai.dir/hbosim/ai/engine.cpp.o.d"
  "/root/repo/src/hbosim/ai/exec_plan.cpp" "src/CMakeFiles/hbosim_ai.dir/hbosim/ai/exec_plan.cpp.o" "gcc" "src/CMakeFiles/hbosim_ai.dir/hbosim/ai/exec_plan.cpp.o.d"
  "/root/repo/src/hbosim/ai/latency_stats.cpp" "src/CMakeFiles/hbosim_ai.dir/hbosim/ai/latency_stats.cpp.o" "gcc" "src/CMakeFiles/hbosim_ai.dir/hbosim/ai/latency_stats.cpp.o.d"
  "/root/repo/src/hbosim/ai/model.cpp" "src/CMakeFiles/hbosim_ai.dir/hbosim/ai/model.cpp.o" "gcc" "src/CMakeFiles/hbosim_ai.dir/hbosim/ai/model.cpp.o.d"
  "/root/repo/src/hbosim/ai/profiler.cpp" "src/CMakeFiles/hbosim_ai.dir/hbosim/ai/profiler.cpp.o" "gcc" "src/CMakeFiles/hbosim_ai.dir/hbosim/ai/profiler.cpp.o.d"
  "/root/repo/src/hbosim/ai/registry.cpp" "src/CMakeFiles/hbosim_ai.dir/hbosim/ai/registry.cpp.o" "gcc" "src/CMakeFiles/hbosim_ai.dir/hbosim/ai/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hbosim_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
