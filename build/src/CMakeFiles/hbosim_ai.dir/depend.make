# Empty dependencies file for hbosim_ai.
# This may be replaced when dependencies are built.
