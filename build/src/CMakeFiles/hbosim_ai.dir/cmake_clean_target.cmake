file(REMOVE_RECURSE
  "libhbosim_ai.a"
)
