file(REMOVE_RECURSE
  "CMakeFiles/hbosim_ai.dir/hbosim/ai/engine.cpp.o"
  "CMakeFiles/hbosim_ai.dir/hbosim/ai/engine.cpp.o.d"
  "CMakeFiles/hbosim_ai.dir/hbosim/ai/exec_plan.cpp.o"
  "CMakeFiles/hbosim_ai.dir/hbosim/ai/exec_plan.cpp.o.d"
  "CMakeFiles/hbosim_ai.dir/hbosim/ai/latency_stats.cpp.o"
  "CMakeFiles/hbosim_ai.dir/hbosim/ai/latency_stats.cpp.o.d"
  "CMakeFiles/hbosim_ai.dir/hbosim/ai/model.cpp.o"
  "CMakeFiles/hbosim_ai.dir/hbosim/ai/model.cpp.o.d"
  "CMakeFiles/hbosim_ai.dir/hbosim/ai/profiler.cpp.o"
  "CMakeFiles/hbosim_ai.dir/hbosim/ai/profiler.cpp.o.d"
  "CMakeFiles/hbosim_ai.dir/hbosim/ai/registry.cpp.o"
  "CMakeFiles/hbosim_ai.dir/hbosim/ai/registry.cpp.o.d"
  "libhbosim_ai.a"
  "libhbosim_ai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbosim_ai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
