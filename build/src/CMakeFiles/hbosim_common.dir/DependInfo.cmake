
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hbosim/common/error.cpp" "src/CMakeFiles/hbosim_common.dir/hbosim/common/error.cpp.o" "gcc" "src/CMakeFiles/hbosim_common.dir/hbosim/common/error.cpp.o.d"
  "/root/repo/src/hbosim/common/logging.cpp" "src/CMakeFiles/hbosim_common.dir/hbosim/common/logging.cpp.o" "gcc" "src/CMakeFiles/hbosim_common.dir/hbosim/common/logging.cpp.o.d"
  "/root/repo/src/hbosim/common/mathx.cpp" "src/CMakeFiles/hbosim_common.dir/hbosim/common/mathx.cpp.o" "gcc" "src/CMakeFiles/hbosim_common.dir/hbosim/common/mathx.cpp.o.d"
  "/root/repo/src/hbosim/common/matrix.cpp" "src/CMakeFiles/hbosim_common.dir/hbosim/common/matrix.cpp.o" "gcc" "src/CMakeFiles/hbosim_common.dir/hbosim/common/matrix.cpp.o.d"
  "/root/repo/src/hbosim/common/rng.cpp" "src/CMakeFiles/hbosim_common.dir/hbosim/common/rng.cpp.o" "gcc" "src/CMakeFiles/hbosim_common.dir/hbosim/common/rng.cpp.o.d"
  "/root/repo/src/hbosim/common/stats.cpp" "src/CMakeFiles/hbosim_common.dir/hbosim/common/stats.cpp.o" "gcc" "src/CMakeFiles/hbosim_common.dir/hbosim/common/stats.cpp.o.d"
  "/root/repo/src/hbosim/common/table.cpp" "src/CMakeFiles/hbosim_common.dir/hbosim/common/table.cpp.o" "gcc" "src/CMakeFiles/hbosim_common.dir/hbosim/common/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
