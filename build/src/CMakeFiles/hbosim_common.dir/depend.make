# Empty dependencies file for hbosim_common.
# This may be replaced when dependencies are built.
