file(REMOVE_RECURSE
  "libhbosim_common.a"
)
