file(REMOVE_RECURSE
  "CMakeFiles/hbosim_common.dir/hbosim/common/error.cpp.o"
  "CMakeFiles/hbosim_common.dir/hbosim/common/error.cpp.o.d"
  "CMakeFiles/hbosim_common.dir/hbosim/common/logging.cpp.o"
  "CMakeFiles/hbosim_common.dir/hbosim/common/logging.cpp.o.d"
  "CMakeFiles/hbosim_common.dir/hbosim/common/mathx.cpp.o"
  "CMakeFiles/hbosim_common.dir/hbosim/common/mathx.cpp.o.d"
  "CMakeFiles/hbosim_common.dir/hbosim/common/matrix.cpp.o"
  "CMakeFiles/hbosim_common.dir/hbosim/common/matrix.cpp.o.d"
  "CMakeFiles/hbosim_common.dir/hbosim/common/rng.cpp.o"
  "CMakeFiles/hbosim_common.dir/hbosim/common/rng.cpp.o.d"
  "CMakeFiles/hbosim_common.dir/hbosim/common/stats.cpp.o"
  "CMakeFiles/hbosim_common.dir/hbosim/common/stats.cpp.o.d"
  "CMakeFiles/hbosim_common.dir/hbosim/common/table.cpp.o"
  "CMakeFiles/hbosim_common.dir/hbosim/common/table.cpp.o.d"
  "libhbosim_common.a"
  "libhbosim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbosim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
