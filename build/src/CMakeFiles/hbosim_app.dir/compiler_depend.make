# Empty compiler generated dependencies file for hbosim_app.
# This may be replaced when dependencies are built.
