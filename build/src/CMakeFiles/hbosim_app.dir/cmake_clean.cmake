file(REMOVE_RECURSE
  "CMakeFiles/hbosim_app.dir/hbosim/app/mar_app.cpp.o"
  "CMakeFiles/hbosim_app.dir/hbosim/app/mar_app.cpp.o.d"
  "CMakeFiles/hbosim_app.dir/hbosim/app/metrics.cpp.o"
  "CMakeFiles/hbosim_app.dir/hbosim/app/metrics.cpp.o.d"
  "CMakeFiles/hbosim_app.dir/hbosim/app/script.cpp.o"
  "CMakeFiles/hbosim_app.dir/hbosim/app/script.cpp.o.d"
  "libhbosim_app.a"
  "libhbosim_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbosim_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
