file(REMOVE_RECURSE
  "libhbosim_app.a"
)
