
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hbosim/app/mar_app.cpp" "src/CMakeFiles/hbosim_app.dir/hbosim/app/mar_app.cpp.o" "gcc" "src/CMakeFiles/hbosim_app.dir/hbosim/app/mar_app.cpp.o.d"
  "/root/repo/src/hbosim/app/metrics.cpp" "src/CMakeFiles/hbosim_app.dir/hbosim/app/metrics.cpp.o" "gcc" "src/CMakeFiles/hbosim_app.dir/hbosim/app/metrics.cpp.o.d"
  "/root/repo/src/hbosim/app/script.cpp" "src/CMakeFiles/hbosim_app.dir/hbosim/app/script.cpp.o" "gcc" "src/CMakeFiles/hbosim_app.dir/hbosim/app/script.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hbosim_ai.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_render.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
