file(REMOVE_RECURSE
  "CMakeFiles/hbosim_des.dir/hbosim/des/process.cpp.o"
  "CMakeFiles/hbosim_des.dir/hbosim/des/process.cpp.o.d"
  "CMakeFiles/hbosim_des.dir/hbosim/des/ps_resource.cpp.o"
  "CMakeFiles/hbosim_des.dir/hbosim/des/ps_resource.cpp.o.d"
  "CMakeFiles/hbosim_des.dir/hbosim/des/simulator.cpp.o"
  "CMakeFiles/hbosim_des.dir/hbosim/des/simulator.cpp.o.d"
  "CMakeFiles/hbosim_des.dir/hbosim/des/trace.cpp.o"
  "CMakeFiles/hbosim_des.dir/hbosim/des/trace.cpp.o.d"
  "libhbosim_des.a"
  "libhbosim_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbosim_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
