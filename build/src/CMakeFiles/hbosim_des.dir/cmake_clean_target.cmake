file(REMOVE_RECURSE
  "libhbosim_des.a"
)
