
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hbosim/des/process.cpp" "src/CMakeFiles/hbosim_des.dir/hbosim/des/process.cpp.o" "gcc" "src/CMakeFiles/hbosim_des.dir/hbosim/des/process.cpp.o.d"
  "/root/repo/src/hbosim/des/ps_resource.cpp" "src/CMakeFiles/hbosim_des.dir/hbosim/des/ps_resource.cpp.o" "gcc" "src/CMakeFiles/hbosim_des.dir/hbosim/des/ps_resource.cpp.o.d"
  "/root/repo/src/hbosim/des/simulator.cpp" "src/CMakeFiles/hbosim_des.dir/hbosim/des/simulator.cpp.o" "gcc" "src/CMakeFiles/hbosim_des.dir/hbosim/des/simulator.cpp.o.d"
  "/root/repo/src/hbosim/des/trace.cpp" "src/CMakeFiles/hbosim_des.dir/hbosim/des/trace.cpp.o" "gcc" "src/CMakeFiles/hbosim_des.dir/hbosim/des/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hbosim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
