# Empty compiler generated dependencies file for hbosim_des.
# This may be replaced when dependencies are built.
