file(REMOVE_RECURSE
  "libhbosim_render.a"
)
