file(REMOVE_RECURSE
  "CMakeFiles/hbosim_render.dir/hbosim/render/culling.cpp.o"
  "CMakeFiles/hbosim_render.dir/hbosim/render/culling.cpp.o.d"
  "CMakeFiles/hbosim_render.dir/hbosim/render/degradation.cpp.o"
  "CMakeFiles/hbosim_render.dir/hbosim/render/degradation.cpp.o.d"
  "CMakeFiles/hbosim_render.dir/hbosim/render/mesh.cpp.o"
  "CMakeFiles/hbosim_render.dir/hbosim/render/mesh.cpp.o.d"
  "CMakeFiles/hbosim_render.dir/hbosim/render/object.cpp.o"
  "CMakeFiles/hbosim_render.dir/hbosim/render/object.cpp.o.d"
  "CMakeFiles/hbosim_render.dir/hbosim/render/render_load.cpp.o"
  "CMakeFiles/hbosim_render.dir/hbosim/render/render_load.cpp.o.d"
  "CMakeFiles/hbosim_render.dir/hbosim/render/scene.cpp.o"
  "CMakeFiles/hbosim_render.dir/hbosim/render/scene.cpp.o.d"
  "libhbosim_render.a"
  "libhbosim_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbosim_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
