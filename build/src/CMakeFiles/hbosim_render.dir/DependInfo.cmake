
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hbosim/render/culling.cpp" "src/CMakeFiles/hbosim_render.dir/hbosim/render/culling.cpp.o" "gcc" "src/CMakeFiles/hbosim_render.dir/hbosim/render/culling.cpp.o.d"
  "/root/repo/src/hbosim/render/degradation.cpp" "src/CMakeFiles/hbosim_render.dir/hbosim/render/degradation.cpp.o" "gcc" "src/CMakeFiles/hbosim_render.dir/hbosim/render/degradation.cpp.o.d"
  "/root/repo/src/hbosim/render/mesh.cpp" "src/CMakeFiles/hbosim_render.dir/hbosim/render/mesh.cpp.o" "gcc" "src/CMakeFiles/hbosim_render.dir/hbosim/render/mesh.cpp.o.d"
  "/root/repo/src/hbosim/render/object.cpp" "src/CMakeFiles/hbosim_render.dir/hbosim/render/object.cpp.o" "gcc" "src/CMakeFiles/hbosim_render.dir/hbosim/render/object.cpp.o.d"
  "/root/repo/src/hbosim/render/render_load.cpp" "src/CMakeFiles/hbosim_render.dir/hbosim/render/render_load.cpp.o" "gcc" "src/CMakeFiles/hbosim_render.dir/hbosim/render/render_load.cpp.o.d"
  "/root/repo/src/hbosim/render/scene.cpp" "src/CMakeFiles/hbosim_render.dir/hbosim/render/scene.cpp.o" "gcc" "src/CMakeFiles/hbosim_render.dir/hbosim/render/scene.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hbosim_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
