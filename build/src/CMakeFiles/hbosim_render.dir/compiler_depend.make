# Empty compiler generated dependencies file for hbosim_render.
# This may be replaced when dependencies are built.
