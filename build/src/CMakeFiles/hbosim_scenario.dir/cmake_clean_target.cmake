file(REMOVE_RECURSE
  "libhbosim_scenario.a"
)
