file(REMOVE_RECURSE
  "CMakeFiles/hbosim_scenario.dir/hbosim/scenario/scenarios.cpp.o"
  "CMakeFiles/hbosim_scenario.dir/hbosim/scenario/scenarios.cpp.o.d"
  "libhbosim_scenario.a"
  "libhbosim_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbosim_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
