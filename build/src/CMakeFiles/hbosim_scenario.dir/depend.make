# Empty dependencies file for hbosim_scenario.
# This may be replaced when dependencies are built.
