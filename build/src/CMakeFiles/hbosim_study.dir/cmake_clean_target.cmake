file(REMOVE_RECURSE
  "libhbosim_study.a"
)
