file(REMOVE_RECURSE
  "CMakeFiles/hbosim_study.dir/hbosim/study/raters.cpp.o"
  "CMakeFiles/hbosim_study.dir/hbosim/study/raters.cpp.o.d"
  "libhbosim_study.a"
  "libhbosim_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbosim_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
