# Empty compiler generated dependencies file for hbosim_study.
# This may be replaced when dependencies are built.
