file(REMOVE_RECURSE
  "CMakeFiles/hbosim_edge.dir/hbosim/edge/cache.cpp.o"
  "CMakeFiles/hbosim_edge.dir/hbosim/edge/cache.cpp.o.d"
  "CMakeFiles/hbosim_edge.dir/hbosim/edge/decimation_service.cpp.o"
  "CMakeFiles/hbosim_edge.dir/hbosim/edge/decimation_service.cpp.o.d"
  "CMakeFiles/hbosim_edge.dir/hbosim/edge/network.cpp.o"
  "CMakeFiles/hbosim_edge.dir/hbosim/edge/network.cpp.o.d"
  "CMakeFiles/hbosim_edge.dir/hbosim/edge/remote_optimizer.cpp.o"
  "CMakeFiles/hbosim_edge.dir/hbosim/edge/remote_optimizer.cpp.o.d"
  "libhbosim_edge.a"
  "libhbosim_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbosim_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
