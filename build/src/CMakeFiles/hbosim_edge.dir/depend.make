# Empty dependencies file for hbosim_edge.
# This may be replaced when dependencies are built.
