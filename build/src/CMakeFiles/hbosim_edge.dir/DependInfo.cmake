
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hbosim/edge/cache.cpp" "src/CMakeFiles/hbosim_edge.dir/hbosim/edge/cache.cpp.o" "gcc" "src/CMakeFiles/hbosim_edge.dir/hbosim/edge/cache.cpp.o.d"
  "/root/repo/src/hbosim/edge/decimation_service.cpp" "src/CMakeFiles/hbosim_edge.dir/hbosim/edge/decimation_service.cpp.o" "gcc" "src/CMakeFiles/hbosim_edge.dir/hbosim/edge/decimation_service.cpp.o.d"
  "/root/repo/src/hbosim/edge/network.cpp" "src/CMakeFiles/hbosim_edge.dir/hbosim/edge/network.cpp.o" "gcc" "src/CMakeFiles/hbosim_edge.dir/hbosim/edge/network.cpp.o.d"
  "/root/repo/src/hbosim/edge/remote_optimizer.cpp" "src/CMakeFiles/hbosim_edge.dir/hbosim/edge/remote_optimizer.cpp.o" "gcc" "src/CMakeFiles/hbosim_edge.dir/hbosim/edge/remote_optimizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hbosim_render.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbosim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
