file(REMOVE_RECURSE
  "libhbosim_edge.a"
)
