file(REMOVE_RECURSE
  "CMakeFiles/hbosim_baselines.dir/hbosim/baselines/alln.cpp.o"
  "CMakeFiles/hbosim_baselines.dir/hbosim/baselines/alln.cpp.o.d"
  "CMakeFiles/hbosim_baselines.dir/hbosim/baselines/bnt.cpp.o"
  "CMakeFiles/hbosim_baselines.dir/hbosim/baselines/bnt.cpp.o.d"
  "CMakeFiles/hbosim_baselines.dir/hbosim/baselines/sml.cpp.o"
  "CMakeFiles/hbosim_baselines.dir/hbosim/baselines/sml.cpp.o.d"
  "CMakeFiles/hbosim_baselines.dir/hbosim/baselines/smq.cpp.o"
  "CMakeFiles/hbosim_baselines.dir/hbosim/baselines/smq.cpp.o.d"
  "CMakeFiles/hbosim_baselines.dir/hbosim/baselines/static_alloc.cpp.o"
  "CMakeFiles/hbosim_baselines.dir/hbosim/baselines/static_alloc.cpp.o.d"
  "libhbosim_baselines.a"
  "libhbosim_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbosim_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
