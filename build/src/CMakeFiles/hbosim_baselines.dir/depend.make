# Empty dependencies file for hbosim_baselines.
# This may be replaced when dependencies are built.
