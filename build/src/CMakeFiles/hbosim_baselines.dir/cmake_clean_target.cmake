file(REMOVE_RECURSE
  "libhbosim_baselines.a"
)
