file(REMOVE_RECURSE
  "CMakeFiles/hbosim_soc.dir/hbosim/soc/device.cpp.o"
  "CMakeFiles/hbosim_soc.dir/hbosim/soc/device.cpp.o.d"
  "CMakeFiles/hbosim_soc.dir/hbosim/soc/devices_builtin.cpp.o"
  "CMakeFiles/hbosim_soc.dir/hbosim/soc/devices_builtin.cpp.o.d"
  "CMakeFiles/hbosim_soc.dir/hbosim/soc/resource.cpp.o"
  "CMakeFiles/hbosim_soc.dir/hbosim/soc/resource.cpp.o.d"
  "libhbosim_soc.a"
  "libhbosim_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbosim_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
