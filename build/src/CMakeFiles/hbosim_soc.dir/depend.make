# Empty dependencies file for hbosim_soc.
# This may be replaced when dependencies are built.
