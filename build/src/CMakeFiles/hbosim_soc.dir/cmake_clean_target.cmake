file(REMOVE_RECURSE
  "libhbosim_soc.a"
)
