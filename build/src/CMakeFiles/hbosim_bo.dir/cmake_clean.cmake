file(REMOVE_RECURSE
  "CMakeFiles/hbosim_bo.dir/hbosim/bo/acquisition.cpp.o"
  "CMakeFiles/hbosim_bo.dir/hbosim/bo/acquisition.cpp.o.d"
  "CMakeFiles/hbosim_bo.dir/hbosim/bo/gp.cpp.o"
  "CMakeFiles/hbosim_bo.dir/hbosim/bo/gp.cpp.o.d"
  "CMakeFiles/hbosim_bo.dir/hbosim/bo/kernel.cpp.o"
  "CMakeFiles/hbosim_bo.dir/hbosim/bo/kernel.cpp.o.d"
  "CMakeFiles/hbosim_bo.dir/hbosim/bo/optimizer.cpp.o"
  "CMakeFiles/hbosim_bo.dir/hbosim/bo/optimizer.cpp.o.d"
  "CMakeFiles/hbosim_bo.dir/hbosim/bo/space.cpp.o"
  "CMakeFiles/hbosim_bo.dir/hbosim/bo/space.cpp.o.d"
  "libhbosim_bo.a"
  "libhbosim_bo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbosim_bo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
