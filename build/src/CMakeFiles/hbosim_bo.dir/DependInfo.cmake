
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hbosim/bo/acquisition.cpp" "src/CMakeFiles/hbosim_bo.dir/hbosim/bo/acquisition.cpp.o" "gcc" "src/CMakeFiles/hbosim_bo.dir/hbosim/bo/acquisition.cpp.o.d"
  "/root/repo/src/hbosim/bo/gp.cpp" "src/CMakeFiles/hbosim_bo.dir/hbosim/bo/gp.cpp.o" "gcc" "src/CMakeFiles/hbosim_bo.dir/hbosim/bo/gp.cpp.o.d"
  "/root/repo/src/hbosim/bo/kernel.cpp" "src/CMakeFiles/hbosim_bo.dir/hbosim/bo/kernel.cpp.o" "gcc" "src/CMakeFiles/hbosim_bo.dir/hbosim/bo/kernel.cpp.o.d"
  "/root/repo/src/hbosim/bo/optimizer.cpp" "src/CMakeFiles/hbosim_bo.dir/hbosim/bo/optimizer.cpp.o" "gcc" "src/CMakeFiles/hbosim_bo.dir/hbosim/bo/optimizer.cpp.o.d"
  "/root/repo/src/hbosim/bo/space.cpp" "src/CMakeFiles/hbosim_bo.dir/hbosim/bo/space.cpp.o" "gcc" "src/CMakeFiles/hbosim_bo.dir/hbosim/bo/space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hbosim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
