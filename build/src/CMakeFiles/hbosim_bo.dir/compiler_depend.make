# Empty compiler generated dependencies file for hbosim_bo.
# This may be replaced when dependencies are built.
