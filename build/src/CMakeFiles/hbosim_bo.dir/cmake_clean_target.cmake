file(REMOVE_RECURSE
  "libhbosim_bo.a"
)
