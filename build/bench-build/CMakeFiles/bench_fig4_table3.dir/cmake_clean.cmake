file(REMOVE_RECURSE
  "../bench/bench_fig4_table3"
  "../bench/bench_fig4_table3.pdb"
  "CMakeFiles/bench_fig4_table3.dir/bench_fig4_table3.cpp.o"
  "CMakeFiles/bench_fig4_table3.dir/bench_fig4_table3.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_table3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
