# Empty dependencies file for ar_museum_exhibit.
# This may be replaced when dependencies are built.
