file(REMOVE_RECURSE
  "CMakeFiles/ar_museum_exhibit.dir/ar_museum_exhibit.cpp.o"
  "CMakeFiles/ar_museum_exhibit.dir/ar_museum_exhibit.cpp.o.d"
  "ar_museum_exhibit"
  "ar_museum_exhibit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ar_museum_exhibit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
