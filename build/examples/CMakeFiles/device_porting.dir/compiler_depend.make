# Empty compiler generated dependencies file for device_porting.
# This may be replaced when dependencies are built.
