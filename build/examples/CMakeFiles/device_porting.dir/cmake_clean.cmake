file(REMOVE_RECURSE
  "CMakeFiles/device_porting.dir/device_porting.cpp.o"
  "CMakeFiles/device_porting.dir/device_porting.cpp.o.d"
  "device_porting"
  "device_porting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_porting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
