file(REMOVE_RECURSE
  "CMakeFiles/motivation_experiment.dir/motivation_experiment.cpp.o"
  "CMakeFiles/motivation_experiment.dir/motivation_experiment.cpp.o.d"
  "motivation_experiment"
  "motivation_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
