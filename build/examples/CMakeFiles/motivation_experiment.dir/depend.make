# Empty dependencies file for motivation_experiment.
# This may be replaced when dependencies are built.
