// Re-running the paper's motivation experiment interactively (Section
// III-B / Fig. 2b): five deeplabv3 instances on a Galaxy S22, scripted
// reallocations, then virtual objects. This example shows the low-level
// experiment API (ScriptRunner + TraceRecorder) that the figure benches
// are built on, and prints the full latency time series as CSV so it can
// be plotted directly:
//
//   ./motivation_experiment > series.csv && python -m plotnine ... (etc.)

#include <iostream>

#include "hbosim/app/script.hpp"
#include "hbosim/common/table.hpp"
#include "hbosim/scenario/scenarios.hpp"
#include "hbosim/soc/devices_builtin.hpp"

using namespace hbosim;

int main() {
  const soc::DeviceProfile device = soc::galaxy_s22();
  app::MarApp app(device);

  std::vector<TaskId> ids(5);
  ids[0] = app.add_task("deeplabv3", "deeplabv3_1", soc::Delegate::Cpu);

  des::TraceRecorder trace;
  app::ScriptRunner script(app, trace);

  script.reallocate_at(25, ids[0], soc::Delegate::Nnapi, 1);
  const double joins[] = {40, 55, 75, 95};
  for (int i = 2; i <= 5; ++i) {
    script.at(joins[i - 2], "N" + std::to_string(i),
              [&ids, i](app::MarApp& a) {
                ids[i - 1] = a.add_task("deeplabv3",
                                        "deeplabv3_" + std::to_string(i),
                                        soc::Delegate::Nnapi);
              });
  }
  script.at(120, "C5", [&ids](app::MarApp& a) {
    a.engine().set_delegate(ids[4], soc::Delegate::Cpu);
  });
  script.add_object_at(150, scenario::mesh_asset("plane"), 2.0);
  script.add_object_at(151, scenario::mesh_asset("bike"), 1.6);
  script.add_object_at(152, scenario::mesh_asset("statue"), 1.5);
  script.at(200, "C5", [&ids](app::MarApp& a) {
    a.engine().set_delegate(ids[4], soc::Delegate::Cpu);
  });
  script.run_until(240);

  // Emit one CSV block per task series, then the annotation markers.
  for (const std::string& series : trace.series_names()) {
    std::cout << "# series: " << series << "\n";
    trace.dump_series_csv(series, std::cout);
  }
  std::cout << "# markers\n";
  for (const auto& [t, label] : trace.markers())
    std::cout << "# " << t << "s: " << label << "\n";
  return 0;
}
