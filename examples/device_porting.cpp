// Porting HBO to a new device. A downstream user's phone is not a Pixel 7;
// this example shows the full bring-up flow for custom hardware:
//
//   1. describe the SoC (CPU cluster size, render-load behaviour, delegate
//      dispatch overheads);
//   2. register per-model latency profiles — exactly the numbers the
//      one-time on-device isolation profiling produces (the paper's
//      Table I step);
//   3. verify the isolation profiler reproduces them through the runtime;
//   4. run an HBO activation on a workload and inspect the decisions.
//
// The fictional device is a compact AR headset companion ("Vista X1"):
// strong NPU, weak GPU — the opposite affinity mix of the phones, so HBO
// should make visibly different choices.

#include <iostream>

#include "hbosim/ai/profiler.hpp"
#include "hbosim/common/table.hpp"
#include "hbosim/core/controller.hpp"
#include "hbosim/scenario/scenarios.hpp"

using namespace hbosim;

namespace {

soc::DeviceProfile make_vista_x1() {
  // Weak GPU: render load saturates early and delegate dispatch is slow.
  soc::RenderLoadModel render;
  render.tri_scale = 3.0e5;
  render.exponent = 4.0;
  render.max_gpu_load = 0.80;
  render.cpu_cores_per_object = 0.05;
  render.cpu_cores_per_mtri = 0.5;

  soc::DeviceProfile d("Vista X1", /*cpu_cores=*/4.0, render,
                       /*gpu_comm_ms=*/4.0, /*nnapi_comm_ms=*/3.0);

  // Step 2: the numbers a one-time on-device profiling pass would yield.
  // (gpu_ms, nnapi_ms, cpu_ms, npu_fraction, cpu_threads)
  auto lat = [](std::optional<double> gpu, std::optional<double> nnapi,
                double cpu, double npu_fraction, double threads) {
    soc::ModelLatency m;
    m.gpu_ms = gpu;
    m.nnapi_ms = nnapi;
    m.cpu_ms = cpu;
    m.npu_fraction = npu_fraction;
    m.cpu_threads = threads;
    return m;
  };
  d.set_model("mobilenetDetv1", lat(95.0, 11.0, 52.0, 0.9, 1.6));
  d.set_model("efficientclass-lite0", lat(80.0, 9.5, 45.0, 0.9, 1.2));
  d.set_model("mobilenet-v1", lat(70.0, 7.0, 42.0, 0.9, 1.2));
  d.set_model("model-metadata", lat(38.0, 16.0, 24.0, 0.8, 1.0));
  d.set_model("mnist", lat(12.0, 4.0, 8.0, 0.9, 0.5));
  return d;
}

}  // namespace

int main() {
  const soc::DeviceProfile vista = make_vista_x1();
  std::cout << "Custom device: " << vista.name() << " ("
            << vista.cpu_cores() << "-core cluster)\n\n";

  // Step 3: the isolation profiler must reproduce the registered numbers
  // through the full execution-plan/processor-sharing pipeline.
  std::cout << "Isolation profile check (measured vs registered):\n";
  const ai::ProfileTable profiles =
      ai::profile_models(vista, vista.model_names());
  TextTable check(std::vector<std::string>{"model", "best delegate",
                                           "tau^e (ms)"});
  for (const std::string& model : vista.model_names()) {
    const ai::ModelProfile& p = profiles.get(model);
    check.add_row({model, soc::delegate_name(p.best),
                   TextTable::num(p.expected_ms, 1)});
  }
  check.print(std::cout);

  // Step 4: a heavy scene on the weak GPU. On this device everything has
  // NPU affinity, so HBO's lever is almost entirely the triangle ratio.
  app::MarApp app(vista);
  for (const auto& p :
       scenario::object_placements(scenario::ObjectSet::SC1))
    app.add_object(p.asset, p.distance_m);
  app.add_task("mobilenetDetv1", "detector");
  app.add_task("model-metadata", "gestures");
  app.add_task("mnist", "digits");

  core::HboConfig cfg;
  core::HboController hbo(app, cfg);
  const core::ActivationResult result = hbo.run_activation();
  const core::IterationRecord& best = result.best();

  std::cout << "\nHBO decision on " << vista.name() << " (SC1 scene):\n";
  TextTable decision(std::vector<std::string>{"task", "delegate"});
  const auto labels = app.task_labels();
  for (std::size_t i = 0; i < labels.size(); ++i)
    decision.add_row({labels[i], soc::delegate_name(best.allocation[i])});
  decision.print(std::cout);
  std::cout << "triangle ratio x = " << TextTable::num(best.triangle_ratio, 2)
            << " (weak GPU: expect a deeper cut than on the Pixel 7)\n";

  const app::PeriodMetrics after = app.run_period(4.0);
  std::cout << "steady state: quality=" << TextTable::num(after.average_quality, 3)
            << " eps=" << TextTable::num(after.latency_ratio, 2) << "\n";
  return 0;
}
