// AR museum exhibit: the kind of educational MAR deployment the paper's
// Section VI motivates (JigSpace/Animal-Safari-style). Visitors walk
// between exhibit stations; each station places high-detail artifacts
// while six AI tasks (CF1: detection, classification, gesture
// recognition) keep running for interactivity.
//
// The example runs the packaged MonitoredSession: the event-based policy
// activates HBO when a station's objects appear, stays quiet while the
// visitor inspects the exhibit, and — because the Section VI lookup
// table is enabled — serves a *warm start* instead of a fresh Bayesian
// activation when the visitor walks back to a station they already saw.

#include <iostream>
#include <vector>

#include "hbosim/common/table.hpp"
#include "hbosim/core/monitored_session.hpp"
#include "hbosim/scenario/scenarios.hpp"
#include "hbosim/soc/devices_builtin.hpp"

using namespace hbosim;

namespace {

struct Station {
  const char* name;
  std::vector<std::pair<const char*, double>> objects;  // (mesh, distance)
};

const std::vector<Station>& stations() {
  static const std::vector<Station> s = {
      {"Vintage bicycle",
       {{"bike", 1.4}, {"Cocacola", 1.1}, {"statue", 1.6}, {"plane", 2.0}}},
      {"Aviation hall",
       {{"plane", 2.0}, {"plane", 2.4}, {"plane", 1.8}, {"splane", 1.8},
        {"statue", 1.5}, {"bike", 2.2}}},
      {"Miniatures cabinet",
       {{"cabin", 1.0}, {"andy", 0.9}, {"hammer", 1.1}, {"ATV", 1.2}}},
  };
  return s;
}

}  // namespace

int main() {
  const soc::DeviceProfile device = soc::pixel7();
  app::MarApp app(device);
  for (const auto& t : scenario::task_specs(scenario::TaskSet::CF1))
    app.add_task(t.model, t.label);

  core::MonitoredSessionConfig cfg;  // paper defaults inside cfg.hbo
  cfg.use_lookup_table = true;       // Section VI fast path
  cfg.warm_start_tolerance = 0.3;    // accept remembered configs readily
  core::MonitoredSession session(app, cfg);

  TextTable table(std::vector<std::string>{
      "visit", "station", "activations", "warm starts", "quality Q",
      "latency eps", "reward B"});

  // The visitor tours all three stations, then walks back to the first —
  // an environment the lookup table has already seen.
  std::vector<int> itinerary = {0, 1, 2, 0};
  std::vector<ObjectId> current;
  int visit = 0;
  for (int station_index : itinerary) {
    const Station& station = stations()[static_cast<std::size_t>(station_index)];
    for (ObjectId id : current) app.scene().remove_object(id);
    current.clear();
    for (const auto& [mesh, distance] : station.objects)
      current.push_back(app.add_object(scenario::mesh_asset(mesh), distance));

    const std::size_t before = session.activations().size();
    session.run_until(app.sim().now() + 120.0);  // dwell two minutes

    std::size_t fresh = 0;
    std::size_t warm = 0;
    for (std::size_t i = before; i < session.activations().size(); ++i) {
      if (session.activations()[i].warm_start) {
        ++warm;
      } else {
        ++fresh;
      }
    }
    const app::PeriodMetrics now = app.snapshot();
    table.add_row({std::to_string(++visit), station.name,
                   std::to_string(fresh), std::to_string(warm),
                   TextTable::num(now.average_quality, 3),
                   TextTable::num(now.latency_ratio, 2),
                   TextTable::num(now.reward(cfg.hbo.w), 3)});
  }

  std::cout << "A simulated museum visit on the " << device.name()
            << " with the CF1 taskset (lookup table ON):\n\n";
  table.print(std::cout);
  std::cout << "\nlookup table: " << session.lookup_table().size()
            << " remembered environments, " << session.lookup_table().hits()
            << " hit(s)\n"
            << "Returning to the first station should be served by a warm\n"
               "start (1 control period) instead of a "
            << cfg.hbo.n_initial + cfg.hbo.n_iterations
            << "-period Bayesian activation.\n";
  return 0;
}
