// Power demo: the battery/thermal/DVFS subsystem (hbosim::power) in three
// regimes, on one Galaxy S22 running the heavy SC1/ThermalSoak workloads.
//
//   1. Parity     — attaching the power model without ever throttling
//                   leaves the simulation bitwise identical: same events,
//                   same latencies, to the last floating-point bit. Power
//                   is an observer until the governor acts.
//   2. Throttling — a warm die under sustained soak load crosses the
//                   governor's threshold; clocks step down and every AI
//                   task's latency visibly inflates, period by period.
//   3. Recovery   — HBO runs on the throttling device with the optional
//                   energy cost term enabled. The BO loop observes the
//                   inflated latencies (and pays for watts), shifts
//                   allocation and drops triangles, and the die cools
//                   back out of the throttle band: quality buys headroom.

#include <iomanip>
#include <iostream>
#include <memory>

#include "hbosim/core/controller.hpp"
#include "hbosim/core/cost.hpp"
#include "hbosim/power/power_manager.hpp"
#include "hbosim/scenario/scenarios.hpp"
#include "hbosim/soc/devices_builtin.hpp"

using namespace hbosim;

namespace {

/// Soak-regime app config: warm die, still ambient (deterministic).
app::MarAppConfig hot_config() {
  app::MarAppConfig cfg;
  cfg.enable_power = true;
  cfg.power.ambient_c = 26.0;
  cfg.power.ambient_sigma_c = 0.0;
  cfg.power.initial_temp_c = 58.0;
  return cfg;
}

}  // namespace

int main() {
  const soc::DeviceProfile device = soc::find_builtin("Galaxy S22");
  std::cout << std::fixed << std::setprecision(2);

  // --- regime 1: bitwise parity while the governor never fires ----------
  std::cout << "[1] Parity: power model attached but never throttling\n";
  {
    auto plain = scenario::make_app(device, scenario::ObjectSet::SC1,
                                    scenario::TaskSet::CF1, 42);
    app::MarAppConfig cfg;
    cfg.enable_power = true;
    cfg.power.ambient_sigma_c = 0.0;
    // Thresholds far above any reachable temperature: the power model
    // meters energy and temperature but never touches the clocks.
    cfg.power.throttle_temp_c = 500.0;
    cfg.power.release_temp_c = 499.0;
    auto metered = scenario::make_app(device, scenario::ObjectSet::SC1,
                                      scenario::TaskSet::CF1, 42, cfg);
    plain->start();
    metered->start();
    bool identical = true;
    for (int p = 0; p < 5; ++p) {
      const double a = plain->run_period(2.0).mean_task_latency_ms();
      const double b = metered->run_period(2.0).mean_task_latency_ms();
      identical &= a == b;  // exact comparison is the point
    }
    const power::PowerStats ps = metered->power()->stats();
    std::cout << "    5 periods, latencies bitwise identical: "
              << (identical ? "yes" : "NO") << "\n    meanwhile metered: "
              << ps.mean_power_w << " W, die " << ps.final_die_temp_c
              << " C, battery " << ps.battery_soc * 100.0 << "%\n\n";
  }

  // --- regime 2: sustained soak load hits the governor ------------------
  std::cout << "[2] Throttling: warm die under ThermalSoak/CF1\n"
            << "      t_s   die_C  freq   mean_lat_ms\n";
  {
    auto app = scenario::make_app(device, scenario::ObjectSet::ThermalSoak,
                                  scenario::TaskSet::CF1, 42, hot_config());
    app->start();
    for (int p = 0; p < 20; ++p) {
      const app::PeriodMetrics m = app->run_period(2.0);
      if (p % 2 == 1) {
        std::cout << "    " << std::setw(5) << std::setprecision(0)
                  << m.period_end << std::setprecision(1) << std::setw(8)
                  << m.die_temp_c << std::setw(6) << std::setprecision(2)
                  << m.freq_scale << std::setw(11) << std::setprecision(1)
                  << m.mean_task_latency_ms() << "\n";
      }
    }
    const power::PowerStats ps = app->power()->stats();
    std::cout << std::setprecision(2) << "    "
              << ps.throttle_events << " throttle steps, "
              << ps.time_throttled_s << " s throttled, deepest OPP "
              << ps.min_freq_scale << "x, drain " << ps.drain_pct_per_hour
              << " %/h\n\n";
  }

  // --- regime 3: HBO with the energy cost term claws headroom back ------
  std::cout << "[3] Recovery: HBO (w_energy = 0.05) on the throttled device\n";
  {
    auto app = scenario::make_app(device, scenario::ObjectSet::ThermalSoak,
                                  scenario::TaskSet::CF1, 42, hot_config());
    app->start();
    // Soak until throttled, as in regime 2.
    for (int p = 0; p < 20; ++p) app->run_period(2.0);
    const app::PeriodMetrics before = app->snapshot();
    const double before_lat = app->run_period(2.0).mean_task_latency_ms();

    core::HboConfig hbo;
    hbo.w_energy = 0.05;  // pay 0.05 cost per watt of mean period power
    hbo.n_initial = 4;
    hbo.n_iterations = 8;
    hbo.selection_candidates = 2;
    core::HboController controller(*app, hbo);
    controller.run_activation();
    // Let the chosen configuration settle: with triangles dropped the die
    // cools below the release threshold and the governor restores clocks.
    app::PeriodMetrics after;
    for (int p = 0; p < 30; ++p) after = app->run_period(2.0);

    std::cout << std::setprecision(2)
              << "    before: freq " << before.freq_scale << "x, die "
              << std::setprecision(1) << before.die_temp_c << " C, lat "
              << before_lat << " ms, tri ratio " << std::setprecision(2)
              << before.triangle_ratio << "\n"
              << "    after:  freq " << after.freq_scale << "x, die "
              << std::setprecision(1) << after.die_temp_c << " C, lat "
              << after.mean_task_latency_ms() << " ms, tri ratio "
              << std::setprecision(2) << after.triangle_ratio << ", power "
              << after.avg_power_w << " W\n"
              << "    HBO dropped triangles to cool the die and recover "
                 "AI latency headroom.\n";
  }
  return 0;
}
