// Quickstart: the smallest end-to-end use of the HBO framework.
//
// Builds the paper's SC1-CF1 scenario (9 heavy virtual objects, 6 AI
// tasks) on a simulated Pixel 7, measures the untuned app, runs one HBO
// activation, and prints what changed. See README.md for a walk-through.

#include <iostream>

#include "hbosim/core/controller.hpp"
#include "hbosim/core/cost.hpp"
#include "hbosim/scenario/scenarios.hpp"
#include "hbosim/soc/devices_builtin.hpp"

int main() {
  using namespace hbosim;

  // 1. A device profile and a MAR app with the paper's SC1-CF1 workload:
  //    objects are placed at full quality, tasks start on their
  //    statically best delegate.
  const soc::DeviceProfile device = soc::pixel7();
  auto app = scenario::make_app(device, scenario::ObjectSet::SC1,
                                scenario::TaskSet::CF1);

  std::cout << "Device:  " << device.name() << "\n";
  std::cout << "Objects: " << app->scene().object_count() << " (T^max = "
            << app->scene().total_max_triangles() << " triangles)\n";
  std::cout << "Tasks:   " << app->tasks().size() << "\n\n";

  // 2. Baseline: run two seconds with everything at defaults.
  app->start();
  const app::PeriodMetrics before = app->run_period(2.0);
  std::cout << "Before HBO:  quality=" << before.average_quality
            << "  eps=" << before.latency_ratio
            << "  reward(w=2.5)=" << before.reward(2.5) << "\n";

  // 3. One HBO activation: 5 random probes + 15 Bayesian iterations.
  core::HboConfig cfg;  // paper defaults: w=2.5, EI, Matern-5/2
  core::HboController hbo(*app, cfg);
  const core::ActivationResult result = hbo.run_activation();

  const core::IterationRecord& best = result.best();
  std::cout << "\nHBO best iteration #" << best.index
            << "  cost=" << best.cost << "\n  usage c = [";
  for (std::size_t i = 0; i < best.usage.size(); ++i)
    std::cout << (i ? ", " : "") << best.usage[i];
  std::cout << "]  triangle ratio x = " << best.triangle_ratio << "\n";

  std::cout << "  allocation:";
  const auto labels = app->task_labels();
  for (std::size_t i = 0; i < best.allocation.size(); ++i)
    std::cout << "  " << labels[i] << "->"
              << soc::delegate_name(best.allocation[i]);
  std::cout << "\n";

  // 4. Measure the applied configuration.
  const app::PeriodMetrics after = app->run_period(2.0);
  std::cout << "\nAfter HBO:   quality=" << after.average_quality
            << "  eps=" << after.latency_ratio
            << "  reward(w=2.5)=" << after.reward(2.5) << "\n";
  std::cout << "Reward improvement: " << before.reward(2.5) << " -> "
            << after.reward(2.5) << "\n";
  return 0;
}
