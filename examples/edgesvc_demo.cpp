// Edge-service demo: the three operating regimes of the shared edge
// server, from a single uncontended tenant to fleet-scale overload.
//
//   1. Uncontended — a lone tenant over a clean link reproduces the
//      legacy closed-form NetworkModel delay exactly (the compatibility
//      contract that keeps pre-edgesvc experiments valid).
//   2. Queueing — dozens of tenants push the box near its saturation
//      point: the tail (p99) inflates long before anything is dropped.
//   3. Overload — a starved link in front of a small box: requests
//      bounce at the admission queue and clients fall back on-device
//      (nearest cached LOD / local BO), yet every session completes.

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <vector>

#include "hbosim/common/stats.hpp"
#include "hbosim/edge/network.hpp"
#include "hbosim/edgesvc/broker.hpp"
#include "hbosim/fleet/fleet_simulator.hpp"

int main() {
  using namespace hbosim;
  using namespace hbosim::edgesvc;
  std::cout << std::fixed << std::setprecision(3);

  // ---- Regime 1: uncontended tenant matches the legacy closed form ----
  std::cout << "[1] Uncontended: edgesvc vs legacy NetworkModel\n";
  {
    EdgeServiceSpec spec;  // defaults: degenerate link, no jitter/loss
    EdgeBroker broker(spec, /*session_tenants=*/1);
    auto client = broker.make_client(/*tenant_id=*/0, /*session_seed=*/42);

    const double units = 0.3;                      // 300k-triangle mesh
    const std::uint64_t payload = 2'400'000;       // ~2.4 MB download
    const EdgeResponse resp =
        client->perform(RequestClass::Decimation, units, payload, 0.0);

    edge::NetworkModel legacy;  // same defaults: 20 ms RTT, 120 Mbit/s
    const double closed_form =
        spec.server.service_seconds(RequestClass::Decimation, units) +
        legacy.transfer_seconds(payload);

    std::cout << "    edgesvc elapsed   = " << resp.elapsed_s * 1e3
              << " ms\n    legacy closed form = " << closed_form * 1e3
              << " ms\n";
    if (std::abs(resp.elapsed_s - closed_form) > 1e-12) {
      std::cerr << "    MISMATCH — compatibility contract broken\n";
      return 1;
    }
    std::cout << "    exact match (|diff| <= 1e-12)\n\n";
  }

  // ---- Regime 2: queueing — the tail inflates, nothing is dropped ----
  std::cout << "[2] Queueing: 64 heavy tenants on the wifi preset\n";
  {
    EdgeServiceSpec spec = edge_service_preset("wifi");
    spec.background.per_tenant_rps = 3.0;
    spec.background.mean_units = 0.5;
    EdgeBroker broker(spec, /*session_tenants=*/64);
    auto client = broker.make_client(0, 42);

    std::vector<double> elapsed_ms;
    for (int i = 0; i < 200; ++i) {
      const EdgeResponse r = client->perform(
          RequestClass::Decimation, 0.2, 1'500'000, 0.25 * (i + 1));
      elapsed_ms.push_back(r.elapsed_s * 1e3);
    }
    std::sort(elapsed_ms.begin(), elapsed_ms.end());
    const EdgeServerStats& srv = client->server().stats();
    std::cout << "    p50=" << percentile(elapsed_ms, 50.0)
              << " ms  p99=" << percentile(elapsed_ms, 99.0)
              << " ms  queue depth p95=" << std::setprecision(1)
              << srv.queue_depth_p95() << std::setprecision(3)
              << "  rejection rate=" << srv.rejection_rate() << "\n\n";
  }

  // ---- Regime 3: overload — rejections + fallbacks, sessions finish ----
  std::cout << "[3] Overload: 8-session fleet + 96 extra tenants on the "
               "congested preset\n";
  {
    fleet::FleetSpec spec;
    spec.sessions = 8;
    spec.threads = 0;
    spec.duration_s = 30.0;
    spec.base_seed = 2024;
    spec.use_shared_pool = true;
    spec.session.hbo.n_initial = 3;
    spec.session.hbo.n_iterations = 4;
    spec.session.hbo.selection_candidates = 1;
    spec.session.hbo.control_period_s = 1.0;
    spec.session.hbo.monitor_period_s = 1.0;
    spec.use_edge_service = true;
    spec.edge = edge_service_preset("congested");
    spec.edge.extra_tenants = 96;
    spec.edge.background.per_tenant_rps = 4.0;

    fleet::FleetSimulator simulator(spec);
    const fleet::FleetResult result = simulator.run();
    const fleet::FleetMetrics& m = result.metrics;

    std::size_t completed = 0;
    for (const fleet::SessionResult& s : result.sessions) {
      if (s.activations > 0) ++completed;
    }
    std::cout << "    sessions completed = " << completed << "/"
              << m.sessions << " (mean reward " << m.reward.mean << ")\n"
              << "    edge: " << m.edge.requests << " requests, rejection "
              << "rate=" << m.edge.rejection_rate
              << ", fallback rate=" << m.edge.fallback_rate << " ("
              << m.edge.decim_fallbacks << " nearest-LOD, "
              << m.edge.bo_fallbacks << " local-BO)\n";
    if (completed != static_cast<std::size_t>(m.sessions)) {
      std::cerr << "    FAIL — overload stalled sessions\n";
      return 1;
    }
    if (m.edge.rejection_rate <= 0.0 || m.edge.fallback_rate <= 0.0) {
      std::cerr << "    FAIL — overload regime did not materialize\n";
      return 1;
    }
    std::cout << "    graceful degradation: every session finished\n";
  }
  return 0;
}
