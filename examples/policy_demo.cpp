// Policy demo: the two faces of hbosim::policy in one minute.
//
// 1. Meta-warm-starts — a PriorStore watches a few ordinary HBO sessions,
//    fits a ScenarioPrior for their (device, scenario, environment), and a
//    brand-new cold session starts its Bayesian search from everything the
//    fleet already knows: the demo prints the best-cost-so-far curve of a
//    flat cold start next to the prior-warmed one.
//
// 2. The LinUCB agent — the same app driven by the contextual bandit,
//    which pays one control period per decision instead of HBO's
//    multi-period activation burst. Mid-run the user walks toward the
//    objects (distance scale 0.5) and the demo prints the reward trace
//    around the shift.

#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "hbosim/core/monitored_session.hpp"
#include "hbosim/policy/bandit_session.hpp"
#include "hbosim/policy/prior_store.hpp"
#include "hbosim/scenario/scenarios.hpp"
#include "hbosim/soc/devices_builtin.hpp"

int main() {
  using namespace hbosim;

  const char* kDevice = "Pixel 7";
  const char* kScenario = "SC2/CF2";
  const soc::DeviceProfile device = soc::find_builtin(kDevice);
  auto make = [&](std::uint64_t seed) {
    auto app = scenario::make_app(device, scenario::ObjectSet::SC2,
                                  scenario::TaskSet::CF2, seed);
    app->start();
    return app;
  };
  core::HboConfig hbo;
  hbo.n_initial = 3;
  hbo.n_iterations = 7;
  hbo.selection_candidates = 1;
  hbo.control_period_s = 1.0;
  hbo.monitor_period_s = 1.0;

  // --- 1. train a PriorStore from ordinary session traffic ---------------
  std::cout << "Training a PriorStore on 6 HBO sessions (" << kDevice << ", "
            << kScenario << ")...\n";
  policy::PriorStore store;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto app = make(seed);
    core::MonitoredSessionConfig cfg;
    cfg.hbo = hbo;
    cfg.hbo.seed = seed;
    core::MonitoredSession session(*app, cfg);
    session.run_until(90.0);
    for (const core::SessionActivation& a : session.activations())
      if (!a.warm_start)
        for (const core::IterationRecord& rec : a.result.history)
          store.record({kDevice, kScenario, a.env}, rec.z, rec.cost);
  }
  const auto snapshot = store.snapshot();
  const policy::PriorStoreStats stats = store.stats();
  std::cout << "  " << stats.recorded << " observations recorded, "
            << stats.keys << " environment keys, " << stats.fits
            << " priors fitted\n\n";

  // --- race a flat cold start against a prior-warmed one -----------------
  const std::uint64_t cold_seed = 77;
  std::vector<std::vector<double>> curves;
  for (const bool warmed : {false, true}) {
    auto app = make(cold_seed);
    core::HboConfig cfg = hbo;
    cfg.seed = cold_seed;
    core::HboController controller(*app, cfg);
    if (warmed)
      controller.set_surrogate_prior(snapshot->find(
          kDevice, kScenario, core::SolutionLookupTable::make_key(*app)));
    curves.push_back(controller.run_activation().best_cost_curve());
  }
  std::cout << std::fixed << std::setprecision(3);
  std::cout << "Cold session, best cost after each suggest() round "
               "(lower is better):\n  round:";
  for (std::size_t i = 0; i < curves[0].size(); ++i)
    std::cout << std::setw(8) << i + 1;
  std::cout << "\n  flat: ";
  for (double c : curves[0]) std::cout << std::setw(8) << c;
  std::cout << "\n  prior:";
  for (double c : curves[1]) std::cout << std::setw(8) << c;
  std::cout << "\n\n";

  // --- 2. the LinUCB agent through an environment shift ------------------
  std::cout << "LinUCB agent: 120 one-period pulls, the user walks up to "
               "the objects at t=60s...\n";
  auto app = make(cold_seed);
  policy::BanditSessionConfig bcfg;
  bcfg.hbo = hbo;
  bcfg.hbo.seed = cold_seed;
  policy::BanditSession agent(*app, bcfg);
  agent.run_until(60.0);
  app->set_user_distance_scale(0.5);
  agent.run_until(120.0);

  auto window = [&](double lo, double hi) {
    double acc = 0.0;
    int n = 0;
    for (const auto& [t, r] : agent.reward_trace())
      if (t > lo && t <= hi) {
        acc += r;
        ++n;
      }
    return n > 0 ? acc / n : 0.0;
  };
  std::cout << "  pulls=" << agent.experiences().size()
            << "  reward: settled pre-shift=" << window(40.0, 60.0)
            << "  first 10s after shift=" << window(60.0, 70.0)
            << "  settled post-shift=" << window(100.0, 120.0) << "\n";
  std::cout << "  (an HBO activation would spend ~" << hbo.n_initial +
                   hbo.n_iterations
            << " control periods exploring after the shift; the agent "
               "re-selects every period)\n";
  return 0;
}
