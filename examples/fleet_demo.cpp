// Fleet demo: simulate a small fleet of MAR sessions across the paper's
// two phones and four Table II workloads, with the shared cross-session
// solution pool enabled, and print the fleet-wide roll-up.
//
// This is the Section VI "optimization results should be shared across
// users" direction in action: the first session to converge in each
// (device, scenario, environment) bucket pays the full ~20-period Bayesian
// activation; every later session warm-starts from the pooled solution in
// a couple of control periods.
//
// Observability flags:
//   --trace <file.json>    capture a Chrome/Perfetto trace of the run
//                          (open at https://ui.perfetto.dev)
//   --metrics <file.json>  dump the telemetry metrics snapshot as JSON
// Either flag activates a TelemetrySession and prints the wall-clock
// profile report at exit.
//
//   --edge [preset]        route decimation and warm-start fetches through
//                          a shared contended edge server (preset: lan |
//                          wifi | congested, default wifi) and print the
//                          edge-health roll-up.
//
//   --power                attach the battery/thermal/DVFS model to every
//                          session (hbosim::power), add the ThermalSoak
//                          workload to the scenario mix so some sessions
//                          actually heat into their throttle band, and
//                          print the thermal/energy roll-up.
//
//   --policy [prior|bandit|off]
//                          enable the learned policy layer (hbosim::policy,
//                          default off). `prior` fits warm-start GP priors
//                          from fleet traffic at epoch barriers; `bandit`
//                          replaces HBO with the LinUCB agent. Disables the
//                          shared solution pool so the per-epoch convergence
//                          printout isolates what the *policy* learned. The
//                          demo prints a warm-vs-cold comparison: epoch 0
//                          runs cold (nothing learned yet), later epochs
//                          read the frozen artifact trained on everything
//                          before them.
//
//   --market [pf|maxmin|price]
//                          make the edge an actor (hbosim::marketsvc,
//                          default pf): a cross-tenant JointAllocator
//                          ticks at every epoch barrier and jointly
//                          assigns link shares, compute shares, and a
//                          per-tenant resolution knob under congestion
//                          budgets. Implies --edge (wifi preset unless
//                          --edge chose one) and disables the shared
//                          solution pool (the allocator owns the epoch
//                          barrier). Prints the market roll-up: admission
//                          rate, resolution distribution, decided link /
//                          compute load, and the posted price.
//
//   --offload              put the edge inside every session's HBO decision
//                          space (hbosim::offload): sessions search the
//                          4-target CPU/GPU/NPU/edge simplex and route the
//                          decided share of their inferences to the edge
//                          mirror, with radio energy charged to the session
//                          battery. Implies --edge (wifi preset unless
//                          --edge chose one) and --power (the radio energy
//                          term needs a battery). Prints the energy/offload
//                          roll-up: offload rate, mean edge share, Wh
//                          consumed, and the projected hours-of-AR-per-
//                          charge figure the frontier bench optimizes.
//
//   --sched                scheduler forensics (des::SchedAnalyzer): every
//                          session records a per-job lifecycle trace, the
//                          fleet prints the SchedHealth roll-up (worst p99
//                          slowdown, fairness floor, starvation count), and
//                          the worst session is deterministically re-run to
//                          print its full forensics report. Tracing changes
//                          no simulated result. Disables the shared solution
//                          pool: pool warm starts depend on completion order
//                          (see fleet_simulator.hpp), and the deep-dive
//                          re-run must reproduce the fleet's trajectory
//                          bit for bit.
//   --gantt <file.csv>     with --sched: write the re-run worst session's
//                          per-job Gantt timeline as CSV.
//
//   --sessions N           fleet size (default 24). Large fleets (> 96
//                          sessions) switch to a fast session profile
//                          (shorter duration, truncated activations) so a
//                          10^5-session run finishes in minutes.
//
//   --stream               run the streaming roll-up path
//                          (retain_results=false): per-session results are
//                          folded into P² sketches as they complete instead
//                          of being retained, so memory stays flat in fleet
//                          size. Prints per-epoch throughput (sessions/s)
//                          and RSS heartbeats, and the peak RSS at exit.
//                          The per-session table is skipped (nothing is
//                          retained to print).

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>

#include "hbosim/common/meminfo.hpp"
#include "hbosim/fleet/fleet_simulator.hpp"
#include "hbosim/marketsvc/market.hpp"
#include "hbosim/telemetry/report.hpp"
#include "hbosim/telemetry/telemetry.hpp"

int main(int argc, char** argv) {
  using namespace hbosim;

  std::string trace_path;
  std::string metrics_path;
  bool use_edge = false;
  bool use_power = false;
  bool use_offload = false;
  bool use_sched = false;
  bool stream = false;
  std::string gantt_path;
  std::size_t sessions_override = 0;
  std::string edge_preset = "wifi";
  std::string policy_mode = "off";
  bool use_market = false;
  std::string market_policy = "pf";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--sessions" && i + 1 < argc) {
      sessions_override = static_cast<std::size_t>(std::atoll(argv[++i]));
      if (sessions_override == 0) {
        std::cerr << "--sessions needs a positive count\n";
        return 2;
      }
    } else if (arg == "--stream") {
      stream = true;
    } else if (arg == "--edge") {
      use_edge = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') edge_preset = argv[++i];
    } else if (arg == "--power") {
      use_power = true;
    } else if (arg == "--offload") {
      use_offload = true;
      use_edge = true;   // the edge coordinate needs a mirror to route to
      use_power = true;  // the radio energy term needs a battery
    } else if (arg == "--sched") {
      use_sched = true;
    } else if (arg == "--gantt" && i + 1 < argc) {
      gantt_path = argv[++i];
    } else if (arg == "--market") {
      use_market = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') market_policy = argv[++i];
      if (market_policy != "pf" && market_policy != "maxmin" &&
          market_policy != "price") {
        std::cerr << "unknown --market policy '" << market_policy
                  << "' (expected pf|maxmin|price)\n";
        return 2;
      }
    } else if (arg == "--policy") {
      policy_mode = "prior";
      if (i + 1 < argc && argv[i + 1][0] != '-') policy_mode = argv[++i];
      if (policy_mode != "prior" && policy_mode != "bandit" &&
          policy_mode != "off") {
        std::cerr << "unknown --policy mode '" << policy_mode
                  << "' (expected prior|bandit|off)\n";
        return 2;
      }
    } else {
      std::cerr << "usage: fleet_demo [--trace out.json] [--metrics out.json]"
                   " [--edge [lan|wifi|congested]]"
                   " [--market [pf|maxmin|price]] [--power] [--offload]"
                   " [--sched] [--gantt out.csv]"
                   " [--policy [prior|bandit|off]]"
                   " [--sessions N] [--stream]\n";
      return 2;
    }
  }

  std::unique_ptr<telemetry::TelemetrySession> telem;
  if (!trace_path.empty() || !metrics_path.empty()) {
    telemetry::TelemetryConfig tcfg;
    // Deep rings (~16 MiB/thread): a 24-session fleet emits a few hundred
    // thousand events and the demo would rather keep them all than wrap.
    tcfg.events_per_thread = 1 << 18;
    telem = std::make_unique<telemetry::TelemetrySession>(tcfg);
  }

  fleet::FleetSpec spec;
  spec.sessions = 24;
  spec.threads = 0;  // size to the machine
  spec.duration_s = 40.0;
  spec.base_seed = 2024;
  spec.use_shared_pool = true;
  // Shorten activations so the demo runs in seconds.
  spec.session.hbo.n_initial = 3;
  spec.session.hbo.n_iterations = 4;
  spec.session.hbo.selection_candidates = 1;
  spec.session.hbo.control_period_s = 1.0;
  spec.session.hbo.monitor_period_s = 1.0;
  if (use_edge || use_market) {
    spec.use_edge_service = true;
    spec.edge = edgesvc::edge_service_preset(edge_preset);
  }
  if (use_market) {
    spec.market.enabled = true;
    spec.market.allocator.policy =
        marketsvc::market_policy_from_name(market_policy);
    // Eight tenants contend per allocation round; the allocator owns the
    // epoch barrier, so the shared pool (whose warm starts depend on
    // session completion order) stays off.
    spec.market.epoch_sessions = 8;
    spec.use_shared_pool = false;
  }
  if (policy_mode != "off") {
    spec.policy.mode = policy_mode == "prior" ? fleet::PolicyMode::Prior
                                              : fleet::PolicyMode::Bandit;
    // Four epochs of six: epoch 0 is the cold control group, epochs 1-3
    // read artifacts trained on progressively more traffic.
    spec.policy.epoch_sessions = 6;
    // Isolate the policy layer's contribution: no raw-solution sharing.
    spec.use_shared_pool = false;
  }
  if (sessions_override != 0) {
    spec.sessions = sessions_override;
    if (spec.sessions > 96) {
      // Mega profile: a 10^5-session fleet at the demo's default per-
      // session cost would run for hours; shorten the simulated horizon
      // and truncate activations so each session costs a few ms.
      spec.duration_s = 12.0;
      spec.session.hbo.n_initial = 2;
      spec.session.hbo.n_iterations = 3;
    }
  }
  if (stream) {
    spec.retain_results = false;
    // ~20 heartbeats over the run, whatever the fleet size.
    spec.progress_every = std::max<std::size_t>(spec.sessions / 20, 1);
    spec.on_progress = [](const fleet::FleetProgress& p) {
      const double sps =
          p.wall_seconds > 0.0
              ? static_cast<double>(p.completed) / p.wall_seconds
              : 0.0;
      std::cout << "  [" << p.completed << "/" << p.sessions << "] "
                << std::fixed << std::setprecision(1) << p.wall_seconds
                << " s elapsed, " << std::setprecision(0) << sps
                << " sessions/s, rss "
                << current_rss_bytes() / (1 << 20) << " MB (peak "
                << peak_rss_bytes() / (1 << 20) << " MB)\n";
    };
  }
  if (use_sched) {
    spec.sched.enabled = true;
    // Pool warm starts depend on worker completion order, which would
    // make the worst-session re-run below diverge from the fleet run.
    spec.use_shared_pool = false;
  }
  if (use_offload) {
    spec.offload.enabled = true;
    // A joint cost without an energy term would never *prefer* the edge on
    // a cool die; weight battery draw into phi so the optimizer trades
    // quality against hours-of-AR-per-charge (see bench_offload).
    spec.session.hbo.w_energy = 0.05;
  }
  if (use_power) {
    spec.use_power_model = true;
    // Weight the soak workload heavily so the 40-second demo shows real
    // throttling, and bias the ambient warm so the RC climb is shorter.
    spec.scenarios = {{scenario::ObjectSet::SC1, scenario::TaskSet::CF1, 1.0},
                      {scenario::ObjectSet::SC2, scenario::TaskSet::CF2, 1.0},
                      {scenario::ObjectSet::ThermalSoak,
                       scenario::TaskSet::CF1, 2.0}};
    spec.power.ambient_c = 31.0;
    // Devices start warm (prior use) and sessions run longer, so the soak
    // workload reaches the governor's throttle band instead of spending
    // the whole demo on the RC climb from a cold die.
    spec.power.initial_temp_c = 60.0;
    spec.duration_s = 90.0;
  }

  fleet::FleetSimulator simulator(spec);
  std::cout << "Simulating a fleet of " << spec.sessions
            << " MAR sessions (Pixel 7 / Galaxy S22, SC1/SC2 x CF1/CF2)"
            << (use_edge ? " sharing a '" + edge_preset + "' edge server"
                         : std::string())
            << "...\n\n";
  const fleet::FleetResult result = simulator.run();

  std::cout << std::fixed << std::setprecision(3);
  if (!result.sessions.empty()) {
    std::cout << "  id  device      scenario  activ  warm(shared)  mean_Q  "
                 "mean_eps  mean_B\n";
  }
  for (const fleet::SessionResult& s : result.sessions) {
    std::cout << "  " << std::setw(2) << s.session_id << "  " << std::left
              << std::setw(10) << s.device << "  " << std::setw(8)
              << s.scenario << std::right << "  " << std::setw(5)
              << s.activations << "  " << std::setw(4) << s.warm_starts
              << " (" << s.shared_warm_starts << ")     " << std::setw(6)
              << s.mean_quality << "  " << std::setw(8)
              << s.mean_latency_ratio << "  " << std::setw(6)
              << s.mean_reward << "\n";
  }

  const fleet::FleetMetrics& m = result.metrics;
  std::cout << "\nFleet: " << m.sessions << " sessions, "
            << m.total_sim_seconds << " simulated s in " << m.wall_seconds
            << " wall s (" << std::setprecision(1) << m.sessions_per_sec
            << " sessions/s)\n"
            << std::setprecision(3) << "  reward  mean=" << m.reward.mean
            << " p50=" << m.reward.p50 << " p90=" << m.reward.p90
            << " p99=" << m.reward.p99 << "\n"
            << "  quality mean=" << m.quality.mean
            << "  latency ratio mean=" << m.latency_ratio.mean << "\n"
            << "  activations=" << m.total_activations << " warm starts="
            << m.total_warm_starts << " (shared " << m.total_shared_warm_starts
            << "), warm-start rate=" << m.warm_start_rate << "\n"
            << "  pool: " << m.pool.size << " entries, hit rate "
            << m.pool.hit_rate() << ", " << m.pool.stores << " stores, "
            << m.pool.evictions << " evictions\n";
  if (stream) {
    std::cout << "  streaming roll-up (percentiles via P2 sketches), peak rss "
              << peak_rss_bytes() / (1 << 20) << " MB\n";
  }
  if (m.edge.enabled) {
    std::cout << "  edge: " << m.edge.requests << " requests, "
              << m.edge.retries << " retries, " << m.edge.fallbacks
              << " fallbacks (" << m.edge.decim_fallbacks << " nearest-LOD, "
              << m.edge.bo_fallbacks << " local-BO)\n"
              << "        rejection rate=" << m.edge.rejection_rate
              << " fallback rate=" << m.edge.fallback_rate
              << " queue depth p95=" << std::setprecision(1)
              << m.edge.queue_depth_p95 << " mean wait="
              << std::setprecision(3) << m.edge.mean_wait_ms << " ms\n";
  }
  if (m.market.enabled) {
    std::cout << "  market (" << m.market.policy << "): " << m.market.ticks
              << " allocation ticks, admission rate " << std::setprecision(2)
              << m.market.admission_rate << " (" << m.market.denied_sessions
              << " denied)\n"
              << "          resolution mean=" << std::setprecision(3)
              << m.market.resolution.mean << " p50="
              << m.market.resolution.p50 << " min=" << m.market.resolution.min
              << "\n"
              << "          decided link activity="
              << m.market.link_activity << " compute utilization="
              << m.market.compute_utilization;
    if (m.market.policy == "price") {
      std::cout << " posted price=" << m.market.final_price;
    }
    std::cout << "\n";
  }
  if (m.power.enabled) {
    std::cout << "  power: " << std::setprecision(1) << m.power.total_energy_j
              << " J total, mean draw " << std::setprecision(2)
              << m.power.mean_power_w.mean << " W (p90 "
              << m.power.mean_power_w.p90 << "), drain "
              << m.power.drain_pct_per_hour.mean << " %/h\n"
              << "         die temp max p50=" << std::setprecision(1)
              << m.power.max_die_temp_c.p50 << " C p99="
              << m.power.max_die_temp_c.p99 << " C, "
              << m.power.throttle_events << " throttle steps across "
              << std::setprecision(0)
              << m.power.throttled_session_fraction * 100.0
              << "% of sessions, deepest OPP " << std::setprecision(2)
              << m.power.min_freq_scale << "x\n"
              << std::setprecision(3);
  }

  if (m.offload.enabled) {
    const double wh = m.offload.radio_energy_j / 3600.0;
    const double total_wh = m.power.total_energy_j / 3600.0;
    const double drain = m.power.drain_pct_per_hour.mean;
    std::cout << "  offload: rate " << std::setprecision(2)
              << m.offload.offload_rate << " (" << m.offload.remote_inferences
              << "/" << m.offload.completed_inferences << " inferences, "
              << m.offload.fallbacks << " fallbacks)\n"
              << "           edge share mean=" << std::setprecision(3)
              << m.offload.edge_share.mean << " p90="
              << m.offload.edge_share.p90 << "\n"
              << "           energy " << std::setprecision(2) << total_wh
              << " Wh total (" << wh << " Wh radio), projected "
              << (drain > 0.0 ? 100.0 / drain : 0.0)
              << " h of AR per charge\n" << std::setprecision(3);
  }

  if (m.sched.enabled) {
    std::cout << "  sched: " << m.sched.jobs << " jobs from "
              << m.sched.events << " lifecycle events ("
              << m.sched.dropped_events << " dropped)\n"
              << "         worst p99 slowdown " << std::setprecision(2)
              << m.sched.worst_p99_slowdown << " (p50 over sessions "
              << m.sched.p99_slowdown.p50 << "), fairness floor "
              << std::setprecision(3) << m.sched.fairness_floor << ", "
              << m.sched.starved_jobs << " starved jobs across "
              << std::setprecision(0)
              << m.sched.starved_session_fraction * 100.0
              << "% of sessions\n" << std::setprecision(3);
  }

  if (m.policy.enabled) {
    std::cout << "  policy (" << m.policy.mode << "): " << m.policy.epochs
              << " epochs of " << spec.policy.epoch_sessions << " sessions";
    if (spec.policy.mode == fleet::PolicyMode::Prior) {
      std::cout << ", " << m.policy.priors_fitted << " priors fitted over "
                << m.policy.store_keys << " env keys, injection rate "
                << m.policy.prior_injection_rate << "\n";
    } else {
      std::cout << ", " << m.policy.bandit_updates
                << " LinUCB updates from " << m.policy.bandit_pulls
                << " pulls\n";
    }

    // Warm-vs-cold convergence: epoch 0 ran before anything was learned;
    // every later epoch reads an artifact trained on all prior epochs.
    // Needs retained per-session results, so it's skipped under --stream.
    if (!result.sessions.empty()) {
      std::cout << "  epoch  sessions  "
                << (spec.policy.mode == fleet::PolicyMode::Prior
                        ? "prior_activations"
                        : "arm_pulls        ")
                << "  mean_B\n";
      const std::size_t epochs = m.policy.epochs > 0 ? m.policy.epochs : 1;
      double cold_reward = 0.0, warm_reward = 0.0;
      for (std::size_t e = 0; e < epochs; ++e) {
        std::size_t count = 0, learned = 0;
        double reward = 0.0;
        for (const fleet::SessionResult& s : result.sessions) {
          if (s.session_id / spec.policy.epoch_sessions != e) continue;
          ++count;
          learned += spec.policy.mode == fleet::PolicyMode::Prior
                         ? s.prior_activations
                         : s.bandit_pulls;
          reward += s.mean_reward;
        }
        if (count == 0) continue;
        reward /= static_cast<double>(count);
        if (e == 0) cold_reward = reward;
        if (e + 1 == epochs) warm_reward = reward;
        std::cout << "  " << std::setw(5) << e << "  " << std::setw(8) << count
                  << "  " << std::setw(17) << learned << "  " << std::setw(6)
                  << reward << "\n";
      }
      std::cout << "  cold (epoch 0) mean_B=" << cold_reward
                << "  warm (epoch " << epochs - 1 << ") mean_B=" << warm_reward
                << "  delta=" << warm_reward - cold_reward << "\n";
      }
  }

  if (use_sched) {
    // Deep dive: re-run the worst session (highest p99 slowdown; session 0
    // under --stream, where per-session results are not retained) with a
    // fresh trace. Sessions are pure functions of (spec, seed), so the
    // re-run reproduces the fleet's trajectory bit for bit.
    std::size_t worst = 0;
    for (const fleet::SessionResult& s : result.sessions) {
      if (s.sched_worst_p99_slowdown >
          result.sessions[worst].sched_worst_p99_slowdown) {
        worst = s.session_id;
      }
    }
    des::SchedTrace trace(spec.sched);
    simulator.run_session_traced(simulator.session_spec(worst), trace);
    des::SchedAnalyzer analysis(trace, spec.sched_analysis);
    const fleet::SessionSpec ws = simulator.session_spec(worst);
    std::cout << "\nWorst session " << worst << " (" << ws.device << ", "
              << ws.scenario_name() << "), re-run deterministically:\n";
    analysis.print_report(std::cout);
    if (!gantt_path.empty()) {
      std::ofstream os(gantt_path);
      if (!os) {
        std::cerr << "cannot open " << gantt_path << " for writing\n";
        return 1;
      }
      analysis.write_gantt_csv(os);
      std::cout << "Gantt timeline (" << analysis.jobs().size()
                << " jobs) -> " << gantt_path << "\n";
    }
  }

  if (telem) {
    // The fleet's worker pool has been joined, so every instrumented
    // thread is quiescent and the export is a consistent snapshot.
    if (!trace_path.empty()) {
      std::ofstream os(trace_path);
      if (!os) {
        std::cerr << "cannot open " << trace_path << " for writing\n";
        return 1;
      }
      telem->write_chrome_trace(os);
      std::cout << "\nTrace: " << telem->events_recorded() << " events ("
                << telem->events_dropped() << " dropped) -> " << trace_path
                << "  (open at https://ui.perfetto.dev)\n";
    }
    if (!metrics_path.empty()) {
      std::ofstream os(metrics_path);
      if (!os) {
        std::cerr << "cannot open " << metrics_path << " for writing\n";
        return 1;
      }
      telem->metrics().snapshot().write_json(os);
      std::cout << "Metrics snapshot -> " << metrics_path << "\n";
    }
    std::cout << "\n";
    telem->report().print(std::cout);
  }
  return 0;
}
