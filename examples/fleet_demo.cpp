// Fleet demo: simulate a small fleet of MAR sessions across the paper's
// two phones and four Table II workloads, with the shared cross-session
// solution pool enabled, and print the fleet-wide roll-up.
//
// This is the Section VI "optimization results should be shared across
// users" direction in action: the first session to converge in each
// (device, scenario, environment) bucket pays the full ~20-period Bayesian
// activation; every later session warm-starts from the pooled solution in
// a couple of control periods.

#include <iomanip>
#include <iostream>

#include "hbosim/fleet/fleet_simulator.hpp"

int main() {
  using namespace hbosim;

  fleet::FleetSpec spec;
  spec.sessions = 24;
  spec.threads = 0;  // size to the machine
  spec.duration_s = 40.0;
  spec.base_seed = 2024;
  spec.use_shared_pool = true;
  // Shorten activations so the demo runs in seconds.
  spec.session.hbo.n_initial = 3;
  spec.session.hbo.n_iterations = 4;
  spec.session.hbo.selection_candidates = 1;
  spec.session.hbo.control_period_s = 1.0;
  spec.session.hbo.monitor_period_s = 1.0;

  fleet::FleetSimulator simulator(spec);
  std::cout << "Simulating a fleet of " << spec.sessions
            << " MAR sessions (Pixel 7 / Galaxy S22, SC1/SC2 x CF1/CF2)...\n\n";
  const fleet::FleetResult result = simulator.run();

  std::cout << std::fixed << std::setprecision(3);
  std::cout << "  id  device      scenario  activ  warm(shared)  mean_Q  "
               "mean_eps  mean_B\n";
  for (const fleet::SessionResult& s : result.sessions) {
    std::cout << "  " << std::setw(2) << s.session_id << "  " << std::left
              << std::setw(10) << s.device << "  " << std::setw(8)
              << s.scenario << std::right << "  " << std::setw(5)
              << s.activations << "  " << std::setw(4) << s.warm_starts
              << " (" << s.shared_warm_starts << ")     " << std::setw(6)
              << s.mean_quality << "  " << std::setw(8)
              << s.mean_latency_ratio << "  " << std::setw(6)
              << s.mean_reward << "\n";
  }

  const fleet::FleetMetrics& m = result.metrics;
  std::cout << "\nFleet: " << m.sessions << " sessions, "
            << m.total_sim_seconds << " simulated s in " << m.wall_seconds
            << " wall s (" << std::setprecision(1) << m.sessions_per_sec
            << " sessions/s)\n"
            << std::setprecision(3) << "  reward  mean=" << m.reward.mean
            << " p50=" << m.reward.p50 << " p90=" << m.reward.p90
            << " p99=" << m.reward.p99 << "\n"
            << "  quality mean=" << m.quality.mean
            << "  latency ratio mean=" << m.latency_ratio.mean << "\n"
            << "  activations=" << m.total_activations << " warm starts="
            << m.total_warm_starts << " (shared " << m.total_shared_warm_starts
            << "), warm-start rate=" << m.warm_start_rate << "\n"
            << "  pool: " << m.pool.size << " entries, hit rate "
            << m.pool.hit_rate() << ", " << m.pool.stores << " stores, "
            << m.pool.evictions << " evictions\n";
  return 0;
}
