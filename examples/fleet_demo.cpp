// Fleet demo: simulate a small fleet of MAR sessions across the paper's
// two phones and four Table II workloads, with the shared cross-session
// solution pool enabled, and print the fleet-wide roll-up.
//
// This is the Section VI "optimization results should be shared across
// users" direction in action: the first session to converge in each
// (device, scenario, environment) bucket pays the full ~20-period Bayesian
// activation; every later session warm-starts from the pooled solution in
// a couple of control periods.
//
// Observability flags:
//   --trace <file.json>    capture a Chrome/Perfetto trace of the run
//                          (open at https://ui.perfetto.dev)
//   --metrics <file.json>  dump the telemetry metrics snapshot as JSON
// Either flag activates a TelemetrySession and prints the wall-clock
// profile report at exit.
//
//   --edge [preset]        route decimation and warm-start fetches through
//                          a shared contended edge server (preset: lan |
//                          wifi | congested, default wifi) and print the
//                          edge-health roll-up.
//
//   --power                attach the battery/thermal/DVFS model to every
//                          session (hbosim::power), add the ThermalSoak
//                          workload to the scenario mix so some sessions
//                          actually heat into their throttle band, and
//                          print the thermal/energy roll-up.

#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>

#include "hbosim/fleet/fleet_simulator.hpp"
#include "hbosim/telemetry/report.hpp"
#include "hbosim/telemetry/telemetry.hpp"

int main(int argc, char** argv) {
  using namespace hbosim;

  std::string trace_path;
  std::string metrics_path;
  bool use_edge = false;
  bool use_power = false;
  std::string edge_preset = "wifi";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--edge") {
      use_edge = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') edge_preset = argv[++i];
    } else if (arg == "--power") {
      use_power = true;
    } else {
      std::cerr << "usage: fleet_demo [--trace out.json] [--metrics out.json]"
                   " [--edge [lan|wifi|congested]] [--power]\n";
      return 2;
    }
  }

  std::unique_ptr<telemetry::TelemetrySession> telem;
  if (!trace_path.empty() || !metrics_path.empty()) {
    telemetry::TelemetryConfig tcfg;
    // Deep rings (~16 MiB/thread): a 24-session fleet emits a few hundred
    // thousand events and the demo would rather keep them all than wrap.
    tcfg.events_per_thread = 1 << 18;
    telem = std::make_unique<telemetry::TelemetrySession>(tcfg);
  }

  fleet::FleetSpec spec;
  spec.sessions = 24;
  spec.threads = 0;  // size to the machine
  spec.duration_s = 40.0;
  spec.base_seed = 2024;
  spec.use_shared_pool = true;
  // Shorten activations so the demo runs in seconds.
  spec.session.hbo.n_initial = 3;
  spec.session.hbo.n_iterations = 4;
  spec.session.hbo.selection_candidates = 1;
  spec.session.hbo.control_period_s = 1.0;
  spec.session.hbo.monitor_period_s = 1.0;
  if (use_edge) {
    spec.use_edge_service = true;
    spec.edge = edgesvc::edge_service_preset(edge_preset);
  }
  if (use_power) {
    spec.use_power_model = true;
    // Weight the soak workload heavily so the 40-second demo shows real
    // throttling, and bias the ambient warm so the RC climb is shorter.
    spec.scenarios = {{scenario::ObjectSet::SC1, scenario::TaskSet::CF1, 1.0},
                      {scenario::ObjectSet::SC2, scenario::TaskSet::CF2, 1.0},
                      {scenario::ObjectSet::ThermalSoak,
                       scenario::TaskSet::CF1, 2.0}};
    spec.power.ambient_c = 31.0;
    // Devices start warm (prior use) and sessions run longer, so the soak
    // workload reaches the governor's throttle band instead of spending
    // the whole demo on the RC climb from a cold die.
    spec.power.initial_temp_c = 60.0;
    spec.duration_s = 90.0;
  }

  fleet::FleetSimulator simulator(spec);
  std::cout << "Simulating a fleet of " << spec.sessions
            << " MAR sessions (Pixel 7 / Galaxy S22, SC1/SC2 x CF1/CF2)"
            << (use_edge ? " sharing a '" + edge_preset + "' edge server"
                         : std::string())
            << "...\n\n";
  const fleet::FleetResult result = simulator.run();

  std::cout << std::fixed << std::setprecision(3);
  std::cout << "  id  device      scenario  activ  warm(shared)  mean_Q  "
               "mean_eps  mean_B\n";
  for (const fleet::SessionResult& s : result.sessions) {
    std::cout << "  " << std::setw(2) << s.session_id << "  " << std::left
              << std::setw(10) << s.device << "  " << std::setw(8)
              << s.scenario << std::right << "  " << std::setw(5)
              << s.activations << "  " << std::setw(4) << s.warm_starts
              << " (" << s.shared_warm_starts << ")     " << std::setw(6)
              << s.mean_quality << "  " << std::setw(8)
              << s.mean_latency_ratio << "  " << std::setw(6)
              << s.mean_reward << "\n";
  }

  const fleet::FleetMetrics& m = result.metrics;
  std::cout << "\nFleet: " << m.sessions << " sessions, "
            << m.total_sim_seconds << " simulated s in " << m.wall_seconds
            << " wall s (" << std::setprecision(1) << m.sessions_per_sec
            << " sessions/s)\n"
            << std::setprecision(3) << "  reward  mean=" << m.reward.mean
            << " p50=" << m.reward.p50 << " p90=" << m.reward.p90
            << " p99=" << m.reward.p99 << "\n"
            << "  quality mean=" << m.quality.mean
            << "  latency ratio mean=" << m.latency_ratio.mean << "\n"
            << "  activations=" << m.total_activations << " warm starts="
            << m.total_warm_starts << " (shared " << m.total_shared_warm_starts
            << "), warm-start rate=" << m.warm_start_rate << "\n"
            << "  pool: " << m.pool.size << " entries, hit rate "
            << m.pool.hit_rate() << ", " << m.pool.stores << " stores, "
            << m.pool.evictions << " evictions\n";
  if (m.edge.enabled) {
    std::cout << "  edge: " << m.edge.requests << " requests, "
              << m.edge.retries << " retries, " << m.edge.fallbacks
              << " fallbacks (" << m.edge.decim_fallbacks << " nearest-LOD, "
              << m.edge.bo_fallbacks << " local-BO)\n"
              << "        rejection rate=" << m.edge.rejection_rate
              << " fallback rate=" << m.edge.fallback_rate
              << " queue depth p95=" << std::setprecision(1)
              << m.edge.queue_depth_p95 << " mean wait="
              << std::setprecision(3) << m.edge.mean_wait_ms << " ms\n";
  }
  if (m.power.enabled) {
    std::cout << "  power: " << std::setprecision(1) << m.power.total_energy_j
              << " J total, mean draw " << std::setprecision(2)
              << m.power.mean_power_w.mean << " W (p90 "
              << m.power.mean_power_w.p90 << "), drain "
              << m.power.drain_pct_per_hour.mean << " %/h\n"
              << "         die temp max p50=" << std::setprecision(1)
              << m.power.max_die_temp_c.p50 << " C p99="
              << m.power.max_die_temp_c.p99 << " C, "
              << m.power.throttle_events << " throttle steps across "
              << std::setprecision(0)
              << m.power.throttled_session_fraction * 100.0
              << "% of sessions, deepest OPP " << std::setprecision(2)
              << m.power.min_freq_scale << "x\n"
              << std::setprecision(3);
  }

  if (telem) {
    // The fleet's worker pool has been joined, so every instrumented
    // thread is quiescent and the export is a consistent snapshot.
    if (!trace_path.empty()) {
      std::ofstream os(trace_path);
      if (!os) {
        std::cerr << "cannot open " << trace_path << " for writing\n";
        return 1;
      }
      telem->write_chrome_trace(os);
      std::cout << "\nTrace: " << telem->events_recorded() << " events ("
                << telem->events_dropped() << " dropped) -> " << trace_path
                << "  (open at https://ui.perfetto.dev)\n";
    }
    if (!metrics_path.empty()) {
      std::ofstream os(metrics_path);
      if (!os) {
        std::cerr << "cannot open " << metrics_path << " for writing\n";
        return 1;
      }
      telem->metrics().snapshot().write_json(os);
      std::cout << "Metrics snapshot -> " << metrics_path << "\n";
    }
    std::cout << "\n";
    telem->report().print(std::cout);
  }
  return 0;
}
