// Micro-benchmarks (google-benchmark) for the paper's overhead claims
// (Section VI): the non-BO part of HBO runs in ~50 ms on-device, and the
// algorithm's complexity is O(K^3 + MN log(MN) + L log(L)). These benches
// measure the actual cost of each component on this host:
//   - GP fit/predict as the BO database grows (the K^3 term),
//   - one full BO suggest step,
//   - Algorithm 1's heuristic allocation (MN log MN term),
//   - the triangle distributor (L log L term),
//   - raw discrete-event engine throughput.

#include <benchmark/benchmark.h>

#include "hbosim/bo/optimizer.hpp"
#include "hbosim/common/rng.hpp"
#include "hbosim/core/allocation.hpp"
#include "hbosim/core/controller.hpp"
#include "hbosim/core/triangle_distribution.hpp"
#include "hbosim/des/ps_resource.hpp"
#include "hbosim/scenario/scenarios.hpp"
#include "hbosim/soc/devices_builtin.hpp"

using namespace hbosim;

namespace {

// --- GP fit + predict -------------------------------------------------------
void BM_GpFitPredict(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  bo::SimplexBoxSpace space(3, 0.2, 1.0);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (std::size_t i = 0; i < n; ++i) {
    x.push_back(space.sample(rng));
    y.push_back(rng.uniform(-1.0, 1.0));
  }
  const std::vector<double> q = space.sample(rng);
  for (auto _ : state) {
    bo::GaussianProcess gp(std::make_unique<bo::Matern52>());
    gp.fit(x, y);
    benchmark::DoNotOptimize(gp.predict(q));
  }
}

// --- one full BO suggest (the K^3 + acquisition sweep) ----------------------
void BM_BoSuggest(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  bo::BayesianOptimizer opt(bo::SimplexBoxSpace(3, 0.2, 1.0));
  for (std::size_t i = 0; i < n; ++i)
    opt.tell(opt.space().sample(rng), rng.uniform(-1.0, 1.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.suggest(rng));
  }
}

// --- Algorithm 1 lines 2-22 --------------------------------------------------
void BM_HeuristicAllocation(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const soc::DeviceProfile device = soc::pixel7();
  std::vector<std::string> models;
  const auto names = device.model_names();
  for (std::size_t i = 0; i < m; ++i) models.push_back(names[i % names.size()]);
  const ai::ProfileTable profiles = ai::profile_models(device, models);
  core::HeuristicAllocator allocator(profiles, models);
  const std::vector<double> usage = {0.4, 0.25, 0.35};
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.allocate(usage));
  }
}

// --- Triangle distribution (TD, line 23) -------------------------------------
void BM_TriangleDistribution(benchmark::State& state) {
  const auto l = static_cast<std::size_t>(state.range(0));
  std::vector<core::ObjectState> objects;
  for (std::size_t i = 0; i < l; ++i) {
    const auto asset = scenario::mesh_asset(i % 2 ? "plane" : "Cocacola");
    objects.push_back(core::ObjectState{asset->params(),
                                        1.0 + 0.1 * static_cast<double>(i),
                                        asset->max_triangles()});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::distribute_waterfill(objects, 0.7));
  }
}

// --- discrete-event engine throughput ----------------------------------------
void BM_DesThroughput(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulator sim;
    des::PsResource res(sim, "gpu", 1.0);
    int completions = 0;
    // A self-sustaining chain of jobs: each completion submits the next.
    std::function<void()> next = [&] {
      if (++completions < 10000) res.submit(0.001, next);
    };
    res.submit(0.001, next);
    sim.run();
    benchmark::DoNotOptimize(completions);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}

// --- full non-BO control path (the paper's ~50 ms claim) ---------------------
void BM_NonBoControlPath(benchmark::State& state) {
  const soc::DeviceProfile device = soc::pixel7();
  auto app = scenario::make_app(device, scenario::ObjectSet::SC1,
                                scenario::TaskSet::CF1);
  app->start();
  core::HeuristicAllocator allocator(app->profiles(), app->task_models());
  const std::vector<double> usage = {0.5, 0.0, 0.5};
  for (auto _ : state) {
    const core::AllocationResult alloc = allocator.allocate(usage);
    app->apply_allocation(alloc.delegates);
    const auto objects = core::HboController::object_states(*app);
    const auto ratios = core::distribute_waterfill(objects, 0.72);
    app->apply_object_ratios(ratios);
    benchmark::DoNotOptimize(ratios);
  }
}

}  // namespace

BENCHMARK(BM_GpFitPredict)->Arg(5)->Arg(10)->Arg(20)->Arg(40);
BENCHMARK(BM_BoSuggest)->Arg(5)->Arg(10)->Arg(20);
BENCHMARK(BM_HeuristicAllocation)->Arg(3)->Arg(6)->Arg(24)->Arg(96);
BENCHMARK(BM_TriangleDistribution)->Arg(2)->Arg(9)->Arg(64)->Arg(512);
BENCHMARK(BM_DesThroughput);
BENCHMARK(BM_NonBoControlPath);

BENCHMARK_MAIN();
