// Reproduces Fig. 8 — the activation study: 10 virtual objects are placed
// automatically between t=0 and t~255s and the user steps back at t~320s,
// while the reward B_t = Q - w*eps is monitored every 2 seconds.
//  (a) HBO's event-based policy (thresholds +5% / -10%) activates only
//      after the first placement, when a heavy object actually hurts the
//      reward, and when the distance change improves it;
//  (b) a periodic policy re-runs the optimization on a fixed schedule
//      (7 activations in the paper), burning optimization time whether or
//      not the system needs it.

#include <iostream>

#include "bench_util.hpp"
#include "hbosim/common/stats.hpp"
#include "hbosim/common/table.hpp"
#include "hbosim/core/activation.hpp"
#include "hbosim/core/controller.hpp"
#include "hbosim/core/cost.hpp"
#include "hbosim/scenario/scenarios.hpp"
#include "hbosim/soc/devices_builtin.hpp"

using namespace hbosim;

namespace {

constexpr double kEnd = 420.0;

/// Schedule the shared scenario timeline on an app: ten placements (the
/// tenth is the paper's heavy ~150k-triangle object) and a distance change.
void schedule_timeline(app::MarApp& app) {
  struct Placement {
    double at;
    const char* mesh;
    double distance;
  };
  static constexpr Placement kPlacements[] = {
      {1, "cabin", 1.4},    {25, "andy", 1.1},     {55, "hammer", 1.8},
      {85, "Cocacola", 1.5}, {115, "apricot", 1.2}, {145, "ATV", 2.0},
      {175, "plane", 2.2},  {205, "bike", 1.8},    {230, "plane", 1.9},
      {255, "statue", 1.5},
  };
  for (const Placement& p : kPlacements) {
    app.sim().schedule_at(p.at, [&app, p] {
      app.add_object(scenario::mesh_asset(p.mesh), p.distance);
    });
  }
  app.sim().schedule_at(320.0, [&app] { app.set_user_distance_scale(1.8); });
}

struct SessionResult {
  std::vector<std::pair<double, double>> rewards;  // (t, B)
  std::vector<double> activations;                 // activation start times
};

/// Drive one monitored session; `use_event_policy` selects Fig. 8a vs 8b.
SessionResult run_session(bool use_event_policy) {
  const soc::DeviceProfile device = soc::pixel7();
  app::MarAppConfig app_cfg;
  auto app = std::make_unique<app::MarApp>(device, app_cfg);
  for (const auto& t : scenario::task_specs(scenario::TaskSet::CF1))
    app->add_task(t.model, t.label);
  schedule_timeline(*app);
  app->start();

  core::HboConfig cfg;
  core::HboController hbo(*app, cfg);
  core::EventActivationPolicy event_policy(cfg.up_fraction, cfg.down_fraction);
  core::PeriodicActivationPolicy periodic_policy(10);  // every ~20 s monitored

  SessionResult out;
  // Measurement noise on a 2 s window is comparable to the 5% threshold,
  // so the monitored reward is smoothed before the policy sees it — the
  // moving-average filter any production monitor would apply.
  Ewma smoothed(0.35);
  while (app->sim().now() < kEnd) {
    const app::PeriodMetrics m = app->run_period(cfg.monitor_period_s);
    const double reward = m.reward(cfg.w);
    smoothed.add(reward);
    out.rewards.emplace_back(app->sim().now(), reward);

    if (app->scene().empty()) continue;  // policy arms at first placement
    const bool fire = use_event_policy
                          ? event_policy.should_activate(smoothed.value())
                          : periodic_policy.should_activate();
    if (!fire) continue;

    out.activations.push_back(app->sim().now());
    hbo.run_activation();
    // The post-activation reward becomes the new reference (Section IV-E).
    // One settle period flushes the last exploration config and the
    // decimation redraw; the reference is then an average of three clean
    // periods so it is not biased by a single noisy window.
    app->run_period(cfg.monitor_period_s);
    double reference = 0.0;
    for (int i = 0; i < 3; ++i) {
      const app::PeriodMetrics applied = app->run_period(cfg.monitor_period_s);
      reference += applied.reward(cfg.w) / 3.0;
      out.rewards.emplace_back(app->sim().now(), applied.reward(cfg.w));
    }
    event_policy.set_reference(reference);
    smoothed = Ewma(0.35);
    smoothed.add(reference);
  }
  return out;
}

void print_session(const char* name, const SessionResult& s) {
  benchutil::section(name);
  std::cout << "activations (" << s.activations.size() << "):";
  for (double t : s.activations) std::cout << "  t=" << TextTable::num(t, 0);
  std::cout << "\nreward timeline (every ~10th sample):\n";
  TextTable table(std::vector<std::string>{"t (s)", "reward B"});
  for (std::size_t i = 0; i < s.rewards.size(); i += 10) {
    table.add_row({TextTable::num(s.rewards[i].first, 0),
                   TextTable::num(s.rewards[i].second, 3)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  benchutil::banner("Fig. 8", "event-based vs periodic HBO activation");
  const SessionResult event_session = run_session(true);
  const SessionResult periodic_session = run_session(false);

  print_session("Fig. 8a: event-based activation policy", event_session);
  print_session("Fig. 8b: periodic activation policy", periodic_session);

  benchutil::section("Paper vs measured (shape check)");
  benchutil::recap_line("event-policy activations",
                        "4 (first object, 9th, 10th heavy, distance)",
                        std::to_string(event_session.activations.size()));
  benchutil::recap_line("periodic activations", "7",
                        std::to_string(periodic_session.activations.size()));
  std::cout << "  The event policy should activate strictly fewer times than\n"
               "  the periodic one while ending at a comparable reward.\n";
  return 0;
}
