// Ablations for the design choices the paper calls out, all on SC1-CF1
// (Pixel 7):
//  1. Acquisition function: EI vs PI vs LCB. The paper picked EI after
//     finding PI "too conservative during exploration" and LCB in need of
//     a tuned parameter (Section IV-C).
//  2. Kernel smoothness: Matern-5/2 (paper, nu chosen "based on extensive
//     testing") vs Matern-3/2 vs RBF.
//  3. Triangle distributor: exact water-filling vs the paper's
//     sensitivity-ordered heuristic vs naive uniform decimation, compared
//     on the quality they extract from the same budget.
//  4. The Section VI lookup-table extension: cost of a fresh activation vs
//     re-applying a remembered solution when the environment repeats.

#include <iostream>

#include "bench_util.hpp"
#include "hbosim/common/table.hpp"
#include "hbosim/core/controller.hpp"
#include "hbosim/core/cost.hpp"
#include "hbosim/core/lookup_table.hpp"
#include "hbosim/core/triangle_distribution.hpp"
#include "hbosim/scenario/scenarios.hpp"
#include "hbosim/soc/devices_builtin.hpp"

using namespace hbosim;

namespace {

core::ActivationResult run_with(const core::HboConfig& cfg,
                                std::uint64_t app_seed = 0x5EEDu) {
  const soc::DeviceProfile device = soc::pixel7();
  auto app = scenario::make_app(device, scenario::ObjectSet::SC1,
                                scenario::TaskSet::CF1, app_seed);
  core::HboController hbo(*app, cfg);
  return hbo.run_activation();
}

void acquisition_ablation() {
  benchutil::section("Ablation 1: acquisition function (3 seeds each)");
  TextTable table(std::vector<std::string>{
      "acquisition", "mean best cost", "best", "worst"});
  for (auto kind : {bo::AcquisitionKind::ExpectedImprovement,
                    bo::AcquisitionKind::ProbabilityOfImprovement,
                    bo::AcquisitionKind::LowerConfidenceBound}) {
    double sum = 0.0;
    double best = 1e9;
    double worst = -1e9;
    for (int seed = 0; seed < 3; ++seed) {
      core::HboConfig cfg;
      cfg.bo.acquisition = kind;
      cfg.seed = 100 + 31 * seed;
      const double c = run_with(cfg).best().cost;
      sum += c;
      best = std::min(best, c);
      worst = std::max(worst, c);
    }
    table.add_row({bo::acquisition_name(kind), TextTable::num(sum / 3, 3),
                   TextTable::num(best, 3), TextTable::num(worst, 3)});
  }
  table.print(std::cout);
}

void kernel_ablation() {
  benchutil::section("Ablation 2: GP kernel (3 seeds each)");
  TextTable table(std::vector<std::string>{"kernel", "mean best cost"});
  for (auto kind : {bo::KernelKind::Matern52, bo::KernelKind::Matern32,
                    bo::KernelKind::Rbf}) {
    double sum = 0.0;
    for (int seed = 0; seed < 3; ++seed) {
      core::HboConfig cfg;
      cfg.bo.kernel = kind;
      cfg.seed = 500 + 13 * seed;
      sum += run_with(cfg).best().cost;
    }
    table.add_row({bo::kernel_kind_name(kind), TextTable::num(sum / 3, 3)});
  }
  table.print(std::cout);
}

void distributor_ablation() {
  benchutil::section(
      "Ablation 3: triangle distributor quality at equal budgets");
  const soc::DeviceProfile device = soc::pixel7();
  auto app = scenario::make_app(device, scenario::ObjectSet::SC1,
                                scenario::TaskSet::CF1);
  const auto objects = core::HboController::object_states(*app);
  TextTable table(std::vector<std::string>{
      "budget x", "uniform Q", "sensitivity Q (paper)", "water-fill Q"});
  for (double x : {0.3, 0.5, 0.72, 0.9}) {
    const std::vector<double> uniform(objects.size(), x);
    const auto sens = core::distribute_sensitivity(objects, x);
    const auto water = core::distribute_waterfill(objects, x);
    table.add_row({TextTable::num(x, 2),
                   TextTable::num(core::assignment_quality(objects, uniform), 3),
                   TextTable::num(core::assignment_quality(objects, sens), 3),
                   TextTable::num(core::assignment_quality(objects, water), 3)});
  }
  table.print(std::cout);
  std::cout << "  (water-filling is optimal for the concave objective; the\n"
               "  sensitivity heuristic should sit between it and uniform)\n";
}

void lookup_ablation() {
  benchutil::section("Ablation 4: Section VI lookup-table warm start");
  const soc::DeviceProfile device = soc::pixel7();

  // First visit: full activation, remember the solution.
  auto app1 = scenario::make_app(device, scenario::ObjectSet::SC1,
                                 scenario::TaskSet::CF1);
  core::HboConfig cfg;
  core::HboController hbo1(*app1, cfg);
  const core::ActivationResult full = hbo1.run_activation();
  core::SolutionLookupTable table;
  table.store(core::SolutionLookupTable::make_key(*app1),
              core::StoredSolution{full.best().z, full.best().cost});

  // Revisit of the same environment: apply the remembered solution.
  auto app2 = scenario::make_app(device, scenario::ObjectSet::SC1,
                                 scenario::TaskSet::CF1, /*seed=*/0xFACEu);
  app2->start();
  core::HboController hbo2(*app2, cfg);
  const auto hit = table.find(core::SolutionLookupTable::make_key(*app2));
  double warm_cost = 0.0;
  if (hit) {
    hbo2.apply_configuration(hit->z);
    app2->run_period(2.0);  // settle
    warm_cost = core::cost_of(app2->run_period(4.0), cfg.w);
  }

  const int full_periods = cfg.n_initial + cfg.n_iterations;
  TextTable t(std::vector<std::string>{"path", "control periods spent",
                                       "resulting cost"});
  t.add_row({"fresh activation", std::to_string(full_periods),
             TextTable::num(full.best().cost, 3)});
  t.add_row({"lookup-table warm start", "1",
             TextTable::num(warm_cost, 3)});
  t.print(std::cout);
  std::cout << "  hits=" << table.hits() << " misses=" << table.misses()
            << " (a warm start skips " << full_periods - 1
            << " exploration periods)\n";
}

}  // namespace

int main() {
  benchutil::banner("Ablations", "design choices called out by the paper");
  acquisition_ablation();
  kernel_ablation();
  distributor_ablation();
  lookup_ablation();
  return 0;
}
