// Telemetry overhead bench: the cost of instrumentation points with
// tracing off (the always-paid price embedded in every hot path) and on
// (ring push / metric update), plus the end-to-end effect of a live
// TelemetrySession on fleet simulation wall-clock.
//
// Not a paper artefact — this guards the observability layer's overhead
// budget: disabled instrumentation must stay in low single-digit
// nanoseconds per site. With tracing *on*, a DES-dense fleet run pays for
// real event recording (~20% wall on the densest micro-runs; far less on
// BO-heavy workloads) — that price is only paid when profiling.
//
// Usage: bench_telemetry [--smoke] [--json <path>]
//   --smoke   shorter repetitions (CI)
//   --json    write a machine-readable summary (default: BENCH_telemetry.json)

#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "bench_util.hpp"
#include "hbosim/fleet/fleet_simulator.hpp"
#include "hbosim/telemetry/report.hpp"
#include "hbosim/telemetry/telemetry.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Nanoseconds per iteration of `op`, repeated until `min_seconds` of work
/// has accumulated. The loop re-times in blocks so short ops still get a
/// trustworthy average.
template <typename Op>
double time_ns(Op&& op, double min_seconds) {
  std::uint64_t iters = 0;
  const auto t0 = Clock::now();
  double elapsed = 0.0;
  do {
    for (int i = 0; i < 10000; ++i) op();
    iters += 10000;
    elapsed = seconds_since(t0);
  } while (elapsed < min_seconds);
  return elapsed / static_cast<double>(iters) * 1e9;
}

hbosim::fleet::FleetSpec small_fleet(std::size_t sessions) {
  hbosim::fleet::FleetSpec spec;
  spec.sessions = sessions;
  spec.threads = 2;
  spec.duration_s = 20.0;
  spec.use_shared_pool = true;
  spec.session.hbo.n_initial = 3;
  spec.session.hbo.n_iterations = 6;
  spec.session.hbo.selection_candidates = 1;
  return spec;
}

double fleet_wall_seconds(std::size_t sessions) {
  const auto t0 = Clock::now();
  (void)hbosim::fleet::FleetSimulator(small_fleet(sessions)).run();
  return seconds_since(t0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hbosim;

  bool smoke = false;
  std::string json_path = "BENCH_telemetry.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  benchutil::banner("bench_telemetry",
                    "instrumentation cost, tracing off and on");
  const double min_seconds = smoke ? 0.02 : 0.2;

  // --- disabled path: the price every hot path always pays ----------------
  benchutil::section("disabled instrumentation (no TelemetrySession)");
  if (telemetry::enabled()) {
    std::cerr << "telemetry unexpectedly enabled\n";
    return 1;
  }
  const double off_scope_ns =
      time_ns([] { HB_TRACE_SCOPE("bench", "scope"); }, min_seconds);
  const double off_counter_ns =
      time_ns([] { HB_TRACE_COUNTER("bench", "ctr", 1.0); }, min_seconds);
  const double off_metric_ns =
      time_ns([] { HB_TELEM_COUNT("bench.count", 1.0); }, min_seconds);
  std::cout << std::fixed << std::setprecision(2)
            << "  HB_TRACE_SCOPE   " << std::setw(8) << off_scope_ns
            << " ns/site\n"
            << "  HB_TRACE_COUNTER " << std::setw(8) << off_counter_ns
            << " ns/site\n"
            << "  HB_TELEM_COUNT   " << std::setw(8) << off_metric_ns
            << " ns/site\n";

  // --- enabled path: record cost -----------------------------------------
  benchutil::section("enabled record path (live session)");
  double on_scope_ns = 0.0, on_counter_ns = 0.0;
  double on_metric_ns = 0.0, on_hist_ns = 0.0;
  std::uint64_t trace_events = 0;
  {
    telemetry::TelemetrySession session;
    on_scope_ns =
        time_ns([] { HB_TRACE_SCOPE("bench", "scope"); }, min_seconds);
    on_counter_ns =
        time_ns([] { HB_TRACE_COUNTER("bench", "ctr", 1.0); }, min_seconds);
    on_metric_ns =
        time_ns([] { HB_TELEM_COUNT("bench.count", 1.0); }, min_seconds);
    on_hist_ns =
        time_ns([] { HB_TELEM_HIST_US("bench.hist_us", 3.0); }, min_seconds);
    trace_events = session.events_recorded();
  }
  std::cout << "  HB_TRACE_SCOPE   " << std::setw(8) << on_scope_ns
            << " ns/event (clock + ring push)\n"
            << "  HB_TRACE_COUNTER " << std::setw(8) << on_counter_ns
            << " ns/event\n"
            << "  HB_TELEM_COUNT   " << std::setw(8) << on_metric_ns
            << " ns/update (sharded cell)\n"
            << "  HB_TELEM_HIST_US " << std::setw(8) << on_hist_ns
            << " ns/observation\n"
            << "  (" << trace_events << " events recorded)\n";

  // --- end-to-end fleet overhead ------------------------------------------
  const std::size_t sessions = smoke ? 4 : 16;
  benchutil::section("fleet wall-clock overhead (" +
                     std::to_string(sessions) + " sessions, 2 threads)");
  const double fleet_off_s = fleet_wall_seconds(sessions);
  double fleet_on_s = 0.0;
  std::uint64_t fleet_events = 0, fleet_dropped = 0;
  std::size_t trace_bytes = 0;
  {
    telemetry::TelemetrySession session;
    fleet_on_s = fleet_wall_seconds(sessions);
    fleet_events = session.events_recorded();
    fleet_dropped = session.events_dropped();
    std::ostringstream trace;
    session.write_chrome_trace(trace);
    trace_bytes = trace.str().size();
  }
  const double overhead_pct = (fleet_on_s / fleet_off_s - 1.0) * 100.0;
  std::cout << std::setprecision(3) << "  tracing off: " << fleet_off_s
            << " s\n  tracing on : " << fleet_on_s << " s\n  overhead   : "
            << std::setprecision(1) << overhead_pct << " % ("
            << fleet_events << " events, " << fleet_dropped
            << " dropped, trace " << trace_bytes / 1024 << " KiB)\n";

  benchutil::section("recap");
  benchutil::recap_line("disabled site cost", "~1 branch",
                        std::to_string(off_metric_ns) + " ns");
  benchutil::recap_line("fleet overhead, tracing on", "< 25 %",
                        std::to_string(overhead_pct) + " %");

  // --- machine-readable summary -------------------------------------------
  std::ofstream json(json_path);
  json << std::setprecision(4) << std::fixed;
  json << "{\n  \"bench\": \"bench_telemetry\",\n  \"smoke\": "
       << (smoke ? "true" : "false") << ",\n  \"disabled_ns\": {"
       << "\"scope\": " << off_scope_ns
       << ", \"counter\": " << off_counter_ns
       << ", \"metric\": " << off_metric_ns << "},\n  \"enabled_ns\": {"
       << "\"scope\": " << on_scope_ns << ", \"counter\": " << on_counter_ns
       << ", \"metric\": " << on_metric_ns << ", \"histogram\": " << on_hist_ns
       << "},\n  \"fleet\": {\"sessions\": " << sessions
       << ", \"threads\": 2, \"off_wall_s\": " << fleet_off_s
       << ", \"on_wall_s\": " << fleet_on_s
       << ", \"overhead_pct\": " << overhead_pct
       << ", \"events\": " << fleet_events
       << ", \"dropped\": " << fleet_dropped
       << ", \"trace_kib\": " << trace_bytes / 1024 << "}\n}\n";
  std::cout << "\nJSON summary written to " << json_path << "\n";

  // Budget gate (skipped in smoke runs, which are too short to be stable):
  // a disabled site must cost under 15 ns even on busy CI hardware.
  const bool ok = off_scope_ns < 15.0 && off_counter_ns < 15.0 &&
                  off_metric_ns < 15.0;
  return ok || smoke ? 0 : 1;
}
