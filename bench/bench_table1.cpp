// Reproduces Table I: isolation response time (ms) of the TensorFlow-Lite
// models on the Galaxy S22 and Pixel 7 for the GPU delegate, the NNAPI
// delegate, and CPU inference.
//
// The numbers are *measured* by the isolation profiler on the simulated
// SoCs (single task, no virtual objects) — the same code path HBO's
// priority queue uses — not read back from the device tables, so this
// bench validates that the execution-plan/processor-sharing pipeline
// reconstructs the calibrated latencies end to end.

#include <iostream>

#include "bench_util.hpp"
#include "hbosim/ai/profiler.hpp"
#include "hbosim/ai/registry.hpp"
#include "hbosim/common/table.hpp"
#include "hbosim/soc/devices_builtin.hpp"

using namespace hbosim;

int main() {
  benchutil::banner("Table I",
                    "baseline response time (ms) of TFLite models, measured "
                    "in isolation on the simulated SoCs");

  const std::vector<soc::DeviceProfile> devices = {soc::galaxy_s22(),
                                                   soc::pixel7()};

  std::vector<std::string> models;
  for (const auto& info : ai::model_registry()) models.push_back(info.name);

  for (const soc::DeviceProfile& device : devices) {
    benchutil::section(device.name());
    const ai::ProfileTable profiles = ai::profile_models(device, models);

    TextTable table(std::vector<std::string>{
        "AI Model", "Task", "GPU", "NNAPI", "CPU", "paper GPU/NNAPI/CPU"});
    for (const std::string& model : models) {
      const ai::ModelProfile& p = profiles.get(model);
      auto cell = [&](soc::Delegate d) -> std::string {
        const auto& v = p.isolation_ms[static_cast<std::size_t>(d)];
        return v ? TextTable::num(*v, 1) : "NA";
      };
      auto paper_cell = [&](soc::Delegate d) -> std::string {
        if (!device.supports(model, d)) return "NA";
        return TextTable::num(device.isolation_ms(model, d), 1);
      };
      table.add_row({model, ai::task_type_abbrev(ai::find_model(model).type),
                     cell(soc::Delegate::Gpu), cell(soc::Delegate::Nnapi),
                     cell(soc::Delegate::Cpu),
                     paper_cell(soc::Delegate::Gpu) + "/" +
                         paper_cell(soc::Delegate::Nnapi) + "/" +
                         paper_cell(soc::Delegate::Cpu)});
    }
    table.print(std::cout);
  }

  benchutil::section("Notes");
  std::cout
      << "  `mnist` is not part of the paper's Table I; it appears in the\n"
         "  Table II tasksets and is synthesized as a tiny classifier with\n"
         "  similar latency on all resources (Section V-B).\n"
         "  Measured values match the calibration targets by construction;\n"
         "  this bench exercises the profiler/engine path that produces\n"
         "  tau^e and Algorithm 1's priority queue.\n";
  return 0;
}
