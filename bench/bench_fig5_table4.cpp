// Reproduces Fig. 5 (a: task allocation, b: average quality vs triangle
// ratio, c: average latency ratio) and Table IV (AI allocation and
// triangle-ratio comparison) for the SC1-CF1 scenario on the Pixel 7:
// HBO against SMQ, SML, BNT and AllN.
//
// Headline paper numbers this harness checks the *shape* of:
//   - SMQ matches HBO's quality but pays ~1.5x HBO's average latency;
//   - SML matches HBO's latency but HBO's quality is ~14.5% better;
//   - HBO's average latency is ~2.2x better than BNT and ~3.5x than AllN,
//     while giving up only ~13% quality vs their full-quality rendering.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "hbosim/baselines/alln.hpp"
#include "hbosim/baselines/bnt.hpp"
#include "hbosim/baselines/sml.hpp"
#include "hbosim/baselines/smq.hpp"
#include "hbosim/common/table.hpp"
#include "hbosim/core/controller.hpp"
#include "hbosim/scenario/scenarios.hpp"
#include "hbosim/soc/devices_builtin.hpp"

using namespace hbosim;

namespace {

struct Row {
  std::string name;
  std::vector<soc::Delegate> allocation;
  double ratio;
  double quality;
  double eps;
  double mean_ms;
};

Row row_from(const baselines::BaselineOutcome& o) {
  return Row{o.name, o.allocation, o.triangle_ratio,
             o.metrics.average_quality, o.metrics.latency_ratio,
             o.metrics.mean_task_latency_ms()};
}

}  // namespace

int main() {
  benchutil::banner("Fig. 5 + Table IV",
                    "HBO vs SMQ/SML/BNT/AllN on SC1-CF1 (Pixel 7)");

  const soc::DeviceProfile device = soc::pixel7();
  const auto make = [&] {
    return scenario::make_app(device, scenario::ObjectSet::SC1,
                              scenario::TaskSet::CF1);
  };

  // --- HBO -----------------------------------------------------------------
  auto hbo_app = make();
  core::HboConfig cfg;  // paper defaults (w = 2.5, 5 + 15 iterations)
  core::HboController hbo(*hbo_app, cfg);
  const core::ActivationResult activation = hbo.run_activation();
  const core::IterationRecord& best = activation.best();
  const app::PeriodMetrics hbo_metrics = hbo_app->run_period(4.0);

  Row hbo_row{"HBO", best.allocation, best.triangle_ratio,
              hbo_metrics.average_quality, hbo_metrics.latency_ratio,
              hbo_metrics.mean_task_latency_ms()};

  // --- baselines (each on a fresh, identical app) ---------------------------
  auto smq_app = make();
  const Row smq_row = row_from(baselines::run_smq(
      *smq_app, best.object_ratios, best.triangle_ratio));

  auto sml_app = make();
  baselines::SmlConfig sml_cfg;
  sml_cfg.target_latency_ratio = hbo_metrics.latency_ratio;
  const Row sml_row = row_from(baselines::run_sml(*sml_app, sml_cfg));

  auto bnt_app = make();
  const Row bnt_row = row_from(baselines::run_bnt(*bnt_app, cfg));

  auto alln_app = make();
  const Row alln_row = row_from(baselines::run_alln(*alln_app));

  const std::vector<Row> rows = {hbo_row, smq_row, sml_row, bnt_row, alln_row};

  // --- Table IV: allocation + triangle ratio --------------------------------
  benchutil::section("Table IV: AI allocation and triangle ratio comparison");
  const auto labels = hbo_app->task_labels();
  std::vector<std::string> header = {"AI Model/Experiment"};
  for (const Row& r : rows) header.push_back(r.name);
  TextTable table(header);
  for (std::size_t t = 0; t < labels.size(); ++t) {
    std::vector<std::string> cells = {labels[t]};
    for (const Row& r : rows)
      cells.push_back(soc::delegate_name(r.allocation[t]));
    table.add_row(cells);
  }
  std::vector<std::string> ratio_row = {"Triangle Count Ratio"};
  for (const Row& r : rows) ratio_row.push_back(TextTable::num(r.ratio, 2));
  table.add_row(ratio_row);
  table.print(std::cout);

  // --- Fig. 5b/5c: quality, ratio, latency ----------------------------------
  benchutil::section("Fig. 5b/5c: quality vs ratio, latency ratio");
  TextTable fig(std::vector<std::string>{
      "Strategy", "Triangle ratio x", "Avg quality Q", "Avg latency eps",
      "Mean task latency (ms)", "Mean latency vs HBO"});
  for (const Row& r : rows) {
    fig.add_row({r.name, TextTable::num(r.ratio, 2),
                 TextTable::num(r.quality, 3), TextTable::num(r.eps, 2),
                 TextTable::num(r.mean_ms, 1),
                 TextTable::num(r.mean_ms / hbo_row.mean_ms, 2) + "x"});
  }
  fig.print(std::cout);

  // --- paper-vs-measured recap ----------------------------------------------
  benchutil::section("Paper vs measured (shape check)");
  benchutil::recap_line(
      "SMQ latency vs HBO (same quality)", "~1.5x",
      TextTable::num(smq_row.mean_ms / hbo_row.mean_ms, 2) + "x");
  benchutil::recap_line(
      "HBO quality vs SML (same latency)", "+14.5%",
      "+" + TextTable::num(
                100.0 * (hbo_row.quality - sml_row.quality) / sml_row.quality,
                1) + "%");
  benchutil::recap_line(
      "BNT latency vs HBO", "~2.2x",
      TextTable::num(bnt_row.mean_ms / hbo_row.mean_ms, 2) + "x");
  benchutil::recap_line(
      "AllN latency vs HBO", "~3.5x",
      TextTable::num(alln_row.mean_ms / hbo_row.mean_ms, 2) + "x");
  benchutil::recap_line(
      "HBO quality sacrifice vs full-quality baselines", "~13% (1.15x)",
      TextTable::num(
          100.0 * (alln_row.quality - hbo_row.quality) / alln_row.quality, 1) +
          "%");
  benchutil::recap_line("HBO triangle ratio", "0.72",
                        TextTable::num(hbo_row.ratio, 2));
  return 0;
}
