#pragma once

#include <iostream>
#include <string>

/// Shared pretty-printing for the reproduction harnesses. Each bench
/// prints the paper artefact it regenerates, the measured series/rows,
/// and a PAPER vs MEASURED recap so EXPERIMENTS.md can be cross-checked
/// directly against bench output.

namespace benchutil {

inline void banner(const std::string& artefact, const std::string& what) {
  std::cout << "\n================================================================\n"
            << artefact << " — " << what << "\n"
            << "================================================================\n";
}

inline void section(const std::string& name) {
  std::cout << "\n--- " << name << " ---\n";
}

inline void recap_line(const std::string& metric, const std::string& paper,
                       const std::string& measured) {
  std::cout << "  " << metric << ": paper=" << paper
            << "  measured=" << measured << "\n";
}

}  // namespace benchutil
