// Reproduces Fig. 6 — the in-depth analysis of one HBO activation on
// SC1-CF1 (Pixel 7), run for 20 iterations as in the paper:
//  (a) Euclidean distance between consecutive BO configurations
//      (exploration = large steps, exploitation = small steps);
//  (b) cost of each evaluated sample and the best-cost iteration;
//  (c) average quality and normalized latency per iteration (the paper's
//      best point: Q = 0.87, eps = 0.69 at iteration 7);
//  (d) per-task latency of HBO's best configuration vs SMQ under the same
//      triangle ratio (paper: 103% best / 23.8% worst improvement for the
//      NNAPI-resident tasks).

#include <iostream>

#include "bench_util.hpp"
#include "hbosim/baselines/smq.hpp"
#include "hbosim/common/table.hpp"
#include "hbosim/core/controller.hpp"
#include "hbosim/scenario/scenarios.hpp"
#include "hbosim/soc/devices_builtin.hpp"

using namespace hbosim;

int main() {
  benchutil::banner("Fig. 6", "detailed HBO analysis on SC1-CF1 (Pixel 7)");

  const soc::DeviceProfile device = soc::pixel7();
  auto app = scenario::make_app(device, scenario::ObjectSet::SC1,
                                scenario::TaskSet::CF1);

  core::HboConfig cfg;
  cfg.n_iterations = 15;  // 5 random + 15 = 20 total, as in Fig. 6
  core::HboController hbo(*app, cfg);
  const core::ActivationResult result = hbo.run_activation();

  // --- Fig. 6a/6b/6c --------------------------------------------------------
  benchutil::section("Fig. 6a-c: per-iteration series");
  const auto distances = result.consecutive_distances();
  TextTable table(std::vector<std::string>{
      "iter", "phase", "dist(z_t,z_t-1)", "cost", "best cost", "quality Q",
      "latency eps", "ratio x"});
  const auto best_curve = result.best_cost_curve();
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    const core::IterationRecord& r = result.history[i];
    table.add_row({std::to_string(i + 1),
                   r.random_init ? "init" : "BO",
                   i == 0 ? "-" : TextTable::num(distances[i - 1], 3),
                   TextTable::num(r.cost, 3), TextTable::num(best_curve[i], 3),
                   TextTable::num(r.quality, 3),
                   TextTable::num(r.latency_ratio, 3),
                   TextTable::num(r.triangle_ratio, 2)});
  }
  table.print(std::cout);

  const core::IterationRecord& best = result.best();
  benchutil::section("Best iteration");
  std::cout << "  iteration " << best.index + 1 << " (paper: 7th of 20)\n";
  benchutil::recap_line("quality at best", "0.87",
                        TextTable::num(best.quality, 2));
  benchutil::recap_line("normalized latency at best", "0.69",
                        TextTable::num(best.latency_ratio, 2));

  // --- Fig. 6d: per-task latency, HBO vs SMQ --------------------------------
  benchutil::section("Fig. 6d: per-task latency (ms), HBO vs SMQ at same x");
  const app::PeriodMetrics hbo_metrics = app->run_period(4.0);

  auto smq_app = scenario::make_app(device, scenario::ObjectSet::SC1,
                                    scenario::TaskSet::CF1);
  const baselines::BaselineOutcome smq = baselines::run_smq(
      *smq_app, best.object_ratios, best.triangle_ratio);

  TextTable d(std::vector<std::string>{"task", "HBO (ms)", "SMQ (ms)",
                                       "SMQ/HBO", "improvement"});
  double best_impr = 0.0;
  double worst_impr = 1e9;
  for (const auto& [label, hbo_ms] : hbo_metrics.task_latency_ms) {
    const double smq_ms = smq.metrics.task_latency_ms.at(label);
    const double impr = 100.0 * (smq_ms - hbo_ms) / hbo_ms;
    best_impr = std::max(best_impr, impr);
    worst_impr = std::min(worst_impr, impr);
    d.add_row({label, TextTable::num(hbo_ms, 1), TextTable::num(smq_ms, 1),
               TextTable::num(smq_ms / hbo_ms, 2) + "x",
               TextTable::num(impr, 1) + "%"});
  }
  d.print(std::cout);
  benchutil::recap_line("best per-task improvement", "103% (mobnetC1)",
                        TextTable::num(best_impr, 1) + "%");
  benchutil::recap_line("worst per-task improvement", "23.8% (mobnetD1)",
                        TextTable::num(worst_impr, 1) + "%");
  return 0;
}
