// Fleet scaling bench: simulated-sessions/sec across worker-thread counts,
// with and without the shared cross-session solution pool, plus the
// learned policy layer (hbosim::policy) running in Prior mode.
//
// Not a paper artefact — this measures the hbosim::fleet engine itself:
//   * scaling curve: a fixed fleet on {1, 4, hardware_concurrency} threads
//     (deduplicated), reporting wall time, sessions/sec, and speedup vs 1;
//   * warm-start ablation: the same fleet with the SharedSolutionPool on,
//     reporting pool hit rate and the warm-start fraction of activations;
//   * policy layer: the same fleet in PolicyMode::Prior, reporting how
//     much of the full-activation traffic ran with a fitted prior;
//   * mega-fleet scaling curve: a sessions x threads grid run through the
//     streaming path (retain_results=false, arena-backed sessions, pool
//     on), reporting wall time, sessions/sec, peak RSS, and pool
//     hit/contention rates — the 10^5-session regime.
//
// Usage: bench_fleet [--smoke] [--json <path>] [--gate <committed.json>]
//                    [sessions] [duration_s]
//   --smoke   smaller fleet (CI); defaults otherwise: 256 sessions, 20 s
//   --json    write a machine-readable summary (default: BENCH_fleet.json)
//   --gate    in --smoke mode, enforce the smoke_gate block of a committed
//             JSON (max wall clock, max peak RSS, min mega throughput);
//             exceeding any bound fails the bench — the CI regression gate

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hbosim/common/meminfo.hpp"
#include "hbosim/common/thread_pool.hpp"
#include "hbosim/fleet/fleet_simulator.hpp"

namespace {

hbosim::fleet::FleetSpec base_spec(std::size_t sessions, double duration_s) {
  hbosim::fleet::FleetSpec spec;
  spec.sessions = sessions;
  spec.duration_s = duration_s;
  // Truncated activations keep one session around tens of milliseconds so
  // a 256-session fleet finishes in seconds; the *relative* thread scaling
  // is what this bench measures.
  spec.session.hbo.n_initial = 2;
  spec.session.hbo.n_iterations = 3;
  spec.session.hbo.selection_candidates = 1;
  spec.session.hbo.control_period_s = 1.0;
  spec.session.hbo.monitor_period_s = 1.0;
  spec.session.reference_periods = 2;
  return spec;
}

struct ScalePoint {
  std::size_t threads = 0;
  double wall_s = 0.0;
  double sessions_per_sec = 0.0;
  double speedup = 0.0;
};

struct MegaPoint {
  std::size_t sessions = 0;
  std::size_t threads = 0;
  double wall_s = 0.0;
  double sessions_per_sec = 0.0;
  double peak_rss_mb = 0.0;
  double pool_hit_rate = 0.0;
  double pool_contention_rate = 0.0;
};

double mb(std::size_t bytes) { return static_cast<double>(bytes) / (1 << 20); }

// The committed smoke-mode regression bounds, echoed into every JSON this
// bench writes and enforced by --gate. Deliberately generous: they catch
// order-of-magnitude regressions (an accidental O(sessions) buffer, a
// serialization collapse), not scheduler noise on shared CI runners.
constexpr double kGateMaxWallS = 600.0;
constexpr double kGateMaxPeakRssMb = 2048.0;
constexpr double kGateMinMegaSessionsPerSec = 10.0;

/// Minimal scan for `"key": <number>` inside a JSON text; good enough for
/// the flat smoke_gate block this bench itself writes.
bool extract_number(const std::string& text, const std::string& key,
                    double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  *out = std::atof(text.c_str() + at + needle.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hbosim;

  bool smoke = false;
  std::string json_path = "BENCH_fleet.json";
  std::string gate_path;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else if (std::strcmp(argv[i], "--gate") == 0 && i + 1 < argc)
      gate_path = argv[++i];
    else
      positional.push_back(argv[i]);
  }
  const std::size_t sessions =
      positional.size() > 0
          ? static_cast<std::size_t>(std::atoll(positional[0]))
          : (smoke ? 64 : 256);
  const double duration_s =
      positional.size() > 1 ? std::atof(positional[1]) : (smoke ? 15.0 : 20.0);

  benchutil::banner("bench_fleet",
                    "fleet engine scaling, shared-pool warm starts, and the "
                    "policy layer");
  std::cout << "fleet: " << sessions << " sessions x " << duration_s
            << " simulated s, device mix {Pixel 7, Galaxy S22}, "
               "scenario mix SC1/SC2 x CF1/CF2\n";

  const auto t0 = std::chrono::steady_clock::now();

  // --- scaling curve -------------------------------------------------------
  benchutil::section("sessions/sec vs worker threads (pool off)");
  std::vector<std::size_t> thread_counts = {1, 4,
                                            ThreadPool::hardware_threads()};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  double serial_wall = 0.0;
  std::vector<ScalePoint> scaling;
  std::cout << std::fixed;
  std::cout << "  threads    wall_s   sessions/s   speedup_vs_1\n";
  for (std::size_t threads : thread_counts) {
    fleet::FleetSpec spec = base_spec(sessions, duration_s);
    spec.threads = threads;
    const fleet::FleetResult result = fleet::FleetSimulator(spec).run();
    const fleet::FleetMetrics& m = result.metrics;
    if (threads == 1) serial_wall = m.wall_seconds;
    ScalePoint p;
    p.threads = threads;
    p.wall_s = m.wall_seconds;
    p.sessions_per_sec = m.sessions_per_sec;
    p.speedup = m.wall_seconds > 0.0 ? serial_wall / m.wall_seconds : 0.0;
    scaling.push_back(p);
    std::cout << "  " << std::setw(7) << threads << std::setprecision(2)
              << std::setw(10) << p.wall_s << std::setprecision(1)
              << std::setw(13) << p.sessions_per_sec << std::setprecision(2)
              << std::setw(15) << p.speedup << "\n";
  }

  // --- shared-pool ablation ------------------------------------------------
  benchutil::section("shared solution pool (hardware threads)");
  double pool_warm_rate = 0.0, pool_hit_rate = 0.0;
  for (bool pooled : {false, true}) {
    fleet::FleetSpec spec = base_spec(sessions, duration_s);
    spec.threads = ThreadPool::hardware_threads();
    spec.use_shared_pool = pooled;
    spec.session.use_lookup_table = true;  // per-session table in both arms
    const fleet::FleetResult result = fleet::FleetSimulator(spec).run();
    const fleet::FleetMetrics& m = result.metrics;
    std::cout << "  pool " << (pooled ? "ON " : "OFF") << ": wall="
              << std::setprecision(2) << m.wall_seconds << "s  "
              << std::setprecision(1) << m.sessions_per_sec
              << " sessions/s  activations=" << m.total_activations
              << "  warm_starts=" << m.total_warm_starts << " (shared "
              << m.total_shared_warm_starts << ")  warm_rate="
              << std::setprecision(3) << m.warm_start_rate
              << "  pool_hit_rate=" << m.pool.hit_rate() << "\n";
    if (pooled) {
      pool_warm_rate = m.warm_start_rate;
      pool_hit_rate = m.pool.hit_rate();
      std::cout << "  pool entries=" << m.pool.size << " stores="
                << m.pool.stores << " evictions=" << m.pool.evictions
                << " shards=" << m.pool.shards << " lock_contention_rate="
                << std::setprecision(4) << m.pool.contention_rate() << "\n";
      benchutil::section("fleet-wide per-session aggregates (pool ON)");
      auto row = [](const char* name, const fleet::MetricSummary& s) {
        std::cout << "  " << std::left << std::setw(14) << name << std::right
                  << std::setprecision(3) << " mean=" << s.mean
                  << " p50=" << s.p50 << " p90=" << s.p90 << " p99=" << s.p99
                  << "\n";
      };
      row("quality Q", m.quality);
      row("latency eps", m.latency_ratio);
      row("reward B", m.reward);
    }
  }

  // --- policy layer (Prior mode) -------------------------------------------
  benchutil::section("learned priors (PolicyMode::Prior, hardware threads)");
  fleet::FleetSpec pspec = base_spec(sessions, duration_s);
  pspec.threads = ThreadPool::hardware_threads();
  pspec.policy.mode = fleet::PolicyMode::Prior;
  pspec.policy.epoch_sessions = std::max<std::size_t>(sessions / 8, 1);
  pspec.policy.prior.min_observations = 6;
  const fleet::FleetResult presult = fleet::FleetSimulator(pspec).run();
  const fleet::FleetMetrics& pm = presult.metrics;
  std::cout << "  epochs=" << pm.policy.epochs << "  store_keys="
            << pm.policy.store_keys << "  priors_fitted="
            << pm.policy.priors_fitted << "  prior_activations="
            << pm.policy.prior_activations << "  injection_rate="
            << std::setprecision(3) << pm.policy.prior_injection_rate << "\n";

  // --- mega-fleet streaming scaling curve ----------------------------------
  // The 10^5-session regime: retain_results=false (P² roll-up, bounded
  // in-flight window), arena-backed sessions, shared pool on. Runs LAST so
  // the process's VmHWM (monotone) reflects the mega fleet, which is the
  // largest phase — that is the peak-RSS figure the gate bounds.
  benchutil::section("mega-fleet streaming path (retain_results=false)");
  const std::vector<std::size_t> mega_sessions =
      smoke ? std::vector<std::size_t>{512, 2048}
            : std::vector<std::size_t>{4096, 16384, 65536};
  std::vector<std::size_t> mega_threads = {1, 4,
                                           ThreadPool::hardware_threads()};
  std::sort(mega_threads.begin(), mega_threads.end());
  mega_threads.erase(std::unique(mega_threads.begin(), mega_threads.end()),
                     mega_threads.end());
  std::vector<MegaPoint> mega;
  std::cout << "  sessions  threads    wall_s  sessions/s  peak_rss_mb"
               "  hit_rate  contention\n";
  for (std::size_t n : mega_sessions) {
    for (std::size_t threads : mega_threads) {
      fleet::FleetSpec spec = base_spec(n, 10.0);
      spec.threads = threads;
      spec.retain_results = false;
      spec.use_shared_pool = true;
      spec.session.use_lookup_table = true;
      const fleet::FleetResult result = fleet::FleetSimulator(spec).run();
      const fleet::FleetMetrics& m = result.metrics;
      MegaPoint p;
      p.sessions = n;
      p.threads = threads;
      p.wall_s = m.wall_seconds;
      p.sessions_per_sec = m.sessions_per_sec;
      p.peak_rss_mb = mb(peak_rss_bytes());
      p.pool_hit_rate = m.pool.hit_rate();
      p.pool_contention_rate = m.pool.contention_rate();
      mega.push_back(p);
      std::cout << "  " << std::setw(8) << n << std::setw(9) << threads
                << std::setprecision(2) << std::setw(10) << p.wall_s
                << std::setprecision(1) << std::setw(12) << p.sessions_per_sec
                << std::setw(13) << p.peak_rss_mb << std::setprecision(3)
                << std::setw(10) << p.pool_hit_rate << std::setprecision(4)
                << std::setw(12) << p.pool_contention_rate << "\n";
    }
  }
  const double peak_rss_mb = mb(peak_rss_bytes());
  std::cout << "  process peak RSS: " << std::setprecision(1) << peak_rss_mb
            << " MB (streaming keeps retained state O(threads), so the "
               "grid's RSS stays near-flat in session count)\n";

  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  std::cout << "\nDeterminism note: per-session results are bit-identical "
               "across thread counts with the pool off (policy on or off); "
               "warm-start placement with the pool on depends on completion "
               "order.\n";

  std::ofstream json(json_path);
  json << std::setprecision(6) << std::fixed;
  json << "{\n  \"bench\": \"bench_fleet\",\n  \"smoke\": "
       << (smoke ? "true" : "false") << ",\n  \"sessions\": " << sessions
       << ",\n  \"duration_s\": " << duration_s << ",\n  \"wall_s\": "
       << wall_s << ",\n  \"scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const ScalePoint& p = scaling[i];
    json << "    {\"threads\": " << p.threads << ", \"wall_s\": " << p.wall_s
         << ", \"sessions_per_sec\": " << p.sessions_per_sec
         << ", \"speedup_vs_1\": " << p.speedup << "}"
         << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"shared_pool\": {\"warm_start_rate\": " << pool_warm_rate
       << ", \"hit_rate\": " << pool_hit_rate
       << "},\n  \"policy_prior\": {\"epochs\": " << pm.policy.epochs
       << ", \"store_keys\": " << pm.policy.store_keys
       << ", \"priors_fitted\": " << pm.policy.priors_fitted
       << ", \"prior_activations\": " << pm.policy.prior_activations
       << ", \"injection_rate\": " << pm.policy.prior_injection_rate
       << "},\n  \"mega\": [\n";
  for (std::size_t i = 0; i < mega.size(); ++i) {
    const MegaPoint& p = mega[i];
    json << "    {\"sessions\": " << p.sessions << ", \"threads\": "
         << p.threads << ", \"wall_s\": " << p.wall_s
         << ", \"sessions_per_sec\": " << p.sessions_per_sec
         << ", \"peak_rss_mb\": " << p.peak_rss_mb << ", \"pool_hit_rate\": "
         << p.pool_hit_rate << ", \"pool_contention_rate\": "
         << p.pool_contention_rate << "}"
         << (i + 1 < mega.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"peak_rss_mb\": " << peak_rss_mb
       << ",\n  \"smoke_gate\": {\"max_wall_s\": " << kGateMaxWallS
       << ", \"max_peak_rss_mb\": " << kGateMaxPeakRssMb
       << ", \"min_mega_sessions_per_sec\": " << kGateMinMegaSessionsPerSec
       << "}\n}\n";
  std::cout << "JSON summary written to " << json_path << "\n";

  // --- CI regression gate --------------------------------------------------
  // Enforced only in smoke mode (full runs regenerate the committed JSON;
  // gating them against themselves would be circular).
  bool gate_ok = true;
  if (!gate_path.empty() && smoke) {
    std::ifstream gate_file(gate_path);
    std::string gate_text((std::istreambuf_iterator<char>(gate_file)),
                          std::istreambuf_iterator<char>());
    double max_wall = 0.0, max_rss = 0.0, min_sps = 0.0;
    if (!extract_number(gate_text, "max_wall_s", &max_wall) ||
        !extract_number(gate_text, "max_peak_rss_mb", &max_rss) ||
        !extract_number(gate_text, "min_mega_sessions_per_sec", &min_sps)) {
      std::cout << "GATE: no smoke_gate block in " << gate_path
                << " — failing so the committed baseline gets regenerated\n";
      gate_ok = false;
    } else {
      double worst_sps = mega.empty() ? 0.0 : mega.front().sessions_per_sec;
      for (const MegaPoint& p : mega)
        worst_sps = std::min(worst_sps, p.sessions_per_sec);
      auto check = [&gate_ok](const char* what, double got, double bound,
                              bool upper) {
        const bool ok = upper ? got <= bound : got >= bound;
        std::cout << "GATE " << (ok ? "ok  " : "FAIL") << ": " << what << " = "
                  << std::setprecision(2) << got << (upper ? " <= " : " >= ")
                  << bound << "\n";
        gate_ok = gate_ok && ok;
      };
      check("bench wall_s", wall_s, max_wall, /*upper=*/true);
      check("peak_rss_mb", peak_rss_mb, max_rss, /*upper=*/true);
      check("mega sessions/s (worst)", worst_sps, min_sps, /*upper=*/false);
    }
  }

  // The structural story this bench gates on: parallelism must actually
  // help, and the policy layer must fit and inject priors into the fleet.
  // The scaling gate is timing-based, so it only applies to full runs on
  // multi-core machines — smoke mode on a shared CI runner is too noisy
  // for a hard wall-clock gate (the policy gate is deterministic and
  // always applies).
  const bool scales = smoke || ThreadPool::hardware_threads() <= 1 ||
                      scaling.back().speedup > 1.2;
  const bool policy_learns =
      pm.policy.priors_fitted > 0 && pm.policy.prior_activations > 0;
  return (scales && policy_learns && gate_ok) ? 0 : 1;
}
