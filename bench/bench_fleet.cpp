// Fleet scaling bench: simulated-sessions/sec across worker-thread counts,
// with and without the shared cross-session solution pool, plus the
// learned policy layer (hbosim::policy) running in Prior mode.
//
// Not a paper artefact — this measures the hbosim::fleet engine itself:
//   * scaling curve: a fixed fleet on {1, 4, hardware_concurrency} threads
//     (deduplicated), reporting wall time, sessions/sec, and speedup vs 1;
//   * warm-start ablation: the same fleet with the SharedSolutionPool on,
//     reporting pool hit rate and the warm-start fraction of activations;
//   * policy layer: the same fleet in PolicyMode::Prior, reporting how
//     much of the full-activation traffic ran with a fitted prior.
//
// Usage: bench_fleet [--smoke] [--json <path>] [sessions] [duration_s]
//   --smoke   smaller fleet (CI); defaults otherwise: 256 sessions, 20 s
//   --json    write a machine-readable summary (default: BENCH_fleet.json)

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hbosim/common/thread_pool.hpp"
#include "hbosim/fleet/fleet_simulator.hpp"

namespace {

hbosim::fleet::FleetSpec base_spec(std::size_t sessions, double duration_s) {
  hbosim::fleet::FleetSpec spec;
  spec.sessions = sessions;
  spec.duration_s = duration_s;
  // Truncated activations keep one session around tens of milliseconds so
  // a 256-session fleet finishes in seconds; the *relative* thread scaling
  // is what this bench measures.
  spec.session.hbo.n_initial = 2;
  spec.session.hbo.n_iterations = 3;
  spec.session.hbo.selection_candidates = 1;
  spec.session.hbo.control_period_s = 1.0;
  spec.session.hbo.monitor_period_s = 1.0;
  spec.session.reference_periods = 2;
  return spec;
}

struct ScalePoint {
  std::size_t threads = 0;
  double wall_s = 0.0;
  double sessions_per_sec = 0.0;
  double speedup = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hbosim;

  bool smoke = false;
  std::string json_path = "BENCH_fleet.json";
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else
      positional.push_back(argv[i]);
  }
  const std::size_t sessions =
      positional.size() > 0
          ? static_cast<std::size_t>(std::atoll(positional[0]))
          : (smoke ? 64 : 256);
  const double duration_s =
      positional.size() > 1 ? std::atof(positional[1]) : (smoke ? 15.0 : 20.0);

  benchutil::banner("bench_fleet",
                    "fleet engine scaling, shared-pool warm starts, and the "
                    "policy layer");
  std::cout << "fleet: " << sessions << " sessions x " << duration_s
            << " simulated s, device mix {Pixel 7, Galaxy S22}, "
               "scenario mix SC1/SC2 x CF1/CF2\n";

  const auto t0 = std::chrono::steady_clock::now();

  // --- scaling curve -------------------------------------------------------
  benchutil::section("sessions/sec vs worker threads (pool off)");
  std::vector<std::size_t> thread_counts = {1, 4,
                                            ThreadPool::hardware_threads()};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  double serial_wall = 0.0;
  std::vector<ScalePoint> scaling;
  std::cout << std::fixed;
  std::cout << "  threads    wall_s   sessions/s   speedup_vs_1\n";
  for (std::size_t threads : thread_counts) {
    fleet::FleetSpec spec = base_spec(sessions, duration_s);
    spec.threads = threads;
    const fleet::FleetResult result = fleet::FleetSimulator(spec).run();
    const fleet::FleetMetrics& m = result.metrics;
    if (threads == 1) serial_wall = m.wall_seconds;
    ScalePoint p;
    p.threads = threads;
    p.wall_s = m.wall_seconds;
    p.sessions_per_sec = m.sessions_per_sec;
    p.speedup = m.wall_seconds > 0.0 ? serial_wall / m.wall_seconds : 0.0;
    scaling.push_back(p);
    std::cout << "  " << std::setw(7) << threads << std::setprecision(2)
              << std::setw(10) << p.wall_s << std::setprecision(1)
              << std::setw(13) << p.sessions_per_sec << std::setprecision(2)
              << std::setw(15) << p.speedup << "\n";
  }

  // --- shared-pool ablation ------------------------------------------------
  benchutil::section("shared solution pool (hardware threads)");
  double pool_warm_rate = 0.0, pool_hit_rate = 0.0;
  for (bool pooled : {false, true}) {
    fleet::FleetSpec spec = base_spec(sessions, duration_s);
    spec.threads = ThreadPool::hardware_threads();
    spec.use_shared_pool = pooled;
    spec.session.use_lookup_table = true;  // per-session table in both arms
    const fleet::FleetResult result = fleet::FleetSimulator(spec).run();
    const fleet::FleetMetrics& m = result.metrics;
    std::cout << "  pool " << (pooled ? "ON " : "OFF") << ": wall="
              << std::setprecision(2) << m.wall_seconds << "s  "
              << std::setprecision(1) << m.sessions_per_sec
              << " sessions/s  activations=" << m.total_activations
              << "  warm_starts=" << m.total_warm_starts << " (shared "
              << m.total_shared_warm_starts << ")  warm_rate="
              << std::setprecision(3) << m.warm_start_rate
              << "  pool_hit_rate=" << m.pool.hit_rate() << "\n";
    if (pooled) {
      pool_warm_rate = m.warm_start_rate;
      pool_hit_rate = m.pool.hit_rate();
      std::cout << "  pool entries=" << m.pool.size << " stores="
                << m.pool.stores << " evictions=" << m.pool.evictions
                << "\n";
      benchutil::section("fleet-wide per-session aggregates (pool ON)");
      auto row = [](const char* name, const fleet::MetricSummary& s) {
        std::cout << "  " << std::left << std::setw(14) << name << std::right
                  << std::setprecision(3) << " mean=" << s.mean
                  << " p50=" << s.p50 << " p90=" << s.p90 << " p99=" << s.p99
                  << "\n";
      };
      row("quality Q", m.quality);
      row("latency eps", m.latency_ratio);
      row("reward B", m.reward);
    }
  }

  // --- policy layer (Prior mode) -------------------------------------------
  benchutil::section("learned priors (PolicyMode::Prior, hardware threads)");
  fleet::FleetSpec pspec = base_spec(sessions, duration_s);
  pspec.threads = ThreadPool::hardware_threads();
  pspec.policy.mode = fleet::PolicyMode::Prior;
  pspec.policy.epoch_sessions = std::max<std::size_t>(sessions / 8, 1);
  pspec.policy.prior.min_observations = 6;
  const fleet::FleetResult presult = fleet::FleetSimulator(pspec).run();
  const fleet::FleetMetrics& pm = presult.metrics;
  std::cout << "  epochs=" << pm.policy.epochs << "  store_keys="
            << pm.policy.store_keys << "  priors_fitted="
            << pm.policy.priors_fitted << "  prior_activations="
            << pm.policy.prior_activations << "  injection_rate="
            << std::setprecision(3) << pm.policy.prior_injection_rate << "\n";

  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  std::cout << "\nDeterminism note: per-session results are bit-identical "
               "across thread counts with the pool off (policy on or off); "
               "warm-start placement with the pool on depends on completion "
               "order.\n";

  std::ofstream json(json_path);
  json << std::setprecision(6) << std::fixed;
  json << "{\n  \"bench\": \"bench_fleet\",\n  \"smoke\": "
       << (smoke ? "true" : "false") << ",\n  \"sessions\": " << sessions
       << ",\n  \"duration_s\": " << duration_s << ",\n  \"wall_s\": "
       << wall_s << ",\n  \"scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const ScalePoint& p = scaling[i];
    json << "    {\"threads\": " << p.threads << ", \"wall_s\": " << p.wall_s
         << ", \"sessions_per_sec\": " << p.sessions_per_sec
         << ", \"speedup_vs_1\": " << p.speedup << "}"
         << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"shared_pool\": {\"warm_start_rate\": " << pool_warm_rate
       << ", \"hit_rate\": " << pool_hit_rate
       << "},\n  \"policy_prior\": {\"epochs\": " << pm.policy.epochs
       << ", \"store_keys\": " << pm.policy.store_keys
       << ", \"priors_fitted\": " << pm.policy.priors_fitted
       << ", \"prior_activations\": " << pm.policy.prior_activations
       << ", \"injection_rate\": " << pm.policy.prior_injection_rate
       << "}\n}\n";
  std::cout << "JSON summary written to " << json_path << "\n";

  // The structural story this bench gates on: parallelism must actually
  // help, and the policy layer must fit and inject priors into the fleet.
  // The scaling gate is timing-based, so it only applies to full runs on
  // multi-core machines — smoke mode on a shared CI runner is too noisy
  // for a hard wall-clock gate (the policy gate is deterministic and
  // always applies).
  const bool scales = smoke || ThreadPool::hardware_threads() <= 1 ||
                      scaling.back().speedup > 1.2;
  const bool policy_learns =
      pm.policy.priors_fitted > 0 && pm.policy.prior_activations > 0;
  return (scales && policy_learns) ? 0 : 1;
}
