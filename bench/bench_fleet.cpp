// Fleet scaling bench: simulated-sessions/sec across worker-thread counts,
// with and without the shared cross-session solution pool.
//
// Not a paper artefact — this measures the hbosim::fleet engine itself:
//   * scaling curve: a fixed fleet on {1, 4, hardware_concurrency} threads
//     (deduplicated), reporting wall time, sessions/sec, and speedup vs 1;
//   * warm-start ablation: the same fleet with the SharedSolutionPool on,
//     reporting pool hit rate and the warm-start fraction of activations.
//
// Usage: bench_fleet [sessions] [duration_s]   (defaults: 256, 20)

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "hbosim/common/thread_pool.hpp"
#include "hbosim/fleet/fleet_simulator.hpp"

namespace {

hbosim::fleet::FleetSpec base_spec(std::size_t sessions, double duration_s) {
  hbosim::fleet::FleetSpec spec;
  spec.sessions = sessions;
  spec.duration_s = duration_s;
  // Truncated activations keep one session around tens of milliseconds so
  // a 256-session fleet finishes in seconds; the *relative* thread scaling
  // is what this bench measures.
  spec.session.hbo.n_initial = 2;
  spec.session.hbo.n_iterations = 3;
  spec.session.hbo.selection_candidates = 1;
  spec.session.hbo.control_period_s = 1.0;
  spec.session.hbo.monitor_period_s = 1.0;
  spec.session.reference_periods = 2;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hbosim;

  const std::size_t sessions =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 256;
  const double duration_s = argc > 2 ? std::atof(argv[2]) : 20.0;

  benchutil::banner("bench_fleet",
                    "fleet engine scaling and shared-pool warm starts");
  std::cout << "fleet: " << sessions << " sessions x " << duration_s
            << " simulated s, device mix {Pixel 7, Galaxy S22}, "
               "scenario mix SC1/SC2 x CF1/CF2\n";

  // --- scaling curve -------------------------------------------------------
  benchutil::section("sessions/sec vs worker threads (pool off)");
  std::vector<std::size_t> thread_counts = {1, 4,
                                            ThreadPool::hardware_threads()};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  double serial_wall = 0.0;
  std::cout << std::fixed;
  std::cout << "  threads    wall_s   sessions/s   speedup_vs_1\n";
  for (std::size_t threads : thread_counts) {
    fleet::FleetSpec spec = base_spec(sessions, duration_s);
    spec.threads = threads;
    const fleet::FleetResult result = fleet::FleetSimulator(spec).run();
    const fleet::FleetMetrics& m = result.metrics;
    if (threads == 1) serial_wall = m.wall_seconds;
    std::cout << "  " << std::setw(7) << threads << std::setprecision(2)
              << std::setw(10) << m.wall_seconds << std::setprecision(1)
              << std::setw(13) << m.sessions_per_sec << std::setprecision(2)
              << std::setw(15)
              << (m.wall_seconds > 0.0 ? serial_wall / m.wall_seconds : 0.0)
              << "\n";
  }

  // --- shared-pool ablation ------------------------------------------------
  benchutil::section("shared solution pool (hardware threads)");
  for (bool pooled : {false, true}) {
    fleet::FleetSpec spec = base_spec(sessions, duration_s);
    spec.threads = ThreadPool::hardware_threads();
    spec.use_shared_pool = pooled;
    spec.session.use_lookup_table = true;  // per-session table in both arms
    const fleet::FleetResult result = fleet::FleetSimulator(spec).run();
    const fleet::FleetMetrics& m = result.metrics;
    std::cout << "  pool " << (pooled ? "ON " : "OFF") << ": wall="
              << std::setprecision(2) << m.wall_seconds << "s  "
              << std::setprecision(1) << m.sessions_per_sec
              << " sessions/s  activations=" << m.total_activations
              << "  warm_starts=" << m.total_warm_starts << " (shared "
              << m.total_shared_warm_starts << ")  warm_rate="
              << std::setprecision(3) << m.warm_start_rate
              << "  pool_hit_rate=" << m.pool.hit_rate() << "\n";
    if (pooled) {
      std::cout << "  pool entries=" << m.pool.size << " stores="
                << m.pool.stores << " evictions=" << m.pool.evictions
                << "\n";
      benchutil::section("fleet-wide per-session aggregates (pool ON)");
      auto row = [](const char* name, const fleet::MetricSummary& s) {
        std::cout << "  " << std::left << std::setw(14) << name << std::right
                  << std::setprecision(3) << " mean=" << s.mean
                  << " p50=" << s.p50 << " p90=" << s.p90 << " p99=" << s.p99
                  << "\n";
      };
      row("quality Q", m.quality);
      row("latency eps", m.latency_ratio);
      row("reward B", m.reward);
    }
  }

  std::cout << "\nDeterminism note: per-session results are bit-identical "
               "across thread counts with the pool off; warm-start "
               "placement with the pool on depends on completion order.\n";
  return 0;
}
