// Reproduces Fig. 9 — the user study: seven raters score the perceived
// quality of virtual objects (1-5, 5 = indistinguishable from the
// max-quality reference) for HBO and for SML under comparable AI latency,
// at close and far user distances, on the mixed heavy/light object set
// with the CF1 taskset.
//
// Paper numbers: HBO 4.9 (close) / 5.0 (far) vs SML 3.0 / 3.6 — up to
// 38.7% better perceived quality — with HBO keeping triangle ratio 0.52
// while SML needs 0.2 to match the latency.
//
// The seven humans are replaced by the synthetic rater panel documented in
// DESIGN.md (the paper itself validates Eq. 1-2 against users; the panel
// inverts that mapping with per-rater bias + trial noise).

#include <iostream>

#include "bench_util.hpp"
#include "hbosim/baselines/sml.hpp"
#include "hbosim/common/table.hpp"
#include "hbosim/core/controller.hpp"
#include "hbosim/scenario/scenarios.hpp"
#include "hbosim/soc/devices_builtin.hpp"
#include "hbosim/study/raters.hpp"

using namespace hbosim;

namespace {

struct Condition {
  std::string name;
  double triangle_ratio;
  double quality;
  double latency_ratio;
  study::StudyResult mos;
};

Condition evaluate_hbo(const soc::DeviceProfile& device, double distance_scale,
                       study::RaterPanel& panel, double* eps_out) {
  auto app = scenario::make_app(device, scenario::ObjectSet::UserStudyMix,
                                scenario::TaskSet::CF1);
  app->set_user_distance_scale(distance_scale);
  core::HboConfig cfg;
  core::HboController hbo(*app, cfg);
  const core::ActivationResult result = hbo.run_activation();
  const app::PeriodMetrics m = app->run_period(4.0);
  *eps_out = m.latency_ratio;
  return Condition{"HBO", result.best().triangle_ratio, m.average_quality,
                   m.latency_ratio, panel.evaluate(m.average_quality)};
}

Condition evaluate_sml(const soc::DeviceProfile& device, double distance_scale,
                       double target_eps, study::RaterPanel& panel) {
  auto app = scenario::make_app(device, scenario::ObjectSet::UserStudyMix,
                                scenario::TaskSet::CF1);
  app->set_user_distance_scale(distance_scale);
  baselines::SmlConfig cfg;
  cfg.target_latency_ratio = target_eps;
  const baselines::BaselineOutcome out = baselines::run_sml(*app, cfg);
  return Condition{"SML", out.triangle_ratio, out.metrics.average_quality,
                   out.metrics.latency_ratio,
                   panel.evaluate(out.metrics.average_quality)};
}

}  // namespace

int main() {
  benchutil::banner("Fig. 9", "user study: perceived quality, HBO vs SML");
  const soc::DeviceProfile device = soc::pixel7();
  study::RaterPanel panel;  // seven raters, seeded

  TextTable table(std::vector<std::string>{
      "condition", "distance", "ratio x", "est. quality Q", "eps",
      "MOS (1-5)", "MOS stdev"});

  double improvement_max = 0.0;
  for (const auto& [dist_name, scale] :
       std::vector<std::pair<std::string, double>>{{"close", 1.0},
                                                   {"far", 2.2}}) {
    double hbo_eps = 0.0;
    const Condition hbo = evaluate_hbo(device, scale, panel, &hbo_eps);
    const Condition sml = evaluate_sml(device, scale, hbo_eps, panel);
    for (const Condition& c : {hbo, sml}) {
      table.add_row({c.name, dist_name, TextTable::num(c.triangle_ratio, 2),
                     TextTable::num(c.quality, 3),
                     TextTable::num(c.latency_ratio, 2),
                     TextTable::num(c.mos.mean, 1),
                     TextTable::num(c.mos.stdev, 2)});
    }
    improvement_max = std::max(
        improvement_max, 100.0 * (hbo.mos.mean - sml.mos.mean) / sml.mos.mean);
  }
  table.print(std::cout);

  benchutil::section("Paper vs measured (shape check)");
  benchutil::recap_line("HBO MOS close/far", "4.9 / 5.0", "see table");
  benchutil::recap_line("SML MOS close/far", "3.0 / 3.6", "see table");
  benchutil::recap_line("max perceived-quality improvement", "38.7%",
                        TextTable::num(improvement_max, 1) + "%");
  benchutil::recap_line("triangle ratio HBO vs SML", "0.52 vs 0.2",
                        "see table");
  return 0;
}
