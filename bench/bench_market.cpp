// Fleet-level resource-market bench: the edge as an actor vs the static
// mirror baseline at saturation, plus the determinism and closed-form
// gates CI pins (bench-market is a hard gate — every check below is
// deterministic arithmetic over seeded simulations).
//
//  gate 1  allocator-off bitwise parity: with FleetSpec::market disabled
//          the fleet must reproduce the mirror-based edge path bit for
//          bit on 1 and 4 worker threads (also pins the broker's
//          order-independent absorb()).
//  gate 2  PF closed form: two symmetric tenants over-demanding the link
//          split the binding budget exactly evenly (x = 0.5 each).
//  gate 3  market thread invariance: a market-enabled fleet is
//          bit-identical on 1 and 4 worker threads.
//  gate 4  saturation: at 10^3 tenants sharing one edge box, the joint
//          allocator must beat the static mirror baseline on p99
//          per-session edge response time while holding mean reward.
//
// The saturation sweep runs the same fleet three times per tenant count:
//   mirror       the legacy static guess — every tenant assumes N-1
//                rivals at full resolution (context row, no quality match)
//   static-trim  quality manipulation WITHOUT joint allocation: every
//                tenant pinned to the resolution the market converged to,
//                so mean quality matches the market row by construction,
//                but the mirror background stays the full-res static guess
//   market-pf    the JointAllocator deciding background + resolution
//                jointly across all N tenants in one epoch tick
// The headline gate compares market-pf against static-trim at equal mean
// quality; the table feeds EXPERIMENTS.md.
//
// Usage: bench_market [--smoke] [--json <path>]
//   --smoke   10^3-tenant sweep only (CI); full mode adds 10^4
//   --json    write a machine-readable summary (default: BENCH_market.json)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hbosim/fleet/fleet_simulator.hpp"
#include "hbosim/marketsvc/allocator.hpp"
#include "hbosim/scenario/scenarios.hpp"

namespace {

using namespace hbosim;

/// Fast session profile (the fleet_demo mega profile): a saturation point
/// needs 10^3..10^4 sessions, so each must cost milliseconds.
fleet::FleetSpec base_fleet(std::size_t sessions, std::size_t threads) {
  fleet::FleetSpec spec;
  spec.sessions = sessions;
  spec.threads = threads;
  spec.duration_s = 12.0;
  spec.base_seed = 0x3A2;
  spec.session.hbo.n_initial = 2;
  spec.session.hbo.n_iterations = 3;
  spec.session.hbo.selection_candidates = 1;
  spec.session.hbo.control_period_s = 1.0;
  spec.session.hbo.monitor_period_s = 1.0;
  spec.session.reference_periods = 2;
  spec.use_edge_service = true;
  spec.edge = edgesvc::edge_service_preset("wifi");
  return spec;
}

/// Market variant: one joint allocation round over all N tenants, so the
/// allocator faces exactly the concurrency the static mirror assumes.
fleet::FleetSpec market_fleet(std::size_t sessions, std::size_t threads) {
  fleet::FleetSpec spec = base_fleet(sessions, threads);
  spec.market.enabled = true;
  spec.market.epoch_sessions = sessions;
  spec.market.allocator.policy = marketsvc::MarketPolicy::ProportionalFair;
  return spec;
}

struct CellResult {
  std::size_t tenants = 0;
  std::string mode;  ///< "mirror" or "market-pf".
  double mean_quality = 0.0;
  double mean_reward = 0.0;
  double mean_response_ms = 0.0;  ///< Mean of per-session mean edge response.
  double p99_response_ms = 0.0;   ///< p99 across sessions of that mean.
  double fallback_rate = 0.0;
  double mean_resolution = 1.0;
  double admission_rate = 1.0;
  double wall_s = 0.0;
};

CellResult run_cell(const fleet::FleetSpec& spec, const char* mode) {
  const auto t0 = std::chrono::steady_clock::now();
  const fleet::FleetResult result = fleet::FleetSimulator(spec).run();
  CellResult out;
  out.tenants = spec.sessions;
  out.mode = mode;
  out.mean_quality = result.metrics.quality.mean;
  out.mean_reward = result.metrics.reward.mean;
  out.fallback_rate = result.metrics.edge.fallback_rate;
  if (result.metrics.market.enabled) {
    out.mean_resolution = result.metrics.market.resolution.mean;
    out.admission_rate = result.metrics.market.admission_rate;
  } else {
    out.mean_resolution = spec.edge_static_resolution;
  }
  // Per-session end-to-end edge response: simulated seconds a session
  // spent per edge request (retries and backoff included) — the latency a
  // tenant's virtual-object loads actually experienced.
  std::vector<double> response_ms;
  response_ms.reserve(result.sessions.size());
  double acc = 0.0;
  for (const fleet::SessionResult& s : result.sessions) {
    const double per_req =
        s.edge_requests > 0
            ? s.edge_elapsed_s / static_cast<double>(s.edge_requests)
            : 0.0;
    response_ms.push_back(per_req * 1e3);
    acc += per_req * 1e3;
  }
  std::sort(response_ms.begin(), response_ms.end());
  out.mean_response_ms = acc / static_cast<double>(response_ms.size());
  out.p99_response_ms =
      response_ms[static_cast<std::size_t>(
          0.99 * static_cast<double>(response_ms.size() - 1))];
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  return out;
}

/// Gate 1+3 helper: every per-session field that must replay bitwise.
bool sessions_bitwise_equal(const fleet::FleetResult& a,
                            const fleet::FleetResult& b) {
  if (a.sessions.size() != b.sessions.size()) return false;
  for (std::size_t i = 0; i < a.sessions.size(); ++i) {
    const fleet::SessionResult& x = a.sessions[i];
    const fleet::SessionResult& y = b.sessions[i];
    if (x.mean_quality != y.mean_quality || x.mean_reward != y.mean_reward ||
        x.mean_latency_ratio != y.mean_latency_ratio ||
        x.sim_seconds != y.sim_seconds ||
        x.edge_requests != y.edge_requests ||
        x.edge_retries != y.edge_retries ||
        x.edge_fallbacks != y.edge_fallbacks ||
        x.edge_payload_bytes != y.edge_payload_bytes ||
        x.edge_units != y.edge_units ||
        x.edge_elapsed_s != y.edge_elapsed_s ||
        x.market_resolution != y.market_resolution ||
        x.market_price != y.market_price) {
      return false;
    }
  }
  // Roll-up doubles exercise the broker's order-independent re-summation.
  return a.metrics.edge.mean_wait_ms == b.metrics.edge.mean_wait_ms &&
         a.metrics.edge.requests == b.metrics.edge.requests;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_market.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  benchutil::banner("bench_market",
                    "joint allocator vs static mirror at saturation");

  // --- gate 1: allocator-off bitwise parity across thread counts --------
  const bool off_parity = sessions_bitwise_equal(
      fleet::FleetSimulator(base_fleet(48, 1)).run(),
      fleet::FleetSimulator(base_fleet(48, 4)).run());

  // --- gate 2: PF closed form on two symmetric tenants ------------------
  marketsvc::MarketConfig pf_cfg;  // budgets: link 2.0, compute 0.75 x cores
  marketsvc::JointAllocator pf(pf_cfg, 4.0, 120.0, 0.035);
  marketsvc::TenantDemand d0, d1;
  d0.tenant = 0;
  d0.flow_activity = 2.0;
  d0.request_rps = 0.1;
  d1 = d0;
  d1.tenant = 1;
  const auto pf_out = pf.tick({d0, d1});
  const double x0 = pf_out[0].resolution * pf_out[0].resolution;
  const bool pf_closed_form =
      pf_out[0].resolution == pf_out[1].resolution &&
      std::abs(x0 - 0.5) < 1e-9;

  // --- gate 3: market fleet bit-identical on 1 vs 4 threads -------------
  const bool market_invariant = sessions_bitwise_equal(
      fleet::FleetSimulator(market_fleet(48, 1)).run(),
      fleet::FleetSimulator(market_fleet(48, 4)).run());

  benchutil::section("determinism gates");
  benchutil::recap_line("allocator-off 1-vs-4-thread parity", "bitwise",
                        off_parity ? "bitwise" : "DIVERGED");
  benchutil::recap_line("PF symmetric 2-tenant split", "x = 0.5 each",
                        pf_closed_form ? "x = 0.5 each" : "UNEVEN");
  benchutil::recap_line("market 1-vs-4-thread invariance", "bitwise",
                        market_invariant ? "bitwise" : "DIVERGED");

  // --- saturation sweep -------------------------------------------------
  std::vector<std::size_t> tenant_counts = {1000};
  if (!smoke) tenant_counts.push_back(10'000);

  benchutil::section("saturation sweep");
  std::cout << std::fixed
            << "  tenants  mode       mean_Q  mean_B  resp_ms  p99_ms  "
               "fallback  res   admit  wall_s\n";
  std::vector<CellResult> cells;
  for (std::size_t n : tenant_counts) {
    // The market row runs first: the static-trim baseline pins every
    // tenant to the resolution the allocator converged to, so the two
    // rows land at equal mean quality by construction.
    const CellResult market_cell = run_cell(market_fleet(n, 0), "market-pf");
    fleet::FleetSpec trimmed = base_fleet(n, 0);
    trimmed.edge_static_resolution = market_cell.mean_resolution;
    const CellResult cell_list[] = {
        run_cell(base_fleet(n, 0), "mirror"),
        run_cell(trimmed, "static-trim"),
        market_cell,
    };
    for (const CellResult& c : cell_list) {
      cells.push_back(c);
      std::cout << "  " << std::setw(7) << c.tenants << "  " << std::left
                << std::setw(9) << c.mode << std::right
                << std::setprecision(3) << std::setw(8) << c.mean_quality
                << std::setw(8) << c.mean_reward << std::setprecision(1)
                << std::setw(9) << c.mean_response_ms << std::setw(8)
                << c.p99_response_ms << std::setprecision(3) << std::setw(10)
                << c.fallback_rate << std::setprecision(2) << std::setw(6)
                << c.mean_resolution << std::setw(7) << c.admission_rate
                << std::setprecision(1) << std::setw(8) << c.wall_s << "\n";
    }
  }

  // --- gate 4: the allocator must pay off at 10^3 tenants ---------------
  // The static-trim row sheds the same r^2 work at the same r^gamma
  // perceived quality; the only delta the market adds is the *joint*
  // part — decided background and the one-box budget. So at equal mean
  // quality the allocator must beat the quality-matched baseline (and,
  // a fortiori, the untrimmed mirror) on p99 end-to-end edge response,
  // hold the reward, and shed the fallback storm.
  const CellResult& mirror_1k = cells[0];
  const CellResult& trimmed_1k = cells[1];
  const CellResult& market_1k = cells[2];
  const bool quality_matched =
      std::abs(market_1k.mean_quality - trimmed_1k.mean_quality) <= 0.01;
  const bool p99_wins =
      market_1k.p99_response_ms < 0.9 * trimmed_1k.p99_response_ms &&
      market_1k.p99_response_ms < 0.9 * mirror_1k.p99_response_ms;
  const bool reward_holds =
      market_1k.mean_reward >= trimmed_1k.mean_reward - 0.02;
  const bool fallbacks_drop =
      market_1k.fallback_rate <= trimmed_1k.fallback_rate &&
      market_1k.fallback_rate <= mirror_1k.fallback_rate;

  benchutil::section("recap");
  benchutil::recap_line("10^3-tenant mean quality", "market == static-trim",
                        quality_matched ? "matched" : "MISMATCHED");
  benchutil::recap_line(
      "10^3-tenant p99 edge response", "market < 0.9x static-trim",
      p99_wins ? "yes (" + std::to_string(market_1k.p99_response_ms) +
                     " vs " + std::to_string(trimmed_1k.p99_response_ms) +
                     " ms)"
               : "NO");
  benchutil::recap_line("10^3-tenant mean reward",
                        "market >= static-trim - 0.02",
                        reward_holds ? "holds" : "REGRESSED");
  benchutil::recap_line("10^3-tenant fallback rate", "market lowest",
                        fallbacks_drop ? "yes" : "NO");

  const bool pass = off_parity && pf_closed_form && market_invariant &&
                    quality_matched && p99_wins && reward_holds &&
                    fallbacks_drop;

  std::ofstream json(json_path);
  json << std::setprecision(6) << std::fixed;
  json << "{\n  \"bench\": \"bench_market\",\n  \"smoke\": "
       << (smoke ? "true" : "false")
       << ",\n  \"gates\": {\n    \"allocator_off_parity\": "
       << (off_parity ? "true" : "false")
       << ",\n    \"pf_closed_form\": " << (pf_closed_form ? "true" : "false")
       << ",\n    \"market_thread_invariance\": "
       << (market_invariant ? "true" : "false")
       << ",\n    \"saturation_quality_matched\": "
       << (quality_matched ? "true" : "false")
       << ",\n    \"saturation_p99_win\": " << (p99_wins ? "true" : "false")
       << ",\n    \"saturation_reward_holds\": "
       << (reward_holds ? "true" : "false")
       << ",\n    \"saturation_fallbacks_drop\": "
       << (fallbacks_drop ? "true" : "false") << "\n  },\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    json << "    {\"tenants\": " << c.tenants << ", \"mode\": \"" << c.mode
         << "\", \"mean_quality\": " << c.mean_quality
         << ", \"mean_reward\": " << c.mean_reward
         << ", \"mean_response_ms\": " << c.mean_response_ms
         << ", \"p99_response_ms\": " << c.p99_response_ms
         << ", \"fallback_rate\": " << c.fallback_rate
         << ", \"mean_resolution\": " << c.mean_resolution
         << ", \"admission_rate\": " << c.admission_rate
         << ", \"wall_s\": " << c.wall_s << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nJSON summary written to " << json_path << "\n";

  return pass ? 0 : 1;
}
