// Reproduces Fig. 2 — the motivation study on the Galaxy S22: AI task
// latency time series under scripted allocation changes and virtual-object
// placements, showing that the best delegate choice depends on the taskset
// and the triangle count.
//
//  (a) deconv-munet instances moved between CPU and GPU;
//  (b) five deeplabv3 instances crowding the NNAPI delegate, relieved by
//      CPU relocation, then hit by virtual objects;
//  (c) a mixed taskset on GPU/NNAPI.
//
// Output: per-segment mean latency per task (the figure's y values within
// each annotated interval) plus the timeline markers (C/G/N allocation
// codes and object placements).

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"
#include "hbosim/app/script.hpp"
#include "hbosim/common/table.hpp"
#include "hbosim/scenario/scenarios.hpp"
#include "hbosim/soc/devices_builtin.hpp"

using namespace hbosim;

namespace {

/// Print mean latency of every task over each [t_i, t_{i+1}) segment.
void print_segments(const des::TraceRecorder& trace,
                    const std::vector<std::string>& labels,
                    const std::vector<double>& edges) {
  std::vector<std::string> header = {"segment"};
  for (const auto& l : labels) header.push_back(l + " (ms)");
  TextTable table(header);
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    std::vector<std::string> row = {
        "[" + TextTable::num(edges[i], 0) + "," +
        TextTable::num(edges[i + 1], 0) + ")s"};
    for (const auto& l : labels) {
      const double v = trace.has_series(l)
                           ? trace.window_mean(l, edges[i], edges[i + 1])
                           : 0.0;
      row.push_back(v > 0.0 ? TextTable::num(v, 1) : "-");
    }
    table.add_row(row);
  }
  table.print(std::cout);
}

void print_markers(const des::TraceRecorder& trace) {
  std::cout << "markers:";
  for (const auto& [t, label] : trace.markers())
    std::cout << "  " << label << "@" << std::setprecision(3) << t << "s";
  std::cout << "\n";
}

// --- Fig. 2b: five deeplabv3 instances -------------------------------------
void fig2b(const soc::DeviceProfile& device) {
  benchutil::section("Fig. 2b: 5x deeplabv3, CPU vs NNAPI, then objects");
  app::MarAppConfig cfg;
  app::MarApp app(device, cfg);
  // Instance 1 starts alone on the CPU (the paper's C1); the rest join
  // the running system directly on the NNAPI delegate between t=40 and
  // t=95, exactly as the paper "progressively adds AI tasks".
  std::vector<TaskId> ids(5);
  ids[0] = app.add_task("deeplabv3", "deeplabv3_1", soc::Delegate::Cpu);

  des::TraceRecorder trace;
  app::ScriptRunner script(app, trace);
  // t=25: first instance CPU -> NNAPI (paper: C1 ... N1 at t=25).
  script.reallocate_at(25, ids[0], soc::Delegate::Nnapi, 1);
  // t=40..95: progressively crowd the NNAPI delegate with new instances.
  const double joins[] = {40, 55, 75, 95};
  for (int i = 2; i <= 5; ++i) {
    script.at(joins[i - 2], "N" + std::to_string(i),
              [&ids, i](app::MarApp& a) {
                ids[i - 1] = a.add_task(
                    "deeplabv3", "deeplabv3_" + std::to_string(i),
                    soc::Delegate::Nnapi);
              });
  }
  // t=120: relieve the delegate by moving instance 5 to the CPU...
  script.at(120, "C5", [&ids](app::MarApp& a) {
    a.engine().set_delegate(ids[4], soc::Delegate::Cpu);
  });
  // ...and t=140: back to NNAPI before the objects arrive.
  script.at(140, "N5", [&ids](app::MarApp& a) {
    a.engine().set_delegate(ids[4], soc::Delegate::Nnapi);
  });
  // t~150/180: heavy virtual objects land (the figure's red crosses).
  script.add_object_at(150, scenario::mesh_asset("plane"), 2.0);
  script.add_object_at(151, scenario::mesh_asset("bike"), 1.6);
  script.add_object_at(152, scenario::mesh_asset("plane"), 1.9);
  script.add_object_at(180, scenario::mesh_asset("plane"), 2.4);
  script.add_object_at(181, scenario::mesh_asset("splane"), 1.8);
  script.add_object_at(182, scenario::mesh_asset("Cocacola"), 1.4);
  script.add_object_at(183, scenario::mesh_asset("plane"), 1.7);
  script.add_object_at(184, scenario::mesh_asset("statue"), 1.5);
  // t=200: relocation to CPU now helps *everyone* (unlike at t=120)...
  script.at(200, "C5", [&ids](app::MarApp& a) {
    a.engine().set_delegate(ids[4], soc::Delegate::Cpu);
  });
  // ...but a second CPU relocation overloads the CPU cluster.
  script.at(225, "C4", [&ids](app::MarApp& a) {
    a.engine().set_delegate(ids[3], soc::Delegate::Cpu);
  });
  script.run_until(255);

  std::vector<std::string> labels;
  for (TaskId id : ids) labels.push_back(app.engine().task(id).label);
  print_segments(trace, labels,
                 {0, 25, 40, 55, 75, 95, 120, 140, 150, 180, 200, 225, 255});
  print_markers(trace);
}

// --- Fig. 2a: deconv-munet on CPU/GPU ---------------------------------------
void fig2a(const soc::DeviceProfile& device) {
  benchutil::section("Fig. 2a: deconv-munet instances, CPU vs GPU");
  app::MarAppConfig cfg;
  app::MarApp app(device, cfg);
  std::vector<TaskId> ids;
  for (int i = 1; i <= 3; ++i) {
    ids.push_back(app.add_task("deconv-munet",
                               "deconv_" + std::to_string(i),
                               soc::Delegate::Cpu));
  }
  des::TraceRecorder trace;
  app::ScriptRunner script(app, trace);
  // Move instances onto the GPU one by one, then add objects so the GPU
  // delegate becomes the wrong choice again.
  script.reallocate_at(20, ids[0], soc::Delegate::Gpu, 1);
  script.reallocate_at(40, ids[1], soc::Delegate::Gpu, 2);
  script.reallocate_at(60, ids[2], soc::Delegate::Gpu, 3);
  script.add_object_at(90, scenario::mesh_asset("bike"), 1.5);
  script.add_object_at(91, scenario::mesh_asset("plane"), 2.2);
  script.add_object_at(92, scenario::mesh_asset("splane"), 2.0);
  script.add_object_at(93, scenario::mesh_asset("statue"), 1.6);
  script.add_object_at(94, scenario::mesh_asset("plane"), 1.8);
  script.add_object_at(95, scenario::mesh_asset("bike"), 2.1);
  script.reallocate_at(120, ids[2], soc::Delegate::Cpu, 3);
  script.run_until(150);

  std::vector<std::string> labels;
  for (TaskId id : ids) labels.push_back(app.engine().task(id).label);
  print_segments(trace, labels, {0, 20, 40, 60, 90, 120, 150});
  print_markers(trace);
}

// --- Fig. 2c: mixed taskset on GPU/NNAPI ------------------------------------
void fig2c(const soc::DeviceProfile& device) {
  benchutil::section("Fig. 2c: mixed taskset (segmentation+classification)");
  app::MarAppConfig cfg;
  app::MarApp app(device, cfg);
  const TaskId mob1 = app.add_task("mobilenet-v1", "mobilenetv1_1",
                                   soc::Delegate::Nnapi);
  const TaskId inc1 =
      app.add_task("inception-v1-q", "inception_1", soc::Delegate::Nnapi);
  const TaskId dec1 =
      app.add_task("deconv-munet", "deconv_1", soc::Delegate::Gpu);
  const TaskId dlb1 =
      app.add_task("deeplabv3", "deeplabv3_1", soc::Delegate::Nnapi);

  des::TraceRecorder trace;
  app::ScriptRunner script(app, trace);
  script.add_object_at(40, scenario::mesh_asset("plane"), 2.0);
  script.add_object_at(41, scenario::mesh_asset("bike"), 1.8);
  script.add_object_at(42, scenario::mesh_asset("Cocacola"), 1.2);
  script.add_object_at(43, scenario::mesh_asset("statue"), 1.5);
  script.add_object_at(44, scenario::mesh_asset("plane"), 1.7);
  script.add_object_at(45, scenario::mesh_asset("splane"), 2.2);
  // Under render load the GPU-affine deconv suffers; NNAPI absorbs it.
  script.reallocate_at(80, dec1, soc::Delegate::Nnapi, 1);
  // Crowding NNAPI backfires for the light classifiers; move one out.
  script.reallocate_at(120, inc1, soc::Delegate::Gpu, 1);
  script.run_until(160);

  std::vector<std::string> labels;
  for (TaskId id : {mob1, inc1, dec1, dlb1})
    labels.push_back(app.engine().task(id).label);
  print_segments(trace, labels, {0, 40, 80, 120, 160});
  print_markers(trace);
}

}  // namespace

int main() {
  benchutil::banner("Fig. 2",
                    "taskset + triangle count vs AI latency (Galaxy S22)");
  const soc::DeviceProfile device = soc::galaxy_s22();
  fig2a(device);
  fig2b(device);
  fig2c(device);

  benchutil::section("Shape checks (paper claims)");
  std::cout
      << "  - Fig 2b: N1 beats C1 in isolation; each added NNAPI instance\n"
        "    raises everyone's latency; C5 at t=120 helps instance 5 only;\n"
        "    objects at t=150+ inflate ALL NNAPI latencies; C5 at t=200 now\n"
        "    helps every task; C4 at t=225 helps NNAPI residents but hurts\n"
        "    the CPU residents.\n"
        "  - Compare the segment tables above against those claims.\n";
  return 0;
}
