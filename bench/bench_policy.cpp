// Policy-layer bench: does learning across sessions actually pay?
//
// Part 1 — meta-warm-starts: train a PriorStore on the full-activation
// traffic of a batch of sessions, then give fresh cold sessions the
// fitted ScenarioPrior and count how many suggest() rounds each needs to
// reach the incumbent cost a long flat-prior reference run converges to.
// Prior-warmed activations must get there in fewer rounds on average.
//
// Part 2 — agent vs HBO adaptation: the same scripted environment
// timeline (distance-scale toggles, then the shift under test) driven
// once by the HBO MonitoredSession and once by the LinUCB BanditSession.
// An HBO activation is a ~10-control-period Bayesian burst; a bandit
// activation is a single arm pull, so after the agent has seen a few
// shifts it should re-settle faster. Reported as mean reward over the
// 30 s adaptation window after the shift plus time-to-recover.
//
// Not a paper artefact — the paper's HBO is single-session; this bench
// characterizes the hbosim::policy extensions (fleet-learned priors and
// the contextual-bandit baseline) against that HBO core.
//
// Usage: bench_policy [--smoke] [--json <path>]
//   --smoke   fewer train/eval seeds (CI)
//   --json    write a machine-readable summary (default: BENCH_policy.json)

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hbosim/app/script.hpp"
#include "hbosim/core/monitored_session.hpp"
#include "hbosim/des/trace.hpp"
#include "hbosim/policy/bandit_session.hpp"
#include "hbosim/policy/prior_store.hpp"
#include "hbosim/scenario/scenarios.hpp"
#include "hbosim/soc/devices_builtin.hpp"

namespace {

using namespace hbosim;

constexpr const char* kDevice = "Pixel 7";
constexpr const char* kScenario = "SC2/CF2";

core::HboConfig fast_hbo(std::uint64_t seed) {
  core::HboConfig hbo;
  hbo.n_initial = 3;
  hbo.n_iterations = 7;
  hbo.selection_candidates = 1;
  hbo.control_period_s = 1.0;
  hbo.monitor_period_s = 1.0;
  hbo.seed = seed;
  return hbo;
}

std::unique_ptr<app::MarApp> fresh_app(std::uint64_t seed) {
  const soc::DeviceProfile device = soc::find_builtin(kDevice);
  auto app = scenario::make_app(device, scenario::ObjectSet::SC2,
                                scenario::TaskSet::CF2, seed);
  app->start();
  return app;
}

// ---- part 1: prior warm starts ------------------------------------------

struct ColdStartRow {
  std::uint64_t seed = 0;
  double incumbent = 0.0;    ///< Long flat reference run's best cost.
  int flat_rounds = 0;       ///< suggest() rounds to reach incumbent+slack.
  int prior_rounds = 0;
  double flat_best = 0.0;    ///< Best cost inside the standard budget.
  double prior_best = 0.0;
};

/// First 1-based round whose running-best cost is within `slack` of the
/// incumbent; budget+1 when the whole activation never gets there.
int rounds_to_reach(const core::ActivationResult& r, double incumbent,
                    double slack) {
  const std::vector<double> curve = r.best_cost_curve();
  for (std::size_t i = 0; i < curve.size(); ++i)
    if (curve[i] <= incumbent + slack) return static_cast<int>(i) + 1;
  return static_cast<int>(curve.size()) + 1;
}

struct Part1Result {
  std::vector<ColdStartRow> rows;
  policy::PriorStoreStats store;
  double flat_rounds_mean = 0.0;
  double prior_rounds_mean = 0.0;
  double flat_best_mean = 0.0;
  double prior_best_mean = 0.0;
};

Part1Result run_part1(int train_sessions, int eval_seeds,
                      double train_duration_s) {
  Part1Result out;

  // Train: ordinary HBO sessions; every full activation's iteration
  // history lands in the store under its quantized environment — exactly
  // the feed a Prior-mode fleet performs at epoch barriers.
  policy::PriorStore store;
  for (int s = 0; s < train_sessions; ++s) {
    const std::uint64_t seed = 0x1000u + static_cast<std::uint64_t>(s);
    auto app = fresh_app(seed);
    core::MonitoredSessionConfig cfg;
    cfg.hbo = fast_hbo(seed);
    cfg.reference_periods = 2;
    core::MonitoredSession session(*app, cfg);
    session.run_until(train_duration_s);
    for (const core::SessionActivation& a : session.activations()) {
      if (a.warm_start) continue;
      for (const core::IterationRecord& rec : a.result.history)
        store.record({kDevice, kScenario, a.env}, rec.z, rec.cost);
    }
  }
  const std::shared_ptr<const policy::PriorSnapshot> snap = store.snapshot();
  out.store = store.stats();

  // Evaluate on held-out seeds: a long flat run pins the incumbent, then
  // a flat and a prior-warmed activation race to it on fresh apps.
  constexpr double kSlack = 0.02;
  for (int s = 0; s < eval_seeds; ++s) {
    const std::uint64_t seed = 0x2000u + static_cast<std::uint64_t>(s);
    ColdStartRow row;
    row.seed = seed;
    {
      auto app = fresh_app(seed);
      core::HboConfig ref = fast_hbo(seed);
      ref.n_initial = 4;
      ref.n_iterations = 16;
      core::HboController ctrl(*app, ref);
      row.incumbent = ctrl.run_activation().best().cost;
    }
    {
      auto app = fresh_app(seed);
      core::HboController ctrl(*app, fast_hbo(seed));
      const core::ActivationResult r = ctrl.run_activation();
      row.flat_rounds = rounds_to_reach(r, row.incumbent, kSlack);
      row.flat_best = r.best().cost;
    }
    {
      auto app = fresh_app(seed);
      core::HboController ctrl(*app, fast_hbo(seed));
      ctrl.set_surrogate_prior(snap->find(
          kDevice, kScenario, core::SolutionLookupTable::make_key(*app)));
      const core::ActivationResult r = ctrl.run_activation();
      row.prior_rounds = rounds_to_reach(r, row.incumbent, kSlack);
      row.prior_best = r.best().cost;
    }
    out.rows.push_back(row);
  }

  for (const ColdStartRow& r : out.rows) {
    out.flat_rounds_mean += r.flat_rounds;
    out.prior_rounds_mean += r.prior_rounds;
    out.flat_best_mean += r.flat_best;
    out.prior_best_mean += r.prior_best;
  }
  const double n = static_cast<double>(out.rows.size());
  out.flat_rounds_mean /= n;
  out.prior_rounds_mean /= n;
  out.flat_best_mean /= n;
  out.prior_best_mean /= n;
  return out;
}

// ---- part 2: adaptation after an environment shift ----------------------

constexpr double kShiftAt = 120.0;
constexpr double kEnd = 240.0;
constexpr double kWindowS = 30.0;

struct AdaptResult {
  std::string name;
  double pre_shift = 0.0;     ///< Mean reward over the 30 s before the shift.
  double window_mean = 0.0;   ///< Mean reward over the 30 s after it.
  double final_steady = 0.0;  ///< Mean reward over the last 30 s.
  double recovery_s = 0.0;    ///< Shift -> first sample at 90% of the dip
                              ///< recovered; kEnd - kShiftAt if never.
  std::size_t activations = 0;
};

/// Scripted timeline shared by both arms: two warm-up distance toggles
/// (context variety for the bandit to train on), then the shift under
/// test at kShiftAt — the user walks up to the objects, halving every
/// distance, so render load jumps and the reward dips until the
/// controller re-adapts.
void schedule_timeline(app::ScriptRunner& script) {
  script.set_distance_scale_at(40.0, 0.7);
  script.set_distance_scale_at(80.0, 1.0);
  script.set_distance_scale_at(kShiftAt, 0.5);
}

AdaptResult summarize_trace(
    const std::string& name,
    const std::vector<std::pair<SimTime, double>>& trace,
    std::size_t activations) {
  AdaptResult out;
  out.name = name;
  out.activations = activations;
  auto window_mean = [&](double lo, double hi) {
    double acc = 0.0;
    int n = 0;
    for (const auto& [t, r] : trace)
      if (t > lo && t <= hi) {
        acc += r;
        ++n;
      }
    return n > 0 ? acc / n : 0.0;
  };
  out.pre_shift = window_mean(kShiftAt - kWindowS, kShiftAt);
  out.window_mean = window_mean(kShiftAt, kShiftAt + kWindowS);
  out.final_steady = window_mean(kEnd - kWindowS, kEnd);

  double dip = out.final_steady;
  for (const auto& [t, r] : trace)
    if (t > kShiftAt) dip = std::min(dip, r);
  const double target = out.final_steady - 0.1 * (out.final_steady - dip);
  out.recovery_s = kEnd - kShiftAt;
  for (const auto& [t, r] : trace)
    if (t > kShiftAt && r >= target) {
      out.recovery_s = t - kShiftAt;
      break;
    }
  return out;
}

AdaptResult run_hbo_arm(std::uint64_t seed) {
  auto app = fresh_app(seed);
  des::TraceRecorder trace;
  app::ScriptRunner script(*app, trace);
  schedule_timeline(script);
  core::MonitoredSessionConfig cfg;
  cfg.hbo = fast_hbo(seed);
  cfg.reference_periods = 2;
  core::MonitoredSession session(*app, cfg);
  session.run_until(kEnd);
  return summarize_trace("HBO", session.reward_trace(),
                         session.activations().size());
}

AdaptResult run_bandit_arm(std::uint64_t seed) {
  auto app = fresh_app(seed);
  des::TraceRecorder trace;
  app::ScriptRunner script(*app, trace);
  schedule_timeline(script);
  policy::BanditSessionConfig cfg;
  cfg.hbo = fast_hbo(seed);
  policy::BanditConfig bandit;
  bandit.alpha = 0.4;  // Commit faster: 28 arms, short deviation windows.
  policy::BanditSession session(*app, cfg, bandit);
  session.run_until(kEnd);
  return summarize_trace("LinUCB", session.reward_trace(),
                         session.experiences().size());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_policy.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  benchutil::banner("bench_policy",
                    "learned warm-start priors and the LinUCB agent vs HBO");
  const int train_sessions = smoke ? 6 : 10;
  const int eval_seeds = smoke ? 4 : 8;
  const double train_duration_s = smoke ? 60.0 : 120.0;

  const auto t0 = std::chrono::steady_clock::now();

  benchutil::section("part 1: suggest() rounds to reach the incumbent");
  std::cout << "  train: " << train_sessions << " sessions x "
            << train_duration_s << "s on " << kDevice << " " << kScenario
            << "; eval: " << eval_seeds << " held-out cold starts\n";
  const Part1Result p1 = run_part1(train_sessions, eval_seeds,
                                   train_duration_s);
  std::cout << std::fixed << std::setprecision(3);
  std::cout << "  store: " << p1.store.keys << " env keys, "
            << p1.store.observations << " retained observations, "
            << p1.store.fits << " priors fitted\n";
  std::cout << "  seed      incumbent  flat_rounds  prior_rounds   "
               "flat_best  prior_best\n";
  for (const ColdStartRow& r : p1.rows)
    std::cout << "  0x" << std::hex << r.seed << std::dec << std::setw(13)
              << r.incumbent << std::setw(13) << r.flat_rounds
              << std::setw(14) << r.prior_rounds << std::setw(12)
              << r.flat_best << std::setw(12) << r.prior_best << "\n";
  std::cout << "  mean rounds: flat=" << p1.flat_rounds_mean
            << "  prior=" << p1.prior_rounds_mean << "   mean best cost: flat="
            << p1.flat_best_mean << "  prior=" << p1.prior_best_mean << "\n";

  benchutil::section("part 2: adaptation after the t=120s distance shift");
  const AdaptResult hbo = run_hbo_arm(0x7A5);
  const AdaptResult ucb = run_bandit_arm(0x7A5);
  for (const AdaptResult& a : {hbo, ucb})
    std::cout << "  " << std::left << std::setw(7) << a.name << std::right
              << " pre=" << a.pre_shift << "  window30s=" << a.window_mean
              << "  final=" << a.final_steady << "  recovery="
              << std::setprecision(1) << a.recovery_s << "s"
              << std::setprecision(3) << "  activations=" << a.activations
              << "\n";

  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  const bool prior_faster = p1.prior_rounds_mean < p1.flat_rounds_mean;
  const bool prior_no_worse = p1.prior_best_mean <= p1.flat_best_mean + 0.01;
  // Adaptation speed, not absolute reward: the 28-arm grid caps the
  // bandit below HBO's continuous optimum, but it must get back to its
  // own steady state at least as fast as HBO's re-activation burst does.
  const bool bandit_adapts = ucb.recovery_s <= hbo.recovery_s;

  benchutil::section("recap");
  benchutil::recap_line("prior-warmed rounds < flat rounds", "yes",
                        prior_faster ? "yes" : "NO");
  benchutil::recap_line("prior best cost no worse than flat", "yes",
                        prior_no_worse ? "yes" : "NO");
  benchutil::recap_line("bandit recovers no slower than HBO", "yes",
                        bandit_adapts ? "yes" : "NO");

  std::ofstream json(json_path);
  json << std::setprecision(6) << std::fixed;
  json << "{\n  \"bench\": \"bench_policy\",\n  \"smoke\": "
       << (smoke ? "true" : "false") << ",\n  \"wall_s\": " << wall_s
       << ",\n  \"warm_start_priors\": {\n    \"train_sessions\": "
       << train_sessions << ",\n    \"store_keys\": " << p1.store.keys
       << ",\n    \"store_observations\": " << p1.store.observations
       << ",\n    \"priors_fitted\": " << p1.store.fits
       << ",\n    \"flat_rounds_mean\": " << p1.flat_rounds_mean
       << ",\n    \"prior_rounds_mean\": " << p1.prior_rounds_mean
       << ",\n    \"flat_best_mean\": " << p1.flat_best_mean
       << ",\n    \"prior_best_mean\": " << p1.prior_best_mean
       << ",\n    \"cold_starts\": [\n";
  for (std::size_t i = 0; i < p1.rows.size(); ++i) {
    const ColdStartRow& r = p1.rows[i];
    json << "      {\"seed\": " << r.seed << ", \"incumbent\": "
         << r.incumbent << ", \"flat_rounds\": " << r.flat_rounds
         << ", \"prior_rounds\": " << r.prior_rounds << ", \"flat_best\": "
         << r.flat_best << ", \"prior_best\": " << r.prior_best << "}"
         << (i + 1 < p1.rows.size() ? "," : "") << "\n";
  }
  json << "    ]\n  },\n  \"adaptation\": [\n";
  const std::vector<AdaptResult> arms = {hbo, ucb};
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const AdaptResult& a = arms[i];
    json << "    {\"controller\": \"" << a.name << "\", \"pre_shift\": "
         << a.pre_shift << ", \"window_mean\": " << a.window_mean
         << ", \"final_steady\": " << a.final_steady << ", \"recovery_s\": "
         << a.recovery_s << ", \"activations\": " << a.activations << "}"
         << (i + 1 < arms.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"gates\": {\"prior_faster\": "
       << (prior_faster ? "true" : "false") << ", \"prior_no_worse\": "
       << (prior_no_worse ? "true" : "false") << ", \"bandit_adapts\": "
       << (bandit_adapts ? "true" : "false") << "}\n}\n";
  std::cout << "\nJSON summary written to " << json_path << "\n";

  return (prior_faster && prior_no_worse && bandit_adapts) ? 0 : 1;
}
