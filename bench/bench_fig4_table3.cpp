// Reproduces Fig. 4 (a: AI task allocation, b: triangle count ratio,
// c: best-cost convergence) and Table III (per-task assignments + ratio)
// across the paper's four scenario combinations SC1/SC2 x CF1/CF2 on the
// Pixel 7, plus a dump of the Table II scenario definitions.
//
// Shape targets (Section V-B): in the heavy SC1 scenarios HBO relocates
// the GPU-affine tasks to the CPU and reduces the triangle ratio; in the
// light SC2 scenarios tasks keep (or nearly keep) their preferred
// delegates and the ratio stays near 1. Convergence reaches its best cost
// within the 20-iteration budget — best case ~7 iterations, ~13 on
// average in the paper.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "hbosim/common/table.hpp"
#include "hbosim/core/controller.hpp"
#include "hbosim/scenario/scenarios.hpp"
#include "hbosim/soc/devices_builtin.hpp"

using namespace hbosim;

namespace {

struct ScenarioRun {
  std::string name;
  std::vector<std::string> labels;
  core::ActivationResult result;
};

ScenarioRun run_scenario(const soc::DeviceProfile& device,
                         scenario::ObjectSet objects, scenario::TaskSet tasks) {
  ScenarioRun run;
  run.name = std::string(scenario::object_set_name(objects)) + "-" +
             scenario::task_set_name(tasks);
  auto app = scenario::make_app(device, objects, tasks);
  run.labels = app->task_labels();
  core::HboConfig cfg;
  core::HboController hbo(*app, cfg);
  run.result = hbo.run_activation();
  return run;
}

void print_table2() {
  benchutil::section("Table II: example scenarios (inputs)");
  TextTable objs(std::vector<std::string>{"Object set", "Mesh", "Distance (m)",
                                          "Max triangles"});
  for (auto set : {scenario::ObjectSet::SC1, scenario::ObjectSet::SC2}) {
    for (const auto& p : scenario::object_placements(set)) {
      objs.add_row({scenario::object_set_name(set), p.asset->name(),
                    TextTable::num(p.distance_m, 1),
                    std::to_string(p.asset->max_triangles())});
    }
  }
  objs.print(std::cout);
  TextTable tasks(std::vector<std::string>{"Taskset", "Model", "Label"});
  for (auto set : {scenario::TaskSet::CF1, scenario::TaskSet::CF2}) {
    for (const auto& t : scenario::task_specs(set))
      tasks.add_row({scenario::task_set_name(set), t.model, t.label});
  }
  tasks.print(std::cout);
}

}  // namespace

int main() {
  benchutil::banner("Fig. 4 + Table III",
                    "HBO behavior across SC1/SC2 x CF1/CF2 (Pixel 7)");
  print_table2();

  const soc::DeviceProfile device = soc::pixel7();
  std::vector<ScenarioRun> runs;
  runs.push_back(
      run_scenario(device, scenario::ObjectSet::SC1, scenario::TaskSet::CF1));
  runs.push_back(
      run_scenario(device, scenario::ObjectSet::SC2, scenario::TaskSet::CF1));
  runs.push_back(
      run_scenario(device, scenario::ObjectSet::SC1, scenario::TaskSet::CF2));
  runs.push_back(
      run_scenario(device, scenario::ObjectSet::SC2, scenario::TaskSet::CF2));

  // --- Table III ------------------------------------------------------------
  benchutil::section("Table III: AI allocation and triangle ratio");
  // Row space: union of CF1 labels (CF2 is a subset by model).
  std::vector<std::string> header = {"AI Model/Scenario"};
  for (const auto& run : runs) header.push_back(run.name);
  TextTable table(header);
  const std::vector<std::string>& all_labels = runs[0].labels;
  for (std::size_t t = 0; t < all_labels.size(); ++t) {
    std::vector<std::string> row = {all_labels[t]};
    for (const auto& run : runs) {
      std::string cell = "-";
      for (std::size_t k = 0; k < run.labels.size(); ++k) {
        if (run.labels[k] == all_labels[t]) {
          cell = soc::delegate_name(run.result.best().allocation[k]);
          break;
        }
      }
      row.push_back(cell);
    }
    table.add_row(row);
  }
  std::vector<std::string> ratio_row = {"Triangle Count Ratio"};
  for (const auto& run : runs)
    ratio_row.push_back(TextTable::num(run.result.best().triangle_ratio, 2));
  table.add_row(ratio_row);
  table.print(std::cout);

  // --- Fig. 4c: best-cost convergence ----------------------------------------
  benchutil::section("Fig. 4c: best cost vs iteration (running minimum)");
  std::vector<std::string> chead = {"iter"};
  for (const auto& run : runs) chead.push_back(run.name);
  TextTable conv(chead);
  const std::size_t iters = runs[0].result.history.size();
  std::vector<std::vector<double>> curves;
  for (const auto& run : runs) curves.push_back(run.result.best_cost_curve());
  for (std::size_t i = 0; i < iters; ++i) {
    std::vector<std::string> row = {std::to_string(i + 1)};
    for (const auto& curve : curves) row.push_back(TextTable::num(curve[i], 3));
    conv.add_row(row);
  }
  conv.print(std::cout);

  // --- recap ------------------------------------------------------------------
  benchutil::section("Paper vs measured (shape check)");
  benchutil::recap_line("SC1-CF1 triangle ratio", "0.72",
                        TextTable::num(runs[0].result.best().triangle_ratio, 2));
  benchutil::recap_line("SC2-CF1 triangle ratio", "1.00",
                        TextTable::num(runs[1].result.best().triangle_ratio, 2));
  benchutil::recap_line("SC1-CF2 triangle ratio", "0.85",
                        TextTable::num(runs[2].result.best().triangle_ratio, 2));
  benchutil::recap_line("SC2-CF2 triangle ratio", "0.94",
                        TextTable::num(runs[3].result.best().triangle_ratio, 2));
  for (const auto& run : runs) {
    // Iteration (1-based) at which the final best cost is first reached.
    const auto curve = run.result.best_cost_curve();
    // "Converged" = first iteration within 5% (plus a small absolute
    // slack) of the final best cost; the strict minimum often improves
    // marginally late into the run on the noisy cost surface.
    const double tol = 0.05 * std::abs(curve.back()) + 0.02;
    std::size_t reach = curve.size();
    for (std::size_t i = 0; i < curve.size(); ++i) {
      if (curve[i] <= curve.back() + tol) {
        reach = i + 1;
        break;
      }
    }
    benchutil::recap_line(run.name + " converged at iteration",
                          "best 7 / avg 13 (of 20)", std::to_string(reach));
  }
  std::cout << "  Lowest best-cost scenario (paper: SC2-CF2, least "
               "contention):\n";
  const ScenarioRun* lowest = &runs[0];
  for (const auto& run : runs) {
    if (run.result.best().cost < lowest->result.best().cost) lowest = &run;
  }
  std::cout << "    measured: " << lowest->name << "\n";
  return 0;
}
