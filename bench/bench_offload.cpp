// Battery-lifetime frontier: hours-of-AR-per-charge vs QoE with and
// without the edge in the HBO decision space (hbosim::offload). Each
// cell of scenario::offload_matrix() — {light SC2/CF2, ThermalSoak/CF1}
// x {lan, congested} — runs a small power-enabled fleet twice per
// w_energy point: once confined to the paper's on-device CPU/GPU/NPU
// simplex and once searching the 4-target simplex with the edge share as
// a coordinate. The sweep over w_energy traces each mode's frontier.
//
// Not a paper artefact — the paper's testbed has no edge tier; this
// bench characterizes the hbosim::offload extension and feeds the
// EXPERIMENTS.md battery-lifetime frontier table.
//
// Hard gates (exit code 1 on violation; CI runs this as bench-offload):
//  - 3-resource parity: the offload-disabled configuration is bitwise
//    identical on 1 and 4 fleet threads, and bitwise identical run to
//    run (the pre-offload behaviour is still there, untouched).
//  - offload determinism: the offload-enabled configuration is bitwise
//    identical on 1 and 4 fleet threads.
//  - frontier dominance: in ThermalSoak x congested — a hot throttling
//    die behind a lossy link, the corner where a fixed policy would
//    lose — some 4-target point weakly dominates the best on-device-only
//    point on (hours-of-AR-per-charge, QoE).
//
// Usage: bench_offload [--smoke] [--json <path>]
//   --smoke   fewer sessions / shorter horizon / single w_energy (CI)
//   --json    machine-readable summary (default: BENCH_offload.json)

#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hbosim/fleet/fleet_simulator.hpp"
#include "hbosim/scenario/scenarios.hpp"

namespace {

using namespace hbosim;

struct SweepPoint {
  std::string cell;
  bool offload = false;
  double w_energy = 0.0;
  double qoe = 0.0;             ///< Fleet mean reward B = Q - w*eps.
  double hours_per_charge = 0.0;
  double drain_pct_per_hour = 0.0;
  double offload_rate = 0.0;
  double mean_edge_share = 0.0;
  double radio_wh = 0.0;
};

struct BenchConfig {
  std::size_t sessions = 8;
  double duration_s = 40.0;
  int bo_iterations = 10;
  std::vector<double> w_energies;
};

fleet::FleetSpec make_spec(const scenario::OffloadMatrixCell& cell,
                           bool offload, double w_energy,
                           const BenchConfig& bc, std::size_t threads) {
  fleet::FleetSpec spec;
  spec.sessions = bc.sessions;
  spec.threads = threads;
  spec.duration_s = bc.duration_s;
  spec.base_seed = 0x0FF10AD;
  // Enough per-activation BO budget that the search can *shrink* the
  // edge coordinate on a hostile link, not just grow it on a good one —
  // the congested cells are meaningless with a toy budget.
  spec.session.hbo.n_initial = 4;
  spec.session.hbo.n_iterations = bc.bo_iterations;
  spec.session.hbo.selection_candidates = 5;
  spec.session.hbo.control_period_s = 1.0;
  spec.session.hbo.monitor_period_s = 1.0;
  spec.session.hbo.w_energy = w_energy;
  spec.session.reference_periods = 2;
  // Warm starts keep drift-triggered re-activations from re-paying the
  // full exploration bill every time the governor steps — both modes get
  // the same lookup table, so the comparison stays apples to apples.
  spec.session.use_lookup_table = true;
  spec.scenarios = {{cell.objects, cell.tasks, 1.0}};
  spec.use_edge_service = true;
  spec.edge = edgesvc::edge_service_preset(cell.edge_preset);
  spec.use_power_model = true;
  // The cell defines the thermal environment (the soak cells start at the
  // governor trip point in a pocket-warm ambient), so the trade-off is
  // live inside the bench horizon instead of spent on the RC climb.
  spec.power.ambient_c = cell.ambient_c;
  spec.power.initial_temp_c = cell.initial_temp_c;
  spec.offload.enabled = offload;
  return spec;
}

SweepPoint run_point(const scenario::OffloadMatrixCell& cell, bool offload,
                     double w_energy, const BenchConfig& bc) {
  const fleet::FleetResult r =
      fleet::FleetSimulator(make_spec(cell, offload, w_energy, bc, 0)).run();
  SweepPoint p;
  p.cell = cell.name;
  p.offload = offload;
  p.w_energy = w_energy;
  p.qoe = r.metrics.reward.mean;
  p.drain_pct_per_hour = r.metrics.power.drain_pct_per_hour.mean;
  p.hours_per_charge =
      p.drain_pct_per_hour > 0.0 ? 100.0 / p.drain_pct_per_hour : 0.0;
  p.offload_rate = r.metrics.offload.offload_rate;
  p.mean_edge_share = r.metrics.offload.edge_share.mean;
  p.radio_wh = r.metrics.offload.radio_energy_j / 3600.0;
  return p;
}

/// Bitwise comparison of the per-session surfaces two runs must agree on.
bool sessions_identical(const fleet::FleetResult& a,
                        const fleet::FleetResult& b) {
  if (a.sessions.size() != b.sessions.size()) return false;
  for (std::size_t i = 0; i < a.sessions.size(); ++i) {
    const fleet::SessionResult& x = a.sessions[i];
    const fleet::SessionResult& y = b.sessions[i];
    if (x.mean_quality != y.mean_quality || x.mean_reward != y.mean_reward ||
        x.mean_latency_ratio != y.mean_latency_ratio ||
        x.energy_j != y.energy_j || x.battery_soc != y.battery_soc ||
        x.offload_remote != y.offload_remote ||
        x.radio_energy_j != y.radio_energy_j ||
        x.activations != y.activations) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_offload.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  benchutil::banner("bench_offload",
                    "hours-of-AR-per-charge vs QoE, 3- vs 4-target simplex");

  BenchConfig bc;
  // Sessions need a horizon long enough that the converged configuration
  // (not the exploration transient) dominates the mean, and enough
  // sessions that fleet-mean drain is stable — smoke trims only the
  // w_energy sweep. The whole full sweep is a few seconds of wall time.
  bc.sessions = 8;
  bc.duration_s = 150.0;
  bc.bo_iterations = 12;
  bc.w_energies = smoke ? std::vector<double>{0.0, 0.05}
                        : std::vector<double>{0.0, 0.05, 0.15};

  const std::vector<scenario::OffloadMatrixCell> cells =
      scenario::offload_matrix();

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<SweepPoint> points;
  std::cout << std::fixed
            << "  cell                   mode       w_e    QoE     h/charge"
               "  off_rate  edge_share\n";
  for (const scenario::OffloadMatrixCell& cell : cells) {
    for (const bool offload : {false, true}) {
      for (const double w : bc.w_energies) {
        const SweepPoint p = run_point(cell, offload, w, bc);
        points.push_back(p);
        std::cout << "  " << std::left << std::setw(21) << p.cell << "  "
                  << std::setw(9) << (offload ? "4-target" : "on-device")
                  << std::right << std::setprecision(2) << std::setw(5)
                  << p.w_energy << std::setprecision(3) << std::setw(8)
                  << p.qoe << std::setprecision(2) << std::setw(10)
                  << p.hours_per_charge << std::setw(9) << p.offload_rate
                  << std::setprecision(3) << std::setw(11)
                  << p.mean_edge_share << "\n";
      }
    }
  }

  // --- gates ------------------------------------------------------------
  // Parity: offload disabled must be bitwise identical on 1 and 4 fleet
  // threads and run to run (the pre-offload path, untouched). Offload
  // enabled must be bitwise identical on 1 and 4 threads.
  const scenario::OffloadMatrixCell& soak_congested = cells.back();
  const fleet::FleetSpec off1 =
      make_spec(soak_congested, false, 0.05, bc, 1);
  const fleet::FleetSpec off4 =
      make_spec(soak_congested, false, 0.05, bc, 4);
  const fleet::FleetResult off_a = fleet::FleetSimulator(off1).run();
  const fleet::FleetResult off_b = fleet::FleetSimulator(off4).run();
  const fleet::FleetResult off_c = fleet::FleetSimulator(off1).run();
  const bool parity_disabled =
      sessions_identical(off_a, off_b) && sessions_identical(off_a, off_c);

  const fleet::FleetResult on_a =
      fleet::FleetSimulator(make_spec(soak_congested, true, 0.05, bc, 1))
          .run();
  const fleet::FleetResult on_b =
      fleet::FleetSimulator(make_spec(soak_congested, true, 0.05, bc, 4))
          .run();
  const bool parity_enabled = sessions_identical(on_a, on_b);

  // Frontier dominance in ThermalSoak x congested: some 4-target point
  // must weakly dominate the best (highest-QoE) on-device-only point —
  // at least as good on BOTH axes, strictly, no tolerance. The sim is
  // deterministic, so the gate is exact.
  const SweepPoint* best_off = nullptr;
  for (const SweepPoint& p : points) {
    if (p.cell != soak_congested.name || p.offload) continue;
    if (best_off == nullptr || p.qoe > best_off->qoe) best_off = &p;
  }
  bool dominates = false;
  const SweepPoint* witness = nullptr;
  for (const SweepPoint& p : points) {
    if (p.cell != soak_congested.name || !p.offload) continue;
    if (p.qoe >= best_off->qoe &&
        p.hours_per_charge >= best_off->hours_per_charge) {
      dominates = true;
      if (witness == nullptr || p.qoe > witness->qoe) witness = &p;
    }
  }

  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  benchutil::section("recap");
  benchutil::recap_line("3-resource parity (1/4 threads, rerun)", "bitwise",
                        parity_disabled ? "bitwise" : "DIVERGED");
  benchutil::recap_line("4-target 1-vs-4-thread identity", "bitwise",
                        parity_enabled ? "bitwise" : "DIVERGED");
  std::cout << std::setprecision(3);
  benchutil::recap_line(
      "soak x congested: 4-target dominates on-device", "yes",
      dominates ? "yes" : "NO");
  if (best_off != nullptr) {
    std::cout << "    best on-device: QoE " << best_off->qoe << " at "
              << std::setprecision(2) << best_off->hours_per_charge
              << " h/charge" << std::setprecision(3);
    if (witness != nullptr) {
      std::cout << "; 4-target witness: QoE " << witness->qoe << " at "
                << std::setprecision(2) << witness->hours_per_charge
                << " h/charge (edge share " << std::setprecision(3)
                << witness->mean_edge_share << ")";
    }
    std::cout << "\n";
  }

  std::ofstream json(json_path);
  json << std::setprecision(6) << std::fixed;
  json << "{\n  \"bench\": \"bench_offload\",\n  \"smoke\": "
       << (smoke ? "true" : "false") << ",\n  \"sessions_per_point\": "
       << bc.sessions << ",\n  \"duration_s\": " << bc.duration_s
       << ",\n  \"wall_s\": " << wall_s << ",\n  \"gates\": {\n"
       << "    \"parity_disabled_bitwise\": "
       << (parity_disabled ? "true" : "false") << ",\n"
       << "    \"parity_enabled_thread_invariant\": "
       << (parity_enabled ? "true" : "false") << ",\n"
       << "    \"soak_congested_dominates\": "
       << (dominates ? "true" : "false") << "\n  },\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    json << "    {\"cell\": \"" << p.cell << "\", \"mode\": \""
         << (p.offload ? "4-target" : "on-device")
         << "\", \"w_energy\": " << p.w_energy << ", \"qoe\": " << p.qoe
         << ", \"hours_per_charge\": " << p.hours_per_charge
         << ", \"drain_pct_per_hour\": " << p.drain_pct_per_hour
         << ", \"offload_rate\": " << p.offload_rate
         << ", \"mean_edge_share\": " << p.mean_edge_share
         << ", \"radio_wh\": " << p.radio_wh << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nJSON summary written to " << json_path << "\n";

  return (parity_disabled && parity_enabled && dominates) ? 0 : 1;
}
