// DES core + scheduler-forensics benchmark: raw event throughput, the
// cost of PsResource lifecycle tracing (off vs on), and SchedAnalyzer
// replay throughput.
//
// Not a paper artefact — this bench characterizes the simulator
// machinery under the reproduction (hbosim::des) and pins the PR-8
// guarantees as hard gates:
//   - attaching a SchedTrace changes no simulated result (bitwise parity
//     of completion state between an untraced and a traced run);
//   - the analyzer reproduces closed-form answers on synthetic schedules
//     (slowdown 2 for two equal jobs, Jain 0.9 for a 2-vs-1 class split,
//     one known starvation victim with nine contenders);
//   - throughput stays above very generous floors (a regression that
//     trips these is catastrophic, not noise).
//
// Usage: bench_des [--smoke] [--json <path>]
//   --smoke   smaller job counts (CI)
//   --json    write a machine-readable summary (default: BENCH_des.json)

#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hbosim/des/ps_resource.hpp"
#include "hbosim/des/sched_analyzer.hpp"
#include "hbosim/des/sched_trace.hpp"
#include "hbosim/des/simulator.hpp"

namespace {

using namespace hbosim;

double now_wall() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Raw event-loop throughput: a self-rescheduling chain of N handlers.
double des_events_per_sec(std::uint64_t n_events) {
  des::Simulator sim;
  std::uint64_t fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < n_events) sim.schedule_at(sim.now() + 1e-4, tick);
  };
  sim.schedule_at(0.0, tick);
  const double t0 = now_wall();
  sim.run();
  const double wall = now_wall() - t0;
  return static_cast<double>(fired) / wall;
}

/// End state of one churn run — the bitwise parity gate compares these.
struct ChurnResult {
  double wall_s = 0.0;
  double cpu_work = 0.0;
  double gpu_work = 0.0;
  double end_time = 0.0;
  std::size_t completed = 0;
};

/// A contended two-resource workload with mid-run rescales (the DVFS
/// governor pattern) and cycling job classes. Deterministic: identical
/// with and without a trace attached, which is exactly what the parity
/// gate checks.
ChurnResult run_churn(std::size_t jobs, des::SchedTrace* trace) {
  des::Simulator sim;
  if (trace != nullptr) sim.set_sched_trace(trace);
  des::PsResource cpu(sim, "cpu", 4.0, 1.0);
  des::PsResource gpu(sim, "gpu", 1.0, 1.0);
  static const char* kClasses[3] = {"detect", "track", "segment"};

  ChurnResult out;
  for (std::size_t i = 0; i < jobs; ++i) {
    const double arrival = 2e-4 * static_cast<double>(i);
    sim.schedule_at(arrival, [&, i] {
      des::PsResource& res = (i % 3 == 0) ? gpu : cpu;
      const double demand = 1e-3 + 1e-5 * static_cast<double>(i % 17);
      const double cores = (i % 5 == 0) ? 2.0 : 1.0;
      res.submit(demand, (&res == &gpu) ? 1.0 : cores,
                 [&out] { ++out.completed; }, kClasses[i % 3]);
    });
  }
  // Periodic DVFS steps on the CPU cluster and render-load settles on
  // the GPU: every rescale emits a lifecycle record when traced.
  const double horizon = 2e-4 * static_cast<double>(jobs);
  for (double t = 0.05; t < horizon; t += 0.1) {
    sim.schedule_at(t, [&, t] {
      const bool down = static_cast<std::uint64_t>(t * 10.0) % 2 == 0;
      cpu.set_capacity(down ? 3.0 : 4.0);
      gpu.set_background_utilization(down ? 0.3 : 0.1);
    });
  }

  const double t0 = now_wall();
  sim.run();
  out.wall_s = now_wall() - t0;
  out.cpu_work = cpu.work_done();
  out.gpu_work = gpu.work_done();
  out.end_time = sim.now();
  return out;
}

/// The governor-throttle forensics case study (EXPERIMENTS.md): one job
/// stream, run twice. Untrottled, the stream is uncontended (4 ms of
/// work every 5 ms) and every slowdown is exactly 1. Throttled, the
/// governor steps the clock to 0.55x halfway through, service can no
/// longer keep up with arrivals, and the queue that builds is visible as
/// a slowdown-p99 step in the analyzer — the signature a real throttle
/// leaves in a fleet's forensics. Bit-deterministic.
struct GovernorStep {
  double pre_p99 = 0.0;    ///< Slowdown p99, governor never acts.
  double post_p50 = 0.0;   ///< Slowdown p50, throttled run.
  double post_p99 = 0.0;   ///< Slowdown p99, throttled run.
  std::size_t jobs = 0;
};

GovernorStep governor_step() {
  auto run = [](bool throttle) {
    des::Simulator sim;
    des::SchedTrace trace;
    sim.set_sched_trace(&trace);
    des::PsResource cpu(sim, "cpu", 1.0, 1.0);
    const std::size_t jobs = 1000;
    for (std::size_t i = 0; i < jobs; ++i) {
      sim.schedule_at(5e-3 * static_cast<double>(i),
                      [&] { cpu.submit(4e-3, [] {}, "stream"); });
    }
    if (throttle) {
      sim.schedule_at(5e-3 * static_cast<double>(jobs / 2), [&] {
        cpu.set_capacity(0.55);
        cpu.set_max_rate_per_job(0.55);
      });
    }
    sim.run();
    return des::SchedAnalyzer(trace);
  };
  const des::SchedAnalyzer cool = run(false);
  const des::SchedAnalyzer hot = run(true);
  GovernorStep out;
  out.jobs = cool.health().jobs;
  out.pre_p99 = cool.resources()[0].slowdown.p99;
  out.post_p50 = hot.resources()[0].slowdown.p50;
  out.post_p99 = hot.resources()[0].slowdown.p99;
  return out;
}

/// The analyzer's closed-form gates (mirrors test_sched_analyzer.cpp so
/// the Release bench re-checks them on every CI run too).
bool closed_form_gates(std::string& detail) {
  {
    des::Simulator sim;
    des::SchedTrace trace;
    sim.set_sched_trace(&trace);
    des::PsResource cpu(sim, "cpu", 1.0, 1.0);
    cpu.submit(0.05, [] {}, "pair");
    cpu.submit(0.05, [] {}, "pair");
    sim.run();
    des::SchedAnalyzer an(trace);
    for (const des::SchedJobRecord& j : an.jobs()) {
      if (j.slowdown != 2.0) {
        detail = "two-equal-jobs slowdown != 2.0";
        return false;
      }
    }
  }
  {
    des::Simulator sim;
    des::SchedTrace trace;
    sim.set_sched_trace(&trace);
    des::PsResource cpu(sim, "cpu", 1.0, 1.0);
    cpu.submit(10.0, [] {}, "A");
    cpu.submit(10.0, [] {}, "A");
    cpu.submit(10.0, [] {}, "B");
    sim.run();
    des::SchedAnalyzerConfig cfg;
    cfg.fairness_window_s = 1.0;
    des::SchedAnalyzer an(trace, cfg);
    const double floor = an.health().fairness_floor;
    if (floor < 0.9 - 1e-9 || floor > 0.9 + 1e-9) {
      detail = "2-vs-1 Jain floor != 0.9";
      return false;
    }
  }
  {
    des::Simulator sim;
    des::SchedTrace trace;
    sim.set_sched_trace(&trace);
    des::PsResource cpu(sim, "cpu", 1.0, 1.0);
    for (int i = 0; i < 5; ++i) {
      sim.schedule_at(0.1 * i, [&] { cpu.submit(0.01, [] {}, "fast"); });
    }
    sim.schedule_at(1.0, [&] {
      for (int i = 0; i < 9; ++i) cpu.submit(1.0, [] {}, "hog");
      cpu.submit(0.01, [] {}, "fast");
    });
    sim.run();
    des::SchedAnalyzer an(trace);
    if (an.starved().size() != 1 ||
        an.starved().front().contenders.size() != 9) {
      detail = "starvation victim/contender mismatch";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_des.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  benchutil::banner("bench_des",
                    "DES event throughput + scheduler-forensics overhead");
  // The churn load deliberately saturates the GPU, so the backlog (and with
  // it the per-event rescale cost) grows with job count — scaling is
  // super-linear, not linear. Full mode therefore stays at 3x smoke rather
  // than 10x; pushing to 200k jobs takes tens of minutes for no extra signal.
  const std::uint64_t n_events = smoke ? 200'000 : 2'000'000;
  const std::size_t churn_jobs = smoke ? 20'000 : 60'000;

  const double eps = des_events_per_sec(n_events);
  std::cout << "  event loop: " << std::fixed << std::setprecision(2)
            << eps / 1e6 << " M events/s (" << n_events << " events)\n";

  const ChurnResult base = run_churn(churn_jobs, nullptr);
  des::SchedTraceConfig trace_cfg;
  des::SchedTrace trace(trace_cfg);
  const ChurnResult traced = run_churn(churn_jobs, &trace);
  const double base_jps = static_cast<double>(base.completed) / base.wall_s;
  const double traced_jps =
      static_cast<double>(traced.completed) / traced.wall_s;
  const double overhead = traced.wall_s / base.wall_s;
  std::cout << "  ps churn:   " << std::setprecision(0) << base_jps
            << " jobs/s untraced, " << traced_jps << " jobs/s traced ("
            << std::setprecision(3) << overhead << "x wall)\n";
  std::cout << "  trace:      " << trace.total_recorded() << " records, "
            << trace.total_dropped() << " dropped\n";

  // Bitwise parity: the traced run must land on exactly the same state.
  const bool parity = base.cpu_work == traced.cpu_work &&
                      base.gpu_work == traced.gpu_work &&
                      base.end_time == traced.end_time &&
                      base.completed == traced.completed;

  const double a0 = now_wall();
  des::SchedAnalyzer analyzer(trace);
  const double analyze_wall = now_wall() - a0;
  const double aps =
      static_cast<double>(trace.total_recorded()) / analyze_wall;
  std::cout << "  analyzer:   " << std::setprecision(2) << aps / 1e6
            << " M events/s replayed (" << analyzer.health().jobs
            << " jobs, " << analyzer.starved().size() << " starved)\n";

  const GovernorStep gov = governor_step();
  std::cout << "  governor:   slowdown p99 " << std::setprecision(2)
            << gov.pre_p99 << " untrottled -> " << gov.post_p99
            << " throttled (p50 " << gov.post_p50 << ", " << gov.jobs
            << " jobs)\n";
  // Untrottled the stream is uncontended (slowdown 1 up to the last bits
  // of the event-time subtraction); throttled, the 0.55x clock must
  // leave a visible p99 step. Deterministic gate.
  const bool governor_visible =
      gov.pre_p99 < 1.0 + 1e-9 && gov.post_p99 > 1.5;

  std::string gate_detail;
  const bool closed_form = closed_form_gates(gate_detail);

  // Throughput floors far under what even a debug build measures: they
  // only trip on catastrophic regressions, never on machine noise.
  const bool fast_enough = eps > 1e5 && aps > 1e3 && base_jps > 1e2;

  benchutil::section("recap");
  benchutil::recap_line("traced run bitwise equals untraced", "yes",
                        parity ? "yes" : "DIVERGED");
  benchutil::recap_line("closed-form analyzer answers", "exact",
                        closed_form ? "exact" : gate_detail);
  benchutil::recap_line("governor throttle visible as p99 step", "yes",
                        governor_visible ? "yes" : "NO");
  benchutil::recap_line("throughput above floors", "yes",
                        fast_enough ? "yes" : "NO");

  std::ofstream json(json_path);
  json << std::setprecision(6) << std::fixed;
  json << "{\n  \"bench\": \"bench_des\",\n  \"smoke\": "
       << (smoke ? "true" : "false")
       << ",\n  \"des_events_per_sec\": " << eps
       << ",\n  \"churn_jobs\": " << churn_jobs
       << ",\n  \"untraced_jobs_per_sec\": " << base_jps
       << ",\n  \"traced_jobs_per_sec\": " << traced_jps
       << ",\n  \"trace_overhead_wall_ratio\": " << overhead
       << ",\n  \"trace_records\": " << trace.total_recorded()
       << ",\n  \"trace_dropped\": " << trace.total_dropped()
       << ",\n  \"analyzer_events_per_sec\": " << aps
       << ",\n  \"governor_pre_p99_slowdown\": " << gov.pre_p99
       << ",\n  \"governor_post_p50_slowdown\": " << gov.post_p50
       << ",\n  \"governor_post_p99_slowdown\": " << gov.post_p99
       << ",\n  \"parity\": " << (parity ? "true" : "false")
       << ",\n  \"closed_form\": " << (closed_form ? "true" : "false")
       << "\n}\n";
  std::cout << "\nJSON summary written to " << json_path << "\n";

  return (parity && closed_form && governor_visible && fast_enough) ? 0 : 1;
}
