// Thermal-throttling sweep: sustained load x device -> steady-state DVFS
// point, AI latency inflation, and projected battery drain. Each cell runs
// the same taskset twice — once without the power subsystem (the nominal
// baseline every earlier bench measured) and once with hbosim::power
// attached, a warm die, and a still ambient — and reports how much of the
// nominal performance survives sustained heat.
//
// Not a paper artefact — the paper's testbed measurements implicitly
// include whatever throttling its phones did; this bench characterizes
// the explicit battery/thermal/DVFS model the hbosim::power subsystem
// adds, and feeds the EXPERIMENTS.md throttling table.
//
// Usage: bench_power [--smoke] [--json <path>]
//   --smoke   shorter soak horizon (CI)
//   --json    write a machine-readable summary (default: BENCH_power.json)

#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hbosim/power/power_manager.hpp"
#include "hbosim/scenario/scenarios.hpp"
#include "hbosim/soc/devices_builtin.hpp"

namespace {

using namespace hbosim;

struct CellResult {
  std::string device;
  std::string load;
  double base_ms = 0.0;       ///< Mean task latency, power disabled.
  double hot_ms = 0.0;        ///< Mean task latency, sustained heat.
  double inflation = 1.0;     ///< hot / base.
  double steady_freq = 1.0;   ///< Final DVFS frequency scale.
  double max_temp_c = 0.0;
  std::uint64_t throttle_events = 0;
  double drain_pct_per_hour = 0.0;
  double mean_power_w = 0.0;
};

/// Mean measured task latency (ms) over the last half of `periods`
/// control periods at fixed full quality and the static allocation.
double sustained_latency_ms(app::MarApp& app, int periods) {
  double acc = 0.0;
  int counted = 0;
  for (int p = 0; p < periods; ++p) {
    const app::PeriodMetrics m = app.run_period(2.0);
    if (p >= periods / 2) {
      acc += m.mean_task_latency_ms();
      ++counted;
    }
  }
  return acc / counted;
}

/// One sweep point: an object set plus the AI taskset driving it.
struct LoadPoint {
  const char* name;
  scenario::ObjectSet objects;
  scenario::TaskSet tasks;
};

CellResult run_cell(const std::string& device_name, const LoadPoint& load,
                    int periods, double initial_temp_c) {
  const soc::DeviceProfile device = soc::find_builtin(device_name);

  CellResult out;
  out.device = device_name;
  out.load = load.name;

  // Baseline: the pre-power behavior (clocks pinned at nominal).
  {
    auto app = scenario::make_app(device, load.objects, load.tasks,
                                  /*seed=*/0x9AC);
    app->start();
    out.base_ms = sustained_latency_ms(*app, periods);
  }

  // Heat soak: same workload, warm die, still room-temperature ambient.
  // sigma = 0 keeps the cell bit-reproducible run to run.
  {
    app::MarAppConfig cfg;
    cfg.enable_power = true;
    cfg.power.ambient_c = 26.0;
    cfg.power.ambient_sigma_c = 0.0;
    cfg.power.initial_temp_c = initial_temp_c;
    auto app = scenario::make_app(device, load.objects, load.tasks,
                                  /*seed=*/0x9AC, cfg);
    app->start();
    out.hot_ms = sustained_latency_ms(*app, periods);
    const power::PowerStats ps = app->power()->stats();
    out.steady_freq = app->power()->freq_scale();
    out.max_temp_c = ps.max_die_temp_c;
    out.throttle_events = ps.throttle_events;
    out.drain_pct_per_hour = ps.drain_pct_per_hour;
    out.mean_power_w = ps.mean_power_w;
  }
  out.inflation = out.hot_ms / out.base_ms;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_power.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  benchutil::banner("bench_power",
                    "sustained load x device thermal-throttling sweep");
  // Full mode soaks 240 simulated seconds per cell (~2 thermal time
  // constants from a warm 55 C start), enough for every device to settle
  // into its throttled steady state. Smoke starts the die hotter — a
  // device already cooked by prior use — so the governor reaction and the
  // latency inflation show up inside a CI-sized 40-second horizon.
  const int periods = smoke ? 40 : 120;
  const double initial_temp_c = smoke ? 58.0 : 55.0;
  const std::vector<std::string> devices = {"Pixel 7", "Galaxy S22",
                                            "MidTier"};
  const std::vector<LoadPoint> loads = {
      {"light", scenario::ObjectSet::SC2, scenario::TaskSet::CF2},
      {"heavy", scenario::ObjectSet::SC1, scenario::TaskSet::CF1},
      {"soak", scenario::ObjectSet::ThermalSoak, scenario::TaskSet::CF1}};

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<CellResult> cells;
  std::cout << std::fixed
            << "  device      load         base_ms  hot_ms  inflate  freq  "
               "maxT_C  steps  drain%/h\n";
  for (const std::string& dev : devices) {
    for (const LoadPoint& load : loads) {
      const CellResult c = run_cell(dev, load, periods, initial_temp_c);
      cells.push_back(c);
      std::cout << "  " << std::left << std::setw(10) << c.device << "  "
                << std::setw(11) << c.load << std::right
                << std::setprecision(1) << std::setw(9) << c.base_ms
                << std::setw(8) << c.hot_ms << std::setprecision(2)
                << std::setw(9) << c.inflation << std::setw(6)
                << c.steady_freq << std::setprecision(1) << std::setw(8)
                << c.max_temp_c << std::setw(7) << c.throttle_events
                << std::setw(10) << c.drain_pct_per_hour << "\n";
    }
  }
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  // The throttling story: light loads keep nominal clocks, the soak load
  // must throttle on every device and measurably inflate AI latency.
  bool light_nominal = true, soak_throttles = true, soak_inflates = true;
  for (const CellResult& c : cells) {
    if (c.load == "light") light_nominal &= c.steady_freq == 1.0;
    if (c.load == "soak") {
      soak_throttles &= c.throttle_events > 0;
      soak_inflates &= c.inflation > 1.05;
    }
  }

  benchutil::section("recap");
  benchutil::recap_line("light load steady freq", "1.0 (no throttle)",
                        light_nominal ? "1.0 on all devices" : "THROTTLED");
  benchutil::recap_line("soak load throttles every device", "yes",
                        soak_throttles ? "yes" : "NO");
  benchutil::recap_line("soak AI latency inflation", "> 1.05x",
                        soak_inflates ? "yes" : "NO");

  std::ofstream json(json_path);
  json << std::setprecision(6) << std::fixed;
  json << "{\n  \"bench\": \"bench_power\",\n  \"smoke\": "
       << (smoke ? "true" : "false") << ",\n  \"periods_per_cell\": "
       << periods << ",\n  \"wall_s\": " << wall_s << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    json << "    {\"device\": \"" << c.device << "\", \"load\": \"" << c.load
         << "\", \"base_ms\": " << c.base_ms << ", \"hot_ms\": " << c.hot_ms
         << ", \"inflation\": " << c.inflation << ", \"steady_freq\": "
         << c.steady_freq << ", \"max_temp_c\": " << c.max_temp_c
         << ", \"throttle_events\": " << c.throttle_events
         << ", \"drain_pct_per_hour\": " << c.drain_pct_per_hour
         << ", \"mean_power_w\": " << c.mean_power_w << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nJSON summary written to " << json_path << "\n";

  return (light_nominal && soak_throttles && soak_inflates) ? 0 : 1;
}
