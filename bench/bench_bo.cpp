// BO surrogate bench: suggest()/tell() latency of the incremental GP path
// (cached distance matrix, rank-1 Cholesky growth, batched allocation-free
// predict) against the original full-refit path, plus the end-to-end
// effect on fleet simulation wall-clock.
//
// Not a paper artefact — this measures the optimizer engine itself. The
// acceptance bar for the incremental path is >= 5x on suggest() at n = 64
// observations with the default 3-point length-scale grid.
//
// Usage: bench_bo [--smoke] [--json <path>]
//   --smoke   smaller sizes and shorter repetitions (CI)
//   --json    write a machine-readable summary (default: BENCH_bo.json)

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hbosim/bo/optimizer.hpp"
#include "hbosim/common/mathx.hpp"
#include "hbosim/fleet/fleet_simulator.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Smooth synthetic cost over the HBO domain (same shape the optimizer
/// tests use); the bench only needs something finite and non-constant.
double synthetic_cost(std::span<const double> z) {
  const std::vector<double> target = {0.6, 0.1, 0.3, 0.7};
  const double d = hbosim::euclidean_distance(z, target);
  return d * d;
}

/// Optimizer pre-loaded with n observations and (for the incremental
/// path) warmed surrogates, ready for suggest() timing.
hbosim::bo::BayesianOptimizer warmed_optimizer(std::size_t n, bool incremental,
                                               hbosim::Rng& rng) {
  hbosim::bo::BoConfig cfg;
  cfg.incremental_gp = incremental;
  hbosim::bo::BayesianOptimizer opt(
      hbosim::bo::SimplexBoxSpace(3, 0.2, 1.0), cfg);
  for (std::size_t i = 0; i < n; ++i) {
    const auto z = opt.space().sample(rng);
    opt.tell(z, synthetic_cost(z));
  }
  (void)opt.suggest(rng);  // builds the live surrogates once
  return opt;
}

/// Mean microseconds per suggest() call, repeated until `min_seconds` of
/// work has accumulated (at least 3 calls).
double time_suggest_us(hbosim::bo::BayesianOptimizer& opt, hbosim::Rng& rng,
                       double min_seconds) {
  double sink = 0.0;
  int reps = 0;
  const auto t0 = Clock::now();
  double elapsed = 0.0;
  while (reps < 3 || elapsed < min_seconds) {
    sink += opt.suggest(rng)[0];
    ++reps;
    elapsed = seconds_since(t0);
  }
  if (sink < -1.0) std::cout << "";  // keep the work observable
  return elapsed / reps * 1e6;
}

double fleet_wall_seconds(std::size_t sessions, bool incremental) {
  hbosim::fleet::FleetSpec spec;
  spec.sessions = sessions;
  spec.duration_s = 20.0;
  spec.threads = 1;  // single worker: wall time == optimizer + sim CPU work
  spec.session.hbo.n_initial = 5;
  spec.session.hbo.n_iterations = 15;
  spec.session.hbo.bo.incremental_gp = incremental;
  const auto t0 = Clock::now();
  (void)hbosim::fleet::FleetSimulator(spec).run();
  return seconds_since(t0);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_bo.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  benchutil::banner("bench_bo",
                    "incremental GP surrogate vs full refit per suggest");
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{8, 64}
            : std::vector<std::size_t>{8, 16, 32, 64, 128};
  const double min_seconds = smoke ? 0.05 : 0.4;

  // --- suggest() latency vs database size ---------------------------------
  benchutil::section("suggest() latency (3-point length-scale grid)");
  std::cout << "        n   full_us   incr_us   speedup\n" << std::fixed;
  struct Row {
    std::size_t n;
    double full_us, incr_us;
  };
  std::vector<Row> rows;
  double speedup_at_64 = 0.0;
  for (std::size_t n : sizes) {
    hbosim::Rng rng_full(1000 + n), rng_incr(1000 + n);
    auto full = warmed_optimizer(n, false, rng_full);
    auto incr = warmed_optimizer(n, true, rng_incr);
    const double full_us = time_suggest_us(full, rng_full, min_seconds);
    const double incr_us = time_suggest_us(incr, rng_incr, min_seconds);
    rows.push_back({n, full_us, incr_us});
    const double speedup = full_us / incr_us;
    if (n == 64) speedup_at_64 = speedup;
    std::cout << "  " << std::setw(7) << n << std::setprecision(1)
              << std::setw(10) << full_us << std::setw(10) << incr_us
              << std::setprecision(2) << std::setw(10) << speedup << "\n";
  }

  // --- tell() latency (incremental bookkeeping) ---------------------------
  benchutil::section("tell() latency while growing 64 -> 128 observations");
  double tell_us = 0.0;
  {
    hbosim::Rng rng(77);
    auto opt = warmed_optimizer(64, true, rng);
    std::vector<std::vector<double>> zs;
    for (int i = 0; i < 64; ++i) zs.push_back(opt.space().sample(rng));
    const auto t0 = Clock::now();
    for (const auto& z : zs) opt.tell(z, synthetic_cost(z));
    tell_us = seconds_since(t0) / 64.0 * 1e6;
    std::cout << "  incremental tell(): " << std::setprecision(1) << tell_us
              << " us/observation (distance row + 3 bordered updates)\n";
  }

  // --- end-to-end fleet wall-clock ----------------------------------------
  const std::size_t fleet_sessions = smoke ? 8 : 48;
  benchutil::section("end-to-end fleet wall-clock (" +
                     std::to_string(fleet_sessions) + " sessions, 1 thread)");
  const double fleet_full_s = fleet_wall_seconds(fleet_sessions, false);
  const double fleet_incr_s = fleet_wall_seconds(fleet_sessions, true);
  std::cout << std::setprecision(2) << "  full refit : " << fleet_full_s
            << " s\n  incremental: " << fleet_incr_s << " s\n  speedup    : "
            << fleet_full_s / fleet_incr_s << "x\n";

  benchutil::section("recap");
  benchutil::recap_line("suggest speedup @ n=64", ">= 5x",
                        std::to_string(speedup_at_64) + "x");

  // --- machine-readable summary -------------------------------------------
  std::ofstream json(json_path);
  json << std::setprecision(6) << std::fixed;
  json << "{\n  \"bench\": \"bench_bo\",\n  \"smoke\": "
       << (smoke ? "true" : "false") << ",\n  \"suggest\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    json << "    {\"n\": " << rows[i].n << ", \"full_us\": " << rows[i].full_us
         << ", \"incremental_us\": " << rows[i].incr_us << ", \"speedup\": "
         << rows[i].full_us / rows[i].incr_us << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"tell_incremental_us\": " << tell_us
       << ",\n  \"fleet\": {\"sessions\": " << fleet_sessions
       << ", \"threads\": 1, \"full_wall_s\": " << fleet_full_s
       << ", \"incremental_wall_s\": " << fleet_incr_s << ", \"speedup\": "
       << fleet_full_s / fleet_incr_s << "}\n}\n";
  std::cout << "\nJSON summary written to " << json_path << "\n";

  return speedup_at_64 >= 5.0 || smoke ? 0 : 1;
}
