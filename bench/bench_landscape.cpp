// Model-validation harness (not a paper artefact): the deterministic cost
// landscape HBO optimizes over, measured at fixed allocations across the
// triangle-ratio axis on SC1-CF1 (Pixel 7), plus the fixed operating
// points of the paper's baselines. This is the ground truth the
// Bayesian optimizer's choices in Figs. 4-7 should be judged against:
//
//  - the landscape must have its minimum at a mid-range ratio (the paper
//    converges to x in the 0.5-0.85 band across runs: Table III reports
//    0.72, Fig. 7 runs end between 0.52 and 1.0);
//  - at equal ratio, HBO's allocation must beat the static allocation;
//  - full-quality rendering (x = 1) must be expensive for every strategy.

#include <iostream>

#include "bench_util.hpp"
#include "hbosim/baselines/static_alloc.hpp"
#include "hbosim/common/table.hpp"
#include "hbosim/core/controller.hpp"
#include "hbosim/core/triangle_distribution.hpp"
#include "hbosim/scenario/scenarios.hpp"
#include "hbosim/soc/devices_builtin.hpp"

using namespace hbosim;
using soc::Delegate;

namespace {

app::PeriodMetrics measure(const std::vector<Delegate>& alloc, double x) {
  auto a = scenario::make_app(soc::pixel7(), scenario::ObjectSet::SC1,
                              scenario::TaskSet::CF1);
  a->start();
  a->apply_allocation(alloc);
  const auto objs = core::HboController::object_states(*a);
  a->apply_object_ratios(core::distribute_waterfill(objs, x));
  a->run_period(2.0);  // settle
  return a->run_period(8.0);
}

}  // namespace

int main() {
  benchutil::banner("Cost landscape",
                    "deterministic ground truth under HBO's cost (SC1-CF1)");

  const Delegate C = Delegate::Cpu;
  const Delegate G = Delegate::Gpu;
  const Delegate N = Delegate::Nnapi;
  // Task order: mnist, mobnetD1, mmdata1, mmdata2, mobnetC1, efflite1.
  const std::vector<Delegate> hbo_alloc = {C, N, C, C, N, N};   // Table IV HBO
  const std::vector<Delegate> stat_alloc = {G, N, G, G, N, N};  // SMQ/SML
  const std::vector<Delegate> alln_alloc = {N, N, N, N, N, N};

  benchutil::section("HBO allocation across the ratio axis");
  TextTable t(std::vector<std::string>{"x", "Q", "eps", "mean ms",
                                       "cost (w=2.5)"});
  double best_cost = 1e9;
  double best_x = 0.0;
  for (double x : {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    const app::PeriodMetrics m = measure(hbo_alloc, x);
    const double cost = -(m.average_quality - 2.5 * m.latency_ratio);
    if (cost < best_cost) {
      best_cost = cost;
      best_x = x;
    }
    t.add_row({TextTable::num(x, 1), TextTable::num(m.average_quality, 3),
               TextTable::num(m.latency_ratio, 3),
               TextTable::num(m.mean_task_latency_ms(), 1),
               TextTable::num(cost, 3)});
  }
  t.print(std::cout);

  benchutil::section("Baseline operating points");
  TextTable b(std::vector<std::string>{"config", "x", "Q", "eps", "mean ms"});
  auto row = [&](const char* name, const std::vector<Delegate>& alloc,
                 double x) {
    const app::PeriodMetrics m = measure(alloc, x);
    b.add_row({name, TextTable::num(x, 2),
               TextTable::num(m.average_quality, 3),
               TextTable::num(m.latency_ratio, 3),
               TextTable::num(m.mean_task_latency_ms(), 1)});
  };
  row("static (SMQ) @0.72", stat_alloc, 0.72);
  row("static (SML) @0.20", stat_alloc, 0.20);
  row("HBO alloc   @1.00", hbo_alloc, 1.0);
  row("AllN        @1.00", alln_alloc, 1.0);
  b.print(std::cout);

  benchutil::section("Shape checks");
  benchutil::recap_line("landscape minimum x", "0.5-0.85 band",
                        TextTable::num(best_x, 2));
  std::cout << "  At equal x the HBO allocation must dominate the static\n"
               "  one, and x = 1 must be the most expensive point on the\n"
               "  HBO-allocation curve.\n";
  return 0;
}
