// Edge-service saturation sweep: one session's view of the shared edge
// box as the tenant count grows, for each admission-queue policy. Reports
// response-time percentiles (p50/p95/p99), the server-side rejection
// rate, the client-side fallback rate, and the queue depth p95 — the
// contention story EXPERIMENTS.md quotes.
//
// Not a paper artefact — the paper measures a single uncontended edge
// deployment (Fig. 3); this bench characterizes the multi-tenant regime
// the hbosim::edgesvc subsystem adds.
//
// Usage: bench_edgesvc [--smoke] [--json <path>]
//   --smoke   fewer tenants and requests (CI)
//   --json    write a machine-readable summary (default: BENCH_edgesvc.json)

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hbosim/common/stats.hpp"
#include "hbosim/edgesvc/broker.hpp"

namespace {

using namespace hbosim;
using namespace hbosim::edgesvc;

struct CellResult {
  std::size_t tenants = 0;
  std::string policy;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  double rejection_rate = 0.0;
  double fallback_rate = 0.0;
  double queue_depth_p95 = 0.0;
  std::size_t requests = 0;
};

/// Drive one mirror client through a fixed request schedule: a MAR-like
/// mix of mesh-decimation downloads (a 200k-triangle object at cycling
/// ratios) and small remote-BO exchanges, one request every 250 ms.
CellResult run_cell(std::size_t tenants, QueuePolicy policy,
                    std::size_t requests) {
  EdgeServiceSpec spec = edge_service_preset("wifi");
  spec.server.policy = policy;
  // The preset's background tenants are deliberately light (fleet
  // realism); the sweep wants to cross the server's saturation point
  // inside the swept tenant range, so each background tenant here is a
  // heavy user. Offered server load reaches ~1.2 at 128 tenants.
  spec.background.per_tenant_rps = 3.0;
  spec.background.mean_units = 0.5;
  EdgeBroker broker(spec, tenants);
  auto client = broker.make_client(/*tenant_id=*/0, /*session_seed=*/0xB0B0);

  const double ratios[] = {0.3, 0.6, 1.0, 0.45};
  std::vector<double> elapsed_ms;
  elapsed_ms.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    const double now = 0.25 * static_cast<double>(i + 1);
    EdgeResponse resp;
    if (i % 5 == 4) {
      resp = client->perform(RequestClass::RemoteBo, 1.0, 88, now);
    } else {
      const double ratio = ratios[i % 4];
      const double units = 0.2;  // 200k-triangle source mesh
      const auto payload =
          static_cast<std::uint64_t>(ratio * 200'000.0 * 36.0);
      resp = client->perform(RequestClass::Decimation, units, payload, now);
    }
    // Failed requests cost their full retry budget before the fallback;
    // that elapsed time is part of what the user experiences.
    elapsed_ms.push_back(resp.elapsed_s * 1e3);
  }
  std::sort(elapsed_ms.begin(), elapsed_ms.end());

  CellResult out;
  out.tenants = tenants;
  out.policy = queue_policy_name(policy);
  out.p50_ms = percentile(elapsed_ms, 50.0);
  out.p95_ms = percentile(elapsed_ms, 95.0);
  out.p99_ms = percentile(elapsed_ms, 99.0);
  out.rejection_rate = client->server().stats().rejection_rate();
  out.fallback_rate = client->stats().fallback_rate();
  out.queue_depth_p95 = client->server().stats().queue_depth_p95();
  out.requests = requests;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_edgesvc.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  benchutil::banner("bench_edgesvc",
                    "multi-tenant edge-server saturation sweep");
  const std::vector<std::size_t> tenant_counts =
      smoke ? std::vector<std::size_t>{1, 16, 64}
            : std::vector<std::size_t>{1, 8, 16, 32, 64, 128};
  const std::size_t requests = smoke ? 160 : 400;
  const QueuePolicy policies[] = {QueuePolicy::Fifo,
                                  QueuePolicy::DeadlinePriority,
                                  QueuePolicy::TenantFairShare};

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<CellResult> cells;
  std::cout << std::fixed
            << "  tenants policy      p50_ms   p95_ms   p99_ms  reject  "
               "fallback  qdepth95\n";
  for (std::size_t tenants : tenant_counts) {
    for (QueuePolicy policy : policies) {
      const CellResult c = run_cell(tenants, policy, requests);
      cells.push_back(c);
      std::cout << "  " << std::setw(7) << c.tenants << " " << std::setw(8)
                << c.policy << std::setprecision(1) << std::setw(10)
                << c.p50_ms << std::setw(9) << c.p95_ms << std::setw(9)
                << c.p99_ms << std::setprecision(3) << std::setw(8)
                << c.rejection_rate << std::setw(10) << c.fallback_rate
                << std::setprecision(1) << std::setw(10) << c.queue_depth_p95
                << "\n";
    }
  }
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  // The contention story in one line each: uncontended stays flat,
  // saturation shows up in the tail and the drop counters.
  benchutil::section("recap");
  const CellResult& lone = cells.front();
  const CellResult& packed = cells.back();
  benchutil::recap_line("p50 @ 1 tenant (fifo)", "flat",
                        std::to_string(lone.p50_ms) + " ms");
  benchutil::recap_line(
      "p50 @ " + std::to_string(packed.tenants) + " tenants (fair)",
      "inflated", std::to_string(packed.p50_ms) + " ms");
  benchutil::recap_line("rejection rate at saturation", "> 0",
                        std::to_string(packed.rejection_rate));

  std::ofstream json(json_path);
  json << std::setprecision(6) << std::fixed;
  json << "{\n  \"bench\": \"bench_edgesvc\",\n  \"smoke\": "
       << (smoke ? "true" : "false") << ",\n  \"requests_per_cell\": "
       << requests << ",\n  \"wall_s\": " << wall_s << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    json << "    {\"tenants\": " << c.tenants << ", \"policy\": \""
         << c.policy << "\", \"p50_ms\": " << c.p50_ms << ", \"p95_ms\": "
         << c.p95_ms << ", \"p99_ms\": " << c.p99_ms
         << ", \"rejection_rate\": " << c.rejection_rate
         << ", \"fallback_rate\": " << c.fallback_rate
         << ", \"queue_depth_p95\": " << c.queue_depth_p95 << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nJSON summary written to " << json_path << "\n";

  // Sanity gate: contention must actually show up in the sweep.
  const bool saturated =
      packed.p50_ms > lone.p50_ms && packed.rejection_rate > 0.0;
  return saturated || smoke ? 0 : 1;
}
