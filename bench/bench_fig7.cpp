// Reproduces Fig. 7 — HBO convergence robustness: six independent runs
// (different random initializations) of the same activation for SC1-CF2
// and SC2-CF2 on the Pixel 7. The paper's observation: individual runs may
// end at different allocations/ratios, but all converge to a similar-cost
// solution, i.e. the spread of final best costs is small relative to the
// initial spread.

#include <iostream>

#include "bench_util.hpp"
#include "hbosim/common/mathx.hpp"
#include "hbosim/common/table.hpp"
#include "hbosim/core/controller.hpp"
#include "hbosim/scenario/scenarios.hpp"
#include "hbosim/soc/devices_builtin.hpp"

using namespace hbosim;

namespace {

void run_panel(const soc::DeviceProfile& device, scenario::ObjectSet objects,
               scenario::TaskSet tasks) {
  const std::string name = std::string(scenario::object_set_name(objects)) +
                           "-" + scenario::task_set_name(tasks);
  benchutil::section("Fig. 7 panel: " + name + " (6 runs)");

  constexpr int kRuns = 6;
  std::vector<core::ActivationResult> results;
  for (int run = 0; run < kRuns; ++run) {
    auto app = scenario::make_app(device, objects, tasks,
                                  /*seed=*/0x5EEDu + run);
    core::HboConfig cfg;
    cfg.seed = 1000 + 77 * run;  // different BO initialization per run
    core::HboController hbo(*app, cfg);
    results.push_back(hbo.run_activation());
  }

  // Best-cost trajectories.
  std::vector<std::string> header = {"iter"};
  for (int run = 0; run < kRuns; ++run)
    header.push_back("run" + std::to_string(run + 1));
  TextTable table(header);
  const std::size_t iters = results[0].history.size();
  for (std::size_t i = 0; i < iters; ++i) {
    std::vector<std::string> row = {std::to_string(i + 1)};
    for (const auto& r : results)
      row.push_back(TextTable::num(r.best_cost_curve()[i], 3));
    table.add_row(row);
  }
  table.print(std::cout);

  // Final configurations + convergence summary.
  TextTable fin(std::vector<std::string>{"run", "final best cost",
                                         "usage c", "ratio x"});
  std::vector<double> first_costs;
  std::vector<double> final_costs;
  for (int run = 0; run < kRuns; ++run) {
    const auto& r = results[run];
    first_costs.push_back(r.best_cost_curve().front());
    final_costs.push_back(r.best_cost_curve().back());
    std::string usage = "[";
    for (std::size_t i = 0; i < r.best().usage.size(); ++i)
      usage += (i ? ", " : "") + TextTable::num(r.best().usage[i], 2);
    usage += "]";
    fin.add_row({std::to_string(run + 1), TextTable::num(r.best().cost, 3),
                 usage, TextTable::num(r.best().triangle_ratio, 2)});
  }
  fin.print(std::cout);

  benchutil::recap_line(
      "final best-cost spread vs initial spread (robustness)",
      "final << initial",
      TextTable::num(stdev(final_costs), 3) + " vs " +
          TextTable::num(stdev(first_costs), 3));
}

}  // namespace

int main() {
  benchutil::banner("Fig. 7",
                    "convergence robustness across 6 runs (Pixel 7)");
  const soc::DeviceProfile device = soc::pixel7();
  run_panel(device, scenario::ObjectSet::SC1, scenario::TaskSet::CF2);
  run_panel(device, scenario::ObjectSet::SC2, scenario::TaskSet::CF2);
  return 0;
}
