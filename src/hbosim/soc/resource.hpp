#pragma once

#include <string>

/// \file resource.hpp
/// Physical compute units of a mobile SoC and the coarse-grained allocation
/// choices (delegates) HBO schedules over.
///
/// The distinction mirrors the paper: an AI task is allocated to a
/// *delegate* (CPU inference, the GPU delegate, or the NNAPI delegate),
/// while execution consumes one or more *physical units* (CPU cluster, GPU,
/// NPU). The NNAPI delegate in particular splits a model's operations
/// across the NPU and the GPU (paper footnotes 1-2), which is why heavy
/// rendering degrades NNAPI latency.

namespace hbosim::soc {

/// Physical compute unit kinds.
enum class Unit { Cpu = 0, Gpu = 1, Npu = 2 };
inline constexpr int kNumUnits = 3;

const char* unit_name(Unit u);

/// Coarse-grained allocation choices (the paper's N resources).
enum class Delegate { Cpu = 0, Gpu = 1, Nnapi = 2 };
inline constexpr int kNumDelegates = 3;

/// Full name, e.g. "NNAPI".
const char* delegate_name(Delegate d);

/// One-letter code used in the paper's Fig. 2 annotations (C/G/N).
char delegate_code(Delegate d);

/// All delegates in index order {Cpu, Gpu, Nnapi}.
Delegate delegate_from_index(int i);

}  // namespace hbosim::soc
