#include "hbosim/soc/devices_builtin.hpp"

#include "hbosim/common/error.hpp"

namespace hbosim::soc {

namespace {

/// Shorthand for a Table I row. `cpu_threads` reflects how many big cores
/// the model's TFLite CPU path keeps busy (heavy segmentation models are
/// aggressively multi-threaded).
ModelLatency lat(std::optional<double> gpu, std::optional<double> nnapi,
                 double cpu, double npu_fraction, double cpu_threads) {
  ModelLatency m;
  m.gpu_ms = gpu;
  m.nnapi_ms = nnapi;
  m.cpu_ms = cpu;
  m.npu_fraction = npu_fraction;
  m.cpu_threads = cpu_threads;
  return m;
}

constexpr auto NA = std::nullopt;

}  // namespace

DeviceProfile pixel7() {
  RenderLoadModel render;
  render.tri_scale = 8.8e5;       // SC1 at full quality saturates the GPU
  render.exponent = 7.0;
  render.max_gpu_load = 0.72;
  render.cpu_cores_per_object = 0.04;
  render.max_cpu_load_cores = 1.2;

  DeviceProfile d("Pixel 7", /*cpu_cores=*/6.0, render,
                  /*gpu_comm_ms=*/2.0, /*nnapi_comm_ms=*/3.0);

  // Table I, Google Pixel 7 columns (GPU / NNAPI / CPU, milliseconds).
  // npu_fraction: share of NNAPI work on the NPU; models whose NNAPI
  // latency beats GPU/CPU by a wide margin are NPU-friendly (high
  // fraction), models that profile *worse* on NNAPI spend most of their
  // operators on the GPU fallback path (low fraction).
  d.set_model("deconv-munet", lat(17.9, NA, 65.9, 0.6, 3.0));
  d.set_model("deeplabv3", lat(136.6, NA, 110.1, 0.7, 3.2));
  d.set_model("efficientdet-lite", lat(109.8, NA, 97.3, 0.7, 3.0));
  d.set_model("mobilenetDetv1", lat(56.5, 18.1, 48.9, 0.60, 1.6));
  d.set_model("efficientclass-lite0", lat(43.37, 18.3, 41.5, 0.60, 1.2));
  d.set_model("inception-v1-q", lat(60.8, 8.7, 63.2, 0.80, 1.2));
  d.set_model("mobilenet-v1", lat(37.1, 10.2, 40.5, 0.80, 1.2));
  d.set_model("model-metadata", lat(24.6, 40.7, 25.5, 0.55, 1.0));
  // Synthetic tiny digit classifier (Table II tasksets; see header note).
  d.set_model("mnist", lat(6.0, 7.0, 7.5, 0.70, 0.5));
  return d;
}

DeviceProfile galaxy_s22() {
  RenderLoadModel render;
  render.tri_scale = 9.3e5;
  render.exponent = 7.0;
  render.max_gpu_load = 0.72;
  render.cpu_cores_per_object = 0.035;
  render.max_cpu_load_cores = 1.2;

  DeviceProfile d("Galaxy S22", /*cpu_cores=*/6.0, render,
                  /*gpu_comm_ms=*/2.0, /*nnapi_comm_ms=*/3.0);

  // Table I, Galaxy S22 columns (GPU / NNAPI / CPU, milliseconds).
  d.set_model("deconv-munet", lat(18.0, 33.0, 58.0, 0.50, 3.0));
  d.set_model("deeplabv3", lat(45.0, 27.0, 46.0, 0.60, 3.2));
  d.set_model("efficientdet-lite", lat(72.0, NA, 68.0, 0.7, 3.0));
  d.set_model("mobilenetDetv1", lat(38.0, 13.0, 38.0, 0.60, 1.6));
  d.set_model("efficientclass-lite0", lat(28.0, 10.0, 29.0, 0.60, 1.2));
  d.set_model("inception-v1-q", lat(28.0, 8.0, 36.0, 0.80, 1.2));
  d.set_model("mobilenet-v1", lat(26.0, 9.5, 28.0, 0.80, 1.2));
  d.set_model("model-metadata", lat(12.7, 18.0, 14.0, 0.55, 1.0));
  d.set_model("mnist", lat(5.0, 6.0, 6.5, 0.70, 0.5));
  return d;
}

DeviceProfile synthetic_midtier() {
  RenderLoadModel render;
  render.tri_scale = 4.2e5;  // weaker GPU saturates earlier
  render.exponent = 3.0;
  render.max_gpu_load = 0.72;
  render.cpu_cores_per_object = 0.06;
  render.max_cpu_load_cores = 1.5;

  DeviceProfile d("MidTier", /*cpu_cores=*/4.0, render,
                  /*gpu_comm_ms=*/3.0, /*nnapi_comm_ms=*/4.5);

  // Scaled ~1.6x from the Pixel 7 with a weaker NPU (lower NNAPI gains).
  d.set_model("deconv-munet", lat(29.0, NA, 105.0, 0.6, 3.0));
  d.set_model("deeplabv3", lat(210.0, NA, 176.0, 0.7, 3.2));
  d.set_model("efficientdet-lite", lat(175.0, NA, 155.0, 0.7, 3.0));
  d.set_model("mobilenetDetv1", lat(90.0, 36.0, 78.0, 0.70, 1.6));
  d.set_model("efficientclass-lite0", lat(70.0, 35.0, 66.0, 0.70, 1.2));
  d.set_model("inception-v1-q", lat(97.0, 19.0, 101.0, 0.80, 1.2));
  d.set_model("mobilenet-v1", lat(59.0, 21.0, 65.0, 0.80, 1.2));
  d.set_model("model-metadata", lat(39.0, 64.0, 41.0, 0.45, 1.0));
  d.set_model("mnist", lat(9.5, 11.0, 12.0, 0.70, 0.5));
  return d;
}

std::vector<DeviceProfile> builtin_devices() {
  std::vector<DeviceProfile> out;
  out.push_back(galaxy_s22());
  out.push_back(pixel7());
  out.push_back(synthetic_midtier());
  return out;
}

DeviceProfile find_builtin(const std::string& name) {
  std::string known;
  for (DeviceProfile& d : builtin_devices()) {
    if (d.name() == name) return std::move(d);
    if (!known.empty()) known += ", ";
    known += d.name();
  }
  throw Error("unknown built-in device '" + name + "' (have: " + known + ")");
}

}  // namespace hbosim::soc
