#include "hbosim/soc/resource.hpp"

#include "hbosim/common/error.hpp"

namespace hbosim::soc {

const char* unit_name(Unit u) {
  switch (u) {
    case Unit::Cpu: return "CPU";
    case Unit::Gpu: return "GPU";
    case Unit::Npu: return "NPU";
  }
  return "?";
}

const char* delegate_name(Delegate d) {
  switch (d) {
    case Delegate::Cpu: return "CPU";
    case Delegate::Gpu: return "GPU";
    case Delegate::Nnapi: return "NNAPI";
  }
  return "?";
}

char delegate_code(Delegate d) {
  switch (d) {
    case Delegate::Cpu: return 'C';
    case Delegate::Gpu: return 'G';
    case Delegate::Nnapi: return 'N';
  }
  return '?';
}

Delegate delegate_from_index(int i) {
  HB_REQUIRE(i >= 0 && i < kNumDelegates, "delegate index out of range");
  return static_cast<Delegate>(i);
}

}  // namespace hbosim::soc
