#pragma once

#include "hbosim/soc/device.hpp"

/// \file devices_builtin.hpp
/// The two phones used in the paper's evaluation, with model isolation
/// latencies transcribed from Table I, plus a synthetic mid-tier device for
/// portability experiments. The paper's Table I does not include `mnist`
/// (it appears in the Table II tasksets); its profile is synthesized as a
/// tiny classifier "with similar latencies across all resources", which is
/// how Section V-B describes it.

namespace hbosim::soc {

/// Google Pixel 7 (Tensor G2): deconv-munet, deeplabv3 and
/// efficientdet-lite have no NNAPI path ("NA" in Table I).
DeviceProfile pixel7();

/// Samsung Galaxy S22: all Table I models except efficientdet-lite have an
/// NNAPI path.
DeviceProfile galaxy_s22();

/// A synthetic mid-tier SoC: slower accelerators, fewer big cores. Not in
/// the paper; used by the device-porting example and robustness tests.
DeviceProfile synthetic_midtier();

/// All built-in devices, in a stable order.
std::vector<DeviceProfile> builtin_devices();

/// Look up a built-in device by its profile name (e.g. "Pixel 7"); throws
/// hbosim::Error naming the known devices on a miss. Fleet specs reference
/// devices by name so they stay plain data.
DeviceProfile find_builtin(const std::string& name);

}  // namespace hbosim::soc
