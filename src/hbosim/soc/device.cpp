#include "hbosim/soc/device.hpp"

#include <algorithm>
#include <cmath>

#include "hbosim/common/error.hpp"

namespace hbosim::soc {

double RenderLoadModel::gpu_load(double culled_triangles) const {
  HB_REQUIRE(culled_triangles >= 0.0, "triangle count must be non-negative");
  const double x = culled_triangles / tri_scale;
  return max_gpu_load * std::min(std::pow(x, exponent), 1.0);
}

double RenderLoadModel::cpu_load_cores(std::size_t objects,
                                       double culled_triangles) const {
  const double cores = cpu_cores_per_object * static_cast<double>(objects) +
                       cpu_cores_per_mtri * culled_triangles / 1e6;
  return std::min(cores, max_cpu_load_cores);
}

DeviceProfile::DeviceProfile(std::string name, double cpu_cores,
                             RenderLoadModel render, double gpu_comm_ms,
                             double nnapi_comm_ms)
    : name_(std::move(name)),
      cpu_cores_(cpu_cores),
      render_(render),
      gpu_comm_ms_(gpu_comm_ms),
      nnapi_comm_ms_(nnapi_comm_ms) {
  HB_REQUIRE(cpu_cores_ > 0.0, "device needs at least one CPU core");
  HB_REQUIRE(gpu_comm_ms_ >= 0.0 && nnapi_comm_ms_ >= 0.0,
             "communication overheads must be non-negative");
}

double DeviceProfile::comm_ms(Delegate d) const {
  switch (d) {
    case Delegate::Cpu: return 0.0;
    case Delegate::Gpu: return gpu_comm_ms_;
    case Delegate::Nnapi: return nnapi_comm_ms_;
  }
  return 0.0;
}

void DeviceProfile::set_model(const std::string& model, ModelLatency lat) {
  HB_REQUIRE(lat.cpu_ms > 0.0, "CPU latency must be positive (always runnable)");
  HB_REQUIRE(lat.npu_fraction >= 0.0 && lat.npu_fraction <= 1.0,
             "npu_fraction must be in [0,1]");
  if (lat.gpu_ms)
    HB_REQUIRE(*lat.gpu_ms > gpu_comm_ms_,
               "GPU latency must exceed the dispatch overhead");
  if (lat.nnapi_ms)
    HB_REQUIRE(*lat.nnapi_ms > nnapi_comm_ms_,
               "NNAPI latency must exceed the dispatch overhead");
  models_[model] = lat;
}

bool DeviceProfile::has_model(const std::string& model) const {
  return models_.count(model) > 0;
}

const ModelLatency& DeviceProfile::model(const std::string& model) const {
  auto it = models_.find(model);
  HB_REQUIRE(it != models_.end(),
             "model not profiled on " + name_ + ": " + model);
  return it->second;
}

std::vector<std::string> DeviceProfile::model_names() const {
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, lat] : models_) out.push_back(name);
  return out;
}

bool DeviceProfile::supports(const std::string& model, Delegate d) const {
  const ModelLatency& lat = this->model(model);
  switch (d) {
    case Delegate::Cpu: return true;
    case Delegate::Gpu: return lat.gpu_ms.has_value();
    case Delegate::Nnapi: return lat.nnapi_ms.has_value();
  }
  return false;
}

double DeviceProfile::isolation_ms(const std::string& model, Delegate d) const {
  const ModelLatency& lat = this->model(model);
  switch (d) {
    case Delegate::Cpu:
      return lat.cpu_ms;
    case Delegate::Gpu:
      HB_REQUIRE(lat.gpu_ms.has_value(), model + " has no GPU delegate on " + name_);
      return *lat.gpu_ms;
    case Delegate::Nnapi:
      HB_REQUIRE(lat.nnapi_ms.has_value(),
                 model + " has no NNAPI delegate on " + name_);
      return *lat.nnapi_ms;
  }
  HB_ASSERT(false, "unreachable delegate");
  return 0.0;
}

Delegate DeviceProfile::best_delegate(const std::string& model) const {
  Delegate best = Delegate::Cpu;
  double best_ms = isolation_ms(model, Delegate::Cpu);
  for (Delegate d : {Delegate::Gpu, Delegate::Nnapi}) {
    if (!supports(model, d)) continue;
    const double v = isolation_ms(model, d);
    if (v < best_ms) {
      best_ms = v;
      best = d;
    }
  }
  return best;
}

SocRuntime::SocRuntime(des::Simulator& sim, const DeviceProfile& profile)
    : profile_(profile),
      cpu_(std::make_unique<des::PsResource>(sim, profile.name() + "/cpu",
                                             profile.cpu_cores(),
                                             /*max_rate_per_job=*/1.0)),
      gpu_(std::make_unique<des::PsResource>(sim, profile.name() + "/gpu", 1.0)),
      npu_(std::make_unique<des::PsResource>(sim, profile.name() + "/npu", 1.0)) {}

des::PsResource& SocRuntime::unit(Unit u) {
  switch (u) {
    case Unit::Cpu: return *cpu_;
    case Unit::Gpu: return *gpu_;
    case Unit::Npu: return *npu_;
  }
  HB_ASSERT(false, "unreachable unit");
  return *cpu_;
}

const des::PsResource& SocRuntime::unit(Unit u) const {
  return const_cast<SocRuntime*>(this)->unit(u);
}

void SocRuntime::set_render_load(double culled_triangles,
                                 std::size_t object_count) {
  gpu_->set_background_utilization(profile_.render().gpu_load(culled_triangles));
  const double cores =
      profile_.render().cpu_load_cores(object_count, culled_triangles);
  cpu_->set_background_utilization(
      std::min(cores / profile_.cpu_cores(), 1.0));
}

}  // namespace hbosim::soc
