#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hbosim/des/ps_resource.hpp"
#include "hbosim/des/simulator.hpp"
#include "hbosim/soc/resource.hpp"

/// \file device.hpp
/// Device profiles and the runtime instantiation of a SoC on the simulator.
///
/// A DeviceProfile is pure data: per-model isolation latencies for each
/// delegate (seeded from the paper's Table I), the NNAPI operator split,
/// inter-processor communication overheads, CPU cluster size, and the
/// render-load model that couples triangle count to GPU availability.
/// A SocRuntime turns a profile into live processor-sharing resources on a
/// Simulator.

namespace hbosim::soc {

/// Isolation latency profile of one AI model on one device (milliseconds,
/// as reported in the paper's Table I). A missing value means the model is
/// incompatible with that delegate ("NA" in the paper).
struct ModelLatency {
  std::optional<double> gpu_ms;    ///< GPU delegate end-to-end latency.
  std::optional<double> nnapi_ms;  ///< NNAPI delegate end-to-end latency.
  double cpu_ms = 0.0;             ///< CPU (XNNPack-style) latency.

  /// Fraction of NNAPI compute placed on the NPU; the rest runs as GPU
  /// operations (the paper's footnote 2: NPU-unsupported operators fall
  /// back to the GPU, raising GPU demand).
  double npu_fraction = 0.8;

  /// CPU cores a CPU-delegate inference of this model occupies (TFLite
  /// thread pool size scaled by per-thread efficiency); heavy
  /// segmentation models keep several big cores busy.
  double cpu_threads = 1.0;
};

/// Couples the AR render pipeline to compute availability.
///
/// GPU render utilization follows a convex power law,
///   u = max_gpu_load * min(1, (tris / tri_scale)^exponent),
/// capturing how a mobile GPU absorbs geometry cheaply until the vertex/
/// raster pipeline approaches saturation and frame cost explodes. The
/// convexity is what makes moderate decimation (x ~ 0.7) recover most of
/// the AI latency while deeper cuts mostly burn quality — the knee the
/// paper's HBO converges to.
struct RenderLoadModel {
  /// Culled-triangle count at which the render pipeline saturates.
  double tri_scale = 8.5e5;
  /// Convexity of the load curve.
  double exponent = 3.0;
  /// Utilization ceiling the render pipeline may consume on the GPU.
  double max_gpu_load = 0.82;
  /// CPU-cluster cores consumed per on-screen object (scene-graph
  /// traversal) and per million culled triangles (driver submission),
  /// capped at max_cpu_load cores.
  double cpu_cores_per_object = 0.03;
  double cpu_cores_per_mtri = 0.35;
  double max_cpu_load_cores = 2.0;

  /// GPU render utilization for a culled on-screen triangle count.
  double gpu_load(double culled_triangles) const;
  /// CPU cores consumed by rendering the scene.
  double cpu_load_cores(std::size_t objects, double culled_triangles) const;
};

/// Static description of a device (SoC + profiled model latencies).
class DeviceProfile {
 public:
  DeviceProfile(std::string name, double cpu_cores, RenderLoadModel render,
                double gpu_comm_ms, double nnapi_comm_ms);

  const std::string& name() const { return name_; }
  double cpu_cores() const { return cpu_cores_; }
  const RenderLoadModel& render() const { return render_; }

  /// Fixed per-inference dispatch/communication overhead for delegates
  /// (buffer upload, driver marshaling). CPU inference has none.
  double comm_ms(Delegate d) const;

  /// Register a model's latency profile. Replaces any previous entry.
  void set_model(const std::string& model, ModelLatency lat);

  bool has_model(const std::string& model) const;
  const ModelLatency& model(const std::string& model) const;
  std::vector<std::string> model_names() const;

  /// Whether `model` can run via delegate `d` on this device.
  bool supports(const std::string& model, Delegate d) const;

  /// Isolation (Table I) latency in ms; throws if unsupported.
  double isolation_ms(const std::string& model, Delegate d) const;

  /// Delegate with the lowest isolation latency for `model`.
  Delegate best_delegate(const std::string& model) const;

 private:
  std::string name_;
  double cpu_cores_;
  RenderLoadModel render_;
  double gpu_comm_ms_;
  double nnapi_comm_ms_;
  std::map<std::string, ModelLatency> models_;
};

/// Live SoC: one processor-sharing resource per physical unit.
class SocRuntime {
 public:
  SocRuntime(des::Simulator& sim, const DeviceProfile& profile);

  des::PsResource& unit(Unit u);
  const des::PsResource& unit(Unit u) const;
  des::PsResource& cpu() { return unit(Unit::Cpu); }
  des::PsResource& gpu() { return unit(Unit::Gpu); }
  des::PsResource& npu() { return unit(Unit::Npu); }

  const DeviceProfile& profile() const { return profile_; }

  /// Apply the render pipeline's load for the given scene state.
  void set_render_load(double culled_triangles, std::size_t object_count);

 private:
  const DeviceProfile& profile_;
  std::unique_ptr<des::PsResource> cpu_;
  std::unique_ptr<des::PsResource> gpu_;
  std::unique_ptr<des::PsResource> npu_;
};

}  // namespace hbosim::soc
