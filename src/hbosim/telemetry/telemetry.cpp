#include "hbosim/telemetry/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <unordered_set>

#include "hbosim/common/error.hpp"
#include "hbosim/common/logging.hpp"
#include "hbosim/telemetry/report.hpp"

namespace hbosim::telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
std::atomic<std::int64_t> g_session_t0_ns{0};
std::atomic<std::uint64_t> g_epoch{0};

std::int64_t now_ns() {
  const auto since_epoch =
      std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(since_epoch)
             .count() -
         g_session_t0_ns.load(std::memory_order_relaxed);
}
}  // namespace detail

namespace {

std::atomic<TelemetrySession*> g_session{nullptr};

thread_local ThreadRing* t_ring = nullptr;
thread_local std::uint64_t t_ring_epoch = 0;
thread_local std::uint64_t t_track = 0;

/// Process-lifetime interned strings; node-based set keeps c_str() stable
/// across rehashes. Intended for bounded name sets, so never freed.
std::mutex& intern_mutex() {
  static std::mutex mu;
  return mu;
}
std::unordered_set<std::string>& intern_table() {
  static std::unordered_set<std::string> table;
  return table;
}

/// Process-lifetime ring storage. A ScopeTimer (or a thread's cached TLS
/// ring pointer) can outlive the session that created its ring, so rings
/// are intentionally never freed: a late write lands in a stale ring that
/// no exporter reads instead of freed memory. Heap-allocated so it also
/// survives static destruction order. Growth is bounded by
/// sessions-started x threads-registered.
std::mutex& ring_pool_mutex() {
  static std::mutex mu;
  return mu;
}
std::vector<std::unique_ptr<ThreadRing>>& ring_pool() {
  static auto* pool = new std::vector<std::unique_ptr<ThreadRing>>();
  return *pool;
}

}  // namespace

ThreadRing::ThreadRing(std::size_t capacity_pow2, std::string name, int tid)
    : slots_(capacity_pow2), mask_(capacity_pow2 - 1), name_(std::move(name)),
      tid_(tid) {
  HB_ASSERT(capacity_pow2 >= 2 && (capacity_pow2 & mask_) == 0,
            "ring capacity must be a power of two");
}

std::vector<TraceEvent> ThreadRing::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t n = std::min<std::uint64_t>(head, slots_.size());
  std::vector<TraceEvent> out;
  out.reserve(n);
  for (std::uint64_t i = head - n; i < head; ++i)
    out.push_back(slots_[i & mask_]);
  return out;
}

const char* intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(intern_mutex());
  return intern_table().emplace(s).first->c_str();
}

TelemetrySession* TelemetrySession::active() {
  return g_session.load(std::memory_order_relaxed);
}

TelemetrySession::TelemetrySession(TelemetryConfig cfg) : cfg_(cfg) {
  HB_REQUIRE(g_session.load() == nullptr,
             "a TelemetrySession is already active");
  HB_REQUIRE(cfg_.events_per_thread >= 2,
             "events_per_thread must be at least 2");
  cfg_.events_per_thread = std::bit_ceil(cfg_.events_per_thread);

  epoch_ = detail::g_epoch.fetch_add(1, std::memory_order_acq_rel) + 1;
  detail::g_session_t0_ns.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count(),
      std::memory_order_relaxed);

  g_session.store(this, std::memory_order_release);
  detail::g_enabled.store(true, std::memory_order_release);

  // The constructing thread is almost always the interesting "main" track;
  // register it eagerly so it gets tid 0.
  set_thread_name("main");

  // Route Warn+ log lines into the event stream for the session lifetime.
  set_log_event_hook([this](LogLevel level, const std::string& component,
                            const std::string& message) {
    if (static_cast<int>(level) < cfg_.log_route_level) return;
    record_log(static_cast<int>(level), component, message);
  });
}

TelemetrySession::~TelemetrySession() {
  // Blocks until any in-flight log-hook invocation returns, so no thread
  // can call record_log() on this object afterwards.
  set_log_event_hook(nullptr);
  detail::g_enabled.store(false, std::memory_order_release);
  g_session.store(nullptr, std::memory_order_release);
  // Stale TLS ring pointers are invalidated lazily: the next session has a
  // new epoch, so every thread re-registers before writing again. The
  // rings themselves stay alive in the process-lifetime pool, so a scope
  // still open on another thread closes into stale-but-live memory.
}

ThreadRing* TelemetrySession::ring_for_this_thread() {
  if (t_ring_epoch == epoch_ && t_ring != nullptr) return t_ring;
  std::lock_guard<std::mutex> lock(mu_);
  const int tid = static_cast<int>(rings_.size());
  auto ring = std::make_unique<ThreadRing>(
      cfg_.events_per_thread, "thread-" + std::to_string(tid), tid);
  ThreadRing* ptr = ring.get();
  {
    std::lock_guard<std::mutex> pool_lock(ring_pool_mutex());
    ring_pool().push_back(std::move(ring));
  }
  rings_.push_back(ptr);
  t_ring = ptr;
  t_ring_epoch = epoch_;
  return ptr;
}

void TelemetrySession::record_log(int level, const std::string& component,
                                  const std::string& msg) {
  LogRecord rec;
  rec.ts_ns = static_cast<std::uint64_t>(std::max<std::int64_t>(
      detail::now_ns(), 0));
  rec.level = level;
  rec.component = component;
  rec.message = msg;
  std::lock_guard<std::mutex> lock(mu_);
  if (logs_.size() >= cfg_.max_log_records) {
    ++logs_dropped_;
    return;
  }
  logs_.push_back(std::move(rec));
}

std::vector<LogRecord> TelemetrySession::log_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return logs_;
}

std::vector<ThreadSnapshot> TelemetrySession::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ThreadSnapshot> out;
  out.reserve(rings_.size());
  for (const auto& ring : rings_) {
    ThreadSnapshot snap;
    snap.tid = ring->tid();
    snap.name = ring->name();
    const std::uint64_t pushed = ring->pushed();
    snap.dropped = pushed > ring->capacity() ? pushed - ring->capacity() : 0;
    snap.events = ring->snapshot();
    out.push_back(std::move(snap));
  }
  return out;
}

std::uint64_t TelemetrySession::events_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->pushed();
  return total;
}

std::uint64_t TelemetrySession::events_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    const std::uint64_t pushed = ring->pushed();
    if (pushed > ring->capacity()) total += pushed - ring->capacity();
  }
  return total;
}

ProfileReport TelemetrySession::report() const {
  return build_profile(snapshot());
}

namespace {

constexpr int kWallPid = 1;  ///< Wall-clock process: one track per thread.
constexpr int kSimPid = 2;   ///< Sim-time process: one async track per id.

/// Comma-separation helper for streaming a JSON array.
struct Sep {
  bool first = true;
  const char* next() {
    if (first) {
      first = false;
      return "\n  ";
    }
    return ",\n  ";
  }
};

const char* log_level_label(int level) {
  switch (level) {
    case 0: return "trace";
    case 1: return "debug";
    case 2: return "info";
    case 3: return "warn";
    case 4: return "error";
  }
  return "?";
}

}  // namespace

void TelemetrySession::write_chrome_trace(std::ostream& os) const {
  const std::vector<ThreadSnapshot> snaps = snapshot();
  const std::vector<LogRecord> logs = log_records();

  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  Sep sep;

  auto meta = [&](int pid, int tid, const char* what,
                  const std::string& value, bool process_scope) {
    os << sep.next() << "{\"ph\": \"M\", \"pid\": " << pid;
    if (!process_scope) os << ", \"tid\": " << tid;
    os << ", \"name\": \"" << what << "\", \"args\": {\"name\": ";
    detail::write_json_string(os, value);
    os << "}}";
  };
  meta(kWallPid, 0, "process_name", "hbosim (wall time)", true);
  meta(kSimPid, 0, "process_name", "hbosim (sim time)", true);
  for (const ThreadSnapshot& snap : snaps)
    meta(kWallPid, snap.tid, "thread_name", snap.name, false);

  os << std::fixed;
  os.precision(3);
  for (const ThreadSnapshot& snap : snaps) {
    for (const TraceEvent& ev : snap.events) {
      switch (ev.kind) {
        case EventKind::Scope:
          os << sep.next() << "{\"ph\": \"X\", \"pid\": " << kWallPid
             << ", \"tid\": " << snap.tid << ", \"ts\": "
             << static_cast<double>(ev.ts_ns) * 1e-3 << ", \"dur\": "
             << static_cast<double>(ev.dur_ns) * 1e-3 << ", \"cat\": ";
          detail::write_json_string(os, ev.cat);
          os << ", \"name\": ";
          detail::write_json_string(os, ev.name);
          os << "}";
          break;
        case EventKind::Counter:
          os << sep.next() << "{\"ph\": \"C\", \"pid\": " << kWallPid
             << ", \"tid\": " << snap.tid << ", \"ts\": "
             << static_cast<double>(ev.ts_ns) * 1e-3 << ", \"cat\": ";
          detail::write_json_string(os, ev.cat);
          os << ", \"name\": ";
          detail::write_json_string(os, ev.name);
          os << ", \"args\": {\"value\": " << ev.value << "}}";
          break;
        case EventKind::Instant:
          os << sep.next() << "{\"ph\": \"i\", \"pid\": " << kWallPid
             << ", \"tid\": " << snap.tid << ", \"ts\": "
             << static_cast<double>(ev.ts_ns) * 1e-3
             << ", \"s\": \"t\", \"cat\": ";
          detail::write_json_string(os, ev.cat);
          os << ", \"name\": ";
          detail::write_json_string(os, ev.name);
          os << "}";
          break;
        case EventKind::SimSpan:
          // Async begin/end pair on the sim-time process; (cat, id, name)
          // selects the track, so each session id gets its own lane.
          for (int phase = 0; phase < 2; ++phase) {
            const double ts_us =
                (phase == 0 ? ev.value : ev.value2) * 1e6;
            os << sep.next() << "{\"ph\": \"" << (phase == 0 ? 'b' : 'e')
               << "\", \"pid\": " << kSimPid << ", \"tid\": " << ev.track
               << ", \"id\": " << ev.track << ", \"ts\": " << ts_us
               << ", \"cat\": ";
            detail::write_json_string(os, ev.cat);
            os << ", \"name\": ";
            detail::write_json_string(os, ev.name);
            os << "}";
          }
          break;
      }
    }
  }

  for (const LogRecord& log : logs) {
    os << sep.next() << "{\"ph\": \"i\", \"pid\": " << kWallPid
       << ", \"tid\": 0, \"ts\": " << static_cast<double>(log.ts_ns) * 1e-3
       << ", \"s\": \"g\", \"cat\": \"log\", \"name\": ";
    detail::write_json_string(os, log.component);
    os << ", \"args\": {\"level\": \"" << log_level_label(log.level)
       << "\", \"message\": ";
    detail::write_json_string(os, log.message);
    os << "}}";
  }

  os << "\n]}\n";
}

// --- free-function record primitives --------------------------------------

namespace detail {
ThreadRing* active_ring() {
  if (!g_enabled.load(std::memory_order_relaxed)) return nullptr;
  // Fast path: the TLS ring already belongs to the current epoch — no
  // session dereference, so it cannot race with ~TelemetrySession.
  if (t_ring != nullptr &&
      t_ring_epoch == g_epoch.load(std::memory_order_acquire))
    return t_ring;
  TelemetrySession* s = TelemetrySession::active();
  return s ? s->ring_for_this_thread() : nullptr;
}
}  // namespace detail

namespace {
using detail::active_ring;
}  // namespace

void counter(const char* cat, const char* name, double value) {
  ThreadRing* ring = active_ring();
  if (!ring) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.kind = EventKind::Counter;
  ev.ts_ns = static_cast<std::uint64_t>(detail::now_ns());
  ev.value = value;
  ring->push(ev);
}

void instant(const char* cat, const char* name) {
  ThreadRing* ring = active_ring();
  if (!ring) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.kind = EventKind::Instant;
  ev.ts_ns = static_cast<std::uint64_t>(detail::now_ns());
  ring->push(ev);
}

void sim_span(const char* cat, const char* name, std::uint64_t track,
              SimTime begin_s, SimTime end_s) {
  ThreadRing* ring = active_ring();
  if (!ring) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.kind = EventKind::SimSpan;
  ev.ts_ns = static_cast<std::uint64_t>(detail::now_ns());
  ev.track = track;
  ev.value = begin_s;
  ev.value2 = end_s;
  ring->push(ev);
}

void sim_span(const char* cat, const char* name, SimTime begin_s,
              SimTime end_s) {
  sim_span(cat, name, t_track, begin_s, end_s);
}

void set_current_track(std::uint64_t track) { t_track = track; }
std::uint64_t current_track() { return t_track; }

void set_thread_name(const std::string& name, bool append_index) {
  TelemetrySession* s = TelemetrySession::active();
  if (!s) return;
  ThreadRing* ring = s->ring_for_this_thread();
  ring->set_name(append_index ? name + "-" + std::to_string(ring->tid())
                              : name);
}

}  // namespace hbosim::telemetry
