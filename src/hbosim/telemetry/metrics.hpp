#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

/// \file metrics.hpp
/// The telemetry metrics registry: monotonic counters, gauges, and
/// fixed-bucket histograms with percentile summaries.
///
/// Write-path design: every writing thread owns a private *shard* (a
/// vector of plain cells guarded by a per-shard mutex that only that
/// thread and the occasional snapshot ever take, so the lock is
/// uncontended and stays on the futex fast path). snapshot() aggregates
/// all shards under the registry lock. Gauges are last-write-wins and
/// kept centrally — they are set rarely and have no meaningful per-thread
/// aggregation.

namespace hbosim::telemetry {

namespace detail {
/// Emit `s` as a quoted, escaped JSON string (shared by the metrics and
/// trace exporters).
void write_json_string(std::ostream& os, std::string_view s);
}  // namespace detail

using MetricId = std::uint32_t;

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

const char* metric_kind_name(MetricKind k);

/// Aggregated view of one histogram. Percentiles are linearly
/// interpolated within the owning bucket and clamped to the observed
/// min/max, so exact-boundary distributions report exact values.
struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Upper bounds of the finite buckets; counts has one extra overflow slot.
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;

  double mean() const {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
};

/// One metric in a snapshot.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  double value = 0.0;        ///< Counter total or gauge value.
  std::uint64_t count = 0;   ///< add() calls (counter) / set() calls (gauge).
  HistogramSummary hist;     ///< Populated for histograms.
};

struct MetricsSnapshot {
  std::vector<MetricValue> metrics;  ///< Sorted by name.

  /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
  void write_json(std::ostream& os) const;
  /// One row per metric: name,kind,count,value,min,max,p50,p95,p99.
  void write_csv(std::ostream& os) const;

  /// Convenience lookup; nullptr if absent.
  const MetricValue* find(std::string_view name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register (or look up) a metric by name. Re-registering the same name
  /// with the same kind returns the existing id; a kind mismatch throws.
  MetricId counter(std::string_view name);
  MetricId gauge(std::string_view name);
  MetricId histogram(std::string_view name, std::vector<double> bounds);

  /// Log-spaced microsecond buckets, 1 us .. 10 s (for latency histograms).
  static const std::vector<double>& default_us_buckets();

  /// Monotonic add to a counter (delta must be >= 0).
  void add(MetricId id, double delta = 1.0);
  /// Last-write-wins gauge set.
  void set(MetricId id, double value);
  /// Record one observation into a histogram.
  void observe(MetricId id, double value);

  /// Aggregate every shard. Safe to call while writers are active (each
  /// shard is locked briefly); the result is a consistent per-shard view.
  MetricsSnapshot snapshot() const;

  std::size_t metric_count() const;

 private:
  struct Cell {
    double sum = 0.0;
    std::uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    std::vector<std::uint64_t> buckets;  ///< Histograms only.
  };
  struct Shard {
    mutable std::mutex mu;
    std::vector<Cell> cells;  ///< Indexed by MetricId, grown on demand.
  };
  struct Descriptor {
    std::string name;
    MetricKind kind;
    std::vector<double> bounds;  ///< Histograms only.
    double gauge_value = 0.0;
    std::uint64_t gauge_writes = 0;
  };

  MetricId register_metric(std::string_view name, MetricKind kind,
                           std::vector<double> bounds);
  Shard& shard_for_this_thread();
  Cell& cell(Shard& shard, MetricId id);

  const std::uint64_t registry_id_;  ///< Process-unique, for TLS caching.
  mutable std::mutex mu_;
  /// Deque, not vector: observe() reads a descriptor's bounds after
  /// releasing mu_, so element addresses must survive concurrent
  /// registration (deque push_back never moves existing elements).
  std::deque<Descriptor> descriptors_;
  std::unordered_map<std::string, MetricId> by_name_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace hbosim::telemetry
