#include "hbosim/telemetry/report.hpp"

#include <algorithm>
#include <cstring>
#include <iomanip>

namespace hbosim::telemetry {

namespace {

ProfileNode& child_by_name(ProfileNode& parent, const char* name) {
  for (ProfileNode& c : parent.children) {
    // Pointer equality first: names are literals/interned, so identical
    // call sites share the pointer and skip the strcmp.
    if (c.name == name || std::strcmp(c.name, name) == 0) return c;
  }
  parent.children.push_back(ProfileNode{name, 0, 0, {}});
  return parent.children.back();
}

struct OpenScope {
  ProfileNode* node;
  std::uint64_t end_ns;
};

void print_node(std::ostream& os, const ProfileNode& node, int depth) {
  std::vector<const ProfileNode*> ordered;
  ordered.reserve(node.children.size());
  for (const ProfileNode& c : node.children) ordered.push_back(&c);
  std::sort(ordered.begin(), ordered.end(),
            [](const ProfileNode* a, const ProfileNode* b) {
              return a->incl_ns > b->incl_ns;
            });
  for (const ProfileNode* c : ordered) {
    const std::string label(static_cast<std::size_t>(depth) * 2, ' ');
    os << "  " << std::left << std::setw(44) << (label + c->name)
       << std::right << std::setw(9) << c->count << std::setw(12)
       << std::fixed << std::setprecision(2)
       << static_cast<double>(c->incl_ns) * 1e-6 << std::setw(12)
       << static_cast<double>(c->excl_ns()) * 1e-6 << "\n";
    print_node(os, *c, depth + 1);
  }
}

}  // namespace

std::uint64_t ProfileNode::excl_ns() const {
  std::uint64_t child_ns = 0;
  for (const ProfileNode& c : children) child_ns += c.incl_ns;
  return child_ns >= incl_ns ? 0 : incl_ns - child_ns;
}

const ProfileNode* ProfileNode::child(std::string_view want) const {
  for (const ProfileNode& c : children)
    if (want == c.name) return &c;
  return nullptr;
}

ProfileReport build_profile(const std::vector<ThreadSnapshot>& snapshots) {
  ProfileReport out;
  out.root.name = "total";
  out.threads = snapshots.size();

  for (const ThreadSnapshot& snap : snapshots) {
    out.dropped += snap.dropped;
    // Scopes are recorded at close, so the ring holds them in end-time
    // order; sort by (start asc, duration desc) so a parent precedes the
    // children it contains.
    std::vector<const TraceEvent*> scopes;
    for (const TraceEvent& ev : snap.events) {
      ++out.events;
      if (ev.kind == EventKind::Scope) scopes.push_back(&ev);
    }
    std::sort(scopes.begin(), scopes.end(),
              [](const TraceEvent* a, const TraceEvent* b) {
                if (a->ts_ns != b->ts_ns) return a->ts_ns < b->ts_ns;
                return a->dur_ns > b->dur_ns;
              });

    std::vector<OpenScope> stack;
    for (const TraceEvent* ev : scopes) {
      while (!stack.empty() && ev->ts_ns >= stack.back().end_ns)
        stack.pop_back();
      ProfileNode& parent = stack.empty() ? out.root : *stack.back().node;
      ProfileNode& node = child_by_name(parent, ev->name);
      ++node.count;
      node.incl_ns += ev->dur_ns;
      stack.push_back(OpenScope{&node, ev->ts_ns + ev->dur_ns});
    }
  }
  for (const ProfileNode& c : out.root.children)
    out.root.incl_ns += c.incl_ns;
  return out;
}

void ProfileReport::print(std::ostream& os) const {
  os << "telemetry profile — wall time, merged over " << threads
     << " thread(s), " << events << " events";
  if (dropped) os << " (" << dropped << " dropped to ring wraparound)";
  os << "\n  " << std::left << std::setw(44) << "scope" << std::right
     << std::setw(9) << "count" << std::setw(12) << "incl(ms)"
     << std::setw(12) << "excl(ms)" << "\n";
  print_node(os, root, 0);
}

}  // namespace hbosim::telemetry
