#include "hbosim/telemetry/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "hbosim/common/error.hpp"

namespace hbosim::telemetry {

namespace {

std::atomic<std::uint64_t> g_next_registry_id{1};

/// TLS cache of (registry id -> shard). Registry ids are never reused, so
/// entries for destroyed registries are dead weight but never looked up
/// again (only the owning registry's methods consult its own id).
struct TlsShardCache {
  std::vector<std::pair<std::uint64_t, void*>> entries;
};
thread_local TlsShardCache t_shards;

/// Percentile by linear interpolation inside the owning bucket, clamped
/// to the observed [min, max].
double bucket_percentile(const HistogramSummary& h, double q) {
  if (h.count == 0) return 0.0;
  const double target = q * static_cast<double>(h.count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < h.counts.size(); ++b) {
    const std::uint64_t prev = cum;
    cum += h.counts[b];
    if (static_cast<double>(cum) >= target && h.counts[b] > 0) {
      const double lo = b == 0 ? h.min : h.bounds[b - 1];
      const double hi = b < h.bounds.size() ? h.bounds[b] : h.max;
      const double span_frac =
          (target - static_cast<double>(prev)) /
          static_cast<double>(h.counts[b]);
      const double v = lo + (hi - lo) * span_frac;
      return std::clamp(v, h.min, h.max);
    }
  }
  return h.max;
}

}  // namespace

namespace detail {
void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}
}  // namespace detail

namespace {
using detail::write_json_string;
}  // namespace

const char* metric_kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

const MetricValue* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricValue& m : metrics)
    if (m.name == name) return &m;
  return nullptr;
}

void MetricsSnapshot::write_json(std::ostream& os) const {
  auto emit_group = [&](MetricKind kind, const char* label, bool first) {
    if (!first) os << ",\n";
    os << "  \"" << label << "\": {";
    bool any = false;
    for (const MetricValue& m : metrics) {
      if (m.kind != kind) continue;
      if (any) os << ",";
      any = true;
      os << "\n    ";
      write_json_string(os, m.name);
      if (kind == MetricKind::Histogram) {
        const HistogramSummary& h = m.hist;
        os << ": {\"count\": " << h.count << ", \"sum\": " << h.sum
           << ", \"mean\": " << h.mean() << ", \"min\": " << h.min
           << ", \"max\": " << h.max << ", \"p50\": " << h.p50
           << ", \"p95\": " << h.p95 << ", \"p99\": " << h.p99 << "}";
      } else {
        os << ": " << m.value;
      }
    }
    os << (any ? "\n  }" : "}");
  };
  os << "{\n";
  emit_group(MetricKind::Counter, "counters", true);
  emit_group(MetricKind::Gauge, "gauges", false);
  emit_group(MetricKind::Histogram, "histograms", false);
  os << "\n}\n";
}

void MetricsSnapshot::write_csv(std::ostream& os) const {
  // Metric names are free-form; quote any field that would break the row.
  auto field = [&os](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) {
      os << s;
      return;
    }
    os << '"';
    for (char c : s) {
      if (c == '"') os << '"';
      os << c;
    }
    os << '"';
  };
  os << "name,kind,count,value,min,max,p50,p95,p99\n";
  for (const MetricValue& m : metrics) {
    field(m.name);
    os << ',' << metric_kind_name(m.kind) << ',';
    if (m.kind == MetricKind::Histogram) {
      const HistogramSummary& h = m.hist;
      os << h.count << ',' << h.sum << ',' << h.min << ',' << h.max << ','
         << h.p50 << ',' << h.p95 << ',' << h.p99;
    } else {
      os << m.count << ',' << m.value << ",,,,,";
    }
    os << '\n';
  }
}

MetricsRegistry::MetricsRegistry()
    : registry_id_(g_next_registry_id.fetch_add(1)) {}

MetricsRegistry::~MetricsRegistry() = default;

const std::vector<double>& MetricsRegistry::default_us_buckets() {
  static const std::vector<double> buckets = {
      1,     2,     5,     10,    20,    50,    100,   200,
      500,   1e3,   2e3,   5e3,   1e4,   2e4,   5e4,   1e5,
      2e5,   5e5,   1e6,   2e6,   5e6,   1e7};
  return buckets;
}

MetricId MetricsRegistry::register_metric(std::string_view name,
                                          MetricKind kind,
                                          std::vector<double> bounds) {
  HB_REQUIRE(!name.empty(), "metric name must be non-empty");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    HB_REQUIRE(descriptors_[it->second].kind == kind,
               "metric re-registered with a different kind: " +
                   std::string(name));
    return it->second;
  }
  const MetricId id = static_cast<MetricId>(descriptors_.size());
  descriptors_.push_back(Descriptor{std::string(name), kind,
                                    std::move(bounds), 0.0, 0});
  by_name_.emplace(std::string(name), id);
  return id;
}

MetricId MetricsRegistry::counter(std::string_view name) {
  return register_metric(name, MetricKind::Counter, {});
}

MetricId MetricsRegistry::gauge(std::string_view name) {
  return register_metric(name, MetricKind::Gauge, {});
}

MetricId MetricsRegistry::histogram(std::string_view name,
                                    std::vector<double> bounds) {
  HB_REQUIRE(std::is_sorted(bounds.begin(), bounds.end()),
             "histogram bucket bounds must be sorted");
  HB_REQUIRE(!bounds.empty(), "histogram needs at least one bucket bound");
  return register_metric(name, MetricKind::Histogram, std::move(bounds));
}

MetricsRegistry::Shard& MetricsRegistry::shard_for_this_thread() {
  for (auto& [id, ptr] : t_shards.entries)
    if (id == registry_id_) return *static_cast<Shard*>(ptr);
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  t_shards.entries.emplace_back(registry_id_, shard);
  return *shard;
}

MetricsRegistry::Cell& MetricsRegistry::cell(Shard& shard, MetricId id) {
  if (shard.cells.size() <= id) shard.cells.resize(id + 1);
  return shard.cells[id];
}

void MetricsRegistry::add(MetricId id, double delta) {
  HB_ASSERT(delta >= 0.0, "counters are monotonic: delta must be >= 0");
  Shard& shard = shard_for_this_thread();
  std::lock_guard<std::mutex> lock(shard.mu);
  Cell& c = cell(shard, id);
  c.sum += delta;
  ++c.count;
}

void MetricsRegistry::set(MetricId id, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  HB_REQUIRE(id < descriptors_.size(), "unknown metric id");
  Descriptor& d = descriptors_[id];
  HB_REQUIRE(d.kind == MetricKind::Gauge, "set() requires a gauge");
  d.gauge_value = value;
  ++d.gauge_writes;
}

void MetricsRegistry::observe(MetricId id, double value) {
  // The bounds vector is immutable after registration and descriptors_ is
  // a deque (element addresses survive concurrent register_metric()), so
  // reading the bounds without the registry lock is safe.
  const std::vector<double>* bounds;
  {
    std::lock_guard<std::mutex> lock(mu_);
    HB_REQUIRE(id < descriptors_.size(), "unknown metric id");
    HB_REQUIRE(descriptors_[id].kind == MetricKind::Histogram,
               "observe() requires a histogram");
    bounds = &descriptors_[id].bounds;
  }
  Shard& shard = shard_for_this_thread();
  std::lock_guard<std::mutex> lock(shard.mu);
  Cell& c = cell(shard, id);
  if (c.buckets.empty()) c.buckets.assign(bounds->size() + 1, 0);
  // First bucket is value <= bounds[0]; overflow bucket catches the rest.
  const auto it = std::lower_bound(bounds->begin(), bounds->end(), value);
  ++c.buckets[static_cast<std::size_t>(it - bounds->begin())];
  if (c.count == 0) {
    c.min = value;
    c.max = value;
  } else {
    c.min = std::min(c.min, value);
    c.max = std::max(c.max, value);
  }
  c.sum += value;
  ++c.count;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  out.metrics.reserve(descriptors_.size());
  for (MetricId id = 0; id < descriptors_.size(); ++id) {
    const Descriptor& d = descriptors_[id];
    MetricValue m;
    m.name = d.name;
    m.kind = d.kind;
    if (d.kind == MetricKind::Gauge) {
      m.value = d.gauge_value;
      m.count = d.gauge_writes;
    } else if (d.kind == MetricKind::Counter) {
      for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> slock(shard->mu);
        if (id < shard->cells.size()) {
          m.value += shard->cells[id].sum;
          m.count += shard->cells[id].count;
        }
      }
    } else {
      HistogramSummary& h = m.hist;
      h.bounds = d.bounds;
      h.counts.assign(d.bounds.size() + 1, 0);
      h.min = std::numeric_limits<double>::infinity();
      h.max = -std::numeric_limits<double>::infinity();
      for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> slock(shard->mu);
        if (id >= shard->cells.size()) continue;
        const Cell& c = shard->cells[id];
        if (c.count == 0) continue;
        h.count += c.count;
        h.sum += c.sum;
        h.min = std::min(h.min, c.min);
        h.max = std::max(h.max, c.max);
        for (std::size_t b = 0; b < c.buckets.size(); ++b)
          h.counts[b] += c.buckets[b];
      }
      if (h.count == 0) {
        h.min = 0.0;
        h.max = 0.0;
      }
      h.p50 = bucket_percentile(h, 0.50);
      h.p95 = bucket_percentile(h, 0.95);
      h.p99 = bucket_percentile(h, 0.99);
    }
    out.metrics.push_back(std::move(m));
  }
  std::sort(out.metrics.begin(), out.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return out;
}

std::size_t MetricsRegistry::metric_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return descriptors_.size();
}

}  // namespace hbosim::telemetry
