#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "hbosim/telemetry/telemetry.hpp"

/// \file report.hpp
/// Rolls recorded wall-clock scopes up into an inclusive/exclusive-time
/// tree. Nesting is reconstructed from interval containment (scopes are
/// recorded as complete events at close), then merged across threads by
/// name path, so `bench_bo` and `fleet_demo` can print one profile for an
/// entire multi-threaded run.

namespace hbosim::telemetry {

struct ProfileNode {
  const char* name = nullptr;  ///< Static/interned scope name.
  std::uint64_t count = 0;
  std::uint64_t incl_ns = 0;  ///< Sum of scope durations.
  std::vector<ProfileNode> children;

  /// Inclusive time minus children's inclusive time (floored at 0 —
  /// ring wraparound can drop a parent's early children).
  std::uint64_t excl_ns() const;
  const ProfileNode* child(std::string_view name) const;
};

struct ProfileReport {
  ProfileNode root;  ///< name = "total"; children are top-level scopes.
  std::size_t threads = 0;
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;

  /// Indented table: name, count, inclusive ms, exclusive ms. Children
  /// are ordered by descending inclusive time.
  void print(std::ostream& os) const;
};

/// Build the merged profile from per-thread snapshots.
ProfileReport build_profile(const std::vector<ThreadSnapshot>& snapshots);

}  // namespace hbosim::telemetry
