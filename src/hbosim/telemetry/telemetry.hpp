#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "hbosim/common/types.hpp"
#include "hbosim/telemetry/metrics.hpp"

/// \file telemetry.hpp
/// Unified runtime tracing for hbosim: a per-thread, lock-free ring-buffer
/// event tracer with RAII scope macros, plus the TelemetrySession that owns
/// the buffers, the metrics registry, and the exporters.
///
/// Design targets (see DESIGN.md "Telemetry"):
///  - With no session active, every instrumentation point costs one relaxed
///    atomic load and a predictable branch — nothing else. Hot paths (DES
///    event dispatch, per-inference completion) stay within noise of an
///    uninstrumented build.
///  - With a session active, the record path is wait-free for the writing
///    thread: one TLS lookup plus a store into that thread's private ring
///    (single producer, no CAS). The ring overwrites its oldest events on
///    wraparound, so tracing never allocates after thread registration and
///    never blocks the simulation.
///  - Export understands both clocks: wall-time scopes become per-thread
///    tracks ("X" complete events) and DES sim-time spans become async
///    tracks ("b"/"e" pairs under a synthetic "sim-time" process), so a
///    single Perfetto / chrome://tracing load shows fleet workers and
///    per-session simulated timelines side by side.
///
/// Exports must only run while instrumented threads are quiescent (e.g.
/// after the fleet's worker pool has joined); the writer fast path is
/// unsynchronized by design.
///
/// Lifetime: rings live in a process-lifetime pool (never freed), so a
/// ScopeTimer or cached TLS ring pointer that outlives its session writes
/// into stale-but-live memory instead of freed memory, and such writes are
/// dropped by an epoch check anyway. Threads must still not *enter* new
/// instrumentation points (first-time thread registration) concurrently
/// with ~TelemetrySession — destroy the session only after instrumented
/// worker threads have joined.

namespace hbosim::telemetry {

class ThreadRing;

namespace detail {
/// Global tracing switch, read relaxed on every instrumentation point.
extern std::atomic<bool> g_enabled;
/// steady_clock nanoseconds captured when the active session started.
extern std::atomic<std::int64_t> g_session_t0_ns;
/// Bumped once per TelemetrySession construction; lets cached handles and
/// TLS buffers detect that they belong to a previous session.
extern std::atomic<std::uint64_t> g_epoch;

/// Nanoseconds since the active session started.
std::int64_t now_ns();

/// The calling thread's ring for the active session, or nullptr. The fast
/// path is a pure TLS + epoch check that never dereferences the session.
ThreadRing* active_ring();
}  // namespace detail

/// True while a TelemetrySession is active. The one-branch gate every
/// macro compiles down to when tracing is off.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Monotone session counter (0 = no session has ever started).
inline std::uint64_t session_epoch() {
  return detail::g_epoch.load(std::memory_order_acquire);
}

enum class EventKind : std::uint8_t {
  Scope,    ///< Wall-clock span on the recording thread's track.
  Counter,  ///< Sampled numeric series on the recording thread's track.
  Instant,  ///< Point event on the recording thread's track.
  SimSpan,  ///< Simulated-time span on async track `track`.
};

/// One fixed-size trace record. `name` and `cat` must point at static
/// storage or strings interned via telemetry::intern() — the ring stores
/// only the pointers.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::uint64_t ts_ns = 0;   ///< Wall ns since session start (record time).
  std::uint64_t dur_ns = 0;  ///< Scope duration; 0 otherwise.
  std::uint64_t track = 0;   ///< Async track id for SimSpan (session id).
  double value = 0.0;        ///< Counter value, or SimSpan begin (seconds).
  double value2 = 0.0;       ///< SimSpan end (seconds).
  EventKind kind = EventKind::Instant;
};

/// Single-producer ring of TraceEvents owned by one thread. The write
/// index is atomic only so that a post-quiescence reader sees a consistent
/// prefix; the producer never synchronizes with other producers.
class ThreadRing {
 public:
  ThreadRing(std::size_t capacity_pow2, std::string name, int tid);

  void push(const TraceEvent& ev) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    slots_[h & mask_] = ev;
    head_.store(h + 1, std::memory_order_release);
  }

  int tid() const { return tid_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Total events ever pushed (monotone; exceeds capacity on wraparound).
  std::uint64_t pushed() const {
    return head_.load(std::memory_order_acquire);
  }
  std::size_t capacity() const { return slots_.size(); }

  /// Copy of the retained events, oldest first. Caller must guarantee the
  /// owning thread is quiescent.
  std::vector<TraceEvent> snapshot() const;

 private:
  std::vector<TraceEvent> slots_;
  std::uint64_t mask_;
  std::atomic<std::uint64_t> head_{0};
  std::string name_;
  int tid_;
};

/// Retained events of one thread, as captured by TelemetrySession.
struct ThreadSnapshot {
  int tid = 0;
  std::string name;
  std::uint64_t dropped = 0;  ///< Events lost to ring wraparound.
  std::vector<TraceEvent> events;
};

/// One log line routed into the telemetry stream (see common/logging:
/// lines at Warn and above are forwarded while a session is active).
struct LogRecord {
  std::uint64_t ts_ns = 0;
  int level = 0;  ///< hbosim::LogLevel as int (header avoids the include).
  std::string component;
  std::string message;
};

// Forward declaration; full definition in report.hpp.
struct ProfileReport;

struct TelemetryConfig {
  /// Ring capacity per thread, rounded up to a power of two. At 64 bytes
  /// per event the default retains ~4 MiB (65536 events) per thread.
  std::size_t events_per_thread = 1 << 16;
  /// Cap on log lines captured from the logging bridge.
  std::size_t max_log_records = 4096;
  /// Minimum logging level forwarded into the event stream.
  int log_route_level = 3;  ///< LogLevel::Warn.
};

/// Enables tracing and metrics for its lifetime. At most one session may
/// be active per process; nested construction throws hbosim::Error.
class TelemetrySession {
 public:
  explicit TelemetrySession(TelemetryConfig cfg = {});
  ~TelemetrySession();

  TelemetrySession(const TelemetrySession&) = delete;
  TelemetrySession& operator=(const TelemetrySession&) = delete;

  /// The active session, or nullptr. Relaxed read; callers must not cache
  /// the pointer across session boundaries (use handles for that).
  static TelemetrySession* active();

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  const TelemetryConfig& config() const { return cfg_; }

  /// Registers the calling thread, creating its ring on first use.
  ThreadRing* ring_for_this_thread();

  /// Capture a log line (called by the logging bridge; thread-safe).
  void record_log(int level, const std::string& component,
                  const std::string& msg);
  std::vector<LogRecord> log_records() const;

  // --- export (writers must be quiescent) --------------------------------
  std::vector<ThreadSnapshot> snapshot() const;
  std::uint64_t events_recorded() const;
  std::uint64_t events_dropped() const;

  /// Chrome trace-event JSON: thread tracks for wall-time scopes and
  /// counters, async sim-time tracks, thread/process metadata, and routed
  /// log lines as instant events. Loads in Perfetto / chrome://tracing.
  void write_chrome_trace(std::ostream& os) const;

  /// Roll the recorded scopes up into an inclusive/exclusive wall-time
  /// tree (merged across threads).
  ProfileReport report() const;

 private:
  TelemetryConfig cfg_;
  MetricsRegistry metrics_;
  std::uint64_t epoch_;

  mutable std::mutex mu_;
  /// Non-owning: rings live in a process-lifetime pool (telemetry.cpp) so
  /// late writers never touch freed memory after the session is gone.
  std::vector<ThreadRing*> rings_;
  std::vector<LogRecord> logs_;
  std::uint64_t logs_dropped_ = 0;
};

/// Intern a dynamic name into process-lifetime storage so it can be used
/// as a TraceEvent name/category. Interned strings are never freed; use
/// for bounded sets (resource names, session labels), not per-event data.
const char* intern(std::string_view s);

/// Name the calling thread's track. With `append_index`, the thread's
/// registration index is appended ("fleet-worker" -> "fleet-worker-3"),
/// which gives stable distinct names to pool workers. No-op without an
/// active session.
void set_thread_name(const std::string& name, bool append_index = false);

/// Async-track id used by sim_span() emitters that have no explicit track
/// (thread-local; fleet workers set it to the running session's id).
void set_current_track(std::uint64_t track);
std::uint64_t current_track();

// --- record primitives (no-ops without an active session) ----------------
void counter(const char* cat, const char* name, double value);
void instant(const char* cat, const char* name);
void sim_span(const char* cat, const char* name, std::uint64_t track,
              SimTime begin_s, SimTime end_s);
/// sim_span on the thread's current_track().
void sim_span(const char* cat, const char* name, SimTime begin_s,
              SimTime end_s);

/// RAII wall-clock scope. Cheap enough to put on per-activation and
/// per-suggest paths; the disabled cost is the enabled() branch.
class ScopeTimer {
 public:
  ScopeTimer(const char* cat, const char* name) {
    if (!enabled()) return;
    ring_ = detail::active_ring();
    if (!ring_) return;
    epoch_ = session_epoch();
    cat_ = cat;
    name_ = name;
    start_ = detail::now_ns();
  }
  ~ScopeTimer() {
    if (!ring_) return;
    // The ring is process-lifetime memory, so this push is safe even if
    // the session was destroyed while the scope was open; the checks keep
    // a straddling scope out of a newer session's trace.
    if (!enabled() || session_epoch() != epoch_) return;
    TraceEvent ev;
    ev.name = name_;
    ev.cat = cat_;
    ev.kind = EventKind::Scope;
    ev.ts_ns = static_cast<std::uint64_t>(start_);
    ev.dur_ns = static_cast<std::uint64_t>(detail::now_ns() - start_);
    ring_->push(ev);
  }

  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

 private:
  ThreadRing* ring_ = nullptr;
  const char* cat_ = nullptr;
  const char* name_ = nullptr;
  std::int64_t start_ = 0;
  std::uint64_t epoch_ = 0;
};

/// Call-site handle that caches a metric id across calls and re-resolves
/// when a new session starts. Safe as a function-local static shared by
/// threads: resolution is idempotent and the id/epoch pair is published
/// release/acquire.
class CounterHandle {
 public:
  explicit CounterHandle(const char* name) : name_(name) {}
  void add(double delta = 1.0) {
    TelemetrySession* s = TelemetrySession::active();
    if (!s) return;
    s->metrics().add(resolve(*s), delta);
  }

 private:
  MetricId resolve(TelemetrySession& s) {
    const std::uint64_t e = session_epoch();
    if (epoch_.load(std::memory_order_acquire) != e) {
      id_.store(s.metrics().counter(name_), std::memory_order_relaxed);
      epoch_.store(e, std::memory_order_release);
    }
    return id_.load(std::memory_order_relaxed);
  }
  const char* name_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<MetricId> id_{0};
};

/// Same idea for histograms; registers with the default microsecond
/// latency buckets.
class HistogramHandle {
 public:
  explicit HistogramHandle(const char* name) : name_(name) {}
  void observe(double value) {
    TelemetrySession* s = TelemetrySession::active();
    if (!s) return;
    s->metrics().observe(resolve(*s), value);
  }

 private:
  MetricId resolve(TelemetrySession& s) {
    const std::uint64_t e = session_epoch();
    if (epoch_.load(std::memory_order_acquire) != e) {
      id_.store(
          s.metrics().histogram(name_, MetricsRegistry::default_us_buckets()),
          std::memory_order_relaxed);
      epoch_.store(e, std::memory_order_release);
    }
    return id_.load(std::memory_order_relaxed);
  }
  const char* name_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<MetricId> id_{0};
};

}  // namespace hbosim::telemetry

#define HB_TELEMETRY_CONCAT2(a, b) a##b
#define HB_TELEMETRY_CONCAT(a, b) HB_TELEMETRY_CONCAT2(a, b)

/// RAII wall-clock span named by string literals; a single predictable
/// branch when no session is active.
#define HB_TRACE_SCOPE(cat, name)                                     \
  ::hbosim::telemetry::ScopeTimer HB_TELEMETRY_CONCAT(hb_trace_scope_, \
                                                      __LINE__)(cat, name)

/// Sample a numeric series onto the calling thread's track.
#define HB_TRACE_COUNTER(cat, name, value)                        \
  do {                                                            \
    if (::hbosim::telemetry::enabled())                           \
      ::hbosim::telemetry::counter((cat), (name), (value));       \
  } while (0)

/// Point event on the calling thread's track.
#define HB_TRACE_INSTANT(cat, name)                        \
  do {                                                     \
    if (::hbosim::telemetry::enabled())                    \
      ::hbosim::telemetry::instant((cat), (name));         \
  } while (0)

/// Simulated-time span on the thread's current async track.
#define HB_TRACE_SIM_SPAN(cat, name, begin_s, end_s)                  \
  do {                                                                \
    if (::hbosim::telemetry::enabled())                               \
      ::hbosim::telemetry::sim_span((cat), (name), (begin_s), (end_s)); \
  } while (0)

/// Bump a registry counter through a call-site-cached handle.
#define HB_TELEM_COUNT(name, delta)                                  \
  do {                                                               \
    if (::hbosim::telemetry::enabled()) {                            \
      static ::hbosim::telemetry::CounterHandle hb_telem_ch{(name)}; \
      hb_telem_ch.add((delta));                                      \
    }                                                                \
  } while (0)

/// Observe a microsecond latency into a registry histogram.
#define HB_TELEM_HIST_US(name, us)                                     \
  do {                                                                 \
    if (::hbosim::telemetry::enabled()) {                              \
      static ::hbosim::telemetry::HistogramHandle hb_telem_hh{(name)}; \
      hb_telem_hh.observe((us));                                       \
    }                                                                  \
  } while (0)
