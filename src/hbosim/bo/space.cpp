#include "hbosim/bo/space.hpp"

#include <cmath>

#include "hbosim/common/error.hpp"
#include "hbosim/common/mathx.hpp"

namespace hbosim::bo {

SimplexBoxSpace::SimplexBoxSpace(std::size_t n_simplex, double box_lo,
                                 double box_hi)
    : n_simplex_(n_simplex), box_lo_(box_lo), box_hi_(box_hi) {
  HB_REQUIRE(n_simplex_ >= 1, "need at least one simplex coordinate");
  HB_REQUIRE(box_lo_ <= box_hi_, "box bounds inverted");
  HB_REQUIRE(box_lo_ >= 0.0 && box_hi_ <= 1.0,
             "triangle ratio bounds must lie in [0,1]");
}

std::vector<double> SimplexBoxSpace::sample(Rng& rng) const {
  std::vector<double> z = rng.dirichlet(n_simplex_);
  z.push_back(rng.uniform(box_lo_, box_hi_));
  return z;
}

std::vector<double> SimplexBoxSpace::clip(std::span<const double> z) const {
  HB_REQUIRE(z.size() == dim(), "point dimension mismatch");
  std::vector<double> c =
      project_to_simplex(std::span<const double>(z.data(), n_simplex_));
  c.push_back(clampd(z[n_simplex_], box_lo_, box_hi_));
  return c;
}

std::vector<double> SimplexBoxSpace::perturb(std::span<const double> z,
                                             double scale, Rng& rng) const {
  HB_REQUIRE(z.size() == dim(), "point dimension mismatch");
  HB_REQUIRE(scale > 0.0, "perturbation scale must be positive");
  std::vector<double> out(z.begin(), z.end());
  for (std::size_t i = 0; i < n_simplex_; ++i)
    out[i] += rng.normal(0.0, scale);
  out[n_simplex_] += rng.normal(0.0, scale * (box_hi_ - box_lo_));
  return clip(out);
}

bool SimplexBoxSpace::contains(std::span<const double> z, double tol) const {
  if (z.size() != dim()) return false;
  double s = 0.0;
  for (std::size_t i = 0; i < n_simplex_; ++i) {
    if (z[i] < -tol || z[i] > 1.0 + tol) return false;
    s += z[i];
  }
  if (std::abs(s - 1.0) > tol * static_cast<double>(n_simplex_) + tol)
    return false;
  const double x = z[n_simplex_];
  return x >= box_lo_ - tol && x <= box_hi_ + tol;
}

std::pair<std::vector<double>, double> SimplexBoxSpace::split(
    std::span<const double> z) {
  HB_REQUIRE(z.size() >= 2, "point too small to split");
  std::vector<double> c(z.begin(), z.end() - 1);
  return {std::move(c), z.back()};
}

std::vector<double> SimplexBoxSpace::join(std::span<const double> c,
                                          double x) {
  std::vector<double> z(c.begin(), c.end());
  z.push_back(x);
  return z;
}

}  // namespace hbosim::bo
