#include "hbosim/bo/space.hpp"

#include <cmath>

#include "hbosim/common/error.hpp"
#include "hbosim/common/mathx.hpp"

namespace hbosim::bo {

SimplexBoxSpace::SimplexBoxSpace(std::size_t n_simplex, double box_lo,
                                 double box_hi)
    : n_simplex_(n_simplex), box_lo_(box_lo), box_hi_(box_hi) {
  HB_REQUIRE(n_simplex_ >= 1, "need at least one simplex coordinate");
  HB_REQUIRE(box_lo_ <= box_hi_, "box bounds inverted");
  HB_REQUIRE(box_lo_ >= 0.0 && box_hi_ <= 1.0,
             "triangle ratio bounds must lie in [0,1]");
}

std::vector<double> SimplexBoxSpace::sample(Rng& rng) const {
  std::vector<double> z(dim());
  sample_into(z, rng);
  return z;
}

void SimplexBoxSpace::sample_into(std::span<double> out, Rng& rng) const {
  HB_REQUIRE(out.size() == dim(), "point dimension mismatch");
  rng.dirichlet(out.first(n_simplex_));
  out[n_simplex_] = rng.uniform(box_lo_, box_hi_);
}

std::vector<double> SimplexBoxSpace::clip(std::span<const double> z) const {
  std::vector<double> c(dim());
  std::vector<double> scratch;
  clip_into(z, c, scratch);
  return c;
}

void SimplexBoxSpace::clip_into(std::span<const double> z,
                                std::span<double> out,
                                std::vector<double>& scratch) const {
  HB_REQUIRE(z.size() == dim(), "point dimension mismatch");
  HB_REQUIRE(out.size() == dim(), "output dimension mismatch");
  project_to_simplex(z.first(n_simplex_), out.first(n_simplex_), scratch);
  out[n_simplex_] = clampd(z[n_simplex_], box_lo_, box_hi_);
}

std::vector<double> SimplexBoxSpace::perturb(std::span<const double> z,
                                             double scale, Rng& rng) const {
  std::vector<double> out(dim());
  std::vector<double> scratch;
  perturb_into(z, scale, rng, out, scratch);
  return out;
}

void SimplexBoxSpace::perturb_into(std::span<const double> z, double scale,
                                   Rng& rng, std::span<double> out,
                                   std::vector<double>& scratch) const {
  HB_REQUIRE(z.size() == dim(), "point dimension mismatch");
  HB_REQUIRE(scale > 0.0, "perturbation scale must be positive");
  HB_REQUIRE(out.size() == dim(), "output dimension mismatch");
  for (std::size_t i = 0; i < n_simplex_; ++i)
    out[i] = z[i] + rng.normal(0.0, scale);
  out[n_simplex_] = z[n_simplex_] + rng.normal(0.0, scale * (box_hi_ - box_lo_));
  clip_into(out, out, scratch);
}

bool SimplexBoxSpace::contains(std::span<const double> z, double tol) const {
  if (z.size() != dim()) return false;
  double s = 0.0;
  for (std::size_t i = 0; i < n_simplex_; ++i) {
    if (z[i] < -tol || z[i] > 1.0 + tol) return false;
    s += z[i];
  }
  if (std::abs(s - 1.0) > tol * static_cast<double>(n_simplex_) + tol)
    return false;
  const double x = z[n_simplex_];
  return x >= box_lo_ - tol && x <= box_hi_ + tol;
}

std::pair<std::vector<double>, double> SimplexBoxSpace::split(
    std::span<const double> z) {
  HB_REQUIRE(z.size() >= 2, "point too small to split");
  std::vector<double> c(z.begin(), z.end() - 1);
  return {std::move(c), z.back()};
}

std::vector<double> SimplexBoxSpace::join(std::span<const double> c,
                                          double x) {
  std::vector<double> z(c.begin(), c.end());
  z.push_back(x);
  return z;
}

}  // namespace hbosim::bo
