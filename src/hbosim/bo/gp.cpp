#include "hbosim/bo/gp.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "hbosim/common/error.hpp"
#include "hbosim/common/fastmath.hpp"
#include "hbosim/common/mathx.hpp"

namespace hbosim::bo {

namespace {
/// Candidate block width for predict_many: big enough to amortize loop
/// overhead and fill vector lanes, small enough that a block's solve
/// buffer (n x kBlock doubles) stays cache-resident as n grows.
constexpr std::size_t kBlock = 64;
}  // namespace

GaussianProcess::GaussianProcess(std::unique_ptr<Kernel> kernel, GpConfig cfg)
    : kernel_(std::move(kernel)), cfg_(cfg) {
  HB_REQUIRE(kernel_ != nullptr, "GaussianProcess requires a kernel");
  HB_REQUIRE(cfg_.noise_variance >= 0.0, "noise variance must be >= 0");
}

void GaussianProcess::fit(const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y) {
  fit_common(x, y, nullptr);
}

void GaussianProcess::fit(const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y, const Matrix& dist) {
  HB_REQUIRE(dist.rows() >= x.size() && dist.cols() >= x.size(),
             "GP fit: distance matrix too small");
  fit_common(x, y, &dist);
}

void GaussianProcess::fit_common(const std::vector<std::vector<double>>& x,
                                 const std::vector<double>& y,
                                 const Matrix* dist) {
  HB_REQUIRE(!x.empty(), "GP fit requires at least one observation");
  HB_REQUIRE(x.size() == y.size(), "GP fit: X/y size mismatch");
  const std::size_t dim = x.front().size();
  for (const auto& row : x)
    HB_REQUIRE(row.size() == dim, "GP fit: inconsistent input dimension");

  x_ = x;
  xflat_.clear();
  xflat_.reserve(x_.size() * dim);
  for (const auto& row : x_) xflat_.insert(xflat_.end(), row.begin(), row.end());

  const std::size_t n = x_.size();
  Matrix gram(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double k = dist ? kernel_->from_distance((*dist)(i, j))
                            : (*kernel_)(x_[i], x_[j]);
      gram(i, j) = k;
      gram(j, i) = k;
    }
    gram(i, i) += cfg_.noise_variance;
  }
  chol_ = std::make_unique<Cholesky>(gram, cfg_.jitter);
  set_targets(y);
}

void GaussianProcess::append_point(std::span<const double> z,
                                   std::span<const double> dist_row) {
  HB_REQUIRE(fitted(), "GP append_point before fit");
  const std::size_t n = x_.size();
  HB_REQUIRE(z.size() == x_.front().size(),
             "GP append_point: dimension mismatch");
  HB_REQUIRE(dist_row.size() == n, "GP append_point: distance row mismatch");

  // Scalar kernel evaluations on purpose: the grown factor must stay
  // bitwise identical to a from-scratch factorization, which uses the
  // scalar from_distance path for the Gram matrix.
  krow_scratch_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    krow_scratch_[i] = kernel_->from_distance(dist_row[i]);
  const double diag = kernel_->from_distance(0.0) + cfg_.noise_variance;
  chol_->append_row(krow_scratch_, diag);

  x_.emplace_back(z.begin(), z.end());
  xflat_.insert(xflat_.end(), z.begin(), z.end());
}

void GaussianProcess::set_targets(std::span<const double> y) {
  HB_REQUIRE(fitted(), "GP set_targets before fit");
  HB_REQUIRE(y.size() == x_.size(), "GP set_targets: size mismatch");
  y_mean_ = mean(y);
  y_centered_.resize(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) y_centered_[i] = y[i] - y_mean_;
  alpha_.resize(y.size());
  chol_->solve(y_centered_, alpha_);
}

void GaussianProcess::incremental_fit(std::span<const double> z,
                                      std::span<const double> y) {
  if (!fitted()) {
    const std::vector<std::vector<double>> x1 = {{z.begin(), z.end()}};
    const std::vector<double> y1(y.begin(), y.end());
    fit(x1, y1);
    return;
  }
  dist_scratch_.resize(x_.size());
  for (std::size_t i = 0; i < x_.size(); ++i)
    dist_scratch_[i] = euclidean_distance(z, x_[i]);
  incremental_fit(z, y, dist_scratch_);
}

void GaussianProcess::incremental_fit(std::span<const double> z,
                                      std::span<const double> y,
                                      std::span<const double> dist_row) {
  HB_REQUIRE(y.size() == x_.size() + 1,
             "GP incremental_fit: y must cover all observations");
  append_point(z, dist_row);
  set_targets(y);
}

std::vector<double> GaussianProcess::kernel_row(
    std::span<const double> z) const {
  std::vector<double> k(x_.size());
  for (std::size_t i = 0; i < x_.size(); ++i) k[i] = (*kernel_)(z, x_[i]);
  return k;
}

GaussianProcess::Prediction GaussianProcess::predict(
    std::span<const double> z) const {
  HB_REQUIRE(fitted(), "GP predict before fit");
  HB_REQUIRE(z.size() == x_.front().size(), "GP predict: dimension mismatch");
  const std::vector<double> k_star = kernel_row(z);

  Prediction out;
  out.mean = y_mean_;
  for (std::size_t i = 0; i < k_star.size(); ++i)
    out.mean += k_star[i] * alpha_[i];

  // var = k(z,z) - || L^-1 k* ||^2, clamped at 0 for numerical safety.
  const std::vector<double> v = chol_->solve_lower(k_star);
  double reduction = 0.0;
  for (double vi : v) reduction += vi * vi;
  out.variance = std::max((*kernel_)(z, z) - reduction, 0.0);
  return out;
}

GaussianProcess::Prediction GaussianProcess::predict(
    std::span<const double> z, PredictScratch& scratch) const {
  HB_REQUIRE(fitted(), "GP predict before fit");
  HB_REQUIRE(z.size() == x_.front().size(), "GP predict: dimension mismatch");
  const std::size_t n = x_.size();
  scratch.buf.resize(n);
  double* k = scratch.buf.data();
  for (std::size_t i = 0; i < n; ++i)
    k[i] = kernel_->from_distance(euclidean_distance(z, x_[i]));

  Prediction out;
  out.mean = y_mean_;
  for (std::size_t i = 0; i < n; ++i) out.mean += k[i] * alpha_[i];

  // In-place forward substitution; the same buffer then holds L^-1 k*.
  chol_->solve_lower(scratch.buf, scratch.buf);
  double reduction = 0.0;
  for (std::size_t i = 0; i < n; ++i) reduction += k[i] * k[i];
  out.variance = std::max(kernel_->from_distance(0.0) - reduction, 0.0);
  return out;
}

void GaussianProcess::predict_many(std::span<const double> zs_flat,
                                   std::size_t count,
                                   std::span<Prediction> out,
                                   BatchScratch& scratch) const {
  HB_REQUIRE(fitted(), "GP predict before fit");
  const std::size_t n = x_.size();
  const std::size_t d = x_.front().size();
  HB_REQUIRE(zs_flat.size() == count * d,
             "GP predict_many: flat input size mismatch");
  HB_REQUIRE(out.size() >= count, "GP predict_many: output too small");

  const double k0 = kernel_->from_distance(0.0);
  scratch.ct.resize(d * kBlock);
  scratch.v.resize(n * kBlock);
  scratch.mu.resize(kBlock);
  scratch.var.resize(kBlock);

  for (std::size_t b0 = 0; b0 < count; b0 += kBlock) {
    const std::size_t bc = std::min(kBlock, count - b0);
    // Transpose the block so each coordinate is contiguous across
    // candidates — the distance accumulation then vectorizes.
    for (std::size_t c = 0; c < bc; ++c)
      for (std::size_t j = 0; j < d; ++j)
        scratch.ct[j * kBlock + c] = zs_flat[(b0 + c) * d + j];

    // Kernel rows v(i, c) = k(||z_c - x_i||), computed block-at-a-time:
    // the distance block in one call, then the kernel over the whole
    // n x kBlock buffer (padding columns hold 0 -> k(0), never read).
    fastmath::dist_rows(scratch.ct.data(), xflat_.data(), n, d, bc, kBlock,
                        scratch.v.data());
    kernel_->from_distance_many({scratch.v.data(), n * kBlock},
                                {scratch.v.data(), n * kBlock});

    // Means use the raw kernel rows, so accumulate before the in-place
    // solve overwrites them.
    std::fill(scratch.mu.begin(), scratch.mu.begin() + bc, 0.0);
    fastmath::accum_weighted_rows(scratch.v.data(), n, kBlock, alpha_.data(),
                                  scratch.mu.data(), bc);

    chol_->solve_lower_many(scratch.v.data(), bc, kBlock);

    std::fill(scratch.var.begin(), scratch.var.begin() + bc, 0.0);
    fastmath::accum_rowsq(scratch.v.data(), n, kBlock, scratch.var.data(),
                          bc);

    for (std::size_t c = 0; c < bc; ++c) {
      out[b0 + c].mean = y_mean_ + scratch.mu[c];
      out[b0 + c].variance = std::max(k0 - scratch.var[c], 0.0);
    }
  }
}

double GaussianProcess::log_marginal_likelihood() const {
  HB_REQUIRE(fitted(), "GP log-likelihood before fit");
  const auto n = static_cast<double>(x_.size());
  double data_fit = 0.0;
  for (std::size_t i = 0; i < y_centered_.size(); ++i)
    data_fit += y_centered_[i] * alpha_[i];
  return -0.5 * data_fit - 0.5 * chol_->log_det() -
         0.5 * n * std::log(2.0 * std::numbers::pi);
}

}  // namespace hbosim::bo
