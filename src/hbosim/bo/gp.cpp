#include "hbosim/bo/gp.hpp"

#include <cmath>
#include <numbers>

#include "hbosim/common/error.hpp"
#include "hbosim/common/mathx.hpp"

namespace hbosim::bo {

GaussianProcess::GaussianProcess(std::unique_ptr<Kernel> kernel, GpConfig cfg)
    : kernel_(std::move(kernel)), cfg_(cfg) {
  HB_REQUIRE(kernel_ != nullptr, "GaussianProcess requires a kernel");
  HB_REQUIRE(cfg_.noise_variance >= 0.0, "noise variance must be >= 0");
}

void GaussianProcess::fit(const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y) {
  HB_REQUIRE(!x.empty(), "GP fit requires at least one observation");
  HB_REQUIRE(x.size() == y.size(), "GP fit: X/y size mismatch");
  const std::size_t dim = x.front().size();
  for (const auto& row : x)
    HB_REQUIRE(row.size() == dim, "GP fit: inconsistent input dimension");

  x_ = x;
  y_mean_ = mean(y);
  y_centered_.resize(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) y_centered_[i] = y[i] - y_mean_;

  const std::size_t n = x_.size();
  Matrix gram(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double k = (*kernel_)(x_[i], x_[j]);
      gram(i, j) = k;
      gram(j, i) = k;
    }
    gram(i, i) += cfg_.noise_variance;
  }
  chol_ = std::make_unique<Cholesky>(gram, cfg_.jitter);
  alpha_ = chol_->solve(y_centered_);
}

std::vector<double> GaussianProcess::kernel_row(
    std::span<const double> z) const {
  std::vector<double> k(x_.size());
  for (std::size_t i = 0; i < x_.size(); ++i) k[i] = (*kernel_)(z, x_[i]);
  return k;
}

GaussianProcess::Prediction GaussianProcess::predict(
    std::span<const double> z) const {
  HB_REQUIRE(fitted(), "GP predict before fit");
  HB_REQUIRE(z.size() == x_.front().size(), "GP predict: dimension mismatch");
  const std::vector<double> k_star = kernel_row(z);

  Prediction out;
  out.mean = y_mean_;
  for (std::size_t i = 0; i < k_star.size(); ++i)
    out.mean += k_star[i] * alpha_[i];

  // var = k(z,z) - || L^-1 k* ||^2, clamped at 0 for numerical safety.
  const std::vector<double> v = chol_->solve_lower(k_star);
  double reduction = 0.0;
  for (double vi : v) reduction += vi * vi;
  out.variance = std::max((*kernel_)(z, z) - reduction, 0.0);
  return out;
}

double GaussianProcess::log_marginal_likelihood() const {
  HB_REQUIRE(fitted(), "GP log-likelihood before fit");
  const auto n = static_cast<double>(x_.size());
  double data_fit = 0.0;
  for (std::size_t i = 0; i < y_centered_.size(); ++i)
    data_fit += y_centered_[i] * alpha_[i];
  return -0.5 * data_fit - 0.5 * chol_->log_det() -
         0.5 * n * std::log(2.0 * std::numbers::pi);
}

}  // namespace hbosim::bo
