#include "hbosim/bo/kernel.hpp"

#include <cmath>

#include "hbosim/common/error.hpp"
#include "hbosim/common/mathx.hpp"

namespace hbosim::bo {

Matern52::Matern52(double length_scale, double sigma_f)
    : length_(length_scale), sigma_f2_(sigma_f * sigma_f) {
  HB_REQUIRE(length_ > 0.0, "length scale must be positive");
  HB_REQUIRE(sigma_f > 0.0, "signal stddev must be positive");
}

double Matern52::operator()(std::span<const double> a,
                            std::span<const double> b) const {
  const double r = euclidean_distance(a, b);
  const double s = std::sqrt(5.0) * r / length_;
  return sigma_f2_ * (1.0 + s + s * s / 3.0) * std::exp(-s);
}

double Matern52::prior_variance() const { return sigma_f2_; }

std::unique_ptr<Kernel> Matern52::clone() const {
  return std::make_unique<Matern52>(*this);
}

Rbf::Rbf(double length_scale, double sigma_f)
    : length_(length_scale), sigma_f2_(sigma_f * sigma_f) {
  HB_REQUIRE(length_ > 0.0, "length scale must be positive");
  HB_REQUIRE(sigma_f > 0.0, "signal stddev must be positive");
}

double Rbf::operator()(std::span<const double> a,
                       std::span<const double> b) const {
  const double r = euclidean_distance(a, b);
  return sigma_f2_ * std::exp(-r * r / (2.0 * length_ * length_));
}

double Rbf::prior_variance() const { return sigma_f2_; }

std::unique_ptr<Kernel> Rbf::clone() const {
  return std::make_unique<Rbf>(*this);
}

Matern32::Matern32(double length_scale, double sigma_f)
    : length_(length_scale), sigma_f2_(sigma_f * sigma_f) {
  HB_REQUIRE(length_ > 0.0, "length scale must be positive");
  HB_REQUIRE(sigma_f > 0.0, "signal stddev must be positive");
}

double Matern32::operator()(std::span<const double> a,
                            std::span<const double> b) const {
  const double r = euclidean_distance(a, b);
  const double s = std::sqrt(3.0) * r / length_;
  return sigma_f2_ * (1.0 + s) * std::exp(-s);
}

double Matern32::prior_variance() const { return sigma_f2_; }

std::unique_ptr<Kernel> Matern32::clone() const {
  return std::make_unique<Matern32>(*this);
}

}  // namespace hbosim::bo
