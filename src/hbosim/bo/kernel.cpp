#include "hbosim/bo/kernel.hpp"

#include <cmath>

#include "hbosim/common/error.hpp"
#include "hbosim/common/fastmath.hpp"
#include "hbosim/common/mathx.hpp"

namespace hbosim::bo {

double Kernel::operator()(std::span<const double> a,
                          std::span<const double> b) const {
  return from_distance(euclidean_distance(a, b));
}

void Kernel::from_distance_many(std::span<const double> r,
                                std::span<double> out) const {
  HB_REQUIRE(r.size() == out.size(), "from_distance_many: size mismatch");
  for (std::size_t i = 0; i < r.size(); ++i) out[i] = from_distance(r[i]);
}

Matern52::Matern52(double length_scale, double sigma_f)
    : length_(length_scale), sigma_f2_(sigma_f * sigma_f) {
  HB_REQUIRE(length_ > 0.0, "length scale must be positive");
  HB_REQUIRE(sigma_f > 0.0, "signal stddev must be positive");
}

double Matern52::from_distance(double r) const {
  const double s = std::sqrt(5.0) * r / length_;
  return sigma_f2_ * (1.0 + s + s * s / 3.0) * std::exp(-s);
}

void Matern52::from_distance_many(std::span<const double> r,
                                  std::span<double> out) const {
  HB_REQUIRE(r.size() == out.size(), "from_distance_many: size mismatch");
  fastmath::matern52_from_r(length_, sigma_f2_, r.data(), out.data(),
                            r.size());
}

double Matern52::prior_variance() const { return sigma_f2_; }

std::unique_ptr<Kernel> Matern52::clone() const {
  return std::make_unique<Matern52>(*this);
}

Rbf::Rbf(double length_scale, double sigma_f)
    : length_(length_scale), sigma_f2_(sigma_f * sigma_f) {
  HB_REQUIRE(length_ > 0.0, "length scale must be positive");
  HB_REQUIRE(sigma_f > 0.0, "signal stddev must be positive");
}

double Rbf::from_distance(double r) const {
  return sigma_f2_ * std::exp(-r * r / (2.0 * length_ * length_));
}

void Rbf::from_distance_many(std::span<const double> r,
                             std::span<double> out) const {
  HB_REQUIRE(r.size() == out.size(), "from_distance_many: size mismatch");
  fastmath::rbf_from_r(length_, sigma_f2_, r.data(), out.data(), r.size());
}

double Rbf::prior_variance() const { return sigma_f2_; }

std::unique_ptr<Kernel> Rbf::clone() const {
  return std::make_unique<Rbf>(*this);
}

Matern32::Matern32(double length_scale, double sigma_f)
    : length_(length_scale), sigma_f2_(sigma_f * sigma_f) {
  HB_REQUIRE(length_ > 0.0, "length scale must be positive");
  HB_REQUIRE(sigma_f > 0.0, "signal stddev must be positive");
}

double Matern32::from_distance(double r) const {
  const double s = std::sqrt(3.0) * r / length_;
  return sigma_f2_ * (1.0 + s) * std::exp(-s);
}

void Matern32::from_distance_many(std::span<const double> r,
                                  std::span<double> out) const {
  HB_REQUIRE(r.size() == out.size(), "from_distance_many: size mismatch");
  fastmath::matern32_from_r(length_, sigma_f2_, r.data(), out.data(),
                            r.size());
}

double Matern32::prior_variance() const { return sigma_f2_; }

std::unique_ptr<Kernel> Matern32::clone() const {
  return std::make_unique<Matern32>(*this);
}

}  // namespace hbosim::bo
