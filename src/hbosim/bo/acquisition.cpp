#include "hbosim/bo/acquisition.hpp"

#include <algorithm>

#include "hbosim/common/error.hpp"
#include "hbosim/common/mathx.hpp"

namespace hbosim::bo {

const char* acquisition_name(AcquisitionKind k) {
  switch (k) {
    case AcquisitionKind::ExpectedImprovement: return "EI";
    case AcquisitionKind::ProbabilityOfImprovement: return "PI";
    case AcquisitionKind::LowerConfidenceBound: return "LCB";
  }
  return "?";
}

double expected_improvement(double mu, double sigma, double best_observed,
                            double xi) {
  HB_REQUIRE(sigma >= 0.0, "sigma must be >= 0");
  const double improvement = best_observed - mu - xi;
  if (sigma <= 0.0) return std::max(improvement, 0.0);
  const double u = improvement / sigma;
  return improvement * norm_cdf(u) + sigma * norm_pdf(u);
}

double probability_of_improvement(double mu, double sigma,
                                  double best_observed, double xi) {
  HB_REQUIRE(sigma >= 0.0, "sigma must be >= 0");
  const double improvement = best_observed - mu - xi;
  if (sigma <= 0.0) return improvement > 0.0 ? 1.0 : 0.0;
  return norm_cdf(improvement / sigma);
}

double lower_confidence_bound_score(double mu, double sigma, double kappa) {
  HB_REQUIRE(sigma >= 0.0, "sigma must be >= 0");
  HB_REQUIRE(kappa >= 0.0, "kappa must be >= 0");
  return -(mu - kappa * sigma);
}

double acquisition_score(AcquisitionKind kind, double mu, double sigma,
                         double best_observed, const AcquisitionParams& p) {
  switch (kind) {
    case AcquisitionKind::ExpectedImprovement:
      return expected_improvement(mu, sigma, best_observed, p.xi);
    case AcquisitionKind::ProbabilityOfImprovement:
      return probability_of_improvement(mu, sigma, best_observed, p.xi);
    case AcquisitionKind::LowerConfidenceBound:
      return lower_confidence_bound_score(mu, sigma, p.kappa);
  }
  HB_ASSERT(false, "unreachable acquisition kind");
  return 0.0;
}

}  // namespace hbosim::bo
