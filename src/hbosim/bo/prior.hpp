#pragma once

#include <span>
#include <vector>

/// \file prior.hpp
/// Optional learned prior over the HBO cost surface. A SurrogatePrior
/// gives the Bayesian optimizer three things a cold activation otherwise
/// lacks: (1) a non-flat mean function m0(z) — the GP then models only the
/// *residual* cost - m0(z), so with few observations the posterior already
/// reflects everything past sessions learned about this (device, scenario,
/// environment); (2) ranked seed configurations that replace the first
/// random initialization draws; (3) a data-driven length-scale hint added
/// to the hyperparameter grid. Implementations live above bo (see
/// hbosim::policy::ScenarioPrior, fitted from fleet pool traffic); this
/// header only defines the contract so bo stays dependency-free.
///
/// Determinism contract: every method must be a pure function of the
/// prior's frozen state — no clocks, no shared mutable state, no
/// unseeded randomness — because one prior instance may be consulted
/// concurrently by many fleet sessions whose trajectories must stay
/// bit-identical across thread counts.

namespace hbosim::bo {

class SurrogatePrior {
 public:
  virtual ~SurrogatePrior() = default;

  /// Prior mean of the raw (unstandardized) cost phi at configuration z.
  /// Must be finite for every feasible z.
  virtual double mean(std::span<const double> z) const = 0;

  /// Multiplier applied to BoConfig::length_scale and appended to the
  /// length-scale grid for the marginal-likelihood refit. Return <= 0 for
  /// "no opinion" (the grid is left untouched).
  virtual double length_scale_factor() const { return 0.0; }

  /// Up to k promising configurations, best first. The optimizer clips
  /// each onto the feasible set and uses them in place of the first k
  /// random initialization draws; returning fewer (or none) leaves the
  /// remaining draws random. Points whose dimension does not match the
  /// space are ignored.
  virtual std::vector<std::vector<double>> seed_points(std::size_t k) const {
    (void)k;
    return {};
  }

  /// Dimension of the z-space this prior was fitted in, or 0 when the
  /// prior is dimension-agnostic. Consumers growing the search space
  /// (e.g. the 4-target offload simplex vs the 3-target on-device one)
  /// must drop priors whose dim() is nonzero and differs from the
  /// active space — a mean function fitted over 4-vectors is
  /// meaningless (or out-of-bounds) when evaluated on 5-vectors.
  virtual std::size_t dim() const { return 0; }
};

}  // namespace hbosim::bo
