#pragma once

#include <memory>
#include <span>
#include <vector>

#include "hbosim/bo/kernel.hpp"
#include "hbosim/common/matrix.hpp"

/// \file gp.hpp
/// Gaussian-process regression surrogate (the paper's Eq. 6): given the BO
/// database D_t = {(z_tau, phi_tau)}, the posterior over the black-box cost
/// at any configuration z is Gaussian with mean mu_t(z) and variance
/// sigma_t^2(z), computed here by Cholesky factorization of the kernel
/// Gram matrix. Observations are centered on their mean internally.

namespace hbosim::bo {

struct GpConfig {
  /// Observation noise variance added to the Gram diagonal. The cost the
  /// MAR app measures over a control period is genuinely noisy, so this
  /// stays well above jitter level.
  double noise_variance = 1e-4;
  /// Numerical jitter added on top of the noise for factorization safety.
  double jitter = 1e-10;
};

class GaussianProcess {
 public:
  GaussianProcess(std::unique_ptr<Kernel> kernel, GpConfig cfg = {});

  /// Fit to observations. X: n points of equal dimension; y: n values.
  /// Replaces any previous fit. Throws on shape mismatches or n == 0.
  void fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y);

  bool fitted() const { return !x_.empty(); }
  std::size_t observation_count() const { return x_.size(); }

  struct Prediction {
    double mean = 0.0;
    double variance = 0.0;  ///< Latent-function variance (>= 0).
  };

  /// Posterior at a query point (Eq. 6). Requires fitted().
  Prediction predict(std::span<const double> z) const;

  /// Log marginal likelihood of the fitted data (model-quality check used
  /// in tests): -1/2 y^T K^-1 y - 1/2 log|K| - n/2 log(2 pi).
  double log_marginal_likelihood() const;

 private:
  std::vector<double> kernel_row(std::span<const double> z) const;

  std::unique_ptr<Kernel> kernel_;
  GpConfig cfg_;
  std::vector<std::vector<double>> x_;
  std::vector<double> y_centered_;
  double y_mean_ = 0.0;
  std::unique_ptr<Cholesky> chol_;
  std::vector<double> alpha_;  // K^-1 (y - mean)
};

}  // namespace hbosim::bo
