#pragma once

#include <memory>
#include <span>
#include <vector>

#include "hbosim/bo/kernel.hpp"
#include "hbosim/common/matrix.hpp"

/// \file gp.hpp
/// Gaussian-process regression surrogate (the paper's Eq. 6): given the BO
/// database D_t = {(z_tau, phi_tau)}, the posterior over the black-box cost
/// at any configuration z is Gaussian with mean mu_t(z) and variance
/// sigma_t^2(z), computed here by Cholesky factorization of the kernel
/// Gram matrix. Observations are centered on their mean internally.
///
/// The BO runtime loop observes one cost per control period and refits, so
/// besides the from-scratch fit() the class supports the incremental
/// protocol the optimizer uses:
///   - append_point(): grow the Gram factor by one observation via a
///     rank-1 bordered Cholesky update — O(n^2) instead of O(n^3), and
///     bitwise identical to refitting from scratch;
///   - set_targets(): re-center and re-solve for new y values against the
///     existing factor (the factor depends only on X, so per-suggest cost
///     re-standardization never forces a refactorization);
///   - incremental_fit() = append_point() + set_targets();
///   - predict() with a caller-owned scratch buffer and the batched
///     predict_many(), both allocation-free at steady state.

namespace hbosim::bo {

struct GpConfig {
  /// Observation noise variance added to the Gram diagonal. The cost the
  /// MAR app measures over a control period is genuinely noisy, so this
  /// stays well above jitter level.
  double noise_variance = 1e-4;
  /// Numerical jitter added on top of the noise for factorization safety.
  double jitter = 1e-10;
};

class GaussianProcess {
 public:
  GaussianProcess(std::unique_ptr<Kernel> kernel, GpConfig cfg = {});

  /// Fit to observations. X: n points of equal dimension; y: n values.
  /// Replaces any previous fit. Throws on shape mismatches or n == 0.
  void fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y);

  /// Fit using a precomputed pairwise distance matrix (dist(i, j) =
  /// ||x_i - x_j||, at least n x n). The Gram matrix is derived through
  /// Kernel::from_distance, so several GPs differing only in kernel
  /// hyperparameters can share one distance matrix and each fit costs
  /// O(n^2) kernel evaluations with zero distance recomputation.
  /// Identical result to fit(x, y).
  void fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y, const Matrix& dist);

  /// Append one observation to the fitted set WITHOUT updating the
  /// targets: grows the Cholesky factor in place (O(n^2) bordered
  /// update). dist_row[i] must equal ||z - x_i|| for the n current
  /// points. predict()/log_marginal_likelihood() are invalid until the
  /// next set_targets(). Requires fitted().
  void append_point(std::span<const double> z,
                    std::span<const double> dist_row);

  /// Replace the target values against the current point set: re-centers
  /// y and re-solves alpha = K^-1 (y - mean) from the existing factor in
  /// O(n^2). y.size() must equal observation_count(). This is why cost
  /// re-standardization in the optimizer never triggers a refit: the
  /// factor depends only on X.
  void set_targets(std::span<const double> y);

  /// Incremental refit with one new observation: append_point(z, ...) +
  /// set_targets(y), where y holds the targets for all n+1 points.
  /// Computes the new point's distances itself (O(n d)); the overload
  /// takes them precomputed. Falls back to a full fit when the GP is
  /// empty. Posterior and likelihood match a from-scratch fit exactly.
  void incremental_fit(std::span<const double> z, std::span<const double> y);
  void incremental_fit(std::span<const double> z, std::span<const double> y,
                       std::span<const double> dist_row);

  bool fitted() const { return !x_.empty(); }
  std::size_t observation_count() const { return x_.size(); }

  struct Prediction {
    double mean = 0.0;
    double variance = 0.0;  ///< Latent-function variance (>= 0).
  };

  /// Posterior at a query point (Eq. 6). Requires fitted().
  Prediction predict(std::span<const double> z) const;

  /// Reusable workspace for the allocation-free predict overload.
  struct PredictScratch {
    std::vector<double> buf;
  };

  /// Same posterior as predict(z), but all intermediates live in the
  /// caller-owned scratch: zero heap allocations once scratch capacity
  /// has warmed up to the current observation count.
  Prediction predict(std::span<const double> z, PredictScratch& scratch) const;

  /// Reusable workspace for predict_many (sized internally in blocks, so
  /// steady-state calls never allocate).
  struct BatchScratch {
    std::vector<double> ct;   ///< transposed candidate block, dim x B
    std::vector<double> v;    ///< kernel rows / solve buffer, n x B
    std::vector<double> mu;   ///< per-candidate mean accumulator
    std::vector<double> var;  ///< per-candidate variance accumulator
  };

  /// Batched posterior for `count` query points packed row-major in
  /// zs_flat (count x dim). Fills out[0..count). Evaluates the kernel
  /// through the vectorized from_distance_many path and solves all
  /// right-hand sides in blocks, so the cost per point is a fraction of
  /// predict()'s; results agree with predict() to a few ulp (the batched
  /// exp differs from libm by <= 2 ulp). Allocation-free at steady state.
  void predict_many(std::span<const double> zs_flat, std::size_t count,
                    std::span<Prediction> out, BatchScratch& scratch) const;

  /// Log marginal likelihood of the fitted data (model-quality check used
  /// in tests): -1/2 y^T K^-1 y - 1/2 log|K| - n/2 log(2 pi).
  double log_marginal_likelihood() const;

 private:
  std::vector<double> kernel_row(std::span<const double> z) const;
  void fit_common(const std::vector<std::vector<double>>& x,
                  const std::vector<double>& y, const Matrix* dist);

  std::unique_ptr<Kernel> kernel_;
  GpConfig cfg_;
  std::vector<std::vector<double>> x_;
  std::vector<double> xflat_;  // row-major copy of x_ for the batch paths
  std::vector<double> y_centered_;
  double y_mean_ = 0.0;
  std::unique_ptr<Cholesky> chol_;
  std::vector<double> alpha_;  // K^-1 (y - mean)
  std::vector<double> krow_scratch_;  // append_point kernel-row buffer
  std::vector<double> dist_scratch_;  // incremental_fit distance buffer
};

}  // namespace hbosim::bo
