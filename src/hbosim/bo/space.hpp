#pragma once

#include <span>
#include <vector>

#include "hbosim/common/rng.hpp"

/// \file space.hpp
/// HBO's joint optimization domain (the paper's Constraints 8-10): a point
/// z = [c_1..c_N, x] where c lies on the probability simplex (per-resource
/// AI task proportions, each in [0,1], summing to 1) and x (the total
/// triangle-count ratio) lies in [R_min, 1]. Constraints are *known*, so
/// they are enforced structurally — candidates are sampled on the simplex
/// and clipped back onto it — rather than via penalties.

namespace hbosim::bo {

class SimplexBoxSpace {
 public:
  /// n_simplex >= 1 simplex coordinates followed by one box coordinate in
  /// [box_lo, box_hi].
  SimplexBoxSpace(std::size_t n_simplex, double box_lo, double box_hi);

  std::size_t simplex_dim() const { return n_simplex_; }
  std::size_t dim() const { return n_simplex_ + 1; }
  double box_lo() const { return box_lo_; }
  double box_hi() const { return box_hi_; }

  /// Uniform-ish random point: Dirichlet(1) on the simplex, uniform box.
  std::vector<double> sample(Rng& rng) const;

  /// Same draw written into `out` (size dim()) without allocating.
  /// Consumes the identical generator sequence and produces bitwise the
  /// same point as sample() — the BO hot loop packs hundreds of candidates
  /// per suggest into one flat buffer through this overload.
  void sample_into(std::span<double> out, Rng& rng) const;

  /// Project an arbitrary point into the feasible set: Euclidean simplex
  /// projection for c, clamp for x.
  std::vector<double> clip(std::span<const double> z) const;

  /// clip() into `out` (size dim(); may alias z). `scratch` is reused
  /// sort space for the simplex projection, making the call
  /// allocation-free at steady state. Bitwise identical to clip().
  void clip_into(std::span<const double> z, std::span<double> out,
                 std::vector<double>& scratch) const;

  /// Gaussian perturbation of a feasible point, re-projected. `scale` is
  /// the stddev relative to each coordinate's range.
  std::vector<double> perturb(std::span<const double> z, double scale,
                              Rng& rng) const;

  /// perturb() into `out` (size dim(); must not alias z). Same generator
  /// sequence and bitwise the same point as perturb().
  void perturb_into(std::span<const double> z, double scale, Rng& rng,
                    std::span<double> out, std::vector<double>& scratch) const;

  /// Feasibility check within tolerance.
  bool contains(std::span<const double> z, double tol = 1e-9) const;

  /// Split a feasible point into (c, x).
  static std::pair<std::vector<double>, double> split(
      std::span<const double> z);

  /// Join (c, x) into a point.
  static std::vector<double> join(std::span<const double> c, double x);

 private:
  std::size_t n_simplex_;
  double box_lo_;
  double box_hi_;
};

}  // namespace hbosim::bo
