#pragma once

#include <utility>
#include <vector>

#include "hbosim/bo/acquisition.hpp"
#include "hbosim/bo/gp.hpp"
#include "hbosim/bo/space.hpp"

/// \file optimizer.hpp
/// The sequential Bayesian optimizer (the paper's BO(D) in Algorithm 1,
/// line 1): maintains the database D of (z, phi) observations, fits the GP
/// surrogate, and proposes the next configuration by maximizing the
/// acquisition function over a candidate set (random simplex samples plus
/// local perturbations of the incumbent — the standard derivative-free
/// approach on a constrained domain, which is also how skopt's categorical/
/// constrained spaces are handled).

namespace hbosim::bo {

struct Observation {
  std::vector<double> z;
  double cost = 0.0;
};

/// Kernel families available to the optimizer (the paper uses Matern-5/2;
/// the others exist for the smoothness ablation).
enum class KernelKind { Matern52, Matern32, Rbf };

const char* kernel_kind_name(KernelKind k);

struct BoConfig {
  /// Random configurations before the surrogate takes over (paper: 5).
  int n_initial = 5;
  /// Acquisition candidates: uniform samples over the space...
  int n_random_candidates = 384;
  /// ...plus perturbations around the best observation so far, at two
  /// scales (fine refinement and coarser escapes).
  int n_local_candidates = 192;
  double local_scale = 0.06;
  double local_scale_coarse = 0.18;

  AcquisitionKind acquisition = AcquisitionKind::ExpectedImprovement;
  AcquisitionParams acq_params;

  /// Kernel family and parameters (paper: Matern-5/2, l = 1). Like
  /// skopt's gp_minimize, the length scale is refit at every suggest()
  /// by maximizing the log marginal likelihood over `length_scale`
  /// times the candidates in `length_scale_grid`; a fixed scale (grid =
  /// {1.0}) oversmooths the simplex (diameter ~1.4) and starves
  /// exploration of unvisited corners.
  KernelKind kernel = KernelKind::Matern52;
  double length_scale = 1.0;
  std::vector<double> length_scale_grid = {0.3, 0.6, 1.0};
  double sigma_f = 1.0;

  GpConfig gp;

  /// Standardize costs (zero mean, unit variance) before fitting; keeps
  /// the fixed sigma_f meaningful across scenarios.
  bool standardize = true;
};

class BayesianOptimizer {
 public:
  BayesianOptimizer(SimplexBoxSpace space, BoConfig cfg = {});

  const SimplexBoxSpace& space() const { return space_; }
  const BoConfig& config() const { return cfg_; }

  /// Next configuration to evaluate: a random feasible point during the
  /// initialization phase, else the acquisition maximizer.
  std::vector<double> suggest(Rng& rng);

  /// Record the observed cost of a configuration.
  void tell(std::vector<double> z, double cost);

  std::size_t observation_count() const { return data_.size(); }
  const std::vector<Observation>& observations() const { return data_; }
  bool in_initialization() const {
    return data_.size() < static_cast<std::size_t>(cfg_.n_initial);
  }

  /// Lowest-cost observation so far; requires at least one tell().
  const Observation& best() const;

  /// Allow a caller to swap the kernel (ablation bench). Resets nothing
  /// else; takes effect at the next suggest(). Disables the length-scale
  /// grid search.
  void set_kernel(std::unique_ptr<Kernel> kernel);

 private:
  std::unique_ptr<Kernel> make_kernel(double length_scale) const;

  SimplexBoxSpace space_;
  BoConfig cfg_;
  std::vector<Observation> data_;
  std::unique_ptr<Kernel> kernel_override_;
};

}  // namespace hbosim::bo
