#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "hbosim/bo/acquisition.hpp"
#include "hbosim/bo/gp.hpp"
#include "hbosim/bo/prior.hpp"
#include "hbosim/bo/space.hpp"

/// \file optimizer.hpp
/// The sequential Bayesian optimizer (the paper's BO(D) in Algorithm 1,
/// line 1): maintains the database D of (z, phi) observations, fits the GP
/// surrogate, and proposes the next configuration by maximizing the
/// acquisition function over a candidate set (random simplex samples plus
/// local perturbations of the incumbent — the standard derivative-free
/// approach on a constrained domain, which is also how skopt's categorical/
/// constrained spaces are handled).
///
/// The surrogate update is incremental by default: the optimizer caches
/// the pairwise distance matrix of its observations (every kernel is
/// stationary, so each length-scale candidate's Gram matrix derives from
/// the same distances), keeps one GP per length-scale grid entry alive
/// across calls, grows each GP's Cholesky factor by a rank-1 bordered
/// update per tell(), and scores acquisition candidates through the
/// batched allocation-free predict_many() path. tell() is O(n^2) and
/// suggest() drops the per-call O(G n^3) refit entirely; suggestions are
/// unchanged (see BoConfig::incremental_gp).

namespace hbosim::bo {

struct Observation {
  std::vector<double> z;
  double cost = 0.0;
};

/// Kernel families available to the optimizer (the paper uses Matern-5/2;
/// the others exist for the smoothness ablation).
enum class KernelKind { Matern52, Matern32, Rbf };

const char* kernel_kind_name(KernelKind k);

struct BoConfig {
  /// Random configurations before the surrogate takes over (paper: 5).
  int n_initial = 5;
  /// Acquisition candidates: uniform samples over the space...
  int n_random_candidates = 384;
  /// ...plus perturbations around the best observation so far, at two
  /// scales (fine refinement and coarser escapes).
  int n_local_candidates = 192;
  double local_scale = 0.06;
  double local_scale_coarse = 0.18;

  AcquisitionKind acquisition = AcquisitionKind::ExpectedImprovement;
  AcquisitionParams acq_params;

  /// Kernel family and parameters (paper: Matern-5/2, l = 1). Like
  /// skopt's gp_minimize, the length scale is refit at every suggest()
  /// by maximizing the log marginal likelihood over `length_scale`
  /// times the candidates in `length_scale_grid`; a fixed scale (grid =
  /// {1.0}) oversmooths the simplex (diameter ~1.4) and starves
  /// exploration of unvisited corners.
  KernelKind kernel = KernelKind::Matern52;
  double length_scale = 1.0;
  std::vector<double> length_scale_grid = {0.3, 0.6, 1.0};
  double sigma_f = 1.0;

  GpConfig gp;

  /// Standardize costs (zero mean, unit variance) before fitting; keeps
  /// the fixed sigma_f meaningful across scenarios.
  bool standardize = true;

  /// Maintain the surrogates incrementally (cached distance matrix, one
  /// persistent GP per length-scale grid entry, rank-1 Cholesky growth
  /// per tell, batched candidate scoring). Same suggestions as the
  /// from-scratch path on the same seed; set false to force the original
  /// full-refit-per-suggest behaviour, kept as the reference baseline
  /// for the equivalence tests and bench_bo.
  bool incremental_gp = true;

  /// Learned warm-start prior (see bo/prior.hpp). When set, the GP models
  /// the residual cost - prior->mean(z), acquisition scores add the prior
  /// mean back per candidate, the prior's seed configurations replace the
  /// first initialization draws, and its length-scale hint joins the
  /// refit grid. Null (the default) leaves every code path bitwise
  /// identical to a prior-free optimizer.
  std::shared_ptr<const SurrogatePrior> prior;
};

class BayesianOptimizer {
 public:
  BayesianOptimizer(SimplexBoxSpace space, BoConfig cfg = {});

  const SimplexBoxSpace& space() const { return space_; }
  const BoConfig& config() const { return cfg_; }

  /// Next configuration to evaluate: a random feasible point during the
  /// initialization phase, else the acquisition maximizer.
  std::vector<double> suggest(Rng& rng);

  /// Record the observed cost of a configuration. With incremental_gp
  /// this also extends the cached distance matrix (O(n d)) and grows each
  /// live surrogate's Cholesky factor in place (O(n^2) bordered update),
  /// so the next suggest() only has to re-solve for the restandardized
  /// targets instead of refactorizing.
  void tell(std::vector<double> z, double cost);

  std::size_t observation_count() const { return data_.size(); }
  const std::vector<Observation>& observations() const { return data_; }
  bool in_initialization() const {
    return data_.size() < static_cast<std::size_t>(cfg_.n_initial);
  }

  /// Lowest-cost observation so far; requires at least one tell(). O(1):
  /// the incumbent index is maintained by tell().
  const Observation& best() const;

  /// Allow a caller to swap the kernel (ablation bench). Resets nothing
  /// else; takes effect at the next suggest(). Disables the length-scale
  /// grid search.
  void set_kernel(std::unique_ptr<Kernel> kernel);

 private:
  std::unique_ptr<Kernel> make_kernel(double length_scale) const;
  std::vector<double> length_scale_grid() const;
  /// `scale` is the standardization divisor applied to the (residual)
  /// targets: candidate prior means are divided by it so acquisition
  /// compares posterior and incumbent in the same standardized units.
  std::vector<double> suggest_full_refit(Rng& rng,
                                         const std::vector<double>& y,
                                         double scale);
  std::vector<double> suggest_incremental(Rng& rng,
                                          const std::vector<double>& y,
                                          double scale);
  /// Bring the per-grid-entry GPs in sync with data_ and the targets y:
  /// (re)build from the distance cache when missing or invalidated,
  /// otherwise just re-solve the targets against the live factors.
  void sync_grid_gps(const std::vector<double>& y);

  SimplexBoxSpace space_;
  BoConfig cfg_;
  std::vector<Observation> data_;
  std::unique_ptr<Kernel> kernel_override_;

  // --- learned-prior state (cfg_.prior; empty/unused without one) ---
  std::vector<double> prior_mean_obs_;  ///< prior->mean(z_i) per observation
  std::vector<std::vector<double>> prior_seeds_;  ///< clipped seed points
  bool prior_seeds_ready_ = false;

  // --- incremental surrogate state (cfg_.incremental_gp) ---
  std::size_t best_idx_ = 0;  ///< incumbent index into data_
  Matrix dist_;               ///< pairwise observation distances, grown per tell
  struct GridGp {
    double factor;
    GaussianProcess gp;
  };
  std::vector<GridGp> grid_gps_;  ///< one live surrogate per grid entry
  // Reused per-suggest buffers (steady state: zero allocations in the
  // candidate-generation and scoring loops).
  std::vector<double> cand_flat_;
  std::vector<GaussianProcess::Prediction> preds_;
  GaussianProcess::BatchScratch batch_scratch_;
  std::vector<double> clip_scratch_;
};

}  // namespace hbosim::bo
