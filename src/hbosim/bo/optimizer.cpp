#include "hbosim/bo/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "hbosim/common/error.hpp"
#include "hbosim/common/mathx.hpp"
#include "hbosim/telemetry/telemetry.hpp"

namespace hbosim::bo {

BayesianOptimizer::BayesianOptimizer(SimplexBoxSpace space, BoConfig cfg)
    : space_(std::move(space)), cfg_(cfg) {
  HB_REQUIRE(cfg_.n_initial >= 1, "need at least one initial sample");
  HB_REQUIRE(cfg_.n_random_candidates + cfg_.n_local_candidates > 0,
             "need at least one acquisition candidate");
}

const char* kernel_kind_name(KernelKind k) {
  switch (k) {
    case KernelKind::Matern52: return "Matern52";
    case KernelKind::Matern32: return "Matern32";
    case KernelKind::Rbf: return "RBF";
  }
  return "?";
}

std::unique_ptr<Kernel> BayesianOptimizer::make_kernel(
    double length_scale) const {
  if (kernel_override_) return kernel_override_->clone();
  switch (cfg_.kernel) {
    case KernelKind::Matern32:
      return std::make_unique<Matern32>(length_scale, cfg_.sigma_f);
    case KernelKind::Rbf:
      return std::make_unique<Rbf>(length_scale, cfg_.sigma_f);
    case KernelKind::Matern52:
      break;
  }
  return std::make_unique<Matern52>(length_scale, cfg_.sigma_f);
}

void BayesianOptimizer::set_kernel(std::unique_ptr<Kernel> kernel) {
  kernel_override_ = std::move(kernel);
  // The live surrogates were built for the old kernel; drop them so the
  // next suggest() rebuilds from the (still valid) distance cache.
  grid_gps_.clear();
}

std::vector<double> BayesianOptimizer::length_scale_grid() const {
  std::vector<double> grid = cfg_.length_scale_grid;
  if (grid.empty() || kernel_override_) grid = {1.0};
  if (cfg_.prior && !kernel_override_) {
    // The prior's data-driven hint competes in the marginal-likelihood
    // refit like any other grid entry; appending (rather than replacing)
    // keeps the refit free to reject a bad estimate.
    const double factor = cfg_.prior->length_scale_factor();
    if (factor > 0.0 &&
        std::find(grid.begin(), grid.end(), factor) == grid.end()) {
      grid.push_back(factor);
    }
  }
  return grid;
}

std::vector<double> BayesianOptimizer::suggest(Rng& rng) {
  HB_TRACE_SCOPE("bo", "bo.suggest");
  HB_TELEM_COUNT("bo.suggests", 1.0);
  if (in_initialization()) {
    if (cfg_.prior) {
      if (!prior_seeds_ready_) {
        prior_seeds_ready_ = true;
        for (const std::vector<double>& s : cfg_.prior->seed_points(
                 static_cast<std::size_t>(cfg_.n_initial))) {
          if (s.size() == space_.dim()) prior_seeds_.push_back(space_.clip(s));
          if (prior_seeds_.size() >=
              static_cast<std::size_t>(cfg_.n_initial)) {
            break;
          }
        }
      }
      // Seeds stand in for the first initialization draws; any remaining
      // draws stay random so initialization keeps some exploration.
      if (data_.size() < prior_seeds_.size()) {
        HB_TELEM_COUNT("bo.prior_seed_suggests", 1.0);
        return prior_seeds_[data_.size()];
      }
    }
    return space_.sample(rng);
  }

  // Standardize the observed costs so the surrogate's fixed prior variance
  // stays commensurate with the data. With a learned prior the GP models
  // the residual cost - m0(z): subtract the cached prior means first, so
  // the surrogate only has to explain what past traffic did not predict.
  std::vector<double> y;
  y.reserve(data_.size());
  for (const auto& obs : data_) y.push_back(obs.cost);
  if (cfg_.prior) {
    for (std::size_t i = 0; i < y.size(); ++i) y[i] -= prior_mean_obs_[i];
  }
  double scale = 1.0;
  if (cfg_.standardize) {
    const double sd = stdev(y);
    if (sd > 1e-12) scale = sd;
    const double m = mean(y);
    for (auto& v : y) v = (v - m) / scale;
  }

  return cfg_.incremental_gp ? suggest_incremental(rng, y, scale)
                             : suggest_full_refit(rng, y, scale);
}

/// The original suggestion path: refit every length-scale candidate from
/// scratch, score acquisition candidates one predict() at a time. Kept
/// verbatim as the reference the incremental path is validated (and
/// benchmarked) against.
std::vector<double> BayesianOptimizer::suggest_full_refit(
    Rng& rng, const std::vector<double>& y, double scale) {
  std::vector<std::vector<double>> x;
  x.reserve(data_.size());
  for (const auto& obs : data_) x.push_back(obs.z);

  // Hyperparameter refit (see BoConfig::length_scale_grid): keep the
  // length scale that explains the standardized costs best.
  const std::vector<double> grid = length_scale_grid();
  std::unique_ptr<GaussianProcess> best_gp;
  {
    HB_TRACE_SCOPE("bo", "bo.fit");
    double best_lml = -std::numeric_limits<double>::infinity();
    for (double factor : grid) {
      auto gp_candidate = std::make_unique<GaussianProcess>(
          make_kernel(cfg_.length_scale * factor), cfg_.gp);
      gp_candidate->fit(x, y);
      const double lml = gp_candidate->log_marginal_likelihood();
      if (lml > best_lml) {
        best_lml = lml;
        best_gp = std::move(gp_candidate);
      }
    }
  }
  GaussianProcess& gp = *best_gp;

  // With a prior the GP's posterior is over standardized *residuals*; add
  // each point's (standardized) prior mean back so acquisition compares
  // total predicted costs, observed incumbent included. Constant offsets
  // cancel inside EI, so only the z-dependent part matters.
  const bool has_prior = cfg_.prior != nullptr;
  double best_y;
  if (has_prior) {
    best_y = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < y.size(); ++i)
      best_y = std::min(best_y, y[i] + prior_mean_obs_[i] / scale);
  } else {
    best_y = *std::min_element(y.begin(), y.end());
  }
  const std::vector<double>& incumbent = best().z;

  std::vector<double> best_candidate;
  double best_score = -std::numeric_limits<double>::infinity();
  auto consider = [&](std::vector<double> z) {
    const auto pred = gp.predict(z);
    const double mu =
        has_prior ? pred.mean + cfg_.prior->mean(z) / scale : pred.mean;
    const double score =
        acquisition_score(cfg_.acquisition, mu, std::sqrt(pred.variance),
                          best_y, cfg_.acq_params);
    if (score > best_score) {
      best_score = score;
      best_candidate = std::move(z);
    }
  };

  {
    // Candidate generation and acquisition scoring are interleaved in this
    // path (one predict per consider), so one span covers both.
    HB_TRACE_SCOPE("bo", "bo.score");
    for (int i = 0; i < cfg_.n_random_candidates; ++i)
      consider(space_.sample(rng));
    for (int i = 0; i < cfg_.n_local_candidates; ++i) {
      const double scale =
          (i % 2 == 0) ? cfg_.local_scale : cfg_.local_scale_coarse;
      consider(space_.perturb(incumbent, scale, rng));
    }
  }

  HB_ASSERT(!best_candidate.empty(), "no acquisition candidate evaluated");
  return best_candidate;
}

void BayesianOptimizer::sync_grid_gps(const std::vector<double>& y) {
  const std::vector<double> grid = length_scale_grid();

  // tell() keeps live surrogates in lockstep with data_; a mismatch means
  // they were invalidated (set_kernel, or created before this config path
  // existed) and must be rebuilt from the distance cache.
  const bool rebuild = grid_gps_.size() != grid.size() ||
                       (!grid_gps_.empty() &&
                        grid_gps_.front().gp.observation_count() != data_.size());
  if (rebuild) grid_gps_.clear();

  if (grid_gps_.empty()) {
    std::vector<std::vector<double>> x;
    x.reserve(data_.size());
    for (const auto& obs : data_) x.push_back(obs.z);
    grid_gps_.reserve(grid.size());
    for (double factor : grid) {
      grid_gps_.push_back(GridGp{
          factor, GaussianProcess(make_kernel(cfg_.length_scale * factor),
                                  cfg_.gp)});
      grid_gps_.back().gp.fit(x, y, dist_);
    }
    return;
  }

  // Steady state: the factors are current (grown by tell()); only the
  // standardized targets change between suggests. O(G n^2).
  for (auto& g : grid_gps_) g.gp.set_targets(y);
}

std::vector<double> BayesianOptimizer::suggest_incremental(
    Rng& rng, const std::vector<double>& y, double scale) {
  GaussianProcess* gp = nullptr;
  {
    HB_TRACE_SCOPE("bo", "bo.fit");
    sync_grid_gps(y);

    // Same length-scale selection rule as the full-refit path (first
    // strictly greater wins, grid order): the factors are identical, so
    // the marginal likelihoods — and the winner — are too.
    double best_lml = -std::numeric_limits<double>::infinity();
    for (auto& g : grid_gps_) {
      const double lml = g.gp.log_marginal_likelihood();
      if (lml > best_lml) {
        best_lml = lml;
        gp = &g.gp;
      }
    }
  }
  HB_ASSERT(gp != nullptr, "no grid surrogate available");

  // Same prior-mean adjustment as the full-refit path (see the comment
  // there): acquisition compares total predicted costs.
  const bool has_prior = cfg_.prior != nullptr;
  double best_y;
  if (has_prior) {
    best_y = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < y.size(); ++i)
      best_y = std::min(best_y, y[i] + prior_mean_obs_[i] / scale);
  } else {
    best_y = *std::min_element(y.begin(), y.end());
  }
  const std::vector<double>& incumbent = best().z;

  // Generate the candidate set with the exact RNG call sequence of the
  // full-refit path, packed flat for the batched predict.
  const std::size_t dim = space_.dim();
  const std::size_t total = static_cast<std::size_t>(cfg_.n_random_candidates) +
                            static_cast<std::size_t>(cfg_.n_local_candidates);
  cand_flat_.resize(total * dim);
  {
    HB_TRACE_SCOPE("bo", "bo.candidates");
    std::size_t w = 0;
    for (int i = 0; i < cfg_.n_random_candidates; ++i)
      space_.sample_into({cand_flat_.data() + (w++) * dim, dim}, rng);
    for (int i = 0; i < cfg_.n_local_candidates; ++i) {
      const double scale =
          (i % 2 == 0) ? cfg_.local_scale : cfg_.local_scale_coarse;
      space_.perturb_into(incumbent, scale, rng,
                          {cand_flat_.data() + (w++) * dim, dim},
                          clip_scratch_);
    }
  }

  std::size_t best_idx = 0;
  {
    HB_TRACE_SCOPE("bo", "bo.score");
    preds_.resize(total);
    gp->predict_many(cand_flat_, total, preds_, batch_scratch_);

    // First-strictly-greater argmax in generation order, matching the
    // full-refit path's incremental `consider` rule.
    double best_score = -std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < total; ++c) {
      double mu = preds_[c].mean;
      if (has_prior) {
        mu += cfg_.prior->mean({cand_flat_.data() + c * dim, dim}) / scale;
      }
      const double score = acquisition_score(
          cfg_.acquisition, mu, std::sqrt(preds_[c].variance), best_y,
          cfg_.acq_params);
      if (score > best_score) {
        best_score = score;
        best_idx = c;
      }
    }
  }
  const double* zb = cand_flat_.data() + best_idx * dim;
  return std::vector<double>(zb, zb + dim);
}

void BayesianOptimizer::tell(std::vector<double> z, double cost) {
  HB_TRACE_SCOPE("bo", "bo.tell");
  HB_TELEM_COUNT("bo.tells", 1.0);
  HB_REQUIRE(space_.contains(z, 1e-6),
             "tell(): configuration violates Constraints 8-10");
  HB_REQUIRE(std::isfinite(cost), "tell(): cost must be finite");
  if (cfg_.prior) prior_mean_obs_.push_back(cfg_.prior->mean(z));

  const std::size_t n = data_.size();
  if (cfg_.incremental_gp) {
    // Extend the cached distance matrix by the new point's row/column.
    // Every kernel is stationary, so this one matrix serves the Gram of
    // every length-scale candidate for the lifetime of the run.
    dist_.conservative_resize(n + 1, n + 1);
    std::span<double> dn = dist_.row(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double d = euclidean_distance(z, data_[i].z);
      dn[i] = d;
      dist_(i, n) = d;
    }
    dn[n] = 0.0;

    // Grow each live surrogate's Cholesky factor in place (O(n^2) per
    // grid entry). Targets are stale until the next suggest() calls
    // set_targets() with freshly standardized costs.
    for (auto& g : grid_gps_) g.gp.append_point(z, dn.first(n));
  }

  // Incumbent maintenance (best() is O(1)): strict `<` keeps the earliest
  // minimum, matching what a front-to-back rescan would select.
  if (data_.empty() || cost < data_[best_idx_].cost) best_idx_ = n;
  data_.push_back(Observation{std::move(z), cost});
}

const Observation& BayesianOptimizer::best() const {
  HB_REQUIRE(!data_.empty(), "best() with no observations");
  return data_[best_idx_];
}

}  // namespace hbosim::bo
