#include "hbosim/bo/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "hbosim/common/error.hpp"
#include "hbosim/common/mathx.hpp"

namespace hbosim::bo {

BayesianOptimizer::BayesianOptimizer(SimplexBoxSpace space, BoConfig cfg)
    : space_(std::move(space)), cfg_(cfg) {
  HB_REQUIRE(cfg_.n_initial >= 1, "need at least one initial sample");
  HB_REQUIRE(cfg_.n_random_candidates + cfg_.n_local_candidates > 0,
             "need at least one acquisition candidate");
}

const char* kernel_kind_name(KernelKind k) {
  switch (k) {
    case KernelKind::Matern52: return "Matern52";
    case KernelKind::Matern32: return "Matern32";
    case KernelKind::Rbf: return "RBF";
  }
  return "?";
}

std::unique_ptr<Kernel> BayesianOptimizer::make_kernel(
    double length_scale) const {
  if (kernel_override_) return kernel_override_->clone();
  switch (cfg_.kernel) {
    case KernelKind::Matern32:
      return std::make_unique<Matern32>(length_scale, cfg_.sigma_f);
    case KernelKind::Rbf:
      return std::make_unique<Rbf>(length_scale, cfg_.sigma_f);
    case KernelKind::Matern52:
      break;
  }
  return std::make_unique<Matern52>(length_scale, cfg_.sigma_f);
}

void BayesianOptimizer::set_kernel(std::unique_ptr<Kernel> kernel) {
  kernel_override_ = std::move(kernel);
}

std::vector<double> BayesianOptimizer::suggest(Rng& rng) {
  if (in_initialization()) return space_.sample(rng);

  // Standardize the observed costs so the surrogate's fixed prior variance
  // stays commensurate with the data.
  std::vector<double> y;
  y.reserve(data_.size());
  for (const auto& obs : data_) y.push_back(obs.cost);
  double scale = 1.0;
  if (cfg_.standardize) {
    const double sd = stdev(y);
    if (sd > 1e-12) scale = sd;
    const double m = mean(y);
    for (auto& v : y) v = (v - m) / scale;
  }

  std::vector<std::vector<double>> x;
  x.reserve(data_.size());
  for (const auto& obs : data_) x.push_back(obs.z);

  // Hyperparameter refit (see BoConfig::length_scale_grid): keep the
  // length scale that explains the standardized costs best.
  std::vector<double> grid = cfg_.length_scale_grid;
  if (grid.empty() || kernel_override_) grid = {1.0};
  std::unique_ptr<GaussianProcess> best_gp;
  double best_lml = -std::numeric_limits<double>::infinity();
  for (double factor : grid) {
    auto gp_candidate = std::make_unique<GaussianProcess>(
        make_kernel(cfg_.length_scale * factor), cfg_.gp);
    gp_candidate->fit(x, y);
    const double lml = gp_candidate->log_marginal_likelihood();
    if (lml > best_lml) {
      best_lml = lml;
      best_gp = std::move(gp_candidate);
    }
  }
  GaussianProcess& gp = *best_gp;

  const double best_y = *std::min_element(y.begin(), y.end());
  const std::vector<double>& incumbent = best().z;

  std::vector<double> best_candidate;
  double best_score = -std::numeric_limits<double>::infinity();
  auto consider = [&](std::vector<double> z) {
    const auto pred = gp.predict(z);
    const double score =
        acquisition_score(cfg_.acquisition, pred.mean,
                          std::sqrt(pred.variance), best_y, cfg_.acq_params);
    if (score > best_score) {
      best_score = score;
      best_candidate = std::move(z);
    }
  };

  for (int i = 0; i < cfg_.n_random_candidates; ++i)
    consider(space_.sample(rng));
  for (int i = 0; i < cfg_.n_local_candidates; ++i) {
    const double scale =
        (i % 2 == 0) ? cfg_.local_scale : cfg_.local_scale_coarse;
    consider(space_.perturb(incumbent, scale, rng));
  }

  HB_ASSERT(!best_candidate.empty(), "no acquisition candidate evaluated");
  return best_candidate;
}

void BayesianOptimizer::tell(std::vector<double> z, double cost) {
  HB_REQUIRE(space_.contains(z, 1e-6),
             "tell(): configuration violates Constraints 8-10");
  HB_REQUIRE(std::isfinite(cost), "tell(): cost must be finite");
  data_.push_back(Observation{std::move(z), cost});
}

const Observation& BayesianOptimizer::best() const {
  HB_REQUIRE(!data_.empty(), "best() with no observations");
  std::size_t best_idx = 0;
  for (std::size_t i = 1; i < data_.size(); ++i) {
    if (data_[i].cost < data_[best_idx].cost) best_idx = i;
  }
  return data_[best_idx];
}

}  // namespace hbosim::bo
