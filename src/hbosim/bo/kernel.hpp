#pragma once

#include <memory>
#include <span>

/// \file kernel.hpp
/// Covariance kernels for the Gaussian-process surrogate. The paper uses
/// Matérn with nu = 5/2 and length scale l = 1 (its Eq. 7); an RBF kernel
/// is provided for the ablation bench.
///
/// All hbosim kernels are stationary: k(a, b) depends only on the
/// Euclidean distance r = ||a - b||. The class contract exposes that
/// structure directly (from_distance) so the optimizer can cache the
/// pairwise distance matrix once and re-derive the Gram matrix for every
/// length-scale candidate in O(n^2) with no repeated distance work.

namespace hbosim::bo {

class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Covariance as a function of distance r = ||a - b|| >= 0. This is the
  /// kernel's defining form; it uses libm transcendentals, so values are
  /// bitwise reproducible against operator().
  virtual double from_distance(double r) const = 0;

  /// Batched covariance from distances: out[i] = k(r[i]). out may alias
  /// r. The default loops over from_distance; subclasses override with a
  /// vectorized form (common/fastmath) that may differ from the scalar
  /// path by a couple of ulp — callers that need bitwise agreement with
  /// from_distance (Gram construction) must use the scalar entry point.
  virtual void from_distance_many(std::span<const double> r,
                                  std::span<double> out) const;

  /// Covariance k(a, b); a and b must share the space's dimension.
  double operator()(std::span<const double> a, std::span<const double> b) const;

  /// Prior variance k(x, x).
  virtual double prior_variance() const = 0;

  virtual std::unique_ptr<Kernel> clone() const = 0;
};

/// Matérn nu=5/2 (Eq. 7):
///   k(r) = sigma_f^2 * (1 + sqrt(5) r / l + 5 r^2 / (3 l^2)) * exp(-sqrt(5) r / l).
class Matern52 final : public Kernel {
 public:
  explicit Matern52(double length_scale = 1.0, double sigma_f = 1.0);

  double from_distance(double r) const override;
  void from_distance_many(std::span<const double> r,
                          std::span<double> out) const override;
  double prior_variance() const override;
  std::unique_ptr<Kernel> clone() const override;

  double length_scale() const { return length_; }

 private:
  double length_;
  double sigma_f2_;
};

/// Squared-exponential kernel: k(r) = sigma_f^2 exp(-r^2 / (2 l^2)).
class Rbf final : public Kernel {
 public:
  explicit Rbf(double length_scale = 1.0, double sigma_f = 1.0);

  double from_distance(double r) const override;
  void from_distance_many(std::span<const double> r,
                          std::span<double> out) const override;
  double prior_variance() const override;
  std::unique_ptr<Kernel> clone() const override;

 private:
  double length_;
  double sigma_f2_;
};

/// Matérn nu=3/2: k(r) = sigma_f^2 (1 + sqrt(3) r / l) exp(-sqrt(3) r / l).
/// For the kernel-smoothness ablation (smaller nu = rougher prior).
class Matern32 final : public Kernel {
 public:
  explicit Matern32(double length_scale = 1.0, double sigma_f = 1.0);

  double from_distance(double r) const override;
  void from_distance_many(std::span<const double> r,
                          std::span<double> out) const override;
  double prior_variance() const override;
  std::unique_ptr<Kernel> clone() const override;

 private:
  double length_;
  double sigma_f2_;
};

}  // namespace hbosim::bo
