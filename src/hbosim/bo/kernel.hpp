#pragma once

#include <memory>
#include <span>

/// \file kernel.hpp
/// Covariance kernels for the Gaussian-process surrogate. The paper uses
/// Matérn with nu = 5/2 and length scale l = 1 (its Eq. 7); an RBF kernel
/// is provided for the ablation bench.

namespace hbosim::bo {

class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Covariance k(a, b); a and b must share the space's dimension.
  virtual double operator()(std::span<const double> a,
                            std::span<const double> b) const = 0;

  /// Prior variance k(x, x).
  virtual double prior_variance() const = 0;

  virtual std::unique_ptr<Kernel> clone() const = 0;
};

/// Matérn nu=5/2 (Eq. 7):
///   k(r) = sigma_f^2 * (1 + sqrt(5) r / l + 5 r^2 / (3 l^2)) * exp(-sqrt(5) r / l).
class Matern52 final : public Kernel {
 public:
  explicit Matern52(double length_scale = 1.0, double sigma_f = 1.0);

  double operator()(std::span<const double> a,
                    std::span<const double> b) const override;
  double prior_variance() const override;
  std::unique_ptr<Kernel> clone() const override;

  double length_scale() const { return length_; }

 private:
  double length_;
  double sigma_f2_;
};

/// Squared-exponential kernel: k(r) = sigma_f^2 exp(-r^2 / (2 l^2)).
class Rbf final : public Kernel {
 public:
  explicit Rbf(double length_scale = 1.0, double sigma_f = 1.0);

  double operator()(std::span<const double> a,
                    std::span<const double> b) const override;
  double prior_variance() const override;
  std::unique_ptr<Kernel> clone() const override;

 private:
  double length_;
  double sigma_f2_;
};

/// Matérn nu=3/2: k(r) = sigma_f^2 (1 + sqrt(3) r / l) exp(-sqrt(3) r / l).
/// For the kernel-smoothness ablation (smaller nu = rougher prior).
class Matern32 final : public Kernel {
 public:
  explicit Matern32(double length_scale = 1.0, double sigma_f = 1.0);

  double operator()(std::span<const double> a,
                    std::span<const double> b) const override;
  double prior_variance() const override;
  std::unique_ptr<Kernel> clone() const override;

 private:
  double length_;
  double sigma_f2_;
};

}  // namespace hbosim::bo
