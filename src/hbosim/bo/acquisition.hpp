#pragma once

/// \file acquisition.hpp
/// Acquisition functions for cost *minimization*. The paper selects
/// Expected Improvement (EI) after comparing it with Probability of
/// Improvement (too conservative) and Lower Confidence Bound (needs a
/// tuned exploration parameter) — all three are implemented so the
/// ablation bench can repeat that comparison.
///
/// Every function returns a score where LARGER IS BETTER for the point
/// being considered.

namespace hbosim::bo {

enum class AcquisitionKind {
  ExpectedImprovement,
  ProbabilityOfImprovement,
  LowerConfidenceBound,
};

const char* acquisition_name(AcquisitionKind k);

/// EI for minimization: E[max(best - f(z) - xi, 0)]
///   = (best - mu - xi) Phi(u) + sigma phi(u),  u = (best - mu - xi)/sigma.
/// With sigma == 0 this degenerates to max(best - mu - xi, 0).
double expected_improvement(double mu, double sigma, double best_observed,
                            double xi = 0.0);

/// PI for minimization: Phi((best - mu - xi)/sigma).
double probability_of_improvement(double mu, double sigma,
                                  double best_observed, double xi = 0.0);

/// LCB score for minimization: -(mu - kappa * sigma) so that larger means
/// a more promising (lower, or more uncertain) point.
double lower_confidence_bound_score(double mu, double sigma, double kappa);

struct AcquisitionParams {
  double xi = 0.01;    ///< Improvement margin for EI/PI.
  double kappa = 2.0;  ///< Exploration weight for LCB.
};

/// Dispatch on the kind.
double acquisition_score(AcquisitionKind kind, double mu, double sigma,
                         double best_observed, const AcquisitionParams& p);

}  // namespace hbosim::bo
