#include "hbosim/scenario/scenarios.hpp"

#include <map>
#include <mutex>

#include "hbosim/common/error.hpp"

namespace hbosim::scenario {

const char* object_set_name(ObjectSet s) {
  switch (s) {
    case ObjectSet::SC1: return "SC1";
    case ObjectSet::SC2: return "SC2";
    case ObjectSet::UserStudyMix: return "UserStudyMix";
    case ObjectSet::ThermalSoak: return "ThermalSoak";
  }
  return "?";
}

const char* task_set_name(TaskSet t) {
  switch (t) {
    case TaskSet::CF1: return "CF1";
    case TaskSet::CF2: return "CF2";
  }
  return "?";
}

namespace {

/// Table II triangle budgets.
const std::map<std::string, std::uint64_t>& mesh_catalog() {
  static const std::map<std::string, std::uint64_t> catalog = {
      {"apricot", 86016},  {"bike", 178552},   {"plane", 146803},
      {"splane", 146803},  {"Cocacola", 94080}, {"cabin", 2324},
      {"andy", 2304},      {"ATV", 4907},      {"hammer", 6250},
      // Extra asset used by Fig. 8's "heavy 10th object" (~150k triangles).
      {"statue", 150000},
  };
  return catalog;
}

}  // namespace

std::shared_ptr<const render::MeshAsset> mesh_asset(const std::string& name) {
  static std::mutex mu;
  static std::map<std::string, std::shared_ptr<const render::MeshAsset>> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(name);
  if (it != cache.end()) return it->second;

  auto cat = mesh_catalog().find(name);
  HB_REQUIRE(cat != mesh_catalog().end(), "unknown mesh asset: " + name);
  auto asset = std::make_shared<const render::MeshAsset>(
      name, cat->second,
      render::synthesize_degradation_params(name, cat->second));
  cache.emplace(name, asset);
  return asset;
}

std::vector<ObjectPlacement> object_placements(ObjectSet set) {
  std::vector<ObjectPlacement> out;
  auto place = [&](const std::string& name, double distance) {
    out.push_back(ObjectPlacement{mesh_asset(name), distance});
  };
  switch (set) {
    case ObjectSet::SC1:
      place("apricot", 1.2);
      place("bike", 2.0);
      place("plane", 2.5);
      place("plane", 3.0);
      place("plane", 3.4);
      place("plane", 2.8);
      place("splane", 1.8);
      place("Cocacola", 1.5);
      place("Cocacola", 2.2);
      break;
    case ObjectSet::SC2:
      place("cabin", 1.4);
      place("andy", 1.0);
      place("andy", 1.8);
      place("ATV", 2.2);
      place("ATV", 2.6);
      place("hammer", 1.2);
      place("hammer", 2.0);
      break;
    case ObjectSet::UserStudyMix:
      // "a mix of heavy and lightweight objects" (Section V-E), heavy
      // enough that rendering at full quality contends with CF1.
      place("bike", 1.6);
      place("plane", 2.4);
      place("plane", 1.9);
      place("splane", 2.1);
      place("statue", 1.5);
      place("Cocacola", 1.3);
      place("cabin", 1.8);
      place("andy", 1.1);
      place("hammer", 2.0);
      break;
    case ObjectSet::ThermalSoak:
      // All heavy assets at close range: ~1M culled triangles sustained,
      // which keeps the GPU render share pinned near max_gpu_load. With
      // CF1 on top this is the load a thermal governor cannot ignore.
      place("bike", 1.2);
      place("plane", 1.4);
      place("plane", 1.6);
      place("plane", 1.8);
      place("splane", 1.3);
      place("statue", 1.1);
      place("statue", 1.5);
      place("apricot", 1.2);
      place("Cocacola", 1.4);
      break;
  }
  return out;
}

std::vector<TaskSpec> task_specs(TaskSet set) {
  switch (set) {
    case TaskSet::CF1:
      // Table II CF1: six tasks. Three are GPU-preferred in isolation
      // (mnist, two model-metadata) and three NNAPI-preferred
      // (mobilenetDetv1, mobilenet-v1, efficientclass-lite0) — exactly
      // the split Section V-B describes.
      return {
          {"mnist", "mnist"},
          {"mobilenetDetv1", "mobnetD1"},
          {"model-metadata", "mmdata1"},
          {"model-metadata", "mmdata2"},
          {"mobilenet-v1", "mobnetC1"},
          {"efficientclass-lite0", "efflite1"},
      };
    case TaskSet::CF2:
      return {
          {"mnist", "mnist"},
          {"mobilenetDetv1", "mobnetD1"},
          {"efficientclass-lite0", "efflite1"},
      };
  }
  HB_ASSERT(false, "unreachable task set");
  return {};
}

std::uint64_t total_max_triangles(ObjectSet set) {
  std::uint64_t total = 0;
  for (const ObjectPlacement& p : object_placements(set))
    total += p.asset->max_triangles();
  return total;
}

std::unique_ptr<app::MarApp> make_app(const soc::DeviceProfile& device,
                                      ObjectSet objects, TaskSet tasks,
                                      std::uint64_t seed) {
  return make_app(device, objects, tasks, seed, app::MarAppConfig{});
}

std::unique_ptr<app::MarApp> make_app(const soc::DeviceProfile& device,
                                      ObjectSet objects, TaskSet tasks,
                                      std::uint64_t seed,
                                      const app::MarAppConfig& base) {
  app::MarAppConfig cfg = base;
  cfg.engine.seed = seed;
  auto mar = std::make_unique<app::MarApp>(device, cfg);
  for (const ObjectPlacement& p : object_placements(objects))
    mar->add_object(p.asset, p.distance_m);
  for (const TaskSpec& t : task_specs(tasks)) mar->add_task(t.model, t.label);
  return mar;
}

std::vector<OffloadMatrixCell> offload_matrix() {
  // The soak cells are *environmental* soak, not just a heavy workload:
  // a pocket-warm 35 C ambient and a die already at 62 C, one degree
  // under the hottest builtin governor's 63 C trip point. Every builtin
  // device then rides the bottom of the OPP ladder (0.40x frequency)
  // within seconds, which is the regime where shipping an inference over
  // even a congested last-hop beats running it on the crawling local
  // accelerator. The light cells are a 26 C desk with a mildly warm die.
  return {
      {ObjectSet::SC2, TaskSet::CF2, "lan", "light_cf2_x_lan", 26.0, 45.0},
      {ObjectSet::SC2, TaskSet::CF2, "congested", "light_cf2_x_congested",
       26.0, 45.0},
      {ObjectSet::ThermalSoak, TaskSet::CF1, "lan", "soak_cf1_x_lan", 35.0,
       62.0},
      {ObjectSet::ThermalSoak, TaskSet::CF1, "congested",
       "soak_cf1_x_congested", 35.0, 62.0},
  };
}

}  // namespace hbosim::scenario
