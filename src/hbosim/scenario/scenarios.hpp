#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hbosim/app/mar_app.hpp"
#include "hbosim/render/mesh.hpp"
#include "hbosim/soc/device.hpp"

/// \file scenarios.hpp
/// The paper's Table II example scenarios: two virtual-object sets (SC1
/// heavy, SC2 light), two AI tasksets (CF1 six tasks, CF2 three tasks),
/// plus the mixed heavy/light set of the user study (Section V-E).
/// Placement distances are not given in the paper; the fixed values here
/// span the 1-3.5 m range its screenshots show and are deterministic so
/// every bench sees the same scene.

namespace hbosim::scenario {

enum class ObjectSet {
  SC1,
  SC2,
  UserStudyMix,
  /// Sustained worst-case load for power/thermal studies: every heavy
  /// Table II asset on screen at once, close enough that culling removes
  /// almost nothing. Drives the GPU near its render ceiling so a
  /// power-enabled session heats into its throttle band within a few
  /// minutes of simulated time.
  ThermalSoak,
};
enum class TaskSet { CF1, CF2 };

const char* object_set_name(ObjectSet s);
const char* task_set_name(TaskSet t);

struct ObjectPlacement {
  std::shared_ptr<const render::MeshAsset> asset;
  double distance_m;
};

struct TaskSpec {
  std::string model;
  std::string label;
};

/// Mesh asset by Table II name ("apricot", "bike", ...); cached so every
/// caller shares one immutable asset (and its trained Eq. 1 parameters).
std::shared_ptr<const render::MeshAsset> mesh_asset(const std::string& name);

/// All placements of an object set (Table II counts and triangle budgets).
std::vector<ObjectPlacement> object_placements(ObjectSet set);

/// All task instances of a taskset (Table II counts; instance labels
/// follow the paper's `<model>_<k>` style for duplicates).
std::vector<TaskSpec> task_specs(TaskSet set);

/// Total T^max of an object set.
std::uint64_t total_max_triangles(ObjectSet set);

/// Build a MarApp on `device`, place the object set, register the
/// taskset (each task starting on its statically best delegate), and
/// return it ready for start(). `seed` perturbs the engine noise stream.
std::unique_ptr<app::MarApp> make_app(const soc::DeviceProfile& device,
                                      ObjectSet objects, TaskSet tasks,
                                      std::uint64_t seed = 0x5EEDu);

/// Same, but starting from a caller-supplied app configuration (e.g. a
/// tuned decimation service or control period); only the engine seed is
/// overridden with `seed`.
std::unique_ptr<app::MarApp> make_app(const soc::DeviceProfile& device,
                                      ObjectSet objects, TaskSet tasks,
                                      std::uint64_t seed,
                                      const app::MarAppConfig& base);

/// One cell of the offload study matrix: a workload (object set x
/// taskset) crossed with an edge service preset name (resolved through
/// edgesvc::edge_service_preset by the consumer — a string here keeps
/// scenario free of an edgesvc dependency).
struct OffloadMatrixCell {
  ObjectSet objects;
  TaskSet tasks;
  std::string edge_preset;  ///< "lan" | "wifi" | "congested".
  std::string name;         ///< e.g. "soak_cf1_x_congested".
  /// Thermal environment of the cell (power::PowerConfig knobs): the soak
  /// cells are pocket-warm with a die already at the governor trip point,
  /// the light cells a tempered desk. See offload_matrix() for why.
  double ambient_c = 26.0;
  double initial_temp_c = 45.0;
};

/// The ROADMAP's ThermalSoak x congested-link study matrix: a light
/// baseline workload and the sustained thermal-soak workload, each
/// against a clean LAN and a congested last-hop — the four corners where
/// the edge-in-the-simplex trade-off flips (offload pays on a hot die
/// behind a good link; it drains the battery for nothing on a lossy one).
std::vector<OffloadMatrixCell> offload_matrix();

}  // namespace hbosim::scenario
