#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hbosim/ai/engine.hpp"
#include "hbosim/ai/profiler.hpp"
#include "hbosim/app/metrics.hpp"
#include "hbosim/des/simulator.hpp"
#include "hbosim/edge/decimation_service.hpp"
#include "hbosim/power/power_manager.hpp"
#include "hbosim/render/render_load.hpp"
#include "hbosim/render/scene.hpp"
#include "hbosim/soc/device.hpp"

/// \file mar_app.hpp
/// The example MAR application of Section V-A: one object composing the
/// whole simulated stack — SoC runtime, augmented scene with render-load
/// coupling, background AI taskset, and the edge decimation service — and
/// exposing exactly the control surface HBO (and the baselines) need:
/// apply an allocation, apply per-object triangle ratios, measure a control
/// period.

namespace hbosim::app {

struct MarAppConfig {
  ai::EngineConfig engine;
  edge::DecimationServiceConfig decimation;
  render::CullingModel culling;
  /// Length of one measurement/control period (the paper samples reward
  /// every 2 seconds).
  double control_period_s = 2.0;
  /// Repetitions used by the isolation profiler.
  int profile_reps = 3;

  /// Attach a power/thermal/DVFS model (hbosim::power) to the session.
  /// Off by default: with power disabled the app's event sequence is
  /// bitwise identical to builds that predate the power subsystem.
  bool enable_power = false;
  /// Tick/ambient/governor knobs; only read when enable_power is set.
  power::PowerConfig power;
  /// Explicit device power model. When unset the model is looked up by
  /// the device profile's name via power::find_power_model (which throws
  /// for devices without a builtin model).
  std::optional<power::DevicePowerModel> power_model;
};

class MarApp {
 public:
  /// The device profile is copied: a MarApp owns its device description,
  /// so callers may pass temporaries (e.g. `MarApp app(soc::pixel7())`).
  MarApp(const soc::DeviceProfile& device, MarAppConfig cfg = {});

  MarApp(const MarApp&) = delete;
  MarApp& operator=(const MarApp&) = delete;

  // --- composition access -------------------------------------------------
  des::Simulator& sim() { return sim_; }
  const soc::DeviceProfile& device() const { return device_; }
  soc::SocRuntime& soc() { return soc_; }
  render::Scene& scene() { return scene_; }
  ai::InferenceEngine& engine() { return engine_; }
  edge::DecimationService& decimation() { return decimation_; }
  const MarAppConfig& config() const { return cfg_; }

  /// The attached power manager, or nullptr when power is disabled.
  power::PowerManager* power() { return power_.get(); }
  const power::PowerManager* power() const { return power_.get(); }

  /// Route decimation cache misses through a contended edge service
  /// (edgesvc::EdgeClient), wired to this app's simulation clock. Pass
  /// nullptr to restore the closed-form NetworkModel path. The client
  /// must outlive the app.
  void attach_edge(edgesvc::EdgeClient* client);

  // --- scene management ----------------------------------------------------
  /// Place an object at full quality; returns its id.
  ObjectId add_object(std::shared_ptr<const render::MeshAsset> asset,
                      double distance_m);
  void set_user_distance_scale(double scale);

  // --- taskset management --------------------------------------------------
  /// Add a background AI task starting on `delegate` (defaults to the
  /// statically best one). Labels must be unique.
  TaskId add_task(const std::string& model, const std::string& label,
                  std::optional<soc::Delegate> delegate = std::nullopt);

  /// Ordered task ids / model names, in creation order (HBO's task list).
  std::vector<TaskId> tasks() const { return task_order_; }
  std::vector<std::string> task_models() const;
  std::vector<std::string> task_labels() const;
  std::vector<soc::Delegate> current_allocation() const;

  /// Begin executing inference loops (idempotent).
  void start();

  // --- control surface (HBO / baselines) -----------------------------------
  /// Apply a per-task delegate assignment (ordered like tasks()).
  void apply_allocation(const std::vector<soc::Delegate>& delegates);

  /// Apply per-task edge shares (ordered like tasks()): the fraction of
  /// each task's inferences routed to the remote executor. Applied like
  /// an allocation — from each task's next inference. No-op semantics:
  /// all-zero shares leave the engine's behavior bitwise unchanged.
  void apply_offload_shares(const std::vector<double>& shares);

  /// Install the remote inference backend (hbosim::offload). Must be set
  /// before any nonzero share takes effect; shares without an executor
  /// silently run locally.
  void set_remote_executor(ai::InferenceEngine::RemoteExecutor exec);

  /// Mean-of-applied-means edge share across apply_offload_shares calls
  /// (the fleet's mean_edge_share roll-up source). Zero samples before
  /// the first call.
  const RunningStat& offload_share_stat() const {
    return offload_share_stat_;
  }

  /// Apply per-object decimation ratios (ordered like scene().object_ids()).
  /// Each version is requested from the decimation service; cache misses
  /// charge their download delay before the redraw takes effect.
  void apply_object_ratios(const std::vector<double>& ratios);

  /// Convenience: one ratio for every object.
  void apply_uniform_ratio(double ratio);

  /// Advance the simulation by `seconds` (default: one control period)
  /// while measuring, and return the period's metrics.
  PeriodMetrics run_period(double seconds = -1.0);

  /// Isolation profiles (tau^e and the Table-I-style matrix) for the
  /// current taskset. Computed lazily, cached per model.
  const ai::ProfileTable& profiles();

  /// Expected latency tau^e (ms) for a task.
  double expected_ms(TaskId id);

  /// Instantaneous metrics snapshot without advancing time (uses the
  /// current measurement window; useful for activation monitoring).
  PeriodMetrics snapshot();

  /// Perceptual scale the market's resolution knob applies to reported
  /// quality (r^gamma, computed by the fleet from its allocation): a
  /// tenant rendering at reduced resolution perceives proportionally
  /// less of the scene's mesh quality. The default 1.0 leaves every
  /// metric bitwise untouched.
  void set_quality_scale(double scale);
  double quality_scale() const { return quality_scale_; }

 private:
  void ensure_profiles();

  MarAppConfig cfg_;
  const soc::DeviceProfile device_;  // owned copy; SocRuntime refers to it
  des::Simulator sim_;
  soc::SocRuntime soc_;
  render::Scene scene_;
  render::RenderLoadBinder render_binder_;
  ai::InferenceEngine engine_;
  edge::DecimationService decimation_;
  std::unique_ptr<power::PowerManager> power_;
  std::vector<TaskId> task_order_;
  std::unique_ptr<ai::ProfileTable> profiles_;
  double quality_scale_ = 1.0;
  RunningStat offload_share_stat_;
};

}  // namespace hbosim::app
