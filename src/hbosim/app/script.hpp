#pragma once

#include <functional>
#include <string>
#include <vector>

#include "hbosim/app/mar_app.hpp"
#include "hbosim/des/trace.hpp"

/// \file script.hpp
/// Scripted experiment timelines. The paper's motivation study (Fig. 2)
/// and activation study (Fig. 8) are sequences of timed interventions —
/// "at t=25s move deeplabv3_1 to NNAPI", "at t=150s add two objects" —
/// while task latencies are recorded continuously. ScriptRunner replays
/// such a timeline on a MarApp and captures every inference completion
/// into a TraceRecorder (one series per task label), with the annotations
/// the paper prints along the time axis.

namespace hbosim::app {

class ScriptRunner {
 public:
  using Action = std::function<void(MarApp&)>;

  ScriptRunner(MarApp& app, des::TraceRecorder& trace);
  ~ScriptRunner();

  ScriptRunner(const ScriptRunner&) = delete;
  ScriptRunner& operator=(const ScriptRunner&) = delete;

  /// Schedule `action` at absolute sim time `at` with a marker label
  /// (e.g. "N1" for "instance 1 -> NNAPI"). Must be in the future.
  void at(SimTime when, const std::string& annotation, Action action);

  /// Convenience wrappers producing the paper's annotation style.
  void reallocate_at(SimTime when, TaskId task, soc::Delegate d,
                     int instance_number);
  void add_object_at(SimTime when,
                     std::shared_ptr<const render::MeshAsset> asset,
                     double distance_m);
  void set_distance_scale_at(SimTime when, double scale);

  /// Start the app (if needed) and run the simulation to `end`, recording
  /// every inference latency (milliseconds) into the trace.
  void run_until(SimTime end);

 private:
  MarApp& app_;
  des::TraceRecorder& trace_;
};

}  // namespace hbosim::app
