#pragma once

#include <map>
#include <string>
#include <vector>

#include "hbosim/common/types.hpp"

/// \file metrics.hpp
/// Per-control-period measurements the evaluation components consume
/// (Fig. 3's "AI Latency Monitor" + "Quality Estimator" outputs).

namespace hbosim::app {

/// Everything measured over one control period.
struct PeriodMetrics {
  SimTime period_start = 0.0;
  SimTime period_end = 0.0;

  /// Average virtual-object quality Q_t (Eq. 2) at period end.
  double average_quality = 1.0;

  /// Average normalized AI latency epsilon_t (Eq. 4).
  double latency_ratio = 0.0;

  /// Mean measured latency (ms) per task label.
  std::map<std::string, double> task_latency_ms;

  /// Isolation expectation tau^e (ms) per task label.
  std::map<std::string, double> task_expected_ms;

  /// Inference completions observed in the window (across all tasks).
  std::size_t inference_count = 0;

  /// Total triangle ratio on screen when measured.
  double triangle_ratio = 1.0;

  // --- power/thermal (populated only when the app runs with power
  // simulation enabled; defaults are the "cool, full clocks, full
  // battery" state so power-agnostic consumers see neutral values) ------
  /// Mean battery draw over the period (W); 0 without a power model.
  double avg_power_w = 0.0;
  /// Die temperature at period end (C); 0 without a power model.
  double die_temp_c = 0.0;
  /// DVFS frequency scale at period end (1.0 = nominal clocks).
  double freq_scale = 1.0;
  /// Battery state of charge at period end, in [0, 1].
  double battery_soc = 1.0;

  /// Reward of Eq. 3 for a given latency/quality weight.
  double reward(double w) const { return average_quality - w * latency_ratio; }

  /// Mean measured latency across tasks (ms), for figure dumps.
  double mean_task_latency_ms() const;
};

}  // namespace hbosim::app
