#include "hbosim/app/script.hpp"

#include "hbosim/common/error.hpp"
#include "hbosim/common/types.hpp"

namespace hbosim::app {

ScriptRunner::ScriptRunner(MarApp& app, des::TraceRecorder& trace)
    : app_(app), trace_(trace) {
  app_.engine().set_observer(
      [this](const ai::AiTask& task, double latency_s) {
        trace_.record(task.label, app_.sim().now(), to_ms(latency_s));
      });
}

ScriptRunner::~ScriptRunner() { app_.engine().set_observer(nullptr); }

void ScriptRunner::at(SimTime when, const std::string& annotation,
                      Action action) {
  HB_REQUIRE(action != nullptr, "script action must be callable");
  app_.sim().schedule_at(when, [this, when, annotation,
                                action = std::move(action)] {
    if (!annotation.empty()) trace_.mark(when, annotation);
    action(app_);
  });
}

void ScriptRunner::reallocate_at(SimTime when, TaskId task, soc::Delegate d,
                                 int instance_number) {
  const std::string annotation =
      std::string(1, soc::delegate_code(d)) + std::to_string(instance_number);
  at(when, annotation,
     [task, d](MarApp& app) { app.engine().set_delegate(task, d); });
}

void ScriptRunner::add_object_at(
    SimTime when, std::shared_ptr<const render::MeshAsset> asset,
    double distance_m) {
  at(when, "+obj", [asset = std::move(asset), distance_m](MarApp& app) {
    app.add_object(asset, distance_m);
  });
}

void ScriptRunner::set_distance_scale_at(SimTime when, double scale) {
  at(when, "dist", [scale](MarApp& app) {
    app.set_user_distance_scale(scale);
  });
}

void ScriptRunner::run_until(SimTime end) {
  app_.start();
  app_.sim().run_until(end);
}

}  // namespace hbosim::app
