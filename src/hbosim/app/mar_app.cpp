#include "hbosim/app/mar_app.hpp"

#include <algorithm>
#include <cmath>

#include "hbosim/ai/latency_stats.hpp"
#include "hbosim/common/error.hpp"

namespace hbosim::app {

MarApp::MarApp(const soc::DeviceProfile& device, MarAppConfig cfg)
    : cfg_(cfg),
      device_(device),
      soc_(sim_, device_),
      scene_(cfg.culling),
      render_binder_(scene_, soc_),
      engine_(sim_, soc_, cfg.engine),
      decimation_(cfg.decimation) {
  HB_REQUIRE(cfg_.control_period_s > 0.0, "control period must be positive");
  if (cfg_.enable_power) {
    power::DevicePowerModel model =
        cfg_.power_model ? *cfg_.power_model
                         : power::find_power_model(device_.name());
    power_ = std::make_unique<power::PowerManager>(sim_, soc_,
                                                   std::move(model),
                                                   cfg_.power);
  }
}

ObjectId MarApp::add_object(std::shared_ptr<const render::MeshAsset> asset,
                            double distance_m) {
  return scene_.add_object(std::move(asset), distance_m);
}

void MarApp::set_user_distance_scale(double scale) {
  scene_.set_user_distance_scale(scale);
}

TaskId MarApp::add_task(const std::string& model, const std::string& label,
                        std::optional<soc::Delegate> delegate) {
  for (TaskId id : task_order_) {
    HB_REQUIRE(engine_.task(id).label != label,
               "duplicate task label: " + label);
  }
  const soc::Delegate d = delegate.value_or(device_.best_delegate(model));
  const TaskId id = engine_.add_task(model, label, d);
  task_order_.push_back(id);
  profiles_.reset();  // taskset changed; recompute lazily
  return id;
}

std::vector<std::string> MarApp::task_models() const {
  std::vector<std::string> out;
  out.reserve(task_order_.size());
  for (TaskId id : task_order_) out.push_back(engine_.task(id).model);
  return out;
}

std::vector<std::string> MarApp::task_labels() const {
  std::vector<std::string> out;
  out.reserve(task_order_.size());
  for (TaskId id : task_order_) out.push_back(engine_.task(id).label);
  return out;
}

std::vector<soc::Delegate> MarApp::current_allocation() const {
  std::vector<soc::Delegate> out;
  out.reserve(task_order_.size());
  for (TaskId id : task_order_) out.push_back(engine_.task(id).delegate);
  return out;
}

void MarApp::start() { engine_.start(); }

void MarApp::apply_allocation(const std::vector<soc::Delegate>& delegates) {
  HB_REQUIRE(delegates.size() == task_order_.size(),
             "allocation size must match the taskset");
  for (std::size_t i = 0; i < delegates.size(); ++i)
    engine_.set_delegate(task_order_[i], delegates[i]);
}

void MarApp::apply_offload_shares(const std::vector<double>& shares) {
  HB_REQUIRE(shares.size() == task_order_.size(),
             "offload share vector size must match the taskset");
  double sum = 0.0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    engine_.set_edge_share(task_order_[i], shares[i]);
    sum += shares[i];
  }
  offload_share_stat_.add(shares.empty()
                              ? 0.0
                              : sum / static_cast<double>(shares.size()));
}

void MarApp::set_remote_executor(ai::InferenceEngine::RemoteExecutor exec) {
  engine_.set_remote_executor(std::move(exec));
}

void MarApp::attach_edge(edgesvc::EdgeClient* client) {
  if (client == nullptr) {
    decimation_.attach_edge(nullptr, {});
    return;
  }
  decimation_.attach_edge(client, [this] { return sim_.now(); });
}

void MarApp::apply_object_ratios(const std::vector<double>& ratios) {
  const std::vector<ObjectId> ids = scene_.object_ids();
  HB_REQUIRE(ratios.size() == ids.size(),
             "ratio vector size must match the scene");
  double max_delay = 0.0;
  std::vector<std::pair<ObjectId, double>> served;
  served.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto& obj = scene_.object(ids[i]);
    const edge::DecimationResult res =
        decimation_.request(obj.asset(), ratios[i]);
    max_delay = std::max(max_delay, res.delay_s);
    // An `unchanged` fallback means the edge path failed with nothing
    // cached: the object keeps its current version, so there is nothing
    // to redraw for it.
    if (!res.unchanged) served.emplace_back(ids[i], res.served_ratio);
  }
  // Versions download in parallel; the redraw happens once the slowest
  // arrives. Ratios are captured by value so later calls cannot clobber
  // this redraw's payload.
  sim_.schedule_after(max_delay, [this, served = std::move(served)] {
    for (const auto& [id, ratio] : served) {
      if (scene_.has_object(id)) scene_.set_ratio(id, ratio);
    }
  });
}

void MarApp::apply_uniform_ratio(double ratio) {
  apply_object_ratios(
      std::vector<double>(scene_.object_count(), ratio));
}

void MarApp::ensure_profiles() {
  if (profiles_) return;
  profiles_ = std::make_unique<ai::ProfileTable>(
      ai::profile_models(device_, task_models(), cfg_.profile_reps));
}

const ai::ProfileTable& MarApp::profiles() {
  ensure_profiles();
  return *profiles_;
}

double MarApp::expected_ms(TaskId id) {
  ensure_profiles();
  return profiles_->get(engine_.task(id).model).expected_ms;
}

PeriodMetrics MarApp::run_period(double seconds) {
  const double span = seconds < 0.0 ? cfg_.control_period_s : seconds;
  HB_REQUIRE(span > 0.0, "period length must be positive");
  HB_REQUIRE(engine_.started(), "start() the app before measuring");
  ensure_profiles();

  engine_.reset_window();
  const SimTime t0 = sim_.now();
  const double e0 = power_ ? power_->total_energy_j() : 0.0;
  sim_.run_until(t0 + span);
  PeriodMetrics m = snapshot();
  m.period_start = t0;
  m.period_end = sim_.now();
  if (power_) m.avg_power_w = (power_->total_energy_j() - e0) / span;
  return m;
}

PeriodMetrics MarApp::snapshot() {
  ensure_profiles();
  PeriodMetrics m;
  m.period_start = m.period_end = sim_.now();
  m.average_quality = scene_.average_quality();
  m.triangle_ratio = scene_.current_ratio();
  if (quality_scale_ != 1.0) m.average_quality *= quality_scale_;

  std::vector<ai::LatencySample> samples;
  for (TaskId id : task_order_) {
    const ai::AiTask& task = engine_.task(id);
    const double expected = profiles_->get(task.model).expected_ms;
    // Tasks with no completed inference this window fall back to their
    // last known latency; if none exists yet, to the expectation.
    double measured = to_ms(engine_.window_mean_latency_s(id));
    if (engine_.window_count(id) == 0) {
      const double last = to_ms(engine_.last_latency_s(id));
      measured = last > 0.0 ? last : expected;
    }
    m.task_latency_ms[task.label] = measured;
    m.task_expected_ms[task.label] = expected;
    m.inference_count += engine_.window_count(id);
    samples.push_back(ai::LatencySample{measured, expected});
  }
  m.latency_ratio =
      samples.empty() ? 0.0 : ai::average_latency_ratio(samples);
  if (power_) {
    m.die_temp_c = power_->die_temp_c();
    m.freq_scale = power_->freq_scale();
    m.battery_soc = power_->battery_soc();
  }
  return m;
}

void MarApp::set_quality_scale(double scale) {
  HB_REQUIRE(std::isfinite(scale) && scale > 0.0 && scale <= 1.0,
             "quality scale must be in (0, 1]");
  quality_scale_ = scale;
}

}  // namespace hbosim::app
