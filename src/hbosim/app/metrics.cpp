#include "hbosim/app/metrics.hpp"

namespace hbosim::app {

double PeriodMetrics::mean_task_latency_ms() const {
  if (task_latency_ms.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& [label, ms] : task_latency_ms) acc += ms;
  return acc / static_cast<double>(task_latency_ms.size());
}

}  // namespace hbosim::app
