#include "hbosim/render/degradation.hpp"

#include <algorithm>
#include <cmath>

#include "hbosim/common/error.hpp"

namespace hbosim::render {

namespace {
double effective_distance(double distance) { return std::max(distance, 1.0); }
}  // namespace

bool DegradationParams::valid() const {
  if (a <= 0.0 || c <= 0.0 || d <= 0.0) return false;
  // Non-increasing on [0,1]: slope 2aR + b <= 0 at R=1 (worst case).
  if (2.0 * a + b > 0.0) return false;
  // Error at R=1 (unit distance) must be non-negative.
  if (a + b + c < 0.0) return false;
  return true;
}

double degradation_error(const DegradationParams& p, double ratio,
                         double distance) {
  HB_REQUIRE(ratio >= 0.0 && ratio <= 1.0, "decimation ratio must be in [0,1]");
  const double numerator = p.a * ratio * ratio + p.b * ratio + p.c;
  const double e = numerator / std::pow(effective_distance(distance), p.d);
  return std::clamp(e, 0.0, 1.0);
}

double object_quality(const DegradationParams& p, double ratio,
                      double distance) {
  return 1.0 - degradation_error(p, ratio, distance);
}

double degradation_slope(const DegradationParams& p, double ratio,
                         double distance) {
  HB_REQUIRE(ratio >= 0.0 && ratio <= 1.0, "decimation ratio must be in [0,1]");
  return (2.0 * p.a * ratio + p.b) /
         std::pow(effective_distance(distance), p.d);
}

}  // namespace hbosim::render
