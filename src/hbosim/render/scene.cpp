#include "hbosim/render/scene.hpp"

#include "hbosim/common/error.hpp"

namespace hbosim::render {

Scene::Scene(CullingModel culling) : culling_(culling) {}

ObjectId Scene::add_object(std::shared_ptr<const MeshAsset> asset,
                           double distance_m) {
  const ObjectId id = next_id_++;
  objects_.emplace(id, VirtualObject(id, std::move(asset), distance_m));
  notify();
  return id;
}

void Scene::remove_object(ObjectId id) {
  HB_REQUIRE(objects_.erase(id) > 0, "unknown object id");
  notify();
}

bool Scene::has_object(ObjectId id) const { return objects_.count(id) > 0; }

VirtualObject& Scene::object(ObjectId id) {
  auto it = objects_.find(id);
  HB_REQUIRE(it != objects_.end(), "unknown object id");
  return it->second;
}

const VirtualObject& Scene::object(ObjectId id) const {
  auto it = objects_.find(id);
  HB_REQUIRE(it != objects_.end(), "unknown object id");
  return it->second;
}

std::vector<ObjectId> Scene::object_ids() const {
  std::vector<ObjectId> ids;
  ids.reserve(objects_.size());
  for (const auto& [id, obj] : objects_) ids.push_back(id);
  return ids;
}

void Scene::set_user_distance_scale(double scale) {
  HB_REQUIRE(scale > 0.0, "distance scale must be positive");
  distance_scale_ = scale;
  notify();
}

double Scene::effective_distance(ObjectId id) const {
  return object(id).base_distance() * distance_scale_;
}

std::uint64_t Scene::total_max_triangles() const {
  std::uint64_t total = 0;
  for (const auto& [id, obj] : objects_) total += obj.asset().max_triangles();
  return total;
}

std::uint64_t Scene::current_triangles() const {
  std::uint64_t total = 0;
  for (const auto& [id, obj] : objects_) total += obj.triangles();
  return total;
}

double Scene::current_ratio() const {
  const std::uint64_t max = total_max_triangles();
  if (max == 0) return 1.0;
  return static_cast<double>(current_triangles()) / static_cast<double>(max);
}

double Scene::culled_triangles() const {
  double total = 0.0;
  for (const auto& [id, obj] : objects_) {
    const double dist = obj.base_distance() * distance_scale_;
    total += static_cast<double>(obj.triangles()) *
             culling_.visible_fraction(dist);
  }
  return total;
}

double Scene::average_quality() const {
  if (objects_.empty()) return 1.0;
  double acc = 0.0;
  for (const auto& [id, obj] : objects_) {
    acc += obj.quality(obj.base_distance() * distance_scale_);
  }
  return acc / static_cast<double>(objects_.size());
}

void Scene::set_ratio(ObjectId id, double ratio) {
  object(id).set_ratio(ratio);
  notify();
}

void Scene::set_uniform_ratio(double ratio) {
  for (auto& [id, obj] : objects_) obj.set_ratio(ratio);
  notify();
}

void Scene::set_change_listener(ChangeListener listener) {
  listener_ = std::move(listener);
}

void Scene::notify() {
  if (listener_) listener_();
}

}  // namespace hbosim::render
