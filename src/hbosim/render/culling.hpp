#pragma once

/// \file culling.hpp
/// Backface / view-dependent culling model (Section IV-E of the paper
/// points at OpenGL backface culling as the mechanism by which user-object
/// distance changes AI latency). Roughly half of a closed mesh's triangles
/// always face away; as the user steps back, the object covers fewer
/// pixels and the rasterizer retires the remaining triangles more cheaply,
/// which we fold into a shrinking *effective* visible fraction.

namespace hbosim::render {

struct CullingModel {
  /// Fraction of triangles surviving backface culling up close.
  double near_fraction = 0.95;
  /// Asymptotic fraction as distance grows (backface-culled and
  /// sub-pixel geometry contribute no GPU load).
  double far_fraction = 0.45;
  /// Distance (meters) at which half the near->far transition happened.
  double half_distance_m = 4.0;

  /// Visible (GPU-loading) triangle fraction at the given distance.
  double visible_fraction(double distance_m) const;
};

}  // namespace hbosim::render
