#include "hbosim/render/render_load.hpp"

namespace hbosim::render {

RenderLoadBinder::RenderLoadBinder(Scene& scene, soc::SocRuntime& soc)
    : scene_(scene), soc_(soc) {
  scene_.set_change_listener([this] { refresh(); });
  refresh();
}

void RenderLoadBinder::refresh() {
  soc_.set_render_load(scene_.culled_triangles(), scene_.object_count());
}

double RenderLoadBinder::current_gpu_load() const {
  return soc_.profile().render().gpu_load(scene_.culled_triangles());
}

}  // namespace hbosim::render
