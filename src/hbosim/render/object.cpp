#include "hbosim/render/object.hpp"

#include "hbosim/common/error.hpp"
#include "hbosim/render/degradation.hpp"

namespace hbosim::render {

VirtualObject::VirtualObject(ObjectId id,
                             std::shared_ptr<const MeshAsset> asset,
                             double distance_m)
    : id_(id), asset_(std::move(asset)), base_distance_m_(distance_m) {
  HB_REQUIRE(asset_ != nullptr, "VirtualObject needs a mesh asset");
  HB_REQUIRE(base_distance_m_ > 0.0, "object distance must be positive");
}

void VirtualObject::set_base_distance(double d) {
  HB_REQUIRE(d > 0.0, "object distance must be positive");
  base_distance_m_ = d;
}

void VirtualObject::set_ratio(double r) {
  HB_REQUIRE(r >= 0.0 && r <= 1.0, "decimation ratio must be in [0,1]");
  ratio_ = r;
}

double VirtualObject::quality(double effective_distance) const {
  return object_quality(asset_->params(), ratio_, effective_distance);
}

double VirtualObject::degradation(double effective_distance) const {
  return degradation_error(asset_->params(), ratio_, effective_distance);
}

}  // namespace hbosim::render
