#pragma once

#include "hbosim/render/scene.hpp"
#include "hbosim/soc/device.hpp"

/// \file render_load.hpp
/// Couples the scene to the SoC: whenever the scene changes (objects
/// added/removed, ratios redrawn, user moved), the culled triangle count
/// is converted into GPU/CPU background utilization through the device's
/// RenderLoadModel. This is the AR side of the paper's AR/AI contention.

namespace hbosim::render {

class RenderLoadBinder {
 public:
  /// Installs itself as the scene's change listener and applies the
  /// current load immediately.
  RenderLoadBinder(Scene& scene, soc::SocRuntime& soc);

  /// Recompute and apply the render load (idempotent).
  void refresh();

  /// GPU utilization the render pipeline currently imposes.
  double current_gpu_load() const;

 private:
  Scene& scene_;
  soc::SocRuntime& soc_;
};

}  // namespace hbosim::render
