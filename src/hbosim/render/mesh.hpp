#pragma once

#include <cstdint>
#include <string>

#include "hbosim/render/degradation.hpp"

/// \file mesh.hpp
/// A virtual-object mesh asset: a named triangle budget plus the trained
/// degradation parameters of Eq. 1. The paper's objects (Table II) are
/// mesh files downloaded from a decimation server; here an asset is pure
/// metadata — the decimation service (edge module) produces "versions" of
/// it at arbitrary ratios, and the exact triangle counts of Table II are
/// reproduced in scenario/.

namespace hbosim::render {

class MeshAsset {
 public:
  MeshAsset(std::string name, std::uint64_t max_triangles,
            DegradationParams params);

  const std::string& name() const { return name_; }
  std::uint64_t max_triangles() const { return max_triangles_; }
  const DegradationParams& params() const { return params_; }

  /// Triangle count of the decimated version at `ratio` in [0, 1]
  /// (rounded, never below the 1-triangle degenerate minimum).
  std::uint64_t triangles_at(double ratio) const;

 private:
  std::string name_;
  std::uint64_t max_triangles_;
  DegradationParams params_;
};

/// Deterministically synthesize plausible degradation parameters for a
/// mesh, keyed by its name and triangle count. Shapes with more geometric
/// detail per triangle (low counts) degrade faster; the parameters always
/// satisfy DegradationParams::valid(). `residual_error` is the error left
/// at full quality (R=1, unit distance).
DegradationParams synthesize_degradation_params(const std::string& name,
                                                std::uint64_t max_triangles);

}  // namespace hbosim::render
