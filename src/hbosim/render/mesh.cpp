#include "hbosim/render/mesh.hpp"

#include <algorithm>
#include <cmath>

#include "hbosim/common/error.hpp"
#include "hbosim/common/rng.hpp"

namespace hbosim::render {

MeshAsset::MeshAsset(std::string name, std::uint64_t max_triangles,
                     DegradationParams params)
    : name_(std::move(name)),
      max_triangles_(max_triangles),
      params_(params) {
  HB_REQUIRE(max_triangles_ > 0, "mesh needs at least one triangle");
  HB_REQUIRE(params_.valid(),
             "invalid degradation parameters for mesh " + name_);
}

std::uint64_t MeshAsset::triangles_at(double ratio) const {
  HB_REQUIRE(ratio >= 0.0 && ratio <= 1.0, "decimation ratio must be in [0,1]");
  const auto t = static_cast<std::uint64_t>(
      std::llround(ratio * static_cast<double>(max_triangles_)));
  return std::max<std::uint64_t>(t, 1);
}

DegradationParams synthesize_degradation_params(const std::string& name,
                                                std::uint64_t max_triangles) {
  // Stable per-name seed (FNV-1a) so every run of every binary sees the
  // same "trained" parameters for e.g. the SC1 bike.
  std::uint64_t h = 1469598103934665603ull;
  for (char ch : name) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  Rng rng(h);

  // Detailed meshes (high triangle counts) lose more perceived quality per
  // unit of decimation: scale the R=0 error ceiling with log10(count).
  const double detail =
      std::clamp(std::log10(static_cast<double>(max_triangles)) / 6.0, 0.3, 1.0);

  DegradationParams p;
  p.c = rng.uniform(0.92, 1.00) + 0.05 * detail;            // error at R=0
  p.a = rng.uniform(0.50, 0.70);                            // convexity
  const double residual = rng.uniform(0.01, 0.04);          // error at R=1
  p.b = residual - p.a - p.c;
  p.d = rng.uniform(0.60, 0.95);                            // distance falloff
  HB_ASSERT(p.valid(), "synthesized degradation params invalid for " + name);
  return p;
}

}  // namespace hbosim::render
