#pragma once

#include <memory>

#include "hbosim/common/types.hpp"
#include "hbosim/render/mesh.hpp"

/// \file object.hpp
/// A placed instance of a mesh asset in the augmented scene: its distance
/// from the user and the decimation ratio currently rendered.

namespace hbosim::render {

class VirtualObject {
 public:
  VirtualObject(ObjectId id, std::shared_ptr<const MeshAsset> asset,
                double distance_m);

  ObjectId id() const { return id_; }
  const MeshAsset& asset() const { return *asset_; }

  /// Distance at which the object was placed (meters).
  double base_distance() const { return base_distance_m_; }
  void set_base_distance(double d);

  /// Decimation ratio currently on screen (selected/max triangles).
  double ratio() const { return ratio_; }
  void set_ratio(double r);

  /// Triangle count of the currently rendered version.
  std::uint64_t triangles() const { return asset_->triangles_at(ratio_); }

  /// Perceived quality (Eq. 1-2) at an *effective* viewing distance
  /// (base distance times the scene's user-distance scale).
  double quality(double effective_distance) const;
  double degradation(double effective_distance) const;

 private:
  ObjectId id_;
  std::shared_ptr<const MeshAsset> asset_;
  double base_distance_m_;
  double ratio_ = 1.0;
};

}  // namespace hbosim::render
