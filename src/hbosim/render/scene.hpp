#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "hbosim/render/culling.hpp"
#include "hbosim/render/object.hpp"

/// \file scene.hpp
/// The augmented scene: the set of on-screen virtual objects, the user's
/// position (as a distance scale applied to every object), and the
/// scene-level quantities HBO consumes — total/maximum triangle counts,
/// culled triangle load, and the average quality Q_t of Eq. 2.

namespace hbosim::render {

class Scene {
 public:
  using ChangeListener = std::function<void()>;

  explicit Scene(CullingModel culling = {});

  /// Place an object; returns its id. Fires the change listener.
  ObjectId add_object(std::shared_ptr<const MeshAsset> asset,
                      double distance_m);
  void remove_object(ObjectId id);
  bool has_object(ObjectId id) const;

  VirtualObject& object(ObjectId id);
  const VirtualObject& object(ObjectId id) const;
  std::vector<ObjectId> object_ids() const;
  std::size_t object_count() const { return objects_.size(); }
  bool empty() const { return objects_.empty(); }

  /// Multiplier on every object's base distance: the user walking away
  /// doubles it, stepping closer shrinks it. Fires the change listener.
  void set_user_distance_scale(double scale);
  double user_distance_scale() const { return distance_scale_; }

  /// Effective viewing distance of one object.
  double effective_distance(ObjectId id) const;

  /// Sum of max triangle counts across objects (the paper's T^max).
  std::uint64_t total_max_triangles() const;
  /// Sum of currently rendered triangle counts.
  std::uint64_t current_triangles() const;
  /// Current total ratio: current/total_max (1 for an empty scene).
  double current_ratio() const;

  /// Rendered triangles surviving culling at current distances — the
  /// quantity that loads the GPU.
  double culled_triangles() const;

  /// Average virtual-object quality Q_t (Eq. 2); 1 for an empty scene.
  double average_quality() const;

  /// Apply a per-object decimation ratio (from the triangle distributor).
  void set_ratio(ObjectId id, double ratio);
  /// Apply one ratio to all objects.
  void set_uniform_ratio(double ratio);

  const CullingModel& culling() const { return culling_; }

  /// Invoked after every mutation that changes render load (add/remove,
  /// ratio change, distance change) — the app wires this to the SoC's
  /// render-load update.
  void set_change_listener(ChangeListener listener);

 private:
  void notify();

  CullingModel culling_;
  std::map<ObjectId, VirtualObject> objects_;
  ObjectId next_id_ = 1;
  double distance_scale_ = 1.0;
  ChangeListener listener_;
};

}  // namespace hbosim::render
