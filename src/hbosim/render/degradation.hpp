#pragma once

/// \file degradation.hpp
/// The eAR virtual-object quality-degradation model the paper borrows
/// (its Eq. 1): for object i at decimation ratio R (selected triangles
/// over maximum) viewed from distance D,
///
///   D_error = (a*R^2 + b*R + c) / D^d,   quality = 1 - D_error.
///
/// Parameters (a, b, c, d) are trained offline per object with an image-
/// quality-assessment study (GMSD in eAR); here the edge module's trainer
/// synthesizes them per mesh shape. Valid parameter sets give an error
/// that is convex and strictly decreasing in R on [0, 1] (more triangles
/// never look worse), which the water-filling triangle distributor relies
/// on and the tests assert.

namespace hbosim::render {

struct DegradationParams {
  double a = 0.0;  ///< Quadratic coefficient (> 0: convex error).
  double b = 0.0;  ///< Linear coefficient (b < -2a: decreasing on [0,1]).
  double c = 0.0;  ///< Error at R=0 (unit distance).
  double d = 1.0;  ///< Distance exponent.

  /// True if error is non-negative, convex and non-increasing on [0, 1].
  bool valid() const;
};

/// Eq. 1; distance is clamped to >= 1 so closing in on an object never
/// divides error below its trained near-field value, and the result is
/// clamped into [0, 1]. `ratio` must lie in [0, 1].
double degradation_error(const DegradationParams& p, double ratio,
                         double distance);

/// 1 - degradation_error.
double object_quality(const DegradationParams& p, double ratio,
                      double distance);

/// d(D_error)/dR at the given ratio/distance (non-positive for valid
/// params); used by the triangle distributor's marginal analysis.
double degradation_slope(const DegradationParams& p, double ratio,
                         double distance);

}  // namespace hbosim::render
