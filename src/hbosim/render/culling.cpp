#include "hbosim/render/culling.hpp"

#include "hbosim/common/error.hpp"

namespace hbosim::render {

double CullingModel::visible_fraction(double distance_m) const {
  HB_REQUIRE(distance_m > 0.0, "distance must be positive");
  HB_REQUIRE(near_fraction >= far_fraction, "near fraction must dominate");
  // Smooth rational falloff: f(0) ~ near, f(half) = midpoint, f(inf) = far.
  const double x = distance_m / half_distance_m;
  return far_fraction + (near_fraction - far_fraction) / (1.0 + x * x);
}

}  // namespace hbosim::render
