#pragma once

#include <cstdint>
#include <vector>

#include "hbosim/common/rng.hpp"

/// \file raters.hpp
/// Synthetic stand-in for the paper's seven-participant user study
/// (Section V-E). Participants saw virtual objects at maximum quality as
/// a reference and scored each condition 1-5 (5 = indistinguishable from
/// the reference). The paper's own premise is that the Eq. 1-2 quality
/// estimate tracks human perception (it cites the eAR/GMSD user
/// validation), so a synthetic rater inverts that mapping: estimated
/// quality is transformed through a saturating perceptual curve into a
/// mean-opinion score, with per-rater bias and trial noise.

namespace hbosim::study {

struct RaterPanelConfig {
  int raters = 7;  ///< The paper recruited seven students.
  /// Quality at (or below) which a condition is scored 1 ("much worse").
  double quality_floor = 0.35;
  /// Quality at (or above) which a condition saturates to 5.
  double quality_ceiling = 0.90;
  double rater_bias_sigma = 0.15;  ///< Persistent per-rater offset (score units).
  double trial_noise_sigma = 0.12; ///< Per-trial noise (score units).
  std::uint64_t seed = 0x57EDu;
};

struct StudyResult {
  std::vector<double> scores;  ///< One score per rater, in [1, 5].
  double mean = 0.0;
  double stdev = 0.0;
};

class RaterPanel {
 public:
  explicit RaterPanel(RaterPanelConfig cfg = {});

  /// The deterministic perceptual curve: estimated quality -> noiseless
  /// score in [1, 5].
  double perceptual_score(double quality) const;

  /// Have every rater score one condition with this estimated quality.
  StudyResult evaluate(double quality);

  const RaterPanelConfig& config() const { return cfg_; }

 private:
  RaterPanelConfig cfg_;
  std::vector<double> biases_;
  Rng rng_;
};

}  // namespace hbosim::study
