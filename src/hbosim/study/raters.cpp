#include "hbosim/study/raters.hpp"

#include <algorithm>

#include "hbosim/common/error.hpp"
#include "hbosim/common/mathx.hpp"

namespace hbosim::study {

RaterPanel::RaterPanel(RaterPanelConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  HB_REQUIRE(cfg_.raters > 0, "panel needs at least one rater");
  HB_REQUIRE(cfg_.quality_floor < cfg_.quality_ceiling,
             "quality floor must be below the ceiling");
  biases_.reserve(static_cast<std::size_t>(cfg_.raters));
  for (int i = 0; i < cfg_.raters; ++i)
    biases_.push_back(rng_.normal(0.0, cfg_.rater_bias_sigma));
}

double RaterPanel::perceptual_score(double quality) const {
  const double f = clampd((quality - cfg_.quality_floor) /
                              (cfg_.quality_ceiling - cfg_.quality_floor),
                          0.0, 1.0);
  return 1.0 + 4.0 * f;
}

StudyResult RaterPanel::evaluate(double quality) {
  StudyResult out;
  const double base = perceptual_score(quality);
  out.scores.reserve(biases_.size());
  for (double bias : biases_) {
    const double s =
        base + bias + rng_.normal(0.0, cfg_.trial_noise_sigma);
    out.scores.push_back(clampd(s, 1.0, 5.0));
  }
  out.mean = mean(out.scores);
  out.stdev = stdev(out.scores);
  return out;
}

}  // namespace hbosim::study
