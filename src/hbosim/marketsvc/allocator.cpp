#include "hbosim/marketsvc/allocator.hpp"

#include <algorithm>
#include <cmath>

#include "hbosim/common/error.hpp"
#include "hbosim/telemetry/telemetry.hpp"

namespace hbosim::marketsvc {

JointAllocator::JointAllocator(MarketConfig cfg, double cores,
                               double link_mbit_per_s,
                               double service_s_per_unit)
    : cfg_(cfg), cores_(cores), link_mbit_per_s_(link_mbit_per_s) {
  cfg_.validate();
  HB_REQUIRE(cores_ > 0.0, "JointAllocator: cores must be positive");
  HB_REQUIRE(link_mbit_per_s_ > 0.0,
             "JointAllocator: link_mbit_per_s must be positive");
  HB_REQUIRE(service_s_per_unit > 0.0,
             "JointAllocator: service_s_per_unit must be positive");
  initial_.flow = cfg_.initial_flow_activity;
  initial_.rps = cfg_.initial_request_rps;
  initial_.units = cfg_.initial_mean_units;
  initial_.svc = cfg_.initial_mean_units * service_s_per_unit;
  if (cfg_.policy == MarketPolicy::Pricing) {
    price_ = cfg_.initial_price;
  }
}

JointAllocator::Demand JointAllocator::resolve_demand(
    const TenantDemand& d) const {
  Demand base = initial_;
  auto it = learned_.find(d.tenant);
  if (it != learned_.end()) {
    base = it->second;
  }
  if (d.flow_activity > 0.0) base.flow = d.flow_activity;
  if (d.request_rps > 0.0) base.rps = d.request_rps;
  if (d.mean_units > 0.0) base.units = d.mean_units;
  return base;
}

std::vector<double> JointAllocator::solve(
    const std::vector<TenantDemand>& demands, const std::vector<double>& a,
    const std::vector<double>& c, std::vector<bool>& admitted) {
  const std::size_t n = demands.size();
  const double x_min = cfg_.min_resolution * cfg_.min_resolution;
  const double a_budget = cfg_.max_link_activity;
  const double c_budget = cfg_.max_compute_utilization * cores_;
  std::vector<double> x(n, x_min);

  switch (cfg_.policy) {
    case MarketPolicy::MaxMin: {
      // One common level: the largest x every tenant can hold under both
      // budgets. sum(a)*x <= A and sum(c)*x <= C are linear in x, so the
      // binding budget gives the level in closed form.
      double a_sum = 0.0;
      double c_sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        a_sum += a[i];
        c_sum += c[i];
      }
      double level = 1.0;
      if (a_sum > 0.0) level = std::min(level, a_budget / a_sum);
      if (c_sum > 0.0) level = std::min(level, c_budget / c_sum);
      level = std::clamp(level, x_min, 1.0);
      std::fill(x.begin(), x.end(), level);
      break;
    }
    case MarketPolicy::ProportionalFair: {
      // Weighted PF on x (log utility): x_i = clamp(t * w_i / d_i) where
      // d_i is the budget-normalized footprint. Every x_i is
      // nondecreasing in the water level t, so both budget LHS are too,
      // and deterministic bisection on t finds the largest feasible
      // level. With symmetric tenants every d_i is equal, so x_i is
      // common and a binding link budget splits exactly evenly — the
      // closed form the CI gate checks.
      std::vector<double> d(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        d[i] = a[i] / a_budget + c[i] / c_budget;
        HB_ASSERT(d[i] > 0.0, "PF footprint must be positive");
      }
      auto fill = [&](double t) {
        for (std::size_t i = 0; i < n; ++i) {
          x[i] = std::clamp(t * demands[i].weight / d[i], x_min, 1.0);
        }
      };
      auto feasible = [&]() {
        double a_sum = 0.0;
        double c_sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          a_sum += a[i] * x[i];
          c_sum += c[i] * x[i];
        }
        return a_sum <= a_budget && c_sum <= c_budget;
      };
      double hi = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        hi = std::max(hi, d[i] / std::max(demands[i].weight, 1e-12));
      }
      fill(hi);
      if (!feasible()) {
        double lo = 0.0;
        for (int it = 0; it < 64; ++it) {
          const double mid = 0.5 * (lo + hi);
          fill(mid);
          if (feasible()) {
            lo = mid;
          } else {
            hi = mid;
          }
        }
        fill(lo);
      }
      break;
    }
    case MarketPolicy::Pricing: {
      // Posted-price round: each tenant buys the level its budget
      // affords at the current price over its normalized footprint;
      // tenants that cannot afford even the resolution floor are denied
      // into the best-effort class. The price itself moves between
      // ticks (tatonnement, in tick()).
      for (std::size_t i = 0; i < n; ++i) {
        const double d = a[i] / a_budget + c[i] / c_budget;
        HB_ASSERT(d > 0.0, "pricing footprint must be positive");
        const double budget = cfg_.tenant_budget * demands[i].weight;
        const double affordable = budget / (price_ * d);
        if (affordable < x_min) {
          admitted[i] = false;
          x[i] = x_min;  // scavenger class; excluded from the budgets
        } else {
          x[i] = std::min(affordable, 1.0);
        }
      }
      break;
    }
  }
  return x;
}

std::vector<TenantAllocation> JointAllocator::tick(
    const std::vector<TenantDemand>& demands) {
  HB_TRACE_SCOPE("market", "market.tick");
  const std::size_t n = demands.size();
  HB_REQUIRE(n > 0, "JointAllocator::tick needs at least one tenant");

  // Footprints at the r = 1 reference: a_i = link-flow duty cycle,
  // c_i = service core-seconds per second.
  std::vector<Demand> dem(n);
  std::vector<double> a(n, 0.0);
  std::vector<double> c(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    dem[i] = resolve_demand(demands[i]);
    a[i] = dem[i].flow;
    c[i] = dem[i].rps * dem[i].svc;
  }

  std::vector<bool> admitted(n, true);
  const std::vector<double> x = solve(demands, a, c, admitted);

  // Decided aggregate load of the admitted tenants; each tenant's mirror
  // background is the total minus its own contribution.
  double a_total = 0.0;
  double rps_total = 0.0;
  double units_rate_total = 0.0;  // rate-weighted request size
  double c_total = 0.0;
  double res_sum = 0.0;
  std::size_t denied = 0;
  for (std::size_t i = 0; i < n; ++i) {
    res_sum += std::sqrt(x[i]);
    if (!admitted[i]) {
      ++denied;
      continue;
    }
    a_total += a[i] * x[i];
    rps_total += dem[i].rps;
    units_rate_total += dem[i].rps * dem[i].units * x[i];
    c_total += c[i] * x[i];
  }

  std::vector<TenantAllocation> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    TenantAllocation& alloc = out[i];
    alloc.tenant = demands[i].tenant;
    alloc.admitted = admitted[i];
    alloc.resolution = std::sqrt(x[i]);
    alloc.price = (cfg_.policy == MarketPolicy::Pricing) ? price_ : 0.0;
    if (!admitted[i]) {
      alloc.bandwidth_frac = cfg_.denied_bandwidth_frac;
      alloc.compute_frac = 0.0;
      alloc.bg_flows = 0.0;
      alloc.bg_rps = 0.0;
      alloc.bg_mean_units = 0.0;
      continue;
    }
    alloc.bg_flows = std::max(0.0, a_total - a[i] * x[i]);
    alloc.bg_rps = std::max(0.0, rps_total - dem[i].rps);
    const double units_rate_others =
        std::max(0.0, units_rate_total - dem[i].rps * dem[i].units * x[i]);
    alloc.bg_mean_units =
        (alloc.bg_rps > 0.0) ? units_rate_others / alloc.bg_rps : 0.0;
    alloc.bandwidth_frac = 1.0 / (1.0 + alloc.bg_flows);
    alloc.compute_frac = c[i] * x[i] / cores_;
  }

  last_.tenants = n;
  last_.denied = denied;
  last_.link_activity = a_total;
  last_.compute_utilization = c_total / cores_;
  last_.mean_resolution = res_sum / static_cast<double>(n);

  if (cfg_.policy == MarketPolicy::Pricing) {
    // Tatonnement: raise the price while decided demand overshoots the
    // tighter budget, decay it while the system runs slack so denied
    // tenants get re-admitted when load recedes.
    const double load =
        std::max(a_total / cfg_.max_link_activity,
                 c_total / (cfg_.max_compute_utilization * cores_));
    const double step = std::clamp(cfg_.price_step * (load - 1.0),
                                   -cfg_.max_price_step, cfg_.max_price_step);
    price_ = std::max(cfg_.min_price, price_ * (1.0 + step));
  }
  last_.price = price_;
  ++ticks_;
  HB_TELEM_COUNT("market.ticks", 1.0);
  HB_TELEM_COUNT("market.denied", static_cast<double>(denied));
  return out;
}

void JointAllocator::observe(std::uint64_t tenant, const MeasuredUsage& usage,
                             double resolution) {
  HB_REQUIRE(resolution > 0.0 && resolution <= 1.0,
             "JointAllocator::observe: resolution must be in (0, 1]");
  if (usage.duration_s <= 0.0 || usage.requests == 0) {
    return;  // nothing measurable this epoch; keep the current estimate
  }
  // Rescale measurements to the r = 1 reference: payload, request size
  // and service cost all scale with r^2 (resolution area), the request
  // rate does not (it is driven by the app's redraw schedule).
  const double x = resolution * resolution;
  const double reqs = static_cast<double>(usage.requests);
  Demand meas;
  meas.flow = (static_cast<double>(usage.payload_bytes) * 8.0 / 1e6) /
              link_mbit_per_s_ / usage.duration_s / x;
  meas.rps = reqs / usage.duration_s;
  meas.units = usage.units / reqs / x;
  meas.svc = usage.service_s / reqs / x;

  auto [it, inserted] = learned_.try_emplace(tenant, initial_);
  Demand& est = it->second;
  const double k = cfg_.demand_smoothing;
  est.flow += k * (meas.flow - est.flow);
  est.rps += k * (meas.rps - est.rps);
  est.units += k * (meas.units - est.units);
  est.svc += k * (meas.svc - est.svc);
}

}  // namespace hbosim::marketsvc
