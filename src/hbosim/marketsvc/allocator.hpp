#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "hbosim/marketsvc/market.hpp"

/// \file allocator.hpp
/// The cross-tenant JointAllocator: one deterministic solver that, per
/// epoch tick, jointly assigns shared-link activity shares, edge compute
/// shares and per-tenant resolution levels under the MarketConfig budgets.
///
/// Determinism contract: tick() and observe() are pure functions of the
/// allocator's state and their arguments — no clocks, no RNG, no
/// iteration over unordered containers. The fleet calls both only at
/// epoch barriers on the main thread, in session-id order, so a
/// market-enabled fleet is bit-identical on 1 and N worker threads.

namespace hbosim::marketsvc {

class JointAllocator {
 public:
  /// \param cores            Edge server cores backing the compute budget.
  /// \param link_mbit_per_s  Nominal shared downlink rate, used to turn
  ///                         measured payload bytes back into flow duty
  ///                         cycles when learning demand.
  /// \param service_s_per_unit  Representative service cost (seconds per
  ///                         mega-triangle on one core) used to seed the
  ///                         compute-demand estimate before anything was
  ///                         measured.
  JointAllocator(MarketConfig cfg, double cores, double link_mbit_per_s,
                 double service_s_per_unit);

  /// Solve one epoch: decide resolution, bandwidth share, compute share
  /// and mirror background parameters for every tenant in `demands`.
  /// Output order matches input order (the fleet passes session-id
  /// order). Demand fields left negative fall back to the learned (or
  /// initial) per-tenant estimates.
  std::vector<TenantAllocation> tick(const std::vector<TenantDemand>& demands);

  /// Fold one finished tenant's measured usage into its demand estimate.
  /// `resolution` is the knob the tenant ran at, so measurements can be
  /// rescaled to the r = 1 reference the budgets are expressed in.
  void observe(std::uint64_t tenant, const MeasuredUsage& usage,
               double resolution);

  /// Posted congestion price (Pricing policy; constant 0 otherwise).
  double price() const { return price_; }

  const MarketConfig& config() const { return cfg_; }
  /// Stats of the most recent tick ({} before the first).
  const MarketTickStats& last() const { return last_; }
  std::size_t ticks() const { return ticks_; }

 private:
  /// Learned per-tenant demand at the r = 1 reference resolution.
  struct Demand {
    double flow = 0.0;   ///< Concurrent link-flow duty cycle.
    double rps = 0.0;    ///< Requests per second.
    double units = 0.0;  ///< Mean request size (mega-triangles).
    double svc = 0.0;    ///< Service core-seconds per request.
  };

  Demand resolve_demand(const TenantDemand& d) const;

  /// x_i = r_i^2 for every tenant, given footprints a (link) and c
  /// (compute) — the policy-specific core of tick().
  std::vector<double> solve(const std::vector<TenantDemand>& demands,
                            const std::vector<double>& a,
                            const std::vector<double>& c,
                            std::vector<bool>& admitted);

  MarketConfig cfg_;
  double cores_;
  double link_mbit_per_s_;
  Demand initial_;
  /// std::map (not unordered) so any future iteration stays deterministic.
  std::map<std::uint64_t, Demand> learned_;
  double price_ = 0.0;
  MarketTickStats last_;
  std::size_t ticks_ = 0;
};

}  // namespace hbosim::marketsvc
