#pragma once

#include <cstdint>
#include <string_view>

/// \file market.hpp
/// Vocabulary of the fleet-level resource market (hbosim::marketsvc): the
/// allocation policies, the per-epoch knobs, and the per-tenant demand /
/// allocation records the JointAllocator trades in.
///
/// The market makes the edge an *actor* instead of a bookkeeper. Where the
/// mirror-based edgesvc path hands every session a fixed statistical guess
/// of the other tenants (transfer_flows_per_tenant x (N-1) link flows,
/// per_tenant_rps x (N-1) background arrivals), the market *decides*: on
/// every epoch tick it jointly assigns, across all tenants of the epoch,
///
///  (a) fair-share spectrum on the shared LinkModel — each tenant's mirror
///      sees the background flow activity the allocator admitted, not a
///      hard-coded per-tenant constant;
///  (b) edge compute shares on the EdgeServerSpec cores — the mirror's
///      background arrival process carries the decided aggregate request
///      rate and request size of the *other* admitted tenants;
///  (c) a per-tenant resolution knob r in [min_resolution, 1] — the quality
///      control next to the paper's triangle ratio: payloads and server
///      work scale with r^2, perceived quality with r^gamma, so trimming
///      resolution is how the market sheds load before shedding tenants.
///
/// Everything is deterministic closed-form arithmetic over the epoch's
/// demand vector in tenant order; the fleet calls tick()/observe() only at
/// epoch barriers on the main thread, so market-enabled fleets stay
/// bit-identical on 1 and N worker threads.

namespace hbosim::marketsvc {

/// How the epoch tick divides the congestion budgets among tenants.
enum class MarketPolicy : std::uint8_t {
  /// Weighted proportional fairness: maximize sum w_i * log q_i(r_i)
  /// subject to the link/compute activity budgets; r_i^2 ends up
  /// proportional to w_i / f_i (weight over footprint), water-filled.
  ProportionalFair,
  /// Egalitarian: one common resolution, the largest level every admitted
  /// tenant can hold under both budgets (classic max-min on quality).
  MaxMin,
  /// Posted congestion price with tatonnement dynamics and admission
  /// control: the price climbs while demand overshoots the budgets,
  /// tenants buy the resolution their budget affords, and tenants that
  /// cannot afford even min_resolution are denied (best-effort class).
  Pricing,
};

const char* market_policy_name(MarketPolicy p);
/// Parse "pf" / "maxmin" / "price" (throws hbosim::Error otherwise).
MarketPolicy market_policy_from_name(std::string_view name);

struct MarketConfig {
  MarketPolicy policy = MarketPolicy::ProportionalFair;

  /// Floor of the resolution knob (Constraint-10 analogue for resolution).
  double min_resolution = 0.35;
  /// Perceived quality of a tenant running at resolution r is scaled by
  /// r^resolution_gamma (gamma < 1: perceptual diminishing returns).
  double resolution_gamma = 0.6;

  /// Link congestion budget: the decided concurrent background flow
  /// activity (sum over admitted tenants of f_i * r_i^2) may not exceed
  /// this, so any active transfer is guaranteed at least
  /// 1 / (1 + max_link_activity) of the shared downlink.
  double max_link_activity = 2.0;
  /// Compute budget as a fraction of EdgeServerSpec cores the decided
  /// aggregate service demand may occupy.
  double max_compute_utilization = 0.75;

  /// EWMA weight for folding measured per-tenant usage into the demand
  /// estimates the next tick allocates against.
  double demand_smoothing = 0.25;
  /// Demand estimates before anything was measured: expected concurrent
  /// downlink flows per tenant at r = 1 (matches the legacy mirror's
  /// transfer_flows_per_tenant default), edge requests per second, and
  /// mean request size in mega-triangles.
  double initial_flow_activity = 0.02;
  double initial_request_rps = 0.4;
  double initial_mean_units = 0.15;

  // --- Pricing-policy knobs (ignored by PF / MaxMin) ---------------------
  /// Initial posted price per unit of flow activity.
  double initial_price = 0.5;
  /// Tatonnement step: price multiplies by (1 + step * excess_demand) per
  /// tick, clamped to +-max_price_step.
  double price_step = 0.5;
  double max_price_step = 0.5;
  double min_price = 1e-3;
  /// Per-tenant spending budget (the willingness-to-pay weight).
  double tenant_budget = 1.0;
  /// Denied tenants keep a scavenger-class link share: this fraction of
  /// the nominal downlink (their requests mostly time out into on-device
  /// LOD fallbacks, which is the point of denying them).
  double denied_bandwidth_frac = 0.01;

  /// Throws hbosim::Error on nonsense.
  void validate() const;
};

/// One tenant's demand as the allocator sees it at a tick. Non-positive
/// demand fields mean "use the allocator's learned fleet-wide estimate".
struct TenantDemand {
  std::uint64_t tenant = 0;
  /// PF weight / pricing budget multiplier.
  double weight = 1.0;
  /// Expected concurrent downlink flow activity at r = 1 (duty cycle).
  double flow_activity = -1.0;
  /// Edge requests per second at r = 1.
  double request_rps = -1.0;
  /// Mean request size (mega-triangles) at r = 1.
  double mean_units = -1.0;
};

/// The allocator's decision for one tenant, consumed by
/// edgesvc::EdgeBroker::make_market_client.
struct TenantAllocation {
  std::uint64_t tenant = 0;
  /// Pricing policy only: false when the tenant could not afford even
  /// min_resolution and was bumped to the best-effort scavenger class.
  bool admitted = true;
  /// Resolution knob in [min_resolution, 1].
  double resolution = 1.0;
  /// Share of the downlink an active transfer of this tenant receives:
  /// 1 / (1 + bg_flows). Informational (the mirror consumes bg_flows).
  double bandwidth_frac = 1.0;
  /// Decided share of the server cores this tenant's service demand
  /// occupies (rho_i * r_i^2 / cores). Informational.
  double compute_frac = 0.0;
  /// Background the tenant's deterministic mirror must simulate: the
  /// *decided* activity of the other admitted tenants.
  double bg_flows = 0.0;       ///< Concurrent background link flows.
  double bg_rps = 0.0;         ///< Aggregate background request rate.
  double bg_mean_units = 0.0;  ///< Mean background request size (mtri).
  /// Posted price signal (Pricing policy; 0 under PF / MaxMin). Sessions
  /// feed it into the HBO cost as HboConfig::market_price, so a high
  /// price pushes the optimizer toward cheaper (lower-triangle) configs.
  double price = 0.0;
};

/// What one finished tenant actually consumed, fed back at the barrier.
struct MeasuredUsage {
  std::uint64_t payload_bytes = 0;  ///< Downlink bytes moved.
  std::uint64_t requests = 0;       ///< Edge requests issued.
  double units = 0.0;               ///< Total request size (mtri) issued.
  double service_s = 0.0;           ///< Server core-seconds consumed.
  double duration_s = 0.0;          ///< Simulated seconds covered.
};

/// Roll-up of one epoch tick (and, summed, of the whole market run).
struct MarketTickStats {
  std::size_t tenants = 0;
  std::size_t denied = 0;
  double link_activity = 0.0;        ///< Decided sum f_i * r_i^2.
  double compute_utilization = 0.0;  ///< Decided sum rho_i r_i^2 / cores.
  double mean_resolution = 1.0;
  double price = 0.0;  ///< Posted price after the tick's adjustment.
};

}  // namespace hbosim::marketsvc
