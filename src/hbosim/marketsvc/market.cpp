#include "hbosim/marketsvc/market.hpp"

#include <string>

#include "hbosim/common/error.hpp"

namespace hbosim::marketsvc {

const char* market_policy_name(MarketPolicy p) {
  switch (p) {
    case MarketPolicy::ProportionalFair:
      return "pf";
    case MarketPolicy::MaxMin:
      return "maxmin";
    case MarketPolicy::Pricing:
      return "price";
  }
  return "?";
}

MarketPolicy market_policy_from_name(std::string_view name) {
  if (name == "pf" || name == "proportional-fair") {
    return MarketPolicy::ProportionalFair;
  }
  if (name == "maxmin" || name == "max-min") {
    return MarketPolicy::MaxMin;
  }
  if (name == "price" || name == "pricing") {
    return MarketPolicy::Pricing;
  }
  HB_REQUIRE(false, "unknown market policy '" + std::string(name) +
                        "' (expected pf, maxmin or price)");
}

void MarketConfig::validate() const {
  HB_REQUIRE(min_resolution > 0.0 && min_resolution <= 1.0,
             "MarketConfig::min_resolution must be in (0, 1]");
  HB_REQUIRE(resolution_gamma > 0.0,
             "MarketConfig::resolution_gamma must be positive");
  HB_REQUIRE(max_link_activity > 0.0,
             "MarketConfig::max_link_activity must be positive");
  HB_REQUIRE(
      max_compute_utilization > 0.0 && max_compute_utilization <= 1.0,
      "MarketConfig::max_compute_utilization must be in (0, 1]");
  HB_REQUIRE(demand_smoothing > 0.0 && demand_smoothing <= 1.0,
             "MarketConfig::demand_smoothing must be in (0, 1]");
  HB_REQUIRE(initial_flow_activity > 0.0,
             "MarketConfig::initial_flow_activity must be positive");
  HB_REQUIRE(initial_request_rps > 0.0,
             "MarketConfig::initial_request_rps must be positive");
  HB_REQUIRE(initial_mean_units > 0.0,
             "MarketConfig::initial_mean_units must be positive");
  HB_REQUIRE(initial_price > 0.0,
             "MarketConfig::initial_price must be positive");
  HB_REQUIRE(price_step > 0.0, "MarketConfig::price_step must be positive");
  HB_REQUIRE(max_price_step > 0.0 && max_price_step < 1.0,
             "MarketConfig::max_price_step must be in (0, 1)");
  HB_REQUIRE(min_price > 0.0, "MarketConfig::min_price must be positive");
  HB_REQUIRE(tenant_budget > 0.0,
             "MarketConfig::tenant_budget must be positive");
  HB_REQUIRE(denied_bandwidth_frac > 0.0 && denied_bandwidth_frac <= 1.0,
             "MarketConfig::denied_bandwidth_frac must be in (0, 1]");
}

}  // namespace hbosim::marketsvc
