#include "hbosim/edgesvc/edge_server.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "hbosim/common/error.hpp"

namespace hbosim::edgesvc {

const char* request_class_name(RequestClass c) {
  switch (c) {
    case RequestClass::Decimation: return "decimation";
    case RequestClass::RemoteBo: return "remote_bo";
    case RequestClass::MeshTransfer: return "mesh_transfer";
    case RequestClass::AiInference: return "ai_inference";
  }
  return "?";
}

const char* queue_policy_name(QueuePolicy p) {
  switch (p) {
    case QueuePolicy::Fifo: return "fifo";
    case QueuePolicy::DeadlinePriority: return "deadline";
    case QueuePolicy::TenantFairShare: return "fair";
  }
  return "?";
}

QueuePolicy queue_policy_from_name(std::string_view name) {
  if (name == "fifo") return QueuePolicy::Fifo;
  if (name == "deadline") return QueuePolicy::DeadlinePriority;
  if (name == "fair") return QueuePolicy::TenantFairShare;
  HB_REQUIRE(false, "unknown queue policy: " + std::string(name) +
                        " (expected fifo | deadline | fair)");
  return QueuePolicy::Fifo;
}

void EdgeServerSpec::validate() const {
  HB_REQUIRE(cores >= 1, "edge server needs at least one core");
  HB_REQUIRE(std::isfinite(decimation_ms_per_mtri) &&
                 decimation_ms_per_mtri >= 0.0,
             "decimation_ms_per_mtri must be finite and >= 0");
  HB_REQUIRE(std::isfinite(bo_suggest_ms) && bo_suggest_ms >= 0.0,
             "bo_suggest_ms must be finite and >= 0");
  HB_REQUIRE(std::isfinite(mesh_ms_per_mtri) && mesh_ms_per_mtri >= 0.0,
             "mesh_ms_per_mtri must be finite and >= 0");
  HB_REQUIRE(std::isfinite(ai_ms_per_unit) && ai_ms_per_unit >= 0.0,
             "ai_ms_per_unit must be finite and >= 0");
}

double EdgeServerSpec::service_seconds(RequestClass cls, double units) const {
  HB_REQUIRE(std::isfinite(units) && units >= 0.0,
             "request units must be finite and >= 0");
  switch (cls) {
    case RequestClass::Decimation: return decimation_ms_per_mtri * 1e-3 * units;
    case RequestClass::RemoteBo: return bo_suggest_ms * 1e-3;
    case RequestClass::MeshTransfer: return mesh_ms_per_mtri * 1e-3 * units;
    case RequestClass::AiInference: return ai_ms_per_unit * 1e-3 * units;
  }
  return 0.0;
}

void BackgroundLoadConfig::validate() const {
  HB_REQUIRE(std::isfinite(per_tenant_rps) && per_tenant_rps >= 0.0,
             "background per_tenant_rps must be finite and >= 0");
  HB_REQUIRE(decimation_weight >= 0.0 && bo_weight >= 0.0 &&
                 mesh_weight >= 0.0,
             "background class weights must be >= 0");
  HB_REQUIRE(decimation_weight + bo_weight + mesh_weight > 0.0,
             "background class weights sum to zero");
  HB_REQUIRE(std::isfinite(mean_units) && mean_units > 0.0,
             "background mean_units must be positive");
  HB_REQUIRE(std::isfinite(deadline_s) && deadline_s > 0.0,
             "background deadline_s must be positive");
}

double EdgeServerStats::rejection_rate() const {
  return arrivals ? static_cast<double>(rejected) /
                        static_cast<double>(arrivals)
                  : 0.0;
}

double EdgeServerStats::mean_wait_s() const {
  return served ? total_wait_s / static_cast<double>(served) : 0.0;
}

double EdgeServerStats::queue_depth_p95() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : depth_hist) total += c;
  if (total == 0) return 0.0;
  const double target = 0.95 * static_cast<double>(total);
  std::uint64_t acc = 0;
  for (std::size_t d = 0; d < depth_hist.size(); ++d) {
    acc += depth_hist[d];
    if (static_cast<double>(acc) >= target) return static_cast<double>(d);
  }
  return static_cast<double>(depth_hist.size() - 1);
}

void EdgeServerStats::merge(const EdgeServerStats& other) {
  arrivals += other.arrivals;
  admitted += other.admitted;
  rejected += other.rejected;
  served += other.served;
  shed += other.shed;
  bg_arrivals += other.bg_arrivals;
  total_wait_s += other.total_wait_s;
  total_service_s += other.total_service_s;
  if (depth_hist.size() < other.depth_hist.size())
    depth_hist.resize(other.depth_hist.size(), 0);
  for (std::size_t i = 0; i < other.depth_hist.size(); ++i)
    depth_hist[i] += other.depth_hist[i];
}

EdgeServerSim::EdgeServerSim(EdgeServerSpec spec, BackgroundLoadConfig bg,
                             std::size_t background_tenants,
                             std::uint64_t seed)
    : spec_(spec),
      bg_(bg),
      background_tenants_(background_tenants),
      rng_(seed),
      core_free_(static_cast<std::size_t>(spec.cores), 0.0) {
  spec_.validate();
  bg_.validate();
  HB_REQUIRE(spec_.queue_capacity >= 1,
             "edge server queue_capacity must be >= 1");
  stats_.depth_hist.assign(spec_.queue_capacity + 1, 0);
  schedule_next_background();
}

double EdgeServerSim::draw_exponential(double mean) {
  // Inverse-CDF with the open-interval uniform; 1 - u is never 0.
  return -mean * std::log(1.0 - rng_.uniform());
}

void EdgeServerSim::schedule_next_background() {
  const double rate =
      bg_.per_tenant_rps * static_cast<double>(background_tenants_);
  if (rate <= 0.0) {
    next_bg_ = std::numeric_limits<double>::infinity();
    return;
  }
  next_bg_ = std::max(next_bg_ == std::numeric_limits<double>::infinity()
                          ? 0.0
                          : next_bg_,
                      0.0) +
             draw_exponential(1.0 / rate);
}

std::uint64_t EdgeServerSim::admit(std::uint64_t tenant, double service_s,
                                   double arrival_s, double deadline_s,
                                   bool background) {
  ++stats_.arrivals;
  if (background) ++stats_.bg_arrivals;
  const std::size_t depth = queue_.size();
  ++stats_.depth_hist[std::min(depth, stats_.depth_hist.size() - 1)];
  if (depth >= spec_.queue_capacity) {
    ++stats_.rejected;
    return kNoSeq;
  }
  ++stats_.admitted;
  const std::uint64_t seq = next_seq_++;
  queue_.push_back(Pending{tenant, service_s, arrival_s, deadline_s, seq});
  return seq;
}

std::size_t EdgeServerSim::pick_index(double now) const {
  HB_ASSERT(!queue_.empty(), "pick_index on empty queue");
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    const Pending& a = queue_[i];
    const Pending& b = queue_[best];
    bool better = false;
    switch (spec_.policy) {
      case QueuePolicy::Fifo:
        better = a.seq < b.seq;
        break;
      case QueuePolicy::DeadlinePriority:
        better = a.deadline_s < b.deadline_s ||
                 (a.deadline_s == b.deadline_s && a.seq < b.seq);
        break;
      case QueuePolicy::TenantFairShare: {
        auto served_of = [this](std::uint64_t t) {
          auto it = tenant_served_.find(t);
          return it == tenant_served_.end() ? std::uint64_t{0} : it->second;
        };
        const std::uint64_t sa = served_of(a.tenant);
        const std::uint64_t sb = served_of(b.tenant);
        better = sa < sb || (sa == sb && a.seq < b.seq);
        break;
      }
    }
    if (better) best = i;
  }
  (void)now;
  return best;
}

AdmissionResult EdgeServerSim::run(double horizon, std::uint64_t wait_seq) {
  while (true) {
    // Next decision moment: a background arrival or a core assignment.
    double t_assign = std::numeric_limits<double>::infinity();
    if (!queue_.empty()) {
      const double cf =
          *std::min_element(core_free_.begin(), core_free_.end());
      t_assign = std::max(vnow_, cf);
    }
    const double t_next = std::min(next_bg_, t_assign);
    if (wait_seq == kNoSeq && t_next > horizon) {
      vnow_ = std::max(vnow_, horizon);
      return {};
    }

    if (next_bg_ <= t_assign) {
      vnow_ = next_bg_;
      // Background request: class by mix weight, size exponential,
      // tenant cycled through the background population (ids offset so
      // they can never collide with session tenant ids).
      const double wsum =
          bg_.decimation_weight + bg_.bo_weight + bg_.mesh_weight;
      const double u = rng_.uniform() * wsum;
      const RequestClass cls =
          u < bg_.decimation_weight ? RequestClass::Decimation
          : u < bg_.decimation_weight + bg_.bo_weight
              ? RequestClass::RemoteBo
              : RequestClass::MeshTransfer;
      const double units = draw_exponential(bg_.mean_units);
      const std::uint64_t tenant =
          (1ull << 32) + rng_.uniform_index(std::max<std::uint64_t>(
                             1, background_tenants_));
      admit(tenant, spec_.service_seconds(cls, units), vnow_,
            vnow_ + bg_.deadline_s, /*background=*/true);
      schedule_next_background();
      continue;
    }

    // Core assignment at t_assign.
    vnow_ = t_assign;
    const std::size_t i = pick_index(vnow_);
    const Pending p = queue_[i];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    if (spec_.policy == QueuePolicy::DeadlinePriority &&
        p.deadline_s < vnow_) {
      // The issuing client has provably given up; don't burn a core.
      ++stats_.shed;
      if (p.seq == wait_seq) {
        AdmissionResult out;
        out.status = AdmissionStatus::Shed;
        return out;
      }
      continue;
    }
    auto core = std::min_element(core_free_.begin(), core_free_.end());
    const double start = vnow_;
    const double completion = start + p.service_s;
    *core = completion;
    ++stats_.served;
    ++tenant_served_[p.tenant];
    stats_.total_wait_s += start - p.arrival_s;
    stats_.total_service_s += p.service_s;
    if (p.seq == wait_seq) {
      AdmissionResult out;
      out.status = AdmissionStatus::Ok;
      out.wait_s = start - p.arrival_s;
      out.completion_s = completion;
      return out;
    }
  }
}

AdmissionResult EdgeServerSim::submit(const EdgeRequest& req) {
  HB_REQUIRE(std::isfinite(req.arrival_s) && req.arrival_s >= 0.0,
             "edge request arrival must be finite and >= 0");
  HB_REQUIRE(req.deadline_s > req.arrival_s,
             "edge request deadline must be after its arrival");
  // Catch the mirror up to the arrival (admitting background traffic on
  // the way). A previous resolution may already have run ahead; work that
  // virtually started is never rewound.
  run(req.arrival_s, kNoSeq);

  const double arrival = std::max(req.arrival_s, vnow_);
  const std::size_t depth = queue_.size();
  const std::uint64_t seq =
      admit(req.tenant, spec_.service_seconds(req.cls, req.units), arrival,
            req.deadline_s, /*background=*/false);
  if (seq == kNoSeq) {
    AdmissionResult out;
    out.status = AdmissionStatus::Rejected;
    out.depth_at_arrival = depth;
    return out;
  }
  AdmissionResult out = run(0.0, seq);
  out.depth_at_arrival = depth;
  return out;
}

}  // namespace hbosim::edgesvc
