#include "hbosim/edgesvc/broker.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "hbosim/common/error.hpp"

namespace hbosim::edgesvc {

void EdgeServiceSpec::validate() const {
  server.validate();
  link.validate();
  client.validate();
  background.validate();
  HB_REQUIRE(std::isfinite(transfer_flows_per_tenant) &&
                 transfer_flows_per_tenant >= 0.0,
             "transfer_flows_per_tenant must be finite and >= 0");
}

EdgeServiceSpec edge_service_preset(std::string_view name) {
  EdgeServiceSpec spec;
  if (name == "lan") {
    spec.server.cores = 16;
    spec.server.queue_capacity = 256;
    spec.link.rtt_ms = 2.0;
    spec.link.mbit_per_s = 900.0;
    spec.background.per_tenant_rps = 0.2;
    return spec;
  }
  if (name == "wifi") {
    // The paper's Fig. 3 deployment: a campus AP in front of a mid-size
    // edge box. Mild jitter, rare shallow loss bursts.
    spec.server.cores = 4;
    spec.server.queue_capacity = 64;
    spec.link.rtt_ms = 20.0;
    spec.link.mbit_per_s = 120.0;
    spec.link.rtt_jitter_frac = 0.2;
    spec.link.p_good_to_bad = 0.02;
    spec.link.p_bad_to_good = 0.4;
    spec.link.loss_bad = 0.3;
    spec.background.per_tenant_rps = 0.4;
    return spec;
  }
  if (name == "congested") {
    // Overload regime: a starved cell link in front of a small box.
    spec.server.cores = 2;
    spec.server.queue_capacity = 16;
    spec.link.rtt_ms = 45.0;
    spec.link.mbit_per_s = 40.0;
    spec.link.rtt_jitter_frac = 0.35;
    spec.link.p_good_to_bad = 0.05;
    spec.link.p_bad_to_good = 0.25;
    spec.link.loss_bad = 0.5;
    spec.link.loss_good = 0.005;
    spec.background.per_tenant_rps = 0.8;
    spec.background.mean_units = 0.25;
    spec.client.timeout_s = 0.75;
    spec.transfer_flows_per_tenant = 0.05;
    return spec;
  }
  HB_REQUIRE(false, "unknown edge service preset: " + std::string(name) +
                        " (expected lan | wifi | congested)");
  return spec;
}

EdgeBroker::EdgeBroker(EdgeServiceSpec spec, std::size_t session_tenants)
    : spec_(spec),
      background_tenants_(
          (session_tenants > 0 ? session_tenants - 1 : 0) +
          spec.extra_tenants) {
  spec_.validate();
  HB_REQUIRE(session_tenants >= 1,
             "edge broker needs at least one session tenant");
}

std::unique_ptr<EdgeClient> EdgeBroker::make_client(
    std::uint64_t tenant_id, std::uint64_t session_seed) const {
  LinkModelConfig link = spec_.link;
  link.background_flows += spec_.transfer_flows_per_tenant *
                           static_cast<double>(background_tenants_);
  // Decorrelate the edge stream from the session's engine/BO streams.
  SplitMix64 mix(spec_.seed_salt ^
                 (session_seed * 0x9E3779B97F4A7C15ull + 0x1CEB00DAull));
  return std::make_unique<EdgeClient>(spec_.client, spec_.server,
                                      spec_.background, background_tenants_,
                                      link, tenant_id, mix.next());
}

void EdgeBroker::enable_market(const marketsvc::MarketConfig& cfg) {
  HB_REQUIRE(!allocator_, "market already enabled on this broker");
  // The compute-demand seed uses the decimation service rate — the
  // dominant mesh-bearing class; measured usage replaces it after the
  // first epoch anyway.
  allocator_ = std::make_unique<marketsvc::JointAllocator>(
      cfg, static_cast<double>(spec_.server.cores), spec_.link.mbit_per_s,
      spec_.server.decimation_ms_per_mtri * 1e-3);
}

marketsvc::JointAllocator& EdgeBroker::market() {
  HB_REQUIRE(allocator_, "enable_market() was never called on this broker");
  return *allocator_;
}

const marketsvc::JointAllocator& EdgeBroker::market() const {
  HB_REQUIRE(allocator_, "enable_market() was never called on this broker");
  return *allocator_;
}

std::unique_ptr<EdgeClient> EdgeBroker::make_market_client(
    const marketsvc::TenantAllocation& alloc,
    std::uint64_t session_seed) const {
  HB_REQUIRE(allocator_,
             "enable_market() must precede make_market_client()");
  LinkModelConfig link = spec_.link;
  BackgroundLoadConfig bg = spec_.background;
  std::size_t bg_tenants = 1;  // the decided rate is already an aggregate
  if (alloc.admitted) {
    // Decided background replaces the static per-tenant guesses: the
    // mirror contends with exactly the link activity and request stream
    // the allocator admitted for the *other* tenants.
    link.background_flows = alloc.bg_flows;
    bg.per_tenant_rps = alloc.bg_rps;
    if (alloc.bg_mean_units > 0.0) bg.mean_units = alloc.bg_mean_units;
  } else {
    // Scavenger class: a sliver of the downlink, no reserved compute
    // mirror load — requests mostly blow the timeout and the session
    // degrades through its on-device fallback path, which is the point.
    link.background_flows = 0.0;
    link.mbit_per_s =
        std::max(kMinLinkMbitPerS,
                 spec_.link.mbit_per_s *
                     allocator_->config().denied_bandwidth_frac);
    bg_tenants = 0;
  }
  // Same decorrelation as make_client, so a tenant's edge randomness
  // stays a pure function of its session seed either way.
  SplitMix64 mix(spec_.seed_salt ^
                 (session_seed * 0x9E3779B97F4A7C15ull + 0x1CEB00DAull));
  auto client = std::make_unique<EdgeClient>(spec_.client, spec_.server, bg,
                                             bg_tenants, link, alloc.tenant,
                                             mix.next());
  client->set_resolution(alloc.resolution);
  return client;
}

void EdgeBroker::absorb(const EdgeClient& client) {
  // Split the absorbed stats: integer counters merge eagerly (commutative
  // sums), floating-point totals are retained per tenant and re-summed in
  // tenant-id order at stats() time so the roll-up does not depend on the
  // completion order of worker threads.
  EdgeClientStats cs = client.stats();
  EdgeServerStats ss = client.server().stats();
  AbsorbedTotals totals;
  totals.client_elapsed_s = cs.total_elapsed_s;
  totals.client_units = cs.units;
  totals.client_own_service_s = cs.own_service_s;
  totals.server_wait_s = ss.total_wait_s;
  totals.server_service_s = ss.total_service_s;
  cs.total_elapsed_s = 0.0;
  cs.units = 0.0;
  cs.own_service_s = 0.0;
  ss.total_wait_s = 0.0;
  ss.total_service_s = 0.0;

  std::lock_guard<std::mutex> lock(mu_);
  stats_.client.merge(cs);
  stats_.server.merge(ss);
  AbsorbedTotals& acc = absorbed_[client.tenant()];
  acc.client_elapsed_s += totals.client_elapsed_s;
  acc.client_units += totals.client_units;
  acc.client_own_service_s += totals.client_own_service_s;
  acc.server_wait_s += totals.server_wait_s;
  acc.server_service_s += totals.server_service_s;
  ++stats_.clients_absorbed;
}

EdgeFleetStats EdgeBroker::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EdgeFleetStats out = stats_;
  // Deterministic re-summation: tenant-id order, whatever order the
  // worker threads finished in.
  for (const auto& [tenant, totals] : absorbed_) {
    (void)tenant;
    out.client.total_elapsed_s += totals.client_elapsed_s;
    out.client.units += totals.client_units;
    out.client.own_service_s += totals.client_own_service_s;
    out.server.total_wait_s += totals.server_wait_s;
    out.server.total_service_s += totals.server_service_s;
  }
  return out;
}

}  // namespace hbosim::edgesvc
