#include "hbosim/edgesvc/broker.hpp"

#include <cmath>
#include <string>

#include "hbosim/common/error.hpp"

namespace hbosim::edgesvc {

void EdgeServiceSpec::validate() const {
  server.validate();
  link.validate();
  client.validate();
  background.validate();
  HB_REQUIRE(std::isfinite(transfer_flows_per_tenant) &&
                 transfer_flows_per_tenant >= 0.0,
             "transfer_flows_per_tenant must be finite and >= 0");
}

EdgeServiceSpec edge_service_preset(std::string_view name) {
  EdgeServiceSpec spec;
  if (name == "lan") {
    spec.server.cores = 16;
    spec.server.queue_capacity = 256;
    spec.link.rtt_ms = 2.0;
    spec.link.mbit_per_s = 900.0;
    spec.background.per_tenant_rps = 0.2;
    return spec;
  }
  if (name == "wifi") {
    // The paper's Fig. 3 deployment: a campus AP in front of a mid-size
    // edge box. Mild jitter, rare shallow loss bursts.
    spec.server.cores = 4;
    spec.server.queue_capacity = 64;
    spec.link.rtt_ms = 20.0;
    spec.link.mbit_per_s = 120.0;
    spec.link.rtt_jitter_frac = 0.2;
    spec.link.p_good_to_bad = 0.02;
    spec.link.p_bad_to_good = 0.4;
    spec.link.loss_bad = 0.3;
    spec.background.per_tenant_rps = 0.4;
    return spec;
  }
  if (name == "congested") {
    // Overload regime: a starved cell link in front of a small box.
    spec.server.cores = 2;
    spec.server.queue_capacity = 16;
    spec.link.rtt_ms = 45.0;
    spec.link.mbit_per_s = 40.0;
    spec.link.rtt_jitter_frac = 0.35;
    spec.link.p_good_to_bad = 0.05;
    spec.link.p_bad_to_good = 0.25;
    spec.link.loss_bad = 0.5;
    spec.link.loss_good = 0.005;
    spec.background.per_tenant_rps = 0.8;
    spec.background.mean_units = 0.25;
    spec.client.timeout_s = 0.75;
    spec.transfer_flows_per_tenant = 0.05;
    return spec;
  }
  HB_REQUIRE(false, "unknown edge service preset: " + std::string(name) +
                        " (expected lan | wifi | congested)");
  return spec;
}

EdgeBroker::EdgeBroker(EdgeServiceSpec spec, std::size_t session_tenants)
    : spec_(spec),
      background_tenants_(
          (session_tenants > 0 ? session_tenants - 1 : 0) +
          spec.extra_tenants) {
  spec_.validate();
  HB_REQUIRE(session_tenants >= 1,
             "edge broker needs at least one session tenant");
}

std::unique_ptr<EdgeClient> EdgeBroker::make_client(
    std::uint64_t tenant_id, std::uint64_t session_seed) const {
  LinkModelConfig link = spec_.link;
  link.background_flows += spec_.transfer_flows_per_tenant *
                           static_cast<double>(background_tenants_);
  // Decorrelate the edge stream from the session's engine/BO streams.
  SplitMix64 mix(spec_.seed_salt ^
                 (session_seed * 0x9E3779B97F4A7C15ull + 0x1CEB00DAull));
  return std::make_unique<EdgeClient>(spec_.client, spec_.server,
                                      spec_.background, background_tenants_,
                                      link, tenant_id, mix.next());
}

void EdgeBroker::absorb(const EdgeClient& client) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.client.merge(client.stats());
  stats_.server.merge(client.server().stats());
  ++stats_.clients_absorbed;
}

EdgeFleetStats EdgeBroker::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace hbosim::edgesvc
