#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>

#include "hbosim/edgesvc/edge_client.hpp"
#include "hbosim/marketsvc/allocator.hpp"

/// \file broker.hpp
/// The fleet-facing entry point of hbosim::edgesvc: one EdgeBroker stands
/// for one shared edge box serving every session of a fleet. It stamps
/// out per-session EdgeClients — each a deterministic mirror of the
/// shared server whose background load scales with the tenant count, so
/// what a session experiences depends only on (spec, tenant count,
/// session seed), never on thread scheduling — and absorbs their
/// statistics into a thread-safe fleet-wide roll-up (rejection rate,
/// fallback rate, queue depth p95) that fleet::FleetMetrics reports next
/// to ε/Q/B.

namespace hbosim::edgesvc {

/// Everything needed to describe the shared edge service.
struct EdgeServiceSpec {
  EdgeServerSpec server;
  LinkModelConfig link;
  EdgeClientConfig client;
  BackgroundLoadConfig background;
  /// Non-session tenants loading the box on top of the fleet's sessions
  /// (e.g. third-party apps on the same cell). Lets a single session
  /// experience heavy contention without simulating a huge fleet.
  std::size_t extra_tenants = 0;
  /// Estimated concurrent downlink flows contributed per background
  /// tenant (Little's-law style); scales the link's bandwidth sharing.
  double transfer_flows_per_tenant = 0.02;
  /// Salted into every client's Rng seed.
  std::uint64_t seed_salt = 0xED6E5EEDull;

  void validate() const;
};

/// Named starting points for experiments: "lan" (fat link, many cores,
/// effectively uncontended), "wifi" (the paper's Fig. 3 setup with mild
/// jitter), "congested" (few cores, shallow queue, bursty lossy cell
/// link — the overload regime).
EdgeServiceSpec edge_service_preset(std::string_view name);

/// Fleet-wide aggregate of every client mirror absorbed so far. Server
/// counters are summed across mirrors, so rates are per-mirror averages
/// weighted by arrivals (each mirror simulates its own view of the box).
struct EdgeFleetStats {
  EdgeClientStats client;
  EdgeServerStats server;
  std::size_t clients_absorbed = 0;
};

class EdgeBroker {
 public:
  /// `session_tenants` is the number of fleet sessions sharing the box.
  EdgeBroker(EdgeServiceSpec spec, std::size_t session_tenants);

  /// Build the mirror client for one session. Deterministic in (spec,
  /// tenant count, session_seed); callable from any thread.
  std::unique_ptr<EdgeClient> make_client(std::uint64_t tenant_id,
                                          std::uint64_t session_seed) const;

  // --- The edge as an actor (marketsvc) ---------------------------------

  /// Attach the cross-tenant JointAllocator, turning the broker from a
  /// bookkeeper into an actor. Call once, before any market client is
  /// handed out; the fleet then drives market().tick()/observe() at its
  /// epoch barriers (main thread, session-id order).
  void enable_market(const marketsvc::MarketConfig& cfg);
  bool market_enabled() const { return allocator_ != nullptr; }
  marketsvc::JointAllocator& market();
  const marketsvc::JointAllocator& market() const;

  /// Build the mirror client honoring one tick decision: the mirror's
  /// link share and background process carry the *decided* activity of
  /// the other admitted tenants instead of the static per-tenant guess,
  /// the resolution knob is pre-set, and a denied tenant gets the
  /// scavenger-class link (its requests mostly time out into on-device
  /// fallbacks). Deterministic in (spec, allocation, session_seed);
  /// callable from any thread.
  std::unique_ptr<EdgeClient> make_market_client(
      const marketsvc::TenantAllocation& alloc,
      std::uint64_t session_seed) const;

  /// Fold a finished client's statistics into the fleet view
  /// (thread-safe; call once per client, after its session completed).
  /// Aggregation is order-independent: integer counters are commutative
  /// sums, and floating-point totals are retained per tenant and re-summed
  /// in tenant-id order at stats() time, so the roll-up is bitwise
  /// identical no matter how absorb() calls interleave across threads.
  void absorb(const EdgeClient& client);

  EdgeFleetStats stats() const;
  const EdgeServiceSpec& spec() const { return spec_; }
  /// Background tenants each mirror simulates (sessions - 1 + extra).
  std::size_t background_tenants() const { return background_tenants_; }

 private:
  /// Floating-point totals of one absorbed tenant, kept out of the eager
  /// merge so stats() can sum them in a thread-count-invariant order.
  struct AbsorbedTotals {
    double client_elapsed_s = 0.0;
    double client_units = 0.0;
    double client_own_service_s = 0.0;
    double server_wait_s = 0.0;
    double server_service_s = 0.0;
  };

  EdgeServiceSpec spec_;
  std::size_t background_tenants_;
  std::unique_ptr<marketsvc::JointAllocator> allocator_;

  mutable std::mutex mu_;
  EdgeFleetStats stats_;
  /// Keyed by tenant id; std::map so stats() re-sums in sorted order.
  std::map<std::uint64_t, AbsorbedTotals> absorbed_;
};

}  // namespace hbosim::edgesvc
