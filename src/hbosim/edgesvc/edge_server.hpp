#pragma once

#include <cstdint>
#include <limits>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "hbosim/common/rng.hpp"

/// \file edge_server.hpp
/// The contended edge server: a worker pool fed by a bounded admission
/// queue with pluggable ordering policies, serving three request classes
/// (mesh decimation, remote-BO suggest exchanges, raw mesh transfers).
///
/// The server is simulated in *virtual time* as seen by one session:
/// every hbosim session owns an independent des::Simulator clock, so a
/// literally shared queue would make event times depend on thread
/// scheduling and break the fleet's bit-identical determinism guarantee.
/// Instead, each session's EdgeServerSim is a deterministic mirror of the
/// shared box: it simulates the session's own requests *plus* a seeded
/// background arrival process standing in for the other N-1 tenants.
/// Contention is therefore statistical (load grows with the configured
/// tenant count), not causal across sessions — the price of exact replay.
/// The thread-safe EdgeBroker aggregates every mirror's statistics into
/// the fleet-wide view (see broker.hpp).
///
/// A session request is resolved synchronously at submit(): the mirror
/// catches its virtual clock up to the arrival time (admitting background
/// arrivals on the way), admits or rejects against the bounded queue, and
/// then drives the assignment loop forward — generating further background
/// arrivals as needed, since under priority policies those may legally
/// overtake — until the request reaches a core. Admitted-but-abandoned
/// work (a client that timed out waiting) still occupies the queue and a
/// core, exactly as a real server that cannot see client-side timeouts;
/// the deadline-priority policy is the exception: it sheds requests whose
/// deadline already passed at pick time instead of burning a core on them.

namespace hbosim::edgesvc {

enum class RequestClass : std::uint8_t {
  Decimation,
  RemoteBo,
  MeshTransfer,
  /// Offloaded AI inference (hbosim::offload): `units` carries the
  /// inference's *device-milliseconds* of compute demand, which the
  /// server converts through ai_ms_per_unit (server cores are a few
  /// times faster than a phone accelerator).
  AiInference,
};
enum class QueuePolicy : std::uint8_t { Fifo, DeadlinePriority, TenantFairShare };

const char* request_class_name(RequestClass c);
const char* queue_policy_name(QueuePolicy p);
/// Parse "fifo" / "deadline" / "fair" (throws hbosim::Error otherwise).
QueuePolicy queue_policy_from_name(std::string_view name);

struct EdgeServerSpec {
  int cores = 4;                    ///< Parallel workers.
  std::size_t queue_capacity = 64;  ///< Bounded admission queue.
  QueuePolicy policy = QueuePolicy::Fifo;

  /// Per-class service-time models. Decimation and mesh transfers scale
  /// with the request's size in mega-triangles; a BO suggest is flat.
  double decimation_ms_per_mtri = 35.0;  ///< Matches the legacy service.
  double bo_suggest_ms = 2.0;            ///< Matches RemoteOptimizerConfig.
  double mesh_ms_per_mtri = 4.0;         ///< Framing/compression cost.
  /// Server milliseconds per device-millisecond of offloaded inference
  /// demand (AiInference `units`). 0.25 models an edge core ~4x faster
  /// than the device accelerator the demand was profiled on.
  double ai_ms_per_unit = 0.25;

  void validate() const;
  double service_seconds(RequestClass cls, double units) const;
};

/// Synthetic per-tenant load standing in for the other tenants of the
/// shared box. All draws come from the mirror's seeded Rng stream.
struct BackgroundLoadConfig {
  double per_tenant_rps = 0.4;  ///< Poisson arrival rate per tenant (req/s).
  /// Class mix weights (need not be normalized).
  double decimation_weight = 0.7;
  double bo_weight = 0.2;
  double mesh_weight = 0.1;
  double mean_units = 0.15;   ///< Exponential mean request size (mtri).
  double deadline_s = 0.25;   ///< Background clients' patience (for
                              ///< deadline-ordered queues and shedding).
  void validate() const;
};

struct EdgeRequest {
  std::uint64_t tenant = 0;
  RequestClass cls = RequestClass::Decimation;
  double units = 0.0;     ///< Mega-triangles (ignored for RemoteBo).
  double arrival_s = 0.0;
  /// Absolute deadline; orders DeadlinePriority queues and marks when the
  /// issuing client will give up. Defaults to "infinitely patient".
  double deadline_s = std::numeric_limits<double>::infinity();
};

enum class AdmissionStatus : std::uint8_t {
  Ok,        ///< Assigned to a core; completion_s is valid.
  Rejected,  ///< Bounced at the bounded queue.
  Shed,      ///< Deadline passed while queued; dropped by the deadline
             ///< policy before reaching a core.
};

struct AdmissionResult {
  AdmissionStatus status = AdmissionStatus::Rejected;
  double wait_s = 0.0;        ///< Queue wait before service started.
  double completion_s = 0.0;  ///< Absolute service completion (Ok only).
  std::size_t depth_at_arrival = 0;
};

struct EdgeServerStats {
  std::uint64_t arrivals = 0;   ///< Session + background arrivals.
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;   ///< Bounced at the bounded queue.
  std::uint64_t served = 0;     ///< Reached a core.
  std::uint64_t shed = 0;       ///< Expired in queue (deadline policy).
  std::uint64_t bg_arrivals = 0;  ///< Subset of arrivals: background.
  double total_wait_s = 0.0;      ///< Summed queue waits of served work.
  double total_service_s = 0.0;   ///< Summed service (core busy) time.
  /// Queue depth observed at each arrival; index clamped to capacity.
  std::vector<std::uint64_t> depth_hist;

  double rejection_rate() const;
  double mean_wait_s() const;
  /// Depth below which 95% of arrivals found the queue.
  double queue_depth_p95() const;
  /// Element-wise accumulate (for the broker's fleet-wide roll-up).
  void merge(const EdgeServerStats& other);
};

class EdgeServerSim {
 public:
  /// `background_tenants` is the number of *other* tenants this mirror
  /// stands in for; 0 gives an uncontended private server. `seed` fixes
  /// the background process (derive it from the session seed).
  EdgeServerSim(EdgeServerSpec spec, BackgroundLoadConfig bg,
                std::size_t background_tenants, std::uint64_t seed);

  /// Submit one session request and resolve it against the mirror.
  /// Arrivals should be non-decreasing; an arrival behind the virtual
  /// clock (possible when a previous resolution ran ahead) is treated as
  /// arriving "now" without rewinding already-started work.
  AdmissionResult submit(const EdgeRequest& req);

  const EdgeServerStats& stats() const { return stats_; }
  const EdgeServerSpec& spec() const { return spec_; }
  double virtual_now() const { return vnow_; }
  std::size_t queue_depth() const { return queue_.size(); }

 private:
  struct Pending {
    std::uint64_t tenant = 0;
    double service_s = 0.0;
    double arrival_s = 0.0;
    double deadline_s = 0.0;
    std::uint64_t seq = 0;  ///< Admission order; FIFO tie-break.
  };

  static constexpr std::uint64_t kNoSeq = ~0ull;

  /// Admit or bounce an arrival (records depth + counters). Returns the
  /// assigned seq, or kNoSeq when rejected.
  std::uint64_t admit(std::uint64_t tenant, double service_s,
                      double arrival_s, double deadline_s, bool background);

  /// Drive the mirror: admit background arrivals and start queued work in
  /// virtual-time order. With `wait_seq` set, runs until that request is
  /// assigned (returning its result) or shed; otherwise runs until the
  /// next step would pass `horizon` and returns nullopt-equivalent.
  AdmissionResult run(double horizon, std::uint64_t wait_seq);

  /// Policy choice among queued requests at virtual time `now`.
  std::size_t pick_index(double now) const;

  void schedule_next_background();
  double draw_exponential(double mean);

  EdgeServerSpec spec_;
  BackgroundLoadConfig bg_;
  std::size_t background_tenants_;
  Rng rng_;

  double vnow_ = 0.0;
  std::uint64_t next_seq_ = 0;
  double next_bg_ = std::numeric_limits<double>::infinity();
  std::vector<double> core_free_;  ///< Absolute per-core busy-until times.
  std::vector<Pending> queue_;
  /// Served-request count per tenant (TenantFairShare bookkeeping).
  std::unordered_map<std::uint64_t, std::uint64_t> tenant_served_;

  EdgeServerStats stats_;
};

}  // namespace hbosim::edgesvc
