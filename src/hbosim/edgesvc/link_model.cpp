#include "hbosim/edgesvc/link_model.hpp"

#include <cmath>
#include <string>

#include "hbosim/common/error.hpp"

namespace hbosim::edgesvc {

namespace {

void require_prob(double p, const char* what) {
  HB_REQUIRE(std::isfinite(p) && p >= 0.0 && p <= 1.0,
             std::string(what) + " must be a probability in [0, 1]");
}

}  // namespace

void LinkModelConfig::validate() const {
  HB_REQUIRE(std::isfinite(rtt_ms) && rtt_ms >= 0.0,
             "link rtt_ms must be finite and >= 0");
  HB_REQUIRE(std::isfinite(mbit_per_s) && mbit_per_s >= kMinLinkMbitPerS,
             "link mbit_per_s must be >= " + std::to_string(kMinLinkMbitPerS) +
                 " Mbit/s — zero/near-zero throughput would produce "
                 "unbounded transfer times");
  HB_REQUIRE(std::isfinite(rtt_jitter_frac) && rtt_jitter_frac >= 0.0 &&
                 rtt_jitter_frac < 1.0,
             "link rtt_jitter_frac must be in [0, 1)");
  require_prob(p_good_to_bad, "link p_good_to_bad");
  require_prob(p_bad_to_good, "link p_bad_to_good");
  require_prob(loss_good, "link loss_good");
  require_prob(loss_bad, "link loss_bad");
  HB_REQUIRE(std::isfinite(background_flows) && background_flows >= 0.0,
             "link background_flows must be finite and >= 0");
  HB_REQUIRE(std::isfinite(share_weight) && share_weight >= 0.0,
             "link share_weight must be finite and >= 0");
}

LinkModel::LinkModel(LinkModelConfig cfg) : cfg_(cfg) { cfg_.validate(); }

double LinkModel::effective_mbit_per_s() const {
  return cfg_.mbit_per_s /
         (1.0 + cfg_.share_weight * cfg_.background_flows);
}

double LinkModel::nominal_seconds(std::uint64_t payload_bytes) const {
  const double bits = static_cast<double>(payload_bytes) * 8.0;
  return cfg_.rtt_ms * 1e-3 + bits / (effective_mbit_per_s() * 1e6);
}

void LinkModel::begin_transfer(std::uint64_t payload_bytes, double now_s) {
  HB_REQUIRE(std::isfinite(now_s) && now_s >= 0.0,
             "link transfer start time must be finite and >= 0");
  transfer_active_ = true;
  transfer_remaining_bits_ = static_cast<double>(payload_bytes) * 8.0;
  transfer_settled_s_ = now_s;
}

void LinkModel::settle_transfer(double now_s) {
  if (!transfer_active_) return;
  HB_REQUIRE(now_s >= transfer_settled_s_,
             "link transfer progress cannot be settled backwards");
  transfer_remaining_bits_ -=
      (now_s - transfer_settled_s_) * effective_mbit_per_s() * 1e6;
  transfer_settled_s_ = now_s;
  if (transfer_remaining_bits_ <= 0.0) {
    transfer_remaining_bits_ = 0.0;
    transfer_active_ = false;
  }
}

double LinkModel::transfer_remaining_bytes(double now_s) {
  settle_transfer(now_s);
  return transfer_remaining_bits_ / 8.0;
}

double LinkModel::transfer_completion_s() const {
  HB_REQUIRE(transfer_active_, "no link transfer in flight");
  return transfer_settled_s_ +
         transfer_remaining_bits_ / (effective_mbit_per_s() * 1e6);
}

void LinkModel::set_background_flows(double flows, double now_s) {
  HB_REQUIRE(std::isfinite(flows) && flows >= 0.0,
             "link background_flows must be finite and >= 0");
  if (flows == cfg_.background_flows) return;  // strict no-op, like
                                               // PsResource::set_capacity
  settle_transfer(now_s);  // earned progress settles at the OLD rate
  cfg_.background_flows = flows;
}

LinkSample LinkModel::sample(std::uint64_t payload_bytes, Rng& rng) {
  // Advance the Gilbert-Elliott state once per exchange, then sample loss
  // from the state's rate. Draws are skipped when a probability is exactly
  // 0 so a loss-free config consumes no generator state for losses.
  if (bad_) {
    if (cfg_.p_bad_to_good > 0.0 && rng.uniform() < cfg_.p_bad_to_good)
      bad_ = false;
  } else {
    if (cfg_.p_good_to_bad > 0.0 && rng.uniform() < cfg_.p_good_to_bad)
      bad_ = true;
  }
  const double loss = bad_ ? cfg_.loss_bad : cfg_.loss_good;
  LinkSample out;
  if (loss > 0.0 && rng.uniform() < loss) {
    out.lost = true;
    return out;
  }
  double rtt_scale = 1.0;
  if (cfg_.rtt_jitter_frac > 0.0)
    rtt_scale += cfg_.rtt_jitter_frac * rng.uniform(-1.0, 1.0);
  const double bits = static_cast<double>(payload_bytes) * 8.0;
  out.seconds = cfg_.rtt_ms * 1e-3 * rtt_scale +
                bits / (effective_mbit_per_s() * 1e6);
  return out;
}

}  // namespace hbosim::edgesvc
