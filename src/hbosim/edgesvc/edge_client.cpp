#include "hbosim/edgesvc/edge_client.hpp"

#include <algorithm>
#include <cmath>

#include "hbosim/common/error.hpp"
#include "hbosim/telemetry/telemetry.hpp"

namespace hbosim::edgesvc {

void EdgeClientConfig::validate() const {
  HB_REQUIRE(std::isfinite(timeout_s) && timeout_s > 0.0,
             "edge client timeout_s must be positive");
  HB_REQUIRE(max_attempts >= 1, "edge client max_attempts must be >= 1");
  HB_REQUIRE(std::isfinite(backoff_base_s) && backoff_base_s >= 0.0,
             "edge client backoff_base_s must be >= 0");
  HB_REQUIRE(std::isfinite(backoff_mult) && backoff_mult >= 1.0,
             "edge client backoff_mult must be >= 1");
  HB_REQUIRE(std::isfinite(backoff_cap_s) && backoff_cap_s >= 0.0,
             "edge client backoff_cap_s must be >= 0");
  HB_REQUIRE(std::isfinite(backoff_jitter_frac) &&
                 backoff_jitter_frac >= 0.0 && backoff_jitter_frac < 1.0,
             "edge client backoff_jitter_frac must be in [0, 1)");
}

void EdgeClientStats::merge(const EdgeClientStats& other) {
  requests += other.requests;
  successes += other.successes;
  fallbacks += other.fallbacks;
  retries += other.retries;
  rejected_attempts += other.rejected_attempts;
  timeout_attempts += other.timeout_attempts;
  lost_attempts += other.lost_attempts;
  total_elapsed_s += other.total_elapsed_s;
  payload_bytes += other.payload_bytes;
  units += other.units;
  own_service_s += other.own_service_s;
}

void EdgeClient::set_resolution(double r) {
  HB_REQUIRE(std::isfinite(r) && r > 0.0 && r <= 1.0,
             "edge client resolution must be in (0, 1]");
  resolution_ = r;
}

EdgeClient::EdgeClient(EdgeClientConfig cfg, const EdgeServerSpec& server,
                       const BackgroundLoadConfig& background,
                       std::size_t background_tenants,
                       const LinkModelConfig& link, std::uint64_t tenant,
                       std::uint64_t seed)
    : cfg_(cfg),
      server_(server, background, background_tenants,
              SplitMix64(seed ^ 0xE0D6E5E6Dull).next()),
      link_(link),
      rng_(SplitMix64(seed ^ 0x11AA22BB33CC44DDull).next()),
      tenant_(tenant) {
  cfg_.validate();
}

double EdgeClient::nominal_backoff_s(int retry) const {
  HB_REQUIRE(retry >= 1, "retry index is 1-based");
  const double raw =
      cfg_.backoff_base_s * std::pow(cfg_.backoff_mult, retry - 1);
  return std::min(raw, cfg_.backoff_cap_s);
}

EdgeResponse EdgeClient::perform(RequestClass cls, double units,
                                 std::uint64_t payload_bytes, double now_s,
                                 double timeout_override_s,
                                 int max_attempts_override) {
  HB_REQUIRE(std::isfinite(now_s) && now_s >= 0.0,
             "edge request time must be finite and >= 0");
  HB_REQUIRE(std::isfinite(timeout_override_s) && timeout_override_s >= 0.0,
             "edge timeout override must be finite and >= 0");
  HB_REQUIRE(max_attempts_override >= 0,
             "edge attempt-budget override must be >= 0");
  const double timeout_s =
      timeout_override_s > 0.0 ? timeout_override_s : cfg_.timeout_s;
  const int max_attempts =
      max_attempts_override > 0 ? max_attempts_override : cfg_.max_attempts;
  if (resolution_ != 1.0 && cls != RequestClass::RemoteBo) {
    // Market-trimmed tenant: mesh area (and with it server work and
    // response size) shrinks with the resolution squared. Guarded so the
    // default knob leaves the request path bitwise untouched.
    const double area = resolution_ * resolution_;
    units *= area;
    payload_bytes = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(payload_bytes) * area));
  }
  ++stats_.requests;
  HB_TELEM_COUNT("edge.requests", 1.0);

  EdgeResponse out;
  double t = now_s;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    out.attempts = attempt;
    if (attempt > 1) {
      ++stats_.retries;
      HB_TELEM_COUNT("edge.retries", 1.0);
      double backoff = nominal_backoff_s(attempt - 1);
      if (cfg_.backoff_jitter_frac > 0.0)
        backoff *= 1.0 + cfg_.backoff_jitter_frac * rng_.uniform(-1.0, 1.0);
      t += backoff;
    }

    EdgeRequest req;
    req.tenant = tenant_;
    req.cls = cls;
    req.units = units;
    req.arrival_s = t;
    req.deadline_s = t + timeout_s;
    const AdmissionResult adm = server_.submit(req);

    if (adm.status == AdmissionStatus::Rejected) {
      // Bounced at the queue: the NACK comes back after one exchange RTT.
      out.last_status = EdgeStatus::Rejected;
      ++stats_.rejected_attempts;
      HB_TELEM_COUNT("edge.rejected_attempts", 1.0);
      const LinkSample nack = link_.sample(0, rng_);
      if (!nack.lost) out.link_s += std::min(nack.seconds, timeout_s);
      t += nack.lost ? timeout_s
                     : std::min(nack.seconds, timeout_s);
      continue;
    }
    if (adm.status == AdmissionStatus::Shed) {
      out.last_status = EdgeStatus::TimedOut;
      ++stats_.timeout_attempts;
      HB_TELEM_COUNT("edge.timeout_attempts", 1.0);
      t += timeout_s;
      continue;
    }

    // Served: the response (real payload) crosses the shared link. The
    // attempt's demand is booked here — a lost or late response still
    // burned the core and occupied the downlink.
    stats_.units += units;
    stats_.own_service_s += server_.spec().service_seconds(cls, units);
    stats_.payload_bytes += payload_bytes;
    const LinkSample down = link_.sample(payload_bytes, rng_);
    if (down.lost) {
      out.last_status = EdgeStatus::LinkLost;
      ++stats_.lost_attempts;
      HB_TELEM_COUNT("edge.lost_attempts", 1.0);
      t += timeout_s;
      continue;
    }
    out.link_s += std::min(down.seconds, timeout_s);
    const double response_at = adm.completion_s + down.seconds;
    if (response_at > req.arrival_s + timeout_s) {
      out.last_status = EdgeStatus::TimedOut;
      ++stats_.timeout_attempts;
      HB_TELEM_COUNT("edge.timeout_attempts", 1.0);
      t += timeout_s;
      continue;
    }

    out.ok = true;
    out.last_status = EdgeStatus::Ok;
    out.elapsed_s = response_at - now_s;
    ++stats_.successes;
    stats_.total_elapsed_s += out.elapsed_s;
    if (telemetry::enabled()) {
      HB_TELEM_COUNT("edge.successes", 1.0);
      HB_TELEM_HIST_US("edge.response_sim_us", out.elapsed_s * 1e6);
    }
    return out;
  }

  // Attempt budget exhausted — the caller degrades on-device.
  out.elapsed_s = t - now_s;
  ++stats_.fallbacks;
  stats_.total_elapsed_s += out.elapsed_s;
  HB_TELEM_COUNT("edge.fallbacks", 1.0);
  return out;
}

}  // namespace hbosim::edgesvc
