#pragma once

#include <cstdint>

#include "hbosim/edgesvc/edge_server.hpp"
#include "hbosim/edgesvc/link_model.hpp"

/// \file edge_client.hpp
/// Device-side access to the contended edge server: every exchange runs
/// under a timeout, failed attempts (bounced at the admission queue, lost
/// on the link, or not answered in time) are retried with capped,
/// jittered exponential backoff, and when the attempt budget is exhausted
/// the caller is told to degrade gracefully on-device — the decimation
/// path falls back to the nearest cached LOD and the Section VI
/// warm-start path falls back to local BO (see edge::DecimationService
/// and core::MonitoredSession).
///
/// One EdgeClient belongs to one session (its tenant id) and bundles the
/// session's server mirror, its stochastic link, and a dedicated Rng
/// stream, so all edge randomness is a pure function of the session seed.
/// Clients are handed out by the fleet's EdgeBroker (broker.hpp).
///
/// Time accounting is virtual (simulated seconds): perform() returns the
/// elapsed time the caller should charge to its DES clock. The request
/// uplink is a few bytes and is folded into the response exchange's RTT,
/// mirroring the legacy NetworkModel's single-exchange accounting — so an
/// uncontended, jitter-free client reproduces the closed-form delay
/// exactly. A timed-out attempt costs the full timeout; a rejection costs
/// one (sampled) RTT, since the server bounces it immediately.

namespace hbosim::edgesvc {

struct EdgeClientConfig {
  /// Per-attempt response deadline. Sized so an uncontended full-quality
  /// mesh download (a few MB over the default link) fits comfortably;
  /// queueing and loss are what push exchanges over it.
  double timeout_s = 1.5;
  int max_attempts = 3;      ///< 1 initial try + (max_attempts - 1) retries.
  double backoff_base_s = 0.05;
  double backoff_mult = 2.0;
  double backoff_cap_s = 1.0;
  /// Backoff is scaled by a uniform factor in [1 - f, 1 + f] (decorrelates
  /// retry storms across tenants); 0 disables jitter.
  double backoff_jitter_frac = 0.1;
  void validate() const;
};

enum class EdgeStatus : std::uint8_t {
  Ok,        ///< Response arrived within the timeout.
  Rejected,  ///< Last attempt bounced at the admission queue.
  TimedOut,  ///< Last attempt exceeded the timeout (queued, served late,
             ///< or shed by the deadline policy).
  LinkLost,  ///< Last attempt lost in a link loss burst.
};

struct EdgeResponse {
  bool ok = false;
  EdgeStatus last_status = EdgeStatus::TimedOut;
  int attempts = 0;
  /// Simulated seconds from issue to success — or to giving up, at which
  /// point the caller takes its on-device fallback path.
  double elapsed_s = 0.0;
  /// The on-air subset of `elapsed_s`: link samples that actually moved
  /// bits (responses, NACKs), attempts summed. The rest of the elapsed
  /// time the client radio idle-listens — server queueing, service, and
  /// loss timeouts. Energy models charge the two at different power.
  double link_s = 0.0;
};

struct EdgeClientStats {
  std::uint64_t requests = 0;
  std::uint64_t successes = 0;
  std::uint64_t fallbacks = 0;  ///< Requests that exhausted every attempt.
  std::uint64_t retries = 0;    ///< Attempts beyond each request's first.
  std::uint64_t rejected_attempts = 0;
  std::uint64_t timeout_attempts = 0;
  std::uint64_t lost_attempts = 0;
  double total_elapsed_s = 0.0;  ///< Summed perform() elapsed times.
  /// Downlink demand actually placed on the shared link: response bytes
  /// of every served attempt (lost/late ones still occupied the medium).
  std::uint64_t payload_bytes = 0;
  double units = 0.0;          ///< Request sizes (mtri) that reached a core.
  double own_service_s = 0.0;  ///< Core-seconds burned by own requests.

  double fallback_rate() const {
    return requests ? static_cast<double>(fallbacks) /
                          static_cast<double>(requests)
                    : 0.0;
  }
  void merge(const EdgeClientStats& other);
};

class EdgeClient {
 public:
  EdgeClient(EdgeClientConfig cfg, const EdgeServerSpec& server,
             const BackgroundLoadConfig& background,
             std::size_t background_tenants, const LinkModelConfig& link,
             std::uint64_t tenant, std::uint64_t seed);

  /// One logical edge exchange (retries included) issued at simulated
  /// time `now_s`. `units` sizes the server-side work (mega-triangles;
  /// ignored for RemoteBo), `payload_bytes` sizes the downlink response.
  /// `timeout_override_s` / `max_attempts_override` replace the config's
  /// per-attempt deadline and attempt budget for this exchange only
  /// (0 keeps the config values, bit for bit) — latency-critical classes
  /// like AiInference give up in a frame budget instead of a mesh
  /// download's patience.
  EdgeResponse perform(RequestClass cls, double units,
                       std::uint64_t payload_bytes, double now_s,
                       double timeout_override_s = 0.0,
                       int max_attempts_override = 0);

  /// Backoff charged before retry number `retry` (1-based), jitter
  /// excluded — exposed so tests can pin the schedule.
  double nominal_backoff_s(int retry) const;

  /// Resolution knob assigned by the market (marketsvc): mesh-bearing
  /// requests (Decimation, MeshTransfer) shrink with the resolution area,
  /// scaling `units` and `payload_bytes` by r^2. At the default 1.0 the
  /// request path is bitwise identical to a knob-free client.
  void set_resolution(double r);
  double resolution() const { return resolution_; }

  const EdgeClientStats& stats() const { return stats_; }
  const EdgeServerSim& server() const { return server_; }
  EdgeServerSim& server() { return server_; }
  const LinkModel& link() const { return link_; }
  const EdgeClientConfig& config() const { return cfg_; }
  std::uint64_t tenant() const { return tenant_; }

 private:
  EdgeClientConfig cfg_;
  EdgeServerSim server_;
  LinkModel link_;
  Rng rng_;
  std::uint64_t tenant_;
  double resolution_ = 1.0;
  EdgeClientStats stats_;
};

}  // namespace hbosim::edgesvc
