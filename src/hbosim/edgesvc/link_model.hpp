#pragma once

#include <cstdint>

#include "hbosim/common/rng.hpp"

/// \file link_model.hpp
/// Stochastic wireless link to the edge server. Generalizes the original
/// closed-form edge::NetworkModel (base RTT + payload/throughput) with
/// three effects real MAR deployments see:
///
///  - RTT jitter: a bounded multiplicative perturbation of the base RTT,
///    drawn per exchange from the owning session's seeded Rng.
///  - Loss bursts: a two-state Gilbert-Elliott process. The link wanders
///    between a Good and a Bad state with configured transition
///    probabilities; each state has its own per-exchange loss rate, so
///    losses cluster into bursts instead of being i.i.d.
///  - Bandwidth sharing: the downlink throughput is divided across the
///    configured number of concurrent background flows (other tenants of
///    the same edge box), so per-transfer time grows with fleet size.
///
/// Everything random flows through an explicitly passed Rng, so a session
/// using a LinkModel stays bit-identical run to run and across thread
/// counts (the fleet determinism guarantee). With jitter, loss, and
/// background flows all zero, sample() degenerates to exactly the
/// closed-form nominal_seconds() — the compatibility contract the legacy
/// NetworkModel shim relies on.

namespace hbosim::edgesvc {

struct LinkModelConfig {
  double rtt_ms = 20.0;       ///< Base round-trip latency.
  double mbit_per_s = 120.0;  ///< Nominal downlink throughput.

  /// RTT multiplier is uniform in [1 - f, 1 + f]; 0 disables jitter.
  double rtt_jitter_frac = 0.0;

  // Gilbert-Elliott loss process, stepped once per exchange.
  double p_good_to_bad = 0.0;  ///< P(Good -> Bad) per exchange.
  double p_bad_to_good = 1.0;  ///< P(Bad -> Good) per exchange.
  double loss_good = 0.0;      ///< Loss probability while Good.
  double loss_bad = 0.0;       ///< Loss probability while Bad.

  /// Concurrent background transfers sharing the downlink (fair-share:
  /// effective throughput = mbit_per_s / (1 + share_weight * flows)).
  double background_flows = 0.0;
  double share_weight = 1.0;

  /// Throws hbosim::Error on non-finite or out-of-range values — in
  /// particular a zero/near-zero throughput, which would turn payload
  /// transfers into unbounded (inf/NaN) DES event times.
  void validate() const;
};

/// Smallest accepted throughput. Anything below this is treated as a
/// configuration error rather than silently producing week-long transfers.
inline constexpr double kMinLinkMbitPerS = 1e-3;

struct LinkSample {
  double seconds = 0.0;  ///< Exchange time (RTT with jitter + transfer).
  bool lost = false;     ///< Exchange lost; `seconds` is then meaningless.
};

class LinkModel {
 public:
  /// Validates the config (throws hbosim::Error on nonsense).
  explicit LinkModel(LinkModelConfig cfg = {});

  /// One request/response exchange moving `payload_bytes` down, sampled
  /// with jitter and the loss process advanced by one step.
  LinkSample sample(std::uint64_t payload_bytes, Rng& rng);

  /// Deterministic exchange time: jitter-free RTT plus the payload at the
  /// shared effective throughput. Identical to the legacy
  /// edge::NetworkModel formula when background_flows == 0.
  double nominal_seconds(std::uint64_t payload_bytes) const;

  /// Throughput after fair-sharing with the background flows.
  double effective_mbit_per_s() const;

  // --- Progress-tracked streaming transfer ------------------------------
  // A transfer whose fair share may change mid-flight (the allocator
  // admits or evicts tenants while bytes are still moving). Progress
  // accrues at the effective throughput in force, so a rate change first
  // settles the bytes already earned at the OLD rate — the same contract
  // as des::PsResource::set_capacity.

  /// Start tracking one downlink transfer at simulated time `now_s`
  /// (replaces any transfer still in flight).
  void begin_transfer(std::uint64_t payload_bytes, double now_s);
  bool transfer_active() const { return transfer_active_; }
  /// Bytes still outstanding once progress is settled up to `now_s`.
  double transfer_remaining_bytes(double now_s);
  /// Absolute completion time of the in-flight transfer at the current
  /// effective throughput; marks the transfer done once it is reached.
  double transfer_completion_s() const;

  /// Re-share the downlink (the background flow count changed because the
  /// allocator admitted/evicted tenants). Settles in-flight progress at
  /// the OLD rate up to `now_s` before the new rate takes effect, and is
  /// a strict no-op when the value is unchanged — mirroring
  /// des::PsResource::set_capacity semantics.
  void set_background_flows(double flows, double now_s);

  bool in_bad_state() const { return bad_; }
  const LinkModelConfig& config() const { return cfg_; }

 private:
  void settle_transfer(double now_s);

  LinkModelConfig cfg_;
  bool bad_ = false;  ///< Gilbert-Elliott state.

  bool transfer_active_ = false;
  double transfer_remaining_bits_ = 0.0;
  double transfer_settled_s_ = 0.0;  ///< Progress accrued up to here.
};

}  // namespace hbosim::edgesvc
