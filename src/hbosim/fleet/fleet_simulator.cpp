#include "hbosim/fleet/fleet_simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <future>
#include <utility>

#include "hbosim/common/arena.hpp"
#include "hbosim/common/error.hpp"
#include "hbosim/common/rng.hpp"
#include "hbosim/common/thread_pool.hpp"
#include "hbosim/offload/offload.hpp"
#include "hbosim/soc/devices_builtin.hpp"
#include "hbosim/telemetry/telemetry.hpp"

namespace hbosim::fleet {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Deterministic weighted pick: maps a SplitMix64 draw onto the cumulative
/// weight line. Weights need not be normalized.
template <typename Entry>
const Entry& pick_weighted(const std::vector<Entry>& entries,
                           std::uint64_t draw) {
  double total = 0.0;
  for (const Entry& e : entries) total += e.weight;
  // 53-bit mantissa uniform in [0, 1), same mapping Rng::uniform uses.
  const double u =
      static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);
  double acc = 0.0;
  for (const Entry& e : entries) {
    acc += e.weight;
    if (u * total < acc) return e;
  }
  return entries.back();  // numerical edge: u*total == total
}

/// One bump arena per worker thread, recycled (reset, blocks kept) between
/// the sessions that worker runs. Thread-lifetime, not session-lifetime:
/// the steady-state fleet loop performs zero heap allocations for DES
/// state once each worker's arena has grown to its session high-water mark.
Arena& session_arena() {
  static thread_local Arena arena;
  return arena;
}

}  // namespace

std::string SessionSpec::scenario_name() const {
  return std::string(scenario::object_set_name(objects)) + "/" +
         scenario::task_set_name(tasks);
}

void FleetSpec::validate() const {
  HB_REQUIRE(sessions >= 1, "fleet needs at least one session");
  HB_REQUIRE(duration_s > 0.0, "fleet session duration must be positive");
  auto check_weights = [](const auto& mix, const char* what) {
    double total = 0.0;
    for (const auto& e : mix) {
      HB_REQUIRE(e.weight >= 0.0, std::string(what) + " weight must be >= 0");
      total += e.weight;
    }
    HB_REQUIRE(mix.empty() || total > 0.0,
               std::string(what) + " mix weights sum to zero");
  };
  check_weights(devices, "device");
  check_weights(scenarios, "scenario");
  for (const DeviceMixEntry& d : devices)
    soc::find_builtin(d.device);  // throws for unknown names
  if (use_edge_service) edge.validate();
  if (edge_static_resolution != 1.0) {
    HB_REQUIRE(edge_static_resolution > 0.0 && edge_static_resolution <= 1.0,
               "FleetSpec::edge_static_resolution must be in (0, 1]");
    HB_REQUIRE(use_edge_service,
               "FleetSpec::edge_static_resolution trims the edge clients' "
               "mesh work — it needs use_edge_service");
    HB_REQUIRE(!market.enabled,
               "FleetSpec::edge_static_resolution and FleetSpec::market "
               "both drive the resolution knob — pin it statically or let "
               "the JointAllocator assign it, not both");
  }
  if (market.enabled) {
    // Misconfigured markets fail loudly up front (satellite of the
    // marketsvc work): each rejected combination below would otherwise
    // run and silently produce meaningless or nondeterministic results.
    HB_REQUIRE(use_edge_service,
               "FleetSpec::market requires use_edge_service — the "
               "JointAllocator allocates the shared edge box, so there is "
               "nothing to allocate without one (set use_edge_service and "
               "FleetSpec::edge, or disable FleetSpec::market)");
    HB_REQUIRE(!use_shared_pool,
               "FleetSpec::market cannot run with use_shared_pool — pool "
               "warm starts depend on session completion order, which "
               "would break the market epoch's bit-identical 1-vs-N-thread "
               "guarantee (disable one of the two)");
    HB_REQUIRE(policy.mode == PolicyMode::Off,
               "FleetSpec::market and FleetSpec::policy both own the "
               "epoch barrier — run the market and the learned policy "
               "layer in separate fleets");
    HB_REQUIRE(market.epoch_sessions >= 1,
               "FleetSpec::market.epoch_sessions needs at least one "
               "session per broker tick");
    market.allocator.validate();
  }
  if (offload.enabled) {
    // Misconfigured offload fails loudly up front, mirroring the market
    // block above: each rejected combination would otherwise run and
    // silently produce meaningless results.
    offload.validate();
    HB_REQUIRE(use_edge_service,
               "FleetSpec::offload requires use_edge_service — the edge "
               "coordinate of the 4-target simplex routes inferences to "
               "the session's edge mirror, so there is nothing to offload "
               "to without one (set use_edge_service and FleetSpec::edge, "
               "or disable FleetSpec::offload)");
    HB_REQUIRE(!(offload.radio_w > 0.0) || use_power_model,
               "FleetSpec::offload.radio_w charges radio energy to the "
               "session battery, which needs use_power_model — enable the "
               "power model or set offload.radio_w = 0 to study latency "
               "without the energy term");
    HB_REQUIRE(!market.enabled,
               "FleetSpec::offload and FleetSpec::market cannot run "
               "together — the JointAllocator's decided background does "
               "not model per-session inference offload traffic, so the "
               "market's epoch decisions would be priced against a load "
               "it never saw (run them in separate fleets)");
    HB_REQUIRE(policy.mode != PolicyMode::Bandit,
               "FleetSpec::offload cannot run with PolicyMode::Bandit — "
               "the LinUCB arm grid spans the 3-resource on-device "
               "simplex and has no edge coordinate (use PolicyMode::Off "
               "or Prior with offload)");
  }
  if (policy.mode != PolicyMode::Off) {
    HB_REQUIRE(policy.epoch_sessions >= 1,
               "policy epochs need at least one session");
    if (policy.mode == PolicyMode::Prior) policy.prior.validate();
    if (policy.mode == PolicyMode::Bandit) {
      policy.bandit.validate();
      // Bandit sessions have no lookup table to warm start from; a pool
      // would silently do nothing, so reject the combination up front.
      HB_REQUIRE(!use_shared_pool,
                 "bandit-mode fleets cannot use the shared solution pool");
    }
  }
  if (sched.enabled) {
    HB_REQUIRE(sched.capacity_per_resource >= 1,
               "sched trace ring needs at least one slot");
    HB_REQUIRE(sched_analysis.starvation_k > 0.0,
               "sched starvation k must be positive");
    HB_REQUIRE(sched_analysis.min_wait_floor_s >= 0.0,
               "sched wait floor must be non-negative");
    HB_REQUIRE(sched_analysis.fairness_window_s > 0.0,
               "sched fairness window must be positive");
  }
  if (use_power_model) {
    power.validate();
    // Every device in the mix needs a power model; failing here turns a
    // mid-fleet surprise into an upfront configuration error.
    for (const DeviceMixEntry& d : devices) power::find_power_model(d.device);
  }
}

FleetSimulator::FleetSimulator(FleetSpec spec) : spec_(std::move(spec)) {
  if (spec_.devices.empty()) {
    spec_.devices = {{"Pixel 7", 1.0}, {"Galaxy S22", 1.0}};
  }
  if (spec_.scenarios.empty()) {
    using scenario::ObjectSet;
    using scenario::TaskSet;
    spec_.scenarios = {{ObjectSet::SC1, TaskSet::CF1, 1.0},
                       {ObjectSet::SC1, TaskSet::CF2, 1.0},
                       {ObjectSet::SC2, TaskSet::CF1, 1.0},
                       {ObjectSet::SC2, TaskSet::CF2, 1.0}};
  }
  spec_.validate();
}

SessionSpec FleetSimulator::session_spec(std::size_t id) const {
  HB_REQUIRE(id < spec_.sessions, "session id out of range");
  SessionSpec out;
  out.id = id;
  out.seed = spec_.base_seed + id;
  // The mix draws come from a dedicated stream (not the session seed
  // itself) so neighbouring sessions don't correlate device and noise.
  SplitMix64 mix(spec_.base_seed ^ (0x9E3779B97F4A7C15ull * (id + 1)));
  out.device = pick_weighted(spec_.devices, mix.next()).device;
  const ScenarioMixEntry& sc = pick_weighted(spec_.scenarios, mix.next());
  out.objects = sc.objects;
  out.tasks = sc.tasks;
  return out;
}

SessionResult FleetSimulator::run_session(const SessionSpec& spec) const {
  return run_policy_session(spec, nullptr, nullptr).result;
}

SessionResult FleetSimulator::run_session_traced(
    const SessionSpec& spec, des::SchedTrace& trace) const {
  // No arena wrapper: this is a one-off diagnostic re-run, and the
  // caller's trace must not depend on any worker-arena lifetime.
  return run_policy_session_impl(spec, nullptr, nullptr, &trace).result;
}

PolicySessionOutput FleetSimulator::run_policy_session(
    const SessionSpec& spec,
    std::shared_ptr<const policy::PriorSnapshot> priors,
    std::shared_ptr<const policy::LinUcbBandit> bandit) const {
  if (!spec_.use_session_arena) {
    return run_policy_session_impl(spec, std::move(priors), std::move(bandit));
  }
  Arena& arena = session_arena();
  PolicySessionOutput out;
  {
    // Everything the session allocates through ArenaAllocator (event
    // queue, traces, lookup table) lands in this worker's arena; the
    // output below is plain-allocator and safely outlives the reset.
    ArenaScope scope(arena);
    out = run_policy_session_impl(spec, std::move(priors), std::move(bandit));
  }
  arena.reset();  // recycle the blocks for this worker's next session
  return out;
}

SessionResult FleetSimulator::run_market_session(
    const SessionSpec& spec,
    const marketsvc::TenantAllocation& alloc) const {
  if (!spec_.use_session_arena) {
    return run_policy_session_impl(spec, nullptr, nullptr, nullptr, &alloc)
        .result;
  }
  Arena& arena = session_arena();
  SessionResult out;
  {
    ArenaScope scope(arena);
    out = run_policy_session_impl(spec, nullptr, nullptr, nullptr, &alloc)
              .result;
  }
  arena.reset();
  return out;
}

PolicySessionOutput FleetSimulator::run_policy_session_impl(
    const SessionSpec& spec,
    std::shared_ptr<const policy::PriorSnapshot> priors,
    std::shared_ptr<const policy::LinUcbBandit> bandit,
    des::SchedTrace* trace, const marketsvc::TenantAllocation* market) const {
  const auto t0 = std::chrono::steady_clock::now();

  // Telemetry: name this worker's wall-clock track, route the session's
  // sim-time spans (ai/hbo) onto async track `spec.id`, and wrap the whole
  // session in one labelled wall-clock span.
  const char* span_label = "fleet.session";
  if (telemetry::enabled()) {
    telemetry::set_thread_name("fleet-worker", /*append_index=*/true);
    telemetry::set_current_track(spec.id);
    span_label = telemetry::intern("session " + std::to_string(spec.id) +
                                   " " + spec.device + " " +
                                   spec.scenario_name());
  }
  telemetry::ScopeTimer session_span("fleet", span_label);

  const soc::DeviceProfile device = soc::find_builtin(spec.device);
  app::MarAppConfig base;
  if (spec_.use_power_model) {
    base.enable_power = true;
    base.power = spec_.power;
    // Decorrelate the ambient-noise stream from the engine noise stream
    // while keeping it a pure function of the session seed.
    base.power.seed = spec.seed ^ 0xB0D1'E5C0'FFEE'5EEDull;
  }
  std::unique_ptr<app::MarApp> app =
      scenario::make_app(device, spec.objects, spec.tasks, spec.seed, base);

  // Scheduler forensics: attach a per-session lifecycle trace before any
  // event runs. The trace is plain-heap (never arena-backed — it outlives
  // run_session_traced's caller scope) and purely observational, so the
  // simulated trajectory is bit-identical with and without it.
  std::unique_ptr<des::SchedTrace> owned_trace;
  if (trace == nullptr && spec_.sched.enabled) {
    owned_trace = std::make_unique<des::SchedTrace>(spec_.sched);
    trace = owned_trace.get();
  }
  if (trace != nullptr) {
    app->sim().set_sched_trace(trace);
    if (trace->config().exact_depth_counters) {
      // Exact depth counters on traced sessions, so the telemetry depth
      // series lines up sample-for-sample with the event stream.
      for (soc::Unit u : {soc::Unit::Cpu, soc::Unit::Gpu, soc::Unit::Npu})
        app->soc().unit(u).set_trace_decimation(1);
    }
  }

  PolicySessionOutput output;
  SessionResult& out = output.result;
  out.session_id = spec.id;
  out.device = spec.device;
  out.scenario = spec.scenario_name();
  out.seed = spec.seed;

  std::unique_ptr<edgesvc::EdgeClient> edge_client;
  if (broker_) {
    edge_client = market != nullptr
                      ? broker_->make_market_client(*market, spec.seed)
                      : broker_->make_client(spec.id, spec.seed);
    app->attach_edge(edge_client.get());
  }
  // Edge-in-the-simplex: hand the engine a remote executor bound to this
  // session's own mirror client and (when modelled) its own battery.
  // Everything it touches lives on this session's Simulator, so the
  // per-session trajectory stays a pure function of (spec, seed) and the
  // fleet's 1-vs-N-thread bit-identity carries over unchanged.
  std::unique_ptr<offload::OffloadExecutor> offloader;
  if (spec_.offload.enabled && edge_client) {
    offloader = std::make_unique<offload::OffloadExecutor>(
        spec_.offload, *edge_client, app->sim(), app->power());
    app->set_remote_executor(offloader->executor());
  }
  if (market != nullptr && market->resolution != 1.0) {
    // The assigned resolution trims perceived quality (r^gamma) on top of
    // the r^2 payload/work scaling the edge client applies.
    app->set_quality_scale(std::pow(
        market->resolution, broker_->market().config().resolution_gamma));
  } else if (market == nullptr && edge_client &&
             spec_.edge_static_resolution != 1.0) {
    // Static-trim baseline: the same r^2 shedding and r^gamma quality
    // scale a market session applies, minus the joint allocation — the
    // mirror background stays the full-resolution static guess.
    edge_client->set_resolution(spec_.edge_static_resolution);
    app->set_quality_scale(std::pow(
        spec_.edge_static_resolution,
        spec_.market.allocator.resolution_gamma));
  }

  if (bandit) {
    // Agent mode: the LinUCB loop replaces HBO entirely. Selection runs
    // against the frozen epoch model; the pulls travel back to the
    // barrier as Experience for the main-thread learner feed.
    policy::BanditSessionConfig bcfg;
    bcfg.hbo = spec_.session.hbo;
    bcfg.hbo.seed = spec.seed;
    policy::BanditSession session(*app, bandit, bcfg);
    session.run_until(spec_.duration_s);
    out.sim_seconds = app->sim().now();
    out.periods = session.reward_stat().count();
    out.mean_quality = session.quality_stat().mean();
    out.mean_latency_ratio = session.latency_ratio_stat().mean();
    out.mean_reward = session.reward_stat().mean();
    output.experiences = session.drain_experiences();
    out.bandit_pulls = output.experiences.size();
    out.activations = out.bandit_pulls;
  } else {
    core::MonitoredSessionConfig cfg = spec_.session;
    cfg.hbo.seed = spec.seed;
    // Grow the decision space: the controller samples the 4-target
    // simplex and maps the edge coordinate to per-task remote shares.
    if (spec_.offload.enabled) cfg.hbo.offload = spec_.offload;
    // The tenant-visible price signal: HBO's cost charges the triangle
    // budget at the posted price, so expensive epochs steer the optimizer
    // toward leaner configurations (0 under PF/MaxMin — no cost change).
    if (market != nullptr) cfg.hbo.market_price = market->price;
    if (pool_) cfg.use_lookup_table = true;
    core::MonitoredSession session(*app, cfg);
    if (edge_client) session.set_edge(edge_client.get());

    if (pool_) {
      // Bind this session's pool coordinates once; the environment part of
      // the key varies per activation.
      const PoolKey base{spec.device, spec.scenario_name(), {}};
      SharedSolutionPool* pool = pool_.get();
      core::SolutionStoreHooks hooks;
      hooks.fetch = [pool, base](const core::EnvironmentKey& env) {
        PoolKey key = base;
        key.env = env;
        return pool->fetch(key);
      };
      hooks.publish = [pool, base](const core::EnvironmentKey& env,
                                   const core::StoredSolution& solution) {
        PoolKey key = base;
        key.env = env;
        pool->publish(key, solution);
      };
      session.set_solution_store(std::move(hooks));
    }

    if (priors) {
      // Prior mode: full activations consult the frozen epoch snapshot
      // (exact environment first, pooled scenario fallback). Reads only —
      // the store itself is fed at the barrier.
      core::PolicyHooks hooks;
      hooks.prior = [priors, device = spec.device,
                     scenario = spec.scenario_name()](
                        const core::EnvironmentKey& env)
          -> std::shared_ptr<const bo::SurrogatePrior> {
        return priors->find(device, scenario, env);
      };
      session.set_policy_hooks(std::move(hooks));
    }

    session.run_until(spec_.duration_s);

    out.sim_seconds = app->sim().now();
    out.periods = session.reward_stat().count();
    out.mean_quality = session.quality_stat().mean();
    out.mean_latency_ratio = session.latency_ratio_stat().mean();
    out.mean_reward = session.reward_stat().mean();
    out.activations = session.activations().size();
    for (const core::SessionActivation& a : session.activations()) {
      if (a.warm_start) ++out.warm_starts;
      if (a.from_shared_store) ++out.shared_warm_starts;
      if (a.prior_injected) ++out.prior_activations;
      if (priors && !a.warm_start) {
        // Carry every explored (z, cost) back for the PriorStore feed,
        // keyed by the environment the activation fired in.
        for (const core::IterationRecord& r : a.result.history)
          output.observations.push_back(PolicyObservation{a.env, r.z, r.cost});
      }
    }
    out.edge_bo_fallbacks = session.edge_bo_fallbacks();
  }

  if (edge_client) {
    const edgesvc::EdgeClientStats& es = edge_client->stats();
    out.edge_requests = es.requests;
    out.edge_retries = es.retries;
    out.edge_rejected_attempts = es.rejected_attempts;
    out.edge_timeout_attempts = es.timeout_attempts;
    out.edge_fallbacks = es.fallbacks;
    out.edge_decim_fallbacks = app->decimation().edge_fallbacks();
    out.edge_payload_bytes = es.payload_bytes;
    out.edge_units = es.units;
    out.edge_service_s = es.own_service_s;
    out.edge_elapsed_s = es.total_elapsed_s;
    broker_->absorb(*edge_client);
  }
  if (offloader) {
    const ai::InferenceEngine& eng = app->engine();
    out.offload_session = true;
    out.offload_completed = eng.completed_inferences();
    out.offload_remote = eng.remote_inferences();
    out.offload_fallbacks = eng.remote_fallbacks();
    if (out.offload_completed > 0) {
      out.offload_rate = static_cast<double>(out.offload_remote) /
                         static_cast<double>(out.offload_completed);
    }
    const offload::OffloadStats& os = offloader->stats();
    out.radio_energy_j = os.radio_energy_j;
    out.offload_elapsed_s = os.edge_elapsed_s;
    const RunningStat& share = app->offload_share_stat();
    if (share.count() > 0) out.mean_edge_share = share.mean();
  }
  if (market != nullptr) {
    out.market_session = true;
    out.market_denied = !market->admitted;
    out.market_resolution = market->resolution;
    out.market_bandwidth_frac = market->bandwidth_frac;
    out.market_price = market->price;
  }
  if (const power::PowerManager* pm = app->power()) {
    const power::PowerStats ps = pm->stats();
    out.energy_j = ps.energy_j;
    out.mean_power_w = ps.mean_power_w;
    out.max_die_temp_c = ps.max_die_temp_c;
    out.throttle_events = ps.throttle_events;
    out.time_throttled_s = ps.time_throttled_s;
    out.min_freq_scale = ps.min_freq_scale;
    out.battery_soc = ps.battery_soc;
    out.battery_drain_pct_per_hour = ps.drain_pct_per_hour;
  }
  if (trace != nullptr) {
    // Offline forensics over the completed session. The analyzer reads
    // the trace only — the simulation is already over — and the roll-up
    // lands in the SessionResult for the fleet's SchedHealth aggregation.
    app->sim().set_sched_trace(nullptr);
    des::SchedAnalyzer analysis(*trace, spec_.sched_analysis);
    const des::SchedHealth& h = analysis.health();
    out.sched_traced = true;
    out.sched_jobs = h.jobs;
    out.sched_worst_p99_slowdown = h.worst_p99_slowdown;
    out.sched_fairness_floor = h.fairness_floor;
    out.sched_starved_jobs = h.starved_jobs;
    out.sched_events = h.events;
    out.sched_dropped_events = h.dropped_events;
    // With telemetry live, drop the session's Gantt onto its sim-time
    // async track, next to the ai/hbo spans.
    if (telemetry::enabled()) analysis.export_perfetto_gantt(spec.id);
  }
  out.wall_seconds = seconds_since(t0);
  if (telemetry::enabled()) {
    HB_TELEM_COUNT("fleet.sessions_completed", 1.0);
    HB_TELEM_HIST_US("fleet.session_wall_us", out.wall_seconds * 1e6);
  }
  return output;
}

FleetResult FleetSimulator::run() {
  HB_TRACE_SCOPE("fleet", "fleet.run");
  pool_.reset();
  if (spec_.use_shared_pool)
    pool_ = std::make_unique<SharedSolutionPool>(spec_.pool);
  broker_.reset();
  if (spec_.use_edge_service) {
    broker_ =
        std::make_unique<edgesvc::EdgeBroker>(spec_.edge, spec_.sessions);
    if (spec_.market.enabled) broker_->enable_market(spec_.market.allocator);
  }
  prior_store_.reset();
  bandit_.reset();
  policy_epochs_ = 0;
  if (spec_.policy.mode == PolicyMode::Prior)
    prior_store_ = std::make_unique<policy::PriorStore>(spec_.policy.prior);
  if (spec_.policy.mode == PolicyMode::Bandit) {
    bandit_ = std::make_unique<policy::LinUcbBandit>(
        policy::make_arm_grid(spec_.session.hbo.r_min),
        spec_.policy.bandit);
  }

  const std::size_t threads =
      spec_.threads ? spec_.threads : ThreadPool::hardware_threads();
  const auto t0 = std::chrono::steady_clock::now();

  FleetResult out;
  FleetAccumulator acc(spec_.retain_results
                           ? FleetAccumulator::Mode::Exact
                           : FleetAccumulator::Mode::Streaming);
  if (spec_.retain_results) out.sessions.reserve(spec_.sessions);

  // Every completed session flows through here on the main thread, in
  // session-id order — which keeps the streaming percentiles (and any
  // on_progress heartbeat) deterministic regardless of worker scheduling.
  auto consume = [this, &out, &acc, t0](SessionResult r) {
    acc.add(r);
    if (spec_.retain_results) out.sessions.push_back(std::move(r));
    if (spec_.progress_every != 0 && spec_.on_progress &&
        acc.sessions() % spec_.progress_every == 0) {
      spec_.on_progress(
          FleetProgress{acc.sessions(), spec_.sessions, seconds_since(t0)});
    }
  };

  if (spec_.market.enabled) {
    // Market epoch loop: every epoch the broker's JointAllocator ticks
    // once over the epoch's tenants (main thread, session-id order),
    // the sessions run concurrently against that frozen decision vector,
    // and at the barrier the allocator observes what each tenant actually
    // consumed — again in session-id order. Tick inputs, decisions, and
    // feed order are all pure functions of the spec, so a market fleet is
    // bit-identical on 1 and N threads (same recipe as the policy loop).
    ThreadPool workers(threads);
    marketsvc::JointAllocator& allocator = broker_->market();
    const std::size_t epoch = spec_.market.epoch_sessions;
    for (std::size_t start = 0; start < spec_.sessions; start += epoch) {
      HB_TRACE_SCOPE("fleet", "fleet.market_epoch");
      const std::size_t end = std::min(start + epoch, spec_.sessions);
      std::vector<marketsvc::TenantDemand> demands;
      demands.reserve(end - start);
      for (std::size_t id = start; id < end; ++id) {
        marketsvc::TenantDemand d;
        d.tenant = id;
        demands.push_back(d);
      }
      auto allocations =
          std::make_shared<const std::vector<marketsvc::TenantAllocation>>(
              allocator.tick(demands));
      std::vector<std::future<SessionResult>> futures;
      futures.reserve(end - start);
      for (std::size_t id = start; id < end; ++id) {
        futures.push_back(workers.submit(
            [this, spec = session_spec(id), allocations, i = id - start] {
              return run_market_session(spec, (*allocations)[i]);
            }));
      }
      for (std::future<SessionResult>& f : futures) {
        SessionResult r = f.get();
        marketsvc::MeasuredUsage usage;
        usage.payload_bytes = r.edge_payload_bytes;
        usage.requests = r.edge_requests;
        usage.units = r.edge_units;
        usage.service_s = r.edge_service_s;
        usage.duration_s = r.sim_seconds;
        allocator.observe(r.session_id, usage, r.market_resolution);
        consume(std::move(r));
      }
    }
  } else if (spec_.policy.mode == PolicyMode::Off) {
    // Bounded in-flight window: submit ahead of consumption by enough to
    // keep every worker fed, but consume (in id order) as futures at the
    // window's head complete, so retained memory is O(threads) — not
    // O(sessions) — when results aren't being kept. get() rethrows any
    // session failure to the caller.
    ThreadPool workers(threads);
    const std::size_t window = std::max<std::size_t>(threads * 8, 64);
    std::deque<std::future<SessionResult>> inflight;
    for (std::size_t id = 0; id < spec_.sessions; ++id) {
      if (inflight.size() >= window) {
        consume(inflight.front().get());
        inflight.pop_front();
      }
      inflight.push_back(workers.submit(
          [this, spec = session_spec(id)] { return run_session(spec); }));
    }
    while (!inflight.empty()) {
      consume(inflight.front().get());
      inflight.pop_front();
    }
  } else {
    // Epoch loop: every epoch freezes the learner's state, runs its
    // sessions concurrently against the frozen artifact, then feeds the
    // learner from the completed sessions in session-id order. The
    // barrier (and the id-ordered feed) is what makes a policy fleet
    // bit-identical across thread counts.
    ThreadPool workers(threads);
    const std::size_t epoch = spec_.policy.epoch_sessions;
    for (std::size_t start = 0; start < spec_.sessions; start += epoch) {
      HB_TRACE_SCOPE("fleet", "fleet.policy_epoch");
      const std::size_t end = std::min(start + epoch, spec_.sessions);
      std::shared_ptr<const policy::PriorSnapshot> priors =
          prior_store_ ? prior_store_->snapshot() : nullptr;
      std::shared_ptr<const policy::LinUcbBandit> frozen =
          bandit_ ? std::make_shared<const policy::LinUcbBandit>(*bandit_)
                  : nullptr;
      std::vector<std::future<PolicySessionOutput>> futures;
      futures.reserve(end - start);
      for (std::size_t id = start; id < end; ++id) {
        futures.push_back(
            workers.submit([this, spec = session_spec(id), priors, frozen] {
              return run_policy_session(spec, priors, frozen);
            }));
      }
      for (std::future<PolicySessionOutput>& f : futures) {
        PolicySessionOutput o = f.get();
        if (prior_store_) {
          for (const PolicyObservation& obs : o.observations) {
            prior_store_->record(
                policy::PriorKey{o.result.device, o.result.scenario, obs.env},
                obs.z, obs.cost);
          }
        }
        if (bandit_) {
          for (const policy::Experience& e : o.experiences)
            bandit_->update(e.arm, e.context, e.reward);
        }
        consume(std::move(o.result));
      }
      ++policy_epochs_;
      HB_TELEM_COUNT("fleet.policy_epochs", 1.0);
    }
  }

  const SharedSolutionPoolStats pool_stats =
      pool_ ? pool_->stats() : SharedSolutionPoolStats{};
  const edgesvc::EdgeFleetStats edge_stats =
      broker_ ? broker_->stats() : edgesvc::EdgeFleetStats{};
  out.metrics = acc.finalize(seconds_since(t0), pool_stats,
                             broker_ ? &edge_stats : nullptr);
  if (spec_.market.enabled) {
    FleetMetrics::MarketHealth& mh = out.metrics.market;
    mh.enabled = true;
    mh.policy = marketsvc::market_policy_name(spec_.market.allocator.policy);
    mh.ticks = broker_->market().ticks();
    const marketsvc::MarketTickStats& last = broker_->market().last();
    mh.link_activity = last.link_activity;
    mh.compute_utilization = last.compute_utilization;
    mh.final_price = last.price;
  }
  if (spec_.policy.mode != PolicyMode::Off) {
    FleetMetrics::PolicyHealth& ph = out.metrics.policy;
    ph.enabled = true;
    ph.mode = spec_.policy.mode == PolicyMode::Prior ? "prior" : "bandit";
    ph.epochs = policy_epochs_;
    if (prior_store_) {
      const policy::PriorStoreStats ps = prior_store_->stats();
      ph.store_keys = ps.keys;
      ph.store_observations = ps.observations;
      ph.priors_fitted = ps.fits;
    }
    if (bandit_) ph.bandit_updates = bandit_->updates();
  }
  return out;
}

}  // namespace hbosim::fleet
