#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "hbosim/core/lookup_table.hpp"
#include "hbosim/edge/cache.hpp"

/// \file shared_pool.hpp
/// The fleet-wide, cross-session extension of the Section VI solution
/// lookup table. One session's converged configuration warm-starts every
/// other session that encounters the same (device, scenario, environment)
/// conditions — the paper's "optimization results should be shared across
/// users" direction, made concrete.
///
/// The pool is N-way sharded: each shard is an independently mutex-guarded
/// LRU (reusing the edge cache mechanics and key scheme), selected by
/// hashing the flattened key. At fleet scale (10^5+ sessions on many
/// workers) a single pool mutex serializes every warm-start fetch and
/// publish; striping the locks cuts the collision probability by the
/// shard count while keeping each shard's semantics exactly those of the
/// original single-lock pool — lower-cost-wins on key collision, LRU
/// eviction within the shard. Traffic counters are per-shard atomics, so
/// stats() aggregates without stopping the world.

namespace hbosim::fleet {

/// Identifies which solutions are mutually applicable across sessions:
/// same device model, same scenario (object set × taskset), and the same
/// quantized environmental conditions the per-session table already keys
/// on.
struct PoolKey {
  std::string device;    ///< DeviceProfile name, e.g. "Pixel 7".
  std::string scenario;  ///< e.g. "SC1/CF1".
  core::EnvironmentKey env;

  /// Flattened string form, composed with the edge cache key scheme.
  std::string str() const;
};

struct SharedSolutionPoolConfig {
  /// Max remembered (device, scenario, environment) entries across all
  /// shards; the least recently touched entry *within a shard* is evicted
  /// beyond the shard's share. Rounded up to a multiple of `shards`.
  std::size_t capacity = 4096;
  /// Independently locked stripes. 1 reproduces the original single-lock
  /// pool (one global LRU order); more shards trade global LRU precision
  /// for an N-fold cut in lock collisions.
  std::size_t shards = 8;
};

struct SharedSolutionPoolStats {
  std::size_t size = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t evictions = 0;

  std::size_t shards = 0;  ///< Stripe count (0 in a zeroed stats value).
  /// Lock-contention telemetry: every fetch/publish/stats acquisition is
  /// counted, and acquisitions that found the shard lock already held
  /// (try_lock failed, had to block) are counted separately — the
  /// scaling bench's direct measure of pool serialization.
  std::uint64_t lock_acquisitions = 0;
  std::uint64_t lock_contentions = 0;

  /// Fraction of fetches served, in [0, 1]; 0 when nothing was fetched.
  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }

  /// Fraction of lock acquisitions that had to block, in [0, 1].
  double contention_rate() const {
    return lock_acquisitions ? static_cast<double>(lock_contentions) /
                                   static_cast<double>(lock_acquisitions)
                             : 0.0;
  }
};

class SharedSolutionPool {
 public:
  explicit SharedSolutionPool(SharedSolutionPoolConfig cfg = {});

  /// Thread-safe lookup; refreshes the entry's recency on a hit.
  std::optional<core::StoredSolution> fetch(const PoolKey& key);

  /// Thread-safe insert. On collision the lower-cost solution wins (same
  /// policy as the per-session table); insertion beyond the shard's
  /// capacity evicts the shard's least recently used entry.
  void publish(const PoolKey& key, const core::StoredSolution& solution);

  /// Aggregated across shards. Counters are exact (atomic sums); `size`
  /// and `evictions` are read under each shard's lock in turn, so the
  /// total is a consistent per-shard snapshot (sufficient for roll-ups —
  /// the pool is quiescent when fleet metrics are taken).
  SharedSolutionPoolStats stats() const;

  std::size_t shard_count() const { return shards_.size(); }
  /// One shard's traffic; stats() equals the field-wise sum over shards
  /// (pinned by the fleet test suite under TSan).
  SharedSolutionPoolStats shard_stats(std::size_t shard) const;

 private:
  struct Shard {
    explicit Shard(std::size_t capacity) : cache(capacity) {}
    mutable std::mutex mu;
    edge::BasicLruCache<core::StoredSolution> cache;
    // fetch()/publish() traffic counted here, not via the LRU's counters:
    // publish() probes the cache too, which would skew a fetch hit rate.
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> stores{0};
    std::atomic<std::uint64_t> lock_acquisitions{0};
    std::atomic<std::uint64_t> lock_contentions{0};
  };

  Shard& shard_for(const std::string& flat_key) const;
  /// Lock a shard, counting the acquisition and whether it had to block.
  static std::unique_lock<std::mutex> lock_shard(Shard& shard);

  SharedSolutionPoolConfig cfg_;
  // unique_ptr: Shard is immovable (mutex + atomics) but the stripe count
  // is a runtime config value.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace hbosim::fleet
