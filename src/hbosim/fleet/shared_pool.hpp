#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "hbosim/core/lookup_table.hpp"
#include "hbosim/edge/cache.hpp"

/// \file shared_pool.hpp
/// The fleet-wide, cross-session extension of the Section VI solution
/// lookup table. One session's converged configuration warm-starts every
/// other session that encounters the same (device, scenario, environment)
/// conditions — the paper's "optimization results should be shared across
/// users" direction, made concrete.
///
/// The pool is a mutex-guarded LRU (reusing the edge cache mechanics and
/// key scheme) because fleet accesses are coarse-grained: one fetch per
/// activation, one publish per full activation — contention is negligible
/// even at thousands of sessions.

namespace hbosim::fleet {

/// Identifies which solutions are mutually applicable across sessions:
/// same device model, same scenario (object set × taskset), and the same
/// quantized environmental conditions the per-session table already keys
/// on.
struct PoolKey {
  std::string device;    ///< DeviceProfile name, e.g. "Pixel 7".
  std::string scenario;  ///< e.g. "SC1/CF1".
  core::EnvironmentKey env;

  /// Flattened string form, composed with the edge cache key scheme.
  std::string str() const;
};

struct SharedSolutionPoolConfig {
  /// Max remembered (device, scenario, environment) entries; the least
  /// recently touched entry is evicted beyond this.
  std::size_t capacity = 4096;
};

struct SharedSolutionPoolStats {
  std::size_t size = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t evictions = 0;

  /// Fraction of fetches served, in [0, 1]; 0 when nothing was fetched.
  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

class SharedSolutionPool {
 public:
  explicit SharedSolutionPool(SharedSolutionPoolConfig cfg = {});

  /// Thread-safe lookup; refreshes the entry's recency on a hit.
  std::optional<core::StoredSolution> fetch(const PoolKey& key);

  /// Thread-safe insert. On collision the lower-cost solution wins (same
  /// policy as the per-session table); insertion beyond capacity evicts
  /// the least recently used entry.
  void publish(const PoolKey& key, const core::StoredSolution& solution);

  SharedSolutionPoolStats stats() const;

 private:
  SharedSolutionPoolConfig cfg_;
  mutable std::mutex mu_;
  edge::BasicLruCache<core::StoredSolution> cache_;
  // fetch()/publish() traffic counted here, not via the LRU's counters:
  // publish() probes the cache too, which would skew a fetch hit rate.
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t stores_ = 0;
};

}  // namespace hbosim::fleet
