#include "hbosim/fleet/fleet_metrics.hpp"

#include <algorithm>

#include "hbosim/common/error.hpp"

namespace hbosim::fleet {

MetricSummary summarize_metric(std::vector<double> values) {
  // Guard before touching the buffer: summarizing an empty sample is the
  // documented throw, not UB. percentile_sorted() would also reject it,
  // but only after the damage.
  HB_REQUIRE(!values.empty(), "cannot summarize an empty metric sample");
  MetricSummary out;
  // Mean over the caller's order (before sorting) so the exact path stays
  // bitwise identical to the historical per-session accumulation order.
  double acc = 0.0;
  for (double v : values) acc += v;
  out.mean = acc / static_cast<double>(values.size());
  // One sort serves min, max, and all three percentile reads.
  std::sort(values.begin(), values.end());
  out.min = values.front();
  out.max = values.back();
  out.p50 = percentile_sorted(values, 50.0);
  out.p90 = percentile_sorted(values, 90.0);
  out.p99 = percentile_sorted(values, 99.0);
  return out;
}

void StreamingSummary::add(double x) {
  stat_.add(x);
  p50_.add(x);
  p90_.add(x);
  p99_.add(x);
}

MetricSummary StreamingSummary::summary() const {
  MetricSummary out;
  if (stat_.empty()) return out;
  out.min = stat_.min();
  out.max = stat_.max();
  out.mean = stat_.mean();
  out.p50 = p50_.value();
  out.p90 = p90_.value();
  out.p99 = p99_.value();
  return out;
}

void FleetAccumulator::add(const SessionResult& s) {
  ++count_;
  if (mode_ == Mode::Exact) {
    quality_.push_back(s.mean_quality);
    eps_.push_back(s.mean_latency_ratio);
    reward_.push_back(s.mean_reward);
    watts_.push_back(s.mean_power_w);
    temps_.push_back(s.max_die_temp_c);
    drains_.push_back(s.battery_drain_pct_per_hour);
  } else {
    s_quality_.add(s.mean_quality);
    s_eps_.add(s.mean_latency_ratio);
    s_reward_.add(s.mean_reward);
    s_watts_.add(s.mean_power_w);
    s_temps_.add(s.max_die_temp_c);
    s_drains_.add(s.battery_drain_pct_per_hour);
  }
  totals_.total_sim_seconds += s.sim_seconds;
  totals_.total_activations += s.activations;
  totals_.total_warm_starts += s.warm_starts;
  totals_.total_shared_warm_starts += s.shared_warm_starts;
  totals_.policy.prior_activations += s.prior_activations;
  totals_.policy.bandit_pulls += s.bandit_pulls;
  totals_.edge.requests += s.edge_requests;
  totals_.edge.retries += s.edge_retries;
  totals_.edge.rejected_attempts += s.edge_rejected_attempts;
  totals_.edge.timeout_attempts += s.edge_timeout_attempts;
  totals_.edge.fallbacks += s.edge_fallbacks;
  totals_.edge.decim_fallbacks += s.edge_decim_fallbacks;
  totals_.edge.bo_fallbacks += s.edge_bo_fallbacks;
  // Market roll-up: sums and id-order-fed summaries only, so the result
  // is identical on 1 and N fleet threads (like the sched roll-up).
  if (s.market_session) {
    ++market_sessions_;
    if (s.market_denied) ++totals_.market.denied_sessions;
    if (mode_ == Mode::Exact) {
      market_res_.push_back(s.market_resolution);
    } else {
      s_market_res_.add(s.market_resolution);
    }
  }
  // Offload roll-up: sums and id-order-fed summaries only, so the result
  // is identical on 1 and N fleet threads (like the market roll-up).
  if (s.offload_session) {
    ++offload_sessions_;
    totals_.offload.completed_inferences += s.offload_completed;
    totals_.offload.remote_inferences += s.offload_remote;
    totals_.offload.fallbacks += s.offload_fallbacks;
    totals_.offload.radio_energy_j += s.radio_energy_j;
    if (mode_ == Mode::Exact) {
      edge_shares_.push_back(s.mean_edge_share);
    } else {
      s_edge_shares_.add(s.mean_edge_share);
    }
  }
  // Power roll-up: a session that ran with a power model always draws at
  // least the base system load, so energy > 0 identifies power-enabled
  // fleets without an extra flag threading through the call chain. The
  // sums accumulate unconditionally (per-field order matches the
  // historical second pass) and are discarded at finalize if no session
  // ever drew power.
  any_power_ = any_power_ || s.energy_j > 0.0;
  totals_.power.total_energy_j += s.energy_j;
  totals_.power.throttle_events += s.throttle_events;
  totals_.power.min_freq_scale =
      std::min(totals_.power.min_freq_scale, s.min_freq_scale);
  if (s.throttle_events > 0) ++throttled_sessions_;
  // Sched forensics roll-up: max/min/sum only — order-independent, so the
  // roll-up is identical on 1 and N fleet threads by construction (and the
  // per-session p99 samples are still fed in session-id order for the
  // streaming sketch, like every other metric).
  if (s.sched_traced) {
    ++sched_sessions_;
    totals_.sched.jobs += s.sched_jobs;
    totals_.sched.worst_p99_slowdown = std::max(
        totals_.sched.worst_p99_slowdown, s.sched_worst_p99_slowdown);
    totals_.sched.fairness_floor =
        std::min(totals_.sched.fairness_floor, s.sched_fairness_floor);
    totals_.sched.starved_jobs += s.sched_starved_jobs;
    totals_.sched.events += s.sched_events;
    totals_.sched.dropped_events += s.sched_dropped_events;
    if (s.sched_starved_jobs > 0) ++starved_sessions_;
    if (mode_ == Mode::Exact) {
      sched_p99s_.push_back(s.sched_worst_p99_slowdown);
    } else {
      s_sched_p99s_.add(s.sched_worst_p99_slowdown);
    }
  }
}

FleetMetrics FleetAccumulator::finalize(
    double wall_seconds, const SharedSolutionPoolStats& pool,
    const edgesvc::EdgeFleetStats* edge) const {
  FleetMetrics out = totals_;
  out.sessions = count_;
  out.streamed = mode_ == Mode::Streaming;
  out.wall_seconds = wall_seconds;
  out.pool = pool;
  if (edge != nullptr) {
    out.edge.enabled = true;
    out.edge.rejection_rate = edge->server.rejection_rate();
    out.edge.fallback_rate = edge->client.fallback_rate();
    out.edge.queue_depth_p95 = edge->server.queue_depth_p95();
    out.edge.mean_wait_ms = edge->server.mean_wait_s() * 1e3;
  }
  if (count_ == 0) {
    // No sessions: zero roll-up (pool/edge context above still applies),
    // matching the historical aggregate_fleet early return.
    out.total_sim_seconds = 0.0;
    out.power = FleetMetrics::PowerHealth{};
    out.sched = FleetMetrics::SchedHealth{};
    out.market = FleetMetrics::MarketHealth{};
    out.offload = FleetMetrics::OffloadHealth{};
    return out;
  }

  if (mode_ == Mode::Exact) {
    out.quality = summarize_metric(quality_);
    out.latency_ratio = summarize_metric(eps_);
    out.reward = summarize_metric(reward_);
  } else {
    out.quality = s_quality_.summary();
    out.latency_ratio = s_eps_.summary();
    out.reward = s_reward_.summary();
  }

  if (any_power_) {
    out.power.enabled = true;
    if (mode_ == Mode::Exact) {
      out.power.mean_power_w = summarize_metric(watts_);
      out.power.max_die_temp_c = summarize_metric(temps_);
      out.power.drain_pct_per_hour = summarize_metric(drains_);
    } else {
      out.power.mean_power_w = s_watts_.summary();
      out.power.max_die_temp_c = s_temps_.summary();
      out.power.drain_pct_per_hour = s_drains_.summary();
    }
    out.power.throttled_session_fraction =
        static_cast<double>(throttled_sessions_) /
        static_cast<double>(count_);
  } else {
    out.power = FleetMetrics::PowerHealth{};
  }

  if (market_sessions_ > 0) {
    out.market.enabled = true;
    out.market.resolution = mode_ == Mode::Exact
                                ? summarize_metric(market_res_)
                                : s_market_res_.summary();
    out.market.admission_rate =
        1.0 - static_cast<double>(out.market.denied_sessions) /
                  static_cast<double>(market_sessions_);
  } else {
    out.market = FleetMetrics::MarketHealth{};
  }

  if (offload_sessions_ > 0) {
    out.offload.enabled = true;
    out.offload.edge_share = mode_ == Mode::Exact
                                 ? summarize_metric(edge_shares_)
                                 : s_edge_shares_.summary();
    if (out.offload.completed_inferences > 0) {
      out.offload.offload_rate =
          static_cast<double>(out.offload.remote_inferences) /
          static_cast<double>(out.offload.completed_inferences);
    }
  } else {
    out.offload = FleetMetrics::OffloadHealth{};
  }

  if (sched_sessions_ > 0) {
    out.sched.enabled = true;
    out.sched.p99_slowdown = mode_ == Mode::Exact
                                 ? summarize_metric(sched_p99s_)
                                 : s_sched_p99s_.summary();
    out.sched.starved_session_fraction =
        static_cast<double>(starved_sessions_) /
        static_cast<double>(sched_sessions_);
  } else {
    out.sched = FleetMetrics::SchedHealth{};
  }

  if (out.total_activations > 0) {
    out.warm_start_rate = static_cast<double>(out.total_warm_starts) /
                          static_cast<double>(out.total_activations);
  }
  const std::size_t full_activations =
      out.total_activations - out.total_warm_starts;
  if (full_activations > 0) {
    out.policy.prior_injection_rate =
        static_cast<double>(out.policy.prior_activations) /
        static_cast<double>(full_activations);
  }
  if (wall_seconds > 0.0) {
    out.sessions_per_sec = static_cast<double>(count_) / wall_seconds;
  }
  return out;
}

FleetMetrics aggregate_fleet(const std::vector<SessionResult>& sessions,
                             double wall_seconds,
                             const SharedSolutionPoolStats& pool,
                             const edgesvc::EdgeFleetStats* edge) {
  FleetAccumulator acc(FleetAccumulator::Mode::Exact);
  for (const SessionResult& s : sessions) acc.add(s);
  return acc.finalize(wall_seconds, pool, edge);
}

}  // namespace hbosim::fleet
