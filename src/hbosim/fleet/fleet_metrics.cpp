#include "hbosim/fleet/fleet_metrics.hpp"

#include <algorithm>

#include "hbosim/common/error.hpp"
#include "hbosim/common/stats.hpp"

namespace hbosim::fleet {

MetricSummary summarize_metric(const std::vector<double>& values) {
  // Guard before touching min_element: dereferencing end() on an empty
  // sample is UB, not the documented throw. percentile() would also
  // reject it, but only after the damage.
  HB_REQUIRE(!values.empty(), "cannot summarize an empty metric sample");
  MetricSummary out;
  out.min = *std::min_element(values.begin(), values.end());
  out.max = *std::max_element(values.begin(), values.end());
  double acc = 0.0;
  for (double v : values) acc += v;
  out.mean = acc / static_cast<double>(values.size());
  out.p50 = percentile(values, 50.0);
  out.p90 = percentile(values, 90.0);
  out.p99 = percentile(values, 99.0);
  return out;
}

FleetMetrics aggregate_fleet(const std::vector<SessionResult>& sessions,
                             double wall_seconds,
                             const SharedSolutionPoolStats& pool,
                             const edgesvc::EdgeFleetStats* edge) {
  FleetMetrics out;
  out.sessions = sessions.size();
  out.wall_seconds = wall_seconds;
  out.pool = pool;
  if (edge != nullptr) {
    out.edge.enabled = true;
    out.edge.rejection_rate = edge->server.rejection_rate();
    out.edge.fallback_rate = edge->client.fallback_rate();
    out.edge.queue_depth_p95 = edge->server.queue_depth_p95();
    out.edge.mean_wait_ms = edge->server.mean_wait_s() * 1e3;
  }
  if (sessions.empty()) return out;

  std::vector<double> quality, eps, reward;
  quality.reserve(sessions.size());
  eps.reserve(sessions.size());
  reward.reserve(sessions.size());
  for (const SessionResult& s : sessions) {
    quality.push_back(s.mean_quality);
    eps.push_back(s.mean_latency_ratio);
    reward.push_back(s.mean_reward);
    out.total_sim_seconds += s.sim_seconds;
    out.total_activations += s.activations;
    out.total_warm_starts += s.warm_starts;
    out.total_shared_warm_starts += s.shared_warm_starts;
    out.policy.prior_activations += s.prior_activations;
    out.policy.bandit_pulls += s.bandit_pulls;
    out.edge.requests += s.edge_requests;
    out.edge.retries += s.edge_retries;
    out.edge.rejected_attempts += s.edge_rejected_attempts;
    out.edge.timeout_attempts += s.edge_timeout_attempts;
    out.edge.fallbacks += s.edge_fallbacks;
    out.edge.decim_fallbacks += s.edge_decim_fallbacks;
    out.edge.bo_fallbacks += s.edge_bo_fallbacks;
  }
  out.quality = summarize_metric(quality);
  out.latency_ratio = summarize_metric(eps);
  out.reward = summarize_metric(reward);

  // Power roll-up: a session that ran with a power model always draws at
  // least the base system load, so energy > 0 identifies power-enabled
  // fleets without an extra flag threading through the call chain.
  bool any_power = false;
  for (const SessionResult& s : sessions) any_power |= s.energy_j > 0.0;
  if (any_power) {
    out.power.enabled = true;
    std::vector<double> watts, temps, drains;
    watts.reserve(sessions.size());
    temps.reserve(sessions.size());
    drains.reserve(sessions.size());
    std::size_t throttled_sessions = 0;
    for (const SessionResult& s : sessions) {
      watts.push_back(s.mean_power_w);
      temps.push_back(s.max_die_temp_c);
      drains.push_back(s.battery_drain_pct_per_hour);
      out.power.total_energy_j += s.energy_j;
      out.power.throttle_events += s.throttle_events;
      out.power.min_freq_scale =
          std::min(out.power.min_freq_scale, s.min_freq_scale);
      if (s.throttle_events > 0) ++throttled_sessions;
    }
    out.power.mean_power_w = summarize_metric(watts);
    out.power.max_die_temp_c = summarize_metric(temps);
    out.power.drain_pct_per_hour = summarize_metric(drains);
    out.power.throttled_session_fraction =
        static_cast<double>(throttled_sessions) /
        static_cast<double>(sessions.size());
  }
  if (out.total_activations > 0) {
    out.warm_start_rate = static_cast<double>(out.total_warm_starts) /
                          static_cast<double>(out.total_activations);
  }
  const std::size_t full_activations =
      out.total_activations - out.total_warm_starts;
  if (full_activations > 0) {
    out.policy.prior_injection_rate =
        static_cast<double>(out.policy.prior_activations) /
        static_cast<double>(full_activations);
  }
  if (wall_seconds > 0.0) {
    out.sessions_per_sec =
        static_cast<double>(sessions.size()) / wall_seconds;
  }
  return out;
}

}  // namespace hbosim::fleet
