#include "hbosim/fleet/shared_pool.hpp"

#include <functional>

#include "hbosim/common/error.hpp"
#include "hbosim/telemetry/telemetry.hpp"

namespace hbosim::fleet {

std::string PoolKey::str() const {
  return edge::compose_key({device, scenario,
                            "tri" + std::to_string(env.triangle_bucket),
                            "dist" + std::to_string(env.distance_bucket),
                            "task" + std::to_string(env.taskset_hash)});
}

SharedSolutionPool::SharedSolutionPool(SharedSolutionPoolConfig cfg)
    : cfg_(cfg) {
  HB_REQUIRE(cfg_.shards >= 1, "pool needs at least one shard");
  HB_REQUIRE(cfg_.capacity >= 1, "pool capacity must be positive");
  // Ceil-divide so the total capacity never rounds below the configured
  // value; the real total is per_shard * shards.
  const std::size_t per_shard =
      (cfg_.capacity + cfg_.shards - 1) / cfg_.shards;
  shards_.reserve(cfg_.shards);
  for (std::size_t i = 0; i < cfg_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(per_shard));
  }
}

SharedSolutionPool::Shard& SharedSolutionPool::shard_for(
    const std::string& flat_key) const {
  return *shards_[std::hash<std::string>{}(flat_key) % shards_.size()];
}

std::unique_lock<std::mutex> SharedSolutionPool::lock_shard(Shard& shard) {
  shard.lock_acquisitions.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    shard.lock_contentions.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  return lock;
}

std::optional<core::StoredSolution> SharedSolutionPool::fetch(
    const PoolKey& key) {
  // The span covers the wait on the shard lock too, so pool contention
  // between fleet workers shows up directly as widened pool.fetch scopes
  // in the trace.
  HB_TRACE_SCOPE("fleet", "pool.fetch");
  const std::string k = key.str();
  Shard& shard = shard_for(k);
  const auto lock = lock_shard(shard);
  if (const core::StoredSolution* found = shard.cache.get(k)) {
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    HB_TELEM_COUNT("pool.hits", 1.0);
    return *found;
  }
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  HB_TELEM_COUNT("pool.misses", 1.0);
  return std::nullopt;
}

void SharedSolutionPool::publish(const PoolKey& key,
                                 const core::StoredSolution& solution) {
  HB_TRACE_SCOPE("fleet", "pool.publish");
  const std::string k = key.str();
  Shard& shard = shard_for(k);
  const auto lock = lock_shard(shard);
  shard.stores.fetch_add(1, std::memory_order_relaxed);
  HB_TELEM_COUNT("pool.stores", 1.0);
  if (const core::StoredSolution* existing = shard.cache.get(k)) {
    if (existing->cost <= solution.cost) return;  // keep the better entry
  }
  shard.cache.put(k, solution);
}

SharedSolutionPoolStats SharedSolutionPool::stats() const {
  SharedSolutionPoolStats out;
  out.shards = shards_.size();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const SharedSolutionPoolStats s = shard_stats(i);
    out.size += s.size;
    out.hits += s.hits;
    out.misses += s.misses;
    out.stores += s.stores;
    out.evictions += s.evictions;
    out.lock_acquisitions += s.lock_acquisitions;
    out.lock_contentions += s.lock_contentions;
  }
  return out;
}

SharedSolutionPoolStats SharedSolutionPool::shard_stats(
    std::size_t shard) const {
  HB_REQUIRE(shard < shards_.size(), "pool shard index out of range");
  const Shard& s = *shards_[shard];
  // Plain lock, NOT lock_shard(): stats reads must not perturb the
  // traffic counters they report, or stats() == sum(shard_stats()) would
  // never hold exactly.
  const std::lock_guard<std::mutex> lock(s.mu);
  SharedSolutionPoolStats out;
  out.shards = 1;
  out.size = s.cache.size();
  out.evictions = s.cache.evictions();
  out.hits = s.hits.load(std::memory_order_relaxed);
  out.misses = s.misses.load(std::memory_order_relaxed);
  out.stores = s.stores.load(std::memory_order_relaxed);
  out.lock_acquisitions = s.lock_acquisitions.load(std::memory_order_relaxed);
  out.lock_contentions = s.lock_contentions.load(std::memory_order_relaxed);
  return out;
}

}  // namespace hbosim::fleet
