#include "hbosim/fleet/shared_pool.hpp"

#include "hbosim/telemetry/telemetry.hpp"

namespace hbosim::fleet {

std::string PoolKey::str() const {
  return edge::compose_key({device, scenario,
                            "tri" + std::to_string(env.triangle_bucket),
                            "dist" + std::to_string(env.distance_bucket),
                            "task" + std::to_string(env.taskset_hash)});
}

SharedSolutionPool::SharedSolutionPool(SharedSolutionPoolConfig cfg)
    : cfg_(cfg), cache_(cfg.capacity) {}

std::optional<core::StoredSolution> SharedSolutionPool::fetch(
    const PoolKey& key) {
  // The span covers the wait on mu_ too, so pool contention between fleet
  // workers shows up directly as widened pool.fetch scopes in the trace.
  HB_TRACE_SCOPE("fleet", "pool.fetch");
  const std::string k = key.str();
  std::lock_guard<std::mutex> lock(mu_);
  if (const core::StoredSolution* found = cache_.get(k)) {
    ++hits_;
    HB_TELEM_COUNT("pool.hits", 1.0);
    return *found;
  }
  ++misses_;
  HB_TELEM_COUNT("pool.misses", 1.0);
  return std::nullopt;
}

void SharedSolutionPool::publish(const PoolKey& key,
                                 const core::StoredSolution& solution) {
  HB_TRACE_SCOPE("fleet", "pool.publish");
  const std::string k = key.str();
  std::lock_guard<std::mutex> lock(mu_);
  ++stores_;
  HB_TELEM_COUNT("pool.stores", 1.0);
  if (const core::StoredSolution* existing = cache_.get(k)) {
    if (existing->cost <= solution.cost) return;  // keep the better entry
  }
  cache_.put(k, solution);
}

SharedSolutionPoolStats SharedSolutionPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SharedSolutionPoolStats out;
  out.size = cache_.size();
  out.stores = stores_;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = cache_.evictions();
  return out;
}

}  // namespace hbosim::fleet
