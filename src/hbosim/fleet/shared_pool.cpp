#include "hbosim/fleet/shared_pool.hpp"

namespace hbosim::fleet {

std::string PoolKey::str() const {
  return edge::compose_key({device, scenario,
                            "tri" + std::to_string(env.triangle_bucket),
                            "dist" + std::to_string(env.distance_bucket),
                            "task" + std::to_string(env.taskset_hash)});
}

SharedSolutionPool::SharedSolutionPool(SharedSolutionPoolConfig cfg)
    : cfg_(cfg), cache_(cfg.capacity) {}

std::optional<core::StoredSolution> SharedSolutionPool::fetch(
    const PoolKey& key) {
  const std::string k = key.str();
  std::lock_guard<std::mutex> lock(mu_);
  if (const core::StoredSolution* found = cache_.get(k)) {
    ++hits_;
    return *found;
  }
  ++misses_;
  return std::nullopt;
}

void SharedSolutionPool::publish(const PoolKey& key,
                                 const core::StoredSolution& solution) {
  const std::string k = key.str();
  std::lock_guard<std::mutex> lock(mu_);
  ++stores_;
  if (const core::StoredSolution* existing = cache_.get(k)) {
    if (existing->cost <= solution.cost) return;  // keep the better entry
  }
  cache_.put(k, solution);
}

SharedSolutionPoolStats SharedSolutionPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SharedSolutionPoolStats out;
  out.size = cache_.size();
  out.stores = stores_;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = cache_.evictions();
  return out;
}

}  // namespace hbosim::fleet
