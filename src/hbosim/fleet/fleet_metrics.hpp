#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hbosim/common/stats.hpp"
#include "hbosim/edgesvc/broker.hpp"
#include "hbosim/fleet/shared_pool.hpp"

/// \file fleet_metrics.hpp
/// Per-session results and their fleet-wide roll-up. SessionResult holds
/// only aggregates (not traces) so a multi-thousand-session fleet stays
/// cheap to collect; FleetMetrics adds cross-session percentiles and the
/// wall-clock throughput the scaling bench reports.
///
/// Two aggregation paths share one accumulator (`FleetAccumulator`):
/// *exact* retains the per-session metric samples and reads percentiles
/// from one sorted buffer per metric (the pre-streaming behaviour, bit
/// for bit), while *streaming* feeds P² sketches so a 10^5–10^6-session
/// fleet rolls up in O(1) memory per metric. Counters are exact in both.
/// Streaming estimates are order-sensitive; the fleet feeds sessions in
/// session-id order, which makes them thread-count invariant too.

namespace hbosim::fleet {

/// Aggregate outcome of one simulated session. Everything except
/// `wall_seconds` is a pure function of the session's spec and seed, and
/// therefore identical regardless of which thread ran it (the fleet
/// determinism guarantee — see DESIGN.md).
struct SessionResult {
  std::size_t session_id = 0;
  std::string device;
  std::string scenario;  ///< "SC1/CF1" etc.
  std::uint64_t seed = 0;

  double sim_seconds = 0.0;   ///< Simulated time covered.
  std::size_t periods = 0;    ///< Monitor periods observed.
  double mean_quality = 0.0;  ///< Mean Q_t over the session.
  double mean_latency_ratio = 0.0;  ///< Mean epsilon_t.
  double mean_reward = 0.0;         ///< Mean B_t = Q - w*eps.

  std::size_t activations = 0;        ///< All activations (incl. warm).
  std::size_t warm_starts = 0;        ///< Served from any remembered entry.
  std::size_t shared_warm_starts = 0; ///< Served from the fleet pool.
  /// Full activations that ran with a learned surrogate prior injected
  /// (policy mode Prior; see hbosim::policy).
  std::size_t prior_activations = 0;
  /// LinUCB arm pulls (policy mode Bandit; sessions then run the bandit
  /// loop instead of HBO, so `activations` counts pulls too).
  std::size_t bandit_pulls = 0;

  // Edge-service interaction (all zero when the fleet runs without one).
  std::uint64_t edge_requests = 0;          ///< Requests issued to the edge.
  std::uint64_t edge_retries = 0;           ///< Re-attempts after a failure.
  std::uint64_t edge_rejected_attempts = 0; ///< Bounced at the bounded queue.
  std::uint64_t edge_timeout_attempts = 0;  ///< Deadline-missing attempts.
  std::uint64_t edge_fallbacks = 0;         ///< Requests that gave up (any class).
  std::uint64_t edge_decim_fallbacks = 0;   ///< Served a nearest-cached LOD.
  std::uint64_t edge_bo_fallbacks = 0;      ///< Store fetch fell back to local BO.
  // Measured edge demand (feeds the market's learning loop, and gives the
  // saturation bench a per-tenant end-to-end response-time figure).
  std::uint64_t edge_payload_bytes = 0;  ///< Downlink bytes moved.
  double edge_units = 0.0;               ///< Request sizes (mtri) served.
  double edge_service_s = 0.0;           ///< Core-seconds of own requests.
  double edge_elapsed_s = 0.0;           ///< Summed perform() elapsed time.

  // Market allocation this tenant ran under (see hbosim::marketsvc). All
  // neutral when the fleet runs without FleetSpec::market.
  bool market_session = false;     ///< Session ran under the allocator.
  bool market_denied = false;      ///< Bumped to the best-effort class.
  double market_resolution = 1.0;  ///< Resolution knob assigned.
  double market_bandwidth_frac = 1.0;  ///< Decided link share.
  double market_price = 0.0;           ///< Posted price the tenant saw.

  // Edge-offload roll-up (see hbosim::offload and FleetSpec::offload).
  // All neutral when the fleet runs with offload disabled.
  bool offload_session = false;    ///< Session ran with the 4-target space.
  std::uint64_t offload_completed = 0;  ///< Inferences finished (any target).
  std::uint64_t offload_remote = 0;     ///< Finished on the edge mirror.
  std::uint64_t offload_fallbacks = 0;  ///< Failed exchanges -> local run.
  double offload_rate = 0.0;       ///< remote / completed (0 when none ran).
  double mean_edge_share = 0.0;    ///< Mean applied per-task edge share.
  double radio_energy_j = 0.0;     ///< Radio energy charged for exchanges.
  double offload_elapsed_s = 0.0;  ///< Summed offload exchange wall time.

  // Power/thermal roll-up (all neutral when the fleet runs without a
  // power model; see FleetSpec::use_power_model).
  double energy_j = 0.0;         ///< Battery draw over the session.
  double mean_power_w = 0.0;     ///< energy_j / simulated seconds.
  double max_die_temp_c = 0.0;   ///< Peak die temperature reached.
  std::uint64_t throttle_events = 0;  ///< Governor down-steps.
  double time_throttled_s = 0.0;      ///< Sim-time below nominal clocks.
  double min_freq_scale = 1.0;        ///< Deepest DVFS point reached.
  double battery_soc = 1.0;           ///< Charge remaining at session end.
  double battery_drain_pct_per_hour = 0.0;  ///< Projected drain rate.

  // Scheduler forensics roll-up (see des::SchedAnalyzer). All neutral
  // when the fleet runs without sched tracing (FleetSpec::sched.enabled).
  bool sched_traced = false;           ///< A SchedTrace was attached.
  std::size_t sched_jobs = 0;          ///< Completed jobs analyzed.
  double sched_worst_p99_slowdown = 0.0;  ///< Max p99 slowdown, any unit.
  double sched_fairness_floor = 1.0;      ///< Min windowed Jain index.
  std::size_t sched_starved_jobs = 0;
  std::uint64_t sched_events = 0;          ///< Lifecycle records captured.
  std::uint64_t sched_dropped_events = 0;  ///< Records lost to ring wrap.

  double wall_seconds = 0.0;  ///< Host time spent simulating this session.
};

/// Min/mean/percentile summary of one per-session metric.
struct MetricSummary {
  double min = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

struct FleetMetrics {
  std::size_t sessions = 0;
  /// True when the percentile summaries came from the streaming (P²)
  /// path; min/mean/max and every counter are exact either way.
  bool streamed = false;
  double total_sim_seconds = 0.0;
  double wall_seconds = 0.0;  ///< End-to-end fleet wall-clock.
  /// Simulated sessions finished per host second (the scaling figure of
  /// merit for bench_fleet).
  double sessions_per_sec = 0.0;

  MetricSummary quality;        ///< Over per-session mean Q.
  MetricSummary latency_ratio;  ///< Over per-session mean epsilon.
  MetricSummary reward;         ///< Over per-session mean B.

  std::size_t total_activations = 0;
  std::size_t total_warm_starts = 0;
  std::size_t total_shared_warm_starts = 0;
  /// Warm starts as a fraction of all activations, in [0, 1].
  double warm_start_rate = 0.0;

  SharedSolutionPoolStats pool;  ///< Zeroed when no pool was attached.

  /// Health of the shared edge service, rolled up from every session's
  /// mirror (see edgesvc::EdgeBroker). All-zero when the fleet ran
  /// without an edge service.
  struct EdgeHealth {
    bool enabled = false;
    std::uint64_t requests = 0;
    std::uint64_t retries = 0;
    std::uint64_t rejected_attempts = 0;
    std::uint64_t timeout_attempts = 0;
    std::uint64_t fallbacks = 0;
    std::uint64_t decim_fallbacks = 0;
    std::uint64_t bo_fallbacks = 0;
    double rejection_rate = 0.0;  ///< Server-side: rejected / arrivals.
    double fallback_rate = 0.0;   ///< Client-side: fallbacks / requests.
    double queue_depth_p95 = 0.0; ///< Arrival-weighted queue depth p95.
    double mean_wait_ms = 0.0;    ///< Mean admitted-request queue wait.
  };
  EdgeHealth edge;

  /// Edge-offload roll-up across sessions (see hbosim::offload and
  /// FleetSpec::offload). Sums and id-order-fed summaries only, so the
  /// roll-up is identical on 1 and N fleet threads. All-neutral when the
  /// fleet ran with offload disabled (enabled == false).
  struct OffloadHealth {
    bool enabled = false;
    std::uint64_t completed_inferences = 0;  ///< Any target, summed.
    std::uint64_t remote_inferences = 0;     ///< Edge-served, summed.
    std::uint64_t fallbacks = 0;  ///< Failed exchanges -> local, summed.
    /// remote_inferences / completed_inferences across the fleet.
    double offload_rate = 0.0;
    /// Distribution of per-session mean applied edge shares.
    MetricSummary edge_share;
    double radio_energy_j = 0.0;  ///< Radio energy charged, summed.
  };
  OffloadHealth offload;

  /// Thermal/energy roll-up across sessions. All-neutral when the fleet
  /// ran without a power model (enabled == false).
  struct PowerHealth {
    bool enabled = false;
    double total_energy_j = 0.0;
    MetricSummary mean_power_w;        ///< Over per-session mean watts.
    MetricSummary max_die_temp_c;      ///< Over per-session peak temps.
    MetricSummary drain_pct_per_hour;  ///< Over projected drain rates.
    std::uint64_t throttle_events = 0; ///< Governor down-steps, summed.
    double min_freq_scale = 1.0;       ///< Deepest OPP any session hit.
    /// Fraction of sessions that throttled at least once.
    double throttled_session_fraction = 0.0;
  };
  PowerHealth power;

  /// Learned-policy roll-up (see hbosim::policy and FleetSpec::policy).
  /// All-neutral when the fleet ran with the policy layer off.
  struct PolicyHealth {
    bool enabled = false;
    std::string mode;  ///< "prior" or "bandit".
    std::size_t epochs = 0;             ///< Learning epochs (barriers) run.
    std::size_t prior_activations = 0;  ///< Activations with a prior injected.
    std::size_t bandit_pulls = 0;       ///< LinUCB arm pulls across sessions.
    /// Fraction of full (non-warm-start) activations that got a prior.
    double prior_injection_rate = 0.0;
    std::size_t store_keys = 0;          ///< PriorStore exact keys.
    std::size_t store_observations = 0;  ///< Observations retained.
    std::uint64_t priors_fitted = 0;     ///< Fits across all snapshots.
    std::uint64_t bandit_updates = 0;    ///< Learner rank-one updates.
  };
  PolicyHealth policy;

  /// Fleet-level resource-market roll-up (see hbosim::marketsvc and
  /// FleetSpec::market). All-neutral when the fleet ran without the
  /// JointAllocator (enabled == false).
  struct MarketHealth {
    bool enabled = false;
    std::string policy;       ///< "pf", "maxmin" or "price".
    std::size_t ticks = 0;    ///< Allocator epochs (barrier ticks) run.
    std::size_t denied_sessions = 0;  ///< Tenants bumped to best effort.
    /// Admitted tenants as a fraction of market sessions, in [0, 1].
    double admission_rate = 1.0;
    /// Distribution of the per-session resolution knob.
    MetricSummary resolution;
    double link_activity = 0.0;        ///< Decided, last tick.
    double compute_utilization = 0.0;  ///< Decided, last tick.
    double final_price = 0.0;          ///< Posted price after last tick.
  };
  MarketHealth market;

  /// Scheduler forensics roll-up across sessions (des::SchedAnalyzer per
  /// session, aggregated in session-id order — every field below is also
  /// order-independent, so the roll-up is identical on 1 and N fleet
  /// threads). All-neutral when sched tracing was off (enabled == false).
  struct SchedHealth {
    bool enabled = false;
    std::size_t jobs = 0;               ///< Completed jobs, summed.
    double worst_p99_slowdown = 0.0;    ///< Max over sessions.
    double fairness_floor = 1.0;        ///< Min over sessions.
    std::size_t starved_jobs = 0;       ///< Summed.
    std::uint64_t events = 0;           ///< Lifecycle records, summed.
    std::uint64_t dropped_events = 0;   ///< Ring-wrap losses, summed.
    /// Distribution of per-session worst p99 slowdowns.
    MetricSummary p99_slowdown;
    /// Fraction of traced sessions that flagged at least one starved job.
    double starved_session_fraction = 0.0;
  };
  SchedHealth sched;
};

/// Summarize one metric sample (throws on empty input, like percentile()).
/// Takes the sample by value: it is sorted once and p50/p90/p99 are read
/// from the same sorted buffer.
MetricSummary summarize_metric(std::vector<double> values);

/// Streaming counterpart of summarize_metric: exact min/mean/max via a
/// RunningStat, sketched p50/p90/p99 via one P² estimator each. O(1)
/// memory regardless of sample count; estimates are feed-order sensitive.
class StreamingSummary {
 public:
  void add(double x);
  std::size_t count() const { return stat_.count(); }
  /// Zero summary when empty (streaming fleets never throw on a metric
  /// nothing fed — matches aggregate_fleet's empty-fleet behaviour).
  MetricSummary summary() const;

 private:
  RunningStat stat_;
  P2Quantile p50_{0.50};
  P2Quantile p90_{0.90};
  P2Quantile p99_{0.99};
};

/// One-pass fleet roll-up fed a SessionResult at a time, in session-id
/// order. Mode Exact retains the six metric samples per session and
/// reproduces the historical aggregate_fleet() output bit for bit; mode
/// Streaming holds only sketches, so memory is independent of fleet size
/// (the 10^5+-session path). Counters sum identically in both modes.
class FleetAccumulator {
 public:
  enum class Mode { Exact, Streaming };

  explicit FleetAccumulator(Mode mode) : mode_(mode) {}

  /// Feed one completed session (call in session-id order for
  /// deterministic streaming percentiles).
  void add(const SessionResult& s);

  std::size_t sessions() const { return count_; }

  /// Produce the fleet-wide metrics. `wall_seconds` is the end-to-end
  /// fleet run time; pass the broker's stats as `edge` when the fleet
  /// shared an edge service (null → edge health left zeroed).
  FleetMetrics finalize(double wall_seconds,
                        const SharedSolutionPoolStats& pool = {},
                        const edgesvc::EdgeFleetStats* edge = nullptr) const;

 private:
  Mode mode_;
  std::size_t count_ = 0;
  FleetMetrics totals_;  ///< Counter sums accumulated as sessions arrive.
  bool any_power_ = false;
  std::size_t throttled_sessions_ = 0;
  std::size_t sched_sessions_ = 0;    ///< Sessions that carried a trace.
  std::size_t starved_sessions_ = 0;  ///< Traced sessions with starvation.
  std::size_t market_sessions_ = 0;   ///< Sessions run under the allocator.
  std::size_t offload_sessions_ = 0;  ///< Sessions in the 4-target space.

  // Mode Exact: retained samples, summarized (sort-once) at finalize.
  std::vector<double> quality_, eps_, reward_;
  std::vector<double> watts_, temps_, drains_;
  std::vector<double> sched_p99s_;
  std::vector<double> market_res_;
  std::vector<double> edge_shares_;

  // Mode Streaming: O(1) sketches.
  StreamingSummary s_quality_, s_eps_, s_reward_;
  StreamingSummary s_watts_, s_temps_, s_drains_;
  StreamingSummary s_sched_p99s_;
  StreamingSummary s_market_res_;
  StreamingSummary s_edge_shares_;
};

/// Roll per-session results up into fleet-wide metrics — the exact path,
/// implemented as a FleetAccumulator(Exact) pass over `sessions`.
/// `wall_seconds` is the end-to-end fleet run time (not the sum of
/// per-session times, which overlap under multi-threading). Pass the
/// broker's stats as `edge` when the fleet shared an edge service (null →
/// edge health left zeroed).
FleetMetrics aggregate_fleet(const std::vector<SessionResult>& sessions,
                             double wall_seconds,
                             const SharedSolutionPoolStats& pool = {},
                             const edgesvc::EdgeFleetStats* edge = nullptr);

}  // namespace hbosim::fleet
