#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hbosim/core/monitored_session.hpp"
#include "hbosim/fleet/fleet_metrics.hpp"
#include "hbosim/fleet/shared_pool.hpp"
#include "hbosim/power/power_manager.hpp"
#include "hbosim/scenario/scenarios.hpp"

/// \file fleet_simulator.hpp
/// Runs hundreds-to-thousands of independent MonitoredSessions — stamped
/// out from a device mix × scenario mix — concurrently on a worker pool,
/// and rolls their results up into FleetMetrics.
///
/// Determinism: session i's device, scenario, seed, and entire simulated
/// trajectory are pure functions of (spec, base_seed, i). Worker threads
/// never share mutable state unless the SharedSolutionPool is enabled, so
/// a pool-disabled fleet produces bit-identical per-session results on 1
/// thread and on N threads. With the pool enabled, *which* sessions warm
/// start depends on completion order and is therefore scheduling-
/// dependent; each warm-started trajectory is still fully deterministic
/// given the solution it received.

namespace hbosim::fleet {

/// One candidate device in the fleet mix, by built-in profile name.
struct DeviceMixEntry {
  std::string device;  ///< e.g. "Pixel 7" (see soc::builtin_devices()).
  double weight = 1.0;
};

/// One candidate workload in the fleet mix.
struct ScenarioMixEntry {
  scenario::ObjectSet objects = scenario::ObjectSet::SC2;
  scenario::TaskSet tasks = scenario::TaskSet::CF2;
  double weight = 1.0;
};

struct FleetSpec {
  std::size_t sessions = 256;
  /// Worker threads; 0 means ThreadPool::hardware_threads().
  std::size_t threads = 0;
  /// Simulated seconds each session runs for.
  double duration_s = 60.0;
  /// Per-session seeds are base_seed + session_id, so any fleet slice can
  /// be reproduced in isolation.
  std::uint64_t base_seed = 0x5EEDu;

  /// Template for every session's loop configuration. The per-session BO
  /// seed is overridden with the session seed; use_lookup_table is forced
  /// on when the shared pool is enabled (warm starts flow through it).
  core::MonitoredSessionConfig session;

  /// Defaults to the paper's two phones, equally weighted.
  std::vector<DeviceMixEntry> devices;
  /// Defaults to SC1/SC2 × CF1/CF2, equally weighted.
  std::vector<ScenarioMixEntry> scenarios;

  bool use_shared_pool = false;
  SharedSolutionPoolConfig pool;

  /// Route every session's decimation misses and shared-store fetches
  /// through one contended edge box (see hbosim::edgesvc). Each session
  /// gets a deterministic mirror client from a shared EdgeBroker, so
  /// per-session results stay bit-identical across thread counts.
  bool use_edge_service = false;
  edgesvc::EdgeServiceSpec edge;

  /// Attach the battery/thermal/DVFS model (hbosim::power) to every
  /// session. Each session's PowerManager lives on that session's own
  /// Simulator and derives its ambient-noise seed from the session seed,
  /// so per-session results remain bit-identical across thread counts
  /// even with the throttling governor active.
  bool use_power_model = false;
  /// Tick/ambient/governor knobs shared by all sessions (the per-session
  /// seed field is overridden from the session seed).
  power::PowerConfig power;

  /// Throws hbosim::Error on nonsense (no sessions, negative weights, ...).
  void validate() const;
};

/// The fully resolved identity of one fleet session.
struct SessionSpec {
  std::size_t id = 0;
  std::string device;
  scenario::ObjectSet objects = scenario::ObjectSet::SC2;
  scenario::TaskSet tasks = scenario::TaskSet::CF2;
  std::uint64_t seed = 0;

  std::string scenario_name() const;  ///< "SC1/CF1" etc.
};

struct FleetResult {
  std::vector<SessionResult> sessions;  ///< Ordered by session_id.
  FleetMetrics metrics;
};

class FleetSimulator {
 public:
  explicit FleetSimulator(FleetSpec spec);

  /// Resolve session `id`'s device/scenario/seed. Deterministic in
  /// (spec, id); independent of threads and of other sessions.
  SessionSpec session_spec(std::size_t id) const;

  /// Simulate one session to completion on the calling thread.
  SessionResult run_session(const SessionSpec& spec) const;

  /// Run the whole fleet (blocking). Safe to call repeatedly; each call
  /// starts from a fresh pool.
  FleetResult run();

  const FleetSpec& spec() const { return spec_; }
  /// Null unless use_shared_pool; reset at the start of every run().
  const SharedSolutionPool* pool() const { return pool_.get(); }
  /// Null unless use_edge_service; reset at the start of every run().
  const edgesvc::EdgeBroker* edge_broker() const { return broker_.get(); }

 private:
  FleetSpec spec_;
  std::unique_ptr<SharedSolutionPool> pool_;
  std::unique_ptr<edgesvc::EdgeBroker> broker_;
};

}  // namespace hbosim::fleet
