#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hbosim/core/monitored_session.hpp"
#include "hbosim/des/sched_analyzer.hpp"
#include "hbosim/des/sched_trace.hpp"
#include "hbosim/fleet/fleet_metrics.hpp"
#include "hbosim/fleet/shared_pool.hpp"
#include "hbosim/policy/bandit.hpp"
#include "hbosim/policy/bandit_session.hpp"
#include "hbosim/policy/prior_store.hpp"
#include "hbosim/power/power_manager.hpp"
#include "hbosim/scenario/scenarios.hpp"

/// \file fleet_simulator.hpp
/// Runs hundreds-to-thousands of independent MonitoredSessions — stamped
/// out from a device mix × scenario mix — concurrently on a worker pool,
/// and rolls their results up into FleetMetrics.
///
/// Determinism: session i's device, scenario, seed, and entire simulated
/// trajectory are pure functions of (spec, base_seed, i). Worker threads
/// never share mutable state unless the SharedSolutionPool is enabled, so
/// a pool-disabled fleet produces bit-identical per-session results on 1
/// thread and on N threads. With the pool enabled, *which* sessions warm
/// start depends on completion order and is therefore scheduling-
/// dependent; each warm-started trajectory is still fully deterministic
/// given the solution it received.
///
/// The learned policy layer (FleetSpec::policy) keeps the bit-identity
/// guarantee even though sessions *learn from each other*: the fleet runs
/// in epochs of `epoch_sessions` sessions. Every session in an epoch
/// reads the same frozen artifact — an immutable PriorSnapshot (mode
/// Prior) or a frozen copy of the LinUCB model (mode Bandit) — and the
/// mutable learner is fed only at the epoch barrier, on the main thread,
/// in session-id order. Epoch membership, snapshot content, and feed
/// order are all pure functions of the spec, so a policy-enabled,
/// pool-disabled fleet is bit-identical on 1 thread and on N threads.

namespace hbosim::fleet {

/// One candidate device in the fleet mix, by built-in profile name.
struct DeviceMixEntry {
  std::string device;  ///< e.g. "Pixel 7" (see soc::builtin_devices()).
  double weight = 1.0;
};

/// One candidate workload in the fleet mix.
struct ScenarioMixEntry {
  scenario::ObjectSet objects = scenario::ObjectSet::SC2;
  scenario::TaskSet tasks = scenario::TaskSet::CF2;
  double weight = 1.0;
};

/// How (if at all) the fleet learns across sessions beyond the solution
/// pool. See the determinism note at the top of this file.
enum class PolicyMode {
  Off,     ///< No policy layer; the pre-policy fleet loop, bit for bit.
  Prior,   ///< HBO sessions + PriorStore-fitted GP warm-start priors.
  Bandit,  ///< Sessions run the LinUCB agent instead of HBO.
};

/// Live progress of a running fleet, handed to FleetSpec::on_progress.
struct FleetProgress {
  std::size_t completed = 0;     ///< Sessions rolled up so far.
  std::size_t sessions = 0;      ///< Total sessions in the fleet.
  double wall_seconds = 0.0;     ///< Elapsed since run() started.
};

struct FleetPolicyConfig {
  PolicyMode mode = PolicyMode::Off;
  /// Sessions per learning epoch: every epoch reads one frozen artifact,
  /// and the learner absorbs the epoch's traffic at the barrier. Smaller
  /// epochs learn faster but serialize more.
  std::size_t epoch_sessions = 32;
  policy::PriorStoreConfig prior;  ///< Mode Prior knobs.
  policy::BanditConfig bandit;     ///< Mode Bandit knobs.
};

/// The edge as an actor (hbosim::marketsvc): per-epoch broker ticks of a
/// cross-tenant JointAllocator decide each tenant's link share, compute
/// share, resolution knob, and (Pricing policy) admission + price signal.
/// Same determinism recipe as the policy layer: sessions of an epoch run
/// against one frozen decision vector, and the allocator is ticked/fed
/// only at the barrier, on the main thread, in session-id order — so a
/// market fleet is bit-identical on 1 and N threads. Disabled, the fleet
/// reproduces the mirror-based path bit for bit.
struct FleetMarketConfig {
  bool enabled = false;
  /// Tenants per broker tick (one allocation round per epoch).
  std::size_t epoch_sessions = 32;
  /// Policy, budgets, pricing knobs (see marketsvc::MarketConfig).
  marketsvc::MarketConfig allocator;
};

struct FleetSpec {
  std::size_t sessions = 256;
  /// Worker threads; 0 means ThreadPool::hardware_threads().
  std::size_t threads = 0;
  /// Simulated seconds each session runs for.
  double duration_s = 60.0;
  /// Per-session seeds are base_seed + session_id, so any fleet slice can
  /// be reproduced in isolation.
  std::uint64_t base_seed = 0x5EEDu;

  /// Template for every session's loop configuration. The per-session BO
  /// seed is overridden with the session seed; use_lookup_table is forced
  /// on when the shared pool is enabled (warm starts flow through it).
  core::MonitoredSessionConfig session;

  /// Defaults to the paper's two phones, equally weighted.
  std::vector<DeviceMixEntry> devices;
  /// Defaults to SC1/SC2 × CF1/CF2, equally weighted.
  std::vector<ScenarioMixEntry> scenarios;

  bool use_shared_pool = false;
  SharedSolutionPoolConfig pool;

  /// Learned policy layer (hbosim::policy): warm-start priors or the
  /// bandit agent, trained on the fleet's own traffic at epoch barriers.
  FleetPolicyConfig policy;

  /// Route every session's decimation misses and shared-store fetches
  /// through one contended edge box (see hbosim::edgesvc). Each session
  /// gets a deterministic mirror client from a shared EdgeBroker, so
  /// per-session results stay bit-identical across thread counts.
  bool use_edge_service = false;
  edgesvc::EdgeServiceSpec edge;

  /// Statically pin every session's edge resolution knob to this value
  /// (in (0, 1]; 1.0 is the historical full-resolution path, bit for
  /// bit). This is the "quality manipulation without joint allocation"
  /// baseline: every tenant sheds r^2 payload/work and reports r^gamma
  /// quality exactly as a market session would, but keeps the *static*
  /// mirror background guess — nobody learns that the others trimmed
  /// too. Requires use_edge_service; mutually exclusive with
  /// market.enabled (the allocator owns the knob there). The perceptual
  /// exponent is market.allocator.resolution_gamma in both paths.
  double edge_static_resolution = 1.0;

  /// Make that edge an actor: the broker's JointAllocator jointly assigns
  /// spectrum, compute, and per-tenant resolution on every epoch tick.
  /// Requires use_edge_service (the allocator needs a box to allocate).
  FleetMarketConfig market;

  /// Put the edge *inside every session's HBO decision space* (see
  /// hbosim::offload): with offload.enabled each session searches the
  /// 4-target CPU/GPU/NPU/edge simplex and routes the decided share of
  /// its inferences to its deterministic edge mirror, with radio energy
  /// charged to the session battery. Requires use_edge_service; radio
  /// accounting (radio_w > 0) additionally requires use_power_model.
  /// Mutually exclusive with market.enabled and PolicyMode::Bandit (see
  /// FleetSpec::validate for why). Disabled (the default), every session
  /// result is bit-identical to the pre-offload fleet.
  offload::OffloadConfig offload;

  /// Attach the battery/thermal/DVFS model (hbosim::power) to every
  /// session. Each session's PowerManager lives on that session's own
  /// Simulator and derives its ambient-noise seed from the session seed,
  /// so per-session results remain bit-identical across thread counts
  /// even with the throttling governor active.
  bool use_power_model = false;
  /// Tick/ambient/governor knobs shared by all sessions (the per-session
  /// seed field is overridden from the session seed).
  power::PowerConfig power;

  /// Scheduler forensics (des::SchedAnalyzer): with sched.enabled, every
  /// session runs with a private SchedTrace on its own Simulator and is
  /// analyzed offline when it completes; the SessionResult carries the
  /// per-session SchedHealth numbers and FleetMetrics::sched rolls them
  /// up. Tracing is observational: per-session results are bit-identical
  /// with tracing on and off (pinned in tests), and the roll-up uses only
  /// order-independent reductions so 1-vs-N-thread fleets agree exactly.
  des::SchedTraceConfig sched;
  /// Starvation-k / fairness-window knobs for the per-session analysis.
  des::SchedAnalyzerConfig sched_analysis;

  /// Keep every SessionResult in FleetResult::sessions (the historical
  /// behaviour — this path is bitwise unchanged). With false, the fleet
  /// rolls results up through the streaming accumulator as they complete:
  /// FleetResult::sessions stays empty, retained memory is O(threads)
  /// instead of O(sessions) (completed futures are consumed from a bounded
  /// in-flight window, in session-id order), and metric percentiles come
  /// from P² sketches while every counter stays exact. This is the
  /// 10^5–10^6-session path.
  bool retain_results = true;

  /// Back each session's DES state (event queue, trace buffers, lookup
  /// table) with a per-worker bump arena that is reset between sessions on
  /// the same worker, so a long fleet run performs O(1) heap allocations
  /// per worker for that state instead of O(events) per session. Results
  /// are bit-identical either way (an allocator changes addresses, never
  /// values); the switch exists for A/B tests and as an escape hatch.
  bool use_session_arena = true;

  /// Invoke `on_progress` (on the main thread, inside run()) every this
  /// many completed sessions; 0 disables. Used by fleet_demo --stream for
  /// throughput/RSS heartbeats on multi-minute mega fleets.
  std::size_t progress_every = 0;
  std::function<void(const FleetProgress&)> on_progress;

  /// Throws hbosim::Error on nonsense (no sessions, negative weights, ...).
  void validate() const;
};

/// The fully resolved identity of one fleet session.
struct SessionSpec {
  std::size_t id = 0;
  std::string device;
  scenario::ObjectSet objects = scenario::ObjectSet::SC2;
  scenario::TaskSet tasks = scenario::TaskSet::CF2;
  std::uint64_t seed = 0;

  std::string scenario_name() const;  ///< "SC1/CF1" etc.
};

struct FleetResult {
  /// Ordered by session_id; empty when FleetSpec::retain_results is false
  /// (the streaming path keeps only the roll-up in `metrics`).
  std::vector<SessionResult> sessions;
  FleetMetrics metrics;
};

/// One (environment, configuration, cost) sample a prior-mode session
/// produced, carried back to the barrier for the PriorStore feed.
struct PolicyObservation {
  core::EnvironmentKey env;
  std::vector<double> z;
  double cost = 0.0;
};

/// run_policy_session's return: the ordinary per-session roll-up plus the
/// epoch traffic the main thread feeds the learner with, in session-id
/// order, at the barrier.
struct PolicySessionOutput {
  SessionResult result;
  std::vector<PolicyObservation> observations;  ///< Mode Prior.
  std::vector<policy::Experience> experiences;  ///< Mode Bandit.
};

class FleetSimulator {
 public:
  explicit FleetSimulator(FleetSpec spec);

  /// Resolve session `id`'s device/scenario/seed. Deterministic in
  /// (spec, id); independent of threads and of other sessions.
  SessionSpec session_spec(std::size_t id) const;

  /// Simulate one session to completion on the calling thread.
  SessionResult run_session(const SessionSpec& spec) const;

  /// Re-run one session with the caller's SchedTrace attached (regardless
  /// of FleetSpec::sched.enabled) and return its result. Because every
  /// session is a pure function of (spec, seed) and tracing never feeds
  /// back, this reproduces the fleet run's trajectory exactly — the
  /// deterministic deep-dive behind `fleet_demo --sched`, which re-runs
  /// the worst session to print its full forensics report.
  SessionResult run_session_traced(const SessionSpec& spec,
                                   des::SchedTrace& trace) const;

  /// Simulate one session against frozen epoch artifacts: with `priors`
  /// set, an HBO session whose full activations consult the snapshot;
  /// with `bandit` set, a BanditSession selecting against the frozen
  /// model. Both null reproduces run_session() exactly. Pure function of
  /// (spec, artifacts) — callable from any worker thread.
  PolicySessionOutput run_policy_session(
      const SessionSpec& spec,
      std::shared_ptr<const policy::PriorSnapshot> priors,
      std::shared_ptr<const policy::LinUcbBandit> bandit) const;

  /// Simulate one session under a frozen market tick decision: the edge
  /// client carries the allocator's decided background and resolution,
  /// the session's HBO cost carries the posted price, and the reported
  /// quality carries the resolution's perceptual scale. Pure function of
  /// (spec, allocation) — callable from any worker thread. Requires the
  /// broker to exist with its market enabled (i.e. inside run()).
  SessionResult run_market_session(
      const SessionSpec& spec,
      const marketsvc::TenantAllocation& alloc) const;

  /// Run the whole fleet (blocking). Safe to call repeatedly; each call
  /// starts from a fresh pool/store/learner.
  FleetResult run();

  const FleetSpec& spec() const { return spec_; }
  /// Null unless use_shared_pool; reset at the start of every run().
  const SharedSolutionPool* pool() const { return pool_.get(); }
  /// Null unless use_edge_service; reset at the start of every run().
  const edgesvc::EdgeBroker* edge_broker() const { return broker_.get(); }
  /// Null unless policy mode Prior; reset at the start of every run().
  const policy::PriorStore* prior_store() const { return prior_store_.get(); }
  /// Null unless policy mode Bandit; reset at the start of every run().
  const policy::LinUcbBandit* bandit() const { return bandit_.get(); }

 private:
  /// The session body; run_policy_session wraps it in the per-worker
  /// ArenaScope when FleetSpec::use_session_arena is set. A non-null
  /// `trace` (run_session_traced) overrides the spec-owned sched trace;
  /// a non-null `market` (run_market_session) swaps the mirror client
  /// for the allocator's market client and applies the decision's
  /// resolution/price to the session.
  PolicySessionOutput run_policy_session_impl(
      const SessionSpec& spec,
      std::shared_ptr<const policy::PriorSnapshot> priors,
      std::shared_ptr<const policy::LinUcbBandit> bandit,
      des::SchedTrace* trace = nullptr,
      const marketsvc::TenantAllocation* market = nullptr) const;

  FleetSpec spec_;
  std::unique_ptr<SharedSolutionPool> pool_;
  std::unique_ptr<edgesvc::EdgeBroker> broker_;
  std::unique_ptr<policy::PriorStore> prior_store_;
  std::unique_ptr<policy::LinUcbBandit> bandit_;
  std::size_t policy_epochs_ = 0;
};

}  // namespace hbosim::fleet
