#include "hbosim/core/config.hpp"

#include "hbosim/common/error.hpp"

namespace hbosim::core {

void HboConfig::validate() const {
  HB_REQUIRE(w >= 0.0, "weight w must be non-negative");
  HB_REQUIRE(w_energy >= 0.0, "weight w_energy must be non-negative");
  HB_REQUIRE(market_price >= 0.0, "market_price must be non-negative");
  HB_REQUIRE(n_initial >= 1, "need at least one initial configuration");
  HB_REQUIRE(n_iterations >= 0, "iteration count must be non-negative");
  HB_REQUIRE(selection_candidates >= 1, "need at least one selection candidate");
  HB_REQUIRE(r_min > 0.0 && r_min <= 1.0, "R_min must be in (0,1]");
  HB_REQUIRE(control_period_s > 0.0, "control period must be positive");
  HB_REQUIRE(monitor_period_s > 0.0, "monitor period must be positive");
  HB_REQUIRE(up_fraction >= 0.0 && down_fraction >= 0.0,
             "activation thresholds must be non-negative");
  offload.validate();
}

}  // namespace hbosim::core
