#include "hbosim/core/activation.hpp"

#include <algorithm>
#include <cmath>

#include "hbosim/common/error.hpp"

namespace hbosim::core {

EventActivationPolicy::EventActivationPolicy(double up_fraction,
                                             double down_fraction,
                                             double reference_floor)
    : up_fraction_(up_fraction),
      down_fraction_(down_fraction),
      reference_floor_(reference_floor) {
  HB_REQUIRE(up_fraction_ >= 0.0 && down_fraction_ >= 0.0,
             "activation fractions must be non-negative");
  HB_REQUIRE(reference_floor_ > 0.0, "reference floor must be positive");
}

double EventActivationPolicy::reference() const {
  HB_REQUIRE(has_reference_, "no reference reward recorded yet");
  return reference_;
}

void EventActivationPolicy::set_reference(double reward) {
  reference_ = reward;
  has_reference_ = true;
}

bool EventActivationPolicy::should_activate(double current_reward) const {
  ++evaluations_;
  if (!has_reference_) return true;
  const double base = std::max(std::abs(reference_), reference_floor_);
  const double delta = current_reward - reference_;
  if (delta > up_fraction_ * base) return true;
  if (delta < -down_fraction_ * base) return true;
  return false;
}

PeriodicActivationPolicy::PeriodicActivationPolicy(std::size_t period_ticks)
    : period_ticks_(period_ticks) {
  HB_REQUIRE(period_ticks_ > 0, "period must be positive");
}

bool PeriodicActivationPolicy::should_activate() {
  const bool fire = (tick_ % period_ticks_) == 0;
  ++tick_;
  return fire;
}

}  // namespace hbosim::core
