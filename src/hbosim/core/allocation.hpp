#pragma once

#include <span>
#include <vector>

#include "hbosim/ai/profiler.hpp"
#include "hbosim/soc/resource.hpp"

/// \file allocation.hpp
/// Algorithm 1, lines 2-22: translate the BO's fractional per-resource
/// usage vector c into a concrete delegate for each of the M AI tasks.
///
/// Two stages, exactly as in the paper:
///  1. *Quota rounding* (lines 2-12): C_i = floor(c_i * M); the r leftover
///     tasks are assigned one-by-one to resources in non-increasing c
///     order (ties broken by resource index for determinism).
///  2. *Priority-queue greedy* (lines 13-22): repeatedly take the
///     (task, resource) pair with the lowest profiled isolation latency;
///     if the resource still has quota, commit that assignment and drop
///     the task's other entries; otherwise drop every entry for the
///     exhausted resource.
///
/// Deviation from the paper's pseudo-code, documented here because the
/// paper does not address it: with incompatible (model, delegate) pairs
/// ("NA" in Table I) the queue can drain while quota remains on a
/// delegate none of the leftover tasks support. Any still-unassigned task
/// then falls back to its fastest *compatible* delegate with remaining
/// quota, or — if no quota fits — its fastest compatible delegate
/// overall. This keeps the result total and is exercised by tests.

namespace hbosim::core {

struct AllocationResult {
  /// Delegate per task (ordered like the input taskset).
  std::vector<soc::Delegate> delegates;
  /// The integer quotas C after lines 2-12 (for tests/inspection).
  std::vector<int> quotas;
  /// Tasks that needed the compatibility fallback (empty when the paper's
  /// pseudo-code sufficed).
  std::vector<std::size_t> fallback_tasks;
};

class HeuristicAllocator {
 public:
  /// `profiles` must cover every model in `task_models`.
  HeuristicAllocator(const ai::ProfileTable& profiles,
                     std::vector<std::string> task_models);

  /// Lines 2-22 for a usage vector c of size kNumDelegates (entries in
  /// [0,1] summing to ~1).
  AllocationResult allocate(std::span<const double> usage) const;

  /// Lines 2-12 only (exposed for unit tests): integer quotas from
  /// fractional usages.
  static std::vector<int> round_quotas(std::span<const double> usage,
                                       std::size_t task_count);

 private:
  const ai::ProfileTable& profiles_;
  std::vector<std::string> task_models_;
  std::vector<ai::PriorityEntry> priority_entries_;  // sorted by latency
};

}  // namespace hbosim::core
