#include "hbosim/core/lookup_table.hpp"

#include <algorithm>
#include <cmath>

namespace hbosim::core {

EnvironmentKey SolutionLookupTable::make_key(app::MarApp& app) {
  EnvironmentKey key;
  key.triangle_bucket = static_cast<std::uint64_t>(std::llround(
      static_cast<double>(app.scene().total_max_triangles()) / 1e5));

  const auto ids = app.scene().object_ids();
  if (!ids.empty()) {
    double acc = 0.0;
    for (ObjectId id : ids) acc += app.scene().effective_distance(id);
    const double avg = acc / static_cast<double>(ids.size());
    key.distance_bucket = static_cast<std::uint64_t>(std::llround(avg * 2.0));
  }

  // Order-insensitive FNV over sorted model names.
  std::vector<std::string> models = app.task_models();
  std::sort(models.begin(), models.end());
  std::uint64_t h = 1469598103934665603ull;
  for (const std::string& m : models) {
    for (char c : m) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= '|';
    h *= 1099511628211ull;
  }
  key.taskset_hash = h;
  return key;
}

void SolutionLookupTable::store(const EnvironmentKey& key,
                                StoredSolution solution) {
  auto it = entries_.find(key);
  if (it == entries_.end() || solution.cost < it->second.cost) {
    entries_[key] = std::move(solution);
  }
}

void SolutionLookupTable::replace(const EnvironmentKey& key,
                                  StoredSolution solution) {
  entries_[key] = std::move(solution);
}

std::optional<StoredSolution> SolutionLookupTable::find(
    const EnvironmentKey& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

}  // namespace hbosim::core
