#include "hbosim/core/controller.hpp"

#include <algorithm>
#include <limits>

#include "hbosim/common/error.hpp"
#include "hbosim/common/mathx.hpp"
#include "hbosim/core/cost.hpp"

namespace hbosim::core {

const IterationRecord& ActivationResult::best() const {
  HB_REQUIRE(best_index < history.size(), "empty activation result");
  return history[best_index];
}

std::vector<double> ActivationResult::best_cost_curve() const {
  std::vector<double> out;
  out.reserve(history.size());
  double best = std::numeric_limits<double>::infinity();
  for (const IterationRecord& r : history) {
    best = std::min(best, r.cost);
    out.push_back(best);
  }
  return out;
}

std::vector<double> ActivationResult::consecutive_distances() const {
  std::vector<double> out;
  for (std::size_t i = 1; i < history.size(); ++i)
    out.push_back(euclidean_distance(history[i - 1].z, history[i].z));
  return out;
}

HboController::HboController(app::MarApp& app, HboConfig cfg)
    : app_(app), cfg_(cfg), rng_(cfg.seed) {
  cfg_.validate();
}

void HboController::ensure_allocator() {
  if (allocator_) return;
  HB_REQUIRE(!app_.tasks().empty(), "HBO needs at least one AI task");
  allocator_ = std::make_unique<HeuristicAllocator>(app_.profiles(),
                                                    app_.task_models());
}

std::vector<ObjectState> HboController::object_states(app::MarApp& app) {
  std::vector<ObjectState> out;
  for (ObjectId id : app.scene().object_ids()) {
    const render::VirtualObject& obj = app.scene().object(id);
    out.push_back(ObjectState{obj.asset().params(),
                              app.scene().effective_distance(id),
                              obj.asset().max_triangles()});
  }
  return out;
}

IterationRecord HboController::apply_configuration(
    std::span<const double> z) {
  ensure_allocator();
  HB_REQUIRE(z.size() == static_cast<std::size_t>(soc::kNumDelegates) + 1,
             "configuration must be [c_1..c_N, x]");
  IterationRecord rec;
  rec.z.assign(z.begin(), z.end());
  auto [usage, x] = bo::SimplexBoxSpace::split(z);
  rec.usage = usage;
  rec.triangle_ratio = x;

  const AllocationResult alloc = allocator_->allocate(usage);
  rec.allocation = alloc.delegates;
  app_.apply_allocation(alloc.delegates);

  const std::vector<ObjectState> objects = object_states(app_);
  rec.object_ratios = distribute_waterfill(objects, x);
  if (!rec.object_ratios.empty()) app_.apply_object_ratios(rec.object_ratios);
  return rec;
}

ActivationResult HboController::run_activation() {
  ensure_allocator();
  app_.start();

  bo::BoConfig bo_cfg = cfg_.bo;
  bo_cfg.n_initial = cfg_.n_initial;
  bo_cfg.prior = prior_;  // null unless a policy layer injected one
  optimizer_ = std::make_unique<bo::BayesianOptimizer>(
      bo::SimplexBoxSpace(soc::kNumDelegates, cfg_.r_min, 1.0), bo_cfg);

  ActivationResult result;
  const int total_iters = cfg_.n_initial + cfg_.n_iterations;
  for (int iter = 0; iter < total_iters; ++iter) {
    const std::vector<double> z = optimizer_->suggest(rng_);
    IterationRecord rec = apply_configuration(z);
    rec.index = iter;
    rec.random_init = iter < cfg_.n_initial;

    const app::PeriodMetrics metrics =
        app_.run_period(cfg_.control_period_s);
    rec.quality = metrics.average_quality;
    rec.latency_ratio = metrics.latency_ratio;
    rec.cost = cost_of(metrics, cfg_.w, cfg_.w_energy, cfg_.market_price);
    optimizer_->tell(rec.z, rec.cost);
    result.history.push_back(std::move(rec));
  }

  // "After the last iteration, the configuration that obtained the lowest
  // cost value is selected to be used until the next activation." A
  // single 2-second window is a noisy estimator, so the top few
  // candidates are re-measured once each and the re-measured winner is
  // kept (see HboConfig::selection_candidates).
  std::vector<std::size_t> order(result.history.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return result.history[a].cost < result.history[b].cost;
  });
  const std::size_t k = std::min<std::size_t>(
      static_cast<std::size_t>(cfg_.selection_candidates), order.size());
  result.best_index = order[0];
  if (k > 1) {
    double best_validated = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < k; ++i) {
      apply_configuration(result.history[order[i]].z);
      const app::PeriodMetrics m = app_.run_period(cfg_.control_period_s);
      const double c = cost_of(m, cfg_.w, cfg_.w_energy, cfg_.market_price);
      if (c < best_validated) {
        best_validated = c;
        result.best_index = order[i];
      }
    }
    result.validated_cost = best_validated;
  }
  apply_configuration(result.history[result.best_index].z);
  return result;
}

}  // namespace hbosim::core
