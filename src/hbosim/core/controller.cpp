#include "hbosim/core/controller.hpp"

#include <algorithm>
#include <limits>

#include "hbosim/common/error.hpp"
#include "hbosim/common/mathx.hpp"
#include "hbosim/core/cost.hpp"

namespace hbosim::core {

const IterationRecord& ActivationResult::best() const {
  HB_REQUIRE(best_index < history.size(), "empty activation result");
  return history[best_index];
}

std::vector<double> ActivationResult::best_cost_curve() const {
  std::vector<double> out;
  out.reserve(history.size());
  double best = std::numeric_limits<double>::infinity();
  for (const IterationRecord& r : history) {
    best = std::min(best, r.cost);
    out.push_back(best);
  }
  return out;
}

std::vector<double> ActivationResult::consecutive_distances() const {
  std::vector<double> out;
  for (std::size_t i = 1; i < history.size(); ++i)
    out.push_back(euclidean_distance(history[i - 1].z, history[i].z));
  return out;
}

HboController::HboController(app::MarApp& app, HboConfig cfg)
    : app_(app), cfg_(cfg), rng_(cfg.seed) {
  cfg_.validate();
}

std::size_t HboController::config_dim() const {
  return static_cast<std::size_t>(soc::kNumDelegates) +
         (cfg_.offload.enabled ? 2 : 1);
}

void HboController::ensure_allocator() {
  if (allocator_) return;
  HB_REQUIRE(!app_.tasks().empty(), "HBO needs at least one AI task");
  allocator_ = std::make_unique<HeuristicAllocator>(app_.profiles(),
                                                    app_.task_models());
}

std::vector<ObjectState> HboController::object_states(app::MarApp& app) {
  std::vector<ObjectState> out;
  for (ObjectId id : app.scene().object_ids()) {
    const render::VirtualObject& obj = app.scene().object(id);
    out.push_back(ObjectState{obj.asset().params(),
                              app.scene().effective_distance(id),
                              obj.asset().max_triangles()});
  }
  return out;
}

IterationRecord HboController::apply_configuration(
    std::span<const double> z) {
  ensure_allocator();
  HB_REQUIRE(z.size() == config_dim(),
             cfg_.offload.enabled
                 ? "configuration must be [c_1..c_N, e, x]"
                 : "configuration must be [c_1..c_N, x]");
  IterationRecord rec;
  rec.z.assign(z.begin(), z.end());
  auto [usage, x] = bo::SimplexBoxSpace::split(z);
  rec.triangle_ratio = x;

  if (cfg_.offload.enabled) {
    // The sampled simplex is CPU/GPU/NPU/edge: peel the edge coordinate
    // off (clamped to the operator cap) and renormalize the on-device
    // remainder for the unchanged 3-resource heuristic allocator — the
    // *local* workload still splits across the local accelerators in the
    // sampled proportions. Shares below min_edge_share snap to zero:
    // continuous simplex samples almost never land exactly on the
    // zero-edge face, and without the snap a session on a hostile link
    // converges to a small residual share that keeps lighting the radio
    // for nothing — the all-local corner must be *reachable*, not just
    // approachable.
    double edge = std::min(usage.back(), cfg_.offload.max_edge_share);
    if (edge < cfg_.offload.min_edge_share) edge = 0.0;
    usage.pop_back();
    double local_sum = 0.0;
    for (const double c : usage) local_sum += c;
    if (local_sum > 1e-12) {
      for (double& c : usage) c /= local_sum;
    } else {
      // Degenerate all-edge sample: the allocator still needs a valid
      // on-device split for the (1 - edge) residue of every task.
      for (double& c : usage) c = 1.0 / static_cast<double>(usage.size());
    }
    rec.edge_share = edge;

    std::vector<double> expected;
    const std::vector<TaskId> ids = app_.tasks();
    expected.reserve(ids.size());
    for (const TaskId id : ids) expected.push_back(app_.expected_ms(id));
    rec.offload_shares = offload::plan_task_shares(edge, expected);
    app_.apply_offload_shares(rec.offload_shares);
  }
  rec.usage = usage;

  const AllocationResult alloc = allocator_->allocate(usage);
  rec.allocation = alloc.delegates;
  app_.apply_allocation(alloc.delegates);

  const std::vector<ObjectState> objects = object_states(app_);
  rec.object_ratios = distribute_waterfill(objects, x);
  if (!rec.object_ratios.empty()) app_.apply_object_ratios(rec.object_ratios);
  return rec;
}

ActivationResult HboController::run_activation() {
  ensure_allocator();
  app_.start();

  // With offload enabled the Constraints 8-10 simplex grows one
  // coordinate: per-resource proportions over CPU/GPU/NPU/edge. The
  // disabled path constructs the identical 3-simplex space as always.
  const std::size_t n_simplex =
      static_cast<std::size_t>(soc::kNumDelegates) +
      (cfg_.offload.enabled ? 1 : 0);
  bo::BoConfig bo_cfg = cfg_.bo;
  bo_cfg.n_initial = cfg_.n_initial;
  bo_cfg.prior = prior_;  // null unless a policy layer injected one
  if (bo_cfg.prior && bo_cfg.prior->dim() != 0 &&
      bo_cfg.prior->dim() != n_simplex + 1) {
    // A prior fitted in the other decision space (3- vs 4-target) would
    // evaluate its mean function out of domain; fall back to flat.
    bo_cfg.prior = nullptr;
  }
  optimizer_ = std::make_unique<bo::BayesianOptimizer>(
      bo::SimplexBoxSpace(n_simplex, cfg_.r_min, 1.0), bo_cfg);

  ActivationResult result;
  const int total_iters = cfg_.n_initial + cfg_.n_iterations;
  for (int iter = 0; iter < total_iters; ++iter) {
    const std::vector<double> z = optimizer_->suggest(rng_);
    IterationRecord rec = apply_configuration(z);
    rec.index = iter;
    rec.random_init = iter < cfg_.n_initial;

    const app::PeriodMetrics metrics =
        app_.run_period(cfg_.control_period_s);
    rec.quality = metrics.average_quality;
    rec.latency_ratio = metrics.latency_ratio;
    rec.cost = cost_of(metrics,
                       CostTerms{cfg_.w, cfg_.w_energy, cfg_.market_price});
    optimizer_->tell(rec.z, rec.cost);
    result.history.push_back(std::move(rec));
  }

  // "After the last iteration, the configuration that obtained the lowest
  // cost value is selected to be used until the next activation." A
  // single 2-second window is a noisy estimator, so the top few
  // candidates are re-measured once each and the re-measured winner is
  // kept (see HboConfig::selection_candidates).
  std::vector<std::size_t> order(result.history.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return result.history[a].cost < result.history[b].cost;
  });
  const std::size_t k = std::min<std::size_t>(
      static_cast<std::size_t>(cfg_.selection_candidates), order.size());
  result.best_index = order[0];
  if (k > 1) {
    double best_validated = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < k; ++i) {
      apply_configuration(result.history[order[i]].z);
      const app::PeriodMetrics m = app_.run_period(cfg_.control_period_s);
      const double c =
          cost_of(m, CostTerms{cfg_.w, cfg_.w_energy, cfg_.market_price});
      if (c < best_validated) {
        best_validated = c;
        result.best_index = order[i];
      }
    }
    result.validated_cost = best_validated;
  }
  apply_configuration(result.history[result.best_index].z);
  return result;
}

}  // namespace hbosim::core
