#pragma once

#include <cstdint>

#include "hbosim/bo/optimizer.hpp"
#include "hbosim/offload/offload_config.hpp"

/// \file config.hpp
/// All HBO tunables in one place, defaulted to the paper's experimental
/// settings (Section V): w = 2.5, 5 random initial configurations, 15 BO
/// iterations, Matérn-5/2 with l = 1, EI acquisition, 2-second control
/// periods, R_min floor on the triangle ratio, and the +5%/-10% activation
/// thresholds.

namespace hbosim::core {

struct HboConfig {
  /// Latency/quality weight in Eq. 3 (paper's example: 2.5).
  double w = 2.5;

  /// Weight of the optional battery-draw term in the extended cost
  /// phi = -(Q - w*eps) + w_energy * P_avg (per watt of mean period
  /// power). 0 by default, which reproduces the paper's cost bit for
  /// bit; a small positive value (~0.05/W) makes HBO prefer equally
  /// rewarding configurations that run the SoC cooler. Only meaningful
  /// when the app simulates power (MarAppConfig::enable_power).
  double w_energy = 0.0;

  /// Posted congestion price of the session's edge market (marketsvc):
  /// extends the cost with market_price * triangle_ratio, charging a
  /// configuration for the shared-resource appetite its triangle budget
  /// implies. 0 by default, which reproduces the market-free cost bit
  /// for bit; the fleet sets it from the allocator's price signal when
  /// the Pricing policy runs.
  double market_price = 0.0;

  /// Random configurations seeding the BO database D at each activation.
  int n_initial = 5;
  /// BO iterations following initialization (paper: 15; Fig. 6 uses 20).
  int n_iterations = 15;

  /// Lower bound R_min of Constraint 10.
  double r_min = 0.2;

  /// After the iteration loop, the lowest-cost configurations are
  /// re-applied and re-measured for one control period each, and the
  /// winner of this validation pass is kept. The paper selects the raw
  /// argmin of the observed costs (equivalent to 1 here); validating the
  /// top few candidates makes the selection robust to single-window
  /// measurement noise at the cost of a couple of extra periods.
  int selection_candidates = 5;

  /// Control period: each candidate configuration is measured this long.
  double control_period_s = 2.0;

  /// Bayesian optimizer settings (kernel, acquisition, candidates).
  bo::BoConfig bo;

  /// Activation policy (Section IV-E): monitor the reward every
  /// monitor_period_s; re-run HBO when it rises by up_fraction or falls
  /// by down_fraction relative to the reference (paper: 5% / 10%).
  double monitor_period_s = 2.0;
  double up_fraction = 0.05;
  double down_fraction = 0.10;

  /// Edge offloading as a fourth allocation target: when
  /// offload.enabled the Constraints 8-10 simplex grows from the
  /// on-device CPU/GPU/NPU proportions to CPU/GPU/NPU/edge, and the
  /// sampled edge coordinate is planned into per-AI-task remote
  /// fractions at every configuration apply (see hbosim::offload).
  /// Disabled by default: the 3-resource search stays bitwise identical
  /// to pre-offload builds.
  offload::OffloadConfig offload;

  /// Seed for the optimizer's random draws.
  std::uint64_t seed = 1234;

  /// Validate invariants; throws hbosim::Error on nonsense.
  void validate() const;
};

}  // namespace hbosim::core
