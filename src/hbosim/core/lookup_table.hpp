#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hbosim/app/mar_app.hpp"
#include "hbosim/common/arena.hpp"

/// \file lookup_table.hpp
/// Section VI's proposed fast-path for dynamic environments: remember the
/// best configuration found for past environmental conditions (total
/// triangle count, average user-object distance, taskset) and, when the
/// current conditions are close to a remembered entry, re-apply its
/// solution instead of spending 20 control periods on a fresh Bayesian
/// activation. The paper leaves this as future work; it is implemented
/// here and evaluated by the ablation bench.

namespace hbosim::core {

/// Quantized environmental conditions.
struct EnvironmentKey {
  std::uint64_t triangle_bucket = 0;  ///< T^max / 100k, rounded.
  std::uint64_t distance_bucket = 0;  ///< Avg effective distance, 0.5 m bins.
  std::uint64_t taskset_hash = 0;     ///< Order-insensitive model-set hash.

  auto operator<=>(const EnvironmentKey&) const = default;
};

struct StoredSolution {
  std::vector<double> z;  ///< [c_1..c_N, x].
  double cost = 0.0;      ///< Cost observed when it was stored.
};

class SolutionLookupTable {
 public:
  /// Quantize the app's current conditions into a key.
  static EnvironmentKey make_key(app::MarApp& app);

  /// Remember a solution (keeps the lower-cost entry on collision).
  void store(const EnvironmentKey& key, StoredSolution solution);

  /// Unconditionally overwrite an entry — used when a remembered cost
  /// proved unachievable during warm-start validation, so the lower-cost
  /// collision policy would keep the stale entry forever.
  void replace(const EnvironmentKey& key, StoredSolution solution);

  /// Exact-bucket match.
  std::optional<StoredSolution> find(const EnvironmentKey& key) const;

  std::size_t size() const { return entries_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  // Tree nodes come from the session arena when a fleet worker's
  // ArenaScope is active (heap otherwise); the StoredSolution payloads a
  // session hands outward (pool publishes) are plain-allocator copies, so
  // nothing arena-backed escapes the session.
  std::map<EnvironmentKey, StoredSolution, std::less<EnvironmentKey>,
           ArenaAllocator<std::pair<const EnvironmentKey, StoredSolution>>>
      entries_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace hbosim::core
