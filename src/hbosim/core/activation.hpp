#pragma once

#include <cstddef>

/// \file activation.hpp
/// Section IV-E: the event-based activation policy. HBO runs once after
/// the first object placement to establish a reference reward B_ref, then
/// monitors B_t periodically and re-activates only when the reward departs
/// from the reference by more than a tunable fraction — upward (e.g. the
/// user stepped back and quality headroom appeared; paper threshold +5%)
/// or downward (e.g. a heavy object landed and AI latency spiked; paper
/// threshold -10%). A periodic policy is provided for the Fig. 8b
/// comparison.

namespace hbosim::core {

class EventActivationPolicy {
 public:
  /// Fractions are relative to max(|reference|, floor). The floor sets
  /// the absolute threshold scale when the reference reward is small: the
  /// default keeps the 5%/10% fractions above the reward-measurement
  /// noise of a 2-second control window (NPU-collision jitter alone
  /// moves a window's epsilon by a few percent).
  EventActivationPolicy(double up_fraction = 0.05,
                        double down_fraction = 0.10,
                        double reference_floor = 2.0);

  bool has_reference() const { return has_reference_; }
  double reference() const;

  /// Install a new reference (after an activation completes).
  void set_reference(double reward);

  /// Monitor tick: returns true when HBO should (re)activate. The first
  /// call before any reference exists always returns true (initial
  /// activation after first object placement).
  bool should_activate(double current_reward) const;

  std::size_t evaluations() const { return evaluations_; }

 private:
  double up_fraction_;
  double down_fraction_;
  double reference_floor_;
  bool has_reference_ = false;
  double reference_ = 0.0;
  mutable std::size_t evaluations_ = 0;
};

/// Fig. 8b's strawman: activate every `period_ticks` monitor ticks
/// regardless of the reward.
class PeriodicActivationPolicy {
 public:
  explicit PeriodicActivationPolicy(std::size_t period_ticks);

  /// Monitor tick; true every period_ticks-th call (and on the first).
  bool should_activate();

  std::size_t evaluations() const { return tick_; }

 private:
  std::size_t period_ticks_;
  std::size_t tick_ = 0;
};

}  // namespace hbosim::core
