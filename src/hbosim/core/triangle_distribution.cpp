#include "hbosim/core/triangle_distribution.hpp"

#include <algorithm>
#include <cmath>

#include "hbosim/common/error.hpp"
#include "hbosim/common/mathx.hpp"

namespace hbosim::core {

namespace {

double effective_pow(const ObjectState& o) {
  return std::pow(std::max(o.distance, 1.0), o.params.d);
}

/// r_i(lambda): the unique ratio where object i's marginal quality gain
/// per triangle equals lambda, clamped into [floor, 1].
double ratio_at_multiplier(const ObjectState& o, double lambda,
                           double floor_ratio) {
  const double t = static_cast<double>(o.max_triangles);
  const double r =
      (-o.params.b - lambda * effective_pow(o) * t) / (2.0 * o.params.a);
  return clampd(r, floor_ratio, 1.0);
}

void validate_inputs(const std::vector<ObjectState>& objects,
                     double total_ratio,
                     const TriangleDistributionConfig& cfg) {
  HB_REQUIRE(total_ratio >= 0.0 && total_ratio <= 1.0,
             "total triangle ratio must be in [0,1]");
  HB_REQUIRE(cfg.floor_ratio > 0.0 && cfg.floor_ratio <= 1.0,
             "floor ratio must be in (0,1]");
  for (const ObjectState& o : objects) {
    HB_REQUIRE(o.params.valid(), "invalid degradation parameters");
    HB_REQUIRE(o.max_triangles > 0, "object must have triangles");
    HB_REQUIRE(o.distance > 0.0, "object distance must be positive");
  }
}

}  // namespace

std::vector<double> distribute_waterfill(
    const std::vector<ObjectState>& objects, double total_ratio,
    const TriangleDistributionConfig& cfg) {
  validate_inputs(objects, total_ratio, cfg);
  if (objects.empty()) return {};

  double total_max = 0.0;
  for (const ObjectState& o : objects)
    total_max += static_cast<double>(o.max_triangles);
  const double budget =
      std::max(total_ratio, cfg.floor_ratio) * total_max;

  // lambda = 0 gives every object ratio 1 (validity implies the error is
  // still falling at R=1, so unconstrained optima sit at or above 1).
  if (budget >= total_max) return std::vector<double>(objects.size(), 1.0);

  // Upper bound: the multiplier at which every object clamps to floor.
  double lambda_hi = 0.0;
  for (const ObjectState& o : objects) {
    const double t = static_cast<double>(o.max_triangles);
    lambda_hi = std::max(lambda_hi, -o.params.b / (effective_pow(o) * t));
  }

  auto triangles_at = [&](double lambda) {
    double acc = 0.0;
    for (const ObjectState& o : objects)
      acc += ratio_at_multiplier(o, lambda, cfg.floor_ratio) *
             static_cast<double>(o.max_triangles);
    return acc;
  };

  double lo = 0.0;
  double hi = lambda_hi;
  for (int i = 0; i < cfg.bisection_iters; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (triangles_at(mid) > budget) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double lambda = 0.5 * (lo + hi);

  std::vector<double> ratios(objects.size());
  for (std::size_t i = 0; i < objects.size(); ++i)
    ratios[i] = ratio_at_multiplier(objects[i], lambda, cfg.floor_ratio);
  return ratios;
}

std::vector<double> distribute_sensitivity(
    const std::vector<ObjectState>& objects, double total_ratio,
    const TriangleDistributionConfig& cfg) {
  validate_inputs(objects, total_ratio, cfg);
  if (objects.empty()) return {};

  double total_max = 0.0;
  for (const ObjectState& o : objects)
    total_max += static_cast<double>(o.max_triangles);
  const double budget = std::max(total_ratio, cfg.floor_ratio) * total_max;
  if (budget >= total_max) return std::vector<double>(objects.size(), 1.0);

  // Sensitivity: degradation at the common reference ratio minus the
  // degradation at full quality — how much this object suffers from
  // decimation (paper, Section IV-D "Triangle Distribution").
  std::vector<double> weight(objects.size());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const ObjectState& o = objects[i];
    const double s =
        render::degradation_error(o.params, cfg.reference_ratio, o.distance) -
        render::degradation_error(o.params, 1.0, o.distance);
    weight[i] = std::max(s, 1e-6);
  }

  // Hand the budget out proportionally to weight * size, clamping into
  // [floor, 1] and redistributing the slack over a few passes (objects are
  // processed in descending sensitivity order, hence the O(L log L) sort).
  std::vector<std::size_t> order(objects.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return weight[a] > weight[b];
  });

  std::vector<double> ratios(objects.size(), 0.0);
  std::vector<bool> fixed(objects.size(), false);
  double remaining_budget = budget;
  double remaining_weight = 0.0;
  for (std::size_t i = 0; i < objects.size(); ++i)
    remaining_weight +=
        weight[i] * static_cast<double>(objects[i].max_triangles);

  for (int pass = 0; pass < 4; ++pass) {
    bool clamped_any = false;
    for (std::size_t idx : order) {
      if (fixed[idx]) continue;
      const double t = static_cast<double>(objects[idx].max_triangles);
      const double share =
          remaining_weight > 0.0
              ? remaining_budget * (weight[idx] * t) / remaining_weight
              : 0.0;
      const double r = share / t;
      if (r >= 1.0 || r <= cfg.floor_ratio) {
        ratios[idx] = clampd(r, cfg.floor_ratio, 1.0);
        fixed[idx] = true;
        remaining_budget -= ratios[idx] * t;
        remaining_weight -= weight[idx] * t;
        clamped_any = true;
      } else {
        ratios[idx] = r;
      }
    }
    if (!clamped_any) break;
  }
  for (auto& r : ratios) r = clampd(r, cfg.floor_ratio, 1.0);
  return ratios;
}

double assignment_quality(const std::vector<ObjectState>& objects,
                          const std::vector<double>& ratios) {
  HB_REQUIRE(objects.size() == ratios.size(), "size mismatch");
  if (objects.empty()) return 1.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    acc += render::object_quality(objects[i].params, ratios[i],
                                  objects[i].distance);
  }
  return acc / static_cast<double>(objects.size());
}

double assignment_triangles(const std::vector<ObjectState>& objects,
                            const std::vector<double>& ratios) {
  HB_REQUIRE(objects.size() == ratios.size(), "size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < objects.size(); ++i)
    acc += ratios[i] * static_cast<double>(objects[i].max_triangles);
  return acc;
}

}  // namespace hbosim::core
