#include "hbosim/core/allocation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "hbosim/common/error.hpp"

namespace hbosim::core {

HeuristicAllocator::HeuristicAllocator(const ai::ProfileTable& profiles,
                                       std::vector<std::string> task_models)
    : profiles_(profiles), task_models_(std::move(task_models)) {
  HB_REQUIRE(!task_models_.empty(), "allocator needs at least one task");
  priority_entries_ = ai::build_priority_entries(profiles_, task_models_);
}

std::vector<int> HeuristicAllocator::round_quotas(
    std::span<const double> usage, std::size_t task_count) {
  HB_REQUIRE(usage.size() == static_cast<std::size_t>(soc::kNumDelegates),
             "usage vector must have one entry per delegate");
  const double total =
      std::accumulate(usage.begin(), usage.end(), 0.0);
  HB_REQUIRE(std::abs(total - 1.0) < 1e-6,
             "usage proportions must sum to 1 (Constraint 9)");

  // Lines 3-4: round down.
  std::vector<int> quotas(usage.size());
  int assigned = 0;
  for (std::size_t i = 0; i < usage.size(); ++i) {
    HB_REQUIRE(usage[i] >= -1e-12 && usage[i] <= 1.0 + 1e-12,
               "usage proportion out of [0,1] (Constraint 8)");
    quotas[i] = static_cast<int>(
        std::floor(usage[i] * static_cast<double>(task_count)));
    assigned += quotas[i];
  }

  // Lines 5-12: distribute the remainder in non-increasing usage order.
  int remainder = static_cast<int>(task_count) - assigned;
  HB_ASSERT(remainder >= 0, "quota rounding produced excess tasks");
  if (remainder > 0) {
    std::vector<std::size_t> order(usage.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return usage[a] > usage[b];
                     });
    for (std::size_t i = 0; remainder > 0; i = (i + 1) % order.size()) {
      ++quotas[order[i]];
      --remainder;
    }
  }
  return quotas;
}

AllocationResult HeuristicAllocator::allocate(
    std::span<const double> usage) const {
  const std::size_t m = task_models_.size();
  AllocationResult out;
  out.quotas = round_quotas(usage, m);

  std::vector<int> quota = out.quotas;
  std::vector<std::optional<soc::Delegate>> chosen(m);
  std::vector<bool> resource_closed(soc::kNumDelegates, false);

  // Lines 13-22. priority_entries_ is already latency-sorted, so walking
  // it front to back with lazy skipping is the binary-heap poll loop with
  // the "remove all entries of task i* / resource j*" steps implemented
  // as the assigned/closed marks.
  std::size_t k = 0;
  for (const ai::PriorityEntry& e : priority_entries_) {
    if (k == m) break;
    if (chosen[e.task_index].has_value()) continue;  // task already placed
    const auto j = static_cast<std::size_t>(e.delegate);
    if (resource_closed[j]) continue;
    if (quota[j] > 0) {
      chosen[e.task_index] = e.delegate;  // line 17
      --quota[j];                         // line 18
      ++k;                                // line 19
    } else {
      resource_closed[j] = true;          // line 22
    }
  }

  // Compatibility fallback (see header): place any task the pseudo-code
  // left behind on its fastest compatible delegate, preferring remaining
  // quota.
  for (std::size_t t = 0; t < m; ++t) {
    if (chosen[t].has_value()) continue;
    out.fallback_tasks.push_back(t);
    const ai::ModelProfile& p = profiles_.get(task_models_[t]);
    std::optional<soc::Delegate> best_with_quota;
    std::optional<soc::Delegate> best_any;
    double best_with_quota_ms = 0.0;
    double best_any_ms = 0.0;
    for (int i = 0; i < soc::kNumDelegates; ++i) {
      const auto& lat = p.isolation_ms[static_cast<std::size_t>(i)];
      if (!lat) continue;
      const auto d = soc::delegate_from_index(i);
      if (!best_any || *lat < best_any_ms) {
        best_any = d;
        best_any_ms = *lat;
      }
      if (quota[static_cast<std::size_t>(i)] > 0 &&
          (!best_with_quota || *lat < best_with_quota_ms)) {
        best_with_quota = d;
        best_with_quota_ms = *lat;
      }
    }
    HB_ASSERT(best_any.has_value(), "task has no compatible delegate");
    const soc::Delegate d = best_with_quota.value_or(*best_any);
    chosen[t] = d;
    if (quota[static_cast<std::size_t>(d)] > 0)
      --quota[static_cast<std::size_t>(d)];
  }

  out.delegates.reserve(m);
  for (std::size_t t = 0; t < m; ++t) out.delegates.push_back(*chosen[t]);
  return out;
}

}  // namespace hbosim::core
