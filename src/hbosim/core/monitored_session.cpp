#include "hbosim/core/monitored_session.hpp"

#include "hbosim/common/error.hpp"
#include <cmath>

#include "hbosim/core/cost.hpp"
#include "hbosim/telemetry/telemetry.hpp"

namespace hbosim::core {

MonitoredSession::MonitoredSession(app::MarApp& app,
                                   MonitoredSessionConfig cfg)
    : app_(app),
      cfg_(cfg),
      controller_(app, cfg.hbo),
      policy_(cfg.hbo.up_fraction, cfg.hbo.down_fraction),
      smoothed_(cfg.smoothing_alpha) {
  HB_REQUIRE(cfg_.reference_periods >= 1,
             "need at least one reference period");
  HB_REQUIRE(cfg_.warm_start_tolerance >= 0.0,
             "warm-start tolerance must be non-negative");
  app_.start();
}

void MonitoredSession::observe(const app::PeriodMetrics& m) {
  const double reward = m.reward(cfg_.hbo.w);
  rewards_.emplace_back(app_.sim().now(), reward);
  quality_stat_.add(m.average_quality);
  latency_stat_.add(m.latency_ratio);
  reward_stat_.add(reward);
}

double MonitoredSession::settle_and_reference() {
  // One settle period flushes the last exploration config / redraw, then
  // the reference is a multi-period average (see Section IV-E: "the new
  // obtained reward is then used as new reference").
  app_.run_period(cfg_.hbo.monitor_period_s);
  double reference = 0.0;
  for (int i = 0; i < cfg_.reference_periods; ++i) {
    const app::PeriodMetrics m = app_.run_period(cfg_.hbo.monitor_period_s);
    reference += m.reward(cfg_.hbo.w) /
                 static_cast<double>(cfg_.reference_periods);
    observe(m);
  }
  policy_.set_reference(reference);
  smoothed_ = Ewma(cfg_.smoothing_alpha);
  smoothed_.add(reference);
  return reference;
}

void MonitoredSession::activate() {
  HB_TRACE_SCOPE("hbo", "hbo.activate");
  HB_TELEM_COUNT("hbo.activations", 1.0);
  SessionActivation record;
  record.at = app_.sim().now();
  // Quantized environment at trigger time: the lookup fetch key, the prior
  // hook's argument, and the key a policy layer files this activation's
  // observations under. A pure read of the app's current scene/taskset.
  const EnvironmentKey key = SolutionLookupTable::make_key(app_);
  record.env = key;

  bool rejected_warm_start = false;
  if (cfg_.use_lookup_table) {
    auto hit = lookup_.find(key);
    // A solution remembered in the other decision space (3- vs 4-target
    // simplex) cannot be applied; treat it as a miss so the store fetch
    // and, failing that, a full activation in the current space run.
    if (hit && hit->z.size() != controller_.config_dim()) hit.reset();
    bool shared = false;
    if (!hit && store_.fetch) {
      // Local miss: another session may already have solved this
      // environment (Section VI's "share results across users"). With an
      // edge client attached, reaching the server-side pool costs a real
      // contended exchange that can fail — in which case this activation
      // runs fully local rather than stalling on a dead link.
      bool store_reachable = true;
      if (edge_ != nullptr) {
        const std::optional<double> rt =
            remote_link_.round_trip_via(*edge_, app_.sim().now());
        if (rt) {
          app_.sim().run_until(app_.sim().now() + *rt);
        } else {
          store_reachable = false;
          ++edge_bo_fallbacks_;
          HB_TELEM_COUNT("hbo.edge_bo_fallback_local", 1.0);
        }
      }
      if (store_reachable) {
        hit = store_.fetch(key);
        if (hit && hit->z.size() != controller_.config_dim()) hit.reset();
        shared = hit.has_value();
      }
    }
    if (hit) {
      // Warm start: apply the remembered configuration and check it still
      // performs; only fall back to a full activation if it degraded.
      controller_.apply_configuration(hit->z);
      app_.run_period(cfg_.hbo.monitor_period_s);  // settle
      const app::PeriodMetrics m = app_.run_period(cfg_.hbo.monitor_period_s);
      if (cost_of(m, CostTerms{cfg_.hbo.w, cfg_.hbo.w_energy,
                               cfg_.hbo.market_price}) <=
          hit->cost + cfg_.warm_start_tolerance) {
        if (shared) lookup_.store(key, *hit);  // adopt the pooled solution
        record.warm_start = true;
        record.from_shared_store = shared;
        record.reference_reward = settle_and_reference();
        if (telemetry::enabled()) {
          HB_TELEM_COUNT("hbo.warm_start_hits", 1.0);
          if (shared) HB_TELEM_COUNT("hbo.warm_start_shared", 1.0);
          telemetry::sim_span("hbo", "hbo.warm_start", record.at,
                              app_.sim().now());
        }
        activations_.push_back(std::move(record));
        return;
      }
      rejected_warm_start = true;
      HB_TELEM_COUNT("hbo.warm_start_rejected", 1.0);
    }
  }

  if (policy_hooks_.prior) {
    // Full activation ahead: ask the policy layer for a learned prior
    // fitted to this environment. A null return runs the activation flat.
    std::shared_ptr<const bo::SurrogatePrior> prior =
        policy_hooks_.prior(key);
    record.prior_injected = prior != nullptr;
    if (record.prior_injected) HB_TELEM_COUNT("policy.prior_injected", 1.0);
    controller_.set_surrogate_prior(std::move(prior));
  }
  record.result = controller_.run_activation();
  if (cfg_.use_lookup_table) {
    // Remember the *validated* cost where available: the raw minimum of
    // the noisy exploration samples is optimistically biased, which would
    // make later warm starts look like regressions.
    const double remembered = std::isfinite(record.result.validated_cost)
                                  ? record.result.validated_cost
                                  : record.result.best().cost;
    // Re-key: the environment may have drifted over the activation's
    // control periods, and the solution belongs to where it was measured.
    const EnvironmentKey publish_key = SolutionLookupTable::make_key(app_);
    StoredSolution solution{record.result.best().z, remembered};
    if (rejected_warm_start) {
      // The remembered cost just proved unachievable here; keeping it
      // (store's lower-cost-wins policy) would poison every future warm
      // start of this environment. Overwrite with the measured reality.
      lookup_.replace(publish_key, solution);
    } else {
      lookup_.store(publish_key, solution);
    }
    if (store_.publish) store_.publish(publish_key, solution);
  }
  record.reference_reward = settle_and_reference();
  if (telemetry::enabled())
    telemetry::sim_span("hbo", "hbo.activation", record.at, app_.sim().now());
  activations_.push_back(std::move(record));
}

bool MonitoredSession::tick() {
  const SimTime period_start = app_.sim().now();
  const app::PeriodMetrics m = app_.run_period(cfg_.hbo.monitor_period_s);
  const double reward = m.reward(cfg_.hbo.w);
  observe(m);
  smoothed_.add(reward);
  if (telemetry::enabled()) {
    // Control-period boundary on the session's sim-time track; the span
    // covers exactly one monitor period.
    telemetry::sim_span("hbo", "hbo.period", period_start, app_.sim().now());
    HB_TELEM_COUNT("hbo.periods", 1.0);
  }

  if (app_.scene().empty()) return false;  // arm at first placement
  if (!policy_.should_activate(smoothed_.value())) return false;
  activate();
  return true;
}

void MonitoredSession::run_until(SimTime until) {
  while (app_.sim().now() < until) tick();
}

}  // namespace hbosim::core
