#include "hbosim/core/cost.hpp"

namespace hbosim::core {

double reward(double average_quality, double latency_ratio, double w) {
  return average_quality - w * latency_ratio;
}

double cost(double average_quality, double latency_ratio, double w) {
  return -reward(average_quality, latency_ratio, w);
}

double cost_of(const hbosim::app::PeriodMetrics& m, double w) {
  return cost(m.average_quality, m.latency_ratio, w);
}

double cost_of(const hbosim::app::PeriodMetrics& m, double w,
               double w_energy) {
  if (w_energy == 0.0) return cost_of(m, w);
  return cost_of(m, w) + w_energy * m.avg_power_w;
}

double cost_of(const hbosim::app::PeriodMetrics& m, double w,
               double w_energy, double market_price) {
  if (market_price == 0.0) return cost_of(m, w, w_energy);
  return cost_of(m, w, w_energy) + market_price * m.triangle_ratio;
}

}  // namespace hbosim::core
