#include "hbosim/core/cost.hpp"

namespace hbosim::core {

double reward(double average_quality, double latency_ratio, double w) {
  return average_quality - w * latency_ratio;
}

double cost(double average_quality, double latency_ratio, double w) {
  return -reward(average_quality, latency_ratio, w);
}

double cost_of(const hbosim::app::PeriodMetrics& m, const CostTerms& terms) {
  // Terms accumulate in their historical nesting order — base, then
  // energy, then market — and a zero weight skips its addition entirely,
  // so this single implementation is bitwise identical to the legacy
  // overload chain for every weight combination.
  double phi = cost(m.average_quality, m.latency_ratio, terms.w);
  if (terms.w_energy != 0.0) phi += terms.w_energy * m.avg_power_w;
  if (terms.market_price != 0.0) phi += terms.market_price * m.triangle_ratio;
  return phi;
}

double cost_of(const hbosim::app::PeriodMetrics& m, double w) {
  return cost_of(m, CostTerms{w, 0.0, 0.0});
}

double cost_of(const hbosim::app::PeriodMetrics& m, double w,
               double w_energy) {
  return cost_of(m, CostTerms{w, w_energy, 0.0});
}

double cost_of(const hbosim::app::PeriodMetrics& m, double w,
               double w_energy, double market_price) {
  return cost_of(m, CostTerms{w, w_energy, market_price});
}

}  // namespace hbosim::core
