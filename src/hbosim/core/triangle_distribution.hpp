#pragma once

#include <cstdint>
#include <vector>

#include "hbosim/render/degradation.hpp"

/// \file triangle_distribution.hpp
/// Algorithm 1, line 23 — the TD function: split the total triangle budget
/// x * T^max across the L on-screen virtual objects to maximize the
/// average quality of Eq. 2.
///
/// Two implementations are provided:
///
///  - `distribute_waterfill` (default): because each object's degradation
///    (Eq. 1) is convex and decreasing in its ratio, maximizing the sum of
///    qualities under a triangle budget is a separable concave program;
///    the exact solution equalizes the marginal quality-per-triangle
///    across objects (water-filling on the Lagrange multiplier, solved by
///    bisection with per-object clamping to [r_min, 1]).
///
///  - `distribute_sensitivity`: the paper's prose description — weight
///    objects by the sensitivity of their degradation to triangle
///    variations (degradation at a common reference ratio minus current
///    degradation), sort, and hand out triangles proportionally. Kept for
///    the ablation bench; the water-filling solution dominates it by
///    construction.
///
/// Both respect the budget exactly (up to rounding) and never assign a
/// ratio outside [floor_ratio, 1].

namespace hbosim::core {

/// What TD needs to know about one on-screen object.
struct ObjectState {
  render::DegradationParams params;
  double distance = 1.0;          ///< Effective viewing distance.
  std::uint64_t max_triangles = 1;
};

struct TriangleDistributionConfig {
  /// Per-object ratio floor (objects never vanish entirely).
  double floor_ratio = 0.05;
  /// Bisection iterations for the multiplier search.
  int bisection_iters = 60;
  /// Reference decimation ratio of the sensitivity heuristic.
  double reference_ratio = 0.5;
};

/// Exact concave water-filling. `total_ratio` is the paper's x in
/// [0, 1]; returns one ratio per object (same order as `objects`).
std::vector<double> distribute_waterfill(
    const std::vector<ObjectState>& objects, double total_ratio,
    const TriangleDistributionConfig& cfg = {});

/// The paper's sensitivity-weighted heuristic (O(L log L)).
std::vector<double> distribute_sensitivity(
    const std::vector<ObjectState>& objects, double total_ratio,
    const TriangleDistributionConfig& cfg = {});

/// Average quality (Eq. 2) a ratio assignment would yield.
double assignment_quality(const std::vector<ObjectState>& objects,
                          const std::vector<double>& ratios);

/// Triangle total of a ratio assignment.
double assignment_triangles(const std::vector<ObjectState>& objects,
                            const std::vector<double>& ratios);

}  // namespace hbosim::core
