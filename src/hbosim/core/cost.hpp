#pragma once

#include "hbosim/app/metrics.hpp"

/// \file cost.hpp
/// Eq. 3 and Eq. 5: the reward B_t = Q_t - w * epsilon_t that HBO
/// maximizes, and the cost phi = -B_t that the Bayesian optimizer
/// minimizes. An optional energy term extends the cost to
/// phi = -(Q - w*epsilon) + w_energy * P_avg, letting energy-aware runs
/// trade quality/latency against battery draw; with w_energy == 0 the
/// extended form is bitwise identical to the paper's cost.

namespace hbosim::core {

/// Eq. 3.
double reward(double average_quality, double latency_ratio, double w);

/// Eq. 5 (phi = -B).
double cost(double average_quality, double latency_ratio, double w);

/// Cost of a measured period.
double cost_of(const hbosim::app::PeriodMetrics& m, double w);

/// Energy-extended cost: cost_of(m, w) + w_energy * m.avg_power_w.
/// Returns exactly cost_of(m, w) when w_energy == 0 (no extra arithmetic),
/// so default configurations reproduce pre-energy results bit for bit.
double cost_of(const hbosim::app::PeriodMetrics& m, double w,
               double w_energy);

/// Market-extended cost: the posted congestion price of the tenant's
/// edge (marketsvc) charges the configuration's resource appetite,
/// cost_of(m, w, w_energy) + market_price * m.triangle_ratio, steering
/// HBO toward leaner configs while the shared box is expensive. Returns
/// exactly the 3-arg form when market_price == 0 (no extra arithmetic),
/// so market-free runs reproduce prior results bit for bit.
double cost_of(const hbosim::app::PeriodMetrics& m, double w,
               double w_energy, double market_price);

}  // namespace hbosim::core
