#pragma once

#include "hbosim/app/metrics.hpp"

/// \file cost.hpp
/// Eq. 3 and Eq. 5: the reward B_t = Q_t - w * epsilon_t that HBO
/// maximizes, and the cost phi = -B_t that the Bayesian optimizer
/// minimizes. Optional terms extend the cost to
///
///   phi = -(Q - w*eps) + w_energy * P_avg + market_price * x,
///
/// letting energy-aware runs trade quality/latency against battery draw
/// and market runs charge a configuration's shared-resource appetite.
///
/// All extensions compose through one CostTerms bundle instead of an
/// ever-growing overload ladder: each term is guarded so that a zero
/// weight adds no arithmetic at all, which keeps default configurations
/// bitwise identical to the paper's plain cost (and to every pre-CostTerms
/// release). The legacy 2/3/4-argument cost_of overloads below are thin
/// wrappers over the same implementation and remain bitwise unchanged.

namespace hbosim::core {

/// Eq. 3.
double reward(double average_quality, double latency_ratio, double w);

/// Eq. 5 (phi = -B).
double cost(double average_quality, double latency_ratio, double w);

/// The weighted terms of the extended cost. New terms join here (not as
/// another cost_of overload); every term after `w` must keep the
/// "zero weight == no arithmetic" guard so defaults stay bit-exact.
struct CostTerms {
  /// Latency/quality weight of Eq. 3.
  double w = 2.5;
  /// Battery-draw weight (per watt of mean period power); pulls the
  /// energy-aware joint cost from hbosim::power via m.avg_power_w.
  double w_energy = 0.0;
  /// Posted congestion price of the tenant's edge market (marketsvc);
  /// charges the configuration's triangle budget.
  double market_price = 0.0;
};

/// The composed cost of a measured period under `terms`. Exactly
/// reproduces the historical overload chain: terms with zero weight
/// contribute no floating-point operations.
double cost_of(const hbosim::app::PeriodMetrics& m, const CostTerms& terms);

/// Cost of a measured period (plain Eq. 5 form).
double cost_of(const hbosim::app::PeriodMetrics& m, double w);

/// Energy-extended cost: cost_of(m, w) + w_energy * m.avg_power_w.
/// Returns exactly cost_of(m, w) when w_energy == 0 (no extra arithmetic),
/// so default configurations reproduce pre-energy results bit for bit.
double cost_of(const hbosim::app::PeriodMetrics& m, double w,
               double w_energy);

/// Market-extended cost: the posted congestion price of the tenant's
/// edge (marketsvc) charges the configuration's resource appetite,
/// cost_of(m, w, w_energy) + market_price * m.triangle_ratio, steering
/// HBO toward leaner configs while the shared box is expensive. Returns
/// exactly the 3-arg form when market_price == 0 (no extra arithmetic),
/// so market-free runs reproduce prior results bit for bit.
double cost_of(const hbosim::app::PeriodMetrics& m, double w,
               double w_energy, double market_price);

}  // namespace hbosim::core
