#pragma once

#include "hbosim/app/metrics.hpp"

/// \file cost.hpp
/// Eq. 3 and Eq. 5: the reward B_t = Q_t - w * epsilon_t that HBO
/// maximizes, and the cost phi = -B_t that the Bayesian optimizer
/// minimizes.

namespace hbosim::core {

/// Eq. 3.
double reward(double average_quality, double latency_ratio, double w);

/// Eq. 5 (phi = -B).
double cost(double average_quality, double latency_ratio, double w);

/// Cost of a measured period.
double cost_of(const hbosim::app::PeriodMetrics& m, double w);

}  // namespace hbosim::core
