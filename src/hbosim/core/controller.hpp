#pragma once

#include <limits>
#include <memory>
#include <vector>

#include "hbosim/app/mar_app.hpp"
#include "hbosim/bo/optimizer.hpp"
#include "hbosim/common/rng.hpp"
#include "hbosim/core/allocation.hpp"
#include "hbosim/core/config.hpp"
#include "hbosim/core/triangle_distribution.hpp"

/// \file controller.hpp
/// The HBO controller: one activation = Algorithm 1 executed for
/// n_initial + n_iterations iterations. Each iteration asks the Bayesian
/// optimizer for a configuration z = (c, x), translates it with the
/// heuristic allocator (lines 2-22) and the triangle distributor (line
/// 23), applies it to the MAR app, measures one control period, and feeds
/// the cost phi = -(Q - w*eps) back into the BO database (lines 24-26).
/// After the last iteration the lowest-cost configuration is re-applied
/// and kept until the next activation.

namespace hbosim::core {

struct IterationRecord {
  int index = 0;
  bool random_init = false;           ///< From the initialization phase?
  std::vector<double> z;              ///< [c_1..c_N, x]; with offload the
                                      ///< simplex carries a 4th (edge)
                                      ///< coordinate: [c_1..c_3, e, x].
  std::vector<double> usage;          ///< On-device c (per-delegate
                                      ///< proportions fed to the allocator).
  double triangle_ratio = 1.0;        ///< x.
  double edge_share = 0.0;            ///< Sampled (clamped) edge coordinate.
  std::vector<double> offload_shares; ///< Per-task remote fractions applied
                                      ///< (empty with offload disabled).
  std::vector<soc::Delegate> allocation;
  std::vector<double> object_ratios;  ///< Per-object decimation ratios.
  double quality = 1.0;               ///< Measured Q_t.
  double latency_ratio = 0.0;         ///< Measured epsilon_t.
  double cost = 0.0;                  ///< phi = -(Q - w*eps).
};

struct ActivationResult {
  std::vector<IterationRecord> history;
  std::size_t best_index = 0;
  /// Re-measured cost of the winning configuration from the validation
  /// pass (NaN when selection_candidates == 1 and no pass ran).
  double validated_cost = std::numeric_limits<double>::quiet_NaN();

  const IterationRecord& best() const;

  /// Running minimum of cost per iteration (Fig. 4c / Fig. 7 series).
  std::vector<double> best_cost_curve() const;

  /// Euclidean distance between consecutive z's (Fig. 6a series).
  std::vector<double> consecutive_distances() const;
};

class HboController {
 public:
  HboController(app::MarApp& app, HboConfig cfg = {});

  const HboConfig& config() const { return cfg_; }

  /// Dimension of the configuration vectors this controller searches and
  /// applies: kNumDelegates + 1 for the paper's 3-resource space, one
  /// more with offload enabled. Warm-start consumers use it to reject
  /// stored solutions from the other decision space.
  std::size_t config_dim() const;

  /// Run one full activation on the app (which must have its objects and
  /// tasks in place). Applies the best configuration before returning.
  ActivationResult run_activation();

  /// The optimizer used by the most recent activation (for inspection);
  /// null before the first activation.
  const bo::BayesianOptimizer* last_optimizer() const {
    return optimizer_.get();
  }

  /// Current per-object states (effective distances, Eq. 1 parameters) —
  /// the TD input. Exposed for baselines that reuse HBO's distributor.
  static std::vector<ObjectState> object_states(app::MarApp& app);

  /// Apply one configuration (c, x) to the app without measuring:
  /// heuristic allocation + water-filled triangle distribution. Returns
  /// what was applied. Reused by the activation loop and by baselines.
  IterationRecord apply_configuration(std::span<const double> z);

  /// Learned warm-start prior injected into the next run_activation()'s
  /// Bayesian optimizer (see bo/prior.hpp). Sticky until replaced; pass
  /// nullptr to restore the flat-prior behaviour. Null keeps every
  /// activation bitwise identical to a prior-free controller.
  void set_surrogate_prior(std::shared_ptr<const bo::SurrogatePrior> prior) {
    prior_ = std::move(prior);
  }
  const std::shared_ptr<const bo::SurrogatePrior>& surrogate_prior() const {
    return prior_;
  }

 private:
  app::MarApp& app_;
  HboConfig cfg_;
  Rng rng_;
  std::unique_ptr<bo::BayesianOptimizer> optimizer_;
  std::unique_ptr<HeuristicAllocator> allocator_;
  std::shared_ptr<const bo::SurrogatePrior> prior_;

  void ensure_allocator();
};

}  // namespace hbosim::core
