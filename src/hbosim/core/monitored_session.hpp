#pragma once

#include <functional>
#include <vector>

#include "hbosim/app/mar_app.hpp"
#include "hbosim/common/stats.hpp"
#include "hbosim/core/activation.hpp"
#include "hbosim/core/controller.hpp"
#include "hbosim/core/lookup_table.hpp"
#include "hbosim/edge/remote_optimizer.hpp"

/// \file monitored_session.hpp
/// The full HBO runtime loop as a reusable component: monitor the reward
/// every monitor period (EWMA-smoothed), consult the event-based
/// activation policy, run an activation when it fires, re-establish the
/// reference from a settled multi-period average — i.e. everything
/// Section IV-E describes, packaged so applications do not hand-roll the
/// loop (the Fig. 8 bench and the museum example are thin wrappers over
/// this).
///
/// Optionally consults the Section VI solution lookup table before
/// spending a full Bayesian activation: on an exact environment match the
/// remembered configuration is applied and validated in one control
/// period; a fresh activation runs only if the warm start underperforms
/// the remembered cost by more than `warm_start_tolerance`.

namespace hbosim::core {

struct MonitoredSessionConfig {
  HboConfig hbo;
  /// EWMA weight for the monitored reward.
  double smoothing_alpha = 0.3;
  /// Settled periods averaged into a new reference after an activation.
  int reference_periods = 3;
  /// Enable the Section VI lookup-table fast path.
  bool use_lookup_table = false;
  /// Warm-start acceptance: measured cost may exceed the remembered cost
  /// by at most this much before a full activation is triggered anyway.
  double warm_start_tolerance = 0.15;
};

/// One record per activation the session performed.
struct SessionActivation {
  SimTime at = 0.0;
  bool warm_start = false;        ///< Served from a remembered solution?
  bool from_shared_store = false; ///< Warm start came from the external store?
  bool prior_injected = false;    ///< Ran with a learned surrogate prior?
  /// Quantized environment at the moment the activation fired (the key a
  /// policy layer files this activation's observations under).
  EnvironmentKey env;
  double reference_reward = 0.0;
  ActivationResult result;   ///< Empty history for warm starts.
};

/// Hooks into an external (e.g. fleet-wide) solution store. `fetch` is
/// consulted when the session's own lookup table misses; `publish` is
/// called after every full activation with the solution that was stored
/// locally. Either hook may be empty. The hooks are invoked on whatever
/// thread runs the session, so a shared store behind them must be
/// thread-safe (see fleet::SharedSolutionPool).
struct SolutionStoreHooks {
  std::function<std::optional<StoredSolution>(const EnvironmentKey&)> fetch;
  std::function<void(const EnvironmentKey&, const StoredSolution&)> publish;
};

/// Hooks into an external learned-policy layer (see hbosim::policy),
/// sitting next to SolutionStoreHooks: where the store moves *solutions*
/// across sessions, the policy hooks move *models*. `prior` is consulted
/// at the start of every full (non-warm-start) activation with the
/// quantized environment; the prior it returns (may be null) is injected
/// into that activation's Bayesian optimizer. Invoked on whatever thread
/// runs the session, so anything behind the hook must be safe for
/// concurrent reads (fleet epochs hand out frozen snapshots).
struct PolicyHooks {
  std::function<std::shared_ptr<const bo::SurrogatePrior>(
      const EnvironmentKey&)>
      prior;
};

class MonitoredSession {
 public:
  MonitoredSession(app::MarApp& app, MonitoredSessionConfig cfg = {});

  /// Advance the app by one monitor period; runs an activation when the
  /// policy fires. Returns true if an activation (or warm start) ran.
  bool tick();

  /// Run tick() until the simulation clock reaches `until`.
  void run_until(SimTime until);

  const std::vector<SessionActivation>& activations() const {
    return activations_;
  }
  /// (time, reward) samples observed by the monitor.
  const std::vector<std::pair<SimTime, double>>& reward_trace() const {
    return rewards_;
  }
  const EventActivationPolicy& policy() const { return policy_; }
  const SolutionLookupTable& lookup_table() const { return lookup_; }
  /// Mutable access, for injecting remembered solutions from outside (the
  /// Section VI "share results across users" direction) and for tests.
  SolutionLookupTable& lookup_table() { return lookup_; }
  const MonitoredSessionConfig& config() const { return cfg_; }

  /// Attach external warm-start hooks. Only consulted/notified while
  /// `use_lookup_table` is enabled (the hooks extend the table, they do
  /// not replace it).
  void set_solution_store(SolutionStoreHooks hooks) {
    store_ = std::move(hooks);
  }

  /// Attach learned-policy hooks (prior injection). Unlike the solution
  /// store these are independent of `use_lookup_table`: a prior helps any
  /// full activation, remembered-solution fast path or not.
  void set_policy_hooks(PolicyHooks hooks) { policy_hooks_ = std::move(hooks); }

  /// Model the shared-store fetch as a remote exchange with the edge box
  /// (Section VI: the pool lives server-side). While attached, a local
  /// lookup miss costs one RemoteBo round trip before the store is
  /// consulted; if the exchange fails after retries, the store is skipped
  /// and the session falls back to local BO for this activation. Pass
  /// nullptr to detach. The client must outlive the session.
  void set_edge(edgesvc::EdgeClient* client) { edge_ = client; }

  /// Store fetches abandoned because the edge exchange failed (each one
  /// forced a full local activation instead of a possible warm start).
  std::uint64_t edge_bo_fallbacks() const { return edge_bo_fallbacks_; }

  /// Streaming statistics over every monitored period observed so far
  /// (quality Q_t, latency ratio epsilon_t, reward B_t) — the per-session
  /// aggregates fleet runs roll up without retaining full traces.
  const RunningStat& quality_stat() const { return quality_stat_; }
  const RunningStat& latency_ratio_stat() const { return latency_stat_; }
  const RunningStat& reward_stat() const { return reward_stat_; }

 private:
  void activate();
  double settle_and_reference();
  void observe(const app::PeriodMetrics& m);

  app::MarApp& app_;
  MonitoredSessionConfig cfg_;
  HboController controller_;
  EventActivationPolicy policy_;
  SolutionLookupTable lookup_;
  SolutionStoreHooks store_;
  PolicyHooks policy_hooks_;
  edgesvc::EdgeClient* edge_ = nullptr;
  edge::RemoteOptimizerLink remote_link_{};
  std::uint64_t edge_bo_fallbacks_ = 0;
  Ewma smoothed_;
  RunningStat quality_stat_;
  RunningStat latency_stat_;
  RunningStat reward_stat_;
  std::vector<SessionActivation> activations_;
  std::vector<std::pair<SimTime, double>> rewards_;
};

}  // namespace hbosim::core
