#pragma once

#include <cstdint>
#include <optional>

#include "hbosim/edge/network.hpp"
#include "hbosim/edgesvc/edge_client.hpp"

/// \file remote_optimizer.hpp
/// Section VI's offload path: "the Bayesian Optimization algorithm can be
/// executed on a local edge server ... by uploading the obtained
/// performance from the cost calculator to the server and downloading the
/// next configuration to test. The payload for exchanging such
/// information is in the order of a few Bytes."
///
/// This component models that exchange: per BO iteration, one small
/// uplink (the observed cost) and one small downlink (the next
/// configuration), each a few dozen bytes over the NetworkModel, plus the
/// server-side suggest time. It lets the controller account for the
/// round-trip when deciding whether offloading pays off on a given link
/// (the ablation bench compares local vs offloaded iteration overhead).

namespace hbosim::edge {

struct RemoteOptimizerConfig {
  NetworkModel network;
  /// Uplink payload: (z, cost) as packed floats plus framing.
  std::uint64_t upload_bytes = 48;
  /// Downlink payload: the next configuration vector.
  std::uint64_t download_bytes = 40;
  /// Server-side BO suggest time (powerful edge box; effectively the
  /// K^3 term at server speed).
  double server_suggest_ms = 2.0;
};

class RemoteOptimizerLink {
 public:
  explicit RemoteOptimizerLink(RemoteOptimizerConfig cfg = {});

  /// Wall time consumed by one offloaded BO iteration's exchange
  /// (upload + server compute + download), in seconds.
  double round_trip_seconds() const;

  /// The same exchange through a contended edge service: the suggest step
  /// queues behind other tenants and the payloads cross a lossy link.
  /// Returns the elapsed seconds on success, or nullopt when the client
  /// exhausted its attempt budget — the caller should fall back to
  /// running BO locally.
  std::optional<double> round_trip_via(edgesvc::EdgeClient& client,
                                       double now_s) const;

  /// Bytes moved per iteration (for the energy argument in Section VI).
  std::uint64_t bytes_per_iteration() const;

  /// Wall-time comparison helper: true when offloading an iteration is
  /// cheaper than running the suggest step locally.
  bool offload_pays_off(double local_suggest_seconds) const;

  const RemoteOptimizerConfig& config() const { return cfg_; }

 private:
  RemoteOptimizerConfig cfg_;
};

}  // namespace hbosim::edge
