#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

/// \file cache.hpp
/// LRU cache of decimated mesh versions held on the device (paper Fig. 3:
/// "Each decimated version can either be found in the local cache or
/// downloaded from a server").

namespace hbosim::edge {

class LruCache {
 public:
  explicit LruCache(std::size_t capacity);

  /// Look up a key, refreshing its recency. Returns nullptr on miss.
  const std::uint64_t* get(const std::string& key);

  /// Insert/overwrite a key, evicting the least-recently-used entry if at
  /// capacity.
  void put(const std::string& key, std::uint64_t value);

  bool contains(const std::string& key) const;
  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  std::size_t capacity_;
  // Most-recent at front.
  std::list<std::pair<std::string, std::uint64_t>> order_;
  std::unordered_map<std::string, decltype(order_)::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace hbosim::edge
