#pragma once

#include <cstdint>
#include <initializer_list>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

#include "hbosim/common/error.hpp"

/// \file cache.hpp
/// LRU cache of decimated mesh versions held on the device (paper Fig. 3:
/// "Each decimated version can either be found in the local cache or
/// downloaded from a server"). The mechanics are a value-generic template
/// (`BasicLruCache`) so other subsystems — notably the fleet's shared
/// solution pool — reuse the same recency/eviction/counter behaviour with
/// their own payload type.

namespace hbosim::edge {

/// Compose a string cache key from parts, `"part@part@..."` — the same
/// scheme DecimationService uses for decimated-mesh versions. Shared so
/// every cache in the system keys consistently (and greppably).
std::string compose_key(std::initializer_list<std::string> parts);

template <typename V>
class BasicLruCache {
 public:
  explicit BasicLruCache(std::size_t capacity) : capacity_(capacity) {
    HB_REQUIRE(capacity_ > 0, "cache capacity must be positive");
  }

  /// Look up a key, refreshing its recency. Returns nullptr on miss.
  const V* get(const std::string& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Insert/overwrite a key, evicting the least-recently-used entry if at
  /// capacity.
  void put(const std::string& key, V value) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (map_.size() >= capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
    order_.emplace_front(key, std::move(value));
    map_[key] = order_.begin();
  }

  bool contains(const std::string& key) const { return map_.count(key) > 0; }
  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

  /// Visit every (key, value) pair, most-recently-used first, without
  /// touching recency or counters. Lets callers scan for a near-match
  /// (e.g. the nearest cached LOD) when the exact key missed.
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    for (const auto& [key, value] : order_) fn(key, value);
  }

 private:
  std::size_t capacity_;
  // Most-recent at front.
  std::list<std::pair<std::string, V>> order_;
  std::unordered_map<std::string, typename decltype(order_)::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

/// The device-side decimated-mesh cache (triangle count per version key).
using LruCache = BasicLruCache<std::uint64_t>;

}  // namespace hbosim::edge
