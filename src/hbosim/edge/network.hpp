#pragma once

#include <cstdint>

/// \file network.hpp
/// Wi-Fi/5G link model for talking to the edge decimation server (paper
/// Fig. 3). Deliberately simple: a base round-trip time plus a throughput
/// term for the decimated mesh payload. The paper notes the *optimization*
/// payload is a few bytes; mesh downloads are what costs time.

namespace hbosim::edge {

struct NetworkModel {
  double rtt_ms = 20.0;          ///< Base round-trip latency.
  double mbit_per_s = 120.0;     ///< Downlink throughput.

  /// One request/response exchange transferring `payload_bytes` down.
  double transfer_seconds(std::uint64_t payload_bytes) const;
};

}  // namespace hbosim::edge
