#pragma once

#include <cstdint>

#include "hbosim/edgesvc/link_model.hpp"

/// \file network.hpp
/// Wi-Fi/5G link model for talking to the edge decimation server (paper
/// Fig. 3). Deliberately simple: a base round-trip time plus a throughput
/// term for the decimated mesh payload. The paper notes the *optimization*
/// payload is a few bytes; mesh downloads are what costs time.
///
/// NetworkModel is now a compatibility shim over edgesvc::LinkModel: it
/// keeps the original two-field struct and closed-form API, but validates
/// and computes through the stochastic link model's degenerate (jitter-
/// and loss-free, unshared) configuration, so both paths agree bit for
/// bit and share one validation story — in particular, a zero/near-zero
/// throughput is a configuration error instead of an inf/NaN event time.

namespace hbosim::edge {

struct NetworkModel {
  double rtt_ms = 20.0;          ///< Base round-trip latency.
  double mbit_per_s = 120.0;     ///< Downlink throughput.

  /// One request/response exchange transferring `payload_bytes` down.
  /// Throws hbosim::Error on an invalid model (negative RTT, throughput
  /// below edgesvc::kMinLinkMbitPerS, or non-finite values).
  double transfer_seconds(std::uint64_t payload_bytes) const;

  /// This model as the degenerate stochastic-link configuration — the
  /// upgrade path for callers moving to the contended edge service.
  edgesvc::LinkModelConfig as_link_config() const;
};

}  // namespace hbosim::edge
