#include "hbosim/edge/remote_optimizer.hpp"

#include "hbosim/common/error.hpp"

namespace hbosim::edge {

RemoteOptimizerLink::RemoteOptimizerLink(RemoteOptimizerConfig cfg)
    : cfg_(cfg) {
  HB_REQUIRE(cfg_.server_suggest_ms >= 0.0,
             "server suggest time must be non-negative");
}

double RemoteOptimizerLink::round_trip_seconds() const {
  return cfg_.network.transfer_seconds(cfg_.upload_bytes) +
         cfg_.server_suggest_ms * 1e-3 +
         cfg_.network.transfer_seconds(cfg_.download_bytes);
}

std::optional<double> RemoteOptimizerLink::round_trip_via(
    edgesvc::EdgeClient& client, double now_s) const {
  // The suggest step's cost is priced by the shared server's bo_suggest_ms
  // (units = 1 suggest); the uplink payload is folded into the exchange
  // alongside the downlink, matching the closed-form path's accounting.
  const edgesvc::EdgeResponse resp =
      client.perform(edgesvc::RequestClass::RemoteBo, 1.0,
                     cfg_.upload_bytes + cfg_.download_bytes, now_s);
  if (!resp.ok) return std::nullopt;
  return resp.elapsed_s;
}

std::uint64_t RemoteOptimizerLink::bytes_per_iteration() const {
  return cfg_.upload_bytes + cfg_.download_bytes;
}

bool RemoteOptimizerLink::offload_pays_off(
    double local_suggest_seconds) const {
  HB_REQUIRE(local_suggest_seconds >= 0.0,
             "local suggest time must be non-negative");
  return round_trip_seconds() < local_suggest_seconds;
}

}  // namespace hbosim::edge
