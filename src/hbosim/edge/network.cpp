#include "hbosim/edge/network.hpp"

namespace hbosim::edge {

edgesvc::LinkModelConfig NetworkModel::as_link_config() const {
  edgesvc::LinkModelConfig link;
  link.rtt_ms = rtt_ms;
  link.mbit_per_s = mbit_per_s;
  // Everything stochastic stays at its degenerate default: no jitter, no
  // loss, no sharing. nominal_seconds then reduces to the historical
  // closed form rtt + bits/bandwidth, bit for bit.
  return link;
}

double NetworkModel::transfer_seconds(std::uint64_t payload_bytes) const {
  const edgesvc::LinkModelConfig link = as_link_config();
  link.validate();
  return edgesvc::LinkModel(link).nominal_seconds(payload_bytes);
}

}  // namespace hbosim::edge
