#include "hbosim/edge/network.hpp"

#include "hbosim/common/error.hpp"

namespace hbosim::edge {

double NetworkModel::transfer_seconds(std::uint64_t payload_bytes) const {
  HB_REQUIRE(rtt_ms >= 0.0 && mbit_per_s > 0.0, "invalid network model");
  const double bits = static_cast<double>(payload_bytes) * 8.0;
  return rtt_ms * 1e-3 + bits / (mbit_per_s * 1e6);
}

}  // namespace hbosim::edge
