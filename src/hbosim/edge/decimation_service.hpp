#pragma once

#include <string>

#include "hbosim/edge/cache.hpp"
#include "hbosim/edge/network.hpp"
#include "hbosim/render/mesh.hpp"

/// \file decimation_service.hpp
/// The edge decimation server of Fig. 3. When HBO's triangle distributor
/// asks for a version of an object at some ratio, the service either
/// serves it from the device-local LRU cache (no cost) or "runs" the
/// decimation algorithm remotely and downloads the result, charging a
/// simulated delay (network transfer + server-side edge-collapse time
/// proportional to the mesh size). Ratios are quantized to a discrete
/// level grid, exactly as a real deployment caches a bounded set of
/// versions per object.
///
/// The service also exposes the offline degradation-parameter trainer the
/// paper mentions (eAR's per-object fitting): deterministic synthetic
/// training, so every component that needs Eq. 1 parameters goes through
/// the same entry point.

namespace hbosim::edge {

struct DecimationResult {
  std::uint64_t triangles = 0;  ///< Triangles in the served version.
  double served_ratio = 0.0;    ///< Quantized ratio actually served.
  double delay_s = 0.0;         ///< Simulated fetch delay (0 on cache hit).
  bool cache_hit = false;
};

struct DecimationServiceConfig {
  NetworkModel network;
  std::size_t cache_capacity = 256;
  /// Quantization levels for cacheable ratios (ratio rounded to 1/levels).
  int ratio_levels = 64;
  /// Server-side decimation cost per million input triangles.
  double server_ms_per_mtri = 35.0;
  /// Mesh payload size per triangle (position+normal+index data).
  double bytes_per_triangle = 36.0;
};

class DecimationService {
 public:
  explicit DecimationService(DecimationServiceConfig cfg = {});

  /// Request `asset` decimated to `ratio` (in [0,1]).
  DecimationResult request(const render::MeshAsset& asset, double ratio);

  /// Offline per-object parameter training (eAR study stand-in).
  render::DegradationParams train_parameters(const std::string& mesh_name,
                                             std::uint64_t max_triangles) const;

  std::uint64_t cache_hits() const { return cache_.hits(); }
  std::uint64_t cache_misses() const { return cache_.misses(); }
  const DecimationServiceConfig& config() const { return cfg_; }

  /// Quantize a ratio onto the service's level grid (never returns 0
  /// unless the input is 0).
  double quantize_ratio(double ratio) const;

 private:
  DecimationServiceConfig cfg_;
  LruCache cache_;
};

}  // namespace hbosim::edge
