#pragma once

#include <functional>
#include <string>

#include "hbosim/edge/cache.hpp"
#include "hbosim/edge/network.hpp"
#include "hbosim/edgesvc/edge_client.hpp"
#include "hbosim/render/mesh.hpp"

/// \file decimation_service.hpp
/// The edge decimation server of Fig. 3. When HBO's triangle distributor
/// asks for a version of an object at some ratio, the service either
/// serves it from the device-local LRU cache (no cost) or "runs" the
/// decimation algorithm remotely and downloads the result, charging a
/// simulated delay (network transfer + server-side edge-collapse time
/// proportional to the mesh size). Ratios are quantized to a discrete
/// level grid, exactly as a real deployment caches a bounded set of
/// versions per object.
///
/// Two remote paths exist:
///  - the legacy closed-form NetworkModel (default): fixed delay, always
///    succeeds;
///  - a contended edgesvc::EdgeClient (via attach_edge): the request
///    competes with other tenants for the shared edge box over a lossy
///    link, and can fail. On failure the device degrades gracefully —
///    it serves the nearest already-cached LOD of the same object, or
///    keeps the currently displayed version if nothing is cached.
///
/// The service also exposes the offline degradation-parameter trainer the
/// paper mentions (eAR's per-object fitting): deterministic synthetic
/// training, so every component that needs Eq. 1 parameters goes through
/// the same entry point.

namespace hbosim::edge {

struct DecimationResult {
  std::uint64_t triangles = 0;  ///< Triangles in the served version.
  double served_ratio = 0.0;    ///< Quantized ratio actually served.
  double delay_s = 0.0;         ///< Simulated fetch delay (0 on cache hit).
  bool cache_hit = false;
  /// Edge request failed and a degraded substitute was served instead.
  bool fallback = false;
  /// Fallback found nothing cached for this object: keep the version the
  /// device is already displaying (triangles/served_ratio not meaningful).
  bool unchanged = false;
  /// Attempts the edge client spent on this request (0 on cache hit or
  /// legacy path).
  int edge_attempts = 0;
};

struct DecimationServiceConfig {
  NetworkModel network;
  std::size_t cache_capacity = 256;
  /// Quantization levels for cacheable ratios (ratio rounded to 1/levels).
  int ratio_levels = 64;
  /// Server-side decimation cost per million input triangles.
  double server_ms_per_mtri = 35.0;
  /// Mesh payload size per triangle (position+normal+index data).
  double bytes_per_triangle = 36.0;
};

class DecimationService {
 public:
  explicit DecimationService(DecimationServiceConfig cfg = {});

  /// Route cache misses through a contended edge service instead of the
  /// closed-form NetworkModel. `clock` supplies the current simulation
  /// time (the edge server mirror needs real arrival times to model
  /// queueing). Pass nullptr to detach and restore the legacy path.
  void attach_edge(edgesvc::EdgeClient* client,
                   std::function<double()> clock);

  /// Request `asset` decimated to `ratio` (in [0,1]).
  DecimationResult request(const render::MeshAsset& asset, double ratio);

  /// Offline per-object parameter training (eAR study stand-in).
  render::DegradationParams train_parameters(const std::string& mesh_name,
                                             std::uint64_t max_triangles) const;

  std::uint64_t cache_hits() const { return cache_.hits(); }
  std::uint64_t cache_misses() const { return cache_.misses(); }
  std::uint64_t edge_fallbacks() const { return edge_fallbacks_; }
  const DecimationServiceConfig& config() const { return cfg_; }
  bool edge_attached() const { return edge_ != nullptr; }

  /// Quantize a ratio onto the service's level grid (never returns 0
  /// unless the input is 0).
  double quantize_ratio(double ratio) const;

 private:
  DecimationResult nearest_cached_lod(const render::MeshAsset& asset,
                                      double wanted_ratio) const;

  DecimationServiceConfig cfg_;
  LruCache cache_;
  edgesvc::EdgeClient* edge_ = nullptr;
  std::function<double()> clock_;
  std::uint64_t edge_fallbacks_ = 0;
};

}  // namespace hbosim::edge
