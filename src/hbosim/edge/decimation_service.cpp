#include "hbosim/edge/decimation_service.hpp"

#include <cmath>
#include <cstdlib>

#include "hbosim/common/error.hpp"
#include "hbosim/telemetry/telemetry.hpp"

namespace hbosim::edge {

DecimationService::DecimationService(DecimationServiceConfig cfg)
    : cfg_(cfg), cache_(cfg.cache_capacity) {
  HB_REQUIRE(cfg_.ratio_levels > 0, "ratio_levels must be positive");
  HB_REQUIRE(cfg_.server_ms_per_mtri >= 0.0, "server cost must be >= 0");
}

void DecimationService::attach_edge(edgesvc::EdgeClient* client,
                                    std::function<double()> clock) {
  HB_REQUIRE(client == nullptr || static_cast<bool>(clock),
             "attaching an edge client requires a simulation clock");
  edge_ = client;
  clock_ = std::move(clock);
}

double DecimationService::quantize_ratio(double ratio) const {
  HB_REQUIRE(ratio >= 0.0 && ratio <= 1.0, "ratio must be in [0,1]");
  if (ratio == 0.0) return 0.0;
  const double levels = static_cast<double>(cfg_.ratio_levels);
  const double q = std::ceil(ratio * levels) / levels;  // never degrade below ask
  return std::min(q, 1.0);
}

DecimationResult DecimationService::nearest_cached_lod(
    const render::MeshAsset& asset, double wanted_ratio) const {
  // Scan the cache for versions of this object ("name@level" keys) and
  // pick the level closest to the one we wanted, preferring the higher
  // LOD on ties. No recency update: this is an emergency substitute, not
  // a normal access.
  const std::string prefix = asset.name() + "@";
  const double wanted_level = wanted_ratio * cfg_.ratio_levels;
  int best_level = -1;
  std::uint64_t best_triangles = 0;
  cache_.for_each_entry([&](const std::string& key, std::uint64_t triangles) {
    if (key.compare(0, prefix.size(), prefix) != 0) return;
    const int level = std::atoi(key.c_str() + prefix.size());
    if (best_level < 0 ||
        std::abs(level - wanted_level) < std::abs(best_level - wanted_level) ||
        (std::abs(level - wanted_level) == std::abs(best_level - wanted_level) &&
         level > best_level)) {
      best_level = level;
      best_triangles = triangles;
    }
  });

  DecimationResult out;
  out.fallback = true;
  if (best_level < 0) {
    // Nothing cached at all: keep showing whatever version is on screen.
    out.unchanged = true;
    return out;
  }
  out.triangles = best_triangles;
  out.served_ratio =
      static_cast<double>(best_level) / static_cast<double>(cfg_.ratio_levels);
  return out;
}

DecimationResult DecimationService::request(const render::MeshAsset& asset,
                                            double ratio) {
  DecimationResult out;
  out.served_ratio = quantize_ratio(ratio);
  const std::string key = compose_key(
      {asset.name(),
       std::to_string(
           static_cast<int>(std::lround(out.served_ratio * cfg_.ratio_levels)))});

  if (const std::uint64_t* cached = cache_.get(key)) {
    out.triangles = *cached;
    out.cache_hit = true;
    out.delay_s = 0.0;
    HB_TELEM_COUNT("edge.cache_hits", 1.0);
    return out;
  }
  HB_TELEM_COUNT("edge.cache_misses", 1.0);

  // Cache miss: the server decimates from the full-resolution mesh and the
  // device downloads the decimated version.
  out.triangles = asset.triangles_at(out.served_ratio);
  out.cache_hit = false;
  const double server_s = cfg_.server_ms_per_mtri * 1e-3 *
                          static_cast<double>(asset.max_triangles()) / 1e6;
  const auto payload = static_cast<std::uint64_t>(
      cfg_.bytes_per_triangle * static_cast<double>(out.triangles));

  if (edge_ == nullptr) {
    out.delay_s = server_s + cfg_.network.transfer_seconds(payload);
    cache_.put(key, out.triangles);
    return out;
  }

  // Contended path: decimation work is priced by the shared server's own
  // spec (units = millions of input triangles); the response payload is
  // the decimated mesh.
  const edgesvc::EdgeResponse resp = edge_->perform(
      edgesvc::RequestClass::Decimation,
      static_cast<double>(asset.max_triangles()) / 1e6, payload, clock_());
  if (resp.ok) {
    out.delay_s = resp.elapsed_s;
    out.edge_attempts = resp.attempts;
    cache_.put(key, out.triangles);
    return out;
  }

  // Edge gave up: degrade to the nearest LOD already on device. The time
  // spent retrying is still charged — the user waited through it.
  ++edge_fallbacks_;
  HB_TELEM_COUNT("edge.decim_fallbacks", 1.0);
  DecimationResult degraded = nearest_cached_lod(asset, out.served_ratio);
  degraded.delay_s = resp.elapsed_s;
  degraded.edge_attempts = resp.attempts;
  return degraded;
}

render::DegradationParams DecimationService::train_parameters(
    const std::string& mesh_name, std::uint64_t max_triangles) const {
  return render::synthesize_degradation_params(mesh_name, max_triangles);
}

}  // namespace hbosim::edge
