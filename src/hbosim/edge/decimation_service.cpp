#include "hbosim/edge/decimation_service.hpp"

#include <cmath>

#include "hbosim/common/error.hpp"
#include "hbosim/telemetry/telemetry.hpp"

namespace hbosim::edge {

DecimationService::DecimationService(DecimationServiceConfig cfg)
    : cfg_(cfg), cache_(cfg.cache_capacity) {
  HB_REQUIRE(cfg_.ratio_levels > 0, "ratio_levels must be positive");
  HB_REQUIRE(cfg_.server_ms_per_mtri >= 0.0, "server cost must be >= 0");
}

double DecimationService::quantize_ratio(double ratio) const {
  HB_REQUIRE(ratio >= 0.0 && ratio <= 1.0, "ratio must be in [0,1]");
  if (ratio == 0.0) return 0.0;
  const double levels = static_cast<double>(cfg_.ratio_levels);
  const double q = std::ceil(ratio * levels) / levels;  // never degrade below ask
  return std::min(q, 1.0);
}

DecimationResult DecimationService::request(const render::MeshAsset& asset,
                                            double ratio) {
  DecimationResult out;
  out.served_ratio = quantize_ratio(ratio);
  const std::string key = compose_key(
      {asset.name(),
       std::to_string(
           static_cast<int>(std::lround(out.served_ratio * cfg_.ratio_levels)))});

  if (const std::uint64_t* cached = cache_.get(key)) {
    out.triangles = *cached;
    out.cache_hit = true;
    out.delay_s = 0.0;
    HB_TELEM_COUNT("edge.cache_hits", 1.0);
    return out;
  }
  HB_TELEM_COUNT("edge.cache_misses", 1.0);

  // Cache miss: the server decimates from the full-resolution mesh and the
  // device downloads the decimated version.
  out.triangles = asset.triangles_at(out.served_ratio);
  out.cache_hit = false;
  const double server_s = cfg_.server_ms_per_mtri * 1e-3 *
                          static_cast<double>(asset.max_triangles()) / 1e6;
  const auto payload = static_cast<std::uint64_t>(
      cfg_.bytes_per_triangle * static_cast<double>(out.triangles));
  out.delay_s = server_s + cfg_.network.transfer_seconds(payload);
  cache_.put(key, out.triangles);
  return out;
}

render::DegradationParams DecimationService::train_parameters(
    const std::string& mesh_name, std::uint64_t max_triangles) const {
  return render::synthesize_degradation_params(mesh_name, max_triangles);
}

}  // namespace hbosim::edge
