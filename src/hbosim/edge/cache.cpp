#include "hbosim/edge/cache.hpp"

namespace hbosim::edge {

std::string compose_key(std::initializer_list<std::string> parts) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += '@';
    out += p;
  }
  return out;
}

}  // namespace hbosim::edge
