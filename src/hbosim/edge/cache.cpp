#include "hbosim/edge/cache.hpp"

#include "hbosim/common/error.hpp"

namespace hbosim::edge {

LruCache::LruCache(std::size_t capacity) : capacity_(capacity) {
  HB_REQUIRE(capacity_ > 0, "cache capacity must be positive");
}

const std::uint64_t* LruCache::get(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  order_.splice(order_.begin(), order_, it->second);
  return &it->second->second;
}

void LruCache::put(const std::string& key, std::uint64_t value) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = value;
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(order_.back().first);
    order_.pop_back();
  }
  order_.emplace_front(key, value);
  map_[key] = order_.begin();
}

bool LruCache::contains(const std::string& key) const {
  return map_.count(key) > 0;
}

}  // namespace hbosim::edge
