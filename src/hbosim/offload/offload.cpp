#include "hbosim/offload/offload.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "hbosim/common/error.hpp"
#include "hbosim/telemetry/telemetry.hpp"

namespace hbosim::offload {

void OffloadConfig::validate() const {
  HB_REQUIRE(std::isfinite(max_edge_share) && max_edge_share >= 0.0 &&
                 max_edge_share <= 1.0,
             "offload max_edge_share must be in [0, 1]");
  HB_REQUIRE(std::isfinite(min_edge_share) && min_edge_share >= 0.0 &&
                 min_edge_share <= 1.0,
             "offload min_edge_share must be in [0, 1]");
  HB_REQUIRE(std::isfinite(units_per_device_ms) && units_per_device_ms > 0.0,
             "offload units_per_device_ms must be positive");
  HB_REQUIRE(std::isfinite(radio_w) && radio_w >= 0.0,
             "offload radio_w must be finite and >= 0");
  HB_REQUIRE(std::isfinite(radio_idle_w) && radio_idle_w >= 0.0,
             "offload radio_idle_w must be finite and >= 0");
  HB_REQUIRE(std::isfinite(timeout_s) && timeout_s > 0.0,
             "offload timeout_s must be positive");
  HB_REQUIRE(max_attempts >= 1, "offload max_attempts must be >= 1");
}

std::vector<double> plan_task_shares(double edge_share,
                                     std::span<const double> expected_ms) {
  const std::size_t n = expected_ms.size();
  std::vector<double> shares(n, 0.0);
  if (n == 0) return shares;
  double budget = std::clamp(edge_share, 0.0, 1.0) * static_cast<double>(n);
  if (budget <= 0.0) return shares;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return expected_ms[a] > expected_ms[b];
                   });
  for (const std::size_t i : order) {
    const double s = std::min(1.0, budget);
    shares[i] = s;
    budget -= s;
    if (budget <= 0.0) break;
  }
  return shares;
}

OffloadExecutor::OffloadExecutor(OffloadConfig cfg, edgesvc::EdgeClient& client,
                                 des::Simulator& sim,
                                 power::PowerManager* power)
    : cfg_(cfg), client_(client), sim_(sim), power_(power) {
  cfg_.validate();
}

ai::RemoteResult OffloadExecutor::execute(const ai::AiTask& task,
                                          double demand_s) {
  (void)task;
  HB_REQUIRE(std::isfinite(demand_s) && demand_s >= 0.0,
             "offloaded inference demand must be finite and >= 0");
  const double units = demand_s * 1e3 * cfg_.units_per_device_ms;
  const edgesvc::EdgeResponse resp = client_.perform(
      edgesvc::RequestClass::AiInference, units, cfg_.payload_bytes,
      sim_.now(), cfg_.timeout_s, cfg_.max_attempts);
  ++stats_.exchanges;
  stats_.edge_elapsed_s += resp.elapsed_s;
  // The radio was lit for the exchange, fallbacks included: full TX/RX
  // power while bits were on the air, idle-listen power while waiting on
  // the server or a lost response. A lossy link still burns battery
  // without delivering an answer — exactly the signal the w_energy cost
  // needs to steer offload away from bad links — but queueing no longer
  // bills at transfer power.
  const double on_air_s = std::min(resp.link_s, resp.elapsed_s);
  const double radio_j = cfg_.radio_w * on_air_s +
                         cfg_.radio_idle_w * (resp.elapsed_s - on_air_s);
  stats_.radio_energy_j += radio_j;
  if (power_ != nullptr && radio_j > 0.0) {
    power_->add_external_energy_j(radio_j);
  }
  if (resp.ok) {
    ++stats_.successes;
  } else {
    ++stats_.failures;
  }
  if (telemetry::enabled()) {
    HB_TELEM_COUNT("offload.exchanges", 1.0);
    HB_TELEM_HIST_US("offload.exchange_us", resp.elapsed_s * 1e6);
  }
  return ai::RemoteResult{resp.ok, resp.elapsed_s};
}

ai::InferenceEngine::RemoteExecutor OffloadExecutor::executor() {
  return [this](const ai::AiTask& task, double demand_s) {
    return execute(task, demand_s);
  };
}

}  // namespace hbosim::offload
