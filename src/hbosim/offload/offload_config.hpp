#pragma once

#include <cstdint>
#include <span>
#include <vector>

/// \file offload_config.hpp
/// The dependency-light half of hbosim::offload: the session knobs and
/// the pure edge-share → per-task plan mapping. core::HboConfig and
/// fleet::FleetSpec embed OffloadConfig from here; the executor that
/// actually talks to edgesvc/power lives in offload.hpp so that config
/// consumers do not drag the whole runtime stack into their includes.

namespace hbosim::offload {

/// Per-session (or fleet-wide, via FleetSpec::offload) offload knobs.
struct OffloadConfig {
  /// Master switch: grows the HBO simplex to CPU/GPU/NPU/edge and wires
  /// the remote executor. Off = bitwise pre-offload behavior.
  bool enabled = false;

  /// Cap on the sampled edge coordinate after simplex normalization; the
  /// controller clamps the edge share to this before planning. 1.0 lets
  /// HBO offload every inference; lower values model an operator policy
  /// ("at most 40% of AI traffic may leave the device").
  double max_edge_share = 1.0;

  /// Sampled edge shares below this snap to exactly 0 (offload off for
  /// that configuration). Continuous simplex samples almost never hit
  /// the zero-edge face, so without a snap the optimizer can only
  /// *approach* all-local and a hostile link keeps collecting residual
  /// radio wakeups; with it, "don't offload" is a reachable decision.
  /// Mirrors real deployments that gate offload below a minimum
  /// worthwhile batch fraction.
  double min_edge_share = 0.05;

  /// Edge-request size per device-millisecond of inference demand, in
  /// edgesvc AiInference `units`. 1.0 means a 30 ms on-device inference
  /// posts 30 units (the server then applies its ai_ms_per_unit speed
  /// ratio); raise it to model chattier models, lower it for compact
  /// feature-upload pipelines.
  double units_per_device_ms = 1.0;

  /// Downlink response size (detection boxes / feature maps) before the
  /// client's resolution knob scales it — market-trimmed tenants upload
  /// smaller frames and receive proportionally smaller responses.
  std::uint64_t payload_bytes = 24 * 1024;

  /// Radio power while bits are on the air (W): charged for the
  /// exchange's link time (EdgeResponse::link_s) via
  /// power::PowerManager::add_external_energy_j, so a lossy link makes
  /// offloading *cost* energy instead of saving it and the w_energy term
  /// can learn that. 0 (or no power model) tracks the energy in stats
  /// only.
  double radio_w = 0.8;

  /// Radio power while the client idle-listens for the rest of the
  /// exchange — server queueing/service and loss timeouts (W). Modern
  /// radios drop to an RRC-connected listen state there; charging them
  /// full TX power would make every queued exchange look like a
  /// transfer. Charged with radio_w (same guard: needs radio_w path).
  double radio_idle_w = 0.12;

  /// Per-exchange response deadline (s). An inference answer is only
  /// useful inside the frame budget, so offload exchanges give up far
  /// sooner than the edge client's mesh-download patience (1.5 s) —
  /// passed to EdgeClient::perform as a per-call override. Keeps a
  /// congested link's worst case bounded at one short stall instead of
  /// multi-second retry storms.
  double timeout_s = 0.25;

  /// Attempt budget per exchange. Default 1: retrying a stale frame is
  /// pointless — miss the deadline once and the local fallback runs.
  int max_attempts = 1;

  /// Throws hbosim::Error naming the offending knob.
  void validate() const;
};

/// Map the sampled edge-simplex coordinate to per-task remote fractions.
/// `edge_share` is the fraction of the session's AI workload to run
/// remotely (clamped to [0, 1]); `expected_ms` gives each task's expected
/// isolation latency. The total remote budget edge_share * n_tasks is
/// assigned greedily to the most expensive tasks first (stable index
/// tie-break), fully offloading each until the budget's fractional tail
/// lands on one task — heavy detectors leave the device before light
/// trackers, which is both what LEAF-style systems do and what keeps the
/// thermal relief per offloaded byte highest. Pure function; the returned
/// vector matches expected_ms in size and order.
std::vector<double> plan_task_shares(double edge_share,
                                     std::span<const double> expected_ms);

}  // namespace hbosim::offload
