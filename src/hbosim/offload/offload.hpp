#pragma once

#include <cstdint>

#include "hbosim/ai/engine.hpp"
#include "hbosim/des/simulator.hpp"
#include "hbosim/edgesvc/edge_client.hpp"
#include "hbosim/offload/offload_config.hpp"
#include "hbosim/power/power_manager.hpp"

/// \file offload.hpp
/// Edge as a fourth allocation target of the HBO simplex. The paper's
/// Constraints 8-10 sample per-resource proportions over the on-device
/// CPU/GPU/NPU; with offload enabled the controller grows that simplex by
/// one coordinate — the *edge share* — so the optimizer itself trades
/// battery drain and thermal headroom against network latency and edge
/// contention (the LEAF/AIO direction from PAPERS.md), instead of edge
/// use being imposed from outside the search.
///
/// The subsystem is three small pieces:
///  - OffloadConfig: the session knobs (validated up front, fleet-style);
///  - plan_task_shares(): the deterministic mapping from the sampled edge
///    coordinate to per-AI-task remote fractions;
///  - OffloadExecutor: the ai::InferenceEngine::RemoteExecutor backend
///    that runs one offloaded inference against the session's edgesvc
///    mirror (payload sized through the client's resolution knob) and
///    charges the radio energy of the exchange to the battery.
///
/// Parity contract: with `enabled == false` nothing here is constructed
/// or consulted — the controller keeps the 3-coordinate space, the engine
/// keeps every share at 0, and session trajectories stay bitwise
/// identical to a pre-offload build. Enabled sessions stay deterministic
/// because every piece is a pure function of the session seed: the
/// executor adds no RNG stream of its own (edge randomness lives in the
/// client it wraps) and the engine's routing carry draws nothing.

namespace hbosim::offload {

/// Lifetime roll-up of one executor's exchanges.
struct OffloadStats {
  std::uint64_t exchanges = 0;  ///< execute() calls (one per routed inference).
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;   ///< Exhausted the client's attempt budget.
  double edge_elapsed_s = 0.0;  ///< Summed exchange wall time.
  double radio_energy_j = 0.0;  ///< Radio energy charged (or tracked).
};

/// The RemoteExecutor backend: one per session, wrapping the session's
/// EdgeClient mirror. Synchronous in virtual time — perform() resolves
/// the exchange against the deterministic server mirror and returns the
/// elapsed seconds the engine then schedules forward, so offload never
/// reorders DES events behind the engine's back.
class OffloadExecutor {
 public:
  /// `power` may be null (no power model): radio energy is then only
  /// accumulated in stats(). The client and simulator must outlive the
  /// executor.
  OffloadExecutor(OffloadConfig cfg, edgesvc::EdgeClient& client,
                  des::Simulator& sim, power::PowerManager* power = nullptr);

  /// Run one inference of `demand_s` isolation-seconds remotely.
  ai::RemoteResult execute(const ai::AiTask& task, double demand_s);

  /// Adapter for ai::InferenceEngine::set_remote_executor. The returned
  /// callable references *this.
  ai::InferenceEngine::RemoteExecutor executor();

  const OffloadStats& stats() const { return stats_; }
  const OffloadConfig& config() const { return cfg_; }

 private:
  OffloadConfig cfg_;
  edgesvc::EdgeClient& client_;
  des::Simulator& sim_;
  power::PowerManager* power_;
  OffloadStats stats_;
};

}  // namespace hbosim::offload
