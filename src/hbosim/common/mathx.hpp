#pragma once

#include <cstddef>
#include <span>
#include <vector>

/// \file mathx.hpp
/// Scalar and small-vector math helpers used throughout hbosim.

namespace hbosim {

/// Clamp v into [lo, hi]. Requires lo <= hi.
double clampd(double v, double lo, double hi);

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double stdev(std::span<const double> xs);

/// Linearly interpolated percentile, p in [0, 100]. Sorts a copy.
double percentile(std::span<const double> xs, double p);

/// n evenly spaced values from lo to hi inclusive (n >= 2), or {lo} if n==1.
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// Standard normal probability density.
double norm_pdf(double z);

/// Standard normal cumulative distribution (via std::erfc).
double norm_cdf(double z);

/// Euclidean distance between two equal-length vectors.
double euclidean_distance(std::span<const double> a, std::span<const double> b);

/// Sum of a span.
double sum(std::span<const double> xs);

/// True if |a-b| <= atol + rtol*max(|a|,|b|).
bool approx_equal(double a, double b, double rtol = 1e-9, double atol = 1e-12);

/// Project v onto the probability simplex {p : p_i >= 0, sum p_i = 1}
/// (Euclidean projection, algorithm of Wang & Carreira-Perpinan).
std::vector<double> project_to_simplex(std::span<const double> v);

/// Same projection written into `out` (same size as v; out may alias v).
/// `scratch` holds the sorted working copy — reusing it across calls makes
/// the projection allocation-free at steady state. Bitwise identical to
/// the allocating overload.
void project_to_simplex(std::span<const double> v, std::span<double> out,
                        std::vector<double>& scratch);

}  // namespace hbosim
