#pragma once

#include <cstddef>
#include <limits>
#include <vector>

/// \file stats.hpp
/// Streaming statistics used by the metrics pipeline.

namespace hbosim {

/// Welford's online mean/variance accumulator.
class RunningStat {
 public:
  void add(double x);
  void reset();

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1); 0 for n < 2.
  double stdev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exponentially weighted moving average.
class Ewma {
 public:
  /// alpha in (0, 1]: weight of the newest sample.
  explicit Ewma(double alpha);

  void add(double x);
  bool empty() const { return !initialized_; }
  double value() const;

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// The p-th percentile (p in [0, 100]) of `values` by linear interpolation
/// between order statistics. Throws on an empty sample or p out of range.
/// Takes the sample by value: it is sorted internally.
double percentile(std::vector<double> values, double p);

/// percentile() for a sample the caller has ALREADY sorted ascending —
/// lets one sort serve several percentile reads. Same interpolation, same
/// empty/range checks; the precondition is not re-verified.
double percentile_sorted(const std::vector<double>& sorted, double p);

/// Streaming quantile estimate via the P² algorithm (Jain & Chlamtac,
/// CACM 1985): five markers track (min, p/2, p, (1+p)/2, max) heights and
/// are nudged by parabolic interpolation as observations arrive — O(1)
/// memory and time per sample, no retained data. The first four samples
/// are kept exactly, so value() matches percentile() exactly until the
/// sketch takes over at n == 5.
///
/// Accuracy is distribution-dependent; the documented bound (pinned by
/// tests/test_streaming_stats.cpp on sorted / reversed / constant /
/// heavy-tailed inputs) is a *rank* error: the estimate lies between the
/// exact (p-10) and (p+10) percentiles for n >= 1000. Estimates are
/// order-sensitive, so deterministic pipelines must feed samples in a
/// deterministic order (the fleet feeds in session-id order).
class P2Quantile {
 public:
  /// `p` in (0, 1), e.g. 0.99 for the 99th percentile.
  explicit P2Quantile(double p);

  void add(double x);
  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double quantile() const { return p_; }
  /// Current estimate; throws on an empty sketch.
  double value() const;

 private:
  double p_;
  std::size_t count_ = 0;
  double q_[5] = {};   ///< Marker heights (first `count_` samples if < 5).
  double n_[5] = {};   ///< Actual marker positions (1-based).
  double np_[5] = {};  ///< Desired marker positions.
  double dn_[5] = {};  ///< Desired-position increments per sample.
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  const std::vector<std::size_t>& counts() const { return counts_; }
  double bin_lower(std::size_t i) const;
  double bin_width() const { return width_; }

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace hbosim
