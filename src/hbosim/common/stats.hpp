#pragma once

#include <cstddef>
#include <limits>
#include <vector>

/// \file stats.hpp
/// Streaming statistics used by the metrics pipeline.

namespace hbosim {

/// Welford's online mean/variance accumulator.
class RunningStat {
 public:
  void add(double x);
  void reset();

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1); 0 for n < 2.
  double stdev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exponentially weighted moving average.
class Ewma {
 public:
  /// alpha in (0, 1]: weight of the newest sample.
  explicit Ewma(double alpha);

  void add(double x);
  bool empty() const { return !initialized_; }
  double value() const;

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// The p-th percentile (p in [0, 100]) of `values` by linear interpolation
/// between order statistics. Throws on an empty sample or p out of range.
/// Takes the sample by value: it is sorted internally.
double percentile(std::vector<double> values, double p);

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  const std::vector<std::size_t>& counts() const { return counts_; }
  double bin_lower(std::size_t i) const;
  double bin_width() const { return width_; }

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace hbosim
