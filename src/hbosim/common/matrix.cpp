#include "hbosim/common/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "hbosim/common/error.hpp"
#include "hbosim/common/fastmath.hpp"

namespace hbosim {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), stride_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::reserve(std::size_t rows, std::size_t cols) {
  const std::size_t new_stride = std::max(stride_, cols);
  const std::size_t need = std::max(rows, rows_) * new_stride;
  if (new_stride == stride_) {
    if (need > data_.size()) data_.resize(need, 0.0);
    return;
  }
  // Wider stride: re-lay rows out back to front so the copy never
  // overwrites data it still has to read.
  data_.resize(need, 0.0);
  for (std::size_t r = rows_; r-- > 0;) {
    double* src = data_.data() + r * stride_;
    double* dst = data_.data() + r * new_stride;
    std::copy_backward(src, src + cols_, dst + cols_);
    std::fill(dst + cols_, dst + new_stride, 0.0);
  }
  stride_ = new_stride;
}

void Matrix::conservative_resize(std::size_t new_rows, std::size_t new_cols) {
  if (new_cols > stride_ || new_rows * stride_ > data_.size()) {
    // Out of capacity: reserve with geometric growth so a sequence of +1
    // resizes costs O(1) amortized allocations.
    reserve(std::max(new_rows, 2 * rows_), std::max(new_cols, 2 * cols_));
  }
  // Zero-fill cells newly exposed by growth (capacity regions may hold
  // stale values from an earlier shrink).
  for (std::size_t r = 0; r < new_rows; ++r) {
    double* p = data_.data() + r * stride_;
    const std::size_t keep = (r < rows_) ? cols_ : 0;
    if (keep < new_cols) std::fill(p + keep, p + new_cols, 0.0);
  }
  rows_ = new_rows;
  cols_ = new_cols;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  HB_ASSERT(r < rows_ && c < cols_, "Matrix index out of range");
  return data_[r * stride_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  HB_ASSERT(r < rows_ && c < cols_, "Matrix index out of range");
  return data_[r * stride_ + c];
}

std::span<const double> Matrix::row(std::size_t r) const {
  HB_ASSERT(r < rows_, "Matrix row out of range");
  return {data_.data() + r * stride_, cols_};
}

std::span<double> Matrix::row(std::size_t r) {
  HB_ASSERT(r < rows_, "Matrix row out of range");
  return {data_.data() + r * stride_, cols_};
}

std::vector<double> Matrix::matvec(std::span<const double> v) const {
  std::vector<double> out(rows_, 0.0);
  matvec(v, out);
  return out;
}

void Matrix::matvec(std::span<const double> v, std::span<double> out) const {
  HB_REQUIRE(v.size() == cols_, "matvec: dimension mismatch");
  HB_REQUIRE(out.size() == rows_, "matvec: output dimension mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* rp = data_.data() + r * stride_;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += rp[c] * v[c];
    out[r] = acc;
  }
}

std::vector<double> Matrix::matvec_transposed(std::span<const double> v) const {
  std::vector<double> out(cols_, 0.0);
  matvec_transposed(v, out);
  return out;
}

void Matrix::matvec_transposed(std::span<const double> v,
                               std::span<double> out) const {
  HB_REQUIRE(v.size() == rows_, "matvec_transposed: dimension mismatch");
  HB_REQUIRE(out.size() == cols_, "matvec_transposed: output dimension mismatch");
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* rp = data_.data() + r * stride_;
    for (std::size_t c = 0; c < cols_; ++c) out[c] += rp[c] * v[r];
  }
}

Cholesky::Cholesky(const Matrix& a, double jitter) : jitter_(jitter) {
  HB_REQUIRE(a.is_square(), "Cholesky requires a square matrix");
  const std::size_t n = a.rows();
  l_ = Matrix(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j) + jitter;
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    HB_REQUIRE(diag > 0.0, "Cholesky: matrix not positive definite");
    l_(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= l_(i, k) * l_(j, k);
      l_(i, j) = v / l_(j, j);
    }
  }
}

void Cholesky::reserve(std::size_t capacity) { l_.reserve(capacity, capacity); }

void Cholesky::append_row(std::span<const double> off_diag, double diag) {
  const std::size_t n = size();
  HB_REQUIRE(off_diag.size() == n, "append_row: dimension mismatch");
  l_.conservative_resize(n + 1, n + 1);
  // Forward-substitute the new row: these are exactly the operations the
  // full factorization performs for row n, so the grown factor is bitwise
  // identical to a from-scratch Cholesky of the grown matrix.
  double* lr = l_.row(n).data();
  double d = diag + jitter_;
  for (std::size_t j = 0; j < n; ++j) {
    const double* pj = l_.row(j).data();
    double v = off_diag[j];
    for (std::size_t k = 0; k < j; ++k) v -= lr[k] * pj[k];
    lr[j] = v / pj[j];
  }
  for (std::size_t k = 0; k < n; ++k) d -= lr[k] * lr[k];
  if (!(d > 0.0)) {
    l_.conservative_resize(n, n);  // leave the factor unchanged on failure
    HB_REQUIRE(false, "Cholesky::append_row: matrix not positive definite");
  }
  lr[n] = std::sqrt(d);
}

std::vector<double> Cholesky::solve_lower(std::span<const double> b) const {
  std::vector<double> y(size());
  solve_lower(b, y);
  return y;
}

void Cholesky::solve_lower(std::span<const double> b,
                           std::span<double> out) const {
  const std::size_t n = size();
  HB_REQUIRE(b.size() == n, "solve_lower: dimension mismatch");
  HB_REQUIRE(out.size() == n, "solve_lower: output dimension mismatch");
  const std::size_t stride = l_.stride();
  const double* lp = n > 0 ? l_.row(0).data() : nullptr;
  for (std::size_t i = 0; i < n; ++i) {
    const double* ri = lp + i * stride;
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= ri[k] * out[k];
    out[i] = v / ri[i];
  }
}

void Cholesky::solve_lower_many(double* b, std::size_t count,
                                std::size_t stride) const {
  HB_REQUIRE(stride >= count, "solve_lower_many: stride < count");
  const std::size_t n = size();
  if (n == 0 || count == 0) return;
  fastmath::trsm_lower_inplace(l_.row(0).data(), l_.stride(), n, b, count,
                               stride);
}

std::vector<double> Cholesky::solve_upper(std::span<const double> b) const {
  std::vector<double> x(size());
  solve_upper(b, x);
  return x;
}

void Cholesky::solve_upper(std::span<const double> b,
                           std::span<double> out) const {
  const std::size_t n = size();
  HB_REQUIRE(b.size() == n, "solve_upper: dimension mismatch");
  HB_REQUIRE(out.size() == n, "solve_upper: output dimension mismatch");
  const std::size_t stride = l_.stride();
  const double* lp = n > 0 ? l_.row(0).data() : nullptr;
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double v = b[i];
    for (std::size_t k = i + 1; k < n; ++k) v -= lp[k * stride + i] * out[k];
    out[i] = v / lp[i * stride + i];
  }
}

std::vector<double> Cholesky::solve(std::span<const double> b) const {
  return solve_upper(solve_lower(b));
}

void Cholesky::solve(std::span<const double> b, std::span<double> out) const {
  solve_lower(b, out);
  solve_upper(out, out);
}

double Cholesky::log_det() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < size(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

}  // namespace hbosim
