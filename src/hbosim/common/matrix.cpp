#include "hbosim/common/matrix.hpp"

#include <cmath>

#include "hbosim/common/error.hpp"

namespace hbosim {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  HB_ASSERT(r < rows_ && c < cols_, "Matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  HB_ASSERT(r < rows_ && c < cols_, "Matrix index out of range");
  return data_[r * cols_ + c];
}

std::vector<double> Matrix::matvec(std::span<const double> v) const {
  HB_REQUIRE(v.size() == cols_, "matvec: dimension mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += data_[r * cols_ + c] * v[c];
    out[r] = acc;
  }
  return out;
}

std::vector<double> Matrix::matvec_transposed(std::span<const double> v) const {
  HB_REQUIRE(v.size() == rows_, "matvec_transposed: dimension mismatch");
  std::vector<double> out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out[c] += data_[r * cols_ + c] * v[r];
  return out;
}

Cholesky::Cholesky(const Matrix& a, double jitter) {
  HB_REQUIRE(a.is_square(), "Cholesky requires a square matrix");
  const std::size_t n = a.rows();
  l_ = Matrix(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j) + jitter;
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    HB_REQUIRE(diag > 0.0, "Cholesky: matrix not positive definite");
    l_(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= l_(i, k) * l_(j, k);
      l_(i, j) = v / l_(j, j);
    }
  }
}

std::vector<double> Cholesky::solve_lower(std::span<const double> b) const {
  const std::size_t n = size();
  HB_REQUIRE(b.size() == n, "solve_lower: dimension mismatch");
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= l_(i, k) * y[k];
    y[i] = v / l_(i, i);
  }
  return y;
}

std::vector<double> Cholesky::solve_upper(std::span<const double> b) const {
  const std::size_t n = size();
  HB_REQUIRE(b.size() == n, "solve_upper: dimension mismatch");
  std::vector<double> x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double v = b[i];
    for (std::size_t k = i + 1; k < n; ++k) v -= l_(k, i) * x[k];
    x[i] = v / l_(i, i);
  }
  return x;
}

std::vector<double> Cholesky::solve(std::span<const double> b) const {
  return solve_upper(solve_lower(b));
}

double Cholesky::log_det() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < size(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

}  // namespace hbosim
