#include "hbosim/common/mathx.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "hbosim/common/error.hpp"

namespace hbosim {

double clampd(double v, double lo, double hi) {
  HB_REQUIRE(lo <= hi, "clampd requires lo <= hi");
  return std::min(std::max(v, lo), hi);
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stdev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double p) {
  HB_REQUIRE(!xs.empty(), "percentile of empty span");
  HB_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p must be in [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  HB_REQUIRE(n >= 1, "linspace requires n >= 1");
  if (n == 1) return {lo};
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;
  return out;
}

double norm_pdf(double z) {
  static const double inv_sqrt_2pi = 1.0 / std::sqrt(2.0 * std::numbers::pi);
  return inv_sqrt_2pi * std::exp(-0.5 * z * z);
}

double norm_cdf(double z) {
  return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

double euclidean_distance(std::span<const double> a,
                          std::span<const double> b) {
  HB_REQUIRE(a.size() == b.size(), "euclidean_distance: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double sum(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

bool approx_equal(double a, double b, double rtol, double atol) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

std::vector<double> project_to_simplex(std::span<const double> v) {
  std::vector<double> out(v.size());
  std::vector<double> scratch;
  project_to_simplex(v, out, scratch);
  return out;
}

void project_to_simplex(std::span<const double> v, std::span<double> out,
                        std::vector<double>& scratch) {
  HB_REQUIRE(!v.empty(), "project_to_simplex: empty input");
  HB_REQUIRE(out.size() == v.size(), "project_to_simplex: size mismatch");
  scratch.assign(v.begin(), v.end());
  std::sort(scratch.begin(), scratch.end(), std::greater<>());
  double css = 0.0;
  std::size_t rho = 0;
  double cum = 0.0;
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    cum += scratch[i];
    const double t = (cum - 1.0) / static_cast<double>(i + 1);
    if (scratch[i] - t > 0.0) {
      rho = i + 1;
      css = cum;
    }
  }
  if (rho == 0) {
    // All mass below threshold; return uniform point.
    std::fill(out.begin(), out.end(), 1.0 / static_cast<double>(v.size()));
    return;
  }
  const double theta = (css - 1.0) / static_cast<double>(rho);
  for (std::size_t i = 0; i < v.size(); ++i)
    out[i] = std::max(v[i] - theta, 0.0);
}

}  // namespace hbosim
