#pragma once

#include <cstdint>

/// \file types.hpp
/// Fundamental aliases shared across the hbosim libraries.
///
/// All simulated time is kept in double-precision *seconds*; latencies
/// reported to the user are converted to milliseconds at the edges (the
/// paper reports milliseconds throughout).

namespace hbosim {

/// Simulated time in seconds since simulation start.
using SimTime = double;

/// A span of simulated time, in seconds.
using SimDuration = double;

/// Milliseconds -> seconds.
constexpr SimDuration ms(double v) { return v * 1e-3; }

/// Seconds -> milliseconds.
constexpr double to_ms(SimDuration v) { return v * 1e3; }

/// Monotonically increasing identifier types. Using distinct structs would
/// be heavier than the codebase needs; the aliases keep call sites honest.
using TaskId = std::uint32_t;
using ObjectId = std::uint32_t;
using JobId = std::uint64_t;

}  // namespace hbosim
