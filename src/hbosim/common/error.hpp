#pragma once

#include <stdexcept>
#include <string>

/// \file error.hpp
/// Error handling for hbosim. Programming and configuration errors throw
/// hbosim::Error; the HB_REQUIRE / HB_ASSERT macros attach file/line
/// context. Simulation code never swallows errors silently.

namespace hbosim {

/// Exception type thrown for invariant violations and invalid arguments.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void fail(const char* expr, const char* file, int line,
                       const std::string& message);
}  // namespace detail

}  // namespace hbosim

/// Precondition check: always active (not compiled out in release builds);
/// these guard public API boundaries.
#define HB_REQUIRE(expr, message)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::hbosim::detail::fail(#expr, __FILE__, __LINE__, (message));     \
    }                                                                   \
  } while (0)

/// Internal invariant check; same behaviour as HB_REQUIRE but signals a
/// library bug rather than caller misuse.
#define HB_ASSERT(expr, message) HB_REQUIRE(expr, message)
