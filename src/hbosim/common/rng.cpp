#include "hbosim/common/rng.hpp"

#include <cmath>
#include <numbers>

#include "hbosim/common/error.hpp"

namespace hbosim {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 significant bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  HB_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  HB_REQUIRE(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * (UINT64_MAX / n);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to keep log() finite.
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) {
  HB_REQUIRE(sigma >= 0.0, "normal() requires sigma >= 0");
  return mean + sigma * normal();
}

double Rng::gamma(double shape) {
  HB_REQUIRE(shape > 0.0, "gamma() requires shape > 0");
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang trick).
    const double u = uniform();
    return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

std::vector<double> Rng::dirichlet(std::size_t n, double alpha) {
  HB_REQUIRE(n > 0, "dirichlet requires n > 0");
  std::vector<double> out(n);
  dirichlet(std::span<double>(out), alpha);
  return out;
}

void Rng::dirichlet(std::span<double> out, double alpha) {
  HB_REQUIRE(!out.empty(), "dirichlet requires n > 0");
  double sum = 0.0;
  for (auto& v : out) {
    v = gamma(alpha);
    sum += v;
  }
  if (sum <= 0.0) {
    // Numerically degenerate draw; fall back to the simplex center.
    for (auto& v : out) v = 1.0 / static_cast<double>(out.size());
    return;
  }
  for (auto& v : out) v /= sum;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(uniform_index(i));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace hbosim
