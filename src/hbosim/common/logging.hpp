#pragma once

#include <functional>
#include <sstream>
#include <string>

/// \file logging.hpp
/// Tiny leveled logger. Default level is Warn so tests and benches stay
/// quiet; examples raise it to Info to narrate what the framework does.
///
/// Components may override the global level individually
/// (`set_component_level("bo", LogLevel::Debug)`), and a process-wide hook
/// can observe every emitted line — telemetry uses it to route lines at
/// Warn and above into the trace event stream while a session is active.

namespace hbosim {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Per-component override of the global level; pass the exact component
/// string used at the log site (e.g. "fleet"). Thread-safe.
void set_component_level(const std::string& component, LogLevel level);
/// Drop every per-component override.
void clear_component_levels();

/// Would a line at `level` from `component` be emitted right now? The
/// HB_LOG macros consult this before paying for message formatting.
bool log_enabled(LogLevel level, const char* component);

/// Observer invoked (outside the sink lock, but under an internal hook
/// lock) for every line that passes the level check, after it is written
/// to stderr. One hook at a time; pass nullptr to uninstall — the call
/// blocks until any in-flight invocation returns, so after it the old
/// hook's captured state may be safely destroyed. Because of that lock,
/// hooks must not log or (un)install hooks themselves. Used by
/// telemetry::TelemetrySession.
using LogEventHook =
    std::function<void(LogLevel, const std::string& component,
                       const std::string& message)>;
void set_log_event_hook(LogEventHook hook);

/// Emit one line to stderr as `[level] component: message`.
void log_message(LogLevel level, const std::string& component,
                 const std::string& message);

namespace detail {
struct LogLine {
  LogLevel level;
  const char* component;
  std::ostringstream stream;

  LogLine(LogLevel lvl, const char* comp) : level(lvl), component(comp) {}
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream << v;
    return *this;
  }
};
}  // namespace detail

}  // namespace hbosim

/// Statement-only logging macro. The for-loop wrapper skips message
/// formatting entirely when the line would be dropped, without the
/// dangling-else hazard of an `if`-based early-out.
#define HB_LOG(level, component)                                          \
  for (bool hb_log_on = ::hbosim::log_enabled(level, component);          \
       hb_log_on; hb_log_on = false)                                     \
  ::hbosim::detail::LogLine(level, component)
#define HB_LOG_TRACE(component) HB_LOG(::hbosim::LogLevel::Trace, component)
#define HB_LOG_DEBUG(component) HB_LOG(::hbosim::LogLevel::Debug, component)
#define HB_LOG_INFO(component) HB_LOG(::hbosim::LogLevel::Info, component)
#define HB_LOG_WARN(component) HB_LOG(::hbosim::LogLevel::Warn, component)
#define HB_LOG_ERROR(component) HB_LOG(::hbosim::LogLevel::Error, component)
