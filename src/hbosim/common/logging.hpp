#pragma once

#include <sstream>
#include <string>

/// \file logging.hpp
/// Tiny leveled logger. Default level is Warn so tests and benches stay
/// quiet; examples raise it to Info to narrate what the framework does.

namespace hbosim {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line to stderr as `[level] component: message`.
void log_message(LogLevel level, const std::string& component,
                 const std::string& message);

namespace detail {
struct LogLine {
  LogLevel level;
  const char* component;
  std::ostringstream stream;

  LogLine(LogLevel lvl, const char* comp) : level(lvl), component(comp) {}
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream << v;
    return *this;
  }
};
}  // namespace detail

}  // namespace hbosim

#define HB_LOG(level, component) \
  ::hbosim::detail::LogLine(level, component)
#define HB_LOG_INFO(component) HB_LOG(::hbosim::LogLevel::Info, component)
#define HB_LOG_DEBUG(component) HB_LOG(::hbosim::LogLevel::Debug, component)
#define HB_LOG_WARN(component) HB_LOG(::hbosim::LogLevel::Warn, component)
