#include "hbosim/common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "hbosim/common/error.hpp"

namespace hbosim {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  HB_REQUIRE(!header_.empty(), "TextTable requires a non-empty header");
}

void TextTable::add_row(std::vector<std::string> cells) {
  HB_REQUIRE(cells.size() == header_.size(),
             "TextTable row width must match header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    os << '\n';
  };
  emit(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> header)
    : os_(os), columns_(header.size()) {
  HB_REQUIRE(columns_ > 0, "CsvWriter requires a non-empty header");
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) os_ << ',';
    os_ << header[i];
  }
  os_ << '\n';
}

void CsvWriter::row(const std::vector<double>& values) {
  HB_REQUIRE(values.size() == columns_, "CsvWriter row width mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os_ << ',';
    os_ << values[i];
  }
  os_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& values) {
  HB_REQUIRE(values.size() == columns_, "CsvWriter row width mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os_ << ',';
    os_ << values[i];
  }
  os_ << '\n';
}

}  // namespace hbosim
