#pragma once

#include <ostream>
#include <string>
#include <vector>

/// \file table.hpp
/// Text table and CSV emitters used by the bench harnesses to print the
/// paper's tables and figure series in a stable, diffable format.

namespace hbosim {

/// An aligned plain-text table (markdown-ish pipes).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with the given precision.
  static std::string num(double v, int precision = 2);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Streams rows of comma-separated values with a header; used to emit
/// figure series (x, series1, series2, ...) that plot directly.
class CsvWriter {
 public:
  CsvWriter(std::ostream& os, std::vector<std::string> header);

  void row(const std::vector<double>& values);
  void row(const std::vector<std::string>& values);

 private:
  std::ostream& os_;
  std::size_t columns_;
};

}  // namespace hbosim
