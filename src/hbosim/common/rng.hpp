#pragma once

#include <cstdint>
#include <span>
#include <vector>

/// \file rng.hpp
/// Deterministic random number generation.
///
/// Everything stochastic in hbosim flows through an explicitly seeded Rng so
/// every experiment in bench/ is reproducible bit-for-bit run to run. The
/// generator is xoshiro256** seeded via SplitMix64, following the reference
/// implementations by Blackman & Vigna.

namespace hbosim {

/// SplitMix64 — used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second draw).
  double normal();

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Gamma(shape, 1) via Marsaglia-Tsang; shape > 0.
  double gamma(double shape);

  /// A point uniformly distributed on the (n-1)-simplex (entries >= 0,
  /// summing to 1), drawn as Dirichlet(alpha, ..., alpha).
  std::vector<double> dirichlet(std::size_t n, double alpha = 1.0);

  /// Same draw, written into `out` (out.size() components) without
  /// allocating. Consumes exactly the same generator sequence and produces
  /// bitwise the same values as dirichlet(out.size(), alpha).
  void dirichlet(std::span<double> out, double alpha = 1.0);

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derive an independent child generator (stable given call order).
  Rng split();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace hbosim
