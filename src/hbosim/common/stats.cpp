#include "hbosim/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "hbosim/common/error.hpp"

namespace hbosim {

void RunningStat::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::reset() { *this = RunningStat{}; }

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stdev() const { return std::sqrt(variance()); }

Ewma::Ewma(double alpha) : alpha_(alpha) {
  HB_REQUIRE(alpha > 0.0 && alpha <= 1.0, "Ewma alpha must be in (0,1]");
}

void Ewma::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

double Ewma::value() const {
  HB_REQUIRE(initialized_, "Ewma::value on empty accumulator");
  return value_;
}

double percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, p);
}

double percentile_sorted(const std::vector<double>& sorted, double p) {
  HB_REQUIRE(!sorted.empty(), "percentile of an empty sample");
  HB_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p must be in [0,100]");
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

P2Quantile::P2Quantile(double p) : p_(p) {
  HB_REQUIRE(p > 0.0 && p < 1.0, "P2Quantile quantile must be in (0,1)");
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    q_[count_++] = x;
    if (count_ == 5) {
      std::sort(q_, q_ + 5);
      for (int i = 0; i < 5; ++i) n_[i] = static_cast<double>(i + 1);
      dn_[0] = 0.0;
      dn_[1] = p_ / 2.0;
      dn_[2] = p_;
      dn_[3] = (1.0 + p_) / 2.0;
      dn_[4] = 1.0;
      for (int i = 0; i < 5; ++i) np_[i] = 1.0 + 4.0 * dn_[i];
    }
    return;
  }
  ++count_;

  // Locate the cell, clamping the extreme markers to the sample range.
  int k;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x >= q_[4]) {
    q_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= q_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) n_[i] += 1.0;
  for (int i = 0; i < 5; ++i) np_[i] += dn_[i];

  // Nudge the three interior markers toward their desired positions:
  // piecewise-parabolic (P²) height prediction, falling back to linear
  // when the parabola would break marker monotonicity.
  for (int i = 1; i <= 3; ++i) {
    const double d = np_[i] - n_[i];
    if ((d >= 1.0 && n_[i + 1] - n_[i] > 1.0) ||
        (d <= -1.0 && n_[i - 1] - n_[i] < -1.0)) {
      const double s = d >= 0.0 ? 1.0 : -1.0;
      const double qp =
          q_[i] + s / (n_[i + 1] - n_[i - 1]) *
                      ((n_[i] - n_[i - 1] + s) * (q_[i + 1] - q_[i]) /
                           (n_[i + 1] - n_[i]) +
                       (n_[i + 1] - n_[i] - s) * (q_[i] - q_[i - 1]) /
                           (n_[i] - n_[i - 1]));
      if (q_[i - 1] < qp && qp < q_[i + 1]) {
        q_[i] = qp;
      } else {
        const int j = i + static_cast<int>(s);
        q_[i] += s * (q_[j] - q_[i]) / (n_[j] - n_[i]);
      }
      n_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  HB_REQUIRE(count_ > 0, "P2Quantile::value on an empty sketch");
  if (count_ < 5) {
    // Exact while the sample still fits in the marker array: same
    // interpolation as percentile().
    std::vector<double> sorted(q_, q_ + count_);
    std::sort(sorted.begin(), sorted.end());
    return percentile_sorted(sorted, p_ * 100.0);
  }
  return q_[2];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  HB_REQUIRE(bins > 0, "Histogram requires at least one bin");
  HB_REQUIRE(hi > lo, "Histogram requires hi > lo");
}

void Histogram::add(double x) {
  const auto raw = static_cast<long>(std::floor((x - lo_) / width_));
  const long clamped =
      std::clamp(raw, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(clamped)];
  ++total_;
}

double Histogram::bin_lower(std::size_t i) const {
  HB_REQUIRE(i < counts_.size(), "Histogram bin index out of range");
  return lo_ + width_ * static_cast<double>(i);
}

}  // namespace hbosim
