#include "hbosim/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "hbosim/common/error.hpp"

namespace hbosim {

void RunningStat::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::reset() { *this = RunningStat{}; }

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stdev() const { return std::sqrt(variance()); }

Ewma::Ewma(double alpha) : alpha_(alpha) {
  HB_REQUIRE(alpha > 0.0 && alpha <= 1.0, "Ewma alpha must be in (0,1]");
}

void Ewma::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

double Ewma::value() const {
  HB_REQUIRE(initialized_, "Ewma::value on empty accumulator");
  return value_;
}

double percentile(std::vector<double> values, double p) {
  HB_REQUIRE(!values.empty(), "percentile of an empty sample");
  HB_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p must be in [0,100]");
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  HB_REQUIRE(bins > 0, "Histogram requires at least one bin");
  HB_REQUIRE(hi > lo, "Histogram requires hi > lo");
}

void Histogram::add(double x) {
  const auto raw = static_cast<long>(std::floor((x - lo_) / width_));
  const long clamped =
      std::clamp(raw, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(clamped)];
  ++total_;
}

double Histogram::bin_lower(std::size_t i) const {
  HB_REQUIRE(i < counts_.size(), "Histogram bin index out of range");
  return lo_ + width_ * static_cast<double>(i);
}

}  // namespace hbosim
