#include "hbosim/common/error.hpp"

#include <sstream>

namespace hbosim::detail {

void fail(const char* expr, const char* file, int line,
          const std::string& message) {
  std::ostringstream os;
  os << message << " [check `" << expr << "` failed at " << file << ':'
     << line << ']';
  throw Error(os.str());
}

}  // namespace hbosim::detail
