#pragma once

#include <cstddef>
#include <span>
#include <vector>

/// \file matrix.hpp
/// Minimal dense linear algebra for the Gaussian-process code: a row-major
/// Matrix with Cholesky factorization and triangular solves. Sized for the
/// small systems BO produces (tens of observations), so clarity beats
/// cache-blocking here.

namespace hbosim {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Matrix-vector product (this * v). v.size() must equal cols().
  std::vector<double> matvec(std::span<const double> v) const;

  /// Transposed matrix-vector product (this^T * v). v.size() == rows().
  std::vector<double> matvec_transposed(std::span<const double> v) const;

  bool is_square() const { return rows_ == cols_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
/// Adds `jitter` to the diagonal before factorizing; throws hbosim::Error if
/// the matrix is not positive definite even with jitter escalation disabled.
class Cholesky {
 public:
  /// Factorize A (+ jitter*I). A must be square and symmetric.
  explicit Cholesky(const Matrix& a, double jitter = 0.0);

  std::size_t size() const { return l_.rows(); }
  const Matrix& lower() const { return l_; }

  /// Solve L y = b (forward substitution).
  std::vector<double> solve_lower(std::span<const double> b) const;

  /// Solve L^T x = b (back substitution).
  std::vector<double> solve_upper(std::span<const double> b) const;

  /// Solve (L L^T) x = b.
  std::vector<double> solve(std::span<const double> b) const;

  /// log det(A) = 2 * sum log L_ii.
  double log_det() const;

 private:
  Matrix l_;
};

}  // namespace hbosim
