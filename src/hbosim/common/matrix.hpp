#pragma once

#include <cstddef>
#include <span>
#include <vector>

/// \file matrix.hpp
/// Minimal dense linear algebra for the Gaussian-process code: a row-major
/// Matrix with Cholesky factorization and triangular solves. Sized for the
/// small systems BO produces (tens of observations), so clarity beats
/// cache-blocking here — but the BO hot loop refits the surrogate once per
/// observation, so the storage supports growing in place (reserve +
/// conservative_resize) and the solves have allocation-free span overloads.

namespace hbosim {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Distance (in doubles) between consecutive rows of the backing store.
  /// Equals cols() unless capacity was reserved wider; row data itself is
  /// always contiguous.
  std::size_t stride() const { return stride_; }

  /// Pre-allocate backing storage for a matrix of up to `rows` x `cols`
  /// without changing the logical shape. Existing values are preserved.
  /// After reserve, conservative_resize within the reserved shape never
  /// reallocates.
  void reserve(std::size_t rows, std::size_t cols);

  /// Grow (or shrink) to new_rows x new_cols, preserving every value in
  /// the overlapping top-left block and zero-filling newly exposed cells.
  /// In-place (no allocation, no data movement) whenever the new shape
  /// fits the reserved capacity; otherwise reallocates with geometric
  /// growth so repeated +1 growth is amortized O(1) allocations.
  void conservative_resize(std::size_t new_rows, std::size_t new_cols);

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Contiguous view of row r (length cols()).
  std::span<const double> row(std::size_t r) const;
  std::span<double> row(std::size_t r);

  /// Matrix-vector product (this * v). v.size() must equal cols().
  std::vector<double> matvec(std::span<const double> v) const;

  /// In-place matrix-vector product: out = this * v. out.size() == rows().
  /// out must not alias v. Does not allocate.
  void matvec(std::span<const double> v, std::span<double> out) const;

  /// Transposed matrix-vector product (this^T * v). v.size() == rows().
  std::vector<double> matvec_transposed(std::span<const double> v) const;

  /// In-place transposed product: out = this^T * v. out.size() == cols().
  /// out must not alias v. Does not allocate.
  void matvec_transposed(std::span<const double> v,
                         std::span<double> out) const;

  bool is_square() const { return rows_ == cols_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
  std::vector<double> data_;
};

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
/// Adds `jitter` to the diagonal before factorizing; throws hbosim::Error if
/// the matrix is not positive definite even with jitter escalation disabled.
class Cholesky {
 public:
  /// Factorize A (+ jitter*I). A must be square and symmetric.
  explicit Cholesky(const Matrix& a, double jitter = 0.0);

  std::size_t size() const { return l_.rows(); }
  const Matrix& lower() const { return l_; }

  /// Pre-allocate the factor's storage for up to `capacity` rows so that
  /// append_row below never reallocates until the capacity is exceeded.
  void reserve(std::size_t capacity);

  /// Bordered rank-1 update: extend the factor of the n x n matrix A to
  /// the factor of the (n+1) x (n+1) matrix obtained by appending one
  /// symmetric row/column. `off_diag` holds the new off-diagonal entries
  /// a(n, 0..n-1); `diag` is a(n, n). The same jitter passed at
  /// construction is applied to the new diagonal entry. O(n^2), and the
  /// result is bitwise identical to refactorizing the grown matrix from
  /// scratch (the update performs exactly the arithmetic the full
  /// factorization would perform for its last row). Throws if the grown
  /// matrix is not positive definite; the factor is unchanged on throw.
  void append_row(std::span<const double> off_diag, double diag);

  /// Solve L y = b (forward substitution).
  std::vector<double> solve_lower(std::span<const double> b) const;

  /// In-place forward substitution; out may alias b. Does not allocate.
  void solve_lower(std::span<const double> b, std::span<double> out) const;

  /// Forward-substitute L Y = B for `count` right-hand sides at once,
  /// laid out as rows: B(i, c) = b[i * stride + c] for 0 <= i < size(),
  /// 0 <= c < count. Solves in place (B becomes Y); does not allocate.
  /// Each column agrees with solve_lower on that column to within a few
  /// ulp (the batched update unrolls the accumulation and may contract to
  /// FMA where the scalar baseline cannot). The row-major layout lets the
  /// inner loops vectorize across right-hand sides — this is the
  /// per-suggest acquisition batch path.
  void solve_lower_many(double* b, std::size_t count,
                        std::size_t stride) const;

  /// Solve L^T x = b (back substitution).
  std::vector<double> solve_upper(std::span<const double> b) const;

  /// In-place back substitution; out may alias b. Does not allocate.
  void solve_upper(std::span<const double> b, std::span<double> out) const;

  /// Solve (L L^T) x = b.
  std::vector<double> solve(std::span<const double> b) const;

  /// In-place full solve; out may alias b. Does not allocate.
  void solve(std::span<const double> b, std::span<double> out) const;

  /// log det(A) = 2 * sum log L_ii.
  double log_det() const;

 private:
  Matrix l_;
  double jitter_ = 0.0;
};

}  // namespace hbosim
