#include "hbosim/common/fastmath.hpp"

#include <bit>
#include <cmath>
#include <cstdint>

// Function multiversioning: compile each hot loop for the x86-64 baseline
// plus AVX2 and AVX-512 and pick the best at load time via ifunc. On other
// platforms the plain definition is used. The loops are written so GCC's
// vectorizer handles them (no libm calls with errno side effects, no
// branches in the loop body); fastmath.cpp is built with
// -ftree-vectorize -fvect-cost-model=dynamic -fno-math-errno (see
// src/CMakeLists.txt).
//
// Under ThreadSanitizer the clones are disabled: the ifunc resolvers run
// during relocation, before the TSan runtime has initialized its
// thread-state TLS, and any instrumented code reached from a resolver
// segfaults at startup (reproducible with a 5-line target_clones program).
#if defined(__SANITIZE_THREAD__)
#define HB_FASTMATH_NO_CLONES 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HB_FASTMATH_NO_CLONES 1
#endif
#endif

#if defined(__x86_64__) && defined(__gnu_linux__) && defined(__GNUC__) && \
    !defined(HB_FASTMATH_NO_CLONES)
#define HB_FASTMATH_CLONES \
  __attribute__((target_clones("default", "avx2", "arch=x86-64-v4")))
#else
#define HB_FASTMATH_CLONES
#endif

namespace hbosim::fastmath {

namespace {

// Cephes-style expression of exp(x): argument reduction x = n ln2 + px
// with round-to-nearest n (the 1.5*2^52 shift trick keeps the loop
// branch-free and vectorizable; std::floor blocks GCC's vectorizer), then
// a degree-6/7 rational approximation on |px| <= ln2/2, then scaling by
// 2^n assembled directly from the exponent bits. Max error ~2 ulp.
inline double exp_core(double v) {
  constexpr double kLog2e = 1.4426950408889634073599;
  constexpr double kShift = 6755399441055744.0;  // 1.5 * 2^52
  constexpr double kC1 = 6.93145751953125e-1;
  constexpr double kC2 = 1.42860682030941723212e-6;
  constexpr double kP0 = 1.26177193074810590878e-4;
  constexpr double kP1 = 3.02994407707441961300e-2;
  constexpr double kP2 = 9.99999999999999999910e-1;
  constexpr double kQ0 = 3.00198505138664455042e-6;
  constexpr double kQ1 = 2.52448340349684104192e-3;
  constexpr double kQ2 = 2.27265548208155028766e-1;
  constexpr double kQ3 = 2.00000000000000000005e0;
  v = v < -700.0 ? -700.0 : v;
  v = v > 700.0 ? 700.0 : v;
  const double t = v * kLog2e + kShift;
  const double nf = t - kShift;
  const int ni = static_cast<int>(nf);
  const double px = v - nf * kC1 - nf * kC2;
  const double xx = px * px;
  const double p = px * ((kP0 * xx + kP1) * xx + kP2);
  const double q = (((kQ0 * xx + kQ1) * xx + kQ2) * xx + kQ3);
  const double e = 1.0 + 2.0 * (p / (q - p));
  const double scale =
      std::bit_cast<double>(static_cast<std::uint64_t>(ni + 1023) << 52);
  return e * scale;
}

}  // namespace

HB_FASTMATH_CLONES
void exp_many(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = exp_core(x[i]);
}

HB_FASTMATH_CLONES
void axpy(double a, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

HB_FASTMATH_CLONES
void sq_accum(const double* x, double* acc, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += x[i] * x[i];
}

HB_FASTMATH_CLONES
void sq_dist_accum(const double* x, double c, double* acc, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double d = x[i] - c;
    acc[i] += d * d;
  }
}

HB_FASTMATH_CLONES
void sqrt_many(double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = std::sqrt(x[i]);
}

HB_FASTMATH_CLONES
void div_many(double* x, double d, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] /= d;
}

// The block routines take __restrict__ pointers (callers pass distinct
// buffers) and mark provably independent inner loops with GCC ivdep: the
// vectorizer otherwise emits runtime overlap checks per row, which at
// 64-candidate blocks cost more than the arithmetic itself.
HB_FASTMATH_CLONES
void dist_rows(const double* __restrict__ ct, const double* __restrict__ x,
               std::size_t n, std::size_t d, std::size_t bc,
               std::size_t bstride, double* __restrict__ out) {
  for (std::size_t i = 0; i < n; ++i) {
    double* row = out + i * bstride;
    for (std::size_t c = 0; c < bstride; ++c) row[c] = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double xc = x[i * d + j];
      const double* cj = ct + j * bstride;
#pragma GCC ivdep
      for (std::size_t c = 0; c < bc; ++c) {
        const double dd = cj[c] - xc;
        row[c] += dd * dd;
      }
    }
    for (std::size_t c = 0; c < bc; ++c) row[c] = std::sqrt(row[c]);
  }
}

HB_FASTMATH_CLONES
void accum_weighted_rows(const double* __restrict__ v, std::size_t n,
                         std::size_t stride, const double* __restrict__ w,
                         double* __restrict__ out, std::size_t bc) {
  for (std::size_t i = 0; i < n; ++i) {
    const double wi = w[i];
    const double* vi = v + i * stride;
#pragma GCC ivdep
    for (std::size_t c = 0; c < bc; ++c) out[c] += wi * vi[c];
  }
}

HB_FASTMATH_CLONES
void accum_rowsq(const double* __restrict__ v, std::size_t n,
                 std::size_t stride, double* __restrict__ out,
                 std::size_t bc) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* vi = v + i * stride;
#pragma GCC ivdep
    for (std::size_t c = 0; c < bc; ++c) out[c] += vi[c] * vi[c];
  }
}

namespace {

/// Forward substitution over `count` right-hand sides with the k loop
/// unrolled by 8: the row update b(i, :) -= sum of eight L(i, k) * b(k, :)
/// terms stores each output row once per eight k's instead of once per k,
/// which is what limits the naive k-at-a-time form (the whole block lives
/// in L1, so the store port, not bandwidth, is the bottleneck). The
/// eight-term sum reassociates the per-column accumulation, so columns
/// agree with the scalar solve_lower only to a few ulp — callers of
/// trsm_lower_inplace accept that (see fastmath.hpp). Templated on the
/// column count so the kBlock==64 hot case gets fixed trip counts.
template <std::size_t kFixed>
HB_FASTMATH_CLONES inline void trsm_rows(const double* __restrict__ l,
                                         std::size_t lstride, std::size_t n,
                                         double* __restrict__ b,
                                         std::size_t count,
                                         std::size_t bstride) {
  const std::size_t cn = kFixed != 0 ? kFixed : count;
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = l + i * lstride;
    double* bi = b + i * bstride;
    std::size_t k = 0;
    for (; k + 8 <= i; k += 8) {
      const double a0 = li[k], a1 = li[k + 1], a2 = li[k + 2], a3 = li[k + 3],
                   a4 = li[k + 4], a5 = li[k + 5], a6 = li[k + 6],
                   a7 = li[k + 7];
      const double *p0 = b + (k + 0) * bstride, *p1 = b + (k + 1) * bstride,
                   *p2 = b + (k + 2) * bstride, *p3 = b + (k + 3) * bstride,
                   *p4 = b + (k + 4) * bstride, *p5 = b + (k + 5) * bstride,
                   *p6 = b + (k + 6) * bstride, *p7 = b + (k + 7) * bstride;
#pragma GCC ivdep
      for (std::size_t c = 0; c < cn; ++c)
        bi[c] -= a0 * p0[c] + a1 * p1[c] + a2 * p2[c] + a3 * p3[c] +
                 a4 * p4[c] + a5 * p5[c] + a6 * p6[c] + a7 * p7[c];
    }
    for (; k < i; ++k) {
      const double a = li[k];
      const double* bk = b + k * bstride;
#pragma GCC ivdep
      for (std::size_t c = 0; c < cn; ++c) bi[c] -= a * bk[c];
    }
    const double dii = li[i];
#pragma GCC ivdep
    for (std::size_t c = 0; c < cn; ++c) bi[c] /= dii;
  }
}

}  // namespace

void trsm_lower_inplace(const double* l, std::size_t lstride, std::size_t n,
                        double* b, std::size_t count, std::size_t bstride) {
  // 64 is predict_many's block width; the specialization's fixed trip
  // counts are worth ~15% there and it is bitwise identical to the
  // generic path (same unroll pattern, same operation order).
  if (count == 64) {
    trsm_rows<64>(l, lstride, n, b, count, bstride);
  } else {
    trsm_rows<0>(l, lstride, n, b, count, bstride);
  }
}

// The kernel-from-distance loops hoist the division by the length scale
// out of the loop as a reciprocal multiply — the batched path is already
// specified only to ulp-level agreement with the scalar from_distance, and
// one vdivpd per element would otherwise dominate the loop.
HB_FASTMATH_CLONES
void matern52_from_r(double length, double sigma2, const double* r,
                     double* out, std::size_t n) {
  const double scale = std::sqrt(5.0) / length;
  for (std::size_t i = 0; i < n; ++i) {
    const double s = r[i] * scale;
    out[i] = sigma2 * (1.0 + s + s * s / 3.0) * exp_core(-s);
  }
}

HB_FASTMATH_CLONES
void matern32_from_r(double length, double sigma2, const double* r,
                     double* out, std::size_t n) {
  const double scale = std::sqrt(3.0) / length;
  for (std::size_t i = 0; i < n; ++i) {
    const double s = r[i] * scale;
    out[i] = sigma2 * (1.0 + s) * exp_core(-s);
  }
}

HB_FASTMATH_CLONES
void rbf_from_r(double length, double sigma2, const double* r, double* out,
                std::size_t n) {
  const double neg_inv = -1.0 / (2.0 * length * length);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = sigma2 * exp_core(r[i] * r[i] * neg_inv);
  }
}

}  // namespace hbosim::fastmath
