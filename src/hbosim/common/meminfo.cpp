#include "hbosim/common/meminfo.hpp"

#include <cstdio>
#include <cstring>

namespace hbosim {

namespace {

/// Scan /proc/self/status for a "Key:   1234 kB" line; 0 if absent.
std::size_t status_field_bytes(const char* key) {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  const std::size_t key_len = std::strlen(key);
  std::size_t bytes = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      unsigned long long kb = 0;
      if (std::sscanf(line + key_len + 1, "%llu", &kb) == 1) {
        bytes = static_cast<std::size_t>(kb) * 1024;
      }
      break;
    }
  }
  std::fclose(f);
  return bytes;
#else
  (void)key;
  return 0;
#endif
}

}  // namespace

std::size_t current_rss_bytes() { return status_field_bytes("VmRSS"); }

std::size_t peak_rss_bytes() { return status_field_bytes("VmHWM"); }

}  // namespace hbosim
