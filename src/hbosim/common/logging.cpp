#include "hbosim/common/logging.hpp"

#include <atomic>
#include <iostream>
#include <map>
#include <mutex>
#include <utility>

namespace hbosim {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

// Fast-path flag so log_enabled() skips the override map (and its lock)
// entirely in the common no-overrides configuration.
std::atomic<bool> g_has_overrides{false};

std::mutex& override_mutex() {
  static std::mutex mu;
  return mu;
}
std::map<std::string, LogLevel>& overrides() {
  static std::map<std::string, LogLevel> map;
  return map;
}

// One line is emitted per lock hold so concurrent fleet workers never
// interleave characters of different records in the sink.
std::mutex& sink_mutex() {
  static std::mutex mu;
  return mu;
}

std::atomic<bool> g_has_hook{false};
std::mutex& hook_mutex() {
  static std::mutex mu;
  return mu;
}
LogEventHook& hook() {
  static LogEventHook fn;
  return fn;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "trace";
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_component_level(const std::string& component, LogLevel level) {
  std::lock_guard<std::mutex> lock(override_mutex());
  overrides()[component] = level;
  g_has_overrides.store(true, std::memory_order_release);
}

void clear_component_levels() {
  std::lock_guard<std::mutex> lock(override_mutex());
  overrides().clear();
  g_has_overrides.store(false, std::memory_order_release);
}

bool log_enabled(LogLevel level, const char* component) {
  if (level >= LogLevel::Off) return false;
  if (g_has_overrides.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(override_mutex());
    auto it = overrides().find(component);
    if (it != overrides().end()) return level >= it->second;
  }
  return level >= g_level.load(std::memory_order_relaxed);
}

void set_log_event_hook(LogEventHook new_hook) {
  std::lock_guard<std::mutex> lock(hook_mutex());
  hook() = std::move(new_hook);
  g_has_hook.store(static_cast<bool>(hook()), std::memory_order_release);
}

void log_message(LogLevel level, const std::string& component,
                 const std::string& message) {
  if (!log_enabled(level, component.c_str())) return;
  {
    std::lock_guard<std::mutex> lock(sink_mutex());
    std::cerr << '[' << level_name(level) << "] " << component << ": "
              << message << '\n';
  }
  if (g_has_hook.load(std::memory_order_acquire)) {
    // Invoke under hook_mutex so set_log_event_hook(nullptr) blocks until
    // any in-flight invocation returns — the installer (e.g.
    // ~TelemetrySession) may destroy observer state right after
    // uninstalling. Hooks must therefore not log or (un)install hooks.
    std::lock_guard<std::mutex> lock(hook_mutex());
    if (hook()) hook()(level, component, message);
  }
}

namespace detail {
LogLine::~LogLine() { log_message(level, component, stream.str()); }
}  // namespace detail

}  // namespace hbosim
