#include "hbosim/common/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace hbosim {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

// One line is emitted per lock hold so concurrent fleet workers never
// interleave characters of different records in the sink.
std::mutex& sink_mutex() {
  static std::mutex mu;
  return mu;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "trace";
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& component,
                 const std::string& message) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(sink_mutex());
  std::cerr << '[' << level_name(level) << "] " << component << ": "
            << message << '\n';
}

namespace detail {
LogLine::~LogLine() { log_message(level, component, stream.str()); }
}  // namespace detail

}  // namespace hbosim
