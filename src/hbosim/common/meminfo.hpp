#pragma once

#include <cstddef>

/// \file meminfo.hpp
/// Process memory introspection for the fleet-scale benches and demos.
/// Linux-only (reads /proc/self/status); returns 0 where unavailable so
/// callers can print "n/a" instead of gating on garbage.

namespace hbosim {

/// Current resident set size (VmRSS) in bytes; 0 when unavailable.
std::size_t current_rss_bytes();

/// Peak resident set size (VmHWM) in bytes; 0 when unavailable. Monotone
/// over the process lifetime — attribute per-phase peaks by sampling
/// before and after, or by ordering phases smallest-first.
std::size_t peak_rss_bytes();

}  // namespace hbosim
