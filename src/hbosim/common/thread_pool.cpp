#include "hbosim/common/thread_pool.hpp"

#include <algorithm>

#include "hbosim/common/error.hpp"

namespace hbosim {

ThreadPool::ThreadPool(std::size_t threads) {
  HB_REQUIRE(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + in_flight_;
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    HB_REQUIRE(accepting_, "submit() on a shut-down thread pool");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!accepting_ && workers_.empty()) return;  // already shut down
    accepting_ = false;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return !queue_.empty() || !accepting_; });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();  // packaged_task captures exceptions into the future
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
  }
}

std::size_t ThreadPool::hardware_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace hbosim
