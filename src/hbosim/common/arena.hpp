#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

/// \file arena.hpp
/// Monotonic bump allocator for per-session DES state. A fleet worker
/// simulates one session, throws everything away, and starts the next —
/// the textbook arena lifecycle. Backing the session's event queue,
/// pending/cancelled id sets, trace series, and solution lookup table with
/// one resettable arena turns a malloc/free per DES event into a pointer
/// bump, and `reset()` recycles the same blocks for the next session so
/// steady-state fleet throughput stops touching the global allocator.
///
/// Scoping model: `ArenaScope` installs an arena as the calling thread's
/// *current* arena; a default-constructed `ArenaAllocator` captures
/// whatever arena is current at container construction time (null -> plain
/// `operator new/delete`, bitwise-identical behaviour to an ordinary
/// std::allocator container). Deallocation into an arena is a no-op — the
/// memory is reclaimed wholesale by `reset()` — so every container using
/// an arena-captured allocator MUST be destroyed before the owner resets.
/// The fleet guarantees this by scoping one session per reset.
///
/// Allocation strategy only: an arena never changes what a simulation
/// computes, so arena-on and arena-off runs are bitwise identical
/// (pinned by tests/test_arena.cpp and the fleet parity test).

namespace hbosim {

class Arena {
 public:
  /// `block_bytes` is the granularity of the underlying heap requests;
  /// single allocations larger than a block get a dedicated block.
  explicit Arena(std::size_t block_bytes = 1 << 16);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` with the given power-of-two alignment. Never
  /// returns null (grows by appending blocks).
  void* allocate(std::size_t bytes, std::size_t align);

  /// Rewind to empty, KEEPING every block for reuse. All memory handed
  /// out since construction / the previous reset is invalidated.
  void reset();

  /// Bytes handed out since the last reset().
  std::size_t bytes_in_use() const { return in_use_; }
  /// Total bytes of heap blocks owned (survives reset — the reuse pool).
  std::size_t bytes_reserved() const { return reserved_; }
  /// Largest bytes_in_use() observed across resets.
  std::size_t high_water_bytes() const { return high_water_; }
  /// Heap blocks requested over the arena's lifetime; flat once the
  /// steady state is reached (the metric the fleet bench watches).
  std::uint64_t block_allocations() const { return block_allocations_; }

  /// The calling thread's current arena (installed by ArenaScope), or
  /// null when allocation should fall through to the global heap.
  static Arena* current();

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t block_ = 0;   ///< Index of the block being bumped.
  std::size_t offset_ = 0;  ///< Bump offset within blocks_[block_].
  std::size_t in_use_ = 0;
  std::size_t reserved_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t block_allocations_ = 0;
};

/// RAII: installs an arena as the thread's current arena, restoring the
/// previous one (supporting nesting) on destruction. Does NOT reset the
/// arena — the owner resets once every arena-backed object is destroyed.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena);
  ~ArenaScope();

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* previous_;
};

/// Standard-allocator adapter. Captures the thread's current arena at
/// construction (or an explicit one); a null arena degrades to the global
/// heap, so arena-agnostic code can use these container types everywhere.
/// The captured pointer travels with the container (and its rebound node
/// allocators), keeping allocate/deallocate routed consistently even if
/// the container outlives the scope that created it — as long as it does
/// not outlive the arena's next reset().
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_move_assignment = std::false_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() : arena_(Arena::current()) {}
  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    // Arena memory is reclaimed wholesale by Arena::reset().
    if (arena_ == nullptr) ::operator delete(p);
  }

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const {
    return arena_ != other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace hbosim
