#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

/// \file thread_pool.hpp
/// A fixed-size worker pool with task futures and graceful shutdown, used
/// by hbosim::fleet to run many independent MonitoredSessions concurrently.
/// Deliberately minimal: no work stealing, no priorities — fleet workloads
/// are coarse-grained (one task simulates an entire session), so a single
/// locked deque is nowhere near contended.

namespace hbosim {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1; use hardware_threads() to size to the
  /// machine). Throws hbosim::Error for a zero-sized pool.
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains remaining queued tasks, then joins all workers.
  ~ThreadPool();

  std::size_t thread_count() const { return workers_.size(); }

  /// Number of tasks accepted but not yet finished executing.
  std::size_t pending() const;

  /// Schedule `fn` and return a future for its result. Exceptions thrown
  /// by `fn` surface from future::get(). Submitting after shutdown()
  /// throws hbosim::Error.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    enqueue([task]() { (*task)(); });
    return result;
  }

  /// Stop accepting new tasks, finish everything already queued, and join
  /// the workers. Idempotent; called by the destructor.
  void shutdown();

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t hardware_threads();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;  ///< Tasks popped but still running.
  bool accepting_ = true;
};

}  // namespace hbosim
