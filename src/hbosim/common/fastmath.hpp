#pragma once

#include <cstddef>

/// \file fastmath.hpp
/// Flat, vectorization-friendly numeric loops for the BO hot path (batched
/// GP prediction and incremental Cholesky maintenance). These are the only
/// routines in hbosim where throughput beats readability: the acquisition
/// step scores ~600 candidates against the surrogate per control period,
/// and each score is an O(n^2) triangular solve plus n kernel evaluations.
///
/// fastmath.cpp is compiled with auto-vectorization enabled and (on
/// x86-64 Linux/GCC-compatible toolchains) function multiversioning, so
/// the same portable C++ dispatches to AVX2/AVX-512 code paths at runtime
/// without changing the build architecture baseline. The routines use
/// plain IEEE arithmetic, but FMA contraction (and, where documented,
/// unrolled accumulation or a polynomial exp) means results may differ
/// from a scalar baseline evaluation by a few ulp; callers that need
/// bitwise reproducibility must use the scalar paths instead.
///
/// All pointers must be non-null for n > 0; `x` and `y`/`acc` must not
/// alias (in-place variants say so explicitly).

namespace hbosim::fastmath {

/// out[i] = exp(x[i]) to within 2 ulp, for x in [-700, 700]; inputs
/// outside that range are clamped first (the BO kernels only ever pass
/// non-positive arguments well inside it). out may alias x.
void exp_many(const double* x, double* out, std::size_t n);

/// y[i] += a * x[i].
void axpy(double a, const double* x, double* y, std::size_t n);

/// acc[i] += x[i] * x[i].
void sq_accum(const double* x, double* acc, std::size_t n);

/// acc[i] += (x[i] - c) * (x[i] - c). One coordinate's contribution to a
/// batch of squared Euclidean distances.
void sq_dist_accum(const double* x, double c, double* acc, std::size_t n);

/// x[i] = sqrt(x[i]), in place. Inputs must be >= 0.
void sqrt_many(double* x, std::size_t n);

/// x[i] /= d, in place. IEEE division (not multiplication by 1/d), so the
/// result is bitwise identical to the scalar triangular solves.
void div_many(double* x, double d, std::size_t n);

/// Distance block for batched GP prediction: out(i, c) = ||z_c - x_i||
/// for n training points x (row-major, n x d) against bc candidates given
/// TRANSPOSED as ct (d x bstride, coordinate-major). Each output row has
/// stride `bstride`; columns bc..bstride-1 are zero-filled so downstream
/// whole-row kernels see benign padding. One call replaces n * d strided
/// passes, keeping the inner loops long enough to vectorize well.
void dist_rows(const double* ct, const double* x, std::size_t n, std::size_t d,
               std::size_t bc, std::size_t bstride, double* out);

/// out[c] += sum_i w[i] * v(i, c) for row-major v (n rows, given stride).
void accum_weighted_rows(const double* v, std::size_t n, std::size_t stride,
                         const double* w, double* out, std::size_t bc);

/// out[c] += sum_i v(i, c)^2 for row-major v (n rows, given stride).
void accum_rowsq(const double* v, std::size_t n, std::size_t stride,
                 double* out, std::size_t bc);

/// In-place multi-right-hand-side forward substitution: solve L Y = B for
/// lower-triangular L (n x n, row stride lstride) and B holding `count`
/// right-hand sides row-major (B(i, c) = b[i * bstride + c]); B becomes Y.
/// IEEE divisions, but the dot-product accumulation is unrolled (and may
/// contract to FMA), so each column agrees with a scalar forward
/// substitution only to a few ulp — fine for the batched predict path,
/// which is specified to ulp-level agreement, but do not use where bitwise
/// reproducibility against Cholesky::solve_lower is required.
void trsm_lower_inplace(const double* l, std::size_t lstride, std::size_t n,
                        double* b, std::size_t count, std::size_t bstride);

/// Matern-5/2 covariance from distances: out[i] = sigma2 * (1 + s + s^2/3)
/// * exp(-s) with s = sqrt(5) * r[i] / length. out may alias r.
void matern52_from_r(double length, double sigma2, const double* r,
                     double* out, std::size_t n);

/// Matern-3/2: out[i] = sigma2 * (1 + s) * exp(-s), s = sqrt(3) * r[i] /
/// length. out may alias r.
void matern32_from_r(double length, double sigma2, const double* r,
                     double* out, std::size_t n);

/// RBF: out[i] = sigma2 * exp(-r[i]^2 / (2 length^2)). out may alias r.
void rbf_from_r(double length, double sigma2, const double* r, double* out,
                std::size_t n);

}  // namespace hbosim::fastmath
