#include "hbosim/common/arena.hpp"

#include <algorithm>

#include "hbosim/common/error.hpp"

namespace hbosim {

namespace {
thread_local Arena* tl_current_arena = nullptr;
}  // namespace

Arena::Arena(std::size_t block_bytes) : block_bytes_(block_bytes) {
  HB_REQUIRE(block_bytes_ > 0, "arena block size must be positive");
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  HB_REQUIRE(align > 0 && (align & (align - 1)) == 0,
             "arena alignment must be a power of two");
  if (bytes == 0) bytes = 1;
  for (;;) {
    if (block_ < blocks_.size()) {
      const Block& b = blocks_[block_];
      const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
      const std::uintptr_t aligned =
          (base + offset_ + align - 1) & ~static_cast<std::uintptr_t>(align - 1);
      if (aligned + bytes <= base + b.size) {
        offset_ = static_cast<std::size_t>(aligned + bytes - base);
        in_use_ += bytes;
        high_water_ = std::max(high_water_, in_use_);
        return reinterpret_cast<void*>(aligned);
      }
      // The tail of this block is too small; move on. Reset() rewinds to
      // block 0, so the stranded tail is only idle until the next session.
      ++block_;
      offset_ = 0;
      continue;
    }
    const std::size_t size = std::max(block_bytes_, bytes + align);
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    reserved_ += size;
    ++block_allocations_;
    offset_ = 0;
  }
}

void Arena::reset() {
  block_ = 0;
  offset_ = 0;
  in_use_ = 0;
}

Arena* Arena::current() { return tl_current_arena; }

ArenaScope::ArenaScope(Arena& arena) : previous_(tl_current_arena) {
  tl_current_arena = &arena;
}

ArenaScope::~ArenaScope() { tl_current_arena = previous_; }

}  // namespace hbosim
