#include "hbosim/baselines/alln.hpp"

namespace hbosim::baselines {

BaselineOutcome run_alln(app::MarApp& app, double settle_s) {
  BaselineOutcome out;
  out.name = "AllN";
  out.triangle_ratio = 1.0;
  out.object_ratios.assign(app.scene().object_count(), 1.0);

  for (const std::string& model : app.task_models()) {
    if (app.device().supports(model, soc::Delegate::Nnapi)) {
      out.allocation.push_back(soc::Delegate::Nnapi);
    } else {
      out.allocation.push_back(app.device().best_delegate(model));
    }
  }

  app.start();
  app.apply_allocation(out.allocation);
  if (!out.object_ratios.empty()) app.apply_object_ratios(out.object_ratios);
  out.metrics = app.run_period(settle_s);
  return out;
}

}  // namespace hbosim::baselines
