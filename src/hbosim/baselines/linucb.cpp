#include "hbosim/baselines/linucb.hpp"

#include "hbosim/common/error.hpp"
#include "hbosim/core/controller.hpp"

namespace hbosim::baselines {

BaselineOutcome run_linucb(app::MarApp& app, double horizon_s,
                           double settle_s,
                           policy::BanditConfig bandit_cfg) {
  HB_REQUIRE(horizon_s > 0.0, "need a positive training horizon");
  policy::BanditSessionConfig cfg;
  policy::BanditSession session(app, cfg, bandit_cfg);
  session.run_until(app.sim().now() + horizon_s);
  HB_REQUIRE(!session.experiences().empty(),
             "horizon too short: the bandit never pulled an arm");

  BaselineOutcome out;
  out.name = "LinUCB";
  // Exploit for the final measurement: apply the arm with the highest
  // learned mean reward for the current context (the last pull may have
  // been an exploration draw), then measure settled like the other
  // baselines measure their steady configuration.
  const std::vector<double> context = policy::extract_context(app);
  const policy::LinUcbBandit& model = *session.model();
  std::size_t greedy = 0;
  double greedy_reward = model.predicted_reward(0, context);
  for (std::size_t a = 1; a < model.arm_count(); ++a) {
    const double r = model.predicted_reward(a, context);
    if (r > greedy_reward) {
      greedy_reward = r;
      greedy = a;
    }
  }
  core::HboController controller(app, cfg.hbo);
  const core::IterationRecord rec =
      controller.apply_configuration(model.arms()[greedy]);
  out.allocation = rec.allocation;
  out.triangle_ratio = rec.triangle_ratio;
  out.object_ratios = rec.object_ratios;
  out.metrics = app.run_period(settle_s);
  return out;
}

}  // namespace hbosim::baselines
