#pragma once

#include "hbosim/baselines/baseline.hpp"

/// \file sml.hpp
/// Static Match Latency (SML): static best-in-isolation allocation, with
/// the total triangle count "gradually reduced until the average latency
/// is similar to that of HBO" (Section V-A). Quantifies how much quality
/// a static allocator must burn to buy HBO's latency.

namespace hbosim::baselines {

struct SmlConfig {
  double target_latency_ratio = 0.0;  ///< HBO's epsilon to match.
  double step = 0.05;                 ///< Ratio decrement per probe.
  /// Do not reduce x below this — the system-wide R_min of Constraint 10
  /// applies to every strategy (the paper's SML bottoms out at 0.2 in the
  /// user study).
  double floor = 0.2;
  double probe_s = 2.0;               ///< Measurement window per probe.
  double settle_s = 4.0;              ///< Final measurement window.
};

BaselineOutcome run_sml(app::MarApp& app, const SmlConfig& cfg);

}  // namespace hbosim::baselines
