#pragma once

#include "hbosim/baselines/baseline.hpp"
#include "hbosim/core/config.hpp"

/// \file bnt.hpp
/// Bayesian No Triangle (BNT): HBO's Bayesian machinery and heuristic
/// allocation, but the triangle ratio is pinned at 1 (objects stay at full
/// quality) and the cost function is the average latency alone. Shows that
/// reallocating AI tasks without regulating object quality cannot reach
/// HBO's latency.

namespace hbosim::baselines {

/// `cfg` supplies the BO settings (initial samples, iterations, kernel);
/// its w is ignored because BNT's cost is epsilon only.
BaselineOutcome run_bnt(app::MarApp& app, const core::HboConfig& cfg,
                        double settle_s = 4.0);

}  // namespace hbosim::baselines
