#pragma once

#include "hbosim/baselines/baseline.hpp"

/// \file alln.hpp
/// All NNAPI (AllN): every AI task runs through Android's NNAPI delegate
/// (per-operator splitting across CPU/GPU/NPU), objects stay at full
/// quality — the state-of-the-practice the paper compares against. Models
/// with no NNAPI path ("NA" in Table I) fall back to their best supported
/// delegate, as the Android runtime does.

namespace hbosim::baselines {

BaselineOutcome run_alln(app::MarApp& app, double settle_s = 4.0);

}  // namespace hbosim::baselines
