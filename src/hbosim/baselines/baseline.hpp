#pragma once

#include <string>
#include <vector>

#include "hbosim/app/mar_app.hpp"

/// \file baseline.hpp
/// Common result shape for the paper's four baselines (Section V-A).
/// Every baseline is a procedure that drives a MarApp into its steady
/// configuration and measures one settle period.

namespace hbosim::baselines {

struct BaselineOutcome {
  std::string name;
  std::vector<soc::Delegate> allocation;
  double triangle_ratio = 1.0;        ///< Total ratio x actually applied.
  std::vector<double> object_ratios;  ///< Per-object ratios applied.
  app::PeriodMetrics metrics;         ///< Measured at the final config.
};

}  // namespace hbosim::baselines
