#include "hbosim/baselines/smq.hpp"

#include "hbosim/baselines/static_alloc.hpp"
#include "hbosim/common/error.hpp"

namespace hbosim::baselines {

BaselineOutcome run_smq(app::MarApp& app,
                        const std::vector<double>& hbo_object_ratios,
                        double hbo_triangle_ratio, double settle_s) {
  HB_REQUIRE(hbo_object_ratios.size() == app.scene().object_count(),
             "SMQ requires HBO's per-object ratios for this scene");
  BaselineOutcome out;
  out.name = "SMQ";
  out.allocation = static_best_allocation(app);
  out.triangle_ratio = hbo_triangle_ratio;
  out.object_ratios = hbo_object_ratios;

  app.start();
  app.apply_allocation(out.allocation);
  app.apply_object_ratios(out.object_ratios);
  out.metrics = app.run_period(settle_s);
  return out;
}

}  // namespace hbosim::baselines
