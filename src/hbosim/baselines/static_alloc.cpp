#include "hbosim/baselines/static_alloc.hpp"

namespace hbosim::baselines {

std::vector<soc::Delegate> static_best_allocation(app::MarApp& app) {
  const ai::ProfileTable& profiles = app.profiles();
  std::vector<soc::Delegate> out;
  for (const std::string& model : app.task_models())
    out.push_back(profiles.get(model).best);
  return out;
}

}  // namespace hbosim::baselines
