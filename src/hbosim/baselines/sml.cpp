#include "hbosim/baselines/sml.hpp"

#include "hbosim/baselines/static_alloc.hpp"
#include "hbosim/common/error.hpp"
#include "hbosim/core/controller.hpp"
#include "hbosim/core/triangle_distribution.hpp"

namespace hbosim::baselines {

BaselineOutcome run_sml(app::MarApp& app, const SmlConfig& cfg) {
  HB_REQUIRE(cfg.step > 0.0, "SML step must be positive");
  HB_REQUIRE(cfg.floor > 0.0 && cfg.floor <= 1.0, "SML floor out of range");

  BaselineOutcome out;
  out.name = "SML";
  out.allocation = static_best_allocation(app);

  app.start();
  app.apply_allocation(out.allocation);

  const std::vector<core::ObjectState> objects =
      core::HboController::object_states(app);

  // Gradually reduce x until the measured epsilon reaches the target (or
  // the floor stops us); triangles are spread with the same distributor
  // HBO uses so quality is the best achievable at each probed x.
  double x = 1.0;
  for (;;) {
    out.object_ratios = core::distribute_waterfill(objects, x);
    app.apply_object_ratios(out.object_ratios);
    out.metrics = app.run_period(cfg.probe_s);
    if (out.metrics.latency_ratio <= cfg.target_latency_ratio) break;
    if (x <= cfg.floor) break;
    x = std::max(x - cfg.step, cfg.floor);
  }
  out.triangle_ratio = x;
  out.metrics = app.run_period(cfg.settle_s);
  return out;
}

}  // namespace hbosim::baselines
