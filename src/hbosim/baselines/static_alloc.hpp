#pragma once

#include <vector>

#include "hbosim/app/mar_app.hpp"

/// \file static_alloc.hpp
/// The static allocation policy shared by SMQ and SML (Section V-A): each
/// AI task is pinned to the delegate with the lowest latency in isolation
/// (the Table I winner), ignoring contention and render load.

namespace hbosim::baselines {

/// Per-task statically best delegate, ordered like app.tasks().
std::vector<soc::Delegate> static_best_allocation(app::MarApp& app);

}  // namespace hbosim::baselines
