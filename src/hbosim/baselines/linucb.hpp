#pragma once

#include "hbosim/baselines/baseline.hpp"
#include "hbosim/policy/bandit.hpp"
#include "hbosim/policy/bandit_session.hpp"

/// \file linucb.hpp
/// LinUCB agent baseline: drive the app with an online contextual bandit
/// (policy::BanditSession) for a training horizon, then measure at the
/// configuration of its final arm pull. Registered next to the Section
/// V-A baselines so the figure benches can race a model-free agent
/// against HBO — the comparison motivating the policy layer (and the
/// agent-driven direction of arXiv:2508.08627).

namespace hbosim::baselines {

/// Runs an own-learner BanditSession until the app clock reaches
/// `horizon_s`, re-applies the last pulled arm, and measures `settle_s`.
/// The app should have its objects and tasks placed, like the other
/// baselines. Throws if the horizon produced no pull (no activation
/// fired — horizon too short).
BaselineOutcome run_linucb(app::MarApp& app, double horizon_s = 240.0,
                           double settle_s = 4.0,
                           policy::BanditConfig bandit_cfg = {});

}  // namespace hbosim::baselines
