#pragma once

#include "hbosim/baselines/baseline.hpp"

/// \file smq.hpp
/// Static Match Quality (SMQ): keeps the exact triangle distribution HBO
/// chose — so the average virtual-object quality matches HBO's — but pins
/// every AI task to its statically best delegate. Quantifies what HBO's
/// *dynamic allocation* contributes on top of quality control.

namespace hbosim::baselines {

/// `hbo_object_ratios` / `hbo_triangle_ratio` come from HBO's best
/// configuration on an identical app. `settle_s` is how long to measure.
BaselineOutcome run_smq(app::MarApp& app,
                        const std::vector<double>& hbo_object_ratios,
                        double hbo_triangle_ratio, double settle_s = 4.0);

}  // namespace hbosim::baselines
