#include "hbosim/baselines/bnt.hpp"

#include "hbosim/bo/optimizer.hpp"
#include "hbosim/common/rng.hpp"
#include "hbosim/core/allocation.hpp"

namespace hbosim::baselines {

BaselineOutcome run_bnt(app::MarApp& app, const core::HboConfig& cfg,
                        double settle_s) {
  cfg.validate();
  BaselineOutcome out;
  out.name = "BNT";
  out.triangle_ratio = 1.0;
  out.object_ratios.assign(app.scene().object_count(), 1.0);

  app.start();
  if (!out.object_ratios.empty()) app.apply_object_ratios(out.object_ratios);

  core::HeuristicAllocator allocator(app.profiles(), app.task_models());

  // Same optimizer as HBO, but the box coordinate is pinned to [1, 1] so
  // only the allocation proportions are searched, and the cost fed back is
  // the bare latency ratio.
  bo::BoConfig bo_cfg = cfg.bo;
  bo_cfg.n_initial = cfg.n_initial;
  bo::BayesianOptimizer optimizer(
      bo::SimplexBoxSpace(soc::kNumDelegates, 1.0, 1.0), bo_cfg);
  Rng rng(cfg.seed ^ 0xB17u);

  const int total = cfg.n_initial + cfg.n_iterations;
  for (int iter = 0; iter < total; ++iter) {
    const std::vector<double> z = optimizer.suggest(rng);
    auto [usage, x] = bo::SimplexBoxSpace::split(z);
    (void)x;  // always 1
    app.apply_allocation(allocator.allocate(usage).delegates);
    const app::PeriodMetrics m = app.run_period(cfg.control_period_s);
    optimizer.tell(z, m.latency_ratio);
  }

  auto [best_usage, best_x] = bo::SimplexBoxSpace::split(optimizer.best().z);
  (void)best_x;
  out.allocation = allocator.allocate(best_usage).delegates;
  app.apply_allocation(out.allocation);
  out.metrics = app.run_period(settle_s);
  return out;
}

}  // namespace hbosim::baselines
