#pragma once

#include <functional>
#include <map>
#include <vector>

#include "hbosim/ai/exec_plan.hpp"
#include "hbosim/ai/task.hpp"
#include "hbosim/common/rng.hpp"
#include "hbosim/common/stats.hpp"
#include "hbosim/des/simulator.hpp"
#include "hbosim/soc/device.hpp"

/// \file engine.hpp
/// The on-device inference runtime. Each registered AiTask executes
/// back-to-back inferences (with a small inter-inference gap, as a camera-
/// frame-driven MAR pipeline would): every inference walks its delegate's
/// ExecPlan phase by phase across the SoC's processor-sharing resources,
/// so its measured latency emerges from whatever contention exists at that
/// moment — exactly the phenomenon the paper's Section III-B measures.
///
/// Delegate changes take effect at the next inference (a real TFLite
/// interpreter is rebuilt between inferences, not mid-run).

namespace hbosim::ai {

/// Outcome of one remote (edge-offloaded) inference exchange. `elapsed_s`
/// is the simulated wall time the exchange consumed — on failure the
/// engine still charges it before falling back to the local ExecPlan,
/// because the radio round-trips and timeouts really happened.
struct RemoteResult {
  bool ok = false;
  double elapsed_s = 0.0;
};

struct EngineConfig {
  /// Pause between the end of one inference and the start of the next.
  /// MAR AI pipelines are camera-frame driven; one 30 fps frame interval
  /// keeps per-task duty cycles realistic instead of saturating every
  /// accelerator with back-to-back inference.
  double inference_gap_s = 0.035;
  /// Uniform jitter applied to each gap (fraction of the gap). Camera
  /// frames never arrive on a perfect clock; without jitter the task
  /// loops phase-lock on the shared accelerators and produce artificial
  /// latency beats.
  double gap_jitter = 0.25;
  /// Multiplicative log-normal noise applied to each inference's compute
  /// demand (sigma of log factor); 0 disables noise.
  double latency_noise = 0.03;
  std::uint64_t seed = 0x5EEDu;
};

class InferenceEngine {
 public:
  /// Called after every completed inference with the task and its measured
  /// end-to-end latency in seconds.
  using LatencyObserver = std::function<void(const AiTask&, double)>;

  /// Executes one inference remotely: receives the task and its local
  /// compute demand in isolation-seconds (noise included) and returns the
  /// exchange outcome. Supplied by hbosim::offload::OffloadExecutor; the
  /// engine itself stays edge-agnostic.
  using RemoteExecutor = std::function<RemoteResult(const AiTask&, double)>;

  InferenceEngine(des::Simulator& sim, soc::SocRuntime& soc,
                  EngineConfig cfg = {});

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Register a task; the inference loop starts at the current sim time
  /// (plus one gap) if the engine is running, or at start() otherwise.
  TaskId add_task(const std::string& model, const std::string& label,
                  soc::Delegate delegate);

  /// Remove a task, cancelling any in-flight inference.
  void remove_task(TaskId id);

  /// Change a task's delegate; applies from its next inference. Throws if
  /// the device does not support the (model, delegate) pair.
  void set_delegate(TaskId id, soc::Delegate delegate);

  const AiTask& task(TaskId id) const;
  std::vector<TaskId> task_ids() const;
  std::size_t task_count() const { return tasks_.size(); }

  /// Start all registered (and future) task loops.
  void start();
  bool started() const { return started_; }

  void set_observer(LatencyObserver obs) { observer_ = std::move(obs); }

  /// Install (or clear) the remote execution backend. Tasks with a zero
  /// edge share never consult it, so a session without an executor — or
  /// with every share at 0 — is bitwise identical to a pre-offload build.
  void set_remote_executor(RemoteExecutor exec) {
    remote_ = std::move(exec);
  }

  /// Set the fraction of task `id`'s inferences to run remotely, in
  /// [0, 1]. Routing uses a deterministic carry accumulator (no RNG
  /// draws), so enabling offload does not perturb the engine's noise or
  /// jitter streams: share 0.4 sends exactly every 2nd-or-3rd inference
  /// in a fixed pattern, and share 0 restores the pure-local sequence.
  void set_edge_share(TaskId id, double share);
  double edge_share(TaskId id) const { return state(id).edge_share; }

  /// Lifetime counters for the offload roll-up.
  std::uint64_t completed_inferences() const { return completed_inferences_; }
  std::uint64_t remote_inferences() const { return remote_inferences_; }
  std::uint64_t remote_attempts() const { return remote_attempts_; }
  std::uint64_t remote_fallbacks() const { return remote_fallbacks_; }

  /// Measurement window: per-task latency statistics since the last reset.
  void reset_window();
  double window_mean_latency_s(TaskId id) const;
  std::size_t window_count(TaskId id) const;
  double last_latency_s(TaskId id) const;

 private:
  struct TaskState {
    AiTask task;
    /// Interned "model@delegate" label for telemetry sim-spans; refreshed
    /// on add_task/set_delegate so the hot completion path never builds
    /// strings.
    const char* span_name = "infer";
    ExecPlan plan;             // plan of the in-flight inference
    std::size_t phase_index = 0;
    SimTime inference_start = 0.0;
    double noise_factor = 1.0;
    bool in_flight = false;
    JobId active_job = 0;      // compute phase in flight (0 = none)
    soc::Unit active_unit = soc::Unit::Cpu;
    des::EventId pending_event = 0;  // delay/gap event in flight (0 = none)
    std::uint64_t epoch = 0;   // invalidates stale callbacks
    RunningStat window;
    double last_latency = 0.0;
    double edge_share = 0.0;   // fraction of inferences sent remote
    double edge_carry = 0.0;   // deterministic routing accumulator
    bool remote = false;       // in-flight inference runs on the edge
  };

  double next_gap();
  void begin_inference(TaskId id);
  void run_next_phase(TaskId id);
  void on_phase_done(TaskId id, std::uint64_t epoch);
  void finish_inference(TaskId id);
  TaskState& state(TaskId id);
  const TaskState& state(TaskId id) const;

  des::Simulator& sim_;
  soc::SocRuntime& soc_;
  EngineConfig cfg_;
  Rng rng_;
  LatencyObserver observer_;
  RemoteExecutor remote_;
  std::map<TaskId, TaskState> tasks_;
  TaskId next_task_id_ = 1;
  bool started_ = false;
  std::uint64_t completed_inferences_ = 0;
  std::uint64_t remote_inferences_ = 0;
  std::uint64_t remote_attempts_ = 0;
  std::uint64_t remote_fallbacks_ = 0;
};

}  // namespace hbosim::ai
