#include "hbosim/ai/latency_stats.hpp"

#include "hbosim/common/error.hpp"

namespace hbosim::ai {

double average_latency_ratio(const std::vector<LatencySample>& samples) {
  HB_REQUIRE(!samples.empty(), "Eq. 4 needs at least one task sample");
  double acc = 0.0;
  for (const LatencySample& s : samples) {
    HB_REQUIRE(s.expected_ms > 0.0, "expected latency must be positive");
    acc += (s.measured_ms - s.expected_ms) / s.expected_ms;
  }
  return acc / static_cast<double>(samples.size());
}

double mean_measured_ms(const std::vector<LatencySample>& samples) {
  if (samples.empty()) return 0.0;
  double acc = 0.0;
  for (const LatencySample& s : samples) acc += s.measured_ms;
  return acc / static_cast<double>(samples.size());
}

}  // namespace hbosim::ai
