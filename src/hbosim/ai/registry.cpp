#include "hbosim/ai/registry.hpp"

#include "hbosim/common/error.hpp"

namespace hbosim::ai {

const std::vector<ModelInfo>& model_registry() {
  static const std::vector<ModelInfo> registry = {
      {"deconv-munet", TaskType::ImageSegmentation},
      {"deeplabv3", TaskType::ImageSegmentation},
      {"efficientdet-lite", TaskType::ObjectDetection},
      {"mobilenetDetv1", TaskType::ObjectDetection},
      {"efficientclass-lite0", TaskType::ImageClassification},
      {"inception-v1-q", TaskType::ImageClassification},
      {"mobilenet-v1", TaskType::ImageClassification},
      {"model-metadata", TaskType::GestureDetection},
      {"mnist", TaskType::DigitClassification},
  };
  return registry;
}

const ModelInfo& find_model(const std::string& name) {
  for (const auto& m : model_registry()) {
    if (m.name == name) return m;
  }
  throw Error("unknown AI model: " + name);
}

bool is_known_model(const std::string& name) {
  for (const auto& m : model_registry()) {
    if (m.name == name) return true;
  }
  return false;
}

}  // namespace hbosim::ai
