#pragma once

#include <string>

#include "hbosim/common/types.hpp"
#include "hbosim/soc/resource.hpp"

/// \file task.hpp
/// An AI task is one *instance* of a model executing repeated inferences in
/// the background of the MAR app (the paper runs e.g. five instances of
/// deeplabv3 simultaneously, labelled deeplabv3_1..5).

namespace hbosim::ai {

struct AiTask {
  TaskId id = 0;
  std::string model;  ///< Registry/model-profile key.
  std::string label;  ///< Display label, e.g. "deeplabv3_1".
  soc::Delegate delegate = soc::Delegate::Cpu;
};

}  // namespace hbosim::ai
