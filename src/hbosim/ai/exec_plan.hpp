#pragma once

#include <vector>

#include "hbosim/soc/device.hpp"

/// \file exec_plan.hpp
/// Translates (model, delegate, device) into the sequence of execution
/// phases an inference passes through. This encodes the paper's coarse-
/// grained allocation semantics:
///
///  - CPU inference: a single CPU phase (one core max).
///  - GPU delegate: a fixed dispatch delay, then all ops as one GPU phase.
///  - NNAPI delegate: a fixed dispatch delay, then operators split between
///    the NPU (npu_fraction) and the GPU (the remainder — operators the
///    NPU/TPU cannot run fall back to the GPU, paper footnote 2).
///
/// Phase demands are derived so that, in isolation (no contention, no
/// render load), total latency equals the device's Table I value.

namespace hbosim::ai {

struct Phase {
  enum class Kind { Delay, Compute };
  Kind kind = Kind::Compute;
  soc::Unit unit = soc::Unit::Cpu;  ///< Only meaningful for Compute.
  double seconds = 0.0;             ///< Demand (Compute) or duration (Delay).
  double cores = 1.0;               ///< Capacity units held while computing.
};

using ExecPlan = std::vector<Phase>;

/// Build the phase list for one inference. Throws if the device does not
/// support (model, delegate).
ExecPlan build_exec_plan(const soc::DeviceProfile& device,
                         const std::string& model, soc::Delegate delegate);

/// Sum of all phase durations — the isolation latency (seconds).
double plan_isolation_seconds(const ExecPlan& plan);

}  // namespace hbosim::ai
