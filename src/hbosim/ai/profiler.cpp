#include "hbosim/ai/profiler.hpp"

#include <algorithm>

#include "hbosim/ai/engine.hpp"
#include "hbosim/common/error.hpp"
#include "hbosim/common/types.hpp"

namespace hbosim::ai {

void ProfileTable::set(const std::string& model, ModelProfile profile) {
  profiles_[model] = profile;
}

bool ProfileTable::has(const std::string& model) const {
  return profiles_.count(model) > 0;
}

const ModelProfile& ProfileTable::get(const std::string& model) const {
  auto it = profiles_.find(model);
  HB_REQUIRE(it != profiles_.end(), "model not profiled: " + model);
  return it->second;
}

std::vector<std::string> ProfileTable::model_names() const {
  std::vector<std::string> out;
  out.reserve(profiles_.size());
  for (const auto& [name, p] : profiles_) out.push_back(name);
  return out;
}

namespace {

/// One isolated measurement: a fresh simulator, one task, `reps`
/// inferences, mean latency in ms.
double measure_isolated_ms(const soc::DeviceProfile& device,
                           const std::string& model, soc::Delegate delegate,
                           int reps) {
  des::Simulator sim;
  soc::SocRuntime soc(sim, device);
  EngineConfig cfg;
  cfg.latency_noise = 0.0;  // exact profiling
  cfg.inference_gap_s = 0.001;
  InferenceEngine engine(sim, soc, cfg);
  const TaskId id = engine.add_task(model, model, delegate);

  int remaining = reps;
  engine.set_observer([&](const AiTask&, double) { --remaining; });
  engine.start();
  while (remaining > 0) {
    HB_ASSERT(sim.step(), "profiling simulation drained unexpectedly");
  }
  return to_ms(engine.window_mean_latency_s(id));
}

}  // namespace

ProfileTable profile_models(const soc::DeviceProfile& device,
                            const std::vector<std::string>& models,
                            int reps) {
  HB_REQUIRE(reps > 0, "profiling needs at least one repetition");
  ProfileTable table;
  for (const std::string& model : models) {
    if (table.has(model)) continue;  // duplicates share one profile
    ModelProfile p;
    double best_ms = 0.0;
    bool first = true;
    for (int i = 0; i < soc::kNumDelegates; ++i) {
      const auto d = soc::delegate_from_index(i);
      if (!device.supports(model, d)) continue;
      const double v = measure_isolated_ms(device, model, d, reps);
      p.isolation_ms[static_cast<std::size_t>(i)] = v;
      if (first || v < best_ms) {
        best_ms = v;
        p.best = d;
        first = false;
      }
    }
    HB_ASSERT(!first, "model supports no delegate: " + model);
    p.expected_ms = best_ms;
    table.set(model, p);
  }
  return table;
}

std::vector<PriorityEntry> build_priority_entries(
    const ProfileTable& profiles,
    const std::vector<std::string>& task_models) {
  std::vector<PriorityEntry> entries;
  for (std::size_t t = 0; t < task_models.size(); ++t) {
    const ModelProfile& p = profiles.get(task_models[t]);
    for (int i = 0; i < soc::kNumDelegates; ++i) {
      const auto& lat = p.isolation_ms[static_cast<std::size_t>(i)];
      if (!lat) continue;
      entries.push_back(
          PriorityEntry{*lat, t, soc::delegate_from_index(i)});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const PriorityEntry& a, const PriorityEntry& b) {
              if (a.latency_ms != b.latency_ms)
                return a.latency_ms < b.latency_ms;
              if (a.task_index != b.task_index)
                return a.task_index < b.task_index;
              return static_cast<int>(a.delegate) < static_cast<int>(b.delegate);
            });
  return entries;
}

}  // namespace hbosim::ai
