#include "hbosim/ai/exec_plan.hpp"

#include "hbosim/common/error.hpp"
#include "hbosim/common/types.hpp"

namespace hbosim::ai {

ExecPlan build_exec_plan(const soc::DeviceProfile& device,
                         const std::string& model, soc::Delegate delegate) {
  HB_REQUIRE(device.supports(model, delegate),
             model + " does not support delegate " +
                 soc::delegate_name(delegate) + " on " + device.name());
  const soc::ModelLatency& lat = device.model(model);
  ExecPlan plan;

  switch (delegate) {
    case soc::Delegate::Cpu: {
      plan.push_back({Phase::Kind::Compute, soc::Unit::Cpu, ms(lat.cpu_ms),
                      lat.cpu_threads});
      break;
    }
    case soc::Delegate::Gpu: {
      const double comm = device.comm_ms(soc::Delegate::Gpu);
      plan.push_back({Phase::Kind::Delay, soc::Unit::Cpu, ms(comm)});
      plan.push_back(
          {Phase::Kind::Compute, soc::Unit::Gpu, ms(*lat.gpu_ms - comm)});
      break;
    }
    case soc::Delegate::Nnapi: {
      const double comm = device.comm_ms(soc::Delegate::Nnapi);
      const double work_ms = *lat.nnapi_ms - comm;
      const double npu_ms = work_ms * lat.npu_fraction;
      const double gpu_ms = work_ms - npu_ms;
      plan.push_back({Phase::Kind::Delay, soc::Unit::Cpu, ms(comm)});
      if (npu_ms > 0.0)
        plan.push_back({Phase::Kind::Compute, soc::Unit::Npu, ms(npu_ms)});
      if (gpu_ms > 0.0)
        plan.push_back({Phase::Kind::Compute, soc::Unit::Gpu, ms(gpu_ms)});
      break;
    }
  }
  return plan;
}

double plan_isolation_seconds(const ExecPlan& plan) {
  double total = 0.0;
  for (const Phase& p : plan) total += p.seconds;
  return total;
}

}  // namespace hbosim::ai
