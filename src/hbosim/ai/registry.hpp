#pragma once

#include <vector>

#include "hbosim/ai/model.hpp"

/// \file registry.hpp
/// The catalogue of AI models used in the paper (Tables I and II). Models
/// are identified by name; devices attach latency profiles per name.

namespace hbosim::ai {

/// All models the paper evaluates, in Table I order plus `mnist`.
const std::vector<ModelInfo>& model_registry();

/// Look up a model's metadata; throws hbosim::Error for unknown names.
const ModelInfo& find_model(const std::string& name);

/// True if the registry knows this model name.
bool is_known_model(const std::string& name);

}  // namespace hbosim::ai
