#pragma once

#include <array>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hbosim/soc/device.hpp"

/// \file profiler.hpp
/// Offline isolation profiling (Section IV-C of the paper): each AI task is
/// measured on each compatible delegate with *no* other tasks and *no*
/// virtual objects, yielding (a) the expected latency tau^e used to
/// normalize Eq. 4 and (b) the priority queue P of (latency, task,
/// resource) pairs consumed by Algorithm 1. The paper performs this once on
/// the user's device; we perform it once per (device, model) on a private
/// throwaway simulation, so the exact same runtime code path is exercised.

namespace hbosim::ai {

/// Isolation profile of one model on a device.
struct ModelProfile {
  /// Measured latency per delegate index (Cpu, Gpu, Nnapi); nullopt = NA.
  std::array<std::optional<double>, soc::kNumDelegates> isolation_ms;
  soc::Delegate best = soc::Delegate::Cpu;  ///< argmin latency.
  double expected_ms = 0.0;                 ///< tau^e = min latency.
};

/// Profiles for a set of models on one device.
class ProfileTable {
 public:
  void set(const std::string& model, ModelProfile profile);
  bool has(const std::string& model) const;
  const ModelProfile& get(const std::string& model) const;
  std::vector<std::string> model_names() const;

 private:
  std::map<std::string, ModelProfile> profiles_;
};

/// Entry of Algorithm 1's priority queue P.
struct PriorityEntry {
  double latency_ms;       ///< Profiled isolation latency.
  std::size_t task_index;  ///< Index into the task list given to HBO.
  soc::Delegate delegate;
};

/// Measure isolation latency of every model in `models` on every
/// compatible delegate, by running `reps` inferences on a fresh private
/// simulator. Noise is disabled so profiles are exact (the paper averages
/// repeated runs to the same effect).
ProfileTable profile_models(const soc::DeviceProfile& device,
                            const std::vector<std::string>& models,
                            int reps = 3);

/// Build Algorithm 1's priority queue entries for an ordered taskset:
/// one entry per (task, compatible delegate), sorted by latency
/// non-decreasing (ties broken by task then delegate index, so the order
/// is deterministic).
std::vector<PriorityEntry> build_priority_entries(
    const ProfileTable& profiles, const std::vector<std::string>& task_models);

}  // namespace hbosim::ai
