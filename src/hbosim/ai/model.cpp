#include "hbosim/ai/model.hpp"

namespace hbosim::ai {

const char* task_type_name(TaskType t) {
  switch (t) {
    case TaskType::ImageSegmentation: return "Image Segmentation";
    case TaskType::ObjectDetection: return "Object Detection";
    case TaskType::ImageClassification: return "Image Classification";
    case TaskType::GestureDetection: return "Gesture Detection";
    case TaskType::DigitClassification: return "Digit Classifier";
  }
  return "?";
}

const char* task_type_abbrev(TaskType t) {
  switch (t) {
    case TaskType::ImageSegmentation: return "IS";
    case TaskType::ObjectDetection: return "OD";
    case TaskType::ImageClassification: return "IC";
    case TaskType::GestureDetection: return "GD";
    case TaskType::DigitClassification: return "DC";
  }
  return "?";
}

}  // namespace hbosim::ai
