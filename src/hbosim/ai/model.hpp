#pragma once

#include <string>

/// \file model.hpp
/// AI model metadata. Latency characteristics live in the per-device
/// profiles (soc::DeviceProfile); this header only describes what a model
/// *is* (its MAR-app role), mirroring the paper's Table I/II task columns.

namespace hbosim::ai {

/// MAR-app roles from Tables I and II.
enum class TaskType {
  ImageSegmentation,    // IS
  ObjectDetection,      // OD
  ImageClassification,  // IC
  GestureDetection,     // GD
  DigitClassification,  // DC (mnist, Table II)
};

const char* task_type_name(TaskType t);
const char* task_type_abbrev(TaskType t);

struct ModelInfo {
  std::string name;  ///< Registry key, e.g. "deeplabv3".
  TaskType type;
};

}  // namespace hbosim::ai
