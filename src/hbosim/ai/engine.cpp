#include "hbosim/ai/engine.hpp"

#include <cmath>

#include "hbosim/ai/registry.hpp"
#include "hbosim/common/error.hpp"
#include "hbosim/telemetry/telemetry.hpp"

namespace hbosim::ai {

namespace {
const char* inference_span_name(const AiTask& task) {
  return telemetry::intern(task.model + "@" +
                           soc::delegate_name(task.delegate));
}
}  // namespace

InferenceEngine::InferenceEngine(des::Simulator& sim, soc::SocRuntime& soc,
                                 EngineConfig cfg)
    : sim_(sim), soc_(soc), cfg_(cfg), rng_(cfg.seed) {
  HB_REQUIRE(cfg_.inference_gap_s >= 0.0, "inference gap must be >= 0");
  HB_REQUIRE(cfg_.gap_jitter >= 0.0 && cfg_.gap_jitter <= 1.0,
             "gap jitter must be in [0,1]");
  HB_REQUIRE(cfg_.latency_noise >= 0.0, "latency noise must be >= 0");
}

double InferenceEngine::next_gap() {
  if (cfg_.gap_jitter <= 0.0) return cfg_.inference_gap_s;
  return cfg_.inference_gap_s *
         rng_.uniform(1.0 - cfg_.gap_jitter, 1.0 + cfg_.gap_jitter);
}

TaskId InferenceEngine::add_task(const std::string& model,
                                 const std::string& label,
                                 soc::Delegate delegate) {
  HB_REQUIRE(is_known_model(model), "unknown AI model: " + model);
  HB_REQUIRE(soc_.profile().supports(model, delegate),
             model + " cannot run on " + soc::delegate_name(delegate) +
                 " on " + soc_.profile().name());
  const TaskId id = next_task_id_++;
  TaskState st;
  st.task = AiTask{id, model, label, delegate};
  st.span_name = inference_span_name(st.task);
  tasks_.emplace(id, std::move(st));
  if (started_) {
    // Join the running system after one gap, as a freshly loaded model.
    TaskState& s = state(id);
    s.pending_event =
        sim_.schedule_after(next_gap(), [this, id] { begin_inference(id); });
  }
  return id;
}

void InferenceEngine::remove_task(TaskId id) {
  TaskState& st = state(id);
  if (st.active_job != 0) soc_.unit(st.active_unit).cancel(st.active_job);
  if (st.pending_event != 0) sim_.cancel(st.pending_event);
  ++st.epoch;  // invalidate any callback already dispatched
  tasks_.erase(id);
}

void InferenceEngine::set_delegate(TaskId id, soc::Delegate delegate) {
  TaskState& st = state(id);
  HB_REQUIRE(soc_.profile().supports(st.task.model, delegate),
             st.task.model + " cannot run on " + soc::delegate_name(delegate));
  st.task.delegate = delegate;  // picked up when the next plan is built
  st.span_name = inference_span_name(st.task);
}

const AiTask& InferenceEngine::task(TaskId id) const { return state(id).task; }

std::vector<TaskId> InferenceEngine::task_ids() const {
  std::vector<TaskId> out;
  out.reserve(tasks_.size());
  for (const auto& [id, st] : tasks_) out.push_back(id);
  return out;
}

void InferenceEngine::start() {
  if (started_) return;
  started_ = true;
  for (auto& [id, st] : tasks_) {
    const TaskId task_id = id;
    // Random initial phase: real tasks do not begin on the same camera
    // frame, and a synchronized start would take tens of simulated
    // seconds to decay into the steady-state interleaving.
    const double offset = cfg_.inference_gap_s * rng_.uniform();
    st.pending_event = sim_.schedule_after(
        offset, [this, task_id] { begin_inference(task_id); });
  }
}

void InferenceEngine::begin_inference(TaskId id) {
  TaskState& st = state(id);
  st.pending_event = 0;
  st.plan = build_exec_plan(soc_.profile(), st.task.model, st.task.delegate);
  st.phase_index = 0;
  st.inference_start = sim_.now();
  st.in_flight = true;
  st.remote = false;
  // The demand noise draw happens before remote/local routing so the
  // engine's RNG stream is identical whichever path each inference takes
  // (and identical to a pre-offload build when every share is 0).
  st.noise_factor = cfg_.latency_noise > 0.0
                        ? std::exp(cfg_.latency_noise * rng_.normal())
                        : 1.0;
  if (st.edge_share > 0.0 && remote_) {
    // Deterministic fractional routing: the carry accumulates the share
    // each inference and fires remote on overflow — no RNG, so a share
    // of 0 leaves every draw and event of the local path untouched.
    st.edge_carry += st.edge_share;
    if (st.edge_carry >= 1.0) {
      st.edge_carry -= 1.0;
      const double demand = plan_isolation_seconds(st.plan) * st.noise_factor;
      ++remote_attempts_;
      const RemoteResult res = remote_(st.task, demand);
      const std::uint64_t epoch = st.epoch;
      if (res.ok) {
        st.remote = true;
        st.pending_event =
            sim_.schedule_after(res.elapsed_s, [this, id, epoch] {
              auto it = tasks_.find(id);
              if (it == tasks_.end() || it->second.epoch != epoch) return;
              it->second.pending_event = 0;
              finish_inference(id);
            });
        return;
      }
      // Exhausted the edge attempt budget: the timeouts and NACK
      // round-trips still happened, so charge their wall time before
      // falling back to the untouched local plan.
      ++remote_fallbacks_;
      if (res.elapsed_s > 0.0) {
        st.pending_event =
            sim_.schedule_after(res.elapsed_s, [this, id, epoch] {
              auto it = tasks_.find(id);
              if (it == tasks_.end() || it->second.epoch != epoch) return;
              it->second.pending_event = 0;
              run_next_phase(id);
            });
        return;
      }
    }
  }
  run_next_phase(id);
}

void InferenceEngine::run_next_phase(TaskId id) {
  TaskState& st = state(id);
  if (st.phase_index >= st.plan.size()) {
    finish_inference(id);
    return;
  }
  const Phase& phase = st.plan[st.phase_index];
  const std::uint64_t epoch = st.epoch;
  if (phase.kind == Phase::Kind::Delay) {
    // Dispatch/communication: a fixed wall delay, not contended.
    st.pending_event = sim_.schedule_after(
        phase.seconds, [this, id, epoch] { on_phase_done(id, epoch); });
  } else {
    const double demand = phase.seconds * st.noise_factor;
    st.active_unit = phase.unit;
    st.active_job = soc_.unit(phase.unit).submit(
        demand, phase.cores, [this, id, epoch] { on_phase_done(id, epoch); },
        st.span_name);  // job class for sched forensics: "model@delegate"
  }
}

void InferenceEngine::on_phase_done(TaskId id, std::uint64_t epoch) {
  auto it = tasks_.find(id);
  if (it == tasks_.end() || it->second.epoch != epoch) return;  // stale
  TaskState& st = it->second;
  st.active_job = 0;
  st.pending_event = 0;
  ++st.phase_index;
  run_next_phase(id);
}

void InferenceEngine::finish_inference(TaskId id) {
  TaskState& st = state(id);
  st.in_flight = false;
  const double latency = sim_.now() - st.inference_start;
  st.last_latency = latency;
  st.window.add(latency);
  ++completed_inferences_;
  if (st.remote) ++remote_inferences_;
  if (telemetry::enabled()) {
    // Sim-time span on the session's async track: the inference as the
    // simulated pipeline saw it, resource contention included.
    telemetry::sim_span("ai", st.span_name, st.inference_start, sim_.now());
    HB_TELEM_HIST_US("ai.inference_us", latency * 1e6);
    HB_TELEM_COUNT("ai.inferences", 1.0);
  }
  if (observer_) observer_(st.task, latency);
  // `st` may have been invalidated if the observer removed the task.
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  it->second.pending_event =
      sim_.schedule_after(next_gap(), [this, id] { begin_inference(id); });
}

void InferenceEngine::set_edge_share(TaskId id, double share) {
  HB_REQUIRE(std::isfinite(share) && share >= 0.0 && share <= 1.0,
             "edge share must be in [0, 1]");
  // The carry is deliberately left alone: reconfiguration mid-session
  // keeps the routing pattern a pure function of the share history, and
  // setting a share back to 0 freezes the carry below 1 forever.
  state(id).edge_share = share;
}

void InferenceEngine::reset_window() {
  for (auto& [id, st] : tasks_) st.window.reset();
}

double InferenceEngine::window_mean_latency_s(TaskId id) const {
  return state(id).window.mean();
}

std::size_t InferenceEngine::window_count(TaskId id) const {
  return state(id).window.count();
}

double InferenceEngine::last_latency_s(TaskId id) const {
  return state(id).last_latency;
}

InferenceEngine::TaskState& InferenceEngine::state(TaskId id) {
  auto it = tasks_.find(id);
  HB_REQUIRE(it != tasks_.end(), "unknown task id");
  return it->second;
}

const InferenceEngine::TaskState& InferenceEngine::state(TaskId id) const {
  auto it = tasks_.find(id);
  HB_REQUIRE(it != tasks_.end(), "unknown task id");
  return it->second;
}

}  // namespace hbosim::ai
