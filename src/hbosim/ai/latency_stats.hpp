#pragma once

#include <vector>

/// \file latency_stats.hpp
/// The paper's latency metric (Eq. 4): the average, across the M AI tasks,
/// of each task's *excess* latency relative to its isolation expectation,
///   epsilon = (1/M) * sum_m (tau^a_m - tau^e_m) / tau^e_m.
/// epsilon == 0 means every task runs exactly as fast as it would alone on
/// its best resource; epsilon == 1 means tasks take twice as long.

namespace hbosim::ai {

struct LatencySample {
  double measured_ms;  ///< tau^a: average observed latency this period.
  double expected_ms;  ///< tau^e: isolation latency on the best resource.
};

/// Eq. 4. Requires a non-empty sample set and positive expectations.
double average_latency_ratio(const std::vector<LatencySample>& samples);

/// Plain mean of measured latencies in ms (used in figure dumps).
double mean_measured_ms(const std::vector<LatencySample>& samples);

}  // namespace hbosim::ai
