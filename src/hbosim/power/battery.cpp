#include "hbosim/power/battery.hpp"

#include <algorithm>

#include "hbosim/common/error.hpp"

namespace hbosim::power {

Battery::Battery(const BatterySpec& spec, double initial_soc)
    : spec_(spec), soc_(initial_soc) {
  HB_REQUIRE(spec_.capacity_j > 0.0, "battery capacity must be positive");
  HB_REQUIRE(initial_soc >= 0.0 && initial_soc <= 1.0,
             "initial SoC must be in [0,1]");
}

void Battery::drain(double power_w, double dt_s) {
  HB_REQUIRE(power_w >= 0.0 && dt_s >= 0.0,
             "battery drain needs non-negative power and time");
  const double joules = power_w * dt_s;
  drawn_j_ += joules;
  soc_ = std::max(0.0, soc_ - joules / spec_.capacity_j);
}

}  // namespace hbosim::power
