#include "hbosim/power/power_manager.hpp"

#include <algorithm>
#include <cmath>

#include "hbosim/common/error.hpp"
#include "hbosim/telemetry/telemetry.hpp"

namespace hbosim::power {

namespace {

constexpr std::array<soc::Unit, 3> kUnits = {soc::Unit::Cpu, soc::Unit::Gpu,
                                             soc::Unit::Npu};

GovernorSpec effective_governor(const DevicePowerModel& model,
                                const PowerConfig& cfg) {
  GovernorSpec g = model.governor;
  if (cfg.throttle_temp_c >= 0.0) g.throttle_temp_c = cfg.throttle_temp_c;
  if (cfg.release_temp_c >= 0.0) g.release_temp_c = cfg.release_temp_c;
  return g;
}

}  // namespace

void PowerConfig::validate() const {
  HB_REQUIRE(tick_s > 0.0, "power tick must be positive");
  HB_REQUIRE(ambient_sigma_c >= 0.0, "ambient sigma must be non-negative");
  HB_REQUIRE(ambient_theta > 0.0, "ambient OU theta must be positive");
  HB_REQUIRE(initial_soc >= 0.0 && initial_soc <= 1.0,
             "initial SoC must be in [0,1]");
  if (throttle_temp_c >= 0.0 && release_temp_c >= 0.0) {
    HB_REQUIRE(release_temp_c < throttle_temp_c,
               "release threshold must sit below the throttle threshold");
  }
}

PowerManager::PowerManager(des::Simulator& sim, soc::SocRuntime& soc,
                           DevicePowerModel model, PowerConfig cfg)
    : sim_(sim),
      soc_(soc),
      model_(std::move(model)),
      cfg_(cfg),
      thermal_(model_.thermal),
      governor_(effective_governor(model_, cfg_)),
      battery_(model_.battery, cfg_.initial_soc),
      rng_(cfg_.seed),
      ambient_c_(cfg_.ambient_c),
      max_temp_c_(model_.thermal.init_temp_c) {
  cfg_.validate();
  model_.validate();
  if (cfg_.initial_temp_c >= 0.0) {
    thermal_.reset(cfg_.initial_temp_c);
    max_temp_c_ = cfg_.initial_temp_c;
  }
  for (std::size_t i = 0; i < kUnits.size(); ++i) {
    const des::PsResource& r = soc_.unit(kUnits[i]);
    nominal_capacity_[i] = r.capacity();
    nominal_rate_[i] = r.max_rate_per_job();
    last_work_[i] = r.settled_work_done();
  }
  telem_temp_ = telemetry::intern("power." + model_.device + ".die_temp_c");
  telem_freq_ = telemetry::intern("power." + model_.device + ".freq_scale");
  telem_power_ = telemetry::intern("power." + model_.device + ".total_w");
  last_tick_ = sim_.now();
  pending_tick_ = sim_.schedule_after(cfg_.tick_s, [this] { tick(); });
}

PowerManager::~PowerManager() { stop(); }

void PowerManager::stop() {
  if (stopped_) return;
  stopped_ = true;
  if (pending_tick_ != 0) {
    sim_.cancel(pending_tick_);
    pending_tick_ = 0;
  }
}

void PowerManager::tick() {
  pending_tick_ = 0;
  const SimTime now = sim_.now();
  const double dt = now - last_tick_;
  last_tick_ = now;

  // 1. Sample utilization per unit over the elapsed interval. The AI share
  //    is the virtual work completed divided by what the unit could have
  //    done flat out; the render pipeline shows up as background share.
  double die_w = 0.0;
  const OppPoint& opp = governor_.opp();
  for (std::size_t i = 0; i < kUnits.size(); ++i) {
    des::PsResource& r = soc_.unit(kUnits[i]);
    // Pure read: sampling must not settle PS state, or the chunked
    // floating-point accumulation would nudge completion times and break
    // the bitwise no-throttle parity guarantee (see settled_work_done).
    const double work = r.settled_work_done();
    const double ai_util =
        dt > 0.0 ? (work - last_work_[i]) / (dt * r.capacity()) : 0.0;
    last_work_[i] = work;
    const double util =
        std::clamp(r.background_utilization() + ai_util, 0.0, 1.0);

    // 2. Per-unit watts at the current operating point: dynamic CV^2 f
    //    scaled by utilization, plus voltage- and temperature-dependent
    //    leakage (leakage grows with die temperature, which is what makes
    //    sustained heat self-reinforcing until the governor steps in).
    const UnitPowerModel& u = model_.unit(kUnits[i]);
    const double dynamic_w = u.dynamic_w * util * opp.freq_scale *
                             opp.voltage_scale * opp.voltage_scale;
    const double static_w =
        u.static_w * opp.voltage_scale *
        (1.0 + u.leak_per_c * (thermal_.temp_c() - 25.0));
    die_w += dynamic_w + static_w;
  }

  // 3. Ambient OU step, RC thermal step, battery integration.
  if (cfg_.ambient_sigma_c > 0.0) {
    ambient_c_ += cfg_.ambient_theta * (cfg_.ambient_c - ambient_c_) * dt +
                  cfg_.ambient_sigma_c *
                      std::sqrt(2.0 * cfg_.ambient_theta * dt) * rng_.normal();
  }
  thermal_.step(die_w, ambient_c_, dt);
  const double total_w = die_w + model_.battery.base_system_w;
  battery_.drain(total_w, dt);
  elapsed_s_ += dt;
  max_temp_c_ = std::max(max_temp_c_, thermal_.temp_c());
  if (governor_.throttled()) time_throttled_s_ += dt;

  if (telemetry::enabled()) {
    telemetry::counter("power", telem_temp_, thermal_.temp_c());
    telemetry::counter("power", telem_freq_, governor_.opp().freq_scale);
    telemetry::counter("power", telem_power_, total_w);
    HB_TELEM_COUNT("power.energy_j", total_w * dt);
  }

  // 4. Governor decision; only an actual OPP change touches the SoC.
  const bool was_throttled = governor_.throttled();
  if (governor_.update(thermal_.temp_c(), now)) {
    apply_opp();
    min_freq_scale_ = std::min(min_freq_scale_, governor_.opp().freq_scale);
    if (telemetry::enabled()) {
      telemetry::instant("power", governor_.throttled() && !was_throttled
                                      ? "power.throttle_begin"
                                      : "power.opp_step");
      if (!was_throttled && governor_.throttled()) {
        throttle_span_begin_ = now;
      } else if (was_throttled && !governor_.throttled()) {
        telemetry::sim_span("power", "throttled", throttle_span_begin_, now);
      }
    }
  }

  if (!stopped_) {
    pending_tick_ = sim_.schedule_after(cfg_.tick_s, [this] { tick(); });
  }
}

void PowerManager::apply_opp() {
  const double f = governor_.opp().freq_scale;
  for (std::size_t i = 0; i < kUnits.size(); ++i) {
    des::PsResource& r = soc_.unit(kUnits[i]);
    r.set_capacity(nominal_capacity_[i] * f);
    r.set_max_rate_per_job(nominal_rate_[i] * f);
  }
}

void PowerManager::add_external_energy_j(double j) {
  HB_REQUIRE(std::isfinite(j) && j >= 0.0,
             "external energy must be finite and >= 0");
  if (j == 0.0) return;
  battery_.drain(j, 1.0);  // withdraw exactly j joules
  external_energy_j_ += j;
}

PowerStats PowerManager::stats() const {
  PowerStats s;
  s.energy_j = battery_.energy_drawn_j();
  s.elapsed_s = elapsed_s_;
  s.mean_power_w = elapsed_s_ > 0.0 ? s.energy_j / elapsed_s_ : 0.0;
  s.max_die_temp_c = max_temp_c_;
  s.final_die_temp_c = thermal_.temp_c();
  s.throttle_events = governor_.throttle_events();
  s.time_throttled_s = time_throttled_s_;
  s.min_freq_scale = min_freq_scale_;
  s.battery_soc = battery_.soc();
  s.drain_pct_per_hour =
      s.mean_power_w / model_.battery.capacity_j * 3600.0 * 100.0;
  s.external_energy_j = external_energy_j_;
  return s;
}

}  // namespace hbosim::power
