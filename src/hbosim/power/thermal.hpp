#pragma once

#include "hbosim/power/power_model.hpp"

/// \file thermal.hpp
/// Lumped RC thermal model of one die. The continuous dynamics are
///
///   C dT/dt = P - (T - T_amb) / R
///
/// whose exact solution over a step of length dt with constant P and
/// T_amb is an exponential relaxation toward the steady state
/// T_ss = T_amb + P * R:
///
///   T(t + dt) = T_ss + (T(t) - T_ss) * exp(-dt / (R * C)).
///
/// The stepper uses this closed form rather than forward Euler, so it is
/// unconditionally stable and the tick size only controls how often power
/// is re-sampled, not the integration accuracy within a tick.

namespace hbosim::power {

class ThermalModel {
 public:
  explicit ThermalModel(const ThermalSpec& spec);

  /// Advance the die by `dt_s` under constant dissipation `power_w` and
  /// ambient `ambient_c`.
  void step(double power_w, double ambient_c, double dt_s);

  double temp_c() const { return temp_c_; }
  void reset(double temp_c) { temp_c_ = temp_c; }

  /// Equilibrium temperature under sustained `power_w`.
  double steady_state_c(double power_w, double ambient_c) const {
    return ambient_c + power_w * spec_.r_c_per_w;
  }

  /// Thermal time constant R*C (seconds).
  double time_constant_s() const {
    return spec_.r_c_per_w * spec_.c_j_per_c;
  }

 private:
  ThermalSpec spec_;
  double temp_c_;
};

}  // namespace hbosim::power
