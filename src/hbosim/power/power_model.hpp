#pragma once

#include <string>
#include <vector>

#include "hbosim/soc/resource.hpp"

/// \file power_model.hpp
/// Static power/thermal/battery description of a device — the data half of
/// hbosim::power. A DevicePowerModel is to the power subsystem what a
/// soc::DeviceProfile is to the latency model: per-unit static and dynamic
/// power coefficients, the DVFS operating-point (OPP) ladder the throttling
/// governor walks, the lumped thermal RC of the die, and the battery.
///
/// Numbers are plausible flagship/mid-tier figures assembled from public
/// SoC power analyses (big.LITTLE clusters draw 3-5 W sustained, mobile
/// GPUs 2-4 W, NPUs 1-2 W; die-to-ambient resistance of a passively cooled
/// phone is ~8-12 °C/W with a thermal time constant of one to two
/// minutes). They are not measurements of the named phones; like Table I,
/// they exist so the *coupling* is right: sustained AI+render load heats
/// the die past the governor's threshold within tens of seconds and
/// throttled clocks visibly inflate every latency profile.

namespace hbosim::power {

/// One DVFS operating performance point, relative to the nominal (index 0)
/// point. Dynamic power scales as freq * voltage^2, so stepping down an
/// OPP buys a superlinear power saving for a linear performance loss —
/// the trade every mobile governor exploits.
struct OppPoint {
  double freq_scale = 1.0;
  double voltage_scale = 1.0;
};

/// Power model of one compute unit (CPU cluster / GPU / NPU).
struct UnitPowerModel {
  /// Leakage at the nominal OPP and 25 °C, burned whenever the SoC is on.
  double static_w = 0.1;
  /// Dynamic power at 100% utilization on the nominal OPP.
  double dynamic_w = 1.0;
  /// Linear leakage growth per °C above 25 °C (silicon leakage roughly
  /// doubles every 20-30 °C; a linear term is enough at phone temps).
  double leak_per_c = 0.005;
};

/// Lumped RC thermal model of the die: C dT/dt = P - (T - T_amb) / R.
struct ThermalSpec {
  double r_c_per_w = 10.0;  ///< Die-to-ambient resistance (°C per watt).
  double c_j_per_c = 10.0;  ///< Heat capacity (joules per °C).
  double init_temp_c = 30.0;
};

/// Hysteresis throttling governor: step one OPP down when the die exceeds
/// `throttle_temp_c`, step back up when it cools below `release_temp_c`,
/// and never act twice within `min_dwell_s` (debounces the sawtooth).
struct GovernorSpec {
  double throttle_temp_c = 65.0;
  double release_temp_c = 55.0;
  double min_dwell_s = 2.0;
  /// The OPP ladder, nominal first, monotonically decreasing frequency.
  std::vector<OppPoint> opps;
};

struct BatterySpec {
  double capacity_j = 60000.0;  ///< Full charge (1 Wh = 3600 J).
  /// Everything that is not the SoC die: display, camera, sensors, radios.
  /// Drawn from the battery continuously while a session runs.
  double base_system_w = 1.2;
};

/// Full power description of one device, keyed by the same name as its
/// soc::DeviceProfile.
struct DevicePowerModel {
  std::string device;
  UnitPowerModel cpu;
  UnitPowerModel gpu;
  UnitPowerModel npu;
  ThermalSpec thermal;
  GovernorSpec governor;
  BatterySpec battery;

  const UnitPowerModel& unit(soc::Unit u) const;

  /// Throws hbosim::Error on nonsense (empty OPP ladder, non-monotone
  /// frequencies, inverted thresholds, non-positive RC, ...).
  void validate() const;
};

/// Power models for every soc::builtin_devices() entry.
std::vector<DevicePowerModel> builtin_power_models();

/// Lookup by device name; throws hbosim::Error naming the known devices
/// when `device` has no power model (mirrors soc::find_builtin).
DevicePowerModel find_power_model(const std::string& device);

}  // namespace hbosim::power
