#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "hbosim/common/rng.hpp"
#include "hbosim/des/simulator.hpp"
#include "hbosim/power/battery.hpp"
#include "hbosim/power/governor.hpp"
#include "hbosim/power/power_model.hpp"
#include "hbosim/power/thermal.hpp"
#include "hbosim/soc/device.hpp"

/// \file power_manager.hpp
/// The DES-coupled orchestrator that closes the power/thermal feedback
/// loop. A PowerManager schedules a fixed-interval tick on the session's
/// Simulator; each tick it
///
///   1. settles every SoC unit's progress and samples its utilization over
///      the elapsed interval (completed virtual work / (dt * capacity),
///      plus the render background share),
///   2. converts utilization into watts through the per-unit power model
///      (static leakage + dynamic CV^2 f term at the current OPP),
///   3. steps the lumped RC thermal model and the battery integrator,
///   4. consults the hysteresis governor and — only when the OPP actually
///      changes — rescales each PsResource's capacity and per-job rate cap,
///      which stretches or shrinks every in-flight AI/render job.
///
/// That last step is what the rest of hbosim observes: a hotter die lowers
/// clocks, inference and render phases take longer, the monitored ε/δ
/// degrade, and HBO responds by re-allocating tasks or dropping triangles.
///
/// Determinism: ticks consume Simulator EventIds but, while the governor
/// holds the nominal OPP, never cancel or reschedule anyone else's events
/// (utilization sampling uses the pure read settled_work_done() and
/// set_capacity with an unchanged value is a strict no-op). Per-session runs with the governor disabled —
/// or simply never hot enough to throttle — therefore produce job
/// completion times bitwise identical to a power-enabled run, and
/// power-enabled fleets stay thread-count invariant because each session
/// owns its PowerManager and derives its ambient-noise Rng from the
/// session seed.

namespace hbosim::power {

/// Knobs for one session's power simulation.
struct PowerConfig {
  /// Thermal/battery sampling interval (simulated seconds). The RC step is
  /// exact for constant power, so the tick only bounds how stale the
  /// sampled utilization and governor decisions can be.
  double tick_s = 0.1;

  /// Mean ambient temperature and the OU noise around it. sigma == 0
  /// gives a constant ambient (useful for bit-exact regression tests).
  double ambient_c = 25.0;
  double ambient_sigma_c = 0.5;
  double ambient_theta = 0.02;  ///< OU mean-reversion rate (1/s).

  double initial_soc = 1.0;
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;

  /// Starting die temperature; negative means "use the device model's
  /// init_temp_c". Useful to model a device that is already warm from
  /// prior use — short sessions then reach the throttle band within
  /// seconds instead of needing a full RC climb from cold.
  double initial_temp_c = -1.0;

  /// Governor override thresholds; negative means "use the device
  /// model's defaults". Setting throttle above any reachable temperature
  /// effectively disables throttling while keeping power/battery metrics.
  double throttle_temp_c = -1.0;
  double release_temp_c = -1.0;

  void validate() const;
};

/// Roll-up of one session's power/thermal history.
struct PowerStats {
  double energy_j = 0.0;         ///< Total battery draw (die + system base).
  double mean_power_w = 0.0;     ///< energy_j / elapsed_s.
  double max_die_temp_c = 0.0;
  double final_die_temp_c = 0.0;
  std::uint64_t throttle_events = 0;  ///< Governor down-steps.
  double time_throttled_s = 0.0;      ///< Sim-time spent below nominal OPP.
  double min_freq_scale = 1.0;        ///< Deepest OPP reached.
  double battery_soc = 1.0;           ///< Remaining charge at roll-up time.
  double drain_pct_per_hour = 0.0;    ///< Projected from mean power.
  double elapsed_s = 0.0;             ///< Sim-time covered by ticks.
  /// Subset of energy_j charged through add_external_energy_j (radio
  /// transmissions of offloaded inferences, etc.).
  double external_energy_j = 0.0;
};

class PowerManager {
 public:
  /// Attaches to `soc`'s resources and self-schedules the first tick.
  /// `model` must validate() and should match the SocRuntime's device.
  PowerManager(des::Simulator& sim, soc::SocRuntime& soc,
               DevicePowerModel model, PowerConfig cfg);
  ~PowerManager();

  PowerManager(const PowerManager&) = delete;
  PowerManager& operator=(const PowerManager&) = delete;

  /// Stop ticking (cancels the pending tick event). Idempotent.
  void stop();

  double die_temp_c() const { return thermal_.temp_c(); }
  double freq_scale() const { return governor_.opp().freq_scale; }
  bool throttled() const { return governor_.throttled(); }
  double battery_soc() const { return battery_.soc(); }
  double total_energy_j() const { return battery_.energy_drawn_j(); }

  /// Charge `j` joules of off-die consumption (e.g. the radio energy of
  /// an offloaded inference exchange, see hbosim::offload) straight to
  /// the battery reservoir. Bypasses the thermal model — the antenna
  /// does not heat the die — but flows into energy_j / mean_power_w and
  /// therefore into the w_energy joint cost. No-op at j == 0.
  void add_external_energy_j(double j);
  double external_energy_j() const { return external_energy_j_; }

  const DevicePowerModel& model() const { return model_; }
  const PowerConfig& config() const { return cfg_; }

  /// Stats up to the last completed tick.
  PowerStats stats() const;

 private:
  void tick();
  /// Rescale every unit's PsResource to the governor's current OPP.
  void apply_opp();

  des::Simulator& sim_;
  soc::SocRuntime& soc_;
  DevicePowerModel model_;
  PowerConfig cfg_;

  ThermalModel thermal_;
  ThrottleGovernor governor_;
  Battery battery_;
  Rng rng_;

  double ambient_c_;
  /// work_done() snapshot per unit at the previous tick.
  std::array<double, 3> last_work_{};
  /// Nominal (unthrottled) capacity / rate cap per unit, captured at
  /// attach time so repeated rescales never compound.
  std::array<double, 3> nominal_capacity_{};
  std::array<double, 3> nominal_rate_{};

  SimTime last_tick_ = 0.0;
  des::EventId pending_tick_ = 0;
  bool stopped_ = false;
  double external_energy_j_ = 0.0;

  // Rolling stats.
  double max_temp_c_;
  double min_freq_scale_ = 1.0;
  double time_throttled_s_ = 0.0;
  double elapsed_s_ = 0.0;
  SimTime throttle_span_begin_ = 0.0;  ///< Start of current throttled span.

  // Interned telemetry names (per-session suffix keeps fleet traces apart).
  const char* telem_temp_;
  const char* telem_freq_;
  const char* telem_power_;
};

}  // namespace hbosim::power
