#include "hbosim/power/governor.hpp"

#include "hbosim/common/error.hpp"

namespace hbosim::power {

ThrottleGovernor::ThrottleGovernor(const GovernorSpec& spec) : spec_(spec) {
  HB_REQUIRE(!spec_.opps.empty(), "governor needs at least one OPP");
  HB_REQUIRE(spec_.release_temp_c < spec_.throttle_temp_c,
             "governor release threshold must sit below the throttle one");
}

bool ThrottleGovernor::update(double die_temp_c, SimTime now) {
  if (ever_changed_ && now - last_change_ < spec_.min_dwell_s) return false;

  int next = index_;
  if (die_temp_c > spec_.throttle_temp_c &&
      index_ + 1 < static_cast<int>(spec_.opps.size())) {
    next = index_ + 1;
  } else if (die_temp_c < spec_.release_temp_c && index_ > 0) {
    next = index_ - 1;
  }
  if (next == index_) return false;

  if (next > index_) ++down_steps_;
  index_ = next;
  last_change_ = now;
  ever_changed_ = true;
  return true;
}

}  // namespace hbosim::power
