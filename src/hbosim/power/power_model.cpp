#include "hbosim/power/power_model.hpp"

#include "hbosim/common/error.hpp"

namespace hbosim::power {

const UnitPowerModel& DevicePowerModel::unit(soc::Unit u) const {
  switch (u) {
    case soc::Unit::Cpu: return cpu;
    case soc::Unit::Gpu: return gpu;
    case soc::Unit::Npu: return npu;
  }
  HB_ASSERT(false, "unreachable unit");
  return cpu;
}

void DevicePowerModel::validate() const {
  HB_REQUIRE(!device.empty(), "power model needs a device name");
  for (int i = 0; i < soc::kNumUnits; ++i) {
    const UnitPowerModel& m = unit(static_cast<soc::Unit>(i));
    HB_REQUIRE(m.static_w >= 0.0 && m.dynamic_w >= 0.0,
               "unit power coefficients must be non-negative");
    HB_REQUIRE(m.leak_per_c >= 0.0, "leakage slope must be non-negative");
  }
  HB_REQUIRE(thermal.r_c_per_w > 0.0 && thermal.c_j_per_c > 0.0,
             "thermal RC must be positive");
  HB_REQUIRE(!governor.opps.empty(), "governor needs at least one OPP");
  HB_REQUIRE(governor.opps.front().freq_scale == 1.0,
             "OPP 0 must be the nominal point (freq_scale 1)");
  for (std::size_t i = 0; i < governor.opps.size(); ++i) {
    const OppPoint& p = governor.opps[i];
    HB_REQUIRE(p.freq_scale > 0.0 && p.voltage_scale > 0.0,
               "OPP scales must be positive");
    if (i > 0)
      HB_REQUIRE(p.freq_scale < governor.opps[i - 1].freq_scale,
                 "OPP frequencies must decrease down the ladder");
  }
  HB_REQUIRE(governor.release_temp_c < governor.throttle_temp_c,
             "governor release threshold must sit below the throttle one");
  HB_REQUIRE(governor.min_dwell_s >= 0.0, "governor dwell must be >= 0");
  HB_REQUIRE(battery.capacity_j > 0.0, "battery capacity must be positive");
  HB_REQUIRE(battery.base_system_w >= 0.0,
             "base system power must be non-negative");
}

namespace {

UnitPowerModel unit_w(double static_w, double dynamic_w,
                      double leak_per_c = 0.005) {
  UnitPowerModel m;
  m.static_w = static_w;
  m.dynamic_w = dynamic_w;
  m.leak_per_c = leak_per_c;
  return m;
}

/// Five-step ladder shared by the builtin devices; per-device thermal RC
/// and thresholds differentiate how quickly each walks it. Voltage tracks
/// frequency sublinearly (DVFS curves flatten near the bottom).
std::vector<OppPoint> default_ladder() {
  return {{1.00, 1.00}, {0.85, 0.92}, {0.70, 0.84},
          {0.55, 0.76}, {0.40, 0.68}};
}

}  // namespace

std::vector<DevicePowerModel> builtin_power_models() {
  std::vector<DevicePowerModel> out;

  {
    // Galaxy S22: the hottest-running of the three — high sustained CPU/GPU
    // draw into a compact chassis (low R would mean good cooling; the S22's
    // vapor chamber is small, so R stays high and the governor acts early).
    DevicePowerModel d;
    d.device = "Galaxy S22";
    d.cpu = unit_w(0.35, 5.0);
    d.gpu = unit_w(0.30, 4.0);
    d.npu = unit_w(0.10, 1.8);
    d.thermal = {9.0, 11.0, 30.0};
    d.governor = {63.0, 54.0, 2.0, default_ladder()};
    d.battery = {3700.0 * 3.85 * 3.6, 1.3};  // 3700 mAh @ 3.85 V
    out.push_back(std::move(d));
  }
  {
    // Pixel 7 (Tensor G2): slightly lower peak draw, similar passive
    // cooling; the TPU is efficient for what it does.
    DevicePowerModel d;
    d.device = "Pixel 7";
    d.cpu = unit_w(0.30, 4.5);
    d.gpu = unit_w(0.25, 3.5);
    d.npu = unit_w(0.08, 1.5);
    d.thermal = {10.0, 12.0, 30.0};
    d.governor = {65.0, 55.0, 2.0, default_ladder()};
    d.battery = {4355.0 * 3.85 * 3.6, 1.2};  // 4355 mAh @ 3.85 V
    out.push_back(std::move(d));
  }
  {
    // MidTier: lower absolute power but a cheap chassis (high R) and a
    // conservative governor — it throttles at lower load than a flagship.
    DevicePowerModel d;
    d.device = "MidTier";
    d.cpu = unit_w(0.25, 3.0);
    d.gpu = unit_w(0.20, 2.2);
    d.npu = unit_w(0.06, 1.0);
    d.thermal = {13.0, 9.0, 30.0};
    d.governor = {60.0, 52.0, 2.0, default_ladder()};
    d.battery = {5000.0 * 3.85 * 3.6, 1.0};  // 5000 mAh @ 3.85 V
    out.push_back(std::move(d));
  }

  return out;
}

DevicePowerModel find_power_model(const std::string& device) {
  std::string known;
  for (DevicePowerModel& d : builtin_power_models()) {
    if (d.device == device) return std::move(d);
    if (!known.empty()) known += ", ";
    known += d.device;
  }
  throw Error("no power model for device '" + device + "' (have: " + known +
              "); pass an explicit DevicePowerModel for custom devices");
}

}  // namespace hbosim::power
