#pragma once

#include "hbosim/power/power_model.hpp"

/// \file battery.hpp
/// State-of-charge integrator. Coulomb counting in the energy domain: the
/// battery is a fixed reservoir of joules and every tick withdraws
/// power * dt. No rate-capacity (Peukert) or voltage-sag effects — session
/// horizons are minutes, where a linear drain is an excellent fit.

namespace hbosim::power {

class Battery {
 public:
  explicit Battery(const BatterySpec& spec, double initial_soc = 1.0);

  /// Withdraw `power_w * dt_s` joules; SoC clamps at 0 (the phone would
  /// be dead, but the simulation keeps running so metrics stay complete).
  void drain(double power_w, double dt_s);

  /// Remaining charge in [0, 1].
  double soc() const { return soc_; }
  bool empty() const { return soc_ <= 0.0; }

  /// Total energy withdrawn so far (joules), including the clamped tail.
  double energy_drawn_j() const { return drawn_j_; }

  const BatterySpec& spec() const { return spec_; }

 private:
  BatterySpec spec_;
  double soc_;
  double drawn_j_ = 0.0;
};

}  // namespace hbosim::power
