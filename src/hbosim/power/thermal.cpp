#include "hbosim/power/thermal.hpp"

#include <cmath>

#include "hbosim/common/error.hpp"

namespace hbosim::power {

ThermalModel::ThermalModel(const ThermalSpec& spec)
    : spec_(spec), temp_c_(spec.init_temp_c) {
  HB_REQUIRE(spec_.r_c_per_w > 0.0 && spec_.c_j_per_c > 0.0,
             "thermal RC must be positive");
}

void ThermalModel::step(double power_w, double ambient_c, double dt_s) {
  HB_REQUIRE(dt_s >= 0.0, "thermal step must be non-negative");
  if (dt_s == 0.0) return;
  const double t_ss = steady_state_c(power_w, ambient_c);
  const double decay = std::exp(-dt_s / time_constant_s());
  temp_c_ = t_ss + (temp_c_ - t_ss) * decay;
}

}  // namespace hbosim::power
