#pragma once

#include <cstdint>

#include "hbosim/common/types.hpp"
#include "hbosim/power/power_model.hpp"

/// \file governor.hpp
/// Hysteresis throttling governor. Mirrors the step-wise thermal
/// governors Android SoCs ship (thermal-engine / thermal HAL): when the
/// die crosses the throttle threshold the governor steps one OPP down the
/// ladder; when it cools below the (lower) release threshold it steps
/// back up. A minimum dwell between steps debounces the sawtooth the RC
/// dynamics would otherwise excite. The governor itself is pure decision
/// logic — applying the chosen OPP to the SoC's PsResources is the
/// PowerManager's job, which keeps this class trivially testable.

namespace hbosim::power {

class ThrottleGovernor {
 public:
  explicit ThrottleGovernor(const GovernorSpec& spec);

  /// Consult the thresholds at simulated time `now`. Returns true when
  /// the OPP index changed (the caller must re-apply frequencies).
  bool update(double die_temp_c, SimTime now);

  int opp_index() const { return index_; }
  const OppPoint& opp() const { return spec_.opps[index_]; }
  bool throttled() const { return index_ > 0; }

  /// Downward steps taken so far (the "throttle events" metric).
  std::uint64_t throttle_events() const { return down_steps_; }

  const GovernorSpec& spec() const { return spec_; }

 private:
  GovernorSpec spec_;
  int index_ = 0;
  SimTime last_change_ = 0.0;
  bool ever_changed_ = false;
  std::uint64_t down_steps_ = 0;
};

}  // namespace hbosim::power
