#pragma once

#include <functional>

#include "hbosim/des/simulator.hpp"

/// \file process.hpp
/// Small process helpers layered on the event queue.

namespace hbosim::des {

/// Invokes a callback every `period` seconds until stopped. The first tick
/// fires after `initial_delay` (default: one full period).
class PeriodicProcess {
 public:
  using Tick = std::function<void()>;

  PeriodicProcess(Simulator& sim, SimDuration period, Tick tick);
  ~PeriodicProcess();

  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  /// Begin ticking; `initial_delay` < 0 means "one period from now".
  void start(SimDuration initial_delay = -1.0);
  void stop();
  bool running() const { return running_; }

  /// Change the period; if running, the pending tick is re-armed to fire
  /// one new period from now.
  void set_period(SimDuration period);
  SimDuration period() const { return period_; }

 private:
  void arm();
  void on_tick();

  Simulator& sim_;
  SimDuration period_;
  Tick tick_;
  bool running_ = false;
  EventId pending_ = 0;
};

}  // namespace hbosim::des
