#include "hbosim/des/process.hpp"

#include "hbosim/common/error.hpp"

namespace hbosim::des {

PeriodicProcess::PeriodicProcess(Simulator& sim, SimDuration period, Tick tick)
    : sim_(sim), period_(period), tick_(std::move(tick)) {
  HB_REQUIRE(period_ > 0.0, "PeriodicProcess period must be positive");
  HB_REQUIRE(tick_ != nullptr, "PeriodicProcess requires a tick callback");
}

PeriodicProcess::~PeriodicProcess() { stop(); }

void PeriodicProcess::start(SimDuration initial_delay) {
  HB_REQUIRE(!running_, "PeriodicProcess already running");
  running_ = true;
  const SimDuration delay = initial_delay < 0.0 ? period_ : initial_delay;
  pending_ = sim_.schedule_after(delay, [this] { on_tick(); });
}

void PeriodicProcess::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != 0) {
    sim_.cancel(pending_);
    pending_ = 0;
  }
}

void PeriodicProcess::set_period(SimDuration period) {
  HB_REQUIRE(period > 0.0, "PeriodicProcess period must be positive");
  period_ = period;
  // Take effect immediately: the next tick fires one new period from now.
  if (running_ && pending_ != 0) {
    sim_.cancel(pending_);
    arm();
  }
}

void PeriodicProcess::arm() {
  pending_ = sim_.schedule_after(period_, [this] { on_tick(); });
}

void PeriodicProcess::on_tick() {
  pending_ = 0;
  // Re-arm before the callback so that tick_() may stop() the process.
  arm();
  tick_();
}

}  // namespace hbosim::des
