#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "hbosim/des/sched_trace.hpp"

/// \file sched_analyzer.hpp
/// Offline scheduler forensics over a recorded SchedTrace.
///
/// The analyzer replays the lifecycle event stream exactly (see
/// sched_trace.hpp for why the replay is exact, not sampled) and derives
/// the artifacts a scheduling study needs:
///
///  - per-job records: turnaround, ideal (contention-free) service time,
///    wait = turnaround - ideal, slowdown = turnaround / ideal;
///  - wait and slowdown distributions (p50/p95/p99) per resource and per
///    job class (the AI engine tags jobs "model@delegate");
///  - Jain fairness index over per-class attained service in tumbling
///    sim-time windows, and its floor across the run;
///  - a starvation detector flagging jobs whose wait exceeded k x their
///    class median, with the contending job set at the flagging instant;
///  - Gantt timelines, exported as CSV and as Perfetto async slices on
///    the sim-time pid (via telemetry::sim_span).
///
/// Everything here runs after the simulation completed; the analyzer
/// never touches a Simulator and cannot perturb results.

namespace hbosim::des {

/// Five-number summary of one latency-like sample (seconds or ratios).
struct LatencyDist {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// One job's reconstructed lifecycle. Jobs whose Submit record fell off a
/// wrapped ring are not reconstructable and are excluded (counted in
/// SchedHealth::dropped_events via the trace's drop counters).
struct SchedJobRecord {
  std::uint16_t resource = 0;
  JobId job = 0;
  const char* cls = nullptr;  ///< Interned class tag; null -> untagged.
  double submit_s = 0.0;
  double end_s = 0.0;       ///< Completion/cancel time, or trace end.
  double demand = 0.0;      ///< Rate-1 seconds requested.
  double cores = 0.0;
  double ideal_s = 0.0;     ///< demand / solo_rate.
  double turnaround_s = 0.0;
  double wait_s = 0.0;      ///< max(0, turnaround - ideal).
  double slowdown = 1.0;    ///< turnaround / ideal.
  bool completed = false;   ///< False: cancelled or still in flight.
};

/// Wait/slowdown roll-up for one job class on one resource.
struct SchedClassStats {
  std::string cls;
  std::size_t jobs = 0;  ///< Completed jobs.
  double attained_service_s = 0.0;
  double median_wait_s = 0.0;
  LatencyDist wait;
  LatencyDist slowdown;
};

struct SchedResourceStats {
  std::string resource;
  std::size_t jobs = 0;  ///< Completed jobs analyzed.
  double service_s = 0.0;  ///< Total rate-1 service delivered.
  LatencyDist wait;
  LatencyDist slowdown;
  std::vector<SchedClassStats> classes;  ///< Sorted by class name.
};

/// Jain fairness of per-class attained service over one tumbling window.
/// J = (sum x)^2 / (n * sum x^2) over classes active in the window:
/// 1.0 when every class got equal service, 1/n when one class got it all.
struct FairnessWindow {
  std::uint16_t resource = 0;
  double begin_s = 0.0;
  double end_s = 0.0;
  double jain = 1.0;
  std::size_t classes = 0;  ///< Classes with service in the window.
};

/// One flagged starving job plus its forensic context.
struct StarvedJob {
  SchedJobRecord job;
  double threshold_s = 0.0;   ///< k x max(class median wait, floor).
  double flagged_at_s = 0.0;  ///< Instant the job's wait crossed it.
  /// Jobs in service on the same resource at flagged_at_s (the
  /// contenders the starving job was losing to), as (id, class) pairs.
  std::vector<std::pair<JobId, std::string>> contenders;
};

/// Compact roll-up of one trace's forensics — what a fleet carries per
/// session into FleetMetrics::SchedHealth.
struct SchedHealth {
  std::size_t jobs = 0;  ///< Completed jobs analyzed across resources.
  std::uint64_t events = 0;          ///< Records the trace captured.
  std::uint64_t dropped_events = 0;  ///< Records lost to ring wrap.
  double worst_p99_slowdown = 0.0;   ///< Max p99 slowdown over resources.
  double fairness_floor = 1.0;       ///< Min windowed Jain index.
  std::size_t starved_jobs = 0;
};

struct SchedAnalyzerConfig {
  /// A completed job is starving when wait > k x max(median, floor) for
  /// its class on its resource.
  double starvation_k = 4.0;
  /// Floor under the class median (seconds): classes whose median wait is
  /// ~0 (uncontended) would otherwise flag on microscopic jitter.
  double min_wait_floor_s = 1e-3;
  /// Tumbling fairness-window width in sim seconds.
  double fairness_window_s = 5.0;
};

class SchedAnalyzer {
 public:
  explicit SchedAnalyzer(const SchedTrace& trace,
                         SchedAnalyzerConfig cfg = {});

  const SchedAnalyzerConfig& config() const { return cfg_; }

  /// All reconstructed jobs, ordered by (resource, submit time, id).
  const std::vector<SchedJobRecord>& jobs() const { return jobs_; }
  const std::vector<SchedResourceStats>& resources() const {
    return resources_;
  }
  const std::vector<FairnessWindow>& fairness_windows() const {
    return windows_;
  }
  const std::vector<StarvedJob>& starved() const { return starved_; }
  const SchedHealth& health() const { return health_; }

  /// Gantt timeline as CSV (RFC-4180 quoting), one row per job.
  void write_gantt_csv(std::ostream& os) const;

  /// Emit every completed job as a sim-time async slice (cat "sched",
  /// name = class tag) on track `track` via telemetry::sim_span — lands
  /// on the same Perfetto sim-time pid as the ai/hbo spans. No-op without
  /// an active TelemetrySession.
  void export_perfetto_gantt(std::uint64_t track) const;

  /// Human-readable forensics report (fleet_demo --sched).
  void print_report(std::ostream& os) const;

 private:
  void replay(const SchedTrace& trace);
  void summarize();
  void detect_starvation();

  SchedAnalyzerConfig cfg_;
  std::vector<std::string> resource_names_;
  std::vector<SchedJobRecord> jobs_;
  std::vector<SchedResourceStats> resources_;
  std::vector<FairnessWindow> windows_;
  std::vector<StarvedJob> starved_;
  SchedHealth health_;
};

}  // namespace hbosim::des
