#include "hbosim/des/sched_analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

#include "hbosim/common/stats.hpp"
#include "hbosim/common/table.hpp"
#include "hbosim/telemetry/telemetry.hpp"

namespace hbosim::des {

namespace {

constexpr const char* kUntagged = "(untagged)";

/// Service below this (seconds of rate-1 work in a window) is floating-
/// point residue from clamped accrual, not real attained service.
constexpr double kServiceEps = 1e-12;

LatencyDist summarize_dist(std::vector<double> values) {
  LatencyDist out;
  out.count = values.size();
  if (values.empty()) return out;
  double acc = 0.0;
  for (double v : values) acc += v;
  out.mean = acc / static_cast<double>(values.size());
  std::sort(values.begin(), values.end());
  out.max = values.back();
  out.p50 = percentile_sorted(values, 50.0);
  out.p95 = percentile_sorted(values, 95.0);
  out.p99 = percentile_sorted(values, 99.0);
  return out;
}

double jain_index(const std::map<std::string, double>& service) {
  double sum = 0.0, sum_sq = 0.0;
  std::size_t n = 0;
  for (const auto& [cls, x] : service) {
    if (x <= kServiceEps) continue;
    sum += x;
    sum_sq += x * x;
    ++n;
  }
  if (n == 0 || sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

/// Replay bookkeeping for one in-service job.
struct LiveJob {
  const char* cls = nullptr;
  double demand = 0.0;
  double cores = 0.0;
  double submit_s = 0.0;
  double solo_rate = 0.0;
  double remaining = 0.0;
};

}  // namespace

SchedAnalyzer::SchedAnalyzer(const SchedTrace& trace, SchedAnalyzerConfig cfg)
    : cfg_(cfg) {
  health_.events = trace.total_recorded();
  health_.dropped_events = trace.total_dropped();
  replay(trace);
  summarize();
  detect_starvation();
  health_.jobs = 0;
  for (const SchedResourceStats& r : resources_) health_.jobs += r.jobs;
  health_.worst_p99_slowdown = 0.0;
  for (const SchedResourceStats& r : resources_) {
    if (r.jobs > 0)
      health_.worst_p99_slowdown =
          std::max(health_.worst_p99_slowdown, r.slowdown.p99);
  }
  health_.fairness_floor = 1.0;
  for (const FairnessWindow& w : windows_)
    health_.fairness_floor = std::min(health_.fairness_floor, w.jain);
  health_.starved_jobs = starved_.size();
}

void SchedAnalyzer::replay(const SchedTrace& trace) {
  const double window_s = cfg_.fairness_window_s;
  resource_names_.resize(trace.resources());
  resources_.resize(trace.resources());

  for (std::size_t r = 0; r < trace.resources(); ++r) {
    const auto rid = static_cast<std::uint16_t>(r);
    resource_names_[r] = trace.resource_name(rid);
    resources_[r].resource = resource_names_[r];
    const std::vector<SchedEvent> events = trace.events(rid);
    if (events.empty()) continue;

    std::map<JobId, LiveJob> live;
    // Per-class attained service, bucketed into tumbling windows keyed by
    // floor(t / window_s). Keyed by class *name* (not interned pointer)
    // so iteration — and therefore every floating-point summation order
    // downstream — is independent of allocation addresses.
    std::map<std::uint64_t, std::map<std::string, double>> window_service;
    double share = 0.0;
    double t_prev = events.front().time;

    // Exact replay: between consecutive records the active set and the
    // per-job rate are constant (every rate-changing operation emits a
    // record), so each live job accrues share * dt, clamped to its
    // remaining demand — the same arithmetic PsResource::advance_progress
    // performs, re-derived offline.
    auto accrue = [&](double from, double to) {
      double t = from;
      while (t < to) {
        const auto widx =
            static_cast<std::uint64_t>(std::floor(t / window_s));
        const double wend = (static_cast<double>(widx) + 1.0) * window_s;
        const double t_next = std::min(to, wend);
        const double dt = t_next - t;
        if (dt > 0.0 && share > 0.0) {
          auto& bucket = window_service[widx];
          for (auto& [id, job] : live) {
            const double used = std::min(share * dt, job.remaining);
            if (used > 0.0) {
              job.remaining -= used;
              bucket[job.cls != nullptr ? job.cls : kUntagged] += used;
            }
          }
        }
        if (t_next <= t) break;  // window_s underflow guard
        t = t_next;
      }
    };

    auto finalize = [&](const LiveJob& job, JobId id, double end_s,
                        bool completed) {
      SchedJobRecord rec;
      rec.resource = rid;
      rec.job = id;
      rec.cls = job.cls;
      rec.submit_s = job.submit_s;
      rec.end_s = end_s;
      rec.demand = job.demand;
      rec.cores = job.cores;
      rec.turnaround_s = end_s - job.submit_s;
      rec.ideal_s = job.solo_rate > 0.0 ? job.demand / job.solo_rate : 0.0;
      if (rec.ideal_s > 0.0) {
        rec.wait_s = std::max(0.0, rec.turnaround_s - rec.ideal_s);
        rec.slowdown = rec.turnaround_s / rec.ideal_s;
      } else {
        rec.wait_s = rec.turnaround_s;
        rec.slowdown = 1.0;
      }
      rec.completed = completed;
      jobs_.push_back(rec);
    };

    for (const SchedEvent& ev : events) {
      accrue(t_prev, ev.time);
      t_prev = ev.time;
      switch (ev.kind) {
        case SchedEventKind::Submit: {
          LiveJob job;
          job.cls = ev.cls;
          job.demand = ev.demand;
          job.cores = ev.cores;
          job.submit_s = ev.time;
          job.solo_rate = ev.solo_rate;
          job.remaining = ev.demand;
          live[ev.job] = job;
          share = ev.share;
          break;
        }
        case SchedEventKind::Complete:
        case SchedEventKind::Cancel: {
          auto it = live.find(ev.job);
          if (it != live.end()) {
            finalize(it->second, ev.job, ev.time,
                     ev.kind == SchedEventKind::Complete);
            live.erase(it);
          }
          // else: the Submit fell off a wrapped ring — the job is not
          // reconstructable; the drop counter already accounts for it.
          share = ev.share;
          break;
        }
        case SchedEventKind::Rescale:
          share = ev.share;
          break;
      }
    }
    // Jobs still in service when the trace ended: recorded for the Gantt
    // (end = last event time) but excluded from wait/slowdown stats.
    for (const auto& [id, job] : live) finalize(job, id, t_prev, false);

    // Windowed fairness for this resource.
    for (const auto& [widx, service] : window_service) {
      std::size_t classes = 0;
      for (const auto& [cls, x] : service)
        if (x > kServiceEps) ++classes;
      if (classes == 0) continue;
      FairnessWindow w;
      w.resource = rid;
      w.begin_s = static_cast<double>(widx) * window_s;
      w.end_s = w.begin_s + window_s;
      w.jain = jain_index(service);
      w.classes = classes;
      windows_.push_back(w);
      double total = 0.0;
      for (const auto& [cls, x] : service) total += x;
      resources_[r].service_s += total;
    }
  }

  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const SchedJobRecord& a, const SchedJobRecord& b) {
                     if (a.resource != b.resource) return a.resource < b.resource;
                     if (a.submit_s != b.submit_s) return a.submit_s < b.submit_s;
                     return a.job < b.job;
                   });
}

void SchedAnalyzer::summarize() {
  for (std::size_t r = 0; r < resources_.size(); ++r) {
    SchedResourceStats& rs = resources_[r];
    std::vector<double> waits, slowdowns;
    // Class name -> (waits, slowdowns, attained). std::map: deterministic
    // name order in the output regardless of intern addresses.
    std::map<std::string, std::pair<std::vector<double>, std::vector<double>>>
        per_class;
    std::map<std::string, double> attained;
    for (const SchedJobRecord& j : jobs_) {
      if (j.resource != r || !j.completed) continue;
      waits.push_back(j.wait_s);
      slowdowns.push_back(j.slowdown);
      const std::string cls = j.cls != nullptr ? j.cls : kUntagged;
      per_class[cls].first.push_back(j.wait_s);
      per_class[cls].second.push_back(j.slowdown);
      attained[cls] += j.demand;
    }
    rs.jobs = waits.size();
    rs.wait = summarize_dist(waits);
    rs.slowdown = summarize_dist(slowdowns);
    for (auto& [cls, ws] : per_class) {
      SchedClassStats cs;
      cs.cls = cls;
      cs.jobs = ws.first.size();
      cs.attained_service_s = attained[cls];
      cs.wait = summarize_dist(ws.first);
      cs.slowdown = summarize_dist(ws.second);
      cs.median_wait_s = cs.wait.p50;
      rs.classes.push_back(std::move(cs));
    }
  }
}

void SchedAnalyzer::detect_starvation() {
  for (std::size_t r = 0; r < resources_.size(); ++r) {
    const SchedResourceStats& rs = resources_[r];
    for (const SchedClassStats& cs : rs.classes) {
      const double threshold =
          cfg_.starvation_k * std::max(cs.median_wait_s, cfg_.min_wait_floor_s);
      for (const SchedJobRecord& j : jobs_) {
        if (j.resource != r || !j.completed) continue;
        const std::string cls = j.cls != nullptr ? j.cls : kUntagged;
        if (cls != cs.cls || j.wait_s <= threshold) continue;
        StarvedJob sj;
        sj.job = j;
        sj.threshold_s = threshold;
        // The job's wait grows monotonically from 0 once its ideal
        // service time has elapsed, so it crossed the threshold at:
        sj.flagged_at_s = j.submit_s + j.ideal_s + threshold;
        for (const SchedJobRecord& other : jobs_) {
          if (other.resource != j.resource) continue;
          if (other.resource == j.resource && other.job == j.job) continue;
          if (other.submit_s <= sj.flagged_at_s &&
              sj.flagged_at_s < other.end_s) {
            sj.contenders.emplace_back(
                other.job,
                other.cls != nullptr ? other.cls : kUntagged);
          }
        }
        std::sort(sj.contenders.begin(), sj.contenders.end());
        starved_.push_back(std::move(sj));
      }
    }
  }
  std::stable_sort(starved_.begin(), starved_.end(),
                   [](const StarvedJob& a, const StarvedJob& b) {
                     if (a.job.resource != b.job.resource)
                       return a.job.resource < b.job.resource;
                     if (a.job.submit_s != b.job.submit_s)
                       return a.job.submit_s < b.job.submit_s;
                     return a.job.job < b.job.job;
                   });
}

void SchedAnalyzer::write_gantt_csv(std::ostream& os) const {
  CsvWriter csv(os, {"resource", "job", "class", "submit_s", "end_s",
                     "demand_s", "cores", "ideal_s", "wait_s", "slowdown",
                     "completed"});
  std::ostringstream num;
  num << std::setprecision(17);
  auto fmt = [&num](double v) {
    num.str("");
    num << v;
    return num.str();
  };
  for (const SchedJobRecord& j : jobs_) {
    csv.row(std::vector<std::string>{
        resource_names_[j.resource], std::to_string(j.job),
        j.cls != nullptr ? j.cls : kUntagged, fmt(j.submit_s), fmt(j.end_s),
        fmt(j.demand), fmt(j.cores), fmt(j.ideal_s), fmt(j.wait_s),
        fmt(j.slowdown), j.completed ? "1" : "0"});
  }
}

void SchedAnalyzer::export_perfetto_gantt(std::uint64_t track) const {
  if (!telemetry::enabled()) return;
  for (const SchedJobRecord& j : jobs_) {
    if (!j.completed) continue;
    const char* name = j.cls != nullptr
                           ? j.cls
                           : telemetry::intern(resource_names_[j.resource]);
    telemetry::sim_span("sched", name, track, j.submit_s, j.end_s);
  }
}

void SchedAnalyzer::print_report(std::ostream& os) const {
  os << "scheduler forensics: " << health_.jobs << " jobs from "
     << health_.events << " events";
  if (health_.dropped_events > 0)
    os << " (" << health_.dropped_events << " dropped: ring wrapped)";
  os << "\n";
  os << "  worst p99 slowdown " << std::fixed << std::setprecision(2)
     << health_.worst_p99_slowdown << "  fairness floor "
     << std::setprecision(3) << health_.fairness_floor << "  starved jobs "
     << health_.starved_jobs << "\n";

  TextTable table({"resource", "jobs", "wait p50/p95/p99 (ms)",
                   "slowdown p50/p95/p99"});
  auto dist3 = [](const LatencyDist& d, double scale, int prec) {
    std::ostringstream s;
    s << std::fixed << std::setprecision(prec) << d.p50 * scale << " / "
      << d.p95 * scale << " / " << d.p99 * scale;
    return s.str();
  };
  for (const SchedResourceStats& rs : resources_) {
    if (rs.jobs == 0) continue;
    table.add_row({rs.resource, std::to_string(rs.jobs),
                   dist3(rs.wait, 1e3, 2), dist3(rs.slowdown, 1.0, 2)});
  }
  table.print(os);

  TextTable classes({"resource", "class", "jobs", "service (s)",
                     "wait p50/p99 (ms)", "slowdown p99"});
  for (const SchedResourceStats& rs : resources_) {
    for (const SchedClassStats& cs : rs.classes) {
      std::ostringstream wait2, sl, svc;
      wait2 << std::fixed << std::setprecision(2) << cs.wait.p50 * 1e3
            << " / " << cs.wait.p99 * 1e3;
      sl << std::fixed << std::setprecision(2) << cs.slowdown.p99;
      svc << std::fixed << std::setprecision(3) << cs.attained_service_s;
      classes.add_row({rs.resource, cs.cls, std::to_string(cs.jobs),
                       svc.str(), wait2.str(), sl.str()});
    }
  }
  classes.print(os);

  if (!windows_.empty()) {
    double mean = 0.0;
    const FairnessWindow* floor = &windows_.front();
    for (const FairnessWindow& w : windows_) {
      mean += w.jain;
      if (w.jain < floor->jain) floor = &w;
    }
    mean /= static_cast<double>(windows_.size());
    os << "  fairness: " << windows_.size() << " windows of " << std::fixed
       << std::setprecision(1) << cfg_.fairness_window_s << " s, mean Jain "
       << std::setprecision(3) << mean << ", floor " << floor->jain << " on "
       << resource_names_[floor->resource] << " at ["
       << std::setprecision(1) << floor->begin_s << ", " << floor->end_s
       << ") s\n";
  }

  if (starved_.empty()) {
    os << "  no starved jobs (k=" << std::fixed << std::setprecision(1)
       << cfg_.starvation_k << ")\n";
  } else {
    os << "  " << starved_.size()
       << " starved jobs (wait > k x class median, k=" << std::fixed
       << std::setprecision(1) << cfg_.starvation_k << "), worst first:\n";
    // Worst offenders only: rank by how far past the threshold each job
    // got; the full set is in starved() / the Gantt CSV.
    std::vector<const StarvedJob*> ranked;
    ranked.reserve(starved_.size());
    for (const StarvedJob& sj : starved_) ranked.push_back(&sj);
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const StarvedJob* a, const StarvedJob* b) {
                       return a->job.wait_s / a->threshold_s >
                              b->job.wait_s / b->threshold_s;
                     });
    if (ranked.size() > 10) ranked.resize(10);
    for (const StarvedJob* sjp : ranked) {
      const StarvedJob& sj = *sjp;
      os << "    " << resource_names_[sj.job.resource] << " job "
         << sj.job.job << " ["
         << (sj.job.cls != nullptr ? sj.job.cls : kUntagged) << "] waited "
         << std::fixed << std::setprecision(2) << sj.job.wait_s * 1e3
         << " ms (threshold " << sj.threshold_s * 1e3 << " ms), "
         << sj.contenders.size() << " contenders at t=" << std::setprecision(3)
         << sj.flagged_at_s << " s:";
      std::size_t shown = 0;
      for (const auto& [id, cls] : sj.contenders) {
        if (shown++ == 6) {
          os << " ...";
          break;
        }
        os << " #" << id << "[" << cls << "]";
      }
      os << "\n";
    }
    if (starved_.size() > ranked.size()) {
      os << "    ... and " << starved_.size() - ranked.size() << " more\n";
    }
  }
}

}  // namespace hbosim::des
