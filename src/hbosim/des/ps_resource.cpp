#include "hbosim/des/ps_resource.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "hbosim/common/error.hpp"
#include "hbosim/telemetry/telemetry.hpp"

namespace hbosim::des {

namespace {
/// Work below this threshold (seconds of service) counts as finished; it
/// absorbs floating-point residue from repeated progress updates.
constexpr double kEpsilon = 1e-12;
}  // namespace

PsResource::PsResource(Simulator& sim, std::string name, double capacity,
                       double max_rate_per_job)
    : sim_(sim),
      name_(std::move(name)),
      traced_jobs_name_(telemetry::intern(name_ + ".active_jobs")),
      traced_cores_name_(telemetry::intern(name_ + ".requested_cores")),
      capacity_(capacity),
      max_rate_per_job_(max_rate_per_job) {
  HB_REQUIRE(capacity_ > 0.0, "PsResource capacity must be positive");
  HB_REQUIRE(max_rate_per_job_ > 0.0, "max_rate_per_job must be positive");
}

void PsResource::trace_depth() const {
  // Sample 1 in `trace_decimation_` depth changes (default 16): per-change
  // emission floods the ring on inference-heavy runs without adding
  // information to the depth series. Decimation 1 records every change —
  // exact counters for scheduler forensics.
  if (trace_decimation_ > 1 && (++trace_decimator_ % trace_decimation_) != 0)
    return;
  telemetry::counter("ps", traced_jobs_name_,
                     static_cast<double>(jobs_.size()));
  telemetry::counter("ps", traced_cores_name_, requested_cores_);
}

void PsResource::set_trace_decimation(std::uint32_t every) {
  HB_REQUIRE(every >= 1, "trace decimation must be >= 1");
  trace_decimation_ = every;
}

SchedTrace* PsResource::sched() const {
  SchedTrace* trace = sim_.sched_trace();
  if (trace == nullptr) return nullptr;
  if (trace != sched_trace_) {
    // First event under this trace: register our per-resource stream.
    sched_trace_ = trace;
    sched_resource_ = trace->register_resource(name_);
  }
  return trace;
}

void PsResource::sched_record(SchedTrace& trace, SchedEventKind kind,
                              JobId job, const char* cls, double demand,
                              double cores, double solo_rate) const {
  SchedEvent ev;
  ev.time = sim_.now();
  ev.kind = kind;
  ev.resource = sched_resource_;
  ev.job = job;
  ev.cls = cls;
  ev.demand = demand;
  ev.cores = cores;
  // The per-job rate now in effect — callers record *after* reschedule(),
  // which is what makes the stream exactly replayable (sched_trace.hpp).
  ev.share = current_rate_;
  ev.solo_rate = solo_rate;
  ev.active_jobs = static_cast<std::uint32_t>(jobs_.size());
  trace.record(ev);
}

double PsResource::shared_rate(double total_cores) const {
  if (total_cores <= 0.0) return 0.0;
  const double available = capacity_ * (1.0 - background_);
  return std::min(max_rate_per_job_, available / total_cores);
}

double PsResource::current_rate_per_job(std::size_t extra_jobs) const {
  return shared_rate(requested_cores_ + static_cast<double>(extra_jobs));
}

void PsResource::advance_progress() {
  const SimTime now = sim_.now();
  const double elapsed = now - last_update_;
  if (elapsed > 0.0 && current_rate_ > 0.0) {
    const double progress = elapsed * current_rate_;
    for (auto& [id, job] : jobs_) {
      const double used = std::min(progress, job.remaining);
      job.remaining -= used;
      work_done_ += used;
    }
  }
  last_update_ = now;
}

void PsResource::reschedule() {
  if (pending_event_ != 0) {
    sim_.cancel(pending_event_);
    pending_event_ = 0;
  }
  current_rate_ = shared_rate(requested_cores_);
  if (jobs_.empty() || current_rate_ <= 0.0) return;

  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& [id, job] : jobs_)
    min_remaining = std::min(min_remaining, job.remaining);
  const double eta = std::max(min_remaining, 0.0) / current_rate_;
  pending_event_ =
      sim_.schedule_after(eta, [this] { on_completion_event(); });
}

void PsResource::on_completion_event() {
  pending_event_ = 0;
  advance_progress();

  // Collect everything that is done before invoking callbacks: a callback
  // may submit new work to this same resource (pipelined phases), so the
  // internal state must be consistent first.
  struct Finished {
    JobId id;
    const char* cls;
    Completion done;
  };
  std::vector<Finished> finished;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->second.remaining <= kEpsilon) {
      finished.push_back(
          Finished{it->first, it->second.cls, std::move(it->second.done)});
      requested_cores_ -= it->second.cores;
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  if (jobs_.empty()) requested_cores_ = 0.0;  // absorb fp residue
  reschedule();
  if (SchedTrace* trace = sched()) {
    // Record completions before the callbacks run: a callback's re-submit
    // lands after them in the stream, matching simulated causality.
    for (const Finished& f : finished)
      sched_record(*trace, SchedEventKind::Complete, f.id, f.cls, 0.0, 0.0,
                   0.0);
  }
  if (telemetry::enabled() && !finished.empty()) trace_depth();
  for (auto& f : finished) {
    if (f.done) f.done();
  }
}

JobId PsResource::submit(double demand, double cores, Completion done,
                         const char* cls) {
  HB_REQUIRE(demand >= 0.0, "job demand must be non-negative");
  HB_REQUIRE(cores > 0.0, "job must request positive cores");
  advance_progress();
  const JobId id = next_job_id_++;
  const double effective = std::max(demand, kEpsilon);
  jobs_.emplace(id, Job{effective, effective, cores, cls, std::move(done)});
  requested_cores_ += cores;
  reschedule();
  if (SchedTrace* trace = sched()) {
    // Admission doubles as start-of-service under processor sharing.
    // solo_rate: what this job would get on the otherwise-empty resource
    // (its contention-free ideal), at the background level it saw.
    sched_record(*trace, SchedEventKind::Submit, id, cls, effective, cores,
                 shared_rate(cores));
  }
  if (telemetry::enabled()) {
    HB_TELEM_COUNT("ps.jobs_submitted", 1.0);
    trace_depth();
  }
  return id;
}

JobId PsResource::submit(double demand, Completion done, const char* cls) {
  return submit(demand, 1.0, std::move(done), cls);
}

bool PsResource::cancel(JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  advance_progress();
  requested_cores_ -= it->second.cores;
  const char* cls = it->second.cls;
  jobs_.erase(it);
  if (jobs_.empty()) requested_cores_ = 0.0;
  reschedule();
  if (SchedTrace* trace = sched())
    sched_record(*trace, SchedEventKind::Cancel, id, cls, 0.0, 0.0, 0.0);
  return true;
}

double PsResource::settled_work_done() const {
  const double elapsed = sim_.now() - last_update_;
  double extra = 0.0;
  if (elapsed > 0.0 && current_rate_ > 0.0) {
    const double progress = elapsed * current_rate_;
    for (const auto& [id, job] : jobs_)
      extra += std::min(progress, job.remaining);
  }
  return work_done_ + extra;
}

void PsResource::set_capacity(double capacity) {
  HB_REQUIRE(capacity > 0.0, "PsResource capacity must be positive");
  if (capacity == capacity_) return;
  advance_progress();
  capacity_ = capacity;
  reschedule();
  if (SchedTrace* trace = sched())
    sched_record(*trace, SchedEventKind::Rescale, 0, nullptr, 0.0, 0.0, 0.0);
}

void PsResource::set_max_rate_per_job(double max_rate) {
  HB_REQUIRE(max_rate > 0.0, "max_rate_per_job must be positive");
  if (max_rate == max_rate_per_job_) return;
  advance_progress();
  max_rate_per_job_ = max_rate;
  reschedule();
  if (SchedTrace* trace = sched())
    sched_record(*trace, SchedEventKind::Rescale, 0, nullptr, 0.0, 0.0, 0.0);
}

void PsResource::set_background_utilization(double u) {
  HB_REQUIRE(u >= 0.0 && u <= 1.0, "background utilization must be in [0,1]");
  const double clamped = std::min(u, max_background_);
  if (clamped == background_) return;
  advance_progress();
  background_ = clamped;
  reschedule();
  if (SchedTrace* trace = sched())
    sched_record(*trace, SchedEventKind::Rescale, 0, nullptr, 0.0, 0.0, 0.0);
}

void PsResource::set_max_background(double u) {
  HB_REQUIRE(u >= 0.0 && u < 1.0, "max background must be in [0,1)");
  max_background_ = u;
  if (background_ > max_background_) set_background_utilization(max_background_);
}

}  // namespace hbosim::des
