#include "hbosim/des/sched_trace.hpp"

#include <algorithm>

#include "hbosim/common/error.hpp"

namespace hbosim::des {

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

const char* sched_event_kind_name(SchedEventKind kind) {
  switch (kind) {
    case SchedEventKind::Submit: return "submit";
    case SchedEventKind::Rescale: return "rescale";
    case SchedEventKind::Complete: return "complete";
    case SchedEventKind::Cancel: return "cancel";
  }
  return "?";
}

SchedTrace::SchedTrace(SchedTraceConfig cfg) : cfg_(cfg) {
  HB_REQUIRE(cfg_.capacity_per_resource >= 1,
             "sched trace ring needs at least one slot");
  capacity_ = round_up_pow2(cfg_.capacity_per_resource);
}

std::uint16_t SchedTrace::register_resource(const std::string& name) {
  HB_REQUIRE(rings_.size() < 0xFFFFu, "too many sched-traced resources");
  ResourceRing ring;
  ring.name = name;
  // Slots are materialized up front: record() on the steady state is then
  // a store + increment, never an allocation.
  ring.slots.resize(capacity_);
  rings_.push_back(std::move(ring));
  return static_cast<std::uint16_t>(rings_.size() - 1);
}

void SchedTrace::record(const SchedEvent& ev) {
  ResourceRing& ring = rings_.at(ev.resource);
  ring.slots[ring.pushed & (capacity_ - 1)] = ev;
  ++ring.pushed;
}

const std::string& SchedTrace::resource_name(std::uint16_t resource) const {
  return rings_.at(resource).name;
}

std::vector<SchedEvent> SchedTrace::events(std::uint16_t resource) const {
  const ResourceRing& ring = rings_.at(resource);
  const std::uint64_t kept = std::min<std::uint64_t>(ring.pushed, capacity_);
  std::vector<SchedEvent> out;
  out.reserve(static_cast<std::size_t>(kept));
  for (std::uint64_t i = ring.pushed - kept; i < ring.pushed; ++i)
    out.push_back(ring.slots[i & (capacity_ - 1)]);
  return out;
}

std::uint64_t SchedTrace::recorded(std::uint16_t resource) const {
  return rings_.at(resource).pushed;
}

std::uint64_t SchedTrace::dropped(std::uint16_t resource) const {
  const std::uint64_t pushed = rings_.at(resource).pushed;
  return pushed > capacity_ ? pushed - capacity_ : 0;
}

std::uint64_t SchedTrace::total_recorded() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < rings_.size(); ++i) total += rings_[i].pushed;
  return total;
}

std::uint64_t SchedTrace::total_dropped() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < rings_.size(); ++i)
    total += dropped(static_cast<std::uint16_t>(i));
  return total;
}

}  // namespace hbosim::des
