#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "hbosim/common/types.hpp"

/// \file trace.hpp
/// Named time-series recorder. Benches use it to collect figure data
/// (e.g., per-task latency over time for Fig. 2) and dump it as CSV.

namespace hbosim::des {

struct TracePoint {
  SimTime time;
  double value;
};

class TraceRecorder {
 public:
  /// Append a sample to the named series.
  void record(const std::string& series, SimTime t, double value);

  /// Append a point-event marker (e.g., "allocation change C5"); markers
  /// render as annotation rows in dumps.
  void mark(SimTime t, const std::string& label);

  bool has_series(const std::string& series) const;
  const std::vector<TracePoint>& series(const std::string& name) const;
  std::vector<std::string> series_names() const;
  const std::vector<std::pair<SimTime, std::string>>& markers() const {
    return markers_;
  }

  /// Average value of a series over [t0, t1] (samples within the window).
  double window_mean(const std::string& series, SimTime t0, SimTime t1) const;

  /// Emit `time,value` CSV for one series.
  void dump_series_csv(const std::string& series, std::ostream& os) const;

  void clear();

 private:
  std::map<std::string, std::vector<TracePoint>> series_;
  std::vector<std::pair<SimTime, std::string>> markers_;
};

}  // namespace hbosim::des
