#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "hbosim/common/arena.hpp"
#include "hbosim/common/types.hpp"

/// \file trace.hpp
/// Named time-series recorder. Benches use it to collect figure data
/// (e.g., per-task latency over time for Fig. 2) and dump it as CSV.
///
/// Two recording APIs share one store: the string API hashes the series
/// name on every call (fine for cold paths), while `series_id()` interns
/// the name once and `record(SeriesId, ...)` appends with a plain vector
/// index — the right shape for per-event recording inside a DES loop.

namespace hbosim::des {

struct TracePoint {
  SimTime time;
  double value;
};

/// Stable handle for a recorder series; valid until clear().
using SeriesId = std::size_t;

/// One recorded series. Point storage grows per sample, so it routes
/// through the session arena when a fleet worker's ArenaScope is active
/// (plain heap otherwise — see common/arena.hpp).
using TraceSeries = std::vector<TracePoint, ArenaAllocator<TracePoint>>;

class TraceRecorder {
 public:
  /// Append a sample to the named series (hashes the name every call).
  void record(const std::string& series, SimTime t, double value);

  /// Intern a series name; repeated calls with the same name return the
  /// same id. Creates the (empty) series if it does not exist yet.
  SeriesId series_id(const std::string& series);

  /// Append a sample via an interned handle — no hashing, no allocation
  /// beyond vector growth.
  void record(SeriesId id, SimTime t, double value);

  /// Append a point-event marker (e.g., "allocation change C5"); markers
  /// render as annotation rows in dumps.
  void mark(SimTime t, const std::string& label);

  bool has_series(const std::string& series) const;
  const TraceSeries& series(const std::string& name) const;
  const TraceSeries& series(SeriesId id) const;
  /// All series names, sorted.
  std::vector<std::string> series_names() const;
  const std::vector<std::pair<SimTime, std::string>>& markers() const {
    return markers_;
  }

  /// Average value of a series over [t0, t1] (samples within the window).
  double window_mean(const std::string& series, SimTime t0, SimTime t1) const;

  /// Emit `time,value` CSV for one series.
  void dump_series_csv(const std::string& series, std::ostream& os) const;

  /// Emit every series and marker as one long-format `time,series,value`
  /// table, rows in time order (ties keep series-registration order, with
  /// markers last). Markers dump as series "marker" with the label in the
  /// value column.
  void dump_all_csv(std::ostream& os) const;

  void clear();

 private:
  struct Series {
    std::string name;
    TraceSeries points;
  };

  const Series* find(const std::string& name) const;

  std::vector<Series> series_;
  std::unordered_map<std::string, SeriesId> index_;
  std::vector<std::pair<SimTime, std::string>> markers_;
};

}  // namespace hbosim::des
