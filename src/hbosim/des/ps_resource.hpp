#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "hbosim/des/sched_trace.hpp"
#include "hbosim/des/simulator.hpp"

/// \file ps_resource.hpp
/// Generalized processor-sharing compute resource.
///
/// A PsResource models one compute unit of a mobile SoC (CPU cluster, GPU,
/// NPU) as a processor-sharing server: the `capacity` (e.g., number of CPU
/// cores, or 1.0 for an accelerator) is divided among the active jobs, with
/// each job's instantaneous rate additionally capped at
/// `max_rate_per_job` (a single inference cannot use more than one CPU
/// core). A *background utilization* models the AR render pipeline: a
/// fraction of capacity continuously consumed by drawing virtual objects,
/// unavailable to AI jobs. This single mechanism reproduces the paper's
/// motivation observations (Fig. 2): crowding a delegate inflates every
/// task's latency, and raising triangle count starves GPU-resident phases.
///
/// Job demands are expressed in seconds-at-rate-1 (i.e., the time the work
/// takes alone on one unit of this resource).

namespace hbosim::des {

class PsResource {
 public:
  using Completion = std::function<void()>;

  PsResource(Simulator& sim, std::string name, double capacity,
             double max_rate_per_job = 1.0);

  PsResource(const PsResource&) = delete;
  PsResource& operator=(const PsResource&) = delete;

  const std::string& name() const { return name_; }
  double capacity() const { return capacity_; }
  double max_rate_per_job() const { return max_rate_per_job_; }

  /// Rescale total capacity mid-service (DVFS: the governor stepped this
  /// unit's clock). Accrued progress is settled at the old rate first and
  /// the pending completion event is re-derived from the new per-job rate,
  /// so every in-flight job's remaining *virtual work* (seconds-at-rate-1)
  /// is preserved exactly — only its wall-clock completion time moves.
  /// A call with the current capacity is a strict no-op (no event churn),
  /// which keeps never-throttled runs bit-identical to runs without a
  /// governor attached.
  void set_capacity(double capacity);

  /// Rescale the per-job rate cap alongside capacity. Needed on multi-core
  /// clusters: halving a 6-core cluster's clock must also halve what a
  /// single-threaded job can extract, which `set_capacity` alone would not
  /// model (the min() would still allow rate 1). Same settlement and
  /// no-op semantics as set_capacity.
  void set_max_rate_per_job(double max_rate);

  /// work_done() projected to sim.now(): the settled counter plus the
  /// progress in-flight jobs have accrued since the last internal update.
  /// A pure read — it must NOT settle state, because splitting the
  /// `elapsed * rate` products into different chunk boundaries changes
  /// their last floating-point bits, and a 1e-16 s shift in one completion
  /// time diverges a chaotic DES trajectory. The power model samples
  /// per-tick utilization through this so that an attached-but-idle
  /// governor leaves the simulation bitwise untouched.
  double settled_work_done() const;

  /// Submit a job requiring `demand` seconds of rate-1 service while
  /// holding `cores` units of this resource (a multi-threaded CPU
  /// inference holds several cores; accelerator kernels hold 1). When the
  /// sum of requested cores exceeds the available capacity every job
  /// slows down by the same factor. `done` is invoked (once) when the job
  /// completes. Returns a handle for cancel().
  ///
  /// `cls` optionally tags the job with a class for scheduler forensics
  /// (the AI engine passes its interned "model@delegate" span name). The
  /// pointer is stored as-is — it must outlive the job — and is only ever
  /// read by an attached SchedTrace; it has no effect on scheduling.
  JobId submit(double demand, double cores, Completion done,
               const char* cls = nullptr);
  JobId submit(double demand, Completion done, const char* cls = nullptr);

  /// Cancel an in-flight job; returns false if it already completed.
  bool cancel(JobId id);

  /// Set the fraction of capacity consumed by background (render) work,
  /// in [0, max_background]. Takes effect immediately for running jobs.
  void set_background_utilization(double u);
  double background_utilization() const { return background_; }

  /// Background utilization is clamped to this value so AI jobs can never
  /// be starved to a full stop (the OS scheduler always lets GPU compute
  /// kernels through eventually). Default 0.95.
  void set_max_background(double u);

  std::size_t active_jobs() const { return jobs_.size(); }

  /// Instantaneous service rate a single additional 1-core job would get.
  double current_rate_per_job(std::size_t extra_jobs = 1) const;

  /// Sum of cores requested by active jobs.
  double requested_cores() const { return requested_cores_; }

  /// Total rate-1 seconds of work completed so far (for utilization stats).
  double work_done() const { return work_done_; }

  /// Depth/core telemetry counters sample 1 in `every` changes (default
  /// 16; see trace_depth()). 1 records every change — exact counters,
  /// what sched forensics wants when lining the depth series up against
  /// the lifecycle event stream. Telemetry-only: never affects scheduling.
  void set_trace_decimation(std::uint32_t every);
  std::uint32_t trace_decimation() const { return trace_decimation_; }

 private:
  struct Job {
    double remaining;  // seconds of rate-1 service left
    double demand;     // seconds of rate-1 service requested at submit
    double cores;      // capacity units held while running
    const char* cls;   // forensics class tag (may be null)
    Completion done;
  };

  /// Advance all job progress to sim.now() at the current rate.
  void advance_progress();
  /// Recompute per-job rate and (re)schedule the next completion event.
  void reschedule();
  /// Fires when the earliest job is predicted to finish.
  void on_completion_event();
  double shared_rate(double total_cores) const;

  /// Sample active-job count and requested cores onto the telemetry trace
  /// (no-op without an active session).
  void trace_depth() const;

  /// The Simulator's attached SchedTrace, or null. Registers this
  /// resource's stream on first sight of a given trace.
  SchedTrace* sched() const;
  /// Record one lifecycle event (call only with sched() != null).
  void sched_record(SchedTrace& trace, SchedEventKind kind, JobId job,
                    const char* cls, double demand, double cores,
                    double solo_rate) const;

  Simulator& sim_;
  std::string name_;
  const char* traced_jobs_name_;   ///< Interned "<name>.active_jobs".
  const char* traced_cores_name_;  ///< Interned "<name>.requested_cores".
  mutable std::uint32_t trace_decimator_ = 0;
  std::uint32_t trace_decimation_ = 16;
  mutable SchedTrace* sched_trace_ = nullptr;   ///< Last trace registered with.
  mutable std::uint16_t sched_resource_ = 0;    ///< Our stream id in it.
  double capacity_;
  double max_rate_per_job_;
  double background_ = 0.0;
  double max_background_ = 0.95;

  std::map<JobId, Job> jobs_;  // ordered: deterministic iteration
  double requested_cores_ = 0.0;
  JobId next_job_id_ = 1;
  SimTime last_update_ = 0.0;
  double current_rate_ = 0.0;  // per-job rate since last_update_
  EventId pending_event_ = 0;
  double work_done_ = 0.0;
};

}  // namespace hbosim::des
