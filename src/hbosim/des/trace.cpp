#include "hbosim/des/trace.hpp"

#include "hbosim/common/error.hpp"

namespace hbosim::des {

void TraceRecorder::record(const std::string& series, SimTime t, double value) {
  series_[series].push_back(TracePoint{t, value});
}

void TraceRecorder::mark(SimTime t, const std::string& label) {
  markers_.emplace_back(t, label);
}

bool TraceRecorder::has_series(const std::string& series) const {
  return series_.count(series) > 0;
}

const std::vector<TracePoint>& TraceRecorder::series(
    const std::string& name) const {
  auto it = series_.find(name);
  HB_REQUIRE(it != series_.end(), "unknown trace series: " + name);
  return it->second;
}

std::vector<std::string> TraceRecorder::series_names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, pts] : series_) out.push_back(name);
  return out;
}

double TraceRecorder::window_mean(const std::string& name, SimTime t0,
                                  SimTime t1) const {
  const auto& pts = series(name);
  double acc = 0.0;
  std::size_t n = 0;
  for (const auto& p : pts) {
    if (p.time >= t0 && p.time <= t1) {
      acc += p.value;
      ++n;
    }
  }
  return n ? acc / static_cast<double>(n) : 0.0;
}

void TraceRecorder::dump_series_csv(const std::string& name,
                                    std::ostream& os) const {
  os << "time," << name << '\n';
  for (const auto& p : series(name)) os << p.time << ',' << p.value << '\n';
}

void TraceRecorder::clear() {
  series_.clear();
  markers_.clear();
}

}  // namespace hbosim::des
