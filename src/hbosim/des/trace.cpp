#include "hbosim/des/trace.hpp"

#include <algorithm>

#include "hbosim/common/error.hpp"

namespace hbosim::des {

namespace {
/// RFC-4180-style quoting: series names and marker labels are free-form,
/// so any field containing a comma, quote, or newline is emitted quoted
/// with inner quotes doubled.
void write_csv_field(std::ostream& os, const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    os << s;
    return;
  }
  os << '"';
  for (char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}
}  // namespace

SeriesId TraceRecorder::series_id(const std::string& series) {
  auto it = index_.find(series);
  if (it != index_.end()) return it->second;
  const SeriesId id = series_.size();
  series_.push_back(Series{series, {}});
  index_.emplace(series, id);
  return id;
}

void TraceRecorder::record(const std::string& series, SimTime t, double value) {
  record(series_id(series), t, value);
}

void TraceRecorder::record(SeriesId id, SimTime t, double value) {
  HB_REQUIRE(id < series_.size(), "invalid trace series id");
  series_[id].points.push_back(TracePoint{t, value});
}

void TraceRecorder::mark(SimTime t, const std::string& label) {
  markers_.emplace_back(t, label);
}

const TraceRecorder::Series* TraceRecorder::find(
    const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &series_[it->second];
}

bool TraceRecorder::has_series(const std::string& series) const {
  return find(series) != nullptr;
}

const TraceSeries& TraceRecorder::series(const std::string& name) const {
  const Series* s = find(name);
  HB_REQUIRE(s != nullptr, "unknown trace series: " + name);
  return s->points;
}

const TraceSeries& TraceRecorder::series(SeriesId id) const {
  HB_REQUIRE(id < series_.size(), "invalid trace series id");
  return series_[id].points;
}

std::vector<std::string> TraceRecorder::series_names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const Series& s : series_) out.push_back(s.name);
  std::sort(out.begin(), out.end());
  return out;
}

double TraceRecorder::window_mean(const std::string& name, SimTime t0,
                                  SimTime t1) const {
  const auto& pts = series(name);
  double acc = 0.0;
  std::size_t n = 0;
  for (const auto& p : pts) {
    if (p.time >= t0 && p.time <= t1) {
      acc += p.value;
      ++n;
    }
  }
  return n ? acc / static_cast<double>(n) : 0.0;
}

void TraceRecorder::dump_series_csv(const std::string& name,
                                    std::ostream& os) const {
  os << "time,";
  write_csv_field(os, name);
  os << '\n';
  for (const auto& p : series(name)) os << p.time << ',' << p.value << '\n';
}

void TraceRecorder::dump_all_csv(std::ostream& os) const {
  struct Row {
    SimTime time;
    const std::string* series;
    const TracePoint* point;   // null for marker rows
    const std::string* label;  // null for sample rows
  };
  static const std::string kMarkerSeries = "marker";

  std::vector<Row> rows;
  std::size_t total = markers_.size();
  for (const Series& s : series_) total += s.points.size();
  rows.reserve(total);
  for (const Series& s : series_)
    for (const TracePoint& p : s.points)
      rows.push_back(Row{p.time, &s.name, &p, nullptr});
  for (const auto& [t, label] : markers_)
    rows.push_back(Row{t, &kMarkerSeries, nullptr, &label});

  // Stable: equal-time rows keep series-registration order, markers last.
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) { return a.time < b.time; });

  os << "time,series,value\n";
  for (const Row& r : rows) {
    os << r.time << ',';
    write_csv_field(os, *r.series);
    os << ',';
    if (r.point != nullptr)
      os << r.point->value;
    else
      write_csv_field(os, *r.label);
    os << '\n';
  }
}

void TraceRecorder::clear() {
  series_.clear();
  index_.clear();
  markers_.clear();
}

}  // namespace hbosim::des
