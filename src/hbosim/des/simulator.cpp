#include "hbosim/des/simulator.hpp"

#include "hbosim/common/error.hpp"
#include "hbosim/telemetry/telemetry.hpp"

namespace hbosim::des {

EventId Simulator::schedule_at(SimTime at, Handler fn) {
  HB_REQUIRE(at >= now_, "cannot schedule an event in the past");
  HB_REQUIRE(fn != nullptr, "event handler must be callable");
  const EventId id = next_id_++;
  queue_.push(Event{at, id, std::move(fn)});
  pending_ids_.insert(id);
  return id;
}

EventId Simulator::schedule_after(SimDuration delay, Handler fn) {
  HB_REQUIRE(delay >= 0.0, "cannot schedule with negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  if (pending_ids_.erase(id) == 0) return false;
  // We cannot remove from the middle of a binary heap; mark the id and drop
  // the event when it reaches the top.
  cancelled_.insert(id);
  return true;
}

void Simulator::peel_cancelled() {
  while (!queue_.empty() && cancelled_.count(queue_.top().id) > 0) {
    cancelled_.erase(queue_.top().id);
    queue_.pop();
  }
}

bool Simulator::step() {
  peel_cancelled();
  if (queue_.empty()) return false;
  // Move (not copy) the handler out of the heap top: a copy would clone
  // the std::function's captured state — one heap round-trip per event.
  // Mutating top() is safe because pop() only needs the element to be
  // destructible/assignable, which a moved-from Event is.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  pending_ids_.erase(ev.id);
  now_ = ev.time;
  ++executed_;
  // Dispatch telemetry every 1024 events: the executed-events counter is
  // flushed in batches (a per-step registry add would tax multi-million-
  // event fleet runs) and the queue depth is sampled at the same cadence.
  // The steady-state cost is one relaxed load and a predictable branch.
  if ((executed_ & 0x3FFu) == 0 && telemetry::enabled()) {
    HB_TELEM_COUNT("des.events_executed", 1024.0);
    HB_TRACE_COUNTER("des", "des.queue_depth",
                     static_cast<double>(pending_ids_.size()));
  }
  ev.fn();
  return true;
}

void Simulator::run_until(SimTime t) {
  HB_REQUIRE(t >= now_, "run_until target is in the past");
  for (;;) {
    peel_cancelled();
    if (queue_.empty() || queue_.top().time > t) break;
    step();
  }
  now_ = t;
}

void Simulator::run(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!step()) return;
  }
}

}  // namespace hbosim::des
