#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "hbosim/common/arena.hpp"
#include "hbosim/common/types.hpp"

/// \file simulator.hpp
/// The discrete-event simulation core. A Simulator owns a virtual clock and
/// a time-ordered event queue; everything in hbosim (AI inference phases,
/// render frames, HBO control periods, network delays) executes as events on
/// one Simulator, so the entire system is deterministic and runs far faster
/// than real time.

namespace hbosim::des {

/// Identifier of a scheduled event, usable to cancel it.
using EventId = std::uint64_t;

class SchedTrace;

class Simulator {
 public:
  using Handler = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time (seconds).
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now). Ties execute in
  /// scheduling order (stable FIFO within a timestamp).
  EventId schedule_at(SimTime at, Handler fn);

  /// Schedule `fn` after `delay` seconds (>= 0).
  EventId schedule_after(SimDuration delay, Handler fn);

  /// Cancel a pending event. Returns false (no-op) if the event already
  /// fired, was already cancelled, or never existed.
  bool cancel(EventId id);

  /// Execute the next pending event; returns false if the queue is empty.
  bool step();

  /// Run until the clock reaches `t` (events at exactly `t` included);
  /// the clock is advanced to `t` even if the queue drains first.
  void run_until(SimTime t);

  /// Run until no events remain or `max_events` have fired.
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Number of events executed so far (for tests / micro-benches).
  std::uint64_t events_executed() const { return executed_; }

  /// Pending (non-cancelled) event count.
  std::size_t pending() const { return pending_ids_.size(); }

  /// Attach (or detach, with nullptr) a scheduler lifecycle trace. The
  /// Simulator does not own it; resources reach it through sched_trace()
  /// and record their job transitions into it (see sched_trace.hpp).
  /// Recording is observational only — attaching a trace changes no
  /// simulated result — and off-mode costs one null-pointer branch per
  /// transition. The trace must outlive the simulation it observes.
  void set_sched_trace(SchedTrace* trace) { sched_trace_ = trace; }
  SchedTrace* sched_trace() const { return sched_trace_; }

 private:
  struct Event {
    SimTime time;
    EventId id;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among equal timestamps
    }
  };

  /// Drop cancelled events sitting at the head of the queue.
  void peel_cancelled();

  /// The queue and id sets allocate per event (hash nodes, heap growth);
  /// under a fleet worker's ArenaScope those allocations come from the
  /// worker's bump arena and are reclaimed wholesale between sessions.
  /// With no arena installed the allocators degrade to the global heap —
  /// identical behaviour either way (see common/arena.hpp).
  using IdSet =
      std::unordered_set<EventId, std::hash<EventId>, std::equal_to<EventId>,
                         ArenaAllocator<EventId>>;

  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  SchedTrace* sched_trace_ = nullptr;  // non-owning; null = not traced
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event, ArenaAllocator<Event>>, Later>
      queue_;
  IdSet pending_ids_;
  IdSet cancelled_;
};

}  // namespace hbosim::des
