#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hbosim/common/types.hpp"

/// \file sched_trace.hpp
/// Structured per-job scheduler lifecycle event stream.
///
/// A SchedTrace records every scheduling-relevant transition of the
/// PsResources attached to one Simulator: job admission, completion,
/// cancellation, and every mid-service rescale (DVFS capacity step,
/// rate-cap change, background-utilization change). Each record carries
/// the per-job service rate in effect *after* the transition, which makes
/// the stream exactly replayable: a processor-sharing resource changes
/// its per-job rate only at these transitions, so between two consecutive
/// events every active job accrues `share * dt` service — no sampling, no
/// approximation. `des::SchedAnalyzer` consumes the stream offline.
///
/// Recording is strictly observational. A PsResource reaches its trace
/// through `Simulator::sched_trace()` (a plain pointer read); when no
/// trace is attached the off-mode cost is one predictable branch, and
/// when one is attached nothing the trace does can feed back into the
/// simulation — attaching a trace changes no simulated result (pinned by
/// parity tests).
///
/// Events live in fixed-capacity per-resource rings (oldest records are
/// overwritten when a run outgrows the ring); the drop count is kept so
/// the analyzer can report truncated coverage instead of silently
/// under-counting.

namespace hbosim::des {

/// Lifecycle transition kinds. A processor-sharing server admits jobs
/// into service immediately, so Submit doubles as the start-of-service
/// record; Rescale covers every mid-service share change (DVFS steps,
/// rate-cap moves, background/render load settling on the unit).
enum class SchedEventKind : std::uint8_t {
  Submit,    ///< Job entered service (admission == start under PS).
  Rescale,   ///< Capacity / rate cap / background changed mid-service.
  Complete,  ///< Job finished; its completion callback is about to run.
  Cancel,    ///< Job removed without completing.
};

const char* sched_event_kind_name(SchedEventKind kind);

/// One lifecycle record. `share` is the per-job service rate in effect
/// AFTER the event applied — the invariant the exact replay rests on.
/// Submit additionally snapshots `solo_rate`, the rate this job would
/// have received on an otherwise-empty resource, which defines its ideal
/// (contention-free) service time `demand / solo_rate`.
struct SchedEvent {
  SimTime time = 0.0;
  SchedEventKind kind = SchedEventKind::Submit;
  std::uint16_t resource = 0;    ///< Id from SchedTrace::register_resource.
  JobId job = 0;                 ///< 0 for Rescale records.
  const char* cls = nullptr;     ///< Job-class tag (interned); may be null.
  double demand = 0.0;           ///< Rate-1 seconds requested (Submit only).
  double cores = 0.0;            ///< Capacity units held (Submit only).
  double share = 0.0;            ///< Per-job rate after the event.
  double solo_rate = 0.0;        ///< Contention-free rate (Submit only).
  std::uint32_t active_jobs = 0; ///< Jobs in service after the event.
};

struct SchedTraceConfig {
  /// Fleet-level master switch (FleetSpec::sched). A constructed
  /// SchedTrace always records; `enabled` decides whether the fleet
  /// creates and attaches one per session at all.
  bool enabled = false;
  /// Ring slots per resource (rounded up to a power of two). At the
  /// default 65536 a 60 s session traces every AI phase with room to
  /// spare; mega-fleet smoke runs can shrink it.
  std::size_t capacity_per_resource = 1u << 16;
  /// Drop the PsResource depth-counter decimation to 1 (exact counters)
  /// on traced sessions, so the telemetry depth series lines up with the
  /// forensics event stream. Only consulted where a trace is attached;
  /// untraced sessions keep the default 1-in-16 sampling.
  bool exact_depth_counters = true;
};

/// Per-resource ring buffers of SchedEvents plus drop accounting.
/// Single-threaded like the Simulator that feeds it; a fleet creates one
/// trace per session, so traces never cross threads.
class SchedTrace {
 public:
  explicit SchedTrace(SchedTraceConfig cfg = {});

  const SchedTraceConfig& config() const { return cfg_; }

  /// Register a resource stream and return its id (stable for the trace's
  /// lifetime). Idempotence is the caller's job: PsResource registers
  /// itself once per attached trace.
  std::uint16_t register_resource(const std::string& name);

  void record(const SchedEvent& ev);

  std::size_t resources() const { return rings_.size(); }
  const std::string& resource_name(std::uint16_t resource) const;

  /// Retained events for one resource, oldest first. When the ring
  /// wrapped, the earliest `dropped(resource)` records are gone — the
  /// analyzer treats jobs whose Submit fell off as uncovered.
  std::vector<SchedEvent> events(std::uint16_t resource) const;

  /// Total records ever offered to / lost from one resource's ring.
  std::uint64_t recorded(std::uint16_t resource) const;
  std::uint64_t dropped(std::uint16_t resource) const;

  std::uint64_t total_recorded() const;
  std::uint64_t total_dropped() const;

 private:
  struct ResourceRing {
    std::string name;
    std::vector<SchedEvent> slots;  // capacity is a power of two
    std::uint64_t pushed = 0;       // total records ever pushed
  };

  SchedTraceConfig cfg_;
  std::size_t capacity_ = 0;  // per-ring, power of two
  std::vector<ResourceRing> rings_;
};

}  // namespace hbosim::des
