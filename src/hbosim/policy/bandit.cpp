#include "hbosim/policy/bandit.hpp"

#include <cmath>

#include "hbosim/common/error.hpp"
#include "hbosim/soc/resource.hpp"
#include "hbosim/telemetry/telemetry.hpp"

namespace hbosim::policy {

void BanditConfig::validate() const {
  HB_REQUIRE(alpha >= 0.0, "UCB alpha must be non-negative");
  HB_REQUIRE(ridge_lambda > 0.0, "ridge lambda must be positive");
  for (double t : triangle_levels)
    HB_REQUIRE(t > 0.0 && t <= 1.0, "triangle levels must lie in (0, 1]");
}

std::vector<std::vector<double>> make_arm_grid(
    double r_min, const std::vector<double>& triangle_levels) {
  HB_REQUIRE(r_min > 0.0 && r_min <= 1.0, "r_min must lie in (0, 1]");
  constexpr std::size_t n = soc::kNumDelegates;

  std::vector<std::vector<double>> cs;
  // Vertices: everything on one delegate.
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> c(n, 0.0);
    c[i] = 1.0;
    cs.push_back(std::move(c));
  }
  // Edge midpoints: an even split across each pair.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      std::vector<double> c(n, 0.0);
      c[i] = 0.5;
      c[j] = 0.5;
      cs.push_back(std::move(c));
    }
  // Centroid: even split across all delegates.
  cs.emplace_back(n, 1.0 / static_cast<double>(n));

  std::vector<double> levels = triangle_levels;
  if (levels.empty()) {
    constexpr int k = 4;
    for (int i = 0; i < k; ++i) {
      // Endpoint-exact interpolation: r_min + (1-r_min)*t can exceed 1 by
      // an ulp at t = 1, which the triangle distributor rejects.
      const double t = static_cast<double>(i) / (k - 1);
      levels.push_back((1.0 - t) * r_min + t * 1.0);
    }
  }

  std::vector<std::vector<double>> arms;
  arms.reserve(cs.size() * levels.size());
  for (const std::vector<double>& c : cs)
    for (double x : levels) {
      std::vector<double> z = c;
      z.push_back(x);
      arms.push_back(std::move(z));
    }
  return arms;
}

std::vector<double> extract_context(app::MarApp& app) {
  const app::PeriodMetrics m = app.snapshot();

  std::size_t objects = 0;
  double max_tris = 0.0;
  for (ObjectId id : app.scene().object_ids()) {
    ++objects;
    max_tris += static_cast<double>(
        app.scene().object(id).asset().max_triangles());
  }

  double expected_sum = 0.0;
  std::size_t tasks = 0;
  for (TaskId id : app.tasks()) {
    expected_sum += app.expected_ms(id);
    ++tasks;
  }
  const double expected_mean_ms =
      tasks > 0 ? expected_sum / static_cast<double>(tasks) : 0.0;

  // Rough O(1) normalizations so every feature lands near [0, 1] and the
  // shared ridge regularizer treats them evenly.
  return {1.0,  // bias
          m.average_quality,
          m.latency_ratio,
          m.triangle_ratio,
          static_cast<double>(objects) / 8.0,
          max_tris / 1e6,
          static_cast<double>(tasks) / 4.0,
          expected_mean_ms / 100.0,
          m.freq_scale,
          m.battery_soc};
}

LinUcbBandit::LinUcbBandit(std::vector<std::vector<double>> arms,
                           BanditConfig cfg)
    : cfg_(cfg), arms_(std::move(arms)) {
  cfg_.validate();
  HB_REQUIRE(!arms_.empty(), "bandit needs at least one arm");
  const std::size_t d = dim_;
  a_inv_.assign(arms_.size(), std::vector<double>(d * d, 0.0));
  b_.assign(arms_.size(), std::vector<double>(d, 0.0));
  theta_.assign(arms_.size(), std::vector<double>(d, 0.0));
  for (std::vector<double>& a : a_inv_)
    for (std::size_t i = 0; i < d; ++i)
      a[i * d + i] = 1.0 / cfg_.ridge_lambda;  // (lambda I)^-1
}

double LinUcbBandit::ucb_score(std::size_t arm,
                               std::span<const double> context) const {
  const std::size_t d = dim_;
  const std::vector<double>& a_inv = a_inv_[arm];
  const std::vector<double>& theta = theta_[arm];
  double mean = 0.0;
  double quad = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    mean += theta[i] * context[i];
    double row = 0.0;
    for (std::size_t j = 0; j < d; ++j) row += a_inv[i * d + j] * context[j];
    quad += context[i] * row;
  }
  return mean + cfg_.alpha * std::sqrt(std::max(quad, 0.0));
}

std::size_t LinUcbBandit::select(std::span<const double> context) const {
  HB_REQUIRE(context.size() == dim_, "context dimension mismatch");
  std::size_t best = 0;
  double best_score = ucb_score(0, context);
  // Strictly-greater comparison: exact ties keep the lowest arm index, so
  // selection is a deterministic function of (model, context).
  for (std::size_t a = 1; a < arms_.size(); ++a) {
    const double s = ucb_score(a, context);
    if (s > best_score) {
      best_score = s;
      best = a;
    }
  }
  return best;
}

double LinUcbBandit::predicted_reward(std::size_t arm,
                                      std::span<const double> context) const {
  HB_REQUIRE(arm < arms_.size(), "arm out of range");
  HB_REQUIRE(context.size() == dim_, "context dimension mismatch");
  double mean = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) mean += theta_[arm][i] * context[i];
  return mean;
}

void LinUcbBandit::update(std::size_t arm, std::span<const double> context,
                          double reward) {
  HB_REQUIRE(arm < arms_.size(), "arm out of range");
  HB_REQUIRE(context.size() == dim_, "context dimension mismatch");
  const std::size_t d = dim_;
  std::vector<double>& a_inv = a_inv_[arm];
  std::vector<double>& b = b_[arm];

  // Sherman-Morrison: (A + x x')^-1 = A^-1 - (A^-1 x)(A^-1 x)' / (1 + x' A^-1 x).
  std::vector<double> u(d, 0.0);  // A^-1 x (A^-1 symmetric)
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = 0; j < d; ++j) u[i] += a_inv[i * d + j] * context[j];
  double denom = 1.0;
  for (std::size_t i = 0; i < d; ++i) denom += context[i] * u[i];
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = 0; j < d; ++j)
      a_inv[i * d + j] -= u[i] * u[j] / denom;

  for (std::size_t i = 0; i < d; ++i) b[i] += reward * context[i];

  std::vector<double>& theta = theta_[arm];
  for (std::size_t i = 0; i < d; ++i) {
    theta[i] = 0.0;
    for (std::size_t j = 0; j < d; ++j) theta[i] += a_inv[i * d + j] * b[j];
  }
  ++updates_;
  HB_TELEM_COUNT("policy.bandit_updates", 1.0);
}

}  // namespace hbosim::policy
